/**
 * @file
 * replaybench — one deterministic driver for the paper's workload
 * sweeps.
 *
 * Selects figures/tables by name, fans the (workload x config x trace)
 * grid across a thread pool, and prints either paper-style text tables
 * or machine-readable JSON.  Results are bit-identical for any --jobs
 * value: every cell runs its own Simulator on its own seeded Rng, and
 * per-trace stats merge into indexed slots in canonical order, never
 * completion order.  The per-figure digest line makes that checkable
 * from the shell:
 *
 *   ./replaybench --jobs 1 fig6 | grep digest
 *   ./replaybench --jobs 8 fig6 | grep digest     # identical
 *
 * Usage:
 *   replaybench [--jobs N] [--insts N] [--json] [--list]
 *               [--static-check] [--tier N] [--tier-det]
 *               [--corpus corpus.json] [target ...]
 *
 * --corpus replays recorded trace containers (see tools/tracec) where
 * the manifest covers a (workload, hot-spot) pair at the requested
 * budget, falling back to live synthesis on misses; digests are
 * identical either way, and each sweep reports its hit/miss counts.
 *
 * --tier N enables the tiered re-optimization engine with N background
 * workers on every frame-machine (RP/RPO) cell: frames admit through
 * the cheap pass subset and hot ones are re-optimized with the full
 * budget off the critical path.  --tier-det runs re-opt jobs inline
 * (deterministic) so digests are comparable across runs.
 *
 * Targets: fig6 fig7_8 fig9 fig10 table3 coverage (default: all).
 *
 * --static-check attaches the static verifier (src/verify/static) to
 * every optimizer invocation in counting mode and appends its
 * violation totals to the output.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/sweep.hh"
#include "trace/workload.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "verify/static/hook.hh"

using namespace replay;
using sim::Machine;
using sim::SimConfig;

namespace {

struct Target
{
    const char *name;
    const char *description;
    std::vector<const trace::Workload *> rows;
    std::vector<std::pair<std::string, SimConfig>> cols;
};

std::vector<Target>
allTargets()
{
    std::vector<Target> targets;

    Target fig6;
    fig6.name = "fig6";
    fig6.description = "x86 IPC of IC / TC / RP / RPO (Figure 6)";
    fig6.rows = sim::standardWorkloadRows();
    fig6.cols = sim::allMachineColumns();
    targets.push_back(std::move(fig6));

    Target fig78;
    fig78.name = "fig7_8";
    fig78.description = "cycle breakdown RP vs RPO (Figures 7+8)";
    fig78.rows = sim::standardWorkloadRows();
    fig78.cols = {{"RP", SimConfig::make(Machine::RP)},
                  {"RPO", SimConfig::make(Machine::RPO)}};
    targets.push_back(std::move(fig78));

    Target fig9;
    fig9.name = "fig9";
    fig9.description = "block-scope vs frame-scope (Figure 9)";
    fig9.rows = sim::standardWorkloadRows();
    auto block_cfg = SimConfig::make(Machine::RPO);
    block_cfg.engine.optConfig.scope = opt::Scope::BLOCK;
    fig9.cols = {{"RP", SimConfig::make(Machine::RP)},
                 {"block", block_cfg},
                 {"frame", SimConfig::make(Machine::RPO)}};
    targets.push_back(std::move(fig9));

    Target fig10;
    fig10.name = "fig10";
    fig10.description = "individual optimizations (Figure 10)";
    for (const char *app : {"bzip2", "crafty", "vortex", "dream",
                            "excel"}) {
        fig10.rows.push_back(&trace::findWorkload(app));
    }
    fig10.cols = {{"RP", SimConfig::make(Machine::RP)},
                  {"RPO", SimConfig::make(Machine::RPO)}};
    for (const char *pass : {"ASST", "CP", "CSE", "NOP", "RA", "SF"}) {
        auto cfg = SimConfig::make(Machine::RPO);
        cfg.engine.optConfig = opt::OptConfig::without(pass);
        fig10.cols.emplace_back(std::string("no ") + pass, cfg);
    }
    targets.push_back(std::move(fig10));

    Target table3;
    table3.name = "table3";
    table3.description = "uops/loads removed, IPC increase (Table 3)";
    table3.rows = sim::standardWorkloadRows();
    table3.cols = {{"RP", SimConfig::make(Machine::RP)},
                   {"RPO", SimConfig::make(Machine::RPO)}};
    targets.push_back(std::move(table3));

    Target coverage;
    coverage.name = "coverage";
    coverage.description = "frame coverage and assert cost (Section 6.1)";
    coverage.rows = sim::standardWorkloadRows();
    coverage.cols = {{"RPO", SimConfig::make(Machine::RPO)}};
    targets.push_back(std::move(coverage));

    return targets;
}

void
emitText(const Target &target, const sim::SweepResult &result)
{
    std::printf("== %s: %s ==\n", target.name, target.description);
    TextTable table;
    std::vector<std::string> header{"app"};
    for (const auto &[label, cfg] : target.cols)
        header.push_back(label + " IPC");
    table.header(std::move(header));
    const size_t ncols = target.cols.size();
    for (size_t r = 0; r < target.rows.size(); ++r) {
        std::vector<std::string> row{target.rows[r]->name};
        for (size_t c = 0; c < ncols; ++c)
            row.push_back(
                TextTable::fixed(result.cells[r * ncols + c].ipc(), 3));
        table.row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("%s: %u cells (%u trace runs) in %.2fs with %u "
                "worker(s) — %.2f cells/s, %.2fM x86 insts/s\n",
                target.name, unsigned(result.cells.size()),
                result.traceRuns, result.wallSeconds, result.jobs,
                result.cellsPerSec(), result.instsPerSec() / 1e6);
    if (result.corpusHits || result.corpusMisses) {
        std::printf("%s: corpus %u hit(s), %u miss(es)\n", target.name,
                    result.corpusHits, result.corpusMisses);
    }
    std::printf("%s: digest %016llx\n\n", target.name,
                (unsigned long long)result.digest());
}

/** Minimal JSON string escaping (labels are plain ASCII). */
std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out + "\"";
}

void
emitJson(const Target &target, const sim::SweepResult &result,
         bool first)
{
    std::printf("%s    {\n      \"name\": %s,\n", first ? "" : ",\n",
                jsonStr(target.name).c_str());
    std::printf("      \"wall_seconds\": %.6f,\n", result.wallSeconds);
    std::printf("      \"jobs\": %u,\n", result.jobs);
    std::printf("      \"trace_runs\": %u,\n", result.traceRuns);
    std::printf("      \"corpus_hits\": %u,\n", result.corpusHits);
    std::printf("      \"corpus_misses\": %u,\n", result.corpusMisses);
    std::printf("      \"cells_per_sec\": %.3f,\n", result.cellsPerSec());
    std::printf("      \"insts_per_sec\": %.0f,\n", result.instsPerSec());
    std::printf("      \"digest\": \"%016llx\",\n",
                (unsigned long long)result.digest());
    std::printf("      \"cells\": [\n");
    for (size_t i = 0; i < result.cells.size(); ++i) {
        const auto &cell = result.cells[i];
        std::printf("        {\"workload\": %s, \"config\": %s, "
                    "\"x86_retired\": %llu, \"cycles\": %llu, "
                    "\"ipc\": %.6f, \"uop_reduction\": %.6f, "
                    "\"load_reduction\": %.6f, \"coverage\": %.6f, "
                    "\"frame_commits\": %llu, \"frame_aborts\": %llu, "
                    "\"tier_enqueues\": %llu, \"tier_reopts\": %llu, "
                    "\"tier_publishes\": %llu, "
                    "\"tier_uops_removed\": %llu, "
                    "\"fingerprint\": \"%016llx\"}%s\n",
                    jsonStr(cell.workload).c_str(),
                    jsonStr(cell.config).c_str(),
                    (unsigned long long)cell.x86Retired,
                    (unsigned long long)cell.cycles(), cell.ipc(),
                    cell.uopReduction(), cell.loadReduction(),
                    cell.coverage(),
                    (unsigned long long)cell.frameCommits,
                    (unsigned long long)cell.frameAborts,
                    (unsigned long long)cell.tierEnqueues,
                    (unsigned long long)cell.tierReopts,
                    (unsigned long long)cell.tierPublishes,
                    (unsigned long long)cell.tierUopsRemoved,
                    (unsigned long long)cell.fingerprint(),
                    i + 1 < result.cells.size() ? "," : "");
    }
    std::printf("      ]\n    }");
}

/** The static verifier's counters, as one JSON object body. */
void
emitStaticJson()
{
    const auto &stats = vstatic::staticCheckStats();
    std::printf("  \"static_check\": {\n");
    std::printf("    \"frames_checked\": %llu,\n",
                (unsigned long long)stats.framesChecked.load());
    std::printf("    \"passes_checked\": %llu,\n",
                (unsigned long long)stats.passesChecked.load());
    std::printf("    \"lint_violations\": %llu,\n",
                (unsigned long long)stats.lintViolations.load());
    std::printf("    \"pass_violations\": %llu,\n",
                (unsigned long long)stats.passViolations.load());
    std::printf("    \"by_pass\": {");
    for (unsigned p = 0; p < opt::NUM_PASS_IDS; ++p) {
        std::printf("%s\"%s\": %llu", p ? ", " : "",
                    opt::passIdName(static_cast<opt::PassId>(p)),
                    (unsigned long long)stats.byPass[p].load());
    }
    std::printf("}\n  },\n");
}

void
emitStaticText()
{
    const auto &stats = vstatic::staticCheckStats();
    std::printf("static check: %llu frames, %llu pass invocations, "
                "%llu violations (",
                (unsigned long long)stats.framesChecked.load(),
                (unsigned long long)stats.passesChecked.load(),
                (unsigned long long)stats.violations());
    for (unsigned p = 0; p < opt::NUM_PASS_IDS; ++p) {
        std::printf("%s%s=%llu", p ? " " : "",
                    opt::passIdName(static_cast<opt::PassId>(p)),
                    (unsigned long long)stats.byPass[p].load());
    }
    std::printf(")\n");
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--jobs N] [--insts N] [--json] [--list] "
                 "[--static-check] [--tier N] [--tier-det] "
                 "[--corpus corpus.json] [target ...]\n"
                 "targets: fig6 fig7_8 fig9 fig10 table3 coverage "
                 "(default: all)\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::SweepOptions opts;
    bool json = false;
    bool list = false;
    bool static_check = false;
    std::string corpus_path;
    trace::TraceCorpus corpus;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            if (++i >= argc)
                return usage(argv[0]);
            opts.jobs = unsigned(sim::parseCount(argv[i], "--jobs"));
        } else if (arg == "--insts") {
            if (++i >= argc)
                return usage(argv[0]);
            opts.instsPerTrace = sim::parseCount(argv[i], "--insts");
        } else if (arg == "--tier") {
            if (++i >= argc)
                return usage(argv[0]);
            opts.tierWorkers =
                unsigned(sim::parseCount(argv[i], "--tier"));
        } else if (arg == "--tier-det") {
            opts.tierDeterministic = true;
        } else if (arg == "--corpus") {
            if (++i >= argc)
                return usage(argv[0]);
            corpus_path = argv[i];
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--static-check") {
            static_check = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            names.push_back(arg);
        }
    }

    auto targets = allTargets();
    if (list) {
        for (const auto &t : targets)
            std::printf("%-10s %s\n", t.name, t.description);
        return 0;
    }
    if (names.empty() || (names.size() == 1 && names[0] == "all")) {
        names.clear();
        for (const auto &t : targets)
            names.push_back(t.name);
    }

    std::vector<const Target *> selected;
    for (const auto &name : names) {
        const Target *found = nullptr;
        for (const auto &t : targets)
            if (name == t.name)
                found = &t;
        if (!found) {
            std::fprintf(stderr, "unknown target '%s'\n", name.c_str());
            return usage(argv[0]);
        }
        selected.push_back(found);
    }

    const uint64_t insts = opts.instsPerTrace ? opts.instsPerTrace
                                              : sim::defaultInstsPerTrace();
    const unsigned jobs = opts.jobs ? opts.jobs : sim::defaultSweepJobs();

    if (!corpus_path.empty()) {
        // An explicitly requested corpus that fails to load is an
        // error, not a silent fall-back to synthesis.
        corpus = trace::TraceCorpus::load(corpus_path);
        if (!corpus.ok()) {
            std::fprintf(stderr, "replaybench: %s\n",
                         corpus.error().describe().c_str());
            return 1;
        }
        opts.corpus = &corpus;
    }

    if (static_check) {
        // Counting mode; keep the Simulator's debug-build auto-enable
        // from re-arming panic mode behind our back.
        setenv("REPLAY_STATIC_CHECK", "0", 1);
        vstatic::installStaticChecker(vstatic::Action::COUNT);
    }

    if (json) {
        std::printf("{\n  \"insts_per_trace\": %llu,\n  \"jobs\": %u,\n"
                    "  \"targets\": [\n",
                    (unsigned long long)insts, jobs);
    } else {
        std::printf("replaybench: %llu x86 insts per hot-spot trace, "
                    "%u worker(s)%s\n",
                    (unsigned long long)insts, jobs,
                    opts.tierDeterministic ? ", deterministic tier"
                                           : "");
        if (opts.tierWorkers) {
            std::printf("tiered re-opt: %u background worker(s) on "
                        "frame-machine cells\n",
                        opts.tierWorkers);
        }
        std::printf("\n");
    }

    double wall_total = 0;
    bool first = true;
    for (const Target *target : selected) {
        const auto result =
            sim::runSweep(sim::gridCells(target->rows, target->cols),
                          opts);
        wall_total += result.wallSeconds;
        if (json)
            emitJson(*target, result, first);
        else
            emitText(*target, result);
        first = false;
    }

    if (json) {
        std::printf("\n  ],\n");
        if (static_check)
            emitStaticJson();
        std::printf("  \"wall_seconds_total\": %.6f\n}\n", wall_total);
    } else {
        if (static_check)
            emitStaticText();
        std::printf("total sweep wall time: %.2fs\n", wall_total);
    }
    return 0;
}
