/**
 * @file
 * chaosrunner — chaos/soak campaign driver for the robustness harness.
 *
 * Composes every failure source the stack can inject — frame-cache bit
 * flips, optimizer sabotage, allocation failures (through the resource
 * governor's hook), transient and persistent trace I/O faults, and
 * task stalls against the sweep watchdog — into an N-seed campaign and
 * asserts the engineered guarantees actually hold:
 *
 *   phase A (engine soak)  every seeded run completes (no crash, no
 *                          uncaught exception), no corrupt frame
 *                          escapes the online verifier, governed
 *                          memory stays bounded, and a repeated seed
 *                          reproduces its fingerprint bit-for-bit;
 *   phase B (I/O soak)     transient read faults are absorbed by
 *                          bounded retries, corruption / truncation /
 *                          persistent errors surface as exactly the
 *                          right recoverable TraceError kind, and a
 *                          persistently bad trace is quarantined for
 *                          the rest of the session;
 *   phase C (watchdog)     an injected stall trips the per-task soft
 *                          deadline, and the sweep aborts with one
 *                          diagnostic exception naming the cell
 *                          instead of std::terminate;
 *   phase D (determinism)  with injection disabled, governed and
 *                          ungoverned sweep digests are bit-identical
 *                          across --jobs values;
 *   phase E (tier soak)    background re-optimization survives the
 *                          same governed + alloc-failure campaign (no
 *                          corrupt commit escapes, memory stays
 *                          bounded), a mid-run cancellation aborts a
 *                          tiered run cleanly with its pending re-opt
 *                          work dropped, deterministic tier mode
 *                          reproduces its fingerprint bit-for-bit
 *                          under injection, and with injection off the
 *                          async tier retires the same architectural
 *                          digest as the synchronous full optimizer.
 *
 * Exit status is 0 iff every phase passed; run it under ASan/UBSan to
 * extend "no crash" to "no leak, no UB" (scripts/tier1.sh does).
 *
 * Usage:
 *   chaosrunner [--seeds N] [--insts N] [--budget BYTES] [--jobs N]
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/faultinjector.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "trace/tracefile.hh"
#include "trace/workload.hh"
#include "util/cancellation.hh"
#include "util/rng.hh"
#include "util/sync.hh"

using namespace replay;
using sim::Machine;
using sim::SimConfig;

namespace {

struct Options
{
    unsigned seeds = 24;
    uint64_t insts = 20000;
    size_t budgetBytes = 2u << 20;      // 2 MiB: squeezes a 16k cache
    unsigned jobs = 4;
};

unsigned failures = 0;

void
check(bool ok, const char *phase, const std::string &what)
{
    if (ok)
        return;
    ++failures;
    std::fprintf(stderr, "chaosrunner FAIL [%s]: %s\n", phase,
                 what.c_str());
}

/** Governed + fault-injected RPO config for one campaign seed. */
SimConfig
chaosConfig(const Options &opt, unsigned seed)
{
    SimConfig cfg = SimConfig::make(Machine::RPO);
    cfg.maxInsts = opt.insts;
    cfg.verifyOnline = true;
    // Vary the squeeze per seed: 50%..150% of the base budget, so some
    // runs live mostly in OK and others bounce off CRITICAL.
    cfg.governor.budgetBytes =
        opt.budgetBytes / 2 + (opt.budgetBytes * (seed % 5)) / 4;
    cfg.fault.seed = 0x9e3779b9u + seed;
    cfg.fault.fetchFlipRate = 0.02;
    cfg.fault.passSabotageRate = 0.02;
    cfg.fault.allocFailRate = 0.05;
    return cfg;
}

uint64_t
runOne(const SimConfig &cfg, const trace::Workload &workload,
       unsigned trace_idx, uint64_t *peak_out)
{
    auto src = workload.openTrace(trace_idx, cfg.maxInsts);
    sim::Simulator simulator(cfg);
    const sim::RunStats stats = simulator.run(*src);
    if (peak_out)
        *peak_out = stats.govPeakBytes;
    return stats.fingerprint();
}

void
phaseEngineSoak(const Options &opt)
{
    const auto &workloads = trace::standardWorkloads();
    unsigned completed = 0;
    for (unsigned seed = 0; seed < opt.seeds; ++seed) {
        const SimConfig cfg = chaosConfig(opt, seed);
        const auto &workload = workloads[seed % workloads.size()];
        try {
            auto src = workload.openTrace(0, cfg.maxInsts);
            sim::Simulator simulator(cfg);
            const sim::RunStats stats = simulator.run(*src);
            ++completed;
            check(stats.corruptFrameCommits == 0, "engine",
                  "seed " + std::to_string(seed) + " (" + workload.name +
                      "): " + std::to_string(stats.corruptFrameCommits) +
                      " corrupt frame(s) escaped the online verifier");
            // Bounded memory: the governor reacts between allocation
            // steps, so the footprint may overshoot the budget by at
            // most one step (an arena chunk / one frame), never 2x.
            check(stats.govPeakBytes < 2 * cfg.governor.budgetBytes,
                  "engine",
                  "seed " + std::to_string(seed) + " peak " +
                      std::to_string(stats.govPeakBytes) +
                      " bytes >= 2x budget " +
                      std::to_string(cfg.governor.budgetBytes));
        } catch (const std::exception &e) {
            check(false, "engine",
                  "seed " + std::to_string(seed) +
                      " raised: " + e.what());
        }
    }
    check(completed == opt.seeds, "engine",
          std::to_string(opt.seeds - completed) + " run(s) died");

    // Reproducibility under injection: same seed, same everything.
    const SimConfig cfg = chaosConfig(opt, 0);
    const uint64_t a = runOne(cfg, workloads[0], 0, nullptr);
    const uint64_t b = runOne(cfg, workloads[0], 0, nullptr);
    check(a == b, "engine",
          "seed 0 fingerprint not reproducible: " + std::to_string(a) +
              " vs " + std::to_string(b));
    std::printf("phase A (engine soak): %u/%u governed+injected runs "
                "completed\n",
                completed, opt.seeds);
}

/** Byte-for-byte file copy via stdio (keeps the tool dependency-free). */
bool
copyFile(const std::string &from, const std::string &to)
{
    std::FILE *in = std::fopen(from.c_str(), "rb");
    if (!in)
        return false;
    std::FILE *out = std::fopen(to.c_str(), "wb");
    if (!out) {
        std::fclose(in);
        return false;
    }
    uint8_t buf[4096];
    size_t n;
    bool ok = true;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
        ok = ok && std::fwrite(buf, 1, n, out) == n;
    ok = !std::ferror(in) && ok;
    std::fclose(in);
    ok = std::fclose(out) == 0 && ok;
    return ok;
}

/** Drain a trace source; returns records delivered. */
uint64_t
drain(trace::FileTraceSource &src)
{
    uint64_t n = 0;
    while (!src.done()) {
        src.advance();
        ++n;
    }
    return n;
}

void
phaseIoSoak(const Options &opt)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() /
        ("chaosrunner-" + std::to_string(unsigned(::getpid())));
    fs::create_directories(dir);
    const std::string pristine = (dir / "pristine.trace").string();

    const auto &workload = trace::standardWorkloads().front();
    const uint64_t records = 2000;
    trace::TraceFileWriter::dumpProgram(workload.buildProgram(0),
                                        records, pristine);
    trace::clearTraceQuarantine();

    unsigned transient_ok = 0, detected = 0;
    for (unsigned seed = 0; seed < opt.seeds; ++seed) {
        const std::string path =
            (dir / ("seed" + std::to_string(seed) + ".trace")).string();
        if (!copyFile(pristine, path)) {
            check(false, "io", "cannot stage " + path);
            continue;
        }
        switch (seed % 3) {
          case 0: {
            // Transient faults: seeded injector fires on ~10% of
            // batched read attempts; bounded retries must deliver the
            // whole stream with no error (aborting needs 4 hits in a
            // row — odds well under 1% across the campaign).
            trace::FileTraceSource src(path);
            Rng rng(1000 + seed);
            src.setIoFaultInjector([&rng] { return rng.chance(0.1); });
            const uint64_t got = drain(src);
            check(src.ok() && got == records, "io",
                  "seed " + std::to_string(seed) +
                      ": transient faults not absorbed (got " +
                      std::to_string(got) + "/" +
                      std::to_string(records) + ", error " +
                      trace::traceErrorKindName(src.error().kind) + ")");
            if (src.ok())
                ++transient_ok;
            break;
          }
          case 1: {
            // Payload corruption → BAD_CHECKSUM after a valid prefix.
            fault::FaultInjector::corruptFileBytes(path, 2000 + seed,
                                                   0.001, 20);
            trace::FileTraceSource src(path);
            const uint64_t got = drain(src);
            const auto kind = src.error().kind;
            check(src.ok() || got <= records, "io",
                  "seed " + std::to_string(seed) + ": bad record count");
            check(kind == trace::TraceError::Kind::NONE ||
                      kind == trace::TraceError::Kind::BAD_CHECKSUM,
                  "io",
                  "seed " + std::to_string(seed) +
                      ": corruption surfaced as " +
                      trace::traceErrorKindName(kind));
            if (kind == trace::TraceError::Kind::BAD_CHECKSUM)
                ++detected;
            break;
          }
          case 2: {
            // Truncation (honest feof) must still read TRUNCATED —
            // never the retriable READ_ERROR.
            fault::FaultInjector::truncateFile(
                path, fs::file_size(path) / 2 + 7);
            trace::FileTraceSource src(path);
            drain(src);
            check(src.error().kind ==
                      trace::TraceError::Kind::TRUNCATED,
                  "io",
                  "seed " + std::to_string(seed) +
                      ": truncation surfaced as " +
                      trace::traceErrorKindName(src.error().kind));
            if (src.error().kind == trace::TraceError::Kind::TRUNCATED)
                ++detected;
            break;
          }
        }
        std::remove(path.c_str());
    }

    // Persistent failure: the injector never relents, so retries
    // exhaust, the source fails with READ_ERROR, and the path is
    // session-quarantined; the next open fails fast.
    {
        const std::string path = (dir / "persistent.trace").string();
        copyFile(pristine, path);
        trace::FileTraceSource src(path);
        src.setIoFaultInjector([] { return true; });
        drain(src);
        check(src.error().kind == trace::TraceError::Kind::READ_ERROR,
              "io", std::string("persistent fault surfaced as ") +
                        trace::traceErrorKindName(src.error().kind));
        trace::FileTraceSource again(path);
        check(again.error().kind ==
                  trace::TraceError::Kind::QUARANTINED,
              "io", "persistently bad trace was not quarantined");
        trace::clearTraceQuarantine();
        std::remove(path.c_str());
    }

    std::remove(pristine.c_str());
    std::error_code ec;
    fs::remove_all(dir, ec);
    std::printf("phase B (I/O soak): %u transient recoveries, %u "
                "corruptions/truncations detected\n",
                transient_ok, detected);
}

void
phaseWatchdog(const Options &opt)
{
    // Every checkpoint stalls 10ms against a 1ms soft deadline: the
    // first checkpoint past 1024 records must throw, and runSweep must
    // surface it as one diagnostic exception naming the cell.
    sim::SweepCell cell;
    cell.workload = &trace::standardWorkloads().front();
    cell.cfg = SimConfig::make(Machine::RPO);
    cell.cfg.fault.seed = 7;
    cell.cfg.fault.stallRate = 1.0;
    cell.cfg.fault.stallMillis = 10;

    sim::SweepOptions sweep;
    sweep.jobs = opt.jobs;
    sweep.instsPerTrace = 4096;
    sweep.warmup = false;
    sweep.taskDeadlineMillis = 1;

    bool threw = false;
    std::string message;
    try {
        (void)sim::runSweep({cell}, sweep);
    } catch (const CancelledError &e) {
        threw = true;
        message = e.what();
    } catch (const std::exception &e) {
        message = e.what();
    }
    check(threw, "watchdog",
          "stalled sweep did not raise CancelledError (got: " + message +
              ")");
    check(message.find("sweep task [workload=") != std::string::npos,
          "watchdog", "missing cell diagnostic in: " + message);
    check(message.find("deadline") != std::string::npos, "watchdog",
          "missing deadline cause in: " + message);

    // Same cells without the stall or deadline: completes normally.
    cell.cfg.fault.stallRate = 0.0;
    sweep.taskDeadlineMillis = 0;
    try {
        const auto result = sim::runSweep({cell}, sweep);
        check(result.cells.size() == 1 &&
                  result.cells[0].x86Retired > 0,
              "watchdog", "clean sweep produced no work");
    } catch (const std::exception &e) {
        check(false, "watchdog",
              std::string("clean sweep raised: ") + e.what());
    }
    std::printf("phase C (watchdog): stall -> deadline -> clean "
                "diagnostic abort\n");
}

void
phaseDeterminism(const Options &opt)
{
    // Injection off.  Half the columns governed, half not: the digest
    // must not depend on --jobs either way (per-run governors, indexed
    // slots, canonical merges).
    SimConfig governed = SimConfig::make(Machine::RPO);
    governed.governor.budgetBytes = opt.budgetBytes / 2;
    std::vector<std::pair<std::string, SimConfig>> cols = {
        {"RPO", SimConfig::make(Machine::RPO)},
        {"RPO-gov", governed},
    };
    std::vector<const trace::Workload *> rows = {
        &trace::standardWorkloads()[0],
        &trace::standardWorkloads()[1],
    };
    sim::SweepOptions serial, parallel;
    serial.jobs = 1;
    parallel.jobs = opt.jobs > 1 ? opt.jobs : 4;
    serial.instsPerTrace = parallel.instsPerTrace = opt.insts;
    serial.warmup = parallel.warmup = false;

    const auto cells = sim::gridCells(rows, cols);
    const uint64_t d1 = sim::runSweep(cells, serial).digest();
    const uint64_t dn = sim::runSweep(cells, parallel).digest();
    char b1[32], bn[32];
    std::snprintf(b1, sizeof(b1), "%016llx", (unsigned long long)d1);
    std::snprintf(bn, sizeof(bn), "%016llx", (unsigned long long)dn);
    check(d1 == dn, "determinism",
          std::string("digest differs across jobs: ") + b1 + " vs " +
              bn);
    std::printf("phase D (determinism): digest %s identical for "
                "--jobs 1 and --jobs %u\n",
                b1, parallel.jobs);
}

void
phaseTierSoak(const Options &opt)
{
    const auto &workloads = trace::standardWorkloads();

    // E1: the phase-A campaign with background re-optimization on.
    // Alloc failures now also hit the tier's enqueue and publish
    // sites, and pass sabotage hits re-optimized bodies — which the
    // pre-publication lint gate must catch (rejects, not corruption).
    unsigned completed = 0;
    for (unsigned seed = 0; seed < opt.seeds; ++seed) {
        SimConfig cfg = chaosConfig(opt, seed);
        cfg.engine.tier.workers = 1 + seed % 3;
        cfg.engine.tier.hotThreshold = 1 + seed % 2;
        const auto &workload = workloads[seed % workloads.size()];
        try {
            auto src = workload.openTrace(0, cfg.maxInsts);
            sim::Simulator simulator(cfg);
            const sim::RunStats stats = simulator.run(*src);
            ++completed;
            check(stats.corruptFrameCommits == 0, "tier",
                  "seed " + std::to_string(seed) + " (" + workload.name +
                      "): " + std::to_string(stats.corruptFrameCommits) +
                      " corrupt frame(s) escaped with tiering on");
            check(stats.govPeakBytes < 2 * cfg.governor.budgetBytes,
                  "tier",
                  "seed " + std::to_string(seed) + " peak " +
                      std::to_string(stats.govPeakBytes) +
                      " bytes >= 2x budget with tiering on");
        } catch (const std::exception &e) {
            check(false, "tier",
                  "seed " + std::to_string(seed) +
                      " raised: " + e.what());
        }
    }
    check(completed == opt.seeds, "tier",
          std::to_string(opt.seeds - completed) +
              " tiered run(s) died");

    // E2: cooperative cancellation mid-run.  The token is shared with
    // the background queue, so pending re-opt work is dropped instead
    // of keeping workers busy past the abort.
    {
        CancelSource source;
        source.setDeadlineAfter(std::chrono::milliseconds(5));
        SimConfig cfg = SimConfig::make(Machine::RPO);
        cfg.maxInsts = 1u << 30;        // far beyond the deadline
        cfg.engine.tier.workers = 2;
        cfg.engine.tier.hotThreshold = 1;
        cfg.cancel = source.token();
        bool cancelled = false;
        try {
            auto src = workloads[0].openTrace(0, 200000);
            sim::Simulator simulator(cfg);
            (void)simulator.run(*src);
        } catch (const CancelledError &) {
            cancelled = true;
        } catch (const std::exception &e) {
            check(false, "tier",
                  std::string("cancelled tiered run raised: ") +
                      e.what());
        }
        check(cancelled, "tier",
              "deadline did not cancel the tiered run");
    }

    // E3: deterministic tier mode reproduces bit-for-bit even under
    // the full injection campaign.
    {
        SimConfig cfg = chaosConfig(opt, 3);
        cfg.engine.tier.workers = 1;
        cfg.engine.tier.deterministic = true;
        const uint64_t a = runOne(cfg, workloads[0], 0, nullptr);
        const uint64_t b = runOne(cfg, workloads[0], 0, nullptr);
        check(a == b, "tier",
              "deterministic tier fingerprint not reproducible: " +
                  std::to_string(a) + " vs " + std::to_string(b));
    }

    // E4: with injection off, asynchronous re-optimization must retire
    // exactly the architectural state of the synchronous full
    // pipeline (the tier acceptance bar).
    unsigned converged = 0;
    const unsigned convergence_runs =
        unsigned(std::min<size_t>(4, workloads.size()));
    for (unsigned w = 0; w < convergence_runs; ++w) {
        SimConfig sync_cfg = SimConfig::make(Machine::RPO);
        sync_cfg.maxInsts = opt.insts;
        sync_cfg.verifyOnline = true;
        SimConfig tier_cfg = sync_cfg;
        tier_cfg.engine.tier.workers = 2;
        try {
            auto sync_src = workloads[w].openTrace(0, opt.insts);
            sim::Simulator sync_sim(sync_cfg);
            const sim::RunStats sync_stats = sync_sim.run(*sync_src);
            auto tier_src = workloads[w].openTrace(0, opt.insts);
            sim::Simulator tier_sim(tier_cfg);
            const sim::RunStats tier_stats = tier_sim.run(*tier_src);
            const bool same =
                sync_stats.archDigestValid &&
                tier_stats.archDigestValid &&
                sync_stats.archDigest == tier_stats.archDigest &&
                tier_stats.verifyDetections == 0;
            check(same, "tier",
                  workloads[w].name +
                      ": async tier diverged from sync full-opt");
            if (same)
                ++converged;
        } catch (const std::exception &e) {
            check(false, "tier",
                  workloads[w].name +
                      " convergence run raised: " + e.what());
        }
    }

    std::printf("phase E (tier soak): %u/%u injected tiered runs, "
                "%u/%u workloads converged async == sync\n",
                completed, opt.seeds, converged, convergence_runs);
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seeds N] [--insts N] [--budget BYTES] "
                 "[--jobs N]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seeds") {
            if (++i >= argc)
                return usage(argv[0]);
            opt.seeds = unsigned(sim::parseCount(argv[i], "--seeds"));
        } else if (arg == "--insts") {
            if (++i >= argc)
                return usage(argv[0]);
            opt.insts = sim::parseCount(argv[i], "--insts");
        } else if (arg == "--budget") {
            if (++i >= argc)
                return usage(argv[0]);
            opt.budgetBytes =
                size_t(sim::parseCount(argv[i], "--budget"));
        } else if (arg == "--jobs" || arg == "-j") {
            if (++i >= argc)
                return usage(argv[0]);
            opt.jobs = unsigned(sim::parseCount(argv[i], "--jobs"));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            return usage(argv[0]);
        }
    }

    std::printf("chaosrunner: %u seeds, %llu insts/run, budget %zu "
                "bytes, %u jobs, lock-hierarchy checker %s\n",
                opt.seeds, (unsigned long long)opt.insts,
                opt.budgetBytes, opt.jobs,
                sync::hierarchyChecked() ? "armed" : "off");

    phaseEngineSoak(opt);
    phaseIoSoak(opt);
    phaseWatchdog(opt);
    phaseDeterminism(opt);
    phaseTierSoak(opt);

    if (failures) {
        std::fprintf(stderr, "chaosrunner: %u failure(s)\n", failures);
        return 1;
    }
    std::printf("chaosrunner: all phases passed\n");
    return 0;
}
