/**
 * @file
 * tracec — trace-container companion tool.
 *
 * One CLI for everything that touches trace containers outside the
 * simulator:
 *
 *   record <workload> <hotspot> <insts> <out>   synthesize + record v3
 *   convert <in> <out>                          v2 or v3 → v3 (recode)
 *   verify <file...>                            full read + digest
 *   inspect <file...>                           header/codec/geometry
 *   index <file>                                dump the chunk index
 *   corpus-build <dir> --insts N                record all workloads,
 *                                               write corpus.json
 *   corpus-verify <manifest>                    re-digest every entry
 *
 * Shared flags for writers: --codec raw|zlib, --chunk N (records per
 * chunk), --v2 (record/convert to the legacy flat container instead).
 *
 * verify and corpus-verify exit non-zero on the first mismatch, so
 * they are usable as CI gates; verify prints the container-independent
 * stream digest (wire::streamDigest) that corpus manifests pin.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "trace/chunk.hh"
#include "trace/corpus.hh"
#include "trace/tracev3.hh"
#include "trace/workload.hh"
#include "util/logging.hh"

using namespace replay;
using trace::TraceError;

namespace {

struct WriterFlags
{
    trace::V3Options v3;
    bool v2 = false;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: tracec <command> [args]\n"
        "  record <workload> <hotspot> <insts> <out> "
        "[--codec raw|zlib] [--chunk N] [--v2]\n"
        "  convert <in> <out> [--codec raw|zlib] [--chunk N] [--v2]\n"
        "  verify <file...>\n"
        "  inspect <file...>\n"
        "  index <file>\n"
        "  corpus-build <dir> --insts N [--workloads a,b] "
        "[--codec raw|zlib] [--chunk N]\n"
        "  corpus-verify <manifest>\n");
    return 2;
}

/** Pull writer flags out of @p args (consuming them). */
bool
parseWriterFlags(std::vector<std::string> &args, WriterFlags &flags)
{
    std::vector<std::string> rest;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--codec") {
            if (++i >= args.size())
                return false;
            if (args[i] == "raw") {
                flags.v3.codec = trace::V3Codec::RAW;
            } else if (args[i] == "zlib") {
                if (!trace::v3ZlibAvailable()) {
                    std::fprintf(stderr,
                                 "tracec: this build has no zlib\n");
                    return false;
                }
                flags.v3.codec = trace::V3Codec::ZLIB;
            } else {
                return false;
            }
        } else if (args[i] == "--chunk") {
            if (++i >= args.size())
                return false;
            flags.v3.chunkRecords =
                unsigned(sim::parseCount(args[i].c_str(), "--chunk"));
        } else if (args[i] == "--v2") {
            flags.v2 = true;
        } else {
            rest.push_back(args[i]);
        }
    }
    args = std::move(rest);
    return true;
}

/** Copy @p src to @p out under @p flags; returns records written. */
uint64_t
writeStream(trace::TraceSource &src, const std::string &out,
            const WriterFlags &flags, TraceError &err)
{
    if (flags.v2) {
        trace::TraceFileWriter writer(out);
        while (!src.done()) {
            writer.write(*src.peek());
            src.advance();
        }
        const uint64_t n = writer.written();
        err = writer.close();
        return n;
    }
    trace::TraceV3Writer writer(out, flags.v3);
    while (!src.done()) {
        writer.write(*src.peek());
        src.advance();
    }
    const uint64_t n = writer.written();
    err = writer.close();
    return n;
}

int
cmdRecord(std::vector<std::string> args, const WriterFlags &flags)
{
    if (args.size() != 4)
        return usage();
    const trace::Workload &workload = trace::findWorkload(args[0]);
    char *end = nullptr;
    const unsigned hotspot =
        unsigned(std::strtoul(args[1].c_str(), &end, 10));
    fatal_if(!end || *end != '\0', "malformed hotspot '%s'",
             args[1].c_str());
    const uint64_t insts = sim::parseCount(args[2].c_str(), "insts");
    fatal_if(hotspot >= workload.numTraces,
             "workload %s has %u hot spots", workload.name.c_str(),
             workload.numTraces);

    auto src = workload.openTrace(hotspot, insts);
    TraceError err;
    const uint64_t n = writeStream(*src, args[3], flags, err);
    if (!err.ok()) {
        std::fprintf(stderr, "tracec: %s\n", err.describe().c_str());
        return 1;
    }
    std::printf("recorded %llu records of %s.%u to %s\n",
                (unsigned long long)n, workload.name.c_str(), hotspot,
                args[3].c_str());
    return 0;
}

int
cmdConvert(std::vector<std::string> args, const WriterFlags &flags)
{
    if (args.size() != 2)
        return usage();
    TraceError open_err;
    auto src = trace::openTraceFile(args[0], &open_err);
    if (!src || !open_err.ok()) {
        std::fprintf(stderr, "tracec: %s\n",
                     open_err.describe().c_str());
        return 1;
    }
    TraceError err;
    const uint64_t n = writeStream(*src, args[1], flags, err);
    if (!err.ok()) {
        std::fprintf(stderr, "tracec: %s\n", err.describe().c_str());
        return 1;
    }
    std::printf("converted %llu records %s -> %s\n",
                (unsigned long long)n, args[0].c_str(),
                args[1].c_str());
    return 0;
}

/** Full sequential read; fills digest/records, false on any error. */
bool
verifyOne(const std::string &path, uint64_t &records, uint64_t &digest,
          TraceError &err)
{
    auto src = trace::openTraceFile(path, &err);
    if (!src || !err.ok())
        return false;
    uint64_t n = 0;
    uint8_t buf[trace::wire::MAX_RECORD_BYTES];
    uint64_t h = 14695981039346656037ULL;
    while (!src->done()) {
        const size_t len = trace::wire::encodeRecord(*src->peek(), buf);
        for (size_t i = 0; i < len; ++i) {
            h ^= buf[i];
            h *= 1099511628211ULL;
        }
        src->advance();
        ++n;
    }
    records = n;
    digest = h;
    // The stream may have ended early because of mid-file damage: ask
    // the concrete source.
    if (auto *v3 = dynamic_cast<trace::TraceV3Source *>(src.get()))
        err = v3->error();
    else if (auto *v2 =
                 dynamic_cast<trace::FileTraceSource *>(src.get()))
        err = v2->error();
    return err.ok();
}

int
cmdVerify(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    int rc = 0;
    for (const std::string &path : args) {
        uint64_t records = 0, digest = 0;
        TraceError err;
        if (verifyOne(path, records, digest, err)) {
            std::printf("%s: ok, %llu records, digest %s\n",
                        path.c_str(), (unsigned long long)records,
                        trace::corpusDigestHex(digest).c_str());
        } else {
            std::printf("%s: FAILED after %llu records: %s\n",
                        path.c_str(), (unsigned long long)records,
                        err.describe().c_str());
            rc = 1;
        }
    }
    return rc;
}

int
cmdInspect(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    int rc = 0;
    for (const std::string &path : args) {
        const trace::V3Info info = trace::inspectV3(path);
        if (!info.ok()) {
            std::printf("%s: %s\n", path.c_str(),
                        info.error.describe().c_str());
            rc = 1;
            continue;
        }
        const uint64_t raw =
            info.recordCount * uint64_t(info.recordBytes);
        std::printf(
            "%s: v3, %llu records (%u bytes each), codec %s, "
            "%zu chunks of %u records, %llu -> %llu payload bytes "
            "(%.2fx), %llu file bytes\n",
            path.c_str(), (unsigned long long)info.recordCount,
            info.recordBytes, v3CodecName(info.codec),
            info.chunks.size(), info.chunkRecords,
            (unsigned long long)raw,
            (unsigned long long)info.payloadBytes(),
            info.payloadBytes()
                ? double(raw) / double(info.payloadBytes())
                : 0.0,
            (unsigned long long)info.fileBytes);
    }
    return rc;
}

int
cmdIndex(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage();
    const trace::V3Info info = trace::inspectV3(args[0]);
    if (!info.ok()) {
        std::fprintf(stderr, "tracec: %s\n",
                     info.error.describe().c_str());
        return 1;
    }
    std::printf("%-6s %-12s %-12s %-10s %-10s %s\n", "chunk", "offset",
                "first_rec", "records", "payload", "checksum");
    for (size_t i = 0; i < info.chunks.size(); ++i) {
        const auto &c = info.chunks[i];
        std::printf("%-6zu %-12llu %-12llu %-10u %-10u %08x\n", i,
                    (unsigned long long)c.offset,
                    (unsigned long long)c.firstRecord, c.records,
                    c.payloadBytes, c.checksum);
    }
    std::printf("index at byte %llu, %zu entries\n",
                (unsigned long long)info.indexOffset,
                info.chunks.size());
    return 0;
}

int
cmdCorpusBuild(std::vector<std::string> args, const WriterFlags &flags)
{
    uint64_t insts = 0;
    std::vector<std::string> only;
    std::vector<std::string> rest;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--insts") {
            if (++i >= args.size())
                return usage();
            insts = sim::parseCount(args[i].c_str(), "--insts");
        } else if (args[i] == "--workloads") {
            if (++i >= args.size())
                return usage();
            std::string list = args[i];
            size_t start = 0;
            while (start <= list.size()) {
                const size_t comma = list.find(',', start);
                const size_t end =
                    comma == std::string::npos ? list.size() : comma;
                if (end > start)
                    only.push_back(list.substr(start, end - start));
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        } else {
            rest.push_back(args[i]);
        }
    }
    if (rest.size() != 1 || insts == 0)
        return usage();
    const std::string dir = rest[0];
    std::error_code dir_ec;
    std::filesystem::create_directories(dir, dir_ec);
    if (dir_ec) {
        std::fprintf(stderr, "tracec: cannot create '%s': %s\n",
                     dir.c_str(), dir_ec.message().c_str());
        return 1;
    }

    // A typo'd --workloads name must not silently shrink the corpus.
    for (const std::string &name : only) {
        bool known = false;
        for (const trace::Workload &w : trace::standardWorkloads())
            known = known || name == w.name;
        if (!known) {
            std::fprintf(stderr, "tracec: unknown workload '%s'\n",
                         name.c_str());
            return 1;
        }
    }

    std::vector<trace::CorpusEntry> entries;
    for (const trace::Workload &w : trace::standardWorkloads()) {
        if (!only.empty()) {
            bool selected = false;
            for (const std::string &name : only)
                selected = selected || name == w.name;
            if (!selected)
                continue;
        }
        for (unsigned t = 0; t < w.numTraces; ++t) {
            trace::CorpusEntry entry;
            entry.id = w.name + "." + std::to_string(t);
            entry.workload = w.name;
            entry.traceIdx = t;
            entry.file = entry.id + ".rpl3";
            const std::string path = dir + "/" + entry.file;

            auto rec_src = w.openTrace(t, insts);
            TraceError err;
            entry.records = writeStream(*rec_src, path,
                                        WriterFlags{flags.v3, false},
                                        err);
            if (!err.ok()) {
                std::fprintf(stderr, "tracec: %s\n",
                             err.describe().c_str());
                return 1;
            }
            // Digest the authoritative stream (the synthesizer), not
            // the file we just wrote: corpus-verify then proves the
            // recording reproduces it.
            auto dig_src = w.openTrace(t, insts);
            entry.digest = trace::wire::streamDigest(*dig_src);
            std::printf("%-12s %llu records -> %s\n", entry.id.c_str(),
                        (unsigned long long)entry.records,
                        path.c_str());
            entries.push_back(std::move(entry));
        }
    }

    const std::string manifest = dir + "/corpus.json";
    const TraceError err =
        trace::writeCorpusManifest(manifest, entries);
    if (!err.ok()) {
        std::fprintf(stderr, "tracec: %s\n", err.describe().c_str());
        return 1;
    }
    std::printf("wrote %zu entries to %s\n", entries.size(),
                manifest.c_str());
    return 0;
}

int
cmdCorpusVerify(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage();
    const trace::TraceCorpus corpus = trace::TraceCorpus::load(args[0]);
    if (!corpus.ok()) {
        std::fprintf(stderr, "tracec: %s\n",
                     corpus.error().describe().c_str());
        return 1;
    }
    int rc = 0;
    for (const trace::CorpusEntry &entry : corpus.entries()) {
        uint64_t records = 0, digest = 0;
        TraceError err;
        const std::string path = corpus.resolvePath(entry);
        if (!verifyOne(path, records, digest, err)) {
            std::printf("%-12s FAILED: %s\n", entry.id.c_str(),
                        err.describe().c_str());
            rc = 1;
        } else if (records != entry.records ||
                   digest != entry.digest) {
            std::printf("%-12s STALE: %llu records digest %s, "
                        "manifest pins %llu / %s\n",
                        entry.id.c_str(), (unsigned long long)records,
                        trace::corpusDigestHex(digest).c_str(),
                        (unsigned long long)entry.records,
                        trace::corpusDigestHex(entry.digest).c_str());
            rc = 1;
        } else {
            std::printf("%-12s ok (%llu records, digest %s)\n",
                        entry.id.c_str(), (unsigned long long)records,
                        trace::corpusDigestHex(digest).c_str());
        }
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    WriterFlags flags;
    if (!parseWriterFlags(args, flags))
        return usage();

    if (cmd == "record")
        return cmdRecord(std::move(args), flags);
    if (cmd == "convert")
        return cmdConvert(std::move(args), flags);
    if (cmd == "verify")
        return cmdVerify(args);
    if (cmd == "inspect")
        return cmdInspect(args);
    if (cmd == "index")
        return cmdIndex(args);
    if (cmd == "corpus-build")
        return cmdCorpusBuild(std::move(args), flags);
    if (cmd == "corpus-verify")
        return cmdCorpusVerify(args);
    return usage();
}
