/**
 * @file
 * Differential fuzzing driver.
 *
 * Sweeps a seed range through the random-program oracle, reports every
 * divergence, optionally reduces each one to a minimal repro file, and
 * replays existing repro files.
 *
 * Usage:
 *   difforacle [--seed-range A:B] [--max-insts N] [--passmask M]
 *              [--reduce] [--out DIR] [--replay FILE ...]
 *              [--corpus MANIFEST] [--quiet]
 *
 * --corpus runs the corpus-integrity leg instead of the program
 * oracle: every manifest entry is re-read end to end and its record
 * count and stream digest are differenced against the pinned values —
 * the "two implementations" being the recorded container and the
 * manifest's claim about it.  Each stale or unreadable entry counts as
 * one divergence.
 *
 * Exit status is the number of divergences (capped at 99), so a clean
 * sweep exits 0.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/difforacle.hh"
#include "fuzz/reducer.hh"
#include "trace/chunk.hh"
#include "trace/corpus.hh"

using namespace replay;

namespace {

struct Options
{
    uint64_t seedBegin = 0;
    uint64_t seedEnd = 1000;
    uint64_t maxInsts = 4000;
    uint8_t passMask = 0x7f;
    bool reduce = false;
    bool quiet = false;
    std::string outDir = "fuzz-out";
    std::string corpusManifest;
    std::vector<std::string> replayFiles;
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seed-range A:B] [--max-insts N] "
                 "[--passmask M] [--reduce] [--out DIR] "
                 "[--replay FILE ...] [--corpus MANIFEST] [--quiet]\n",
                 argv0);
    std::exit(2);
}

/**
 * Corpus-integrity leg: re-read every manifest entry and difference
 * its observed (records, digest) against the pinned values.  Returns
 * the divergence count.
 */
int
checkCorpus(const std::string &manifest, const Options &opt)
{
    const trace::TraceCorpus corpus = trace::TraceCorpus::load(manifest);
    if (!corpus.ok()) {
        std::fprintf(stderr, "difforacle: %s\n",
                     corpus.error().describe().c_str());
        return 1;
    }
    int diverging = 0;
    for (const trace::CorpusEntry &entry : corpus.entries()) {
        trace::TraceError err;
        auto src = corpus.open(entry, 0, &err);
        if (!src) {
            std::printf("%s: DIVERGES — unreadable: %s\n",
                        entry.id.c_str(), err.describe().c_str());
            ++diverging;
            continue;
        }
        const uint64_t digest = trace::wire::streamDigest(*src);
        const uint64_t records = src->consumed();
        if (records != entry.records || digest != entry.digest) {
            std::printf("%s: DIVERGES — %llu records digest %s, "
                        "manifest pins %llu / %s\n",
                        entry.id.c_str(), (unsigned long long)records,
                        trace::corpusDigestHex(digest).c_str(),
                        (unsigned long long)entry.records,
                        trace::corpusDigestHex(entry.digest).c_str());
            ++diverging;
        } else if (!opt.quiet) {
            std::printf("%s: clean (%llu records)\n", entry.id.c_str(),
                        (unsigned long long)records);
        }
    }
    std::printf("%zu corpus entries, %d diverging\n",
                corpus.entries().size(), diverging);
    return diverging;
}

void
printReport(uint64_t seed, const fuzz::OracleReport &report)
{
    const fuzz::Divergence &d = report.div;
    std::printf("seed %llu: %s at retired=%llu frame=%#x\n"
                "  %s\n",
                (unsigned long long)seed,
                fuzz::divergenceKindName(d.kind),
                (unsigned long long)d.retired, d.framePc,
                d.detail.c_str());
}

int
replayFile(const std::string &path, const Options &opt)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const auto repro = fuzz::Repro::parse(buf.str());
    if (!repro) {
        std::fprintf(stderr, "malformed repro %s\n", path.c_str());
        return 1;
    }
    const auto report = fuzz::runOracle(repro->spec,
                                        repro->oracleConfig());
    if (report.diverged()) {
        std::printf("%s: DIVERGES — %s: %s\n", path.c_str(),
                    fuzz::divergenceKindName(report.div.kind),
                    report.div.detail.c_str());
        return 1;
    }
    if (!opt.quiet)
        std::printf("%s: clean (%llu insts, %llu frames)\n",
                    path.c_str(), (unsigned long long)report.retired,
                    (unsigned long long)report.framesCommitted);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (++i >= argc)
                usage(argv[0]);
            return argv[i];
        };
        if (arg == "--seed-range") {
            const char *v = next();
            const char *colon = std::strchr(v, ':');
            if (!colon)
                usage(argv[0]);
            opt.seedBegin = std::strtoull(v, nullptr, 0);
            opt.seedEnd = std::strtoull(colon + 1, nullptr, 0);
        } else if (arg == "--max-insts") {
            opt.maxInsts = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--passmask") {
            opt.passMask = uint8_t(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--reduce") {
            opt.reduce = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--out") {
            opt.outDir = next();
        } else if (arg == "--replay") {
            while (i + 1 < argc && argv[i + 1][0] != '-')
                opt.replayFiles.push_back(argv[++i]);
        } else if (arg == "--corpus") {
            opt.corpusManifest = next();
        } else {
            usage(argv[0]);
        }
    }

    if (!opt.corpusManifest.empty()) {
        const int bad = checkCorpus(opt.corpusManifest, opt);
        return bad > 99 ? 99 : bad;
    }

    if (!opt.replayFiles.empty()) {
        int bad = 0;
        for (const auto &path : opt.replayFiles)
            bad += replayFile(path, opt);
        return bad > 99 ? 99 : bad;
    }

    fuzz::OracleConfig cfg;
    cfg.maxInsts = opt.maxInsts;
    cfg.opt = opt::OptConfig::fromPassMask(opt.passMask);

    uint64_t diverging = 0;
    uint64_t frames = 0, insts = 0;
    uint64_t static_checked = 0, static_violations = 0;
    for (uint64_t seed = opt.seedBegin; seed < opt.seedEnd; ++seed) {
        const auto spec = fuzz::ProgramSpec::random(seed);
        const auto report = fuzz::runOracle(spec, cfg);
        frames += report.framesCommitted;
        insts += report.retired;
        static_checked += report.framesStaticChecked;
        static_violations += report.staticViolations;
        if (!report.diverged()) {
            if (!opt.quiet && (seed + 1) % 500 == 0)
                std::printf("... %llu seeds, %llu frames committed\n",
                            (unsigned long long)(seed + 1 - opt.seedBegin),
                            (unsigned long long)frames);
            continue;
        }

        ++diverging;
        printReport(seed, report);
        if (opt.reduce) {
            fuzz::Reducer reducer = fuzz::makeOracleReducer(opt.maxInsts);
            const auto repro =
                reducer.reduce(spec, opt.passMask, opt.maxInsts);
            if (repro) {
                std::filesystem::create_directories(opt.outDir);
                const std::string path =
                    opt.outDir + "/repro-seed" + std::to_string(seed)
                    + ".txt";
                std::ofstream out(path);
                out << repro->serialize();
                std::printf("  reduced to %zu segments, passmask %#x "
                            "(%u probes) -> %s\n",
                            repro->spec.segments.size(),
                            unsigned(repro->passMask), reducer.probes(),
                            path.c_str());
            }
        }
    }

    std::printf("%llu seeds, %llu diverging; %llu insts, %llu frames "
                "committed; %llu frames static-checked, %llu lint "
                "violations\n",
                (unsigned long long)(opt.seedEnd - opt.seedBegin),
                (unsigned long long)diverging,
                (unsigned long long)insts, (unsigned long long)frames,
                (unsigned long long)static_checked,
                (unsigned long long)static_violations);
    return diverging > 99 ? 99 : int(diverging);
}
