/**
 * @file
 * framelint — static verification sweep over the paper workloads.
 *
 * Replays every hot-spot trace of the selected workloads through the
 * headless frame machine with the static verifier attached in counting
 * mode: every optimizer pass invocation is translation-validated
 * against its snapshot (passcheck.hh), every intermediate buffer and
 * every deposited frame is linted (lint.hh).  A clean engine reports
 * zero violations; any nonzero count pins an optimizer bug to a pass
 * and an invariant.
 *
 * Usage:
 *   framelint [--insts N] [--json] [--list] [--panic] [workload ...]
 *
 * --panic aborts on the first finding with full before/after buffer
 * dumps — the debugging mode for pinning a violation to a frame.
 *
 * Workloads default to all 14 applications of Table 1.  The exit
 * status is the total violation count (capped at 125), so a clean
 * sweep exits 0.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/sequencer.hh"
#include "sim/headless.hh"
#include "sim/sweep.hh"
#include "trace/workload.hh"
#include "util/table.hh"
#include "verify/static/hook.hh"
#include "verify/static/lint.hh"

using namespace replay;

namespace {

struct WorkloadResult
{
    const trace::Workload *workload = nullptr;
    uint64_t retired = 0;
    uint64_t frameCommits = 0;
    uint64_t framesLinted = 0;
    uint64_t frameLintViolations = 0;
    uint64_t passViolations = 0;    ///< optimizer-hook findings
    std::vector<std::string> samples;   ///< first few findings
};

WorkloadResult
runWorkload(const trace::Workload &workload, uint64_t insts)
{
    WorkloadResult res;
    res.workload = &workload;
    const auto &stats = vstatic::staticCheckStats();
    const uint64_t pass_before = stats.violations();

    for (unsigned t = 0; t < workload.numTraces; ++t) {
        const x86::Program prog = workload.buildProgram(t);
        sim::FrameMachine fm(prog, core::EngineConfig{}, insts);
        std::unordered_set<uint64_t> linted;
        for (;;) {
            const sim::MachineStep step = fm.step();
            if (step.kind == sim::MachineStep::Kind::DONE)
                break;
            if (step.kind != sim::MachineStep::Kind::FRAME)
                continue;
            // Frame bodies are immutable after deposit: lint each
            // frame once, however often the cache re-fetches it.
            if (!linted.insert(step.frame->id).second)
                continue;
            ++res.framesLinted;
            const vstatic::Report lint =
                vstatic::lintFrame(*step.frame);
            if (!lint.ok()) {
                res.frameLintViolations += lint.violations.size();
                if (res.samples.size() < 3) {
                    res.samples.push_back("frame " +
                                          std::to_string(step.frame->id) +
                                          ": " + lint.summary(3));
                }
            }
        }
        res.retired += fm.retired();
        res.frameCommits += fm.framesCommitted();
    }
    res.passViolations = stats.violations() - pass_before;
    return res;
}

/** Minimal JSON string escaping (labels are plain ASCII). */
std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out + "\"";
}

void
emitJson(const std::vector<WorkloadResult> &rows, uint64_t insts,
         uint64_t total)
{
    const auto &stats = vstatic::staticCheckStats();
    std::printf("{\n  \"insts_per_trace\": %llu,\n",
                (unsigned long long)insts);
    std::printf("  \"workloads\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const WorkloadResult &r = rows[i];
        std::printf("    {\"workload\": %s, \"x86_retired\": %llu, "
                    "\"frame_commits\": %llu, \"frames_linted\": %llu, "
                    "\"frame_lint_violations\": %llu, "
                    "\"pass_violations\": %llu}%s\n",
                    jsonStr(r.workload->name).c_str(),
                    (unsigned long long)r.retired,
                    (unsigned long long)r.frameCommits,
                    (unsigned long long)r.framesLinted,
                    (unsigned long long)r.frameLintViolations,
                    (unsigned long long)r.passViolations,
                    i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"static_check\": {\n");
    std::printf("    \"frames_checked\": %llu,\n",
                (unsigned long long)stats.framesChecked.load());
    std::printf("    \"passes_checked\": %llu,\n",
                (unsigned long long)stats.passesChecked.load());
    std::printf("    \"lint_violations\": %llu,\n",
                (unsigned long long)stats.lintViolations.load());
    std::printf("    \"pass_violations\": %llu,\n",
                (unsigned long long)stats.passViolations.load());
    std::printf("    \"by_pass\": {");
    for (unsigned p = 0; p < opt::NUM_PASS_IDS; ++p) {
        std::printf("%s\"%s\": %llu", p ? ", " : "",
                    opt::passIdName(static_cast<opt::PassId>(p)),
                    (unsigned long long)stats.byPass[p].load());
    }
    std::printf("},\n    \"by_check\": {");
    bool first = true;
    for (unsigned c = 0; c < vstatic::NUM_CHECKS; ++c) {
        const uint64_t n = stats.byCheck[c].load();
        if (!n)
            continue;
        std::printf("%s\"%s\": %llu", first ? "" : ", ",
                    vstatic::checkName(static_cast<vstatic::Check>(c)),
                    (unsigned long long)n);
        first = false;
    }
    std::printf("}\n  },\n");
    std::printf("  \"violations_total\": %llu\n}\n",
                (unsigned long long)total);
}

void
emitText(const std::vector<WorkloadResult> &rows, uint64_t total)
{
    const auto &stats = vstatic::staticCheckStats();
    TextTable table;
    table.header({"app", "x86 retired", "frame commits", "frames linted",
                  "lint viol", "pass viol"});
    for (const WorkloadResult &r : rows) {
        table.row({r.workload->name, std::to_string(r.retired),
                   std::to_string(r.frameCommits),
                   std::to_string(r.framesLinted),
                   std::to_string(r.frameLintViolations),
                   std::to_string(r.passViolations)});
    }
    std::printf("%s\n", table.render().c_str());
    for (const WorkloadResult &r : rows) {
        for (const std::string &s : r.samples)
            std::printf("%s: %s\n", r.workload->name.c_str(), s.c_str());
    }
    std::printf("static check: %llu frames, %llu pass invocations; ",
                (unsigned long long)stats.framesChecked.load(),
                (unsigned long long)stats.passesChecked.load());
    std::printf("per-pass violations:");
    for (unsigned p = 0; p < opt::NUM_PASS_IDS; ++p) {
        std::printf(" %s=%llu",
                    opt::passIdName(static_cast<opt::PassId>(p)),
                    (unsigned long long)stats.byPass[p].load());
    }
    std::printf("\ntotal violations: %llu%s\n", (unsigned long long)total,
                total ? "" : " (lint-clean)");
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--insts N] [--json] [--list] [--panic] "
                 "[workload ...]\n"
                 "workloads default to all 14 Table 1 applications\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t insts = 0;
    bool json = false;
    bool list = false;
    bool panic_mode = false;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--insts") {
            if (++i >= argc)
                return usage(argv[0]);
            insts = sim::parseCount(argv[i], "--insts");
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--panic") {
            panic_mode = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            names.push_back(arg);
        }
    }

    if (list) {
        for (const auto &w : trace::standardWorkloads())
            std::printf("%s\n", w.name.c_str());
        return 0;
    }

    std::vector<const trace::Workload *> selected;
    if (names.empty()) {
        for (const auto &w : trace::standardWorkloads())
            selected.push_back(&w);
    } else {
        for (const auto &name : names)
            selected.push_back(&trace::findWorkload(name));
    }
    if (!insts)
        insts = sim::defaultInstsPerTrace();

    // Counting mode: report totals instead of aborting on the first
    // finding.  Forcing the env policy off keeps the FrameMachine's
    // debug-build auto-enable from re-arming panic mode.
    setenv("REPLAY_STATIC_CHECK", "0", 1);
    vstatic::installStaticChecker(panic_mode ? vstatic::Action::PANIC
                                             : vstatic::Action::COUNT);

    if (!json) {
        std::printf("framelint: %llu x86 insts per hot-spot trace, "
                    "%zu workload(s)\n\n",
                    (unsigned long long)insts, selected.size());
    }

    std::vector<WorkloadResult> rows;
    for (const trace::Workload *w : selected)
        rows.push_back(runWorkload(*w, insts));

    uint64_t total = vstatic::staticCheckStats().violations();
    for (const WorkloadResult &r : rows)
        total += r.frameLintViolations;

    if (json)
        emitJson(rows, insts, total);
    else
        emitText(rows, total);

    return int(total > 125 ? 125 : total);
}
