/**
 * @file
 * perfgate — deterministic hot-path performance gate.
 *
 * Measures the simulation datapath the way the paper sweeps exercise
 * it (a standard-workload RP/RPO grid plus the construct -> optimize
 * -> deposit engine loop), writes the numbers to BENCH_hotpath.json,
 * and — in --check mode — compares them against a checked-in baseline:
 *
 *   - determinism is a hard gate: the sweep digest and the engine's
 *     candidate count must match the baseline exactly (exit 2),
 *   - throughput may not regress more than --tolerance (default 25%)
 *     below the baseline (exit 1); improvements always pass.
 *
 * Refresh the baseline after an intentional change with:
 *
 *   ./build/tools/perfgate --write --out bench/BENCH_hotpath.baseline.json
 *
 * The gate is wired into scripts/tier1.sh as the perf-smoke stage;
 * set REPLAY_SKIP_PERFGATE=1 to skip it (e.g. on loaded CI machines).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/constructor.hh"
#include "core/sequencer.hh"
#include "opt/optimizer.hh"
#include "sim/sweep.hh"
#include "trace/chunk.hh"
#include "trace/tracefile.hh"
#include "trace/tracer.hh"
#include "trace/tracev3.hh"
#include "trace/workload.hh"
#include "util/logging.hh"

using namespace replay;

namespace {

struct Measurement
{
    uint64_t instsPerTrace = 0;
    double instsPerSec = 0;
    double cellsPerSec = 0;
    double framesPerSec = 0;
    double optUopsPerSec = 0;
    double traceIngestMbps = 0;
    std::string sweepDigest;
    uint64_t engineCandidates = 0;
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The grid the gate times: all 14 workloads under RP and RPO. */
sim::SweepResult
runGateSweep(uint64_t insts)
{
    sim::SweepOptions opts;
    opts.jobs = 1;              // single-threaded: comparable numbers
    opts.instsPerTrace = insts;
    const std::vector<std::pair<std::string, sim::SimConfig>> cols = {
        {"RP", sim::SimConfig::make(sim::Machine::RP)},
        {"RPO", sim::SimConfig::make(sim::Machine::RPO)},
    };
    return sim::runSweep(sim::gridCells(sim::standardWorkloadRows(), cols),
                         opts);
}

/** Construct/optimize/deposit loop over a pre-recorded trace. */
void
runEnginePass(const std::vector<trace::TraceRecord> &records,
              Measurement &m)
{
    double best = 0;
    // One untimed warm-up pass, then best-of-two timed passes: the
    // gate wants steady-state throughput, not first-touch costs.
    for (int pass = 0; pass < 3; ++pass) {
        core::RePlayEngine engine;
        const double t0 = now();
        uint64_t cycle = 0;
        for (const auto &rec : records)
            engine.observeRetired(rec, ++cycle);
        const double dt = now() - t0;
        const uint64_t cands =
            engine.stats().counter("candidates").value();
        m.engineCandidates = cands;
        if (pass > 0 && dt > 0)
            best = std::max(best, double(cands) / dt);
    }
    m.framesPerSec = best;
}

/**
 * Pass-level optimizer throughput: the full seven-pass pipeline +
 * finalize over real harvested candidates, isolated from simulation.
 * This is the number the SoA slab IR moves; the sweep above barely
 * sees it because the default grid is simulation-bound.
 */
void
runOptimizerPass(const std::vector<trace::TraceRecord> &records,
                 Measurement &m)
{
    core::FrameConstructor ctor;
    std::vector<core::FrameCandidate> cands;
    for (const auto &rec : records) {
        if (auto cand = ctor.observe(rec))
            cands.push_back(std::move(*cand));
        if (cands.size() >= 256)
            break;
    }
    if (cands.empty())
        return;
    uint64_t uops = 0;
    for (const auto &c : cands)
        uops += c.uops.size();

    opt::Optimizer optimizer;
    opt::OptStats stats;
    opt::OptimizedFrame out;
    constexpr int REPS = 8;     // ~25ms per timed pass: above noise
    double best = 0;
    // Warm-up plus best-of-three: this stage is cheap enough that the
    // extra pass buys real run-to-run stability.
    for (int pass = 0; pass < 4; ++pass) {
        const double t0 = now();
        for (int rep = 0; rep < REPS; ++rep) {
            for (const auto &c : cands)
                optimizer.optimize(c.uops, c.blocks, nullptr, stats,
                                   out);
        }
        const double dt = now() - t0;
        if (pass > 0 && dt > 0)
            best = std::max(best, double(uops) * REPS / dt);
    }
    m.optUopsPerSec = best;
}

/**
 * v3 mmap ingest bandwidth (decoded record bytes per second) over a
 * RAW container of the harvested records.  RAW + mmap is the
 * configuration the >=2x-over-v2 design claim is made for (see
 * bench_trace_ingest for the full v2/v3 comparison table).
 */
void
runIngestPass(const std::vector<trace::TraceRecord> &records,
              Measurement &m)
{
    const std::string path =
        std::filesystem::temp_directory_path().string() +
        "/perfgate_ingest.rpl3";
    trace::V3Options opts;
    opts.codec = trace::V3Codec::RAW;
    {
        trace::TraceV3Writer writer(path, opts);
        for (const auto &rec : records)
            writer.write(rec);
        fatal_if(!writer.close().ok(),
                 "perfgate: cannot record ingest container");
    }
    double best = 0;
    for (int pass = 0; pass < 4; ++pass) {
        trace::clearTraceQuarantine();
        trace::TraceV3Source src(path);
        const double t0 = now();
        while (!src.done())
            src.advance();
        const double dt = now() - t0;
        fatal_if(!src.ok() || src.consumed() != records.size(),
                 "perfgate: ingest container damaged");
        if (pass > 0 && dt > 0)
            best = std::max(best,
                            double(records.size()) *
                                trace::wire::recordWireBytes() / dt /
                                1e6);
    }
    m.traceIngestMbps = best;
    std::error_code ec;
    std::filesystem::remove(path, ec);
}

Measurement
measure(uint64_t insts)
{
    Measurement m;
    m.instsPerTrace = insts;

    const auto sweep = runGateSweep(insts);
    m.instsPerSec = sweep.instsPerSec();
    m.cellsPerSec = sweep.cellsPerSec();
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  (unsigned long long)sweep.digest());
    m.sweepDigest = digest;

    const auto &w = trace::findWorkload("crafty");
    const auto prog = w.buildProgram(0);
    trace::ExecutorTraceSource src(prog, 100000);
    std::vector<trace::TraceRecord> records;
    records.reserve(100000);
    while (!src.done()) {
        records.push_back(*src.peek());
        src.advance();
    }
    runEnginePass(records, m);
    runOptimizerPass(records, m);
    runIngestPass(records, m);
    return m;
}

std::string
toJson(const Measurement &m)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": 1,\n";
    out << "  \"insts_per_trace\": " << m.instsPerTrace << ",\n";
    out << "  \"metrics\": {\n";
    out << "    \"insts_per_sec\": " << uint64_t(m.instsPerSec) << ",\n";
    out << "    \"cells_per_sec\": " << m.cellsPerSec << ",\n";
    out << "    \"frames_per_sec\": " << uint64_t(m.framesPerSec) << ",\n";
    out << "    \"opt_uops_per_sec\": " << uint64_t(m.optUopsPerSec)
        << ",\n";
    out << "    \"trace_ingest_mbps\": " << uint64_t(m.traceIngestMbps)
        << "\n";
    out << "  },\n";
    out << "  \"determinism\": {\n";
    out << "    \"sweep_digest\": \"" << m.sweepDigest << "\",\n";
    out << "    \"engine_candidates\": " << m.engineCandidates << "\n";
    out << "  }\n";
    out << "}\n";
    return out.str();
}

/** Minimal extraction from the fixed JSON this tool itself writes. */
bool
jsonNumber(const std::string &text, const std::string &key, double &out)
{
    const auto pos = text.find("\"" + key + "\"");
    if (pos == std::string::npos)
        return false;
    const auto colon = text.find(':', pos);
    if (colon == std::string::npos)
        return false;
    out = std::strtod(text.c_str() + colon + 1, nullptr);
    return true;
}

bool
jsonString(const std::string &text, const std::string &key,
           std::string &out)
{
    const auto pos = text.find("\"" + key + "\"");
    if (pos == std::string::npos)
        return false;
    const auto open = text.find('"', text.find(':', pos) + 1);
    if (open == std::string::npos)
        return false;
    const auto close = text.find('"', open + 1);
    if (close == std::string::npos)
        return false;
    out = text.substr(open + 1, close - open - 1);
    return true;
}

int
check(const Measurement &m, const std::string &baseline_path,
      double tolerance)
{
    std::ifstream in(baseline_path);
    if (!in) {
        std::fprintf(stderr,
                     "perfgate: cannot read baseline '%s'\n"
                     "  (write one with: perfgate --write --out %s)\n",
                     baseline_path.c_str(), baseline_path.c_str());
        return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::string base_digest;
    double base_insts = 0, base_frames = 0, base_cands = 0,
           base_budget = 0;
    if (!jsonString(text, "sweep_digest", base_digest) ||
        !jsonNumber(text, "insts_per_sec", base_insts) ||
        !jsonNumber(text, "frames_per_sec", base_frames) ||
        !jsonNumber(text, "engine_candidates", base_cands) ||
        !jsonNumber(text, "insts_per_trace", base_budget)) {
        std::fprintf(stderr, "perfgate: baseline '%s' is malformed\n",
                     baseline_path.c_str());
        return 2;
    }

    int rc = 0;
    if (uint64_t(base_budget) != m.instsPerTrace) {
        std::fprintf(stderr,
                     "perfgate: budget mismatch (baseline %llu, run "
                     "%llu) — digests are not comparable\n",
                     (unsigned long long)base_budget,
                     (unsigned long long)m.instsPerTrace);
        return 2;
    }
    if (base_digest != m.sweepDigest) {
        std::fprintf(stderr,
                     "perfgate: DETERMINISM FAILURE — sweep digest %s "
                     "!= baseline %s\n",
                     m.sweepDigest.c_str(), base_digest.c_str());
        rc = 2;
    }
    if (uint64_t(base_cands) != m.engineCandidates) {
        std::fprintf(stderr,
                     "perfgate: DETERMINISM FAILURE — engine produced "
                     "%llu candidates, baseline %llu\n",
                     (unsigned long long)m.engineCandidates,
                     (unsigned long long)base_cands);
        rc = 2;
    }
    if (rc)
        return rc;

    const auto gate = [&](const char *name, double measured,
                          double base) {
        const double floor = base * (1.0 - tolerance);
        const bool ok = measured >= floor;
        std::printf("perfgate: %-14s %12.0f  baseline %12.0f  "
                    "floor %12.0f  %s\n",
                    name, measured, base, floor,
                    ok ? "ok" : "REGRESSION");
        if (!ok)
            rc = 1;
    };
    gate("insts/s", m.instsPerSec, base_insts);
    gate("frames/s", m.framesPerSec, base_frames);
    // Pass-level optimizer throughput: gated only once the baseline
    // carries the key, so older baselines keep working unchanged.
    double base_opt = 0;
    if (jsonNumber(text, "opt_uops_per_sec", base_opt))
        gate("opt-uops/s", m.optUopsPerSec, base_opt);
    else
        std::printf("perfgate: %-14s %12.0f  (no baseline entry; "
                    "not gated)\n",
                    "opt-uops/s", m.optUopsPerSec);
    // v3 mmap trace ingest bandwidth: same opt-in scheme.
    double base_ingest = 0;
    if (jsonNumber(text, "trace_ingest_mbps", base_ingest))
        gate("ingest-MB/s", m.traceIngestMbps, base_ingest);
    else
        std::printf("perfgate: %-14s %12.0f  (no baseline entry; "
                    "not gated)\n",
                    "ingest-MB/s", m.traceIngestMbps);
    return rc;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: perfgate [--check] [--write] [--out PATH]\n"
        "                [--baseline PATH] [--tolerance FRAC]\n"
        "                [--insts N]\n"
        "  --check      compare against the baseline (exit 1 on a\n"
        "               >tolerance regression, 2 on nondeterminism)\n"
        "  --write      only measure and write (the default)\n"
        "  --out        output path (default BENCH_hotpath.json)\n"
        "  --baseline   baseline path (default\n"
        "               bench/BENCH_hotpath.baseline.json)\n"
        "  --tolerance  allowed fractional regression (default 0.25)\n"
        "  --insts      per-trace x86 budget (default 20000; must\n"
        "               match the baseline for digest comparison)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool do_check = false;
    std::string out_path = "BENCH_hotpath.json";
    std::string baseline_path = "bench/BENCH_hotpath.baseline.json";
    double tolerance = 0.25;
    uint64_t insts = 20000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "perfgate: %s needs a value",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--check") {
            do_check = true;
        } else if (arg == "--write") {
            do_check = false;
        } else if (arg == "--out") {
            out_path = value();
        } else if (arg == "--baseline") {
            baseline_path = value();
        } else if (arg == "--tolerance") {
            tolerance = std::strtod(value(), nullptr);
            fatal_if(tolerance <= 0 || tolerance >= 1,
                     "perfgate: tolerance must be in (0, 1)");
        } else if (arg == "--insts") {
            insts = sim::parseCount(value(), "--insts");
        } else {
            usage();
            return 2;
        }
    }

    const Measurement m = measure(insts);

    std::ofstream out(out_path);
    fatal_if(!out, "perfgate: cannot write '%s'", out_path.c_str());
    out << toJson(m);
    out.close();
    std::printf("perfgate: wrote %s (insts/s %.0f, frames/s %.0f, "
                "digest %s)\n",
                out_path.c_str(), m.instsPerSec, m.framesPerSec,
                m.sweepDigest.c_str());

    return do_check ? check(m, baseline_path, tolerance) : 0;
}
