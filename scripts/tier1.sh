#!/usr/bin/env bash
# Tier-1 verification: the full test suite in the normal configuration,
# then the fuzz-smoke differential-oracle subset rebuilt and re-run
# under AddressSanitizer + UBSan (catches memory bugs the functional
# comparison alone would miss), then the sweep-labeled tests (thread
# pool + parallel sweep driver) rebuilt and re-run with 4 workers under
# ThreadSanitizer (keeps the shared-substrate thread-cleanliness pass
# honest).
#
# Usage: scripts/tier1.sh [build-dir] [asan-build-dir] [tsan-build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
ASAN_BUILD="${2:-build-asan}"
TSAN_BUILD="${3:-build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: full suite (${BUILD}) =="
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release -DENABLE_WERROR=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== tier-1: perf-smoke (tools/perfgate --check) =="
if [ "${REPLAY_SKIP_PERFGATE:-0}" = "1" ]; then
    echo "warn: REPLAY_SKIP_PERFGATE=1; skipping the performance gate"
else
    # Hard-fails on a >25% throughput regression against the
    # checked-in baseline, or on any sweep-digest mismatch
    # (nondeterminism).  Gated metrics: sweep insts/s, engine frames/s,
    # and — since the SoA slab IR — pass-level optimizer opt-uops/s
    # (explore the same datapath interactively with the BM_Opt* benches
    # in bench/bench_hotpath.cc), plus v3 mmap trace-ingest MB/s since
    # the v3 container (full v2/v3 table: bench/bench_trace_ingest).  The checked-in baseline is the
    # median of several runs, so the 25% floor absorbs machine noise
    # without hiding real regressions.  Skip with
    # REPLAY_SKIP_PERFGATE=1 (e.g. on heavily loaded or throttled
    # machines).
    "$BUILD/tools/perfgate" --check \
        --baseline bench/BENCH_hotpath.baseline.json \
        --out "$BUILD/BENCH_hotpath.json"
fi

echo "== tier-1: locking-discipline grep (sync::Mutex only) =="
# DESIGN.md "Locking discipline": every mutex/condvar in src/ and
# tools/ must be a util/sync.hh wrapper so it carries thread-safety
# annotations and participates in the ranked lock-hierarchy checker.
# Raw std primitives are allowed only inside the wrapper itself (and
# in tests/, which may build ad-hoc latches for orchestration).
RAW_SYNC="$(grep -rn \
    'std::mutex\|std::condition_variable\|std::shared_mutex\|std::lock_guard\|std::unique_lock\|std::scoped_lock\|std::shared_lock' \
    src tools --include='*.cc' --include='*.hh' \
    | grep -v '^src/util/sync\.hh:' || true)"
if [ -n "$RAW_SYNC" ]; then
    echo "error: raw std synchronization primitive outside util/sync.hh" >&2
    echo "       (use sync::Mutex / sync::CondVar / sync::SharedMutex;" >&2
    echo "        see DESIGN.md 'Locking discipline'):" >&2
    echo "$RAW_SYNC" >&2
    exit 1
fi

echo "== tier-1: Clang -Wthread-safety build =="
if [ "${REPLAY_SKIP_TSA:-0}" = "1" ]; then
    echo "warn: REPLAY_SKIP_TSA=1; skipping the thread-safety-analysis build"
elif command -v clang++ >/dev/null 2>&1; then
    # Full build under Clang with -Wthread-safety promoted to an error
    # (ENABLE_WERROR=ON covers it): proves every GUARDED_BY /
    # REQUIRES / EXCLUDES annotation in the tree is consistent.  GCC
    # compiles the same attributes to no-ops, so only this stage
    # enforces them.
    TSA_BUILD="${BUILD}-tsa"
    cmake -B "$TSA_BUILD" -S . -DCMAKE_BUILD_TYPE=Release \
        -DENABLE_WERROR=ON \
        -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++
    cmake --build "$TSA_BUILD" -j "$JOBS"
else
    echo "warn: clang++ unavailable on this host; skipping the" \
         "thread-safety-analysis build (set REPLAY_SKIP_TSA=1 to silence)"
fi

echo "== tier-1: clang-tidy over src/verify/static + changed files =="
if command -v clang-tidy >/dev/null 2>&1; then
    # Lint the static-verifier subsystem plus whatever C++ files the
    # current branch touches relative to the merge base with main.
    TIDY_FILES="$(ls src/verify/static/*.cc 2>/dev/null || true)"
    CHANGED="$(git diff --name-only --diff-filter=ACMR \
                   "$(git merge-base HEAD origin/main 2>/dev/null \
                      || git rev-parse HEAD~1 2>/dev/null \
                      || git rev-parse HEAD)" -- '*.cc' 2>/dev/null || true)"
    TIDY_FILES="$(printf '%s\n%s\n' "$TIDY_FILES" "$CHANGED" \
                  | sort -u | grep -v '^$' || true)"
    if [ -n "$TIDY_FILES" ]; then
        # shellcheck disable=SC2086
        clang-tidy -p "$BUILD" $TIDY_FILES
    fi
else
    echo "warn: clang-tidy unavailable on this host; skipping"
fi

echo "== tier-1: fuzz-smoke under ASan+UBSan (${ASAN_BUILD}) =="
cmake -B "$ASAN_BUILD" -S . -DCMAKE_BUILD_TYPE=Debug -DENABLE_SANITIZERS=ON
cmake --build "$ASAN_BUILD" -j "$JOBS" --target test_fuzz
ctest --test-dir "$ASAN_BUILD" --output-on-failure -L fuzz-smoke

echo "== tier-1: tracev3 corruption fuzz + round-trip under ASan+UBSan =="
if [ "${REPLAY_SKIP_TRACEV3:-0}" = "1" ]; then
    echo "warn: REPLAY_SKIP_TRACEV3=1; skipping the tracev3 stage"
else
    # v3 container battery re-run under ASan+UBSan: the corruption
    # matrix and the 500-iteration random-mutation fuzz smoke feed
    # deliberately damaged containers through the mmap and buffered
    # decode paths, exactly where a bounds bug would hide from the
    # functional checks; the round-trip tests pin v2->v3 stream
    # equivalence for all 14 workloads.  Skip with
    # REPLAY_SKIP_TRACEV3=1 (the normal-config run in the full suite
    # above still covers the functional half).
    cmake --build "$ASAN_BUILD" -j "$JOBS" --target test_tracev3
    ctest --test-dir "$ASAN_BUILD" --output-on-failure -L tracev3
fi

echo "== tier-1: chaos-smoke under ASan+UBSan (${ASAN_BUILD}) =="
if [ "${REPLAY_SKIP_CHAOS:-0}" = "1" ]; then
    echo "warn: REPLAY_SKIP_CHAOS=1; skipping the chaos/soak stage"
else
    # Robustness suite (governor, degradation ladder, cancellation,
    # watchdog) plus a small chaosrunner campaign, both under
    # ASan+UBSan so injected faults cannot hide memory errors.  The
    # Debug build also arms the ranked lock-hierarchy checker
    # (REPLAY_SYNC_HIERARCHY), so any out-of-order acquisition on the
    # engine/cache/tier/governor paths panics here instead of
    # deadlocking in production.  Skip with REPLAY_SKIP_CHAOS=1 (e.g.
    # on machines too slow for the stall/deadline timing tests).
    cmake --build "$ASAN_BUILD" -j "$JOBS" \
        --target test_robustness chaosrunner
    ctest --test-dir "$ASAN_BUILD" --output-on-failure -L chaos-smoke
    "$ASAN_BUILD/tools/chaosrunner" --seeds 6 --insts 8000
fi

echo "== tier-1: sweep tests under TSan, 4 workers (${TSAN_BUILD}) =="
if echo 'int main(){return 0;}' | \
   c++ -fsanitize=thread -x c++ - -o /tmp/tier1-tsan-probe 2>/dev/null \
   && /tmp/tier1-tsan-probe; then
    cmake -B "$TSAN_BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DENABLE_TSAN=ON
    cmake --build "$TSAN_BUILD" -j "$JOBS" --target test_sweep
    REPLAY_SIM_JOBS=4 ctest --test-dir "$TSAN_BUILD" \
        --output-on-failure -L sweep

    echo "== tier-1: sync primitives under TSan (${TSAN_BUILD}) =="
    # util/sync.hh wrapper battery: the mutex/condvar/shared-mutex
    # stress hammer plus the lock-hierarchy checker's panic paths
    # (RelWithDebInfo arms REPLAY_SYNC_HIERARCHY).
    cmake --build "$TSAN_BUILD" -j "$JOBS" --target test_sync
    ctest --test-dir "$TSAN_BUILD" --output-on-failure -L sync

    echo "== tier-1: tier-stress under TSan (${TSAN_BUILD}) =="
    if [ "${REPLAY_SKIP_TIER:-0}" = "1" ]; then
        echo "warn: REPLAY_SKIP_TIER=1; skipping the tier-stress stage"
    else
        # Background re-optimization battery: publish/acquire races,
        # epoch swap vs. pinned frames, cancel/shed hammering, and the
        # async==sync convergence checks, all under ThreadSanitizer.
        # Skip with REPLAY_SKIP_TIER=1 (e.g. on machines too slow for
        # the soak tests under TSan overhead).
        cmake --build "$TSAN_BUILD" -j "$JOBS" --target test_tier
        ctest --test-dir "$TSAN_BUILD" --output-on-failure -L tier-stress
    fi
else
    echo "warn: ThreadSanitizer unavailable on this host; skipping"
fi
rm -f /tmp/tier1-tsan-probe

echo "tier-1 PASS"
