#!/usr/bin/env bash
# Tier-1 verification: the full test suite in the normal configuration,
# then the fuzz-smoke differential-oracle subset rebuilt and re-run
# under AddressSanitizer + UBSan (catches memory bugs the functional
# comparison alone would miss).
#
# Usage: scripts/tier1.sh [build-dir] [asan-build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
ASAN_BUILD="${2:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: full suite (${BUILD}) =="
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== tier-1: fuzz-smoke under ASan+UBSan (${ASAN_BUILD}) =="
cmake -B "$ASAN_BUILD" -S . -DCMAKE_BUILD_TYPE=Debug -DENABLE_SANITIZERS=ON
cmake --build "$ASAN_BUILD" -j "$JOBS" --target test_fuzz
ctest --test-dir "$ASAN_BUILD" --output-on-failure -L fuzz-smoke

echo "tier-1 PASS"
