/**
 * @file
 * Seeded random x86-subset program generation for differential
 * fuzzing.
 *
 * Programs are described by a ProgramSpec — a master seed plus an
 * ordered list of (kind, seed) segments — and materialized
 * deterministically through the AsmBuilder.  The two-level structure
 * is what makes shrinking possible: the delta-debugging reducer drops
 * segments from the list and re-materializes, and a spec serializes to
 * one line of text inside a self-contained repro file.
 *
 * Generated programs deliberately compose behaviours far outside the
 * 14 tuned workload personalities: runtime-aliasing and partially
 * overlapping stores, sub-word loads and stores (including unaligned),
 * partial-register writes (SETCC), shift-by-zero flag edge cases,
 * carry-preserving INC/DEC chains consumed by branches, counted inner
 * loops, leaf calls, and jump-table dispatch.  Every segment preserves
 * the generator invariants (ESI = data base, ECX = outer counter, ESP
 * balanced), so any program runs indefinitely under an instruction
 * budget without faulting.
 */

#ifndef REPLAY_FUZZ_PROGEN_HH
#define REPLAY_FUZZ_PROGEN_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "x86/program.hh"

namespace replay::fuzz {

/** Behaviour classes a segment can exhibit. */
enum class SegKind : uint8_t
{
    ALU,        ///< register arithmetic burst
    MEM,        ///< load/compute/store with redundancy
    ALIAS,      ///< runtime-aliasing / overlapping stores
    PARTIAL,    ///< sub-word memory + partial-register writes
    SHIFT,      ///< shifts incl. the count-zero flag edge case
    DIV,        ///< fixed-register DIV (guarded non-zero divisor)
    BRANCH,     ///< flag-consuming conditional branches
    LOOP,       ///< counted inner loop
    CALL,       ///< call/return through a generated leaf procedure
    INDIRECT,   ///< jump-table dispatch
    FLAGCHAIN,  ///< CF-preserving INC/DEC chains, SETCC consumers
    NUM_KINDS,
};

const char *segKindName(SegKind kind);
std::optional<SegKind> segKindFromName(std::string_view name);

/** One generation unit; materializes deterministically from its seed. */
struct Segment
{
    SegKind kind = SegKind::ALU;
    uint32_t seed = 0;

    bool operator==(const Segment &) const = default;
};

/** A complete, shrinkable program description. */
struct ProgramSpec
{
    /** Master seed: data image, leaf procedures, glue. */
    uint64_t seed = 1;

    /** Main-loop body, in emission order. */
    std::vector<Segment> segments;

    bool operator==(const ProgramSpec &) const = default;

    /** Draw a fresh spec (segment count and kinds) from @p seed. */
    static ProgramSpec random(uint64_t seed);

    /** Build the concrete program. */
    x86::Program materialize() const;

    /** One-line text form: "progen-v1 <seed> KIND:seed ...". */
    std::string serialize() const;

    /** Inverse of serialize(); nullopt on malformed input. */
    static std::optional<ProgramSpec> parse(std::string_view line);
};

} // namespace replay::fuzz

#endif // REPLAY_FUZZ_PROGEN_HH
