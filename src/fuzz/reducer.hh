/**
 * @file
 * Divergence reduction: pass-pipeline bisection plus program shrink.
 *
 * Given a diverging (spec, pass mask) pair, the reducer first
 * minimizes the set of enabled optimization passes — greedily clearing
 * one PassBit at a time while the divergence persists — and then
 * shrinks the program itself with ddmin over the spec's segment list.
 * The result is a self-contained Repro: a few lines of text that
 * test_fuzz replays as a regression corpus entry.
 *
 * The reducer is parameterized by a divergence predicate rather than
 * calling the oracle directly, so its search behaviour is unit-testable
 * with synthetic predicates.
 */

#ifndef REPLAY_FUZZ_REDUCER_HH
#define REPLAY_FUZZ_REDUCER_HH

#include <functional>
#include <optional>

#include "fuzz/difforacle.hh"

namespace replay::fuzz {

/** A minimized, replayable divergence. */
struct Repro
{
    ProgramSpec spec;
    uint8_t passMask = 0x7f;
    uint64_t maxInsts = 4000;

    /** The divergence observed on the reduced case (informational). */
    Divergence div;

    /** Multi-line repro file ("# ..." comments, key/value lines). */
    std::string serialize() const;

    /** Parse a repro file; comment and divergence lines are skipped. */
    static std::optional<Repro> parse(const std::string &text);

    /** Oracle configuration replaying exactly this repro. */
    OracleConfig oracleConfig() const;
};

/** Minimizes diverging inputs against an arbitrary predicate. */
class Reducer
{
  public:
    /** Returns the divergence (if any) of (spec, passMask). */
    using Probe = std::function<Divergence(const ProgramSpec &, uint8_t)>;

    explicit Reducer(Probe probe, unsigned max_probes = 400)
        : probe_(std::move(probe)), maxProbes_(max_probes)
    {
    }

    /**
     * Reduce a diverging input; nullopt if the input doesn't actually
     * diverge under the starting mask.
     */
    std::optional<Repro> reduce(const ProgramSpec &spec,
                                uint8_t start_mask, uint64_t max_insts);

    /** Probe invocations spent by the last reduce(). */
    unsigned probes() const { return probes_; }

  private:
    Divergence run(const ProgramSpec &spec, uint8_t mask);
    uint8_t minimizePasses(const ProgramSpec &spec, uint8_t mask);
    ProgramSpec shrinkSegments(ProgramSpec spec, uint8_t mask);

    Probe probe_;
    unsigned maxProbes_;
    unsigned probes_ = 0;
};

/** A Reducer whose probe runs the real differential oracle. */
Reducer makeOracleReducer(uint64_t max_insts);

} // namespace replay::fuzz

#endif // REPLAY_FUZZ_REDUCER_HH
