#include "fuzz/reducer.hh"

#include <charconv>
#include <cstdio>
#include <sstream>

namespace replay::fuzz {

std::string
Repro::serialize() const
{
    std::string out = "# replay-fuzz repro v1\n";
    if (div) {
        out += "# divergence ";
        out += divergenceKindName(div.kind);
        out += " at retired=" + std::to_string(div.retired);
        if (div.framePc) {
            char buf[16];
            std::snprintf(buf, sizeof buf, "%#x", div.framePc);
            out += " frame=";
            out += buf;
        }
        if (!div.detail.empty())
            out += ": " + div.detail;
        out += '\n';
    }
    out += "maxinsts " + std::to_string(maxInsts) + '\n';
    out += "passmask " + std::to_string(unsigned(passMask)) + '\n';
    out += "spec " + spec.serialize() + '\n';
    return out;
}

std::optional<Repro>
Repro::parse(const std::string &text)
{
    Repro repro;
    bool have_spec = false;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const size_t sp = line.find(' ');
        if (sp == std::string::npos)
            return std::nullopt;
        const std::string_view key(line.data(), sp);
        const std::string_view val(line.data() + sp + 1,
                                   line.size() - sp - 1);
        if (key == "maxinsts") {
            auto [p, ec] = std::from_chars(val.begin(), val.end(),
                                           repro.maxInsts);
            if (ec != std::errc{})
                return std::nullopt;
        } else if (key == "passmask") {
            unsigned mask = 0;
            auto [p, ec] = std::from_chars(val.begin(), val.end(), mask);
            if (ec != std::errc{} || mask > 0xff)
                return std::nullopt;
            repro.passMask = uint8_t(mask);
        } else if (key == "spec") {
            auto spec = ProgramSpec::parse(val);
            if (!spec)
                return std::nullopt;
            repro.spec = std::move(*spec);
            have_spec = true;
        } else {
            return std::nullopt;
        }
    }
    if (!have_spec)
        return std::nullopt;
    return repro;
}

OracleConfig
Repro::oracleConfig() const
{
    OracleConfig cfg;
    cfg.maxInsts = maxInsts;
    cfg.opt = opt::OptConfig::fromPassMask(passMask);
    return cfg;
}

Divergence
Reducer::run(const ProgramSpec &spec, uint8_t mask)
{
    ++probes_;
    return probe_(spec, mask);
}

uint8_t
Reducer::minimizePasses(const ProgramSpec &spec, uint8_t mask)
{
    // Greedy sweep, repeated until a fixpoint: a pass stays enabled
    // only if clearing it makes the divergence vanish.
    bool changed = true;
    while (changed && probes_ < maxProbes_) {
        changed = false;
        for (unsigned bit = 0; bit < opt::OptConfig::NUM_PASS_BITS;
             ++bit) {
            const uint8_t without = mask & uint8_t(~(1u << bit));
            if (without == mask)
                continue;
            if (probes_ >= maxProbes_)
                break;
            if (run(spec, without)) {
                mask = without;
                changed = true;
            }
        }
    }
    return mask;
}

ProgramSpec
Reducer::shrinkSegments(ProgramSpec spec, uint8_t mask)
{
    // ddmin over the segment list: remove chunks of decreasing size
    // while the divergence persists.
    size_t chunk = spec.segments.size() / 2;
    while (chunk >= 1 && spec.segments.size() > 1) {
        bool removed_any = false;
        for (size_t at = 0;
             at + chunk <= spec.segments.size() && probes_ < maxProbes_;
             /* advance below */) {
            ProgramSpec trial = spec;
            trial.segments.erase(trial.segments.begin() + long(at),
                                 trial.segments.begin()
                                     + long(at + chunk));
            if (!trial.segments.empty() && run(trial, mask)) {
                spec = std::move(trial);
                removed_any = true;
                // Re-test the same position: the next chunk slid in.
            } else {
                at += chunk;
            }
        }
        if (probes_ >= maxProbes_)
            break;
        if (!removed_any || chunk > spec.segments.size())
            chunk /= 2;
    }
    return spec;
}

std::optional<Repro>
Reducer::reduce(const ProgramSpec &spec, uint8_t start_mask,
                uint64_t max_insts)
{
    probes_ = 0;
    if (!run(spec, start_mask))
        return std::nullopt;

    const uint8_t mask = minimizePasses(spec, start_mask);
    ProgramSpec shrunk = shrinkSegments(spec, mask);

    Repro repro;
    repro.spec = std::move(shrunk);
    repro.passMask = mask;
    repro.maxInsts = max_insts;
    repro.div = run(repro.spec, mask);
    return repro;
}

Reducer
makeOracleReducer(uint64_t max_insts)
{
    return Reducer([max_insts](const ProgramSpec &spec, uint8_t mask) {
        OracleConfig cfg;
        cfg.maxInsts = max_insts;
        cfg.opt = opt::OptConfig::fromPassMask(mask);
        return runOracle(spec, cfg).div;
    });
}

} // namespace replay::fuzz
