/**
 * @file
 * The differential oracle: runs a program twice and compares.
 *
 * The reference run is the plain functional executor (via the trace
 * source); the run under test is the headless FrameMachine, which
 * retires committed frames by executing their *optimized bodies*.  A
 * shadow architectural state is advanced from the reference trace
 * records, so at every frame-commit boundary the oracle can compare:
 *
 *   - the full architectural register file and flags,
 *   - the frame body's retired-store stream against the reference
 *     stores over the same instruction span (address, width, data),
 *   - the dynamic-exit target of indirect-exit frames,
 *
 * plus a whole-run memory-image comparison over every byte the
 * reference run ever stored.  The conventional path replays reference
 * values verbatim, so any divergence is pinned on frame construction,
 * optimization, or frame execution.
 */

#ifndef REPLAY_FUZZ_DIFFORACLE_HH
#define REPLAY_FUZZ_DIFFORACLE_HH

#include <string>

#include "core/sequencer.hh"
#include "fault/faultinjector.hh"
#include "fuzz/progen.hh"

namespace replay::fuzz {

/** The first difference found between the two runs. */
struct Divergence
{
    enum class Kind
    {
        NONE,
        REG,            ///< register file mismatch at a frame boundary
        FLAGS,          ///< flags mismatch at a frame boundary
        STORE,          ///< store stream mismatch within a frame
        CONTROL,        ///< indirect frame exit target mismatch
        BODY_ROLLBACK,  ///< body asserted though the trace commits
        MEM_IMAGE,      ///< final memory image mismatch
        STATIC_LINT,    ///< static IR lint rejected an un-faulted frame
        IR_ROUNDTRIP,   ///< SoA body does not round-trip through AoS
    };

    Kind kind = Kind::NONE;

    /** x86 instructions retired when the divergence was detected. */
    uint64_t retired = 0;

    /** Start PC of the offending frame (0 for MEM_IMAGE). */
    uint32_t framePc = 0;

    /** Human-readable specifics (register, values, addresses). */
    std::string detail;

    explicit operator bool() const { return kind != Kind::NONE; }
};

const char *divergenceKindName(Divergence::Kind kind);

/** Oracle run parameters. */
struct OracleConfig
{
    /** Instruction budget per run; enough for construction warmup
     *  plus a few hundred frame commits of a generated program. */
    uint64_t maxInsts = 4000;

    /** Pass subset under test (reducer bisects over this). */
    opt::OptConfig opt;

    core::ConstructorConfig constructor = fastWarmup();

    /**
     * Optional fault injector wired into the engine.  Sabotaging every
     * optimized body (passSabotageRate = 1) must make the oracle
     * report divergences — the standing proof that a clean sweep is
     * not vacuous.
     */
    fault::FaultInjector *injector = nullptr;

    /**
     * Constructor tuning for short fuzz runs: the default bias tables
     * want 32 samples per branch before promoting, which would spend
     * most of a 4k-instruction budget warming up instead of fuzzing
     * frame bodies.
     */
    static core::ConstructorConfig
    fastWarmup()
    {
        core::ConstructorConfig cfg;
        cfg.biasMinSamples = 8;
        cfg.targetStableThreshold = 4;
        return cfg;
    }

    core::EngineConfig engine() const;
};

/** Outcome and coverage counters of one oracle run. */
struct OracleReport
{
    Divergence div;

    uint64_t retired = 0;
    uint64_t framesCommitted = 0;
    uint64_t framesAborted = 0;
    uint64_t frameInsts = 0;
    uint64_t storesCompared = 0;

    // -- static IR cross-check (the oracle's third leg) --------------
    uint64_t framesStaticChecked = 0;
    uint64_t staticViolations = 0;
    /** Fault-injected frames the static lint failed to flag. */
    uint64_t staticMissedCorruptions = 0;

    // -- SoA<->AoS representation cross-check (the fourth leg) -------
    /** Micro-ops round-tripped slab -> Uop record -> slab. */
    uint64_t uopsRoundTripped = 0;

    bool diverged() const { return bool(div); }
};

/** Run the differential oracle over an already-built program. */
OracleReport runOracle(const x86::Program &prog, const OracleConfig &cfg);

/** Convenience: materialize a spec and run it. */
OracleReport runOracle(const ProgramSpec &spec, const OracleConfig &cfg);

} // namespace replay::fuzz

#endif // REPLAY_FUZZ_DIFFORACLE_HH
