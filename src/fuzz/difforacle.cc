#include "fuzz/difforacle.hh"

#include <cstdarg>
#include <cstdio>

#include "sim/headless.hh"
#include "uop/uop.hh"
#include "verify/memmap.hh"
#include "verify/online.hh"
#include "verify/static/lint.hh"

namespace replay::fuzz {

namespace {

std::string
fmt(const char *format, ...)
{
    char buf[192];
    va_list ap;
    va_start(ap, format);
    std::vsnprintf(buf, sizeof buf, format, ap);
    va_end(ap);
    return buf;
}

void
noteStores(verify::MemoryMap &image, const trace::TraceRecord &rec)
{
    for (unsigned m = 0; m < rec.numMemOps; ++m) {
        const x86::MemOp &op = rec.memOps[m];
        if (!op.isStore)
            continue;
        for (unsigned b = 0; b < op.size; ++b)
            image.setByte(op.addr + b, uint8_t(op.data >> (8 * b)));
    }
}

/** First mismatch between the reference span's store stream and the
 *  frame body's, or NONE. */
Divergence
compareStores(const sim::MachineStep &step, uint64_t retired,
              uint64_t &compared)
{
    std::vector<const x86::MemOp *> ref;
    for (const auto &rec : step.span) {
        for (unsigned m = 0; m < rec.numMemOps; ++m) {
            if (rec.memOps[m].isStore)
                ref.push_back(&rec.memOps[m]);
        }
    }
    std::vector<const x86::MemOp *> got;
    for (const auto &op : step.result.memOps) {
        if (op.isStore)
            got.push_back(&op);
    }

    Divergence div;
    div.retired = retired;
    div.framePc = step.frame->startPc;
    if (ref.size() != got.size()) {
        div.kind = Divergence::Kind::STORE;
        div.detail = fmt("store count: ref %zu, frame %zu", ref.size(),
                         got.size());
        return div;
    }
    for (size_t i = 0; i < ref.size(); ++i) {
        ++compared;
        if (ref[i]->addr != got[i]->addr || ref[i]->size != got[i]->size
            || ref[i]->data != got[i]->data) {
            div.kind = Divergence::Kind::STORE;
            div.detail = fmt("store %zu: ref [%#x]%u <- %#x, "
                             "frame [%#x]%u <- %#x",
                             i, ref[i]->addr, ref[i]->size, ref[i]->data,
                             got[i]->addr, got[i]->size, got[i]->data);
            return div;
        }
    }
    return {};
}

/**
 * Fourth leg: the SoA slab must round-trip through the AoS Uop record
 * losslessly — including the derived attribute bitset, which goes
 * stale if a pass mutates a field plane without refreshAttr() — and
 * the body hash must not depend on which representation (or slab
 * capacity) the body happens to sit in.  Skipped for fault-injected
 * frames: sabotage flips field bits underneath the derived plane by
 * design.
 */
Divergence
checkSoaRoundTrip(const core::Frame &frame, uint64_t retired,
                  uint64_t &uops_round_tripped)
{
    const uop::UopSlab &code = frame.body.code;
    const size_t n = code.size();
    uop::UopSlab rt;
    rt.reserve(n);
    for (size_t i = 0; i < n; ++i)
        rt.push(code.get(i));
    uops_round_tripped += n;

    Divergence div;
    div.retired = retired;
    div.framePc = frame.startPc;
    if (!(rt == code)) {
        size_t slot = n;
        for (size_t i = 0; i < n; ++i) {
            if (!(rt.get(i) == code.get(i)) ||
                rt.attr[i] != code.attr[i]) {
                slot = i;
                break;
            }
        }
        div.kind = Divergence::Kind::IR_ROUNDTRIP;
        div.detail = fmt("slot %zu: SoA->AoS->SoA changed the uop "
                         "(attr %#x -> %#x)",
                         slot, slot < n ? code.attr[slot] : 0,
                         slot < n ? rt.attr[slot] : 0);
        return div;
    }

    opt::OptimizedFrame copy = frame.body;
    copy.code = std::move(rt);
    const uint64_t want = fault::FaultInjector::hashBody(frame.body);
    const uint64_t got = fault::FaultInjector::hashBody(copy);
    if (want != got) {
        div.kind = Divergence::Kind::IR_ROUNDTRIP;
        div.detail = fmt("body hash depends on representation: "
                         "%#llx vs %#llx after round-trip",
                         (unsigned long long)want,
                         (unsigned long long)got);
        return div;
    }
    return {};
}

/** Compare the mirror state against the reference shadow state. */
Divergence
compareState(const opt::ArchState &mirror, const opt::ArchState &shadow,
             const sim::MachineStep &step, uint64_t retired)
{
    Divergence div;
    div.retired = retired;
    div.framePc = step.frame->startPc;
    for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
        const auto reg = static_cast<uop::UReg>(r);
        if (!opt::OptBuffer::archLiveOut(reg) || reg == uop::UReg::FLAGS)
            continue;
        if (mirror.regs[r] != shadow.regs[r]) {
            div.kind = Divergence::Kind::REG;
            div.detail = fmt("%s: frame %#x, ref %#x",
                             uop::uregName(reg), mirror.regs[r],
                             shadow.regs[r]);
            return div;
        }
    }
    if (mirror.flags.pack() != shadow.flags.pack()) {
        div.kind = Divergence::Kind::FLAGS;
        div.detail = fmt("flags: frame %#x, ref %#x",
                         unsigned(mirror.flags.pack()),
                         unsigned(shadow.flags.pack()));
        return div;
    }
    return {};
}

} // anonymous namespace

const char *
divergenceKindName(Divergence::Kind kind)
{
    switch (kind) {
      case Divergence::Kind::NONE:          return "NONE";
      case Divergence::Kind::REG:           return "REG";
      case Divergence::Kind::FLAGS:         return "FLAGS";
      case Divergence::Kind::STORE:         return "STORE";
      case Divergence::Kind::CONTROL:       return "CONTROL";
      case Divergence::Kind::BODY_ROLLBACK: return "BODY_ROLLBACK";
      case Divergence::Kind::MEM_IMAGE:     return "MEM_IMAGE";
      case Divergence::Kind::STATIC_LINT:   return "STATIC_LINT";
      case Divergence::Kind::IR_ROUNDTRIP:  return "IR_ROUNDTRIP";
    }
    return "?";
}

core::EngineConfig
OracleConfig::engine() const
{
    core::EngineConfig cfg;
    cfg.optimize = true;
    cfg.optConfig = opt;
    cfg.constructor = constructor;
    // The oracle is architectural: frames should be fetchable the
    // moment optimization logically completes.
    cfg.optPipelineDepth = 1;
    cfg.optCyclesPerUop = 0;
    cfg.injector = injector;
    return cfg;
}

OracleReport
runOracle(const x86::Program &prog, const OracleConfig &cfg)
{
    OracleReport report;
    sim::FrameMachine fm(prog, cfg.engine(), cfg.maxInsts);
    opt::ArchState shadow = fm.state();
    verify::MemoryMap ref_image;

    for (;;) {
        const sim::MachineStep step = fm.step();
        if (step.kind == sim::MachineStep::Kind::DONE)
            break;

        if (step.kind == sim::MachineStep::Kind::CONVENTIONAL) {
            verify::applyRecord(shadow, step.record);
            noteStores(ref_image, step.record);
            continue;
        }

        // FRAME: advance the shadow over the span, then compare.
        for (const auto &rec : step.span) {
            verify::applyRecord(shadow, rec);
            noteStores(ref_image, rec);
        }

        // Third leg: the frame must satisfy the static IR invariants.
        // On an un-faulted frame any finding is an engine bug; on a
        // fault-injected frame a clean lint is a detection miss.
        {
            const vstatic::Report lint = vstatic::lintFrame(*step.frame);
            ++report.framesStaticChecked;
            if (!lint.ok()) {
                report.staticViolations += lint.violations.size();
                if (!step.frame->faultInjected) {
                    report.div.kind = Divergence::Kind::STATIC_LINT;
                    report.div.retired = step.retiredBefore;
                    report.div.framePc = step.frame->startPc;
                    report.div.detail = lint.summary(3);
                    break;
                }
            } else if (step.frame->faultInjected) {
                ++report.staticMissedCorruptions;
            }
        }

        if (!step.frame->faultInjected) {
            if (Divergence div = checkSoaRoundTrip(
                    *step.frame, step.retiredBefore,
                    report.uopsRoundTripped)) {
                report.div = std::move(div);
                break;
            }
        }

        if (!step.bodyCommitted) {
            report.div.kind = Divergence::Kind::BODY_ROLLBACK;
            report.div.retired = step.retiredBefore;
            report.div.framePc = step.frame->startPc;
            report.div.detail = fmt(
                "%s at slot %zu though the trace commits",
                step.result.status
                        == opt::FrameExecResult::Status::ASSERTED
                    ? "body asserted"
                    : "unsafe conflict",
                step.result.faultSlot);
            break;
        }

        if (Divergence div = compareStores(step, step.retiredBefore,
                                           report.storesCompared)) {
            report.div = std::move(div);
            break;
        }

        if (step.frame->dynamicExit) {
            const uint32_t want = step.span.back().nextPc;
            const uint32_t got = step.result.indirectTarget;
            if (got != want) {
                report.div.kind = Divergence::Kind::CONTROL;
                report.div.retired = step.retiredBefore;
                report.div.framePc = step.frame->startPc;
                report.div.detail = fmt("indirect exit: frame %#x, "
                                        "ref %#x", got, want);
                break;
            }
        }

        if (Divergence div = compareState(fm.state(), shadow, step,
                                          step.retiredBefore)) {
            report.div = std::move(div);
            break;
        }
    }

    if (!report.div) {
        // Whole-run image check over every byte the reference stored.
        for (const auto &[addr, byte] : ref_image.bytes()) {
            const uint32_t got = fm.memory().read(addr, 1);
            if (got != byte) {
                report.div.kind = Divergence::Kind::MEM_IMAGE;
                report.div.retired = fm.retired();
                report.div.detail = fmt("[%#x]: frame %#x, ref %#x",
                                        addr, got, unsigned(byte));
                break;
            }
        }
    }

    report.retired = fm.retired();
    report.framesCommitted = fm.framesCommitted();
    report.framesAborted = fm.framesAborted();
    report.frameInsts = fm.frameInsts();
    return report;
}

OracleReport
runOracle(const ProgramSpec &spec, const OracleConfig &cfg)
{
    return runOracle(spec.materialize(), cfg);
}

} // namespace replay::fuzz
