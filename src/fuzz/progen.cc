#include "fuzz/progen.hh"

#include <charconv>
#include <cstdio>

#include "util/logging.hh"
#include "util/rng.hh"
#include "x86/asmbuilder.hh"

namespace replay::fuzz {

using x86::Cond;
using x86::MemRef;
using x86::Mnem;
using x86::Reg;
using x86::memAt;

namespace {

/** Data array: 1024 words plus margin so displaced and unaligned
 *  accesses computed from a masked index stay inside the region. */
constexpr uint32_t ARR_WORDS = 1024;
constexpr uint32_t ARR_BYTES = ARR_WORDS * 4 + 128;
constexpr uint32_t MASK_ALIGNED = 0xffc;
constexpr uint32_t MASK_ANY = 0xfff;

constexpr Reg SCRATCH[] = {Reg::EAX, Reg::EBX, Reg::EDX, Reg::EDI};
constexpr unsigned NUM_SCRATCH = 4;
constexpr unsigned NUM_PROCS = 2;

const char *const KIND_NAMES[] = {
    "ALU",  "MEM",    "ALIAS", "PARTIAL",  "SHIFT",     "DIV",
    "BRANCH", "LOOP", "CALL",  "INDIRECT", "FLAGCHAIN",
};
static_assert(sizeof(KIND_NAMES) / sizeof(KIND_NAMES[0])
                  == unsigned(SegKind::NUM_KINDS),
              "kind name table out of sync");

/** Emits one segment's instructions while preserving the generator
 *  register conventions (ESI = data base, ECX = outer counter). */
class Materializer
{
  public:
    explicit Materializer(const ProgramSpec &spec) : spec_(spec) {}

    x86::Program
    run()
    {
        Rng glue(spec_.seed);
        arr_ = b_.dataRegion("arr", ARR_BYTES);
        std::vector<uint32_t> words(ARR_WORDS);
        for (auto &w : words)
            w = uint32_t(glue.next());
        b_.dataWords("arr", words);

        b_.movRI(Reg::ESI, int32_t(arr_));
        b_.movRI(Reg::ECX, 0);
        b_.label("main");
        for (const Segment &seg : spec_.segments) {
            ++uid_;
            emitSegment(seg);
            if (glue.chance(0.15))
                b_.nop();
        }
        b_.incR(Reg::ECX);
        b_.jmp("main");

        for (unsigned p = 0; p < NUM_PROCS; ++p)
            emitProc(p, glue);
        return b_.build();
    }

  private:
    std::string
    lbl(const char *stem, unsigned n = 0)
    {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%s_%u_%u", stem, uid_, n);
        return buf;
    }

    Reg
    scratch(Rng &r, Reg avoid = Reg::NONE)
    {
        Reg reg;
        do
            reg = SCRATCH[r.below(NUM_SCRATCH)];
        while (reg == avoid);
        return reg;
    }

    /** Leave a masked byte offset into arr in @p reg. */
    void
    maskedIndex(Rng &r, Reg reg, uint32_t mask)
    {
        b_.movRR(reg, Reg::ECX);
        if (r.chance(0.5))
            b_.addRI(reg, int32_t(r.below(1024)));
        if (r.chance(0.4))
            b_.imulRRI(reg, reg, int32_t(r.range(3, 9)));
        b_.andRI(reg, int32_t(mask));
    }

    /** A reference into arr via a freshly computed masked index. */
    MemRef
    indexedRef(Rng &r, Reg idx, bool aligned)
    {
        if (aligned && r.chance(0.5)) {
            // Scaled form: word index, scale 4.
            maskedIndex(r, idx, ARR_WORDS - 1);
            return memAt(Reg::ESI, idx, 4, int32_t(r.below(24)) * 4);
        }
        maskedIndex(r, idx, aligned ? MASK_ALIGNED : MASK_ANY);
        return memAt(Reg::ESI, idx, 1, int32_t(r.below(64)));
    }

    /** A static (index-free) word slot in arr. */
    MemRef
    staticRef(Rng &r)
    {
        return memAt(Reg::ESI, int32_t(r.below(64)) * 4);
    }

    void
    randomAlu(Rng &r, Reg dst)
    {
        static constexpr Mnem OPS[] = {Mnem::ADD, Mnem::SUB, Mnem::AND,
                                       Mnem::OR, Mnem::XOR};
        switch (r.below(5)) {
          case 0:
            b_.aluRR(OPS[r.below(5)], dst, scratch(r));
            break;
          case 1:
            b_.aluRI(OPS[r.below(5)], dst, int32_t(r.next()));
            break;
          case 2:
            if (r.chance(0.5))
                b_.imulRR(dst, scratch(r));
            else
                b_.imulRRI(dst, scratch(r), int32_t(r.range(-9, 9)));
            break;
          case 3:
            r.chance(0.5) ? b_.incR(dst) : b_.decR(dst);
            break;
          default:
            r.chance(0.5) ? b_.negR(dst) : b_.notR(dst);
            break;
        }
    }

    void
    emitSegment(const Segment &seg)
    {
        Rng r(seg.seed * 0x9e3779b97f4a7c15ULL
              ^ (uint64_t(seg.kind) << 56) ^ spec_.seed);
        switch (seg.kind) {
          case SegKind::ALU:       return segAlu(r);
          case SegKind::MEM:       return segMem(r);
          case SegKind::ALIAS:     return segAlias(r);
          case SegKind::PARTIAL:   return segPartial(r);
          case SegKind::SHIFT:     return segShift(r);
          case SegKind::DIV:       return segDiv(r);
          case SegKind::BRANCH:    return segBranch(r);
          case SegKind::LOOP:      return segLoop(r);
          case SegKind::CALL:      return segCall(r);
          case SegKind::INDIRECT:  return segIndirect(r);
          case SegKind::FLAGCHAIN: return segFlagChain(r);
          case SegKind::NUM_KINDS: break;
        }
        panic("bad segment kind");
    }

    void
    segAlu(Rng &r)
    {
        const Reg dst = scratch(r);
        if (r.chance(0.6))
            b_.movRR(dst, Reg::ECX);
        else
            b_.movRI(dst, int32_t(r.next()));
        const unsigned n = unsigned(r.range(3, 8));
        for (unsigned i = 0; i < n; ++i)
            randomAlu(r, dst);
        if (r.chance(0.6))
            b_.movMR(staticRef(r), dst);
    }

    void
    segMem(Rng &r)
    {
        const Reg idx = scratch(r);
        const Reg val = scratch(r, idx);
        const MemRef ref = indexedRef(r, idx, true);
        b_.movRM(val, ref);
        if (r.chance(0.5)) {
            // Redundant re-load of the same address: CSE food.
            const Reg other = scratch(r, idx);
            b_.movRM(other, ref);
            b_.addRR(val, other);
        }
        MemRef neighbour = ref;
        neighbour.disp += 4;
        b_.aluRM(r.chance(0.5) ? Mnem::ADD : Mnem::XOR, val, neighbour);
        if (r.chance(0.7))
            b_.movMR(ref, val);
        else
            b_.movMR(staticRef(r), val);
    }

    void
    segAlias(Rng &r)
    {
        const Reg idxA = scratch(r);
        const Reg idxB = scratch(r, idxA);
        const Reg val = scratch(r, idxA);
        maskedIndex(r, idxA, MASK_ALIGNED);
        // idxB = idxA + (ECX & k) * step: aliases idxA exactly when the
        // masked counter bits are zero — unresolvable statically.
        b_.movRR(idxB, Reg::ECX);
        b_.andRI(idxB, int32_t(r.range(1, 3)));
        const unsigned step = r.chance(0.5) ? 4 : unsigned(r.range(1, 3));
        if (step > 1)
            b_.imulRRI(idxB, idxB, int32_t(step));
        b_.addRR(idxB, idxA);

        const MemRef refA = memAt(Reg::ESI, idxA, 1, 0);
        const MemRef refB = memAt(Reg::ESI, idxB, 1, 0);
        b_.movRI(val, int32_t(r.next()));
        b_.movMR(refA, val);
        if (r.chance(0.5))
            b_.movMR(refB, val, r.chance(0.5) ? 1 : 4);
        b_.movRM(val, refB);
        if (r.chance(0.5))
            b_.movMI(refA, int32_t(r.next()), r.chance(0.3) ? 2 : 4);
        b_.movRM(idxA, refA);
    }

    void
    segPartial(Rng &r)
    {
        const Reg idx = scratch(r);
        const Reg val = scratch(r, idx);
        const MemRef ref = indexedRef(r, idx, false);
        const uint8_t size = r.chance(0.5) ? 1 : 2;
        if (r.chance(0.5))
            b_.movzxRM(val, ref, size);
        else
            b_.movsxRM(val, ref, size);
        b_.cmpRI(val, int32_t(r.below(256)));
        const Reg flag = scratch(r, idx);
        // SETCC merges into the low byte: a partial-register write.
        b_.setcc(static_cast<Cond>(r.below(16)), flag);
        b_.addRR(val, flag);
        b_.movMR(ref, val, size);
        if (r.chance(0.5))
            b_.movzxRM(val, ref, size);
    }

    void
    segShift(Rng &r)
    {
        static constexpr uint8_t COUNTS[] = {0, 1, 2, 3, 4, 7, 16, 31};
        const Reg dst = scratch(r);
        if (r.chance(0.5))
            b_.movRR(dst, Reg::ECX);
        else
            b_.movRM(dst, staticRef(r));
        // cmp first so a count-of-zero shift (which writes no flags)
        // leaves these flags live into the consumer below.
        b_.cmpRI(dst, int32_t(r.below(64)));
        const uint8_t count = COUNTS[r.below(8)];
        switch (r.below(3)) {
          case 0: b_.shlRI(dst, count); break;
          case 1: b_.shrRI(dst, count); break;
          default: b_.sarRI(dst, count); break;
        }
        if (r.chance(0.6)) {
            b_.setcc(static_cast<Cond>(r.below(16)), scratch(r, dst));
        } else {
            const std::string skip = lbl("shiftskip");
            b_.jcc(static_cast<Cond>(r.below(16)), skip);
            randomAlu(r, dst);
            b_.label(skip);
        }
    }

    void
    segDiv(Rng &r)
    {
        const Reg div = r.chance(0.5) ? Reg::EBX : Reg::EDI;
        if (r.chance(0.5))
            b_.movRR(Reg::EAX, Reg::ECX);
        else
            b_.movRM(Reg::EAX, staticRef(r));
        b_.movRR(div, Reg::ECX);
        // Unsigned divide of EDX:EAX: zero EDX (no quotient overflow)
        // and force the divisor non-zero.
        b_.movRI(Reg::EDX, 0);
        b_.orRI(div, int32_t(r.range(1, 7)));
        b_.divR(div);
        if (r.chance(0.5))
            b_.movMR(staticRef(r), r.chance(0.5) ? Reg::EAX : Reg::EDX);
    }

    void
    segBranch(Rng &r)
    {
        const Reg val = scratch(r);
        const Reg idx = scratch(r, val);
        b_.movRM(val, indexedRef(r, idx, true));
        const std::string skip = lbl("skip");
        if (r.chance(0.75)) {
            // Biased: a random word masked wide is almost never zero,
            // so E is almost-never-taken and NE almost-always-taken.
            b_.testRI(val, 0x7f);
            b_.jcc(r.chance(0.5) ? Cond::E : Cond::NE, skip);
        } else {
            static constexpr Cond CCS[] = {Cond::E,  Cond::NE, Cond::S,
                                           Cond::NS, Cond::L,  Cond::GE,
                                           Cond::B,  Cond::AE};
            b_.cmpRI(val, int32_t(r.below(16)));
            b_.jcc(CCS[r.below(8)], skip);
        }
        const unsigned n = unsigned(r.range(1, 3));
        for (unsigned i = 0; i < n; ++i)
            randomAlu(r, val);
        if (r.chance(0.4))
            b_.movMR(staticRef(r), val);
        b_.label(skip);
    }

    void
    segLoop(Rng &r)
    {
        const Reg acc = scratch(r, Reg::EDI);
        b_.movRI(Reg::EDI, int32_t(r.range(2, 6)));
        b_.movRR(acc, Reg::ECX);
        const std::string top = lbl("loop");
        b_.label(top);
        randomAlu(r, acc);
        if (r.chance(0.5))
            b_.addRM(acc, staticRef(r));
        // DEC preserves CF; the loop branch reads ZF from it.
        b_.decR(Reg::EDI);
        b_.jcc(Cond::NE, top);
        if (r.chance(0.5))
            b_.movMR(staticRef(r), acc);
    }

    void
    segCall(Rng &r)
    {
        char name[16];
        std::snprintf(name, sizeof name, "proc%u",
                      unsigned(r.below(NUM_PROCS)));
        if (r.chance(0.4))
            b_.movRR(Reg::EAX, Reg::ECX);
        b_.call(name);
        if (r.chance(0.5))
            b_.movMR(staticRef(r), Reg::EAX);
    }

    void
    segIndirect(Rng &r)
    {
        const unsigned n = r.chance(0.5) ? 2 : 4;
        const std::string tbl = lbl("tbl");
        const uint32_t tbl_addr = b_.dataRegion(tbl, n * 4);
        const Reg idx = scratch(r);
        const Reg tgt = scratch(r, idx);
        b_.movRR(idx, Reg::ECX);
        b_.andRI(idx, int32_t(n - 1));
        b_.movRM(tgt, memAt(Reg::NONE, idx, 4, int32_t(tbl_addr)));
        b_.jmpR(tgt);
        const std::string join = lbl("join");
        for (unsigned c = 0; c < n; ++c) {
            const std::string case_lbl = lbl("case", c);
            b_.dataWordLabel(tbl, c, case_lbl);
            b_.label(case_lbl);
            const Reg v = scratch(r, idx);
            b_.movRI(v, int32_t(r.next()));
            randomAlu(r, v);
            if (c + 1 < n)
                b_.jmp(join);
        }
        b_.label(join);
    }

    void
    segFlagChain(Rng &r)
    {
        const Reg a = scratch(r);
        const Reg c = scratch(r, a);
        b_.movRR(a, Reg::ECX);
        b_.addRI(a, int32_t(r.next()));    // produces CF
        // INC/DEC preserve CF, so the consumer below reads a carry
        // produced several instructions upstream.
        b_.incR(a);
        if (r.chance(0.5))
            b_.decR(a);
        if (r.chance(0.5)) {
            b_.setcc(r.chance(0.5) ? Cond::B : Cond::AE, c);
            b_.addRR(a, c);
            b_.movMR(staticRef(r), a);
        } else {
            const std::string skip = lbl("cfskip");
            b_.jcc(r.chance(0.5) ? Cond::B : Cond::AE, skip);
            randomAlu(r, a);
            b_.label(skip);
        }
    }

    void
    emitProc(unsigned p, Rng &glue)
    {
        char name[16];
        std::snprintf(name, sizeof name, "proc%u", p);
        b_.label(name);
        b_.pushR(Reg::EBX);
        b_.movRR(Reg::EBX, Reg::ECX);
        b_.andRI(Reg::EBX, MASK_ALIGNED);
        const unsigned n = unsigned(glue.range(2, 4));
        for (unsigned i = 0; i < n; ++i) {
            if (glue.chance(0.4))
                b_.addRM(Reg::EAX, memAt(Reg::ESI, Reg::EBX, 1, 0));
            else
                randomAlu(glue, Reg::EAX);
        }
        if (glue.chance(0.5))
            b_.movMR(memAt(Reg::ESI, Reg::EBX, 1, 0), Reg::EAX);
        b_.popR(Reg::EBX);
        b_.ret();
    }

    const ProgramSpec &spec_;
    x86::AsmBuilder b_;
    uint32_t arr_ = 0;
    unsigned uid_ = 0;
};

} // anonymous namespace

const char *
segKindName(SegKind kind)
{
    if (unsigned(kind) >= unsigned(SegKind::NUM_KINDS))
        return "?";
    return KIND_NAMES[unsigned(kind)];
}

std::optional<SegKind>
segKindFromName(std::string_view name)
{
    for (unsigned k = 0; k < unsigned(SegKind::NUM_KINDS); ++k) {
        if (name == KIND_NAMES[k])
            return static_cast<SegKind>(k);
    }
    return std::nullopt;
}

ProgramSpec
ProgramSpec::random(uint64_t seed)
{
    ProgramSpec spec;
    spec.seed = seed;
    Rng r(seed);
    const unsigned n = unsigned(r.range(6, 14));
    spec.segments.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        Segment seg;
        seg.kind = static_cast<SegKind>(
            r.below(uint64_t(SegKind::NUM_KINDS)));
        seg.seed = uint32_t(r.next());
        spec.segments.push_back(seg);
    }
    return spec;
}

x86::Program
ProgramSpec::materialize() const
{
    return Materializer(*this).run();
}

std::string
ProgramSpec::serialize() const
{
    std::string out = "progen-v1 " + std::to_string(seed);
    for (const Segment &seg : segments) {
        out += ' ';
        out += segKindName(seg.kind);
        out += ':';
        out += std::to_string(seg.seed);
    }
    return out;
}

std::optional<ProgramSpec>
ProgramSpec::parse(std::string_view line)
{
    auto nextTok = [&line]() -> std::string_view {
        while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
            line.remove_prefix(1);
        size_t end = 0;
        while (end < line.size() && line[end] != ' ' && line[end] != '\t')
            ++end;
        const std::string_view tok = line.substr(0, end);
        line.remove_prefix(end);
        return tok;
    };

    if (nextTok() != "progen-v1")
        return std::nullopt;
    const std::string_view seed_tok = nextTok();
    ProgramSpec spec;
    auto [p, ec] = std::from_chars(seed_tok.begin(), seed_tok.end(),
                                   spec.seed);
    if (ec != std::errc{} || p != seed_tok.end())
        return std::nullopt;

    for (std::string_view tok = nextTok(); !tok.empty(); tok = nextTok()) {
        const size_t colon = tok.find(':');
        if (colon == std::string_view::npos)
            return std::nullopt;
        const auto kind = segKindFromName(tok.substr(0, colon));
        if (!kind)
            return std::nullopt;
        const std::string_view num = tok.substr(colon + 1);
        Segment seg;
        seg.kind = *kind;
        auto [q, ec2] = std::from_chars(num.begin(), num.end(), seg.seed);
        if (ec2 != std::errc{} || q != num.end())
            return std::nullopt;
        spec.segments.push_back(seg);
    }
    return spec;
}

} // namespace replay::fuzz
