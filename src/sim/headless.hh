/**
 * @file
 * Headless frame-machine execution: the rePLay engine driven purely
 * architecturally, with no timing model.
 *
 * The FrameMachine runs a program the way the RPO hardware would
 * commit it: instructions retire either through the conventional path
 * (the trace record's architectural effects are applied directly) or
 * as whole atomic frames, in which case the *optimized frame body* is
 * executed with FrameExec against the machine's own register file and
 * memory image.  Because the conventional path replays reference
 * values from the trace, any divergence between this machine and the
 * plain functional executor originates in frame construction,
 * optimization, or frame execution — exactly the property the
 * differential fuzzing oracle (src/fuzz) exploits.
 */

#ifndef REPLAY_SIM_HEADLESS_HH
#define REPLAY_SIM_HEADLESS_HH

#include <vector>

#include "core/sequencer.hh"
#include "opt/frameexec.hh"
#include "trace/tracer.hh"

namespace replay::sim {

/** One architectural step of the headless frame machine. */
struct MachineStep
{
    enum class Kind
    {
        CONVENTIONAL,   ///< one instruction retired off the trace
        FRAME,          ///< a whole frame committed atomically
        DONE,           ///< instruction budget exhausted
    };

    Kind kind = Kind::DONE;

    /** x86 instructions retired before this step. */
    uint64_t retiredBefore = 0;

    /** CONVENTIONAL: the retired record. */
    trace::TraceRecord record;

    // -- FRAME only ---------------------------------------------------
    core::FramePtr frame;

    /** The trace span the frame covered, in retirement order. */
    std::vector<trace::TraceRecord> span;

    /** Outcome of executing the optimized body against machine state. */
    opt::FrameExecResult result;

    /**
     * False when the body asserted or conflicted even though the trace
     * said the frame commits — an optimizer bug.  The machine then
     * retires the span conventionally so the caller can report the
     * divergence and keep running.
     */
    bool bodyCommitted = false;
};

/** Architectural-only driver of the rePLay engine. */
class FrameMachine
{
  public:
    FrameMachine(const x86::Program &program,
                 const core::EngineConfig &cfg, uint64_t max_insts);

    /** Retire one instruction or one whole frame. */
    MachineStep step();

    const opt::ArchState &state() const { return state_; }
    const x86::SparseMemory &memory() const { return mem_; }
    core::RePlayEngine &engine() { return engine_; }

    uint64_t retired() const { return retired_; }
    uint64_t framesCommitted() const { return framesCommitted_; }
    uint64_t framesAborted() const { return framesAborted_; }
    uint64_t frameInsts() const { return frameInsts_; }

  private:
    void applyConventional(const trace::TraceRecord &rec);

    trace::ExecutorTraceSource src_;
    core::RePlayEngine engine_;
    opt::ArchState state_;
    x86::SparseMemory mem_;

    uint64_t maxInsts_;
    uint64_t retired_ = 0;
    uint64_t now_ = 0;
    uint64_t framesCommitted_ = 0;
    uint64_t framesAborted_ = 0;
    uint64_t frameInsts_ = 0;
};

} // namespace replay::sim

#endif // REPLAY_SIM_HEADLESS_HH
