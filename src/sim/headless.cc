#include "sim/headless.hh"

#include <cstring>

#include "verify/online.hh"
#include "verify/static/hook.hh"

namespace replay::sim {

namespace {

/** Mirror the functional executor's initial architectural state. */
opt::ArchState
initialState(const x86::Executor &exec)
{
    opt::ArchState st;
    for (unsigned r = 0; r < x86::NUM_GPRS; ++r)
        st.regs[r] = exec.reg(static_cast<x86::Reg>(r));
    for (unsigned f = 0; f < x86::NUM_FREGS; ++f) {
        uint32_t raw;
        const float v = exec.freg(static_cast<x86::FReg>(f));
        std::memcpy(&raw, &v, 4);
        st.regs[unsigned(uop::fpr(static_cast<x86::FReg>(f)))] = raw;
    }
    st.flags = exec.flags();
    return st;
}

} // anonymous namespace

FrameMachine::FrameMachine(const x86::Program &program,
                           const core::EngineConfig &cfg,
                           uint64_t max_insts)
    : src_(program, max_insts), engine_(cfg),
      state_(initialState(src_.executor())), maxInsts_(max_insts)
{
    vstatic::maybeEnableStaticCheckFromEnv();
    for (const auto &seg : program.data())
        mem_.loadSegment(seg);
}

void
FrameMachine::applyConventional(const trace::TraceRecord &rec)
{
    verify::applyRecord(state_, rec);
    for (unsigned m = 0; m < rec.numMemOps; ++m) {
        const x86::MemOp &op = rec.memOps[m];
        if (op.isStore)
            mem_.write(op.addr, op.size, op.data);
    }
}

MachineStep
FrameMachine::step()
{
    MachineStep s;
    s.retiredBefore = retired_;
    if (retired_ >= maxInsts_)
        return s;
    const trace::TraceRecord *rec = src_.peek();
    if (!rec)
        return s;

    engine_.drainReady(now_);
    if (core::FramePtr frame = engine_.frameFor(rec->pc, now_)) {
        const auto outcome = core::resolveFrame(*frame, src_);
        if (outcome.kind == core::FrameOutcome::Kind::COMMITS) {
            s.kind = MachineStep::Kind::FRAME;
            s.frame = frame;
            s.span.reserve(frame->pcs.size());
            for (size_t i = 0; i < frame->pcs.size(); ++i)
                s.span.push_back(*src_.peek(unsigned(i)));

            s.result = opt::executeFrame(frame->body, state_, mem_);
            s.bodyCommitted = s.result.committed();
            if (!s.bodyCommitted) {
                // The trace committed but the body rolled back: an
                // optimizer bug the caller will report.  Retire the
                // span conventionally so execution stays coherent.
                for (const auto &r : s.span)
                    applyConventional(r);
            }

            engine_.frameCommitted(frame);
            for (size_t i = 0; i < frame->pcs.size(); ++i)
                src_.advance();
            retired_ += frame->pcs.size();
            frameInsts_ += frame->pcs.size();
            ++framesCommitted_;
            now_ += 1 + frame->body.numUops() / 8;
            return s;
        }
        engine_.frameAborted(frame, outcome);
        ++framesAborted_;
    }

    s.kind = MachineStep::Kind::CONVENTIONAL;
    s.record = *rec;
    applyConventional(*rec);
    engine_.observeRetired(*rec, now_);
    src_.advance();
    ++retired_;
    ++now_;
    return s;
}

} // namespace replay::sim
