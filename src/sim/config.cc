#include "sim/config.hh"

namespace replay::sim {

const char *
machineName(Machine machine)
{
    switch (machine) {
      case Machine::IC:  return "IC";
      case Machine::TC:  return "TC";
      case Machine::RP:  return "RP";
      case Machine::RPO: return "RPO";
    }
    return "?";
}

SimConfig
SimConfig::make(Machine machine)
{
    SimConfig cfg;
    cfg.machine = machine;
    switch (machine) {
      case Machine::IC:
        cfg.pipe.icacheBytes = 64 * 1024;
        break;
      case Machine::TC:
      case Machine::RP:
      case Machine::RPO:
        cfg.pipe.icacheBytes = 8 * 1024;
        break;
    }
    cfg.engine.optimize = machine == Machine::RPO;
    return cfg;
}

} // namespace replay::sim
