/**
 * @file
 * Per-run statistics: everything the paper's tables and figures are
 * drawn from.
 */

#ifndef REPLAY_SIM_RESULTS_HH
#define REPLAY_SIM_RESULTS_HH

#include <cstdint>
#include <string>

#include "opt/passes.hh"
#include "timing/accounting.hh"

namespace replay::sim {

/** Counters from one simulation run (one workload trace, one config). */
struct RunStats
{
    std::string workload;
    std::string config;

    uint64_t x86Retired = 0;
    timing::CycleAccounting bins;   ///< sums to total cycles

    // Micro-op accounting.  "Original" counts what the unoptimized
    // decode flows would have executed; "fetched/executed" counts what
    // actually flowed through the pipeline — the difference is the
    // optimizer's removal (Table 3).
    uint64_t uopsExecuted = 0;
    uint64_t uopsOriginal = 0;
    uint64_t loadsExecuted = 0;
    uint64_t loadsOriginal = 0;

    // rePLay events.
    uint64_t frameCommits = 0;
    uint64_t frameAborts = 0;
    uint64_t unsafeConflicts = 0;
    uint64_t frameX86Retired = 0;   ///< x86 insts retired from frames

    uint64_t mispredicts = 0;
    uint64_t icacheMisses = 0;

    // Fetch-source transition profile (diagnostics).
    uint64_t frameAfterFrame = 0;   ///< frame fetch directly after one
    uint64_t icacheAfterFrame = 0;  ///< conventional fetch after a frame

    /** Optimizer counters (RPO only). */
    opt::OptStats optStats;

    // rePLay engine construction counters.
    uint64_t engineCandidates = 0;
    uint64_t engineDuplicates = 0;
    uint64_t engineOptDrops = 0;
    uint64_t engineBiasEvictions = 0;
    uint64_t fcacheEvictions = 0;

    // Fault-injection harness counters (zero unless enabled).
    uint64_t verifyChecks = 0;          ///< online checks performed
    uint64_t verifyDetections = 0;      ///< checks that rejected a frame
    uint64_t corruptFrameCommits = 0;   ///< injected frames that escaped
    uint64_t faultsFetchFlip = 0;       ///< bit flips on frame fetch
    uint64_t faultsPassSabotage = 0;    ///< sabotaged optimized bodies
    uint64_t quarantines = 0;
    uint64_t quarantineBlocks = 0;      ///< fetches denied by quarantine
    uint64_t quarantineDrops = 0;       ///< candidates denied
    uint64_t quarantineReadmissions = 0;

    // Resource-governance / degradation counters (all zero while
    // ungoverned and fault-free — see the fingerprint() note).
    uint64_t govSoftTransitions = 0;     ///< entries into SOFT
    uint64_t govHardTransitions = 0;     ///< entries into HARD
    uint64_t govCriticalTransitions = 0; ///< entries into CRITICAL
    uint64_t govShedFrames = 0;          ///< frames shed under pressure
    uint64_t govAdmitRejects = 0;        ///< deposits rejected (SOFT+)
    uint64_t govCheapOpts = 0;           ///< cheap-subset optimizations
    uint64_t govSuspendedCandidates = 0; ///< dropped under CRITICAL
    uint64_t allocFailures = 0;          ///< bad_alloc or injected fail
    uint64_t stallsInjected = 0;         ///< chaos stalls taken
    uint64_t govPeakBytes = 0;           ///< peak governed footprint

    // Tiered re-optimization counters (all zero with tierBudget == 0;
    // behind their own fingerprint sentinel, like the governance
    // block, so untiered runs stay bit-identical to the seed).
    uint64_t tierEnqueues = 0;      ///< hot frames queued for re-opt
    uint64_t tierReopts = 0;        ///< background jobs executed
    uint64_t tierPublishes = 0;     ///< re-optimized bodies published
    uint64_t tierUopsRemoved = 0;   ///< cached uops freed by re-opt
    uint64_t tierVerifyRejects = 0; ///< results the linter rejected
    uint64_t tierStaleDrops = 0;    ///< results for departed frames
    uint64_t tierDeferrals = 0;     ///< publications held off a pin
    uint64_t tierCancelled = 0;     ///< jobs cancelled by eviction
    uint64_t tierShed = 0;          ///< jobs shed under pressure
    uint64_t tierDroppedAtExit = 0; ///< work abandoned at quiesce

    /**
     * FNV-1a64 of the architectural state at the instruction budget
     * (online verification only): bit-identical across machines and
     * across faulty / fault-free runs when recovery works.
     */
    uint64_t archDigest = 0;
    bool archDigestValid = false;

    uint64_t cycles() const { return bins.total(); }

    /** x86 instructions per cycle — the paper's IPC metric. */
    double
    ipc() const
    {
        return cycles() ? double(x86Retired) / double(cycles()) : 0.0;
    }

    /** Fraction of x86 instructions retired from the frame cache. */
    double
    coverage() const
    {
        return x86Retired ? double(frameX86Retired) / double(x86Retired)
                          : 0.0;
    }

    /** Fraction of dynamic micro-ops the optimizer removed. */
    double
    uopReduction() const
    {
        return uopsOriginal
                   ? 1.0 - double(uopsExecuted) / double(uopsOriginal)
                   : 0.0;
    }

    /** Fraction of dynamic loads removed. */
    double
    loadReduction() const
    {
        return loadsOriginal
                   ? 1.0 - double(loadsExecuted) / double(loadsOriginal)
                   : 0.0;
    }

    /** Accumulate another trace of the same application. */
    void merge(const RunStats &other);

    /**
     * FNV-1a64 over every counter (names, cycle bins, optimizer stats,
     * digest) in a fixed field order.  Two RunStats compare equal iff
     * their fingerprints match; sweep drivers hash these in canonical
     * cell order to assert bit-identical results across --jobs values.
     */
    uint64_t fingerprint() const;
};

} // namespace replay::sim

#endif // REPLAY_SIM_RESULTS_HH
