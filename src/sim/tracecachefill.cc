#include "sim/tracecachefill.hh"

namespace replay::sim {

using trace::TraceRecord;
using x86::Form;
using x86::Mnem;

TraceCacheUnit::TraceCacheUnit(unsigned capacity_uops,
                               unsigned max_branches, unsigned max_uops)
    : maxBranches_(max_branches), maxUops_(max_uops),
      cache_(capacity_uops)
{
}

void
TraceCacheUnit::finishTrace(uint32_t next_pc)
{
    if (uops_.size() >= 4) {
        // Skip rebuilds of an identical or longer cached trace (early
        // exits are handled by prefix matching at fetch).
        const core::FramePtr existing = cache_.probe(startPc_);
        if (!existing || existing->pcs.size() < pcs_.size()) {
            auto trace_frame = std::make_shared<core::Frame>();
            trace_frame->id = nextId_++;
            trace_frame->startPc = startPc_;
            trace_frame->pcs = pcs_;
            trace_frame->nextPc = next_pc;
            trace_frame->dynamicExit = true;    // multiple exits anyway
            trace_frame->body = opt::Optimizer::passthrough(
                uops_, {}, /*frame_semantics=*/false);
            cache_.insert(std::move(trace_frame));
        }
    }
    uops_.clear();
    pcs_.clear();
    branches_ = 0;
}

void
TraceCacheUnit::observe(const TraceRecord &rec)
{
    const x86::Inst &in = rec.inst;
    if (in.mnem == Mnem::LONGFLOW) {
        finishTrace(rec.pc);
        return;
    }

    std::vector<uop::Uop> flow = translator_.translate(
        in, rec.pc, rec.pc + rec.length);
    if (uops_.size() + flow.size() > maxUops_)
        finishTrace(rec.pc);

    if (uops_.empty())
        startPc_ = rec.pc;
    const uint16_t inst_idx = uint16_t(pcs_.size());
    for (auto &u : flow) {
        u.instIdx = inst_idx;
        uops_.push_back(u);
    }
    pcs_.push_back(rec.pc);

    const bool is_branch_uop =
        in.isCondBranch() ||
        (in.mnem == Mnem::JMP && in.form != Form::REL) ||
        (in.mnem == Mnem::CALL && in.form != Form::REL) ||
        in.mnem == Mnem::RET;
    if (is_branch_uop) {
        ++branches_;
        if (branches_ >= maxBranches_)
            finishTrace(rec.nextPc);
    }
}

} // namespace replay::sim
