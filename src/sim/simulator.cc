#include "sim/simulator.hh"

#include <array>
#include <chrono>
#include <thread>

#include "core/frame.hh"
#include "util/logging.hh"
#include "verify/static/hook.hh"
#include "verify/static/lint.hh"

namespace replay::sim {

using core::FrameOutcome;
using core::FramePtr;
using opt::Operand;
using timing::CycleBin;
using trace::TraceRecord;
using uop::Op;
using uop::Uop;
using uop::UReg;

/** Completion times of architectural values (the timing-side RAT). */
struct Simulator::Rat
{
    std::array<uint64_t, uop::NUM_UREGS> regs{};
    uint64_t flags = 0;

    uint64_t
    reg(UReg r) const
    {
        return r == UReg::NONE ? 0 : regs[unsigned(r)];
    }
};

Simulator::Simulator(const SimConfig &cfg)
    : cfg_(cfg), fe_(cfg_.pipe), mem_(cfg_.pipe.mem),
      exec_(cfg_.pipe.exec, mem_), bpred_(cfg_.pipe.bpred),
      rat_(std::make_unique<Rat>())
{
    vstatic::maybeEnableStaticCheckFromEnv();
    if (cfg_.fault.enabled()) {
        injector_ = std::make_unique<fault::FaultInjector>(cfg_.fault);
        if (cfg_.usesFrames())
            cfg_.engine.injector = injector_.get();
    }
    if (cfg_.usesFrames() && cfg_.governor.budgetBytes > 0) {
        // Per-run governor (never shared across sessions): pressure
        // must depend only on this run's own allocation history so
        // governed sweeps stay deterministic under any --jobs.
        governor_ = std::make_unique<ResourceGovernor>(cfg_.governor);
        if (injector_ && cfg_.fault.allocFailRate > 0.0) {
            governor_->setAllocFailureInjector(
                [inj = injector_.get()] { return inj->maybeFailAlloc(); });
        }
        cfg_.engine.governor = governor_.get();
    }
    if (cfg_.usesFrames() && cfg_.engine.tier.workers > 0) {
        // Background re-opt work honours the same cancellation token
        // the simulation loop polls, and every result is validated by
        // the static verifier before publication (the engine layer
        // cannot link the verifier itself, so the gate is injected).
        cfg_.engine.tier.cancel = cfg_.cancel;
        if (!cfg_.engine.tierVerify) {
            cfg_.engine.tierVerify = [](const core::Frame &frame) {
                return vstatic::lintFrame(frame).ok();
            };
        }
    }
    if (cfg_.usesFrames())
        engine_ = std::make_unique<core::RePlayEngine>(cfg_.engine);
    if (cfg_.verifyOnline)
        online_ = std::make_unique<verify::OnlineVerifier>(cfg_.maxInsts);
    if (cfg_.usesTraceCache()) {
        tcache_ = std::make_unique<TraceCacheUnit>(
            cfg_.tcCapacityUops, cfg_.tcMaxBranches, cfg_.tcMaxUops);
    }
}

Simulator::~Simulator() = default;

namespace {

/** Runtime address of a memory micro-op, from the trace record. */
uint32_t
memAddrFor(uint8_t mem_seq, const TraceRecord *rec)
{
    if (!rec || mem_seq >= rec->numMemOps)
        return 0;
    return rec->memOps[mem_seq].addr;
}

uint32_t
memAddrFor(const Uop &u, const TraceRecord *rec)
{
    return memAddrFor(u.memSeq, rec);
}

} // anonymous namespace

void
Simulator::simulateIcacheInst(const TraceRecord &rec,
                              trace::TraceSource &src)
{
    fe_.idleUntil(exec_.fetchBackpressure(), CycleBin::STALL);

    // Per-thread decode scratch: this runs once per conventional-path
    // instruction and is far too hot for a fresh allocation.
    thread_local std::vector<Uop> flow;
    flow.clear();
    translator_.translate(rec.inst, rec.pc, rec.pc + rec.length, flow);
    const uint64_t fetch_cycle =
        fe_.fetchIcacheInst(rec.pc, unsigned(flow.size()));

    uint64_t ctrl_complete = 0;
    for (const Uop &u : flow) {
        uint64_t deps[4];
        unsigned nd = 0;
        if (u.srcA != UReg::NONE)
            deps[nd++] = rat_->reg(u.srcA);
        if (u.srcB != UReg::NONE)
            deps[nd++] = rat_->reg(u.srcB);
        if (u.srcC != UReg::NONE)
            deps[nd++] = rat_->reg(u.srcC);
        if (u.readsFlags)
            deps[nd++] = rat_->flags;

        const uint32_t addr =
            u.isMem() ? memAddrFor(u, &rec) : 0;
        const auto t = exec_.exec(fetch_cycle, u, deps, nd, addr);

        if (u.dst != UReg::NONE)
            rat_->regs[unsigned(u.dst)] = t.complete;
        if (u.writesFlags)
            rat_->flags = t.complete;
        if (u.isControl())
            ctrl_complete = t.complete;

        ++stats_.uopsExecuted;
        ++stats_.uopsOriginal;
        if (u.isLoad()) {
            ++stats_.loadsExecuted;
            ++stats_.loadsOriginal;
        }
    }

    if (rec.inst.isControl() || rec.inst.isCondBranch()) {
        const bool mispredicted = bpred_.predictAndTrain(rec);
        if (rec.taken)
            fe_.fetchBreak();
        if (mispredicted) {
            ++stats_.mispredicts;
            fe_.idleUntil(ctrl_complete + cfg_.pipe.redirectPenalty,
                          CycleBin::MISPRED);
        }
    }

    if (rec.inst.mnem == x86::Mnem::LONGFLOW) {
        // Rare complex instruction: flush the pipeline (§5.1.1).
        fe_.idleUntil(exec_.lastRetire() + cfg_.pipe.longflowFlushPenalty,
                      CycleBin::STALL);
        if (engine_)
            engine_->flush();
    }

    if (engine_)
        engine_->observeRetired(rec, fe_.now());
    if (tcache_)
        tcache_->observe(rec);
    if (online_)
        online_->observe(rec);

    ++stats_.x86Retired;
    src.advance();
}

void
Simulator::simulateFrame(const FramePtr &frame, trace::TraceSource &src)
{
    const FrameOutcome outcome = core::resolveFrame(*frame, src);
    const auto &body = frame->body;

    // Fetch and schedule the whole frame (even on an abort: the
    // pessimistic §6.1 model begins recovery only once the frame is
    // ready for retirement).
    const Rat rat_snapshot = *rat_;
    const uop::UopSlab &code = body.code;
    const size_t n_uops = code.size();
    thread_local std::vector<uint64_t> completions;
    completions.assign(n_uops, 0);

    auto depOf = [&](const Operand &op) -> uint64_t {
        switch (op.kind) {
          case Operand::Kind::NONE:
            return 0;
          case Operand::Kind::LIVE_IN:
            return op.reg == UReg::FLAGS ? rat_->flags
                                         : rat_->reg(op.reg);
          case Operand::Kind::PROD:
            return completions[op.idx];
        }
        return 0;
    };

    // Plane scan: operand planes for dependencies, the attr bitset for
    // the memory test, provenance planes only on the mem path.
    for (size_t i = 0; i < n_uops; ++i) {
        fe_.idleUntil(exec_.fetchBackpressure(), CycleBin::STALL);
        const uint64_t cycle = fe_.fetchFrameUop();

        uint64_t deps[4];
        unsigned nd = 0;
        if (!body.srcA[i].isNone())
            deps[nd++] = depOf(body.srcA[i]);
        if (!body.srcB[i].isNone())
            deps[nd++] = depOf(body.srcB[i]);
        if (!body.srcC[i].isNone())
            deps[nd++] = depOf(body.srcC[i]);
        if (!body.flagsSrc[i].isNone())
            deps[nd++] = depOf(body.flagsSrc[i]);

        uint32_t addr = 0;
        if (code.attr[i] & uop::UA_KIND_MEM) {
            const uint16_t inst_idx = code.instIdx[i];
            const TraceRecord *rec = src.peek(inst_idx);
            if (rec && inst_idx < frame->pcs.size() &&
                rec->pc == frame->pcs[inst_idx]) {
                addr = memAddrFor(code.memSeq[i], rec);
            }
        }
        const auto t = exec_.exec(cycle, code.op[i], code.memSize[i],
                                  deps, nd, addr);
        completions[i] = t.complete;
    }
    fe_.fetchBreak();

    // Online verification: check the (possibly corrupted) cached body
    // against the trace span before anything commits.  A rejection
    // rolls back like an assert fire, pays the verify-recovery penalty,
    // quarantines the frame's start PC, and degrades to the
    // conventional path.
    if (outcome.kind == FrameOutcome::Kind::COMMITS && online_) {
        const uint64_t skips_before = online_->skips();
        const verify::VerifyResult vr =
            online_->verifyDispatch(*frame, src);
        if (online_->skips() == skips_before)
            ++stats_.verifyChecks;
        if (!vr.ok) {
            ++stats_.verifyDetections;
            *rat_ = rat_snapshot;
            fe_.idleUntil(
                exec_.lastRetire() + cfg_.pipe.verifyRecoveryPenalty,
                CycleBin::VERIFY);
            engine_->frameQuarantined(frame, fe_.now());
            icacheForcedUntil_ = src.consumed() + 1;
            return;
        }
        if (frame->faultInjected)
            ++stats_.corruptFrameCommits;
    }

    if (outcome.kind == FrameOutcome::Kind::COMMITS) {
        // Architectural hand-off: live-out bindings become the new
        // value-completion map.
        Rat next = rat_snapshot;
        for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
            const Operand &binding = body.exit.regs[r];
            if (!binding.isNone())
                next.regs[r] = depOf(binding);
        }
        next.flags = depOf(body.exit.flags);
        *rat_ = next;

        engine_->frameCommitted(frame);
        ++stats_.frameCommits;
        stats_.uopsExecuted += n_uops;
        stats_.loadsExecuted += body.outputLoads;
        stats_.uopsOriginal += body.inputUops;
        stats_.loadsOriginal += body.inputLoads;
        stats_.frameX86Retired += frame->numX86Insts();
        stats_.x86Retired += frame->numX86Insts();
        // The frame's instructions retire and flow into the frame
        // constructor like any others (Figure 5) — this keeps the
        // bias tables warm and lets construction tile contiguously
        // across committed frames.
        for (unsigned i = 0; i < frame->numX86Insts(); ++i) {
            const TraceRecord *r = src.peek();
            engine_->observeRetired(*r, fe_.now());
            if (online_)
                online_->observe(*r);
            // Keep the predictor trained across frame-covered code so
            // the branches at frame boundaries keep their history (no
            // penalty is charged: assertions replaced the predictions).
            if (r->inst.isControl() || r->inst.isCondBranch())
                bpred_.predictAndTrain(*r);
            src.advance();
        }
        return;
    }

    // Abort: roll back, charge recovery, and force the original
    // instructions through the conventional path.
    *rat_ = rat_snapshot;
    fe_.idleUntil(exec_.lastRetire() + cfg_.pipe.assertRecoveryPenalty,
                  CycleBin::ASSERT);
    engine_->frameAborted(frame, outcome);
    ++stats_.frameAborts;
    if (outcome.kind == FrameOutcome::Kind::UNSAFE_CONFLICT)
        ++stats_.unsafeConflicts;
    // The aborted frame's fetched micro-ops consumed bandwidth but
    // retired nothing; the records are re-executed below.
    icacheForcedUntil_ = src.consumed() + outcome.faultIndex + 1;
}

void
Simulator::simulateTracePrefix(const FramePtr &trace_frame,
                               trace::TraceSource &src)
{
    // Usable prefix: instructions up to (and including) the first one
    // whose outcome leaves the trace's embedded path.
    unsigned n = 0;
    for (size_t i = 0; i < trace_frame->pcs.size(); ++i) {
        const TraceRecord *rec = src.peek(unsigned(i));
        if (!rec || rec->pc != trace_frame->pcs[i])
            break;
        n = unsigned(i) + 1;
        if (rec->nextPc != trace_frame->expectedNext(i))
            break;      // early exit after this instruction
    }
    panic_if(n == 0, "trace lookup hit but first pc mismatched");

    const auto &body = trace_frame->body;
    const uop::UopSlab &code = body.code;
    const size_t n_uops = code.size();
    thread_local std::vector<uint64_t> completions;
    completions.assign(n_uops, 0);
    auto depOf = [&](const Operand &op) -> uint64_t {
        switch (op.kind) {
          case Operand::Kind::NONE:
            return 0;
          case Operand::Kind::LIVE_IN:
            return op.reg == UReg::FLAGS ? rat_->flags
                                         : rat_->reg(op.reg);
          case Operand::Kind::PROD:
            return completions[op.idx];
        }
        return 0;
    };

    unsigned cur_inst = 0;
    uint64_t ctrl_complete = 0;
    for (size_t i = 0; i < n_uops; ++i) {
        const uint16_t inst_idx = code.instIdx[i];
        const uint16_t attr = code.attr[i];
        if (inst_idx >= n)
            break;
        // Per-instruction bookkeeping when we cross a boundary.
        if (inst_idx > cur_inst)
            cur_inst = inst_idx;

        fe_.idleUntil(exec_.fetchBackpressure(), CycleBin::STALL);
        const uint64_t cycle = fe_.fetchFrameUop();

        uint64_t deps[4];
        unsigned nd = 0;
        if (!body.srcA[i].isNone())
            deps[nd++] = depOf(body.srcA[i]);
        if (!body.srcB[i].isNone())
            deps[nd++] = depOf(body.srcB[i]);
        if (!body.srcC[i].isNone())
            deps[nd++] = depOf(body.srcC[i]);
        if (!body.flagsSrc[i].isNone())
            deps[nd++] = depOf(body.flagsSrc[i]);

        const TraceRecord *rec = src.peek(inst_idx);
        const uint32_t addr = (attr & uop::UA_KIND_MEM)
            ? memAddrFor(code.memSeq[i], rec)
            : 0;
        const auto t = exec_.exec(cycle, code.op[i], code.memSize[i],
                                  deps, nd, addr);
        completions[i] = t.complete;

        // Live-out tracking: traces are not renamed across exits, so
        // update the RAT directly from the architectural destination.
        if (code.dst[i] != UReg::NONE)
            rat_->regs[unsigned(code.dst[i])] = t.complete;
        if (attr & uop::UA_WRITES_FLAGS)
            rat_->flags = t.complete;
        if (attr & uop::UA_KIND_CONTROL)
            ctrl_complete = t.complete;

        ++stats_.uopsExecuted;
        ++stats_.uopsOriginal;
        if (attr & uop::UA_KIND_LOAD) {
            ++stats_.loadsExecuted;
            ++stats_.loadsOriginal;
        }

        // Branch resolution for embedded control.
        const bool last_uop_of_inst =
            i + 1 == n_uops || code.instIdx[i + 1] != inst_idx;
        if (last_uop_of_inst) {
            const TraceRecord *r = src.peek(inst_idx);
            if (r && (r->inst.isControl() || r->inst.isCondBranch())) {
                const bool mispredicted = bpred_.predictAndTrain(*r);
                if (mispredicted) {
                    ++stats_.mispredicts;
                    fe_.idleUntil(
                        ctrl_complete + cfg_.pipe.redirectPenalty,
                        CycleBin::MISPRED);
                }
            }
        }
    }
    fe_.fetchBreak();

    stats_.x86Retired += n;
    stats_.frameX86Retired += n;    // "retired from the trace cache"
    for (unsigned i = 0; i < n; ++i) {
        tcache_->observe(*src.peek());
        if (online_)
            online_->observe(*src.peek());
        src.advance();
    }
}

RunStats
Simulator::run(trace::TraceSource &src)
{
    stats_ = RunStats{};
    stats_.config = cfg_.name();

    uint64_t checkpoint = 0;
    while (!src.done() &&
           (cfg_.maxInsts == 0 || stats_.x86Retired < cfg_.maxInsts)) {
        // Cancellation / watchdog checkpoint: cheap enough to sit on
        // the hot loop (one counter test), frequent enough that a
        // cancelled or deadline-expired run unwinds within ~1k
        // records.  The injected stall models a wedged dependency and
        // exists to exercise the sweep watchdog.
        if ((++checkpoint & 1023u) == 0) {
            if (injector_ && injector_->maybeStall()) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(cfg_.fault.stallMillis));
                ++stats_.stallsInjected;
            }
            cfg_.cancel.throwIfStopped("simulation");
        }
        const TraceRecord *rec = src.peek();
        const uint32_t pc = rec->pc;

        if (engine_ && src.consumed() >= icacheForcedUntil_) {
            if (FramePtr frame = engine_->frameFor(pc, fe_.now())) {
                if (lastWasFrame_)
                    ++stats_.frameAfterFrame;
                lastWasFrame_ = true;
                simulateFrame(frame, src);
                continue;
            }
        }
        if (tcache_) {
            if (FramePtr trace_frame = tcache_->lookup(pc)) {
                simulateTracePrefix(trace_frame, src);
                continue;
            }
        }
        if (lastWasFrame_)
            ++stats_.icacheAfterFrame;
        lastWasFrame_ = false;
        simulateIcacheInst(*rec, src);
    }

    // Tier teardown before harvest: abandoned work must be counted,
    // and no background job may still be running while counters are
    // read.
    if (engine_)
        engine_->quiesceTier();

    fe_.finish(exec_.lastRetire());
    stats_.bins = fe_.bins();
    stats_.icacheMisses = fe_.icache().cache().stats().get("misses");
    if (engine_) {
        stats_.optStats = engine_->optStats();
        stats_.engineCandidates = engine_->stats().get("candidates");
        stats_.engineDuplicates =
            engine_->stats().get("duplicate_candidates");
        stats_.engineOptDrops = engine_->stats().get("optimizer_drops");
        stats_.engineBiasEvictions =
            engine_->stats().get("bias_evictions");
        stats_.fcacheEvictions =
            engine_->cache().stats().get("evictions");
        stats_.faultsFetchFlip =
            engine_->stats().get("fault_fetch_flips");
        stats_.faultsPassSabotage =
            engine_->stats().get("fault_pass_sabotage");
        stats_.quarantines = engine_->stats().get("quarantines");
        stats_.quarantineBlocks =
            engine_->stats().get("quarantine_blocks");
        stats_.quarantineDrops =
            engine_->stats().get("quarantine_candidate_drops");
        stats_.quarantineReadmissions =
            engine_->quarantine().stats().get("readmissions");
        stats_.govShedFrames = engine_->stats().get("gov_shed_frames");
        stats_.govAdmitRejects =
            engine_->stats().get("gov_admit_rejects");
        stats_.govCheapOpts = engine_->stats().get("gov_cheap_opts");
        stats_.govSuspendedCandidates =
            engine_->stats().get("gov_suspended");
        stats_.allocFailures = engine_->stats().get("alloc_failures");
        stats_.tierEnqueues = engine_->stats().get("tier_enqueues");
        stats_.tierPublishes = engine_->stats().get("tier_publishes");
        stats_.tierUopsRemoved =
            engine_->stats().get("tier_uops_removed");
        stats_.tierVerifyRejects =
            engine_->stats().get("tier_verify_rejects");
        stats_.tierStaleDrops =
            engine_->stats().get("tier_stale_drops");
        stats_.tierDeferrals = engine_->stats().get("tier_deferrals");
        stats_.tierCancelled = engine_->stats().get("tier_cancelled");
        stats_.tierShed = engine_->stats().get("tier_shed");
        stats_.tierDroppedAtExit =
            engine_->stats().get("tier_dropped_at_exit");
        if (engine_->tier())
            stats_.tierReopts = engine_->tier()->executedJobs();
    }
    if (governor_) {
        stats_.govSoftTransitions =
            governor_->stats().get("soft_transitions");
        stats_.govHardTransitions =
            governor_->stats().get("hard_transitions");
        stats_.govCriticalTransitions =
            governor_->stats().get("critical_transitions");
        stats_.govPeakBytes = governor_->peakBytes();
    }
    if (online_) {
        stats_.archDigest = online_->digest();
        stats_.archDigestValid = true;
    }
    return stats_;
}

RunStats
simulateTrace(const SimConfig &cfg, trace::TraceSource &src,
              const std::string &workload_name)
{
    Simulator sim(cfg);
    RunStats stats = sim.run(src);
    stats.workload = workload_name;
    return stats;
}

} // namespace replay::sim
