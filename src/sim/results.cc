#include "sim/results.hh"

namespace replay::sim {

void
RunStats::merge(const RunStats &other)
{
    x86Retired += other.x86Retired;
    bins.merge(other.bins);
    uopsExecuted += other.uopsExecuted;
    uopsOriginal += other.uopsOriginal;
    loadsExecuted += other.loadsExecuted;
    loadsOriginal += other.loadsOriginal;
    frameCommits += other.frameCommits;
    frameAborts += other.frameAborts;
    unsafeConflicts += other.unsafeConflicts;
    frameX86Retired += other.frameX86Retired;
    mispredicts += other.mispredicts;
    icacheMisses += other.icacheMisses;
    frameAfterFrame += other.frameAfterFrame;
    icacheAfterFrame += other.icacheAfterFrame;
    engineCandidates += other.engineCandidates;
    engineDuplicates += other.engineDuplicates;
    engineOptDrops += other.engineOptDrops;
    engineBiasEvictions += other.engineBiasEvictions;
    fcacheEvictions += other.fcacheEvictions;
    verifyChecks += other.verifyChecks;
    verifyDetections += other.verifyDetections;
    corruptFrameCommits += other.corruptFrameCommits;
    faultsFetchFlip += other.faultsFetchFlip;
    faultsPassSabotage += other.faultsPassSabotage;
    quarantines += other.quarantines;
    quarantineBlocks += other.quarantineBlocks;
    quarantineDrops += other.quarantineDrops;
    quarantineReadmissions += other.quarantineReadmissions;
    if (!archDigestValid) {
        archDigest = other.archDigest;
        archDigestValid = other.archDigestValid;
    } else if (other.archDigestValid) {
        archDigest = archDigest * 1099511628211ULL ^ other.archDigest;
    }
    optStats.merge(other.optStats);
}

} // namespace replay::sim
