#include "sim/results.hh"

namespace replay::sim {

void
RunStats::merge(const RunStats &other)
{
    x86Retired += other.x86Retired;
    bins.merge(other.bins);
    uopsExecuted += other.uopsExecuted;
    uopsOriginal += other.uopsOriginal;
    loadsExecuted += other.loadsExecuted;
    loadsOriginal += other.loadsOriginal;
    frameCommits += other.frameCommits;
    frameAborts += other.frameAborts;
    unsafeConflicts += other.unsafeConflicts;
    frameX86Retired += other.frameX86Retired;
    mispredicts += other.mispredicts;
    icacheMisses += other.icacheMisses;
    frameAfterFrame += other.frameAfterFrame;
    icacheAfterFrame += other.icacheAfterFrame;
    engineCandidates += other.engineCandidates;
    engineDuplicates += other.engineDuplicates;
    engineOptDrops += other.engineOptDrops;
    engineBiasEvictions += other.engineBiasEvictions;
    fcacheEvictions += other.fcacheEvictions;
    verifyChecks += other.verifyChecks;
    verifyDetections += other.verifyDetections;
    corruptFrameCommits += other.corruptFrameCommits;
    faultsFetchFlip += other.faultsFetchFlip;
    faultsPassSabotage += other.faultsPassSabotage;
    quarantines += other.quarantines;
    quarantineBlocks += other.quarantineBlocks;
    quarantineDrops += other.quarantineDrops;
    quarantineReadmissions += other.quarantineReadmissions;
    govSoftTransitions += other.govSoftTransitions;
    govHardTransitions += other.govHardTransitions;
    govCriticalTransitions += other.govCriticalTransitions;
    govShedFrames += other.govShedFrames;
    govAdmitRejects += other.govAdmitRejects;
    govCheapOpts += other.govCheapOpts;
    govSuspendedCandidates += other.govSuspendedCandidates;
    allocFailures += other.allocFailures;
    stallsInjected += other.stallsInjected;
    tierEnqueues += other.tierEnqueues;
    tierReopts += other.tierReopts;
    tierPublishes += other.tierPublishes;
    tierUopsRemoved += other.tierUopsRemoved;
    tierVerifyRejects += other.tierVerifyRejects;
    tierStaleDrops += other.tierStaleDrops;
    tierDeferrals += other.tierDeferrals;
    tierCancelled += other.tierCancelled;
    tierShed += other.tierShed;
    tierDroppedAtExit += other.tierDroppedAtExit;
    // Peak footprint merges via max: commutative and associative like
    // the sums, so merged results stay independent of arrival order.
    govPeakBytes = govPeakBytes > other.govPeakBytes
                       ? govPeakBytes
                       : other.govPeakBytes;
    // Combine digests with modular addition: commutative and
    // associative, so a merged digest is independent of the order the
    // per-trace results arrive in (serial loop or parallel sweep).
    // The old fold (digest * FNV_PRIME ^ other) depended on completion
    // order and would have made parallel runs nondeterministic.
    if (!archDigestValid) {
        archDigest = other.archDigest;
        archDigestValid = other.archDigestValid;
    } else if (other.archDigestValid) {
        archDigest += other.archDigest;
    }
    optStats.merge(other.optStats);
}

namespace {

struct Fnv
{
    uint64_t h = 14695981039346656037ULL;

    void
    mix(uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ULL;
        }
    }

    void
    mix(const std::string &s)
    {
        mix(uint64_t(s.size()));
        for (const char c : s) {
            h ^= uint8_t(c);
            h *= 1099511628211ULL;
        }
    }
};

} // anonymous namespace

uint64_t
RunStats::fingerprint() const
{
    Fnv f;
    f.mix(workload);
    f.mix(config);
    f.mix(x86Retired);
    for (unsigned i = 0; i < timing::NUM_CYCLE_BINS; ++i)
        f.mix(bins.get(timing::CycleBin(i)));
    f.mix(uopsExecuted);
    f.mix(uopsOriginal);
    f.mix(loadsExecuted);
    f.mix(loadsOriginal);
    f.mix(frameCommits);
    f.mix(frameAborts);
    f.mix(unsafeConflicts);
    f.mix(frameX86Retired);
    f.mix(mispredicts);
    f.mix(icacheMisses);
    f.mix(frameAfterFrame);
    f.mix(icacheAfterFrame);
    f.mix(engineCandidates);
    f.mix(engineDuplicates);
    f.mix(engineOptDrops);
    f.mix(engineBiasEvictions);
    f.mix(fcacheEvictions);
    f.mix(verifyChecks);
    f.mix(verifyDetections);
    f.mix(corruptFrameCommits);
    f.mix(faultsFetchFlip);
    f.mix(faultsPassSabotage);
    f.mix(quarantines);
    f.mix(quarantineBlocks);
    f.mix(quarantineDrops);
    f.mix(quarantineReadmissions);
    // Governance counters joined the struct after the golden
    // fingerprints were frozen.  They are all zero in ungoverned,
    // fault-free runs, so they contribute only when any is nonzero —
    // behind a sentinel so a governed run can never collide with an
    // ungoverned run that happens to share the other counters.
    // govPeakBytes is deliberately NOT part of the predicate: a
    // governor that never leaves OK is observation-only and must leave
    // the fingerprint bit-identical to an ungoverned run.
    const bool governed = govSoftTransitions || govHardTransitions ||
                          govCriticalTransitions || govShedFrames ||
                          govAdmitRejects || govCheapOpts ||
                          govSuspendedCandidates || allocFailures ||
                          stallsInjected;
    if (governed) {
        f.mix(uint64_t(0x60767265646e6f67ULL)); // sentinel: "governed"
        f.mix(govSoftTransitions);
        f.mix(govHardTransitions);
        f.mix(govCriticalTransitions);
        f.mix(govShedFrames);
        f.mix(govAdmitRejects);
        f.mix(govCheapOpts);
        f.mix(govSuspendedCandidates);
        f.mix(allocFailures);
        f.mix(stallsInjected);
        f.mix(govPeakBytes);
    }
    // Tier counters follow the same pattern: they joined after the
    // goldens froze, are all zero with tierBudget == 0, and contribute
    // behind their own sentinel only when any is nonzero — so untiered
    // fingerprints stay bit-identical to the seed, and a tiered run
    // can never collide with an untiered one sharing the rest.
    const bool tiered = tierEnqueues || tierReopts || tierPublishes ||
                        tierUopsRemoved || tierVerifyRejects ||
                        tierStaleDrops || tierDeferrals ||
                        tierCancelled || tierShed || tierDroppedAtExit;
    if (tiered) {
        f.mix(uint64_t(0x0000646572656974ULL)); // sentinel: "tiered"
        f.mix(tierEnqueues);
        f.mix(tierReopts);
        f.mix(tierPublishes);
        f.mix(tierUopsRemoved);
        f.mix(tierVerifyRejects);
        f.mix(tierStaleDrops);
        f.mix(tierDeferrals);
        f.mix(tierCancelled);
        f.mix(tierShed);
        f.mix(tierDroppedAtExit);
    }
    f.mix(archDigest);
    f.mix(uint64_t(archDigestValid));
    f.mix(optStats.framesOptimized);
    f.mix(optStats.inputUops);
    f.mix(optStats.outputUops);
    f.mix(optStats.inputLoads);
    f.mix(optStats.outputLoads);
    f.mix(optStats.nopsRemoved);
    f.mix(optStats.assertsCombined);
    f.mix(optStats.constantsFolded);
    f.mix(optStats.copiesPropagated);
    f.mix(optStats.reassociations);
    f.mix(optStats.cseRemoved);
    f.mix(optStats.loadsCseRemoved);
    f.mix(optStats.loadsForwarded);
    f.mix(optStats.speculativeLoadsRemoved);
    f.mix(optStats.unsafeStoresMarked);
    f.mix(optStats.deadRemoved);
    return f.h;
}

} // namespace replay::sim
