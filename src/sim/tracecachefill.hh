/**
 * @file
 * The trace-cache configuration's fill unit (§5.3): continuously
 * builds traces of decoded micro-ops from the retired stream, ending
 * each trace after the third branch micro-operation or at the length
 * limit.  Unlike frames, traces are not atomic: they have multiple
 * exits, embedded conditional branches still consult the predictor,
 * and no optimization is applied.
 */

#ifndef REPLAY_SIM_TRACECACHEFILL_HH
#define REPLAY_SIM_TRACECACHEFILL_HH

#include "core/framecache.hh"
#include "trace/record.hh"
#include "uop/translator.hh"

namespace replay::sim {

/** Fill unit plus trace storage (reuses the frame-cache structure). */
class TraceCacheUnit
{
  public:
    TraceCacheUnit(unsigned capacity_uops, unsigned max_branches,
                   unsigned max_uops);

    /** Observe one instruction retiring from the conventional path. */
    void observe(const trace::TraceRecord &rec);

    /** Trace starting at @p pc, if cached. */
    core::FramePtr lookup(uint32_t pc) { return cache_.lookup(pc); }

    core::FrameCache &cache() { return cache_; }

  private:
    void finishTrace(uint32_t next_pc);

    unsigned maxBranches_;
    unsigned maxUops_;
    uop::Translator translator_;
    core::FrameCache cache_;

    // Accumulation state.
    std::vector<uop::Uop> uops_;
    std::vector<uint32_t> pcs_;
    uint32_t startPc_ = 0;
    unsigned branches_ = 0;
    uint64_t nextId_ = 1;
};

} // namespace replay::sim

#endif // REPLAY_SIM_TRACECACHEFILL_HH
