#include "sim/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/logging.hh"
#include "util/threadpool.hh"

namespace replay::sim {

uint64_t
SweepResult::digest() const
{
    uint64_t h = 14695981039346656037ULL;
    for (const auto &cell : cells) {
        const uint64_t v = cell.fingerprint();
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

unsigned
defaultSweepJobs()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once before the
    // sweep pool spawns; nothing calls setenv.
    if (const char *env = std::getenv("REPLAY_SIM_JOBS")) {
        const uint64_t v = parseCount(env, "REPLAY_SIM_JOBS");
        fatal_if(v > 1024, "REPLAY_SIM_JOBS: %llu workers is absurd",
                 (unsigned long long)v);
        return unsigned(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SweepResult
runSweep(const std::vector<SweepCell> &cells, const SweepOptions &opts)
{
    const uint64_t insts = opts.instsPerTrace ? opts.instsPerTrace
                                              : defaultInstsPerTrace();
    const unsigned jobs = opts.jobs ? opts.jobs : defaultSweepJobs();

    // Expand the grid to (cell, trace) tasks.  Each task simulates one
    // hot-spot trace under one config into its own pre-allocated slot;
    // completion order never matters because nothing is folded until
    // every slot is filled.
    struct Task
    {
        const SweepCell *cell;
        unsigned cellIdx;
        unsigned traceIdx;
    };
    std::vector<Task> tasks;
    for (unsigned c = 0; c < cells.size(); ++c) {
        const auto &cell = cells[c];
        panic_if(!cell.workload, "sweep cell %u has no workload", c);
        for (unsigned t = 0; t < cell.workload->numTraces; ++t)
            tasks.push_back({&cell, c, t});
    }

    // Corpus resolution: a hit replays the recorded container, a miss
    // re-synthesizes.  Either way the record stream is identical (the
    // manifest digest pins it), so the choice only affects speed —
    // except a *corrupt* hit, which throws instead of degrading.
    std::atomic<unsigned> corpus_hits{0}, corpus_misses{0};
    auto openTaskTrace =
        [&](const Task &task) -> std::unique_ptr<trace::TraceSource> {
        if (opts.corpus) {
            const trace::CorpusEntry *entry = opts.corpus->find(
                task.cell->workload->name, task.traceIdx, insts);
            if (entry) {
                trace::TraceError err;
                auto src = opts.corpus->open(*entry, insts, &err);
                if (!src)
                    throw std::runtime_error("corpus trace '" +
                                             entry->id +
                                             "': " + err.describe());
                corpus_hits.fetch_add(1, std::memory_order_relaxed);
                return src;
            }
            corpus_misses.fetch_add(1, std::memory_order_relaxed);
        }
        return task.cell->workload->openTrace(task.traceIdx, insts);
    };

    if (opts.warmup && !tasks.empty()) {
        // Untimed cold-start pass over the first task (see
        // SweepOptions::warmup); its stats are discarded — as are its
        // corpus hit/miss counts, which only describe the timed pass.
        const Task &task = tasks.front();
        auto src = openTaskTrace(task);
        (void)simulateTrace(task.cell->cfg, *src,
                            task.cell->workload->name);
        corpus_hits.store(0, std::memory_order_relaxed);
        corpus_misses.store(0, std::memory_order_relaxed);
    }

    const auto start = std::chrono::steady_clock::now();

    std::vector<RunStats> slots(tasks.size());
    parallelFor(jobs, tasks.size(), [&](size_t i) {
        const Task &task = tasks[i];
        // Per-task watchdog: each simulation polls its own deadline
        // token at the fetch-loop checkpoint.  A task failure of any
        // kind (deadline, trace error, logic bug) is re-raised with
        // the cell's identity attached; parallelFor captures the first
        // one, cancels the remaining tasks, and rethrows from the
        // join, so a sweep aborts with a diagnostic instead of
        // std::terminate.
        CancelSource watchdog;
        SimConfig cfg = task.cell->cfg;
        if (opts.tierWorkers && cfg.usesFrames() &&
            cfg.engine.optimize) {
            cfg.engine.tier.workers = opts.tierWorkers;
            cfg.engine.tier.deterministic = opts.tierDeterministic;
        }
        if (opts.taskDeadlineMillis) {
            watchdog.setDeadlineAfter(
                std::chrono::milliseconds(opts.taskDeadlineMillis));
            cfg.cancel = watchdog.token();
        }
        const auto context = [&]() -> std::string {
            return "sweep task [workload=" + task.cell->workload->name +
                   " config=" +
                   (task.cell->label.empty() ? cfg.name()
                                             : task.cell->label) +
                   " trace=" + std::to_string(task.traceIdx) + "]";
        };
        try {
            auto src = openTaskTrace(task);
            slots[i] = simulateTrace(cfg, *src,
                                     task.cell->workload->name);
        } catch (const CancelledError &e) {
            throw CancelledError(context() + ": " + e.what());
        } catch (const std::exception &e) {
            throw std::runtime_error(context() + ": " + e.what());
        }
    });

    SweepResult result;
    result.jobs = jobs;
    result.traceRuns = unsigned(tasks.size());
    result.corpusHits = corpus_hits.load(std::memory_order_relaxed);
    result.corpusMisses = corpus_misses.load(std::memory_order_relaxed);
    result.cells.resize(cells.size());

    // Canonical merge: slot order is (cell 0 trace 0, cell 0 trace 1,
    // ..., cell 1 trace 0, ...) — the same fold the serial runWorkload
    // loop performs, independent of which worker finished when.
    for (unsigned c = 0; c < cells.size(); ++c) {
        RunStats &merged = result.cells[c];
        merged.workload = cells[c].workload->name;
        merged.config = cells[c].label.empty() ? cells[c].cfg.name()
                                               : cells[c].label;
    }
    for (size_t i = 0; i < tasks.size(); ++i)
        result.cells[tasks[i].cellIdx].merge(slots[i]);

    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

std::vector<SweepCell>
gridCells(const std::vector<const trace::Workload *> &workloads,
          const std::vector<std::pair<std::string, SimConfig>> &configs)
{
    std::vector<SweepCell> cells;
    cells.reserve(workloads.size() * configs.size());
    for (const auto *w : workloads)
        for (const auto &[label, cfg] : configs)
            cells.push_back({w, label, cfg});
    return cells;
}

std::vector<const trace::Workload *>
standardWorkloadRows()
{
    std::vector<const trace::Workload *> rows;
    for (const auto &w : trace::standardWorkloads())
        rows.push_back(&w);
    return rows;
}

std::vector<std::pair<std::string, SimConfig>>
allMachineColumns()
{
    std::vector<std::pair<std::string, SimConfig>> cols;
    for (const Machine m :
         {Machine::IC, Machine::TC, Machine::RP, Machine::RPO}) {
        cols.emplace_back(machineName(m), SimConfig::make(m));
    }
    return cols;
}

} // namespace replay::sim
