/**
 * @file
 * The four evaluated machine configurations (§5.3):
 *
 *   IC  — conventional fetch through a 64kB ICache (reference)
 *   TC  — 16k-µop trace cache + 8kB ICache, fill unit builds traces
 *         with up to three branches, no optimization
 *   RP  — basic rePLay: 16k-µop frame cache + 8kB ICache, frames
 *         deposited unoptimized
 *   RPO — rePLay with the §3 optimizations
 */

#ifndef REPLAY_SIM_CONFIG_HH
#define REPLAY_SIM_CONFIG_HH

#include <string>

#include "core/sequencer.hh"
#include "fault/faultinjector.hh"
#include "timing/pipeline.hh"
#include "util/cancellation.hh"
#include "util/governor.hh"

namespace replay::sim {

enum class Machine : uint8_t
{
    IC,
    TC,
    RP,
    RPO,
};

const char *machineName(Machine machine);

/** Full description of one simulated machine. */
struct SimConfig
{
    Machine machine = Machine::RPO;
    timing::PipelineConfig pipe;
    core::EngineConfig engine;          ///< RP / RPO only

    // Trace-cache (TC) parameters.
    unsigned tcCapacityUops = 16384;
    unsigned tcMaxBranches = 3;
    unsigned tcMaxUops = 32;

    /** Instruction budget per trace (0 = run the source dry). */
    uint64_t maxInsts = 0;

    /**
     * Verify every COMMITS-dispatched frame against the trace span
     * before it commits; rejected frames roll back, pay the recovery
     * penalty, and are quarantined.  Off by default: the paper-shape
     * runs stay bit-identical to the seed.
     */
    bool verifyOnline = false;

    /** Fault-injection knobs (all rates 0 = injector disabled). */
    fault::FaultConfig fault;

    /**
     * Memory-budget knobs.  budgetBytes == 0 (default) means
     * ungoverned: no governor is built and behaviour is bit-identical
     * to the seed.  Nonzero gives this run its own ResourceGovernor
     * (per-session, never shared: accounting must be deterministic for
     * a fixed trace regardless of sweep parallelism).
     */
    GovernorConfig governor;

    /**
     * Cooperative cancellation/deadline token, checked between trace
     * records.  Default token is null (never fires).  The simulator
     * throws CancelledError at the next checkpoint after the token
     * trips; the run produces no stats.
     */
    CancelToken cancel;

    std::string name() const { return machineName(machine); }

    bool usesFrames() const
    {
        return machine == Machine::RP || machine == Machine::RPO;
    }
    bool usesTraceCache() const { return machine == Machine::TC; }

    /** The §5.3 configurations. */
    static SimConfig make(Machine machine);
};

} // namespace replay::sim

#endif // REPLAY_SIM_CONFIG_HH
