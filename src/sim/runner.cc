#include "sim/runner.hh"

#include <cstdlib>

namespace replay::sim {

uint64_t
defaultInstsPerTrace()
{
    if (const char *env = std::getenv("REPLAY_SIM_INSTS")) {
        const uint64_t v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return 400000;
}

RunStats
runWorkload(const trace::Workload &workload, SimConfig cfg,
            uint64_t insts_per_trace)
{
    if (insts_per_trace == 0)
        insts_per_trace = defaultInstsPerTrace();
    RunStats merged;
    merged.workload = workload.name;
    merged.config = cfg.name();
    for (unsigned t = 0; t < workload.numTraces; ++t) {
        auto src = workload.openTrace(t, insts_per_trace);
        RunStats stats = simulateTrace(cfg, *src, workload.name);
        merged.merge(stats);
    }
    return merged;
}

std::vector<RunStats>
runAllMachines(const trace::Workload &workload,
               uint64_t insts_per_trace)
{
    std::vector<RunStats> out;
    for (const Machine machine :
         {Machine::IC, Machine::TC, Machine::RP, Machine::RPO}) {
        out.push_back(runWorkload(workload, SimConfig::make(machine),
                                  insts_per_trace));
    }
    return out;
}

} // namespace replay::sim
