#include "sim/runner.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "sim/sweep.hh"
#include "util/logging.hh"

namespace replay::sim {

uint64_t
parseCount(const char *text, const char *what)
{
    fatal_if(!text || !*text, "%s: empty count", what);
    // strtoull silently accepts signs, whitespace, and wraps negative
    // values; demand plain digits so "4e5", " 4", "-4" all fail loudly
    // instead of truncating to garbage.
    fatal_if(!std::isdigit(uint8_t(text[0])),
             "%s: invalid count '%s' (must be a positive decimal "
             "integer)", what, text);
    errno = 0;
    char *end = nullptr;
    const uint64_t v = std::strtoull(text, &end, 10);
    fatal_if(*end != '\0',
             "%s: invalid count '%s' (trailing characters '%s'; "
             "exponents like 4e5 are not supported)", what, text, end);
    fatal_if(errno == ERANGE, "%s: count '%s' overflows 64 bits",
             what, text);
    fatal_if(v == 0, "%s: count must be positive", what);
    return v;
}

uint64_t
defaultInstsPerTrace()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup,
    // before any worker threads exist; nothing calls setenv.
    if (const char *env = std::getenv("REPLAY_SIM_INSTS"))
        return parseCount(env, "REPLAY_SIM_INSTS");
    return 400000;
}

RunStats
runWorkload(const trace::Workload &workload, SimConfig cfg,
            uint64_t insts_per_trace)
{
    if (insts_per_trace == 0)
        insts_per_trace = defaultInstsPerTrace();
    RunStats merged;
    merged.workload = workload.name;
    merged.config = cfg.name();
    for (unsigned t = 0; t < workload.numTraces; ++t) {
        auto src = workload.openTrace(t, insts_per_trace);
        RunStats stats = simulateTrace(cfg, *src, workload.name);
        merged.merge(stats);
    }
    return merged;
}

std::vector<RunStats>
runAllMachines(const trace::Workload &workload,
               uint64_t insts_per_trace)
{
    std::vector<SweepCell> cells;
    for (const Machine machine :
         {Machine::IC, Machine::TC, Machine::RP, Machine::RPO}) {
        cells.push_back({&workload, machineName(machine),
                         SimConfig::make(machine)});
    }
    SweepOptions opts;
    opts.instsPerTrace = insts_per_trace;
    return runSweep(cells, opts).cells;
}

} // namespace replay::sim
