/**
 * @file
 * Experiment orchestration: run workloads (all their hot-spot traces,
 * merged) under machine configurations.  All benchmark binaries build
 * on these helpers.
 */

#ifndef REPLAY_SIM_RUNNER_HH
#define REPLAY_SIM_RUNNER_HH

#include <vector>

#include "sim/simulator.hh"
#include "trace/workload.hh"

namespace replay::sim {

/**
 * Scaled-down default trace length.  The paper simulates 50M-300M x86
 * instructions per application on a farm; the benches default to a
 * laptop-scale sample and honour the REPLAY_SIM_INSTS environment
 * variable for longer runs.
 */
uint64_t defaultInstsPerTrace();

/**
 * Parse a strictly-positive decimal count (an instruction budget, a
 * job count).  Rejects signs, whitespace, trailing characters, and
 * overflow with a fatal() naming @p what — "4e5" is an error, not 4.
 */
uint64_t parseCount(const char *text, const char *what);

/** Run every hot-spot trace of @p workload and merge the results. */
RunStats runWorkload(const trace::Workload &workload, SimConfig cfg,
                     uint64_t insts_per_trace = 0);

/** Run one workload under the four §5.3 machines (IC, TC, RP, RPO). */
std::vector<RunStats> runAllMachines(const trace::Workload &workload,
                                     uint64_t insts_per_trace = 0);

} // namespace replay::sim

#endif // REPLAY_SIM_RUNNER_HH
