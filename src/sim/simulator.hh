/**
 * @file
 * The trace-driven simulator (Figure 5): consumes a trace source and
 * models one of the four machine configurations cycle-by-cycle,
 * producing the RunStats all tables and figures are computed from.
 *
 * The fetch engine is the cycle master.  On the conventional path,
 * instructions are fetched through the ICache and decoded (4 per
 * cycle); with rePLay enabled, the sequencer first probes the frame
 * cache, resolves the frame's assertions and unsafe stores against the
 * upcoming trace, and either fetches the whole frame (8 µops/cycle,
 * atomic commit) or charges the pessimistic recovery latency and
 * re-executes the original instructions.  The trace-cache machine
 * fetches the matching prefix of a cached trace.
 */

#ifndef REPLAY_SIM_SIMULATOR_HH
#define REPLAY_SIM_SIMULATOR_HH

#include <memory>

#include "sim/config.hh"
#include "sim/results.hh"
#include "sim/tracecachefill.hh"
#include "timing/fetch.hh"
#include "verify/online.hh"

namespace replay::sim {

/** Runs one trace under one configuration. */
class Simulator
{
  public:
    explicit Simulator(const SimConfig &cfg);
    ~Simulator();

    /** Consume @p src (up to cfg.maxInsts) and return the statistics. */
    RunStats run(trace::TraceSource &src);

    /** The rePLay engine (RP/RPO; null otherwise) — for inspection. */
    core::RePlayEngine *engine() { return engine_.get(); }

    /** The online verifier (cfg.verifyOnline; null otherwise). */
    verify::OnlineVerifier *online() { return online_.get(); }

    /** The resource governor (cfg.governor.budgetBytes > 0 only). */
    ResourceGovernor *governor() { return governor_.get(); }

  private:
    struct Rat;

    void simulateIcacheInst(const trace::TraceRecord &rec,
                            trace::TraceSource &src);
    void simulateFrame(const core::FramePtr &frame,
                       trace::TraceSource &src);
    void simulateTracePrefix(const core::FramePtr &trace_frame,
                             trace::TraceSource &src);

    SimConfig cfg_;
    RunStats stats_;

    timing::FrontEnd fe_;
    timing::MemoryHierarchy mem_;
    timing::ExecModel exec_;
    timing::BranchPredictor bpred_;
    uop::Translator translator_;
    std::unique_ptr<fault::FaultInjector> injector_;    ///< before engine_
    std::unique_ptr<ResourceGovernor> governor_;        ///< before engine_
    std::unique_ptr<core::RePlayEngine> engine_;
    std::unique_ptr<TraceCacheUnit> tcache_;
    std::unique_ptr<verify::OnlineVerifier> online_;

    /** Completion time of each architectural register + flags. */
    std::unique_ptr<Rat> rat_;

    /** Force conventional fetch until this many records consumed. */
    uint64_t icacheForcedUntil_ = 0;

    bool lastWasFrame_ = false;
};

/** Convenience: run one workload trace under a configuration. */
RunStats simulateTrace(const SimConfig &cfg, trace::TraceSource &src,
                       const std::string &workload_name);

} // namespace replay::sim

#endif // REPLAY_SIM_SIMULATOR_HH
