/**
 * @file
 * Deterministic parallel sweep driver.
 *
 * Every paper figure re-simulates a grid of (workload, machine-config)
 * cells, each of which merges one or more independent hot-spot traces.
 * runSweep() fans the (cell, trace) pairs across a thread pool and
 * merges per-trace RunStats into indexed result slots in canonical
 * trace order — never completion order — so the output is bit-identical
 * to the serial loop and across any --jobs value:
 *
 *   - each (cell, trace) pair runs its own Simulator; every stochastic
 *     component draws from an Rng seeded by that cell's config and that
 *     trace's synthesis seed, so no random state is shared,
 *   - per-trace results land in slots indexed by (cell, trace),
 *   - cell merging folds slots t = 0, 1, 2, ... exactly as
 *     runWorkload()'s serial loop does.
 *
 * Wall-clock and throughput (cells/sec, x86 insts/sec) are measured so
 * parallel speedup is reported, not assumed.
 */

#ifndef REPLAY_SIM_SWEEP_HH
#define REPLAY_SIM_SWEEP_HH

#include <string>
#include <vector>

#include "sim/runner.hh"
#include "trace/corpus.hh"

namespace replay::sim {

/** One (workload, config) grid cell. */
struct SweepCell
{
    const trace::Workload *workload = nullptr;
    std::string label;          ///< column label (machine or ablation)
    SimConfig cfg;
};

struct SweepOptions
{
    /** Worker threads; 0 = defaultSweepJobs(). */
    unsigned jobs = 0;

    /** x86 budget per hot-spot trace; 0 = defaultInstsPerTrace(). */
    uint64_t instsPerTrace = 0;

    /**
     * Run the first (cell, trace) task once, untimed and discarded,
     * before starting the clock.  First-touch costs — lazily built
     * workload programs, decode tables, allocator pools, cold i-cache
     * — land in the warm-up instead of inflating the first measured
     * task, so reported insts/s reflects steady state.  Results are
     * unaffected: the timed sweep re-simulates every task from
     * scratch.
     */
    bool warmup = true;

    /**
     * Tiered re-optimization override for every frame-machine cell:
     * tierWorkers > 0 sets SimConfig::engine.tier.workers on RP/RPO
     * cells (cheap admission + background full re-opt), 0 (default)
     * leaves the cells untiered and bit-identical to the seed.
     */
    unsigned tierWorkers = 0;

    /** With tierWorkers > 0: run re-opt jobs inline (deterministic). */
    bool tierDeterministic = false;

    /**
     * Soft per-task deadline in milliseconds; 0 = none.  Each (cell,
     * trace) simulation gets its own CancelSource armed with this
     * budget; a task that overruns it throws CancelledError at the
     * simulator's next checkpoint.  The exception aborts the sweep
     * cleanly (see runSweep), it does not silently drop the cell.
     */
    unsigned taskDeadlineMillis = 0;

    /**
     * Optional trace corpus: when set, each (cell, trace) task first
     * looks its (workload, hot-spot) pair up in the manifest and, on a
     * hit long enough to cover the replay budget, replays the recorded
     * container instead of re-synthesizing.  A miss falls back to live
     * synthesis — the streams are digest-pinned identical, so results
     * never depend on which path served a task.  A *corrupt* hit (bad
     * container, stale manifest) aborts the sweep rather than silently
     * degrading: the corpus exists to make inputs reproducible, and a
     * sweep that quietly re-synthesized would defeat that.
     */
    const trace::TraceCorpus *corpus = nullptr;
};

struct SweepResult
{
    /** Merged per-cell stats, in the exact order the cells were given. */
    std::vector<RunStats> cells;

    double wallSeconds = 0;
    unsigned jobs = 1;          ///< worker threads actually used
    unsigned traceRuns = 0;     ///< (cell, trace) simulations executed
    unsigned corpusHits = 0;    ///< tasks replayed from the corpus
    unsigned corpusMisses = 0;  ///< tasks that fell back to synthesis

    uint64_t
    totalInsts() const
    {
        uint64_t sum = 0;
        for (const auto &c : cells)
            sum += c.x86Retired;
        return sum;
    }

    double
    cellsPerSec() const
    {
        return wallSeconds > 0 ? double(cells.size()) / wallSeconds : 0;
    }

    double
    instsPerSec() const
    {
        return wallSeconds > 0 ? double(totalInsts()) / wallSeconds : 0;
    }

    /**
     * FNV-1a64 of every cell fingerprint in canonical cell order.
     * Bit-identical across --jobs values by construction; the
     * replaybench CLI prints it so two runs can be diffed by one line.
     */
    uint64_t digest() const;
};

/**
 * Worker count for sweeps: the REPLAY_SIM_JOBS environment variable
 * (strictly parsed) if set, otherwise the hardware concurrency.
 */
unsigned defaultSweepJobs();

/** Run all @p cells (each expanded per hot-spot trace) across a pool. */
SweepResult runSweep(const std::vector<SweepCell> &cells,
                     const SweepOptions &opts = {});

/**
 * Row-major (workload x config) grid builder: the shape every paper
 * figure uses.  at(result, row, col) indexes the matching RunStats.
 */
std::vector<SweepCell>
gridCells(const std::vector<const trace::Workload *> &workloads,
          const std::vector<std::pair<std::string, SimConfig>> &configs);

/** All 14 standard workloads, as grid rows. */
std::vector<const trace::Workload *> standardWorkloadRows();

/** The four §5.3 machines, as grid columns. */
std::vector<std::pair<std::string, SimConfig>> allMachineColumns();

} // namespace replay::sim

#endif // REPLAY_SIM_SWEEP_HH
