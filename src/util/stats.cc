#include "util/stats.hh"

#include <sstream>

namespace replay {

uint64_t
StatGroup::get(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[name, counter] : other.counters_)
        counters_[name] += counter.value();
}

std::string
StatGroup::dump() const
{
    std::ostringstream out;
    for (const auto &[name, counter] : counters_)
        out << name_ << '.' << name << ' ' << counter.value() << '\n';
    return out.str();
}

} // namespace replay
