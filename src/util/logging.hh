/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated; this is a bug in the
 *            library itself.  Aborts (so a debugger or core dump can
 *            capture the state).
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, malformed trace, ...).  Exits cleanly
 *            with a non-zero status.
 * warn()   — something works but not as well as it should.
 * inform() — plain status output.
 */

#ifndef REPLAY_UTIL_LOGGING_HH
#define REPLAY_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace replay {

/**
 * Test-only death hook: invoked with the fully formatted message after
 * it has been printed and stderr flushed, *instead of* terminating.
 * A test installs a handler that throws, making panic/fatal paths
 * assertable without killing the test binary.  If the handler returns,
 * termination proceeds as usual.  Never install one in production code.
 */
using DeathHandler = void (*)(const char *kind, const char *file,
                              int line, const char *message);

/** Install @p handler (nullptr restores default); returns the old one. */
DeathHandler setDeathHandler(DeathHandler handler);

/** Print a formatted message tagged "panic:" and abort. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...);

/** Print a formatted message tagged "fatal:" and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...);

/** Print a formatted message tagged "warn:". */
void warnImpl(const char *fmt, ...);

/** Print a formatted status message. */
void informImpl(const char *fmt, ...);

#define panic(...) \
    ::replay::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) \
    ::replay::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::replay::warnImpl(__VA_ARGS__)
#define inform(...) ::replay::informImpl(__VA_ARGS__)

/**
 * Check an invariant that must hold regardless of user input.
 * Active in all build types (unlike assert).
 */
#define panic_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            ::replay::panicImpl(__FILE__, __LINE__, __VA_ARGS__);      \
    } while (0)

#define fatal_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            ::replay::fatalImpl(__FILE__, __LINE__, __VA_ARGS__);      \
    } while (0)

} // namespace replay

#endif // REPLAY_UTIL_LOGGING_HH
