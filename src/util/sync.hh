/**
 * @file
 * Capability-annotated synchronization layer + ranked lock hierarchy.
 *
 * Every mutex, condition variable, and lock guard in the codebase goes
 * through the wrappers in this file.  They buy two things the bare std
 * primitives cannot:
 *
 *  1. **Static discipline** — the wrappers carry Clang thread-safety
 *     attributes (`-Wthread-safety`), so fields declared
 *     `GUARDED_BY(mutex)` and functions declared `REQUIRES(mutex)` are
 *     checked at *compile time*: every interleaving, not just the ones
 *     a test happens to schedule.  On non-Clang compilers the
 *     attributes expand to nothing and the wrappers compile down to
 *     the plain std primitives.
 *
 *  2. **Dynamic ordering** — each Mutex/Role carries a hierarchy
 *     *rank* (see `sync::rank`).  In checked builds (armed by the
 *     `REPLAY_SYNC_HIERARCHY` compile definition; CMake arms it for
 *     every non-Release build type) a thread-local stack records every
 *     held capability, and acquiring one whose rank is not strictly
 *     greater than everything already held PANICs immediately with
 *     both acquisition sites — turning a potential deadlock that TSA
 *     cannot express (lock *ordering* spans translation units) into a
 *     deterministic failure at first occurrence.  In Release builds
 *     the checker compiles to nothing: `lock()` is exactly
 *     `std::mutex::lock()`.
 *
 * The registered hierarchy (rank increases along the arrow; a thread
 * may only acquire left-to-right):
 *
 *   engine(10) -> framecache(20) -> bgqueue(30) -> governor(40)
 *             -> threadpool(50) -> trace_registry(60)
 *             -> [unranked leaf(90)] -> report(100)
 *
 * `report` (the logging mutex) is deliberately the maximum so panic /
 * warn can always print, no matter what the failing thread holds.
 * Unranked mutexes default to LEAF: they may be taken while holding
 * any ranked lock, but never nest with each other.
 *
 * A `Role` is a *zero-cost capability without a lock*: it asserts
 * exclusive sequential ownership (e.g. "the sequencer thread") rather
 * than mutual exclusion.  Statically it behaves like a mutex for
 * GUARDED_BY/REQUIRES purposes; dynamically (checked builds only) it
 * panics if two threads ever hold it concurrently, and it
 * participates in the rank hierarchy like any mutex.  Release builds
 * compile acquire/release to empty inline functions.
 *
 * Escape hatches: `NO_THREAD_SAFETY_ANALYSIS` is defined below for
 * completeness but must not be used outside this header's own
 * internals (tier1.sh greps for violations).
 */

#ifndef REPLAY_UTIL_SYNC_HH
#define REPLAY_UTIL_SYNC_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "util/logging.hh"

// ---------------------------------------------------------------------
// Clang thread-safety-analysis attribute macros (no-ops elsewhere).
// Names and spellings follow the canonical mutex.h from the Clang TSA
// documentation, so the annotations read like every other TSA codebase.
// ---------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define REPLAY_TSA(x) __attribute__((x))
#endif
#endif
#ifndef REPLAY_TSA
#define REPLAY_TSA(x)
#endif

#define CAPABILITY(x) REPLAY_TSA(capability(x))
#define SCOPED_CAPABILITY REPLAY_TSA(scoped_lockable)
#define GUARDED_BY(x) REPLAY_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) REPLAY_TSA(pt_guarded_by(x))
#define ACQUIRE(...) REPLAY_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
    REPLAY_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) REPLAY_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
    REPLAY_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
    REPLAY_TSA(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) REPLAY_TSA(try_acquire_capability(__VA_ARGS__))
#define REQUIRES(...) REPLAY_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
    REPLAY_TSA(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) REPLAY_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) REPLAY_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) REPLAY_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS REPLAY_TSA(no_thread_safety_analysis)

// ---------------------------------------------------------------------
// Hierarchy checker arming.  REPLAY_SYNC_HIERARCHY is a *build-wide*
// CMake definition (never defined per-TU: the wrapper methods are
// inline, and mixing checked and unchecked instantiations in one
// binary would be an ODR violation).
// ---------------------------------------------------------------------

#if defined(REPLAY_SYNC_HIERARCHY)
#define REPLAY_SYNC_CHECKED 1
#else
#define REPLAY_SYNC_CHECKED 0
#endif

namespace replay::sync {

/** Is the dynamic lock-hierarchy checker compiled in? */
constexpr bool
hierarchyChecked()
{
    return REPLAY_SYNC_CHECKED != 0;
}

/**
 * Lock-hierarchy ranks.  Acquiring a capability PANICs (checked
 * builds) unless its rank is strictly greater than the rank of every
 * capability the thread already holds — same-rank nesting is an error
 * too, which also catches self-deadlock by recursive acquisition.
 */
namespace rank {

inline constexpr uint16_t ENGINE = 10;      ///< RePlayEngine seq role
inline constexpr uint16_t FRAMECACHE = 20;  ///< FrameCache role
inline constexpr uint16_t BGQUEUE = 30;     ///< BackgroundQueue mutex
inline constexpr uint16_t GOVERNOR = 40;    ///< ResourceGovernor role
inline constexpr uint16_t POOL = 50;        ///< ThreadPool mutex
inline constexpr uint16_t TRACE_REGISTRY = 60; ///< trace quarantine set
inline constexpr uint16_t LEAF = 90;        ///< default: never nests
inline constexpr uint16_t REPORT = 100;     ///< logging; always last

} // namespace rank

namespace detail {

#if REPLAY_SYNC_CHECKED

/** One held capability, with the site that acquired it. */
struct HeldEntry
{
    const void *cap;
    const char *name;
    uint16_t level;
    const char *file;
    unsigned line;
};

struct LockStack
{
    static constexpr unsigned MAX_DEPTH = 32;
    HeldEntry held[MAX_DEPTH];
    unsigned depth = 0;
};

inline LockStack &
lockStack()
{
    static thread_local LockStack stack;
    return stack;
}

/**
 * Record an acquisition; PANIC on a rank-order violation, reporting
 * the acquisition sites of both the new capability and the
 * highest-ranked one already held.  Called *before* the underlying
 * primitive blocks, so an ordering bug is reported deterministically
 * instead of deadlocking (sometimes).
 */
inline void
noteAcquire(const void *cap, const char *name, uint16_t level,
            const char *file, unsigned line)
{
    LockStack &stack = lockStack();
    if (stack.depth > 0) {
        const HeldEntry *worst = &stack.held[0];
        for (unsigned i = 1; i < stack.depth; ++i) {
            if (stack.held[i].level >= worst->level)
                worst = &stack.held[i];
        }
        if (level <= worst->level) {
            panic("lock-hierarchy violation: acquiring '%s' (rank %u) "
                  "at %s:%u while holding '%s' (rank %u) acquired at "
                  "%s:%u",
                  name, unsigned(level), file, line, worst->name,
                  unsigned(worst->level), worst->file, worst->line);
        }
    }
    panic_if(stack.depth >= LockStack::MAX_DEPTH,
             "lock-hierarchy stack overflow acquiring '%s' at %s:%u",
             name, file, line);
    stack.held[stack.depth++] = {cap, name, level, file, line};
}

/** Record a release (any order within the held set is legal). */
inline void
noteRelease(const void *cap, const char *name)
{
    LockStack &stack = lockStack();
    for (unsigned i = stack.depth; i > 0; --i) {
        if (stack.held[i - 1].cap == cap) {
            for (unsigned j = i - 1; j + 1 < stack.depth; ++j)
                stack.held[j] = stack.held[j + 1];
            --stack.depth;
            return;
        }
    }
    panic("releasing capability '%s' that this thread does not hold",
          name);
}

#endif // REPLAY_SYNC_CHECKED

} // namespace detail

/** Capabilities held by the calling thread (0 outside checked builds). */
inline unsigned
heldCapabilities()
{
#if REPLAY_SYNC_CHECKED
    return detail::lockStack().depth;
#else
    return 0;
#endif
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/**
 * Exclusive mutex with a TSA capability and a hierarchy rank.
 * Interface follows std::mutex (lock/unlock/try_lock), with the
 * acquisition site captured by default arguments so hierarchy
 * violations report real file:line pairs.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    explicit Mutex(const char *name = "mutex",
                   uint16_t level = rank::LEAF)
        : name_(name), level_(level)
    {
    }

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock(const char *file = __builtin_FILE(),
         unsigned line = __builtin_LINE()) ACQUIRE()
    {
#if REPLAY_SYNC_CHECKED
        detail::noteAcquire(this, name_, level_, file, line);
#else
        (void)file;
        (void)line;
#endif
        mu_.lock();
    }

    void
    unlock() RELEASE()
    {
#if REPLAY_SYNC_CHECKED
        detail::noteRelease(this, name_);
#endif
        mu_.unlock();
    }

    bool
    try_lock(const char *file = __builtin_FILE(),
             unsigned line = __builtin_LINE()) TRY_ACQUIRE(true)
    {
        if (!mu_.try_lock())
            return false;
#if REPLAY_SYNC_CHECKED
        // A successful try_lock is an acquisition like any other; the
        // hierarchy holds for it too (try_lock is not an ordering
        // escape hatch).
        detail::noteAcquire(this, name_, level_, file, line);
#else
        (void)file;
        (void)line;
#endif
        return true;
    }

    const char *name() const { return name_; }
    uint16_t level() const { return level_; }

  private:
    friend class CondVar;

    std::mutex mu_;
    const char *name_;
    uint16_t level_;
};

// ---------------------------------------------------------------------
// SharedMutex
// ---------------------------------------------------------------------

/**
 * Reader/writer mutex.  Shared acquisitions obey the same hierarchy
 * rank as exclusive ones (and recursive lock_shared on one thread is
 * therefore an error — it can deadlock against a queued writer).
 */
class CAPABILITY("shared_mutex") SharedMutex
{
  public:
    explicit SharedMutex(const char *name = "shared_mutex",
                         uint16_t level = rank::LEAF)
        : name_(name), level_(level)
    {
    }

    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void
    lock(const char *file = __builtin_FILE(),
         unsigned line = __builtin_LINE()) ACQUIRE()
    {
#if REPLAY_SYNC_CHECKED
        detail::noteAcquire(this, name_, level_, file, line);
#else
        (void)file;
        (void)line;
#endif
        mu_.lock();
    }

    void
    unlock() RELEASE()
    {
#if REPLAY_SYNC_CHECKED
        detail::noteRelease(this, name_);
#endif
        mu_.unlock();
    }

    void
    lock_shared(const char *file = __builtin_FILE(),
                unsigned line = __builtin_LINE()) ACQUIRE_SHARED()
    {
#if REPLAY_SYNC_CHECKED
        detail::noteAcquire(this, name_, level_, file, line);
#else
        (void)file;
        (void)line;
#endif
        mu_.lock_shared();
    }

    void
    unlock_shared() RELEASE_SHARED()
    {
#if REPLAY_SYNC_CHECKED
        detail::noteRelease(this, name_);
#endif
        mu_.unlock_shared();
    }

    const char *name() const { return name_; }
    uint16_t level() const { return level_; }

  private:
    std::shared_mutex mu_;
    const char *name_;
    uint16_t level_;
};

// ---------------------------------------------------------------------
// Guards
// ---------------------------------------------------------------------

/** RAII exclusive lock (std::lock_guard shape). */
class SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mu, const char *file = __builtin_FILE(),
                       unsigned line = __builtin_LINE()) ACQUIRE(mu)
        : mu_(mu)
    {
        mu_.lock(file, line);
    }

    ~LockGuard() RELEASE_GENERIC() { mu_.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mu_;
};

/**
 * RAII exclusive lock that can be dropped and re-taken mid-scope
 * (std::unique_lock shape) — the form condition-variable waits and
 * work-loop "unlock around the job" patterns need.
 */
class SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mu, const char *file = __builtin_FILE(),
                        unsigned line = __builtin_LINE()) ACQUIRE(mu)
        : mu_(&mu)
    {
        mu_->lock(file, line);
        owned_ = true;
    }

    ~UniqueLock() RELEASE_GENERIC()
    {
        if (owned_)
            mu_->unlock();
    }

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    void
    lock(const char *file = __builtin_FILE(),
         unsigned line = __builtin_LINE()) ACQUIRE()
    {
        panic_if(owned_, "UniqueLock::lock while already locked");
        mu_->lock(file, line);
        owned_ = true;
    }

    void
    unlock() RELEASE()
    {
        panic_if(!owned_, "UniqueLock::unlock while not locked");
        mu_->unlock();
        owned_ = false;
    }

    bool ownsLock() const { return owned_; }
    Mutex *mutex() const { return mu_; }

  private:
    friend class CondVar;

    Mutex *mu_;
    bool owned_ = false;
};

/** RAII shared (reader) lock on a SharedMutex. */
class SCOPED_CAPABILITY ReadLockGuard
{
  public:
    explicit ReadLockGuard(SharedMutex &mu,
                           const char *file = __builtin_FILE(),
                           unsigned line = __builtin_LINE())
        ACQUIRE_SHARED(mu)
        : mu_(mu)
    {
        mu_.lock_shared(file, line);
    }

    ~ReadLockGuard() RELEASE_GENERIC() { mu_.unlock_shared(); }

    ReadLockGuard(const ReadLockGuard &) = delete;
    ReadLockGuard &operator=(const ReadLockGuard &) = delete;

  private:
    SharedMutex &mu_;
};

/** RAII exclusive (writer) lock on a SharedMutex. */
class SCOPED_CAPABILITY WriteLockGuard
{
  public:
    explicit WriteLockGuard(SharedMutex &mu,
                            const char *file = __builtin_FILE(),
                            unsigned line = __builtin_LINE())
        ACQUIRE(mu)
        : mu_(mu)
    {
        mu_.lock(file, line);
    }

    ~WriteLockGuard() RELEASE_GENERIC() { mu_.unlock(); }

    WriteLockGuard(const WriteLockGuard &) = delete;
    WriteLockGuard &operator=(const WriteLockGuard &) = delete;

  private:
    SharedMutex &mu_;
};

// ---------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------

/**
 * Condition variable over sync::Mutex (via UniqueLock).  The wait
 * briefly releases the underlying std::mutex; the hierarchy stack
 * deliberately keeps the entry across the wait — the lock is re-held
 * before wait() returns, so the thread's ordering obligations are
 * unchanged at every point client code runs.
 */
class CondVar
{
  public:
    CondVar() = default;

    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p lock, sleep, and re-acquire before return. */
    void
    wait(UniqueLock &lock)
    {
        panic_if(!lock.ownsLock(),
                 "CondVar::wait on an unlocked UniqueLock");
        std::unique_lock<std::mutex> native(lock.mu_->mu_,
                                            std::adopt_lock);
        cv_.wait(native);
        native.release();
    }

    /** Predicate loop: returns only once pred() holds under the lock. */
    template <typename Pred>
    void
    wait(UniqueLock &lock, Pred pred)
    {
        while (!pred())
            wait(lock);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

// ---------------------------------------------------------------------
// Role — a capability asserting exclusive *sequential* ownership
// ---------------------------------------------------------------------

/**
 * A capability without a lock.  Single-owner structures (the rePLay
 * engine, the frame cache, the governor — one session, one thread at
 * a time) do not want a mutex on their per-instruction hot paths, but
 * they still need their ownership discipline *stated and checked*:
 *
 *  - statically, a Role is a TSA capability: fields may be
 *    GUARDED_BY(role) and internals REQUIRES(role), so under Clang a
 *    code path that touches the guarded state without the role held
 *    is a compile error;
 *  - dynamically (checked builds), acquire() panics if another thread
 *    currently holds the role — catching real cross-thread misuse the
 *    moment it overlaps — and participates in the rank hierarchy like
 *    a mutex, so "engine -> framecache -> bgqueue -> governor" is
 *    enforced end to end;
 *  - in Release builds acquire()/release() are empty inline functions:
 *    the whole mechanism costs nothing.
 *
 * A Role is NOT a lock: concurrent acquisition is a bug (panic), not
 * contention.  Anything genuinely shared between threads takes a
 * Mutex instead.
 */
class CAPABILITY("role") Role
{
  public:
    explicit Role(const char *name, uint16_t level)
        : name_(name), level_(level)
    {
    }

    Role(const Role &) = delete;
    Role &operator=(const Role &) = delete;

    void
    acquire(const char *file = __builtin_FILE(),
            unsigned line = __builtin_LINE()) ACQUIRE()
    {
#if REPLAY_SYNC_CHECKED
        // Rank/recursion check first: recursive acquisition trips the
        // same-rank rule with a clear message before the exclusivity
        // exchange would mistake it for a cross-thread overlap.
        detail::noteAcquire(this, name_, level_, file, line);
        if (held_.exchange(true, std::memory_order_acquire)) {
            detail::noteRelease(this, name_);
            panic("role '%s' acquired at %s:%u while another thread "
                  "holds it (acquired at %s:%u): single-owner "
                  "discipline violated",
                  name_, file, line,
                  lastFile_.load(std::memory_order_relaxed),
                  lastLine_.load(std::memory_order_relaxed));
        }
        lastFile_.store(file, std::memory_order_relaxed);
        lastLine_.store(line, std::memory_order_relaxed);
#else
        (void)file;
        (void)line;
#endif
    }

    void
    release() RELEASE()
    {
#if REPLAY_SYNC_CHECKED
        detail::noteRelease(this, name_);
        held_.store(false, std::memory_order_release);
#endif
    }

    const char *name() const { return name_; }
    uint16_t level() const { return level_; }

  private:
    const char *name_;
    uint16_t level_;
#if REPLAY_SYNC_CHECKED
    std::atomic<bool> held_{false};
    std::atomic<const char *> lastFile_{""};
    std::atomic<unsigned> lastLine_{0};
#endif
};

/** RAII Role holder. */
class SCOPED_CAPABILITY RoleGuard
{
  public:
    explicit RoleGuard(Role &role, const char *file = __builtin_FILE(),
                       unsigned line = __builtin_LINE()) ACQUIRE(role)
        : role_(role)
    {
        role_.acquire(file, line);
    }

    ~RoleGuard() RELEASE_GENERIC() { role_.release(); }

    RoleGuard(const RoleGuard &) = delete;
    RoleGuard &operator=(const RoleGuard &) = delete;

  private:
    Role &role_;
};

} // namespace replay::sync

#endif // REPLAY_UTIL_SYNC_HH
