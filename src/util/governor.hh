/**
 * @file
 * The resource governor: session-scoped memory budgeting with a
 * pressure ladder.
 *
 * The ROADMAP's long-running server cannot let one session's frame
 * cache, arena pools, and index tables grow until the process dies;
 * it must *degrade* — shed cache, optimize less, stop constructing —
 * long before a real allocation fails.  The governor is the accounting
 * point for that: registered consumers (frame cache, frame pool,
 * quarantine table, ...) report their live footprint at well-defined
 * mutation points, and the governor folds the total against a
 * configurable budget into one of four pressure levels:
 *
 *   OK       — below softFrac: full service.
 *   SOFT     — the frame cache sheds LRU frames and rejects new
 *              admissions until pressure relieves.
 *   HARD     — additionally, new frames are optimized with the cheap
 *              pass subset (NOP removal + DCE) instead of the full
 *              pipeline.
 *   CRITICAL — frame construction is suspended entirely; the engine
 *              degrades to conventional fetch until pressure drops.
 *
 * Every upward transition is counted, so a run's RunStats record how
 * often (and how hard) it was squeezed.  The governor is intentionally
 * NOT thread-safe: one instance belongs to one session/simulator, the
 * same ownership discipline as the engine it governs — which is also
 * what keeps governed runs deterministic (pressure depends only on
 * the session's own allocation history, never on neighbours).  That
 * discipline is stated as a sync::Role capability: every public entry
 * point takes the role, so in checked builds two threads calling in
 * concurrently panic instead of corrupting the ladder, and under
 * Clang the internal state is GUARDED_BY the role.  Re-entry is a
 * violation too: an alloc-failure hook must never call back into the
 * governor (the rank checker reports it as same-rank acquisition).
 *
 * A disabled governor (budgetBytes == 0, the default) always reports
 * OK and never fails an allocation, so paper-shape runs stay
 * bit-identical to the seed.
 *
 * The governor is also the allocation-failure injection point for the
 * chaos harness: a configurable hook decides, deterministically from
 * the campaign's seeded Rng, that the next tracked allocation "fails",
 * letting soak runs prove the degradation paths actually run.
 */

#ifndef REPLAY_UTIL_GOVERNOR_HH
#define REPLAY_UTIL_GOVERNOR_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/stats.hh"
#include "util/sync.hh"

namespace replay {

/** Degradation ladder, ordered: comparisons express severity. */
enum class Pressure : uint8_t
{
    OK = 0,
    SOFT,
    HARD,
    CRITICAL,
};

const char *pressureName(Pressure level);

/** Budget and ladder thresholds (fractions of the budget). */
struct GovernorConfig
{
    /** Live-byte budget; 0 disables the governor (always OK). */
    size_t budgetBytes = 0;

    double softFrac = 0.70;
    double hardFrac = 0.85;
    double criticalFrac = 0.95;
};

/** Tracks live bytes of registered consumers against a budget. */
class ResourceGovernor
{
  public:
    explicit ResourceGovernor(GovernorConfig cfg = {});

    ResourceGovernor(const ResourceGovernor &) = delete;
    ResourceGovernor &operator=(const ResourceGovernor &) = delete;

    bool enabled() const { return cfg_.budgetBytes > 0; }
    size_t budgetBytes() const { return cfg_.budgetBytes; }

    /**
     * Register a consumer slot.  Consumers report *absolute* live
     * footprint via update() — absolute reports cannot leak the way
     * mismatched charge/release pairs can.
     */
    unsigned registerConsumer(std::string name);

    /** Report consumer @p id's current live footprint. */
    void update(unsigned id, size_t live_bytes);

    size_t
    liveBytes() const
    {
        sync::RoleGuard hold(role_);
        return live_;
    }

    size_t
    peakBytes() const
    {
        sync::RoleGuard hold(role_);
        return peak_;
    }

    Pressure
    pressure() const
    {
        sync::RoleGuard hold(role_);
        return pressure_;
    }

    /** Live footprint last reported by consumer @p id. */
    size_t consumerBytes(unsigned id) const;

    /**
     * Chaos hook: when set, allocWouldFail() consults it before every
     * tracked allocation.  The engine treats a failure like a real
     * std::bad_alloc at that site — drop the work, count it, continue.
     * The hook runs with the governor role held: it must not call
     * back into the governor (checked builds panic on the re-entry).
     */
    void
    setAllocFailureInjector(std::function<bool()> hook)
    {
        sync::RoleGuard hold(role_);
        allocFail_ = std::move(hook);
    }

    /** Should the next tracked allocation be treated as failed? */
    bool allocWouldFail();

    /**
     * Counters:
     *   soft_transitions / hard_transitions / critical_transitions —
     *     upward entries into each level,
     *   ok_returns           — pressure relieved back to OK,
     *   injected_alloc_fails — allocWouldFail() hits.
     */
    StatGroup &stats() { return stats_; }

  private:
    void recompute() REQUIRES(role_);

    /**
     * The single-session-owner discipline as a checkable capability:
     * taken by every public entry point, so cross-thread or re-entrant
     * use panics in checked builds and unguarded state access is a
     * Clang -Wthread-safety error.  Costs nothing in Release.
     */
    mutable sync::Role role_{"governor", sync::rank::GOVERNOR};

    GovernorConfig cfg_;
    std::vector<std::pair<std::string, size_t>>
        consumers_ GUARDED_BY(role_);
    size_t live_ GUARDED_BY(role_) = 0;
    size_t peak_ GUARDED_BY(role_) = 0;
    Pressure pressure_ GUARDED_BY(role_) = Pressure::OK;
    std::function<bool()> allocFail_ GUARDED_BY(role_);
    StatGroup stats_{"governor"};
    Counter &softTransitions_{stats_.counter("soft_transitions")};
    Counter &hardTransitions_{stats_.counter("hard_transitions")};
    Counter &criticalTransitions_{stats_.counter("critical_transitions")};
    Counter &okReturns_{stats_.counter("ok_returns")};
    Counter &injectedAllocFails_{stats_.counter("injected_alloc_fails")};
};

} // namespace replay

#endif // REPLAY_UTIL_GOVERNOR_HH
