#include "util/threadpool.hh"

#include <algorithm>

#include "util/logging.hh"

namespace replay {

ThreadPool::ThreadPool(unsigned threads)
{
    threads = std::max(threads, 1u);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        if (firstError_) {
            // wait() was never called to collect it; dying with the
            // error swallowed silently would hide real failures.
            warn("thread pool destroyed with an uncollected job "
                 "exception");
            firstError_ = nullptr;
        }
    }
    jobReady_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    panic_if(!job, "submitting an empty job");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        panic_if(stopping_, "submitting to a stopping thread pool");
        queue_.push_back(std::move(job));
    }
    jobReady_.notify_one();
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    if (firstError_) {
        std::exception_ptr error = firstError_;
        firstError_ = nullptr;
        cancelled_.store(false, std::memory_order_relaxed);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        jobReady_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty())
            return;                     // stopping_ and drained
        std::function<void()> job = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lock.unlock();
        std::exception_ptr error;
        try {
            job();
        } catch (...) {
            // Capture instead of letting the exception escape the
            // worker (which would std::terminate the process); the
            // first one is rethrown from wait().
            error = std::current_exception();
            cancelled_.store(true, std::memory_order_relaxed);
        }
        lock.lock();
        if (error && !firstError_)
            firstError_ = error;
        --active_;
        if (queue_.empty() && active_ == 0)
            allDone_.notify_all();
    }
}

void
parallelFor(unsigned jobs, size_t count,
            const std::function<void(size_t)> &fn)
{
    if (jobs <= 1 || count <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(unsigned(std::min<size_t>(jobs, count)));
    for (size_t i = 0; i < count; ++i) {
        pool.submit([&pool, &fn, i] {
            // After a failure, queued iterations become no-ops: their
            // results would be discarded, and skipping them gets the
            // exception to the caller as fast as possible.
            if (pool.cancelled())
                return;
            fn(i);
        });
    }
    pool.wait();
}

} // namespace replay
