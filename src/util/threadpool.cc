#include "util/threadpool.hh"

#include <algorithm>

#include "util/logging.hh"

namespace replay {

ThreadPool::ThreadPool(unsigned threads)
{
    threads = std::max(threads, 1u);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    drain();
    {
        sync::LockGuard lock(mutex_);
        stopping_ = true;
        if (firstError_) {
            // wait() was never called to collect it; dying with the
            // error swallowed silently would hide real failures.
            // (warn's report mutex is the hierarchy maximum, so
            // reporting from under the pool lock is in order.)
            warn("thread pool destroyed with an uncollected job "
                 "exception");
            firstError_ = nullptr;
        }
    }
    jobReady_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    panic_if(!job, "submitting an empty job");
    {
        sync::LockGuard lock(mutex_);
        panic_if(stopping_, "submitting to a stopping thread pool");
        queue_.push_back(std::move(job));
    }
    jobReady_.notify_one();
}

void
ThreadPool::drain()
{
    // Manual wait loop rather than a predicate lambda: thread-safety
    // analysis cannot attach REQUIRES to a closure, so the guarded
    // reads stay in this (annotatable) scope.
    sync::UniqueLock lock(mutex_);
    while (!(queue_.empty() && active_ == 0))
        allDone_.wait(lock);
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        sync::UniqueLock lock(mutex_);
        while (!(queue_.empty() && active_ == 0))
            allDone_.wait(lock);
        if (!firstError_)
            return;
        error = firstError_;
        firstError_ = nullptr;
        cancelled_.store(false, std::memory_order_relaxed);
    }
    std::rethrow_exception(error);
}

void
ThreadPool::workerLoop()
{
    sync::UniqueLock lock(mutex_);
    for (;;) {
        while (!(stopping_ || !queue_.empty()))
            jobReady_.wait(lock);
        if (queue_.empty())
            return;                     // stopping_ and drained
        std::function<void()> job = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lock.unlock();
        std::exception_ptr error;
        try {
            job();
        } catch (...) {
            // Capture instead of letting the exception escape the
            // worker (which would std::terminate the process); the
            // first one is rethrown from wait().
            error = std::current_exception();
            cancelled_.store(true, std::memory_order_relaxed);
        }
        lock.lock();
        if (error && !firstError_)
            firstError_ = error;
        --active_;
        if (queue_.empty() && active_ == 0)
            allDone_.notify_all();
    }
}

void
parallelFor(unsigned jobs, size_t count,
            const std::function<void(size_t)> &fn)
{
    if (jobs <= 1 || count <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(unsigned(std::min<size_t>(jobs, count)));
    for (size_t i = 0; i < count; ++i) {
        pool.submit([&pool, &fn, i] {
            // After a failure, queued iterations become no-ops: their
            // results would be discarded, and skipping them gets the
            // exception to the caller as fast as possible.
            if (pool.cancelled())
                return;
            fn(i);
        });
    }
    pool.wait();
}

} // namespace replay
