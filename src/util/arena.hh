/**
 * @file
 * Arena and object-pool allocation for the simulation hot path.
 *
 * The construct / optimize / deposit cycle runs once per candidate
 * frame — hundreds of thousands of times per sweep cell — and used to
 * pay for a fresh heap object graph (Frame, its vectors, the optimizer
 * scratch) on every iteration.  The Arena is a chunked bump allocator:
 * allocation is a pointer increment, nothing is freed individually, and
 * the whole arena releases at once.  The ObjectPool layers typed object
 * recycling on top: released objects keep their constructed state (so
 * std::vector members keep their grown capacity across reuse) and the
 * next acquire hands them back without touching the heap.
 *
 * Lifetime rules (see DESIGN.md): pooled objects may outlive the pool
 * handle that created them — the pool core is shared_ptr-owned and each
 * live object's deleter keeps it alive — but they must never outlive
 * their last shared_ptr.  The arena never shrinks; a pool's high-water
 * mark is the cost of its peak concurrent liveness.
 */

#ifndef REPLAY_UTIL_ARENA_HH
#define REPLAY_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace replay {

/** Chunked bump allocator.  Not thread-safe; one arena per owner. */
class Arena
{
  public:
    explicit Arena(size_t chunk_bytes = 64 * 1024)
        : chunkBytes_(chunk_bytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Allocate @p bytes aligned to @p align.  Never returns null. */
    void *alloc(size_t bytes, size_t align = alignof(std::max_align_t));

    /** Typed allocation (memory only; caller placement-constructs). */
    template <typename T>
    T *
    allocFor()
    {
        return static_cast<T *>(alloc(sizeof(T), alignof(T)));
    }

    /** Total bytes handed out (diagnostics / bench). */
    size_t allocatedBytes() const { return allocated_; }

    /** Number of backing chunks (diagnostics / bench). */
    size_t chunkCount() const { return chunks_.size(); }

    /**
     * Total bytes of backing storage (what the resource governor
     * charges: the arena holds whole chunks live regardless of how
     * much of each is handed out).
     */
    size_t
    footprintBytes() const
    {
        size_t sum = 0;
        for (const Chunk &chunk : chunks_)
            sum += chunk.size;
        return sum;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<uint8_t[]> data;
        size_t used = 0;
        size_t size = 0;
    };

    size_t chunkBytes_;
    size_t allocated_ = 0;
    std::vector<Chunk> chunks_;
};

/**
 * Recycling pool of shared_ptr-managed objects backed by an Arena.
 *
 * acquire() pops a previously released object (constructed state and
 * vector capacities intact) or placement-constructs a fresh one in the
 * arena.  The returned shared_ptr's deleter pushes the object back to
 * the free list instead of destroying it.  Destruction of every pooled
 * object happens exactly once, when the last handle (pool or object)
 * drops the core.
 */
template <typename T>
class ObjectPool
{
  public:
    explicit ObjectPool(size_t chunk_bytes = 64 * 1024)
        : core_(std::make_shared<Core>(chunk_bytes))
    {
    }

    /** A recycled or freshly constructed object. */
    std::shared_ptr<T>
    acquire()
    {
        T *obj;
        if (!core_->free.empty()) {
            obj = core_->free.back();
            core_->free.pop_back();
        } else {
            obj = new (core_->arena.template allocFor<T>()) T();
            core_->all.push_back(obj);
        }
        // The deleter holds the core by value: objects may outlive the
        // pool handle, never the memory beneath them.
        return std::shared_ptr<T>(obj, Releaser{core_});
    }

    /** Objects ever constructed (arena-resident). */
    size_t totalObjects() const { return core_->all.size(); }

    /** Objects currently in the free list. */
    size_t freeObjects() const { return core_->free.size(); }

    /** Backing-arena footprint (governor accounting). */
    size_t arenaFootprintBytes() const
    {
        return core_->arena.footprintBytes();
    }

  private:
    struct Core
    {
        explicit Core(size_t chunk_bytes) : arena(chunk_bytes) {}
        ~Core()
        {
            for (T *obj : all)
                obj->~T();
        }

        Arena arena;
        std::vector<T *> all;
        std::vector<T *> free;
    };

    struct Releaser
    {
        std::shared_ptr<Core> core;
        void operator()(T *obj) const { core->free.push_back(obj); }
    };

    std::shared_ptr<Core> core_;
};

} // namespace replay

#endif // REPLAY_UTIL_ARENA_HH
