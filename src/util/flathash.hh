/**
 * @file
 * Flat open-addressing hash containers for the lookup hot path.
 *
 * std::unordered_map pays a node allocation per insert and a pointer
 * chase per find; the simulator's per-instruction lookups (frame cache,
 * alias profile, quarantine) want the probe sequence to stay inside one
 * or two cache lines.  FlatMap / FlatSet keep keys, values, and a
 * one-byte state array in parallel flat vectors, probe linearly from a
 * multiplicative hash, and delete via tombstones.  Capacity is a power
 * of two and grows at 7/8 occupancy (counting tombstones, so probe
 * chains stay short under churn).
 *
 * Iteration (forEach / eraseIf) walks table order, which depends on the
 * insertion history — like every hash container, not a stable public
 * order.  Callers that need deterministic tie-breaking must not depend
 * on it.
 */

#ifndef REPLAY_UTIL_FLATHASH_HH
#define REPLAY_UTIL_FLATHASH_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace replay {

namespace detail {

/** Finalizer-style mixer (splitmix64); good avalanche for int keys. */
inline uint64_t
mixHash(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace detail

/** Open-addressing hash map with integer keys. */
template <typename K, typename V>
class FlatMap
{
    enum State : uint8_t
    {
        EMPTY = 0,
        FULL = 1,
        TOMB = 2,
    };

  public:
    FlatMap() = default;

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /**
     * Backing-storage footprint (governor accounting): the flat
     * vectors hold full capacity live, so that is what gets charged.
     */
    size_t
    memoryBytes() const
    {
        return states_.size() *
               (sizeof(uint8_t) + sizeof(K) + sizeof(V));
    }

    /** Pointer to the value for @p key, or null. */
    V *
    find(K key)
    {
        if (size_ == 0)
            return nullptr;
        const size_t idx = findIndex(key);
        return idx == NPOS ? nullptr : &vals_[idx];
    }

    const V *
    find(K key) const
    {
        if (size_ == 0)
            return nullptr;
        const size_t idx = findIndex(key);
        return idx == NPOS ? nullptr : &vals_[idx];
    }

    /** The value for @p key, default-constructing on first use. */
    V &
    operator[](K key)
    {
        reserveOne();
        const size_t mask = states_.size() - 1;
        size_t i = detail::mixHash(uint64_t(key)) & mask;
        size_t first_tomb = NPOS;
        for (;; i = (i + 1) & mask) {
            if (states_[i] == FULL) {
                if (keys_[i] == key)
                    return vals_[i];
            } else if (states_[i] == TOMB) {
                if (first_tomb == NPOS)
                    first_tomb = i;
            } else {
                const size_t slot = first_tomb == NPOS ? i : first_tomb;
                if (states_[slot] == EMPTY)
                    ++occupied_;
                states_[slot] = FULL;
                keys_[slot] = key;
                vals_[slot] = V{};
                ++size_;
                return vals_[slot];
            }
        }
    }

    /** Remove @p key; true if it was present. */
    bool
    erase(K key)
    {
        if (size_ == 0)
            return false;
        const size_t idx = findIndex(key);
        if (idx == NPOS)
            return false;
        states_[idx] = TOMB;
        vals_[idx] = V{};
        --size_;
        maybeCompact();
        return true;
    }

    void
    clear()
    {
        states_.assign(states_.size(), EMPTY);
        vals_.clear();
        vals_.resize(states_.size());
        size_ = 0;
        occupied_ = 0;
    }

    /** Visit every (key, value) pair, table order. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (size_t i = 0; i < states_.size(); ++i) {
            if (states_[i] == FULL)
                fn(keys_[i], vals_[i]);
        }
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < states_.size(); ++i) {
            if (states_[i] == FULL)
                fn(keys_[i], vals_[i]);
        }
    }

    /** Erase every pair the predicate accepts; returns erased count. */
    template <typename Fn>
    size_t
    eraseIf(Fn &&pred)
    {
        size_t erased = 0;
        for (size_t i = 0; i < states_.size(); ++i) {
            if (states_[i] == FULL && pred(keys_[i], vals_[i])) {
                states_[i] = TOMB;
                vals_[i] = V{};
                --size_;
                ++erased;
            }
        }
        if (erased)
            maybeCompact();
        return erased;
    }

    /** Tombstoned slots currently in the table (test introspection). */
    size_t tombstones() const { return occupied_ - size_; }

    /** Allocated slot count (power of two, or zero before first use). */
    size_t capacity() const { return states_.size(); }

    /**
     * Probe-chain length a find() of @p key walks, counting the slot
     * that terminates the search (test introspection).
     */
    size_t
    probeLength(K key) const
    {
        if (states_.empty())
            return 0;
        const size_t mask = states_.size() - 1;
        size_t i = detail::mixHash(uint64_t(key)) & mask;
        for (size_t len = 1;; i = (i + 1) & mask, ++len) {
            if (states_[i] == FULL && keys_[i] == key)
                return len;
            if (states_[i] == EMPTY)
                return len;
        }
    }

  private:
    static constexpr size_t NPOS = size_t(-1);
    static constexpr size_t MIN_CAPACITY = 16;

    size_t
    findIndex(K key) const
    {
        const size_t mask = states_.size() - 1;
        size_t i = detail::mixHash(uint64_t(key)) & mask;
        for (;; i = (i + 1) & mask) {
            if (states_[i] == FULL) {
                if (keys_[i] == key)
                    return i;
            } else if (states_[i] == EMPTY) {
                return NPOS;
            }
        }
    }

    void
    reserveOne()
    {
        if (states_.empty()) {
            rehash(MIN_CAPACITY);
            return;
        }
        // Grow at 7/8 occupancy including tombstones; rehashing also
        // drops the tombstones accumulated by churn.
        if ((occupied_ + 1) * 8 > states_.size() * 7) {
            const size_t want = (size_ + 1) * 8 > states_.size() * 7
                                    ? states_.size() * 2
                                    : states_.size();
            rehash(want);
        }
    }

    /**
     * Erase-side tombstone control.  Growth-path rehashes only happen
     * on insert, so a deletion-heavy phase (quarantine decay, cache
     * shoot-downs) used to accumulate tombstones without bound and
     * every miss probed through the whole graveyard.  Once tombstones
     * claim over a quarter of the table, rehash in place: same
     * capacity — the footprint is part of the governor's byte model —
     * but every chain shrinks back to the live entries.  Each
     * compaction costs O(capacity) and needs capacity/4 fresh erases
     * to re-arm, so the amortized cost per erase stays constant.
     */
    void
    maybeCompact()
    {
        const size_t tombs = occupied_ - size_;
        if (tombs > states_.size() / 4)
            rehash(states_.size());
    }

    void
    rehash(size_t new_capacity)
    {
        std::vector<uint8_t> old_states = std::move(states_);
        std::vector<K> old_keys = std::move(keys_);
        std::vector<V> old_vals = std::move(vals_);

        states_.assign(new_capacity, EMPTY);
        keys_.assign(new_capacity, K{});
        vals_.clear();
        vals_.resize(new_capacity);
        size_ = 0;
        occupied_ = 0;

        const size_t mask = new_capacity - 1;
        for (size_t i = 0; i < old_states.size(); ++i) {
            if (old_states[i] != FULL)
                continue;
            size_t j = detail::mixHash(uint64_t(old_keys[i])) & mask;
            while (states_[j] == FULL)
                j = (j + 1) & mask;
            states_[j] = FULL;
            keys_[j] = old_keys[i];
            vals_[j] = std::move(old_vals[i]);
            ++size_;
            ++occupied_;
        }
    }

    std::vector<uint8_t> states_;
    std::vector<K> keys_;
    std::vector<V> vals_;
    size_t size_ = 0;       ///< live entries
    size_t occupied_ = 0;   ///< live entries + tombstones
};

/** Open-addressing hash set with integer keys. */
template <typename K>
class FlatSet
{
  public:
    size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    size_t memoryBytes() const { return map_.memoryBytes(); }
    bool contains(K key) const { return map_.find(key) != nullptr; }
    void insert(K key) { map_[key] = Unit{}; }
    bool erase(K key) { return map_.erase(key); }
    void clear() { map_.clear(); }
    size_t tombstones() const { return map_.tombstones(); }
    size_t capacity() const { return map_.capacity(); }
    size_t probeLength(K key) const { return map_.probeLength(key); }

  private:
    struct Unit
    {
    };
    FlatMap<K, Unit> map_;
};

} // namespace replay

#endif // REPLAY_UTIL_FLATHASH_HH
