/**
 * @file
 * A keyed, prioritized background work queue over the ThreadPool.
 *
 * The tiered re-optimization engine needs more than a FIFO job queue:
 * work items carry a key (the frame's start PC) so pending work can be
 * cancelled when the frame it targets is evicted, a priority so the
 * hottest frames are re-optimized first, and a drop-everything shed
 * path so background work is the first thing sacrificed under memory
 * pressure.  BackgroundQueue packages that on top of ThreadPool:
 *
 *   - submit(key, priority, job) enqueues one item and wakes a worker;
 *     workers always pop the highest-priority pending item (FIFO among
 *     equals), not submission order,
 *   - cancel(key) / shedAll() drop *pending* items only — an item a
 *     worker already popped runs to completion, and the consumer is
 *     expected to detect and discard its stale result (the tier engine
 *     does this with frame id/generation checks),
 *   - completed results accumulate in an internal inbox the producer
 *     thread drains at its convenience (takeCompleted),
 *   - workers == 0 selects *inline* mode: submit() runs the job on the
 *     calling thread immediately.  This is the deterministic tier mode
 *     — identical code path, no scheduler in the loop.
 *
 * A CancelToken may be attached; once it stops, workers drop pending
 * items instead of running them (cooperative cancellation, same token
 * the simulator polls).
 *
 * Failure semantics follow ThreadPool: a runner that throws cancels
 * the pool and the exception resurfaces from the next waitIdle().
 * Runners that can fail in expected ways (bad_alloc under a chaos
 * campaign) should catch and encode the failure in their Result.
 */

#ifndef REPLAY_UTIL_BGQUEUE_HH
#define REPLAY_UTIL_BGQUEUE_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "util/cancellation.hh"
#include "util/logging.hh"
#include "util/sync.hh"
#include "util/threadpool.hh"

namespace replay {

/**
 * Keyed priority work queue.  Job and Result must expose
 * memoryBytes() (governor accounting) and be movable.
 */
template <typename Job, typename Result>
class BackgroundQueue
{
  public:
    using Runner = std::function<Result(Job &)>;

    /** @p workers == 0 runs jobs inline on the submitting thread. */
    BackgroundQueue(unsigned workers, Runner runner)
        : runner_(std::move(runner))
    {
        if (workers > 0)
            pool_ = std::make_unique<ThreadPool>(workers);
    }

    /** Drops pending items, then drains in-flight work (never throws). */
    ~BackgroundQueue()
    {
        shedAll();
        // The ThreadPool destructor drains the remaining pump jobs
        // (each finds an empty pending list and returns) and warns if
        // a job error was never collected.
        pool_.reset();
    }

    BackgroundQueue(const BackgroundQueue &) = delete;
    BackgroundQueue &operator=(const BackgroundQueue &) = delete;

    /**
     * Cooperative stop: once tripped, pending items are dropped.
     * Taken under the queue mutex — workers read the token inside
     * pump()'s critical section, so an unsynchronized write here was
     * a race (caught by the annotation sweep; regression-tested in
     * test_tier).
     */
    void
    setCancelToken(CancelToken token) EXCLUDES(mutex_)
    {
        sync::LockGuard lock(mutex_);
        cancel_ = std::move(token);
    }

    /**
     * Enqueue one item.  Inline mode runs it before returning; pool
     * mode wakes a worker that pops the best pending item (which may
     * be a different, higher-priority one).
     */
    void
    submit(uint64_t key, int64_t priority, Job job) EXCLUDES(mutex_)
    {
        {
            sync::LockGuard lock(mutex_);
            pending_.push_back(
                {key, priority, nextSeq_++, std::move(job)});
        }
        if (pool_)
            pool_->submit([this] { pump(); });
        else
            pump();
    }

    /** Drop every pending item with @p key; returns how many. */
    unsigned
    cancel(uint64_t key) EXCLUDES(mutex_)
    {
        sync::LockGuard lock(mutex_);
        unsigned dropped = 0;
        for (size_t i = 0; i < pending_.size();) {
            if (pending_[i].key == key) {
                pending_.erase(pending_.begin() + long(i));
                ++dropped;
            } else {
                ++i;
            }
        }
        return dropped;
    }

    /** Drop every pending item; returns the dropped keys. */
    std::vector<uint64_t>
    shedAll() EXCLUDES(mutex_)
    {
        sync::LockGuard lock(mutex_);
        std::vector<uint64_t> keys;
        keys.reserve(pending_.size());
        for (const auto &e : pending_)
            keys.push_back(e.key);
        pending_.clear();
        return keys;
    }

    /** Cheap (lock-free) check whether takeCompleted() would yield. */
    bool
    hasCompleted() const
    {
        return completedCount_.load(std::memory_order_acquire) > 0;
    }

    /** Move all completed results into @p out (appended). */
    void
    takeCompleted(std::vector<Result> &out) EXCLUDES(mutex_)
    {
        sync::LockGuard lock(mutex_);
        for (auto &r : completed_)
            out.push_back(std::move(r));
        completed_.clear();
        completedCount_.store(0, std::memory_order_release);
    }

    /**
     * Block until every submitted item has either run or been
     * dropped.  Rethrows the first runner exception, if any.
     */
    void
    waitIdle()
    {
        if (pool_)
            pool_->wait();
    }

    size_t
    pendingCount() const EXCLUDES(mutex_)
    {
        sync::LockGuard lock(mutex_);
        return pending_.size();
    }

    /** Jobs actually executed (not cancelled or shed). */
    uint64_t
    executedCount() const
    {
        return executed_.load(std::memory_order_relaxed);
    }

    /** Footprint of pending jobs + undrained results (governor). */
    size_t
    memoryBytes() const EXCLUDES(mutex_)
    {
        sync::LockGuard lock(mutex_);
        size_t bytes = sizeof(*this);
        for (const auto &e : pending_)
            bytes += sizeof(e) + e.job.memoryBytes();
        for (const auto &r : completed_)
            bytes += sizeof(r) + r.memoryBytes();
        return bytes;
    }

    unsigned numWorkers() const { return pool_ ? pool_->numThreads() : 0; }

  private:
    struct Entry
    {
        uint64_t key;
        int64_t priority;
        uint64_t seq;       ///< submission order: FIFO among equals
        Job job;
    };

    /** One worker wakeup: pop and run the best pending item. */
    void
    pump() EXCLUDES(mutex_)
    {
        Entry entry{0, 0, 0, Job{}};
        {
            sync::LockGuard lock(mutex_);
            if (pending_.empty())
                return;     // cancelled or shed since submission
            if (cancel_.stopRequested()) {
                pending_.clear();
                return;
            }
            size_t best = 0;
            for (size_t i = 1; i < pending_.size(); ++i) {
                const Entry &e = pending_[i];
                const Entry &b = pending_[best];
                if (e.priority > b.priority ||
                    (e.priority == b.priority && e.seq < b.seq)) {
                    best = i;
                }
            }
            entry = std::move(pending_[best]);
            pending_.erase(pending_.begin() + long(best));
        }
        Result result = runner_(entry.job);
        executed_.fetch_add(1, std::memory_order_relaxed);
        {
            sync::LockGuard lock(mutex_);
            completed_.push_back(std::move(result));
            completedCount_.store(completed_.size(),
                                  std::memory_order_release);
        }
    }

    Runner runner_;
    std::unique_ptr<ThreadPool> pool_;
    mutable sync::Mutex mutex_{"bgqueue", sync::rank::BGQUEUE};
    CancelToken cancel_ GUARDED_BY(mutex_);
    std::deque<Entry> pending_ GUARDED_BY(mutex_);
    std::deque<Result> completed_ GUARDED_BY(mutex_);
    std::atomic<size_t> completedCount_{0};
    std::atomic<uint64_t> executed_{0};
    uint64_t nextSeq_ GUARDED_BY(mutex_) = 0;
};

} // namespace replay

#endif // REPLAY_UTIL_BGQUEUE_HH
