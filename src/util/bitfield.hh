/**
 * @file
 * Bit-manipulation helpers used by cache indexing, predictors, and the
 * optimizer datapath's field-extraction primitives.
 */

#ifndef REPLAY_UTIL_BITFIELD_HH
#define REPLAY_UTIL_BITFIELD_HH

#include <cstdint>

namespace replay {

/** Mask of the low @p nbits bits. */
constexpr uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~0ULL : (1ULL << nbits) - 1;
}

/** Extract bits [last:first] of @p val (inclusive, last >= first). */
constexpr uint64_t
bits(uint64_t val, unsigned last, unsigned first)
{
    return (val >> first) & mask(last - first + 1);
}

/** Replace bits [last:first] of @p val with the low bits of @p field. */
constexpr uint64_t
insertBits(uint64_t val, unsigned last, unsigned first, uint64_t field)
{
    const uint64_t m = mask(last - first + 1) << first;
    return (val & ~m) | ((field << first) & m);
}

/** Sign-extend the low @p nbits bits of @p val to 64 bits. */
constexpr int64_t
sext(uint64_t val, unsigned nbits)
{
    const uint64_t sign = 1ULL << (nbits - 1);
    return static_cast<int64_t>(((val & mask(nbits)) ^ sign)) -
           static_cast<int64_t>(sign);
}

/** True if @p val is a power of two (and non-zero). */
constexpr bool
isPow2(uint64_t val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** floor(log2(val)) for val > 0. */
constexpr unsigned
floorLog2(uint64_t val)
{
    unsigned result = 0;
    while (val >>= 1)
        ++result;
    return result;
}

/** Parity (xor-reduce) of @p val. */
constexpr unsigned
parity(uint64_t val)
{
    val ^= val >> 32;
    val ^= val >> 16;
    val ^= val >> 8;
    val ^= val >> 4;
    val ^= val >> 2;
    val ^= val >> 1;
    return static_cast<unsigned>(val & 1);
}

} // namespace replay

#endif // REPLAY_UTIL_BITFIELD_HH
