/**
 * @file
 * Fixed-capacity inline vector.
 *
 * The executor's per-step side-effect lists (register writes, memory
 * transactions) are tiny and bounded by the ISA subset, yet they were
 * std::vectors — three heap allocations per executed instruction on
 * the tracer's hottest path.  SmallVec stores elements inline with the
 * std::vector surface the call sites use (push_back / size / index /
 * range-for) and panics on overflow, which mirrors the bound checks
 * TraceRecord::fromStep already enforces.
 */

#ifndef REPLAY_UTIL_SMALLVEC_HH
#define REPLAY_UTIL_SMALLVEC_HH

#include <cstddef>

#include "util/logging.hh"

namespace replay {

/** Inline vector of at most N elements; T must be trivially copyable. */
template <typename T, size_t N>
class SmallVec
{
  public:
    void
    push_back(const T &v)
    {
        panic_if(n_ == N, "SmallVec overflow (capacity %zu)", N);
        data_[n_++] = v;
    }

    void clear() { n_ = 0; }

    size_t size() const { return n_; }
    bool empty() const { return n_ == 0; }

    T &operator[](size_t i) { return data_[i]; }
    const T &operator[](size_t i) const { return data_[i]; }

    T *begin() { return data_; }
    T *end() { return data_ + n_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + n_; }

    T &back() { return data_[n_ - 1]; }
    const T &back() const { return data_[n_ - 1]; }

  private:
    T data_[N]{};
    size_t n_ = 0;
};

} // namespace replay

#endif // REPLAY_UTIL_SMALLVEC_HH
