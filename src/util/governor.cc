#include "util/governor.hh"

#include "util/logging.hh"

namespace replay {

const char *
pressureName(Pressure level)
{
    switch (level) {
      case Pressure::OK:        return "ok";
      case Pressure::SOFT:      return "soft";
      case Pressure::HARD:      return "hard";
      case Pressure::CRITICAL:  return "critical";
    }
    return "?";
}

ResourceGovernor::ResourceGovernor(GovernorConfig cfg) : cfg_(cfg)
{
    panic_if(cfg_.softFrac > cfg_.hardFrac ||
                 cfg_.hardFrac > cfg_.criticalFrac,
             "governor thresholds must be ordered soft <= hard <= "
             "critical");
}

unsigned
ResourceGovernor::registerConsumer(std::string name)
{
    sync::RoleGuard hold(role_);
    consumers_.emplace_back(std::move(name), 0);
    return unsigned(consumers_.size() - 1);
}

void
ResourceGovernor::update(unsigned id, size_t live_bytes)
{
    sync::RoleGuard hold(role_);
    panic_if(id >= consumers_.size(), "governor consumer %u unknown",
             id);
    size_t &slot = consumers_[id].second;
    live_ = live_ - slot + live_bytes;
    slot = live_bytes;
    if (live_ > peak_)
        peak_ = live_;
    recompute();
}

size_t
ResourceGovernor::consumerBytes(unsigned id) const
{
    sync::RoleGuard hold(role_);
    panic_if(id >= consumers_.size(), "governor consumer %u unknown",
             id);
    return consumers_[id].second;
}

bool
ResourceGovernor::allocWouldFail()
{
    sync::RoleGuard hold(role_);
    if (!allocFail_ || !allocFail_())
        return false;
    ++injectedAllocFails_;
    return true;
}

void
ResourceGovernor::recompute()
{
    Pressure next = Pressure::OK;
    if (enabled()) {
        const double frac =
            double(live_) / double(cfg_.budgetBytes);
        if (frac >= cfg_.criticalFrac)
            next = Pressure::CRITICAL;
        else if (frac >= cfg_.hardFrac)
            next = Pressure::HARD;
        else if (frac >= cfg_.softFrac)
            next = Pressure::SOFT;
    }
    if (next == pressure_)
        return;
    // Count upward entries per level (a jump straight from OK to
    // CRITICAL counts once, as a critical transition) and returns to
    // full service.
    if (next > pressure_) {
        switch (next) {
          case Pressure::SOFT:      ++softTransitions_; break;
          case Pressure::HARD:      ++hardTransitions_; break;
          case Pressure::CRITICAL:  ++criticalTransitions_; break;
          case Pressure::OK:        break;
        }
    } else if (next == Pressure::OK) {
        ++okReturns_;
    }
    pressure_ = next;
}

} // namespace replay
