/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the library (workload synthesis, tie
 * breaking, ...) draws from an explicitly seeded Rng so that runs are
 * reproducible bit-for-bit.  The generator is splitmix64-seeded
 * xoshiro256**, which is fast and has no observable bias for our use.
 */

#ifndef REPLAY_UTIL_RNG_HH
#define REPLAY_UTIL_RNG_HH

#include <cstdint>

namespace replay {

/** Small, fast, explicitly-seeded PRNG. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Reset the stream from a 64-bit seed. */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 to spread the seed across all 256 bits of state.
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free-enough reduction.
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return real() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace replay

#endif // REPLAY_UTIL_RNG_HH
