/**
 * @file
 * Fixed-width text table renderer used by the benchmark harnesses to
 * print paper-style tables and figure series.
 */

#ifndef REPLAY_UTIL_TABLE_HH
#define REPLAY_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace replay {

/** Accumulates rows of strings and renders them with aligned columns. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator at the current position. */
    void separator();

    /** Render the whole table, right-aligning numeric-looking cells. */
    std::string render() const;

    /** Format helpers for common cell types. */
    static std::string fixed(double value, int digits);
    static std::string percent(double fraction, int digits = 0);

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool isSeparator = false;
    };

    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace replay

#endif // REPLAY_UTIL_TABLE_HH
