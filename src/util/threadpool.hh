/**
 * @file
 * A small job-queue thread pool.
 *
 * Workers pull std::function jobs from a mutex-protected deque; wait()
 * blocks until the queue is drained and every in-flight job has
 * finished.  Determinism is the caller's responsibility: jobs must
 * write only to pre-allocated, disjoint result slots (indexed by job,
 * not by completion order) so that results are bit-identical for any
 * worker count.  parallelFor() packages that pattern.
 *
 * Failure semantics: a throwing job must not std::terminate the
 * process (an exception escaping the std::function call in a worker
 * thread would).  The pool captures the *first* exception a job
 * throws, flips the cancelled flag so cooperative jobs can skip their
 * remaining work, and rethrows from the next wait() on the submitting
 * thread — the same place the result would have been consumed.
 * parallelFor() builds on this: one failing iteration cancels the
 * rest and the exception surfaces to the caller, serial and parallel
 * paths alike.
 */

#ifndef REPLAY_UTIL_THREADPOOL_HH
#define REPLAY_UTIL_THREADPOOL_HH

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hh"

namespace replay {

/** Fixed-size worker pool over a FIFO job queue. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins the workers (never throws). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job.  Never blocks on job execution. */
    void submit(std::function<void()> job) EXCLUDES(mutex_);

    /**
     * Block until the queue is empty and no job is running.  If any
     * job threw since the last wait(), rethrows the first captured
     * exception (the rest were cancelled or ran to completion).
     */
    void wait() EXCLUDES(mutex_);

    /**
     * A job threw (or cancelAll() was called): cooperative jobs poll
     * this and return early instead of doing doomed work.
     */
    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** Request cancellation of queued cooperative work (watchdogs). */
    void
    cancelAll()
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    unsigned numThreads() const { return unsigned(workers_.size()); }

  private:
    void workerLoop() EXCLUDES(mutex_);
    void drain() EXCLUDES(mutex_);

    sync::Mutex mutex_{"threadpool", sync::rank::POOL};
    sync::CondVar jobReady_;             ///< workers wait here
    sync::CondVar allDone_;              ///< wait() waits here
    std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
    std::vector<std::thread> workers_;
    unsigned active_ GUARDED_BY(mutex_) = 0;  ///< jobs executing now
    bool stopping_ GUARDED_BY(mutex_) = false;
    std::exception_ptr firstError_ GUARDED_BY(mutex_);
    std::atomic<bool> cancelled_{false};
};

/**
 * Run fn(0) .. fn(count-1) across @p jobs workers and return when all
 * are done.  jobs <= 1 runs inline on the calling thread — the serial
 * and parallel paths execute the same iterations, so any fn that
 * writes only to its own index produces identical results either way.
 *
 * If an iteration throws, iterations not yet started are skipped and
 * the first exception is rethrown to the caller once in-flight work
 * has finished — never std::terminate.  Which iterations were skipped
 * is unspecified; on the error path no result may be consumed anyway.
 */
void parallelFor(unsigned jobs, size_t count,
                 const std::function<void(size_t)> &fn);

} // namespace replay

#endif // REPLAY_UTIL_THREADPOOL_HH
