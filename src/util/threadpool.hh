/**
 * @file
 * A small job-queue thread pool.
 *
 * Workers pull std::function jobs from a mutex-protected deque; wait()
 * blocks until the queue is drained and every in-flight job has
 * finished.  Determinism is the caller's responsibility: jobs must
 * write only to pre-allocated, disjoint result slots (indexed by job,
 * not by completion order) so that results are bit-identical for any
 * worker count.  parallelFor() packages that pattern.
 */

#ifndef REPLAY_UTIL_THREADPOOL_HH
#define REPLAY_UTIL_THREADPOOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace replay {

/** Fixed-size worker pool over a FIFO job queue. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job.  Never blocks on job execution. */
    void submit(std::function<void()> job);

    /** Block until the queue is empty and no job is running. */
    void wait();

    unsigned numThreads() const { return unsigned(workers_.size()); }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable jobReady_;   ///< workers wait here
    std::condition_variable allDone_;    ///< wait() waits here
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    unsigned active_ = 0;                ///< jobs currently executing
    bool stopping_ = false;
};

/**
 * Run fn(0) .. fn(count-1) across @p jobs workers and return when all
 * are done.  jobs <= 1 runs inline on the calling thread — the serial
 * and parallel paths execute the same iterations, so any fn that
 * writes only to its own index produces identical results either way.
 */
void parallelFor(unsigned jobs, size_t count,
                 const std::function<void(size_t)> &fn);

} // namespace replay

#endif // REPLAY_UTIL_THREADPOOL_HH
