#include "util/table.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace replay {

namespace {

bool
looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    for (const char c : cell) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != '%' && c != 'x') {
            return false;
        }
    }
    return true;
}

} // anonymous namespace

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back({std::move(cells), false});
}

void
TextTable::separator()
{
    rows_.push_back({{}, true});
}

std::string
TextTable::render() const
{
    size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.cells.size());

    std::vector<size_t> widths(ncols, 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        if (!r.isSeparator)
            widen(r.cells);

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < ncols; ++i) {
            const std::string cell = i < cells.size() ? cells[i] : "";
            const size_t pad = widths[i] - cell.size();
            if (i)
                out << "  ";
            if (looksNumeric(cell)) {
                out << std::string(pad, ' ') << cell;
            } else {
                out << cell << std::string(pad, ' ');
            }
        }
        out << '\n';
    };

    size_t total = 0;
    for (size_t i = 0; i < ncols; ++i)
        total += widths[i] + (i ? 2 : 0);

    if (!header_.empty()) {
        emit(header_);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_) {
        if (r.isSeparator)
            out << std::string(total, '-') << '\n';
        else
            emit(r.cells);
    }
    return out.str();
}

std::string
TextTable::fixed(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
TextTable::percent(double fraction, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
    return buf;
}

} // namespace replay
