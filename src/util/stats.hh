/**
 * @file
 * Lightweight statistics package.
 *
 * A StatGroup owns named scalar counters and distributions; every major
 * component (caches, predictor, optimizer, sequencer, pipeline) exposes
 * one.  Groups can be dumped as text and merged (for multi-trace
 * workloads, mirroring the paper's applications that consist of several
 * trace files).
 */

#ifndef REPLAY_UTIL_STATS_HH
#define REPLAY_UTIL_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace replay {

/** A named scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(uint64_t amount) { value_ += amount; return *this; }

    uint64_t value() const { return value_; }
    void set(uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** A bounded histogram with overflow bucket. */
class Histogram
{
  public:
    explicit Histogram(size_t buckets = 0) : buckets_(buckets + 1, 0) {}

    /** Record one sample; values >= bucket count land in the last bin. */
    void
    sample(size_t value)
    {
        const size_t idx =
            value < buckets_.size() - 1 ? value : buckets_.size() - 1;
        ++buckets_[idx];
        sum_ += value;
        ++count_;
    }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    double mean() const { return count_ ? double(sum_) / double(count_) : 0; }
    uint64_t bucket(size_t idx) const { return buckets_.at(idx); }
    size_t numBuckets() const { return buckets_.size(); }

  private:
    std::vector<uint64_t> buckets_;
    uint64_t sum_ = 0;
    uint64_t count_ = 0;
};

/** A collection of named counters belonging to one component. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Look up (creating on first use) a counter by name. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** Read-only lookup; returns 0 for names never recorded. */
    uint64_t get(const std::string &name) const;

    /** Accumulate every counter of @p other into this group. */
    void merge(const StatGroup &other);

    /** Render "group.name value" lines. */
    std::string dump() const;

    const std::string &name() const { return name_; }
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
};

} // namespace replay

#endif // REPLAY_UTIL_STATS_HH
