/**
 * @file
 * Cooperative cancellation with soft deadlines.
 *
 * A CancelSource owns the shared stop state; CancelTokens are cheap
 * copyable views of it that long-running loops poll at checkpoints
 * (the simulator checks every few thousand trace records).  Stops are
 * *requests*: nothing is interrupted preemptively, the observing loop
 * throws CancelledError at its next checkpoint and stack unwinding
 * does the cleanup.  A deadline is a soft per-task watchdog — it fires
 * through the same token, so a wedged or stalled task cancels itself
 * the moment it reaches a checkpoint past its budget.
 *
 * Tokens are thread-safe (atomics only); a sweep watchdog may cancel
 * from one thread while workers poll from others.  A
 * default-constructed token is null and never stops.
 *
 * Locking discipline: this file is deliberately lock-free — the shared
 * CancelState is a pair of atomics, so tokens never take a sync::Mutex
 * and are excluded from the lock hierarchy.  That makes polling legal
 * from *any* context, including under every ranked lock (BackgroundQueue
 * reads its token inside the queue's critical section).  Note the one
 * subtlety this design pushes outward: the token *handle* itself
 * (the shared_ptr) is copied, not atomic, so rebinding a stored token
 * while another thread reads it needs external guarding — which is why
 * BackgroundQueue keeps its token GUARDED_BY its queue mutex.
 */

#ifndef REPLAY_UTIL_CANCELLATION_HH
#define REPLAY_UTIL_CANCELLATION_HH

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

namespace replay {

/** Thrown by CancelToken::throwIfStopped at a cancellation point. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

namespace detail {

struct CancelState
{
    std::atomic<bool> cancelled{false};
    /** steady_clock deadline in ns since epoch; 0 = no deadline. */
    std::atomic<int64_t> deadlineNs{0};
};

inline int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace detail

/** Pollable view of a CancelSource's stop state. */
class CancelToken
{
  public:
    /** Null token: stopRequested() is always false. */
    CancelToken() = default;

    bool
    cancelled() const
    {
        return state_ &&
               state_->cancelled.load(std::memory_order_relaxed);
    }

    /** Has the soft deadline passed? */
    bool
    expired() const
    {
        if (!state_)
            return false;
        const int64_t deadline =
            state_->deadlineNs.load(std::memory_order_relaxed);
        return deadline != 0 && detail::steadyNowNs() > deadline;
    }

    bool stopRequested() const { return cancelled() || expired(); }

    /** Cancellation point: throw CancelledError when stopped. */
    void
    throwIfStopped(const char *what) const
    {
        if (cancelled())
            throw CancelledError(std::string(what) + ": cancelled");
        if (expired())
            throw CancelledError(std::string(what) +
                                 ": soft deadline exceeded");
    }

  private:
    friend class CancelSource;
    explicit CancelToken(std::shared_ptr<detail::CancelState> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<detail::CancelState> state_;
};

/** Owner of a stop state; hand out tokens, cancel once. */
class CancelSource
{
  public:
    CancelSource() : state_(std::make_shared<detail::CancelState>()) {}

    CancelToken token() const { return CancelToken(state_); }

    void
    cancel()
    {
        state_->cancelled.store(true, std::memory_order_relaxed);
    }

    bool
    cancelled() const
    {
        return state_->cancelled.load(std::memory_order_relaxed);
    }

    /** Arm (or re-arm) the soft deadline @p budget from now. */
    void
    setDeadlineAfter(std::chrono::nanoseconds budget)
    {
        state_->deadlineNs.store(detail::steadyNowNs() + budget.count(),
                                 std::memory_order_relaxed);
    }

  private:
    std::shared_ptr<detail::CancelState> state_;
};

} // namespace replay

#endif // REPLAY_UTIL_CANCELLATION_HH
