#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/sync.hh"

namespace replay {

namespace {

// Sweep workers report concurrently: the handler pointer is atomic and
// each message is emitted under a lock so lines never interleave.  The
// report mutex holds the *maximum* hierarchy rank: any thread must be
// able to warn/panic no matter which locks it already holds, and
// nothing may ever be acquired while reporting.
std::atomic<DeathHandler> deathHandler{nullptr};
sync::Mutex reportMutex{"report", sync::rank::REPORT};

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    sync::LockGuard lock(reportMutex);
    std::fprintf(stderr, "%s", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

/**
 * Format, print (with file:line), flush stderr, and hand the message to
 * the death hook if one is installed.  Returns only if a hook is set
 * and itself returned; the caller then terminates.
 */
void
reportDeath(const char *kind, const char *file, int line,
            const char *fmt, va_list ap)
{
    char message[1024];
    std::vsnprintf(message, sizeof(message), fmt, ap);
    {
        sync::LockGuard lock(reportMutex);
        std::fprintf(stderr, "%s: (%s:%d) %s\n", kind, file, line,
                     message);
        std::fflush(stderr);
    }
    if (DeathHandler handler = deathHandler.load())
        handler(kind, file, line, message);
}

} // anonymous namespace

DeathHandler
setDeathHandler(DeathHandler handler)
{
    return deathHandler.exchange(handler);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    reportDeath("panic", file, line, fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    reportDeath("fatal", file, line, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn: ", fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("info: ", fmt, ap);
    va_end(ap);
}

} // namespace replay
