#include "util/arena.hh"

#include <cstring>

namespace replay {

void *
Arena::alloc(size_t bytes, size_t align)
{
    if (bytes == 0)
        bytes = 1;
    if (!chunks_.empty()) {
        Chunk &cur = chunks_.back();
        const size_t aligned = (cur.used + align - 1) & ~(align - 1);
        if (aligned + bytes <= cur.size) {
            cur.used = aligned + bytes;
            allocated_ += bytes;
            return cur.data.get() + aligned;
        }
    }
    // Oversized requests get a dedicated chunk so the common chunk size
    // stays cache-friendly.
    const size_t chunk_size = bytes + align > chunkBytes_
                                  ? bytes + align
                                  : chunkBytes_;
    Chunk chunk;
    chunk.data = std::make_unique<uint8_t[]>(chunk_size);
    chunk.size = chunk_size;
    chunks_.push_back(std::move(chunk));

    Chunk &cur = chunks_.back();
    const size_t base = reinterpret_cast<uintptr_t>(cur.data.get());
    const size_t skew = (align - (base & (align - 1))) & (align - 1);
    cur.used = skew + bytes;
    allocated_ += bytes;
    return cur.data.get() + skew;
}

} // namespace replay
