#include "timing/fetch.hh"

#include "util/logging.hh"

namespace replay::timing {

FrontEnd::FrontEnd(const PipelineConfig &cfg)
    : cfg_(cfg), icache_(cfg.icacheBytes, cfg.icacheMissLatency)
{
}

void
FrontEnd::closeCycle()
{
    bins_.add(openActive_ ? openBin_ : CycleBin::STALL, 1);
    ++now_;
    openUops_ = 0;
    openInsts_ = 0;
    openActive_ = false;
}

void
FrontEnd::fetchBreak()
{
    if (openActive_)
        closeCycle();
}

void
FrontEnd::idleUntil(uint64_t until, CycleBin bin)
{
    if (until <= now_)
        return;
    if (openActive_)
        closeCycle();
    if (until > now_) {
        bins_.add(bin, until - now_);
        now_ = until;
    }
}

uint64_t
FrontEnd::fetchIcacheInst(uint32_t pc, unsigned num_uops)
{
    // Switching away from the frame cache costs turnaround cycles.
    if (lastSource_ == CycleBin::FRAME) {
        if (openActive_)
            closeCycle();
        bins_.add(CycleBin::WAIT, cfg_.waitCycles);
        now_ += cfg_.waitCycles;
        lastSource_ = CycleBin::ICACHE;
    }

    const unsigned miss = icache_.fetch(pc);
    if (miss) {
        if (openActive_)
            closeCycle();
        bins_.add(CycleBin::MISS, miss);
        now_ += miss;
    }

    if (openActive_ && (openInsts_ >= cfg_.decodeWidth ||
                        openUops_ + num_uops > cfg_.fetchUopWidth)) {
        closeCycle();
    }

    openActive_ = true;
    openBin_ = CycleBin::ICACHE;
    lastSource_ = CycleBin::ICACHE;
    ++openInsts_;
    openUops_ += num_uops;
    return now_;
}

uint64_t
FrontEnd::fetchFrameUop()
{
    if (openActive_ && openBin_ == CycleBin::ICACHE)
        closeCycle();
    if (openActive_ && openUops_ >= cfg_.fetchUopWidth)
        closeCycle();

    openActive_ = true;
    openBin_ = CycleBin::FRAME;
    lastSource_ = CycleBin::FRAME;
    ++openUops_;
    return now_;
}

void
FrontEnd::finish(uint64_t last_retire)
{
    if (openActive_)
        closeCycle();
    if (last_retire > now_) {
        bins_.add(CycleBin::STALL, last_retire - now_);
        now_ = last_retire;
    }
}

} // namespace replay::timing
