/**
 * @file
 * The fetch engine: owns the fetch clock, the instruction cache, the
 * per-cycle fetch bandwidth rules (4 x86 instructions per cycle
 * through the decoders, 8 micro-ops per cycle from the frame/trace
 * cache), the cache-switch Wait cycles, and the cycle-bin accounting
 * of §6.1 — every cycle the machine spends is attributed here.
 */

#ifndef REPLAY_TIMING_FETCH_HH
#define REPLAY_TIMING_FETCH_HH

#include "timing/accounting.hh"
#include "timing/cache.hh"
#include "timing/pipeline.hh"

namespace replay::timing {

/** The fetch stage / cycle master. */
class FrontEnd
{
  public:
    explicit FrontEnd(const PipelineConfig &cfg);

    uint64_t now() const { return now_; }
    CycleAccounting &bins() { return bins_; }
    const CycleAccounting &bins() const { return bins_; }

    /**
     * Fetch one x86 instruction through the ICache/decoder path.
     * Handles cache switching, ICache misses, and decode grouping.
     * @return the fetch cycle assigned to the instruction's micro-ops
     */
    uint64_t fetchIcacheInst(uint32_t pc, unsigned num_uops);

    /**
     * Fetch one micro-op from the frame/trace cache.
     * @return the fetch cycle assigned to it
     */
    uint64_t fetchFrameUop();

    /** End the current fetch group (taken branch, frame boundary). */
    void fetchBreak();

    /**
     * Stop fetching until @p until, attributing the idle cycles to
     * @p bin (no-op when already past it).
     */
    void idleUntil(uint64_t until, CycleBin bin);

    /**
     * Finish the run: close the open cycle and attribute the
     * fetch-to-drain tail up to @p last_retire as Stall cycles, so the
     * bins sum to the total execution time.
     */
    void finish(uint64_t last_retire);

    ICacheModel &icache() { return icache_; }

  private:
    /** Attribute the open cycle and advance the clock. */
    void closeCycle();

    const PipelineConfig &cfg_;
    ICacheModel icache_;
    CycleAccounting bins_;

    uint64_t now_ = 0;
    unsigned openUops_ = 0;     ///< micro-ops fetched this cycle
    unsigned openInsts_ = 0;    ///< x86 insts decoded this cycle
    CycleBin openBin_ = CycleBin::ICACHE;
    bool openActive_ = false;   ///< anything fetched this cycle?
    CycleBin lastSource_ = CycleBin::ICACHE; ///< last productive source
};

} // namespace replay::timing

#endif // REPLAY_TIMING_FETCH_HH
