#include "timing/predictor.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace replay::timing {

using x86::Form;
using x86::Mnem;

BranchPredictor::BranchPredictor() : BranchPredictor(Params()) {}

BranchPredictor::BranchPredictor(Params params)
    : params_(params), counters_(1u << params.gshareBits, 1),
      historyMask_(uint32_t(mask(params.gshareBits))),
      btb_(params.btbEntries), btbSets_(params.btbEntries /
                                        params.btbAssoc),
      ras_(params.rasEntries, 0)
{
    panic_if(!isPow2(params.btbEntries) || !isPow2(params.btbAssoc),
             "BTB geometry must be power-of-two");
}

unsigned
BranchPredictor::gshareIndex(uint32_t pc) const
{
    return ((pc >> 1) ^ history_) & historyMask_;
}

bool
BranchPredictor::btbLookup(uint32_t pc, uint32_t &target)
{
    const uint32_t set = (pc >> 1) & (btbSets_ - 1);
    BtbEntry *base = &btb_[set * params_.btbAssoc];
    for (unsigned w = 0; w < params_.btbAssoc; ++w) {
        if (base[w].valid && base[w].tag == pc) {
            base[w].lastUse = ++useClock_;
            target = base[w].target;
            return true;
        }
    }
    return false;
}

void
BranchPredictor::btbInsert(uint32_t pc, uint32_t target)
{
    const uint32_t set = (pc >> 1) & (btbSets_ - 1);
    BtbEntry *base = &btb_[set * params_.btbAssoc];
    BtbEntry *victim = base;
    for (unsigned w = 0; w < params_.btbAssoc; ++w) {
        BtbEntry &e = base[w];
        if (e.valid && e.tag == pc) {
            victim = &e;
            break;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lastUse = ++useClock_;
}

bool
BranchPredictor::predictDirection(uint32_t pc) const
{
    return counters_[gshareIndex(pc)] >= 2;
}

bool
BranchPredictor::predictAndTrain(const trace::TraceRecord &rec)
{
    const x86::Inst &in = rec.inst;
    bool mispredict = false;

    if (in.isCondBranch()) {
        const unsigned idx = gshareIndex(rec.pc);
        const bool predicted_taken = counters_[idx] >= 2;
        // Direction.
        if (predicted_taken != rec.taken)
            mispredict = true;
        // Target for predicted-taken paths.
        if (rec.taken && !mispredict) {
            uint32_t target = 0;
            if (!btbLookup(rec.pc, target) || target != rec.nextPc)
                mispredict = true;      // BTB miss counts (§6.1)
        }
        // Train.
        if (rec.taken && counters_[idx] < 3)
            ++counters_[idx];
        else if (!rec.taken && counters_[idx] > 0)
            --counters_[idx];
        history_ = ((history_ << 1) | (rec.taken ? 1 : 0)) &
                   historyMask_;
        if (rec.taken)
            btbInsert(rec.pc, rec.nextPc);
    } else if (in.mnem == Mnem::CALL) {
        // Push the return address; direct calls redirect in decode,
        // indirect ones need the BTB.
        if (in.form != Form::REL) {
            uint32_t target = 0;
            if (!btbLookup(rec.pc, target) || target != rec.nextPc)
                mispredict = true;
            btbInsert(rec.pc, rec.nextPc);
        }
        ras_[rasTop_] = rec.pc + rec.length;
        rasTop_ = (rasTop_ + 1) % ras_.size();
    } else if (in.mnem == Mnem::RET) {
        rasTop_ = (rasTop_ + ras_.size() - 1) % ras_.size();
        if (ras_[rasTop_] != rec.nextPc)
            mispredict = true;
    } else if (in.mnem == Mnem::JMP && in.form != Form::REL) {
        uint32_t target = 0;
        if (!btbLookup(rec.pc, target) || target != rec.nextPc)
            mispredict = true;
        btbInsert(rec.pc, rec.nextPc);
    }
    // Direct JMP/CALL: the decoder redirects; no resolution penalty.

    if (mispredict)
        ++mispredicts_;
    ++branches_;
    return mispredict;
}

} // namespace replay::timing
