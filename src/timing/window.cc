#include "timing/window.hh"

#include <algorithm>

#include "util/logging.hh"

namespace replay::timing {

using uop::Op;

FuClass
fuClassOf(uop::Op op)
{
    switch (op) {
      case Op::MUL:
      case Op::DIVQ:
      case Op::DIVR:
        return FuClass::COMPLEX;
      case Op::FADD:
      case Op::FSUB:
      case Op::FMUL:
      case Op::FDIV:
        return FuClass::FPU;
      case Op::LOAD:
      case Op::STORE:
      case Op::FLOAD:
      case Op::FSTORE:
        return FuClass::LSU;
      default:
        return FuClass::SIMPLE;
    }
}

ExecModel::ExecModel(ExecParams params, MemoryHierarchy &mem)
    : params_(params), mem_(mem), ringCycle_(RING, ~0ULL),
      dispatchRing_(RING, 0), issueRing_(RING, 0), retireRing_(RING, 0),
      windowRetire_(params.windowSize, 0),
      storeMap_(STORE_MAP, {0xffffffff, 0})
{
    for (auto &ring : fuRing_)
        ring.assign(RING, 0);
}

void
ExecModel::touchCycle(uint64_t cycle)
{
    const size_t idx = cycle & (RING - 1);
    if (ringCycle_[idx] != cycle) {
        ringCycle_[idx] = cycle;
        dispatchRing_[idx] = 0;
        issueRing_[idx] = 0;
        retireRing_[idx] = 0;
        for (auto &ring : fuRing_)
            ring[idx] = 0;
    }
}

uint64_t
ExecModel::reserveSlot(std::vector<uint8_t> &ring, uint64_t from,
                       unsigned limit)
{
    uint64_t cycle = from;
    for (unsigned guard = 0; guard < RING; ++guard, ++cycle) {
        touchCycle(cycle);
        uint8_t &count = ring[cycle & (RING - 1)];
        if (count < limit) {
            ++count;
            return cycle;
        }
    }
    panic("no free slot within %u cycles of %llu", RING,
          (unsigned long long)from);
}

unsigned
ExecModel::fuLimit(FuClass cls) const
{
    switch (cls) {
      case FuClass::SIMPLE:  return params_.simpleAlus;
      case FuClass::COMPLEX: return params_.complexAlus;
      case FuClass::FPU:     return params_.fpus;
      case FuClass::LSU:     return params_.lsus;
      default:               return 1;
    }
}

uint64_t
ExecModel::fetchBackpressure() const
{
    if (count_ < params_.windowSize)
        return 0;
    const uint64_t oldest_retire =
        windowRetire_[count_ % params_.windowSize];
    const uint64_t f2d = params_.fetchToDispatch;
    return oldest_retire > f2d ? oldest_retire - f2d : 0;
}

UopTiming
ExecModel::exec(uint64_t fetch_cycle, uop::Op op, uint8_t mem_size,
                const uint64_t *deps, unsigned num_deps,
                uint32_t mem_addr)
{
    UopTiming t;

    // ---- dispatch -------------------------------------------------------
    uint64_t dispatch = fetch_cycle + params_.fetchToDispatch;
    if (count_ >= params_.windowSize) {
        dispatch = std::max(dispatch,
                            windowRetire_[count_ % params_.windowSize]);
    }
    t.dispatch = reserveSlot(dispatchRing_, dispatch, params_.width);

    // ---- ready -----------------------------------------------------------
    uint64_t ready = t.dispatch + 1;
    for (unsigned d = 0; d < num_deps; ++d)
        ready = std::max(ready, deps[d]);

    // ---- issue: needs both an issue slot and a function unit ----------
    const FuClass cls = fuClassOf(op);
    const unsigned limit = fuLimit(cls);
    auto &fu_ring = fuRing_[unsigned(cls)];
    uint64_t cycle = ready;
    for (unsigned guard = 0;; ++guard, ++cycle) {
        panic_if(guard >= RING, "issue search overflow");
        touchCycle(cycle);
        const size_t idx = cycle & (RING - 1);
        if (issueRing_[idx] < params_.width && fu_ring[idx] < limit) {
            ++issueRing_[idx];
            ++fu_ring[idx];
            break;
        }
    }
    t.issue = cycle;

    // ---- completion -------------------------------------------------------
    unsigned latency = 1;
    switch (op) {
      case Op::MUL:
        latency = params_.mulLatency;
        break;
      case Op::DIVQ:
      case Op::DIVR:
        latency = params_.divLatency;
        break;
      case Op::FADD:
      case Op::FSUB:
      case Op::FMUL:
        latency = params_.fpLatency;
        break;
      case Op::FDIV:
        latency = params_.fpDivLatency;
        break;
      case Op::LOAD:
      case Op::FLOAD: {
        // Store-buffer bypass from the newest overlapping in-flight
        // store, else the cache hierarchy.
        uint64_t fwd = 0;
        for (uint32_t b = mem_addr & ~3u;
             b <= ((mem_addr + mem_size - 1) & ~3u); b += 4) {
            const auto &[saddr, scomplete] =
                storeMap_[(b >> 2) & (STORE_MAP - 1)];
            if (saddr == b && scomplete > t.issue)
                fwd = std::max(fwd, scomplete);
        }
        if (fwd) {
            t.complete = fwd + params_.forwardLatency;
        } else {
            const unsigned lat = mem_.access(mem_addr);
            t.l1Miss = mem_.lastMissedL1();
            t.complete = t.issue + lat +
                         (t.l1Miss ? params_.replayPenalty : 0);
        }
        break;
      }
      case Op::STORE:
      case Op::FSTORE: {
        latency = params_.storeLatency;
        t.complete = t.issue + latency;
        for (uint32_t b = mem_addr & ~3u;
             b <= ((mem_addr + mem_size - 1) & ~3u); b += 4) {
            storeMap_[(b >> 2) & (STORE_MAP - 1)] = {b, t.complete};
        }
        // Keep the line warm for subsequent loads.
        mem_.access(mem_addr);
        break;
      }
      default:
        break;
    }
    if (t.complete == 0)
        t.complete = t.issue + latency;

    // ---- in-order retirement ------------------------------------------------
    uint64_t retire = std::max(t.complete + 1, lastRetire_);
    t.retire = reserveSlot(retireRing_, retire, params_.width);
    lastRetire_ = t.retire;
    windowRetire_[count_ % params_.windowSize] = t.retire;
    ++count_;
    return t;
}

} // namespace replay::timing
