/**
 * @file
 * The out-of-order execution core model: a dataflow-plus-resources
 * scheduler over the dynamic micro-op stream.
 *
 * Micro-ops are presented in program order with the completion times
 * of their source values; the model computes dispatch (fetch-to-
 * dispatch pipeline depth, dispatch width, 512-entry window
 * occupancy), issue (issue width and the Table 2 function unit pools:
 * 6 simple ALUs, 2 complex ALUs, 3 FPUs, 4 load/store units),
 * completion (unit latency; loads go through the memory hierarchy,
 * with an extra replay penalty on L1 misses standing in for the
 * paper's speculative wakeup/rescheduling), and in-order retirement
 * (8 wide).
 */

#ifndef REPLAY_TIMING_WINDOW_HH
#define REPLAY_TIMING_WINDOW_HH

#include <cstdint>
#include <vector>

#include "timing/cache.hh"
#include "uop/uop.hh"

namespace replay::timing {

/** Function-unit classes. */
enum class FuClass : uint8_t
{
    SIMPLE,     ///< single-cycle integer / control
    COMPLEX,    ///< multiply / divide
    FPU,
    LSU,
    NUM_CLASSES,
};

/** Which unit an opcode needs. */
FuClass fuClassOf(uop::Op op);

/** Which unit a micro-op needs. */
inline FuClass fuClassOf(const uop::Uop &u) { return fuClassOf(u.op); }

/** Core parameters (Table 2). */
struct ExecParams
{
    unsigned width = 8;             ///< dispatch/issue/retire width
    unsigned windowSize = 512;
    unsigned fetchToDispatch = 13;  ///< yields >= 15-cycle BR resolve
    unsigned simpleAlus = 6;
    unsigned complexAlus = 2;
    unsigned fpus = 3;
    unsigned lsus = 4;
    unsigned mulLatency = 3;
    unsigned divLatency = 20;
    unsigned fpLatency = 4;
    unsigned fpDivLatency = 12;
    unsigned storeLatency = 1;
    unsigned forwardLatency = 1;    ///< store-buffer bypass
    unsigned replayPenalty = 2;     ///< speculative-wakeup replay
};

/** Per-uop computed schedule. */
struct UopTiming
{
    uint64_t dispatch = 0;
    uint64_t issue = 0;
    uint64_t complete = 0;
    uint64_t retire = 0;
    bool l1Miss = false;
};

/** The scheduler. */
class ExecModel
{
  public:
    ExecModel(ExecParams params, MemoryHierarchy &mem);

    /**
     * Schedule the next micro-op in program order.
     *
     * @param fetch_cycle when fetch delivered it
     * @param u           the micro-op (selects unit and latency)
     * @param deps        completion cycles of its source values
     * @param num_deps    number of entries in @p deps
     * @param mem_addr    runtime address for loads/stores
     */
    UopTiming
    exec(uint64_t fetch_cycle, const uop::Uop &u, const uint64_t *deps,
         unsigned num_deps, uint32_t mem_addr = 0)
    {
        return exec(fetch_cycle, u.op, u.memSize, deps, num_deps,
                    mem_addr);
    }

    /**
     * Field-based form for structure-of-arrays callers: scheduling
     * depends only on the opcode (unit and latency) and the access
     * width of memory micro-ops.
     */
    UopTiming exec(uint64_t fetch_cycle, uop::Op op, uint8_t mem_size,
                   const uint64_t *deps, unsigned num_deps,
                   uint32_t mem_addr = 0);

    /**
     * Earliest cycle at which fetch may deliver the next micro-op
     * without overflowing the window (given the fetch-to-dispatch
     * depth).  Fetch stalls until then — the Stall bin.
     */
    uint64_t fetchBackpressure() const;

    uint64_t lastRetire() const { return lastRetire_; }
    uint64_t uopsRetired() const { return count_; }

  private:
    /** First cycle >= @p from with a free slot in @p ring. */
    uint64_t reserveSlot(std::vector<uint8_t> &ring, uint64_t from,
                         unsigned limit);

    static constexpr unsigned RING = 1u << 15;

    ExecParams params_;
    MemoryHierarchy &mem_;

    // Per-cycle resource occupancy rings (epoch-validated).
    std::vector<uint64_t> ringCycle_;
    std::vector<uint8_t> dispatchRing_;
    std::vector<uint8_t> issueRing_;
    std::vector<uint8_t> retireRing_;
    std::vector<uint8_t> fuRing_[unsigned(FuClass::NUM_CLASSES)];

    /** Retire times of the last windowSize micro-ops. */
    std::vector<uint64_t> windowRetire_;
    uint64_t count_ = 0;
    uint64_t lastRetire_ = 0;

    /** Latest in-flight store completion per word address. */
    std::vector<std::pair<uint32_t, uint64_t>> storeMap_;
    static constexpr size_t STORE_MAP = 1u << 12;

    void touchCycle(uint64_t cycle);
    unsigned fuLimit(FuClass cls) const;
};

} // namespace replay::timing

#endif // REPLAY_TIMING_WINDOW_HH
