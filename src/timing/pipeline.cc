#include "timing/pipeline.hh"

#include <sstream>

namespace replay::timing {

std::string
PipelineConfig::describe() const
{
    std::ostringstream out;
    out << "Pipeline      " << exec.width << "-wide fetch/issue/retire\n"
        << "              x86 decoders: " << decodeWidth
        << " per cycle\n"
        << "              " << exec.fetchToDispatch + 2
        << " cycles (min) for BR resolution\n"
        << "Predictor     " << bpred.gshareBits << "-bit gshare\n"
        << "Inst Window   " << exec.windowSize << " instructions\n"
        << "ExeUnits      " << exec.simpleAlus << " simple ALU\n"
        << "              " << exec.complexAlus << " complex ALU\n"
        << "              " << exec.fpus << " FPUs\n"
        << "              " << exec.lsus << " load/store units\n"
        << "ICache        " << icacheBytes / 1024 << "kB\n"
        << "L1 DCache     " << mem.l1SizeBytes / 1024 << "kB, "
        << mem.l1HitLatency << " cycle hit\n"
        << "L2 Cache      " << mem.l2SizeBytes / 1024 << "kB, "
        << mem.l2HitLatency << " cycle hit\n"
        << "Memory        " << mem.memLatency << " cycles\n";
    return out.str();
}

} // namespace replay::timing
