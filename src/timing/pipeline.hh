/**
 * @file
 * Pipeline configuration (Table 2) shared by every simulated machine.
 */

#ifndef REPLAY_TIMING_PIPELINE_HH
#define REPLAY_TIMING_PIPELINE_HH

#include <string>

#include "timing/cache.hh"
#include "timing/predictor.hh"
#include "timing/window.hh"

namespace replay::timing {

/** Everything Table 2 specifies, plus front-end details. */
struct PipelineConfig
{
    ExecParams exec;
    BranchPredictor::Params bpred;
    MemoryHierarchy::Params mem;

    uint32_t icacheBytes = 8 * 1024;    ///< 64kB in the IC reference
    unsigned icacheMissLatency = 10;    ///< code fills from the L2
    unsigned decodeWidth = 4;           ///< x86 insts decoded per cycle
    unsigned fetchUopWidth = 8;         ///< micro-ops per fetch cycle
    unsigned waitCycles = 1;            ///< FCache->ICache turnaround
    unsigned redirectPenalty = 1;       ///< after branch resolution
    unsigned assertRecoveryPenalty = 5; ///< after the frame is ready to
                                        ///< retire (§6.1's pessimistic
                                        ///< recovery model)
    unsigned longflowFlushPenalty = 20;
    unsigned verifyRecoveryPenalty = 5; ///< rollback after the online
                                        ///< verifier rejects a frame
                                        ///< (same model as assert
                                        ///< recovery)

    /** Render the Table 2 rows. */
    std::string describe() const;
};

} // namespace replay::timing

#endif // REPLAY_TIMING_PIPELINE_HH
