/**
 * @file
 * Fetch-cycle accounting (§6.1, Figures 7 and 8).
 *
 * Every cycle is classified from the fetch stage's perspective into
 * exactly one of the bins, in the paper's priority order: Assert
 * (frame assertion recovery), Verify (rollback after the online frame
 * verifier rejects a dispatched frame — the robustness extension to
 * the paper's recovery model), Mispredict (unresolved mispredicted
 * branch or BTB miss), Miss (FCache/ICache miss), Stall (downstream
 * buffers full), Wait (FCache->ICache turnaround), Frame (fetching
 * from the frame cache), ICache (fetching from the ICache).
 */

#ifndef REPLAY_TIMING_ACCOUNTING_HH
#define REPLAY_TIMING_ACCOUNTING_HH

#include <array>
#include <cstdint>

namespace replay::timing {

enum class CycleBin : uint8_t
{
    ASSERT,
    VERIFY,
    MISPRED,
    MISS,
    STALL,
    WAIT,
    FRAME,
    ICACHE,
    NUM_BINS,
};

constexpr unsigned NUM_CYCLE_BINS =
    static_cast<unsigned>(CycleBin::NUM_BINS);

const char *cycleBinName(CycleBin bin);

/** Accumulates classified cycles. */
class CycleAccounting
{
  public:
    void
    add(CycleBin bin, uint64_t cycles)
    {
        bins_[static_cast<unsigned>(bin)] += cycles;
    }

    uint64_t
    get(CycleBin bin) const
    {
        return bins_[static_cast<unsigned>(bin)];
    }

    uint64_t
    total() const
    {
        uint64_t sum = 0;
        for (const uint64_t b : bins_)
            sum += b;
        return sum;
    }

    void
    merge(const CycleAccounting &other)
    {
        for (unsigned i = 0; i < NUM_CYCLE_BINS; ++i)
            bins_[i] += other.bins_[i];
    }

  private:
    std::array<uint64_t, NUM_CYCLE_BINS> bins_{};
};

} // namespace replay::timing

#endif // REPLAY_TIMING_ACCOUNTING_HH
