/**
 * @file
 * Set-associative cache timing models and the Table 2 memory
 * hierarchy: 32kB 2-cycle L1 data cache, 512kB 10-cycle L2, 50-cycle
 * memory; instruction caches of 8kB (rePLay / trace cache configs) or
 * 64kB (the IC reference).
 */

#ifndef REPLAY_TIMING_CACHE_HH
#define REPLAY_TIMING_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hh"

namespace replay::timing {

/** One level of set-associative cache with true-LRU replacement. */
class CacheModel
{
  public:
    CacheModel(std::string name, uint32_t size_bytes,
               uint32_t line_bytes, uint32_t assoc,
               unsigned hit_latency);

    /** Access a line; true on hit.  Misses fill the line. */
    bool access(uint32_t addr);

    /** Probe without side effects. */
    bool contains(uint32_t addr) const;

    unsigned hitLatency() const { return hitLatency_; }
    uint32_t lineBytes() const { return lineBytes_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    struct Way
    {
        uint32_t tag = 0;
        bool valid = false;
        uint64_t lastUse = 0;
    };

    uint32_t lineBytes_;
    uint32_t numSets_;
    uint32_t assoc_;
    unsigned hitLatency_;
    uint64_t useClock_ = 0;
    std::vector<Way> ways_;     ///< numSets_ x assoc_
    StatGroup stats_;
    // Bound once: StatGroup's map gives stable references, and access()
    // is too hot for a string lookup per call.
    Counter &hits_;
    Counter &misses_;
};

/** The data-side hierarchy: L1D -> L2 -> memory. */
class MemoryHierarchy
{
  public:
    struct Params
    {
        uint32_t l1SizeBytes = 32 * 1024;
        uint32_t l1LineBytes = 64;
        uint32_t l1Assoc = 4;
        unsigned l1HitLatency = 2;
        uint32_t l2SizeBytes = 512 * 1024;
        uint32_t l2LineBytes = 64;
        uint32_t l2Assoc = 8;
        unsigned l2HitLatency = 10;
        unsigned memLatency = 50;
    };

    MemoryHierarchy();
    explicit MemoryHierarchy(Params params);

    /** Latency of a data access; fills all levels. */
    unsigned access(uint32_t addr);

    /** Did the last access miss in the L1? */
    bool lastMissedL1() const { return lastMissedL1_; }

    CacheModel &l1() { return l1_; }
    CacheModel &l2() { return l2_; }

  private:
    Params params_;
    CacheModel l1_;
    CacheModel l2_;
    bool lastMissedL1_ = false;
};

/** Instruction-side: a single-level ICache backed by the L2/memory. */
class ICacheModel
{
  public:
    ICacheModel(uint32_t size_bytes, unsigned miss_latency,
                uint32_t line_bytes = 64, uint32_t assoc = 2);

    /**
     * Fetch the line containing @p addr.
     * @return 0 on hit, or the miss penalty in cycles.
     */
    unsigned fetch(uint32_t addr);

    CacheModel &cache() { return cache_; }

  private:
    CacheModel cache_;
    unsigned missLatency_;
};

} // namespace replay::timing

#endif // REPLAY_TIMING_CACHE_HH
