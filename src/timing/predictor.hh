/**
 * @file
 * Branch prediction: the 18-bit gshare of Table 2, a tagged BTB for
 * taken targets, and a return address stack for the x86 call/return
 * idiom.  Used only on the conventional fetch path — inside frames all
 * control has been converted to assertions, and the trace cache embeds
 * its branches but still consults the predictor for early exits.
 */

#ifndef REPLAY_TIMING_PREDICTOR_HH
#define REPLAY_TIMING_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "trace/record.hh"
#include "util/stats.hh"

namespace replay::timing {

/** gshare + BTB + RAS composite predictor. */
class BranchPredictor
{
  public:
    struct Params
    {
        unsigned gshareBits = 18;
        unsigned btbEntries = 4096;
        unsigned btbAssoc = 4;
        unsigned rasEntries = 16;
    };

    BranchPredictor();
    explicit BranchPredictor(Params params);

    /**
     * Predict the control transfer of @p rec, update all structures
     * with the actual outcome, and report whether the front end would
     * have been redirected late.
     *
     * @return true when the prediction (direction or target) was
     *         wrong — a full branch-resolution penalty; BTB misses on
     *         taken branches count too (§6.1's Mispredict bin).
     */
    bool predictAndTrain(const trace::TraceRecord &rec);

    /**
     * Predict only the direction of a conditional branch (trace-cache
     * internal-branch lookahead); no training.
     */
    bool predictDirection(uint32_t pc) const;

    StatGroup &stats() { return stats_; }

  private:
    struct BtbEntry
    {
        uint32_t tag = 0;
        uint32_t target = 0;
        bool valid = false;
        uint64_t lastUse = 0;
    };

    unsigned gshareIndex(uint32_t pc) const;
    bool btbLookup(uint32_t pc, uint32_t &target);
    void btbInsert(uint32_t pc, uint32_t target);

    Params params_;
    std::vector<uint8_t> counters_;     ///< 2-bit saturating
    uint32_t history_ = 0;
    uint32_t historyMask_;
    std::vector<BtbEntry> btb_;
    unsigned btbSets_;
    std::vector<uint32_t> ras_;
    size_t rasTop_ = 0;
    uint64_t useClock_ = 0;
    StatGroup stats_{"bpred"};
    Counter &mispredicts_{stats_.counter("mispredicts")};
    Counter &branches_{stats_.counter("branches")};
};

} // namespace replay::timing

#endif // REPLAY_TIMING_PREDICTOR_HH
