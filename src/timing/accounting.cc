#include "timing/accounting.hh"

namespace replay::timing {

const char *
cycleBinName(CycleBin bin)
{
    static const char *names[] = {"assert", "verify", "mispred", "miss",
                                  "stall", "wait", "frame", "icache"};
    return names[static_cast<unsigned>(bin)];
}

} // namespace replay::timing
