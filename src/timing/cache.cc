#include "timing/cache.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace replay::timing {

CacheModel::CacheModel(std::string name, uint32_t size_bytes,
                       uint32_t line_bytes, uint32_t assoc,
                       unsigned hit_latency)
    : lineBytes_(line_bytes), numSets_(size_bytes / line_bytes / assoc),
      assoc_(assoc), hitLatency_(hit_latency),
      ways_(numSets_ * assoc), stats_(std::move(name)),
      hits_(stats_.counter("hits")), misses_(stats_.counter("misses"))
{
    panic_if(!isPow2(line_bytes) || !isPow2(numSets_),
             "cache geometry must be power-of-two");
}

bool
CacheModel::access(uint32_t addr)
{
    const uint32_t line = addr / lineBytes_;
    const uint32_t set = line & (numSets_ - 1);
    const uint32_t tag = line / numSets_;
    Way *base = &ways_[set * assoc_];
    ++useClock_;

    for (uint32_t w = 0; w < assoc_; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useClock_;
            ++hits_;
            return true;
        }
    }
    // Miss: fill into the first invalid way, else the LRU way.
    Way *victim = base;
    for (uint32_t w = 0; w < assoc_; ++w) {
        Way &way = base[w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock_;
    ++misses_;
    return false;
}

bool
CacheModel::contains(uint32_t addr) const
{
    const uint32_t line = addr / lineBytes_;
    const uint32_t set = line & (numSets_ - 1);
    const uint32_t tag = line / numSets_;
    const Way *base = &ways_[set * assoc_];
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

MemoryHierarchy::MemoryHierarchy() : MemoryHierarchy(Params()) {}

MemoryHierarchy::MemoryHierarchy(Params params)
    : params_(params),
      l1_("l1d", params.l1SizeBytes, params.l1LineBytes, params.l1Assoc,
          params.l1HitLatency),
      l2_("l2", params.l2SizeBytes, params.l2LineBytes, params.l2Assoc,
          params.l2HitLatency)
{
}

unsigned
MemoryHierarchy::access(uint32_t addr)
{
    if (l1_.access(addr)) {
        lastMissedL1_ = false;
        return params_.l1HitLatency;
    }
    lastMissedL1_ = true;
    if (l2_.access(addr))
        return params_.l2HitLatency;
    return params_.memLatency;
}

ICacheModel::ICacheModel(uint32_t size_bytes, unsigned miss_latency,
                         uint32_t line_bytes, uint32_t assoc)
    : cache_("icache", size_bytes, line_bytes, assoc, 1),
      missLatency_(miss_latency)
{
}

unsigned
ICacheModel::fetch(uint32_t addr)
{
    return cache_.access(addr) ? 0 : missLatency_;
}

} // namespace replay::timing
