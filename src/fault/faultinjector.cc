#include "fault/faultinjector.hh"

#include <cstdio>
#include <filesystem>
#include <limits>
#include <vector>

#include "opt/optbuffer.hh"

namespace replay::fault {

using opt::Operand;
using opt::OptimizedFrame;
using uop::Op;
using uop::UReg;

namespace {

/**
 * Slots whose corruption is guaranteed semantically visible: the slot
 * value is bound to an architecturally live-out register at the frame
 * exit (not through a flags view), and the op computes a function of
 * its immediate for which imm != imm' implies value != value' for
 * every input (LIMM, ADD, SUB, XOR with the immediate operand form).
 */
std::vector<size_t>
armedSlots(const OptimizedFrame &body)
{
    std::vector<bool> live(body.size(), false);
    for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
        const auto reg = static_cast<UReg>(r);
        if (!opt::OptBuffer::archLiveOut(reg) || reg == UReg::FLAGS)
            continue;
        const Operand &binding = body.exit.regs[r];
        if (binding.isProd() && !binding.flagsView &&
            binding.idx < body.size())
            live[binding.idx] = true;
    }

    std::vector<size_t> out;
    for (size_t i = 0; i < body.size(); ++i) {
        if (!live[i])
            continue;
        const Op op = body.code.op[i];
        const bool imm_form = body.srcB[i].isNone();
        if (imm_form && (op == Op::LIMM || op == Op::ADD ||
                         op == Op::SUB || op == Op::XOR))
            out.push_back(i);
    }
    return out;
}

} // anonymous namespace

FaultInjector::FaultInjector(FaultConfig cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
}

bool
FaultInjector::corruptBody(OptimizedFrame &body, const char *site)
{
    const std::vector<size_t> slots = armedSlots(body);
    if (slots.empty()) {
        ++stats_.counter("no_target");
        return false;
    }
    const size_t slot = slots[rng_.below(slots.size())];
    Op &op = body.code.op[slot];
    int32_t &imm = body.code.imm[slot];

    // ADD <-> SUB opcode flip stays armed only when the two results
    // can never coincide (a+imm == a-imm iff 2*imm == 0 mod 2^32).
    const bool can_flip_op =
        (op == Op::ADD || op == Op::SUB) && imm != 0 &&
        imm != std::numeric_limits<int32_t>::min();
    if (can_flip_op && rng_.chance(0.25)) {
        op = op == Op::ADD ? Op::SUB : Op::ADD;
        ++stats_.counter(std::string(site) + "_op_flips");
    } else {
        imm ^= int32_t(1) << rng_.below(8);
        ++stats_.counter(std::string(site) + "_imm_flips");
    }
    return true;
}

bool
FaultInjector::maybeFlipOnFetch(OptimizedFrame &body)
{
    if (cfg_.fetchFlipRate <= 0.0 || !rng_.chance(cfg_.fetchFlipRate))
        return false;
    if (!corruptBody(body, "fetch"))
        return false;
    ++stats_.counter("fetch_flips");
    return true;
}

bool
FaultInjector::maybeSabotagePass(OptimizedFrame &body)
{
    if (cfg_.passSabotageRate <= 0.0 ||
        !rng_.chance(cfg_.passSabotageRate))
        return false;
    if (!corruptBody(body, "pass"))
        return false;
    ++stats_.counter("pass_sabotage");
    return true;
}

// All three hooks guard the rate before touching rng_: a disabled
// site must not perturb the deterministic stream the enabled sites
// consume.

bool
FaultInjector::maybeFailAlloc()
{
    if (cfg_.allocFailRate <= 0.0 || !rng_.chance(cfg_.allocFailRate))
        return false;
    ++stats_.counter("alloc_fails");
    return true;
}

bool
FaultInjector::maybeIoFault()
{
    if (cfg_.ioFaultRate <= 0.0 || !rng_.chance(cfg_.ioFaultRate))
        return false;
    ++stats_.counter("io_faults");
    return true;
}

bool
FaultInjector::maybeStall()
{
    if (cfg_.stallRate <= 0.0 || !rng_.chance(cfg_.stallRate))
        return false;
    ++stats_.counter("stalls");
    return true;
}

unsigned
FaultInjector::corruptFileBytes(const std::string &path, uint64_t seed,
                                double byte_rate, uint64_t skip_bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return 0;
    std::vector<uint8_t> bytes;
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);

    Rng rng(seed);
    unsigned flipped = 0;
    for (size_t i = skip_bytes; i < bytes.size(); ++i) {
        if (rng.chance(byte_rate)) {
            bytes[i] ^= uint8_t(1u << rng.below(8));
            ++flipped;
        }
    }
    if (!flipped)
        return 0;

    f = std::fopen(path.c_str(), "wb");
    if (!f)
        return 0;
    const bool wrote =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    std::fclose(f);
    return wrote ? flipped : 0;
}

uint64_t
FaultInjector::hashBody(const opt::OptimizedFrame &body)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](uint64_t v) {
        for (unsigned b = 0; b < 8; ++b) {
            h ^= (v >> (b * 8)) & 0xff;
            h *= 0x00000100000001b3ULL;
        }
    };
    for (size_t i = 0, n = body.size(); i < n; ++i) {
        mix(uint64_t(body.code.op[i]));
        mix(uint64_t(uint32_t(body.code.imm[i])));
    }
    return h;
}

bool
FaultInjector::truncateFile(const std::string &path, uint64_t keep_bytes)
{
    std::error_code ec;
    std::filesystem::resize_file(path, keep_bytes, ec);
    return !ec;
}

bool
FaultInjector::flipByteAt(const std::string &path, uint64_t offset,
                          uint8_t mask)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f)
        return false;
    uint8_t byte = 0;
    const bool ok = std::fseek(f, long(offset), SEEK_SET) == 0 &&
                    std::fread(&byte, 1, 1, f) == 1 &&
                    std::fseek(f, long(offset), SEEK_SET) == 0 &&
                    (byte ^= mask, std::fwrite(&byte, 1, 1, f) == 1);
    std::fclose(f);
    return ok;
}

} // namespace replay::fault
