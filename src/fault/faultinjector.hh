/**
 * @file
 * Seeded, config-driven fault injection for the resilience harness.
 *
 * Three injection sites model the failure classes a deployed rePLay
 * pipeline must survive:
 *
 *  (a) trace source   — bytes of a persisted trace file flipped or the
 *                       file truncated (static helpers; detection is
 *                       the trace container's checksums/length guard),
 *  (b) frame cache    — a bit flipped in a cached frame's micro-ops at
 *                       fetch time (SRAM soft error: the corruption
 *                       persists in the cache until quarantined),
 *  (c) optimizer pass — an optimized frame body mutated as if a pass
 *                       miscompiled it (wrong constant / wrong opcode).
 *
 * Sites (b) and (c) use *armed* mutations: the injector only corrupts
 * micro-ops whose value feeds an architecturally live-out exit binding
 * through an operation where any immediate change is guaranteed to
 * change the produced value (LIMM/ADD/SUB/XOR with an immediate
 * operand).  An armed corruption is therefore always semantically
 * visible at the frame boundary, which is what lets the fault campaign
 * claim a 100% detection obligation for the online verifier: a frame
 * carrying one can never legitimately pass verification.
 */

#ifndef REPLAY_FAULT_FAULTINJECTOR_HH
#define REPLAY_FAULT_FAULTINJECTOR_HH

#include <string>

#include "opt/optimizer.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace replay::fault {

/** Injection-rate knobs (all default off → no behaviour change). */
struct FaultConfig
{
    uint64_t seed = 1;

    /** P(flip a bit in the fetched frame's µops) per frame-cache hit. */
    double fetchFlipRate = 0.0;

    /** P(sabotage the optimized body) per frame leaving the optimizer. */
    double passSabotageRate = 0.0;

    /** P(frame-build allocation fails) per candidate (governor hook). */
    double allocFailRate = 0.0;

    /** P(a batched trace read faults) per fill (I/O-layer hook). */
    double ioFaultRate = 0.0;

    /** P(the run stalls for stallMillis) per checkpoint (watchdog). */
    double stallRate = 0.0;
    unsigned stallMillis = 20;

    bool
    enabled() const
    {
        return fetchFlipRate > 0.0 || passSabotageRate > 0.0 ||
               allocFailRate > 0.0 || ioFaultRate > 0.0 ||
               stallRate > 0.0;
    }
};

/** Deterministic fault source for one simulation run. */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultConfig cfg = {});

    /**
     * Site (b): possibly flip an immediate bit in @p body on a frame
     * cache fetch.  Returns true when a corruption was injected.
     */
    bool maybeFlipOnFetch(opt::OptimizedFrame &body);

    /**
     * Site (c): possibly mutate @p body as a miscompiling optimizer
     * pass would.  Returns true when a corruption was injected.
     */
    bool maybeSabotagePass(opt::OptimizedFrame &body);

    /**
     * Site (d): should the next frame-build allocation fail?  Wired
     * into the governor's alloc-failure hook so the sequencer survives
     * it exactly like a real std::bad_alloc.
     */
    bool maybeFailAlloc();

    /** Site (e): should the next batched trace read fault (EIO)? */
    bool maybeIoFault();

    /** Site (f): should this checkpoint stall (watchdog exercise)? */
    bool maybeStall();

    /**
     * Site (a): flip each payload byte of the file at @p path with
     * probability @p byte_rate, leaving the first @p skip_bytes (the
     * header) intact.  Returns the number of bytes flipped.
     */
    static unsigned corruptFileBytes(const std::string &path,
                                     uint64_t seed, double byte_rate,
                                     uint64_t skip_bytes);

    /** Site (a): truncate the file at @p path to @p keep_bytes. */
    static bool truncateFile(const std::string &path,
                             uint64_t keep_bytes);

    /**
     * Site (a), targeted variant: XOR the byte at @p offset with
     * @p mask.  The corruption-matrix tests aim this at one structural
     * field of a container (a magic, a length, a checksum) to prove
     * the exact field is guarded; corruptFileBytes() is the scattershot
     * version.  Applying the same mask twice restores the file.
     */
    static bool flipByteAt(const std::string &path, uint64_t offset,
                           uint8_t mask = 0xff);

    /**
     * Hash of @p body's mutable fields (opcodes and immediates).  The
     * sequencer compares against the pristine hash after an injection:
     * a second flip on the same bit reverts the first, and a reverted
     * body must not be accounted as corrupt.
     */
    static uint64_t hashBody(const opt::OptimizedFrame &body);

    StatGroup &stats() { return stats_; }

  private:
    /** Armed corruption of @p body; false if no eligible slot exists. */
    bool corruptBody(opt::OptimizedFrame &body, const char *site);

    FaultConfig cfg_;
    Rng rng_;
    StatGroup stats_{"fault"};
};

} // namespace replay::fault

#endif // REPLAY_FAULT_FAULTINJECTOR_HH
