/**
 * @file
 * Branch bias and indirect-target stability tracking.
 *
 * The frame constructor promotes *dynamically biased* branches into
 * assertions (§2).  The BiasTable observes retired conditional branches
 * and classifies each site; the TargetTable does the same for indirect
 * jumps (a stable observed target lets the constructor convert the jump
 * into a value assertion and keep building the frame — how the §3.3
 * return jump becomes removable).
 *
 * Both are finite, tagged, direct-mapped structures, as hardware would
 * be: conflicting sites steal each other's entries.
 */

#ifndef REPLAY_CORE_BIASTABLE_HH
#define REPLAY_CORE_BIASTABLE_HH

#include <cstdint>
#include <vector>

namespace replay::core {

/** Classification of a conditional branch site. */
enum class BranchBias : uint8_t
{
    UNKNOWN,        ///< not enough history
    NOT_BIASED,
    BIASED_TAKEN,
    BIASED_NOT_TAKEN,
};

/** Per-site taken/not-taken statistics with promotion thresholds. */
class BiasTable
{
  public:
    /**
     * @param entries        table size (power of two)
     * @param min_samples    history needed before classification
     * @param promote_num    bias threshold numerator
     * @param promote_den    bias threshold denominator (e.g. 15/16)
     */
    explicit BiasTable(unsigned entries = 4096,
                       unsigned min_samples = 16,
                       unsigned promote_num = 15,
                       unsigned promote_den = 16);

    /** Observe one retired conditional branch. */
    void record(uint32_t pc, bool taken);

    /** Classify a site from its current history. */
    BranchBias classify(uint32_t pc) const;

  private:
    struct Entry
    {
        uint32_t tag = 0;
        uint16_t taken = 0;
        uint16_t total = 0;
    };

    Entry &slot(uint32_t pc);
    const Entry *find(uint32_t pc) const;

    std::vector<Entry> entries_;
    unsigned indexMask_;
    unsigned minSamples_;
    unsigned promoteNum_;
    unsigned promoteDen_;
};

/** Per-site last-target stability for indirect jumps. */
class TargetTable
{
  public:
    explicit TargetTable(unsigned entries = 1024,
                         unsigned stable_threshold = 8);

    /** Observe one retired indirect jump. */
    void record(uint32_t pc, uint32_t target);

    /**
     * The stable target of a site, or 0 when the site's target is not
     * stable enough to promote.
     */
    uint32_t stableTarget(uint32_t pc) const;

  private:
    struct Entry
    {
        uint32_t tag = 0;
        uint32_t lastTarget = 0;
        uint16_t streak = 0;
    };

    std::vector<Entry> entries_;
    unsigned indexMask_;
    unsigned stableThreshold_;
};

} // namespace replay::core

#endif // REPLAY_CORE_BIASTABLE_HH
