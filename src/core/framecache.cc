#include "core/framecache.hh"

#include "util/logging.hh"

namespace replay::core {

FrameCache::FrameCache(unsigned capacity_uops) : capacity_(capacity_uops)
{
}

void
FrameCache::evictLru()
{
    panic_if(lru_.empty(), "evicting from an empty frame cache");
    const uint32_t victim_pc = lru_.back();
    auto it = frames_.find(victim_pc);
    occupied_ -= it->second.frame->numUops();
    lru_.pop_back();
    frames_.erase(it);
    ++stats_.counter("evictions");
}

void
FrameCache::insert(FramePtr frame)
{
    const unsigned size = frame->numUops();
    if (size > capacity_) {
        ++stats_.counter("rejected");
        return;
    }
    const uint32_t pc = frame->startPc;
    invalidate(pc);
    while (occupied_ + size > capacity_)
        evictLru();
    lru_.push_front(pc);
    frames_[pc] = Entry{std::move(frame), lru_.begin()};
    occupied_ += size;
    ++stats_.counter("inserts");
}

FramePtr
FrameCache::lookup(uint32_t pc)
{
    auto it = frames_.find(pc);
    if (it == frames_.end()) {
        ++stats_.counter("misses");
        return nullptr;
    }
    // Touch.
    lru_.erase(it->second.lruIt);
    lru_.push_front(pc);
    it->second.lruIt = lru_.begin();
    ++stats_.counter("hits");
    return it->second.frame;
}

FramePtr
FrameCache::probe(uint32_t pc) const
{
    const auto it = frames_.find(pc);
    return it == frames_.end() ? nullptr : it->second.frame;
}

void
FrameCache::invalidate(uint32_t pc)
{
    auto it = frames_.find(pc);
    if (it == frames_.end())
        return;
    occupied_ -= it->second.frame->numUops();
    lru_.erase(it->second.lruIt);
    frames_.erase(it);
    ++stats_.counter("invalidations");
}

} // namespace replay::core
