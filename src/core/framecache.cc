#include "core/framecache.hh"

#include "util/logging.hh"

namespace replay::core {

FrameCache::FrameCache(unsigned capacity_uops) : capacity_(capacity_uops)
{
}

void
FrameCache::evictLru()
{
    panic_if(frames_.empty(), "evicting from an empty frame cache");
    // Touch ticks are unique, so the strict minimum is exactly the
    // back of an LRU list.
    uint32_t victim_pc = 0;
    uint64_t victim_tick = UINT64_MAX;
    frames_.forEach([&](uint32_t pc, const Entry &entry) {
        if (entry.lastUsed < victim_tick) {
            victim_tick = entry.lastUsed;
            victim_pc = pc;
        }
    });
    Entry *victim = frames_.find(victim_pc);
    occupied_ -= victim->frame->numUops();
    frames_.erase(victim_pc);
    ++stats_.counter("evictions");
}

void
FrameCache::insert(FramePtr frame)
{
    const unsigned size = frame->numUops();
    if (size > capacity_) {
        ++stats_.counter("rejected");
        return;
    }
    const uint32_t pc = frame->startPc;
    invalidate(pc);
    while (occupied_ + size > capacity_)
        evictLru();
    Entry &entry = frames_[pc];
    entry.frame = std::move(frame);
    entry.lastUsed = ++tick_;
    occupied_ += size;
    ++stats_.counter("inserts");
}

FramePtr
FrameCache::lookup(uint32_t pc)
{
    Entry *entry = frames_.find(pc);
    if (!entry) {
        ++misses_;
        return nullptr;
    }
    entry->lastUsed = ++tick_;
    ++hits_;
    return entry->frame;
}

FramePtr
FrameCache::probe(uint32_t pc) const
{
    const Entry *entry = frames_.find(pc);
    return entry ? entry->frame : nullptr;
}

void
FrameCache::invalidate(uint32_t pc)
{
    Entry *entry = frames_.find(pc);
    if (!entry)
        return;
    occupied_ -= entry->frame->numUops();
    frames_.erase(pc);
    ++stats_.counter("invalidations");
}

} // namespace replay::core
