#include "core/framecache.hh"

#include "util/logging.hh"

namespace replay::core {

FrameCache::FrameCache(unsigned capacity_uops) : capacity_(capacity_uops)
{
}

void
FrameCache::setGovernor(ResourceGovernor *governor)
{
    sync::RoleGuard hold(role_);
    governor_ = governor;
    if (governor_) {
        governorId_ = governor_->registerConsumer("fcache");
        syncGovernorLocked();
    }
}

size_t
FrameCache::memoryBytes() const
{
    sync::RoleGuard hold(role_);
    return memoryBytesLocked();
}

size_t
FrameCache::memoryBytesLocked() const
{
    // Deterministic O(1) model of the cache's live footprint: the
    // micro-op bodies dominate; each resident frame also carries its
    // fixed header plus path metadata (one PC per covered x86
    // instruction, conservatively folded into a per-frame constant),
    // and the open-addressing index holds full capacity live.
    return size_t(occupied_) * sizeof(opt::FrameUop) +
           frames_.size() * PER_FRAME_OVERHEAD + frames_.memoryBytes();
}

unsigned
FrameCache::recountUops() const
{
    sync::RoleGuard hold(role_);
    return recountUopsLocked();
}

unsigned
FrameCache::recountUopsLocked() const
{
    unsigned total = 0;
    frames_.forEach([&](uint32_t, const Entry &entry) {
        total += entry.frame->numUops();
    });
    return total;
}

size_t
FrameCache::auditBytes() const
{
    sync::RoleGuard hold(role_);
    // memoryBytes() rebuilt from a walk over the resident frames
    // instead of the incrementally-maintained occupied_ counter; any
    // divergence between the two is a bookkeeping leak.
    return size_t(recountUopsLocked()) * sizeof(opt::FrameUop) +
           frames_.size() * PER_FRAME_OVERHEAD + frames_.memoryBytes();
}

void
FrameCache::syncGovernorLocked()
{
    if (governor_)
        governor_->update(governorId_, memoryBytesLocked());
}

bool
FrameCache::evictLruLocked(const char *counter)
{
    // Touch ticks are unique, so the strict minimum is exactly the
    // back of an LRU list.  The pinned entry (the frame currently
    // being sequenced) is never a victim.  Pinned state is copied to
    // locals so the scan closure touches no role-guarded fields
    // (closures cannot carry REQUIRES annotations).
    const bool pinned_valid = pinnedValid_;
    const uint32_t pinned_pc = pinnedPc_;
    uint32_t victim_pc = 0;
    uint64_t victim_tick = UINT64_MAX;
    frames_.forEach([&](uint32_t pc, const Entry &entry) {
        if (pinned_valid && pc == pinned_pc)
            return;
        if (entry.lastUsed < victim_tick) {
            victim_tick = entry.lastUsed;
            victim_pc = pc;
        }
    });
    if (victim_tick == UINT64_MAX)
        return false;
    Entry *victim = frames_.find(victim_pc);
    occupied_ -= victim->frame->numUops();
    frames_.erase(victim_pc);
    ++stats_.counter(counter);
    syncGovernorLocked();
    if (onEvict_)
        onEvict_(victim_pc);
    return true;
}

bool
FrameCache::shedLru()
{
    sync::RoleGuard hold(role_);
    return evictLruLocked("pressure_sheds");
}

unsigned
FrameCache::shedToUops(unsigned target_uops)
{
    sync::RoleGuard hold(role_);
    unsigned shed = 0;
    while (occupied_ > target_uops &&
           evictLruLocked("pressure_sheds")) {
        ++shed;
    }
    return shed;
}

void
FrameCache::pin(uint32_t pc)
{
    sync::RoleGuard hold(role_);
    pinnedValid_ = true;
    pinnedPc_ = pc;
}

void
FrameCache::unpin()
{
    sync::RoleGuard hold(role_);
    pinnedValid_ = false;
}

void
FrameCache::insert(FramePtr frame)
{
    sync::RoleGuard hold(role_);
    const unsigned size = frame->numUops();
    if (size > capacity_) {
        ++stats_.counter("rejected");
        return;
    }
    const uint32_t pc = frame->startPc;
    invalidateLocked(pc);
    while (occupied_ + size > capacity_) {
        if (!evictLruLocked("evictions")) {
            // Only the pinned frame is left and the newcomer still
            // does not fit: reject it rather than evict the frame
            // being sequenced.
            ++stats_.counter("rejected");
            return;
        }
    }
    Entry &entry = frames_[pc];
    entry.frame = std::move(frame);
    entry.lastUsed = ++tick_;
    occupied_ += size;
    ++stats_.counter("inserts");
    syncGovernorLocked();
}

FramePtr
FrameCache::lookup(uint32_t pc)
{
    sync::RoleGuard hold(role_);
    Entry *entry = frames_.find(pc);
    if (!entry) {
        ++misses_;
        return nullptr;
    }
    entry->lastUsed = ++tick_;
    ++hits_;
    return entry->frame;
}

FramePtr
FrameCache::probe(uint32_t pc) const
{
    sync::RoleGuard hold(role_);
    const Entry *entry = frames_.find(pc);
    return entry ? entry->frame : nullptr;
}

void
FrameCache::invalidate(uint32_t pc)
{
    sync::RoleGuard hold(role_);
    invalidateLocked(pc);
}

void
FrameCache::invalidateLocked(uint32_t pc)
{
    Entry *entry = frames_.find(pc);
    if (!entry)
        return;
    occupied_ -= entry->frame->numUops();
    frames_.erase(pc);
    ++stats_.counter("invalidations");
    syncGovernorLocked();
    if (onEvict_)
        onEvict_(pc);
}

bool
FrameCache::publish(uint32_t pc, FramePtr next)
{
    sync::RoleGuard hold(role_);
    return publishLocked(pc, std::move(next));
}

bool
FrameCache::publishLocked(uint32_t pc, FramePtr next)
{
    Entry *entry = frames_.find(pc);
    panic_if(!entry, "publish to a non-resident start pc %#x", pc);
    panic_if(isPinnedLocked(pc),
             "publish to the pinned (in-flight) entry");
    const unsigned old_size = entry->frame->numUops();
    const unsigned new_size = next->numUops();
    if (new_size > old_size &&
        occupied_ - old_size + new_size > capacity_) {
        ++stats_.counter("publish_rejects");
        return false;
    }
    entry->frame = std::move(next);
    // Republication is the one path where a resident body's size
    // changes underneath the occupancy model, so rebuild the counter
    // from the table instead of trusting an increment — publishes are
    // orders of magnitude rarer than lookups, and a drifted model
    // would silently skew governor pressure for the rest of the run.
    occupied_ = recountUopsLocked();
    // lastUsed is deliberately untouched: publication replaces the
    // body in place and must not perturb LRU victim selection.
    ++stats_.counter("publishes");
    syncGovernorLocked();
    return true;
}

} // namespace replay::core
