#include "core/sequencer.hh"

#include <algorithm>

#include "fault/faultinjector.hh"
#include "util/logging.hh"

namespace replay::core {

RePlayEngine::RePlayEngine(EngineConfig cfg)
    : cfg_(cfg), constructor_(cfg.constructor),
      optimizer_(cfg.optConfig), cheapOptimizer_(cfg.cheapOptConfig),
      optPipe_(cfg.optPipelineDepth, cfg.optCyclesPerUop),
      cache_(cfg.fcacheCapacityUops), quarantine_(cfg.quarantine)
{
    if (cfg_.governor) {
        cache_.setGovernor(cfg_.governor);
        govPoolId_ = cfg_.governor->registerConsumer("frame_pool");
        govQuarantineId_ = cfg_.governor->registerConsumer("quarantine");
    }
    if (cfg_.optimize && cfg_.tier.workers > 0) {
        tier_ = std::make_unique<TierEngine>(cfg_.tier, cfg_.optConfig);
        // Stale-work leak fix: a frame leaving the cache (capacity
        // eviction, pressure shed, bias eviction, quarantine) takes
        // its pending re-optimization job with it.  The closure runs
        // under the cache role and touches only tier_ and a counter —
        // both deliberately unguarded (closures cannot carry REQUIRES;
        // see the file comment in sequencer.hh).
        cache_.setEvictionListener([this](uint32_t pc) {
            tierCancelled_ += tier_->cancelPending(pc);
        });
        if (cfg_.governor)
            govTierId_ = cfg_.governor->registerConsumer("tier_queue");
    }
}

void
RePlayEngine::syncGovernorLocked()
{
    if (!cfg_.governor)
        return;
    cfg_.governor->update(govPoolId_, framePool_.arenaFootprintBytes());
    cfg_.governor->update(govQuarantineId_, quarantine_.memoryBytes());
    if (tier_)
        cfg_.governor->update(govTierId_, tier_->memoryBytes());
}

void
RePlayEngine::relievePressureLocked()
{
    if (!cfg_.governor)
        return;
    // Background re-optimization work sheds first: it is strictly
    // optional (the cheap bodies it would replace keep running) and
    // dropping it frees memory without giving up any cached frame.
    if (tier_ && cfg_.governor->pressure() >= Pressure::SOFT) {
        const unsigned dropped = tier_->shedPending();
        if (dropped) {
            tierShed_ += dropped;
            syncGovernorLocked();
        }
    }
    // Shed LRU frames one at a time, rechecking between evictions so
    // exactly enough is released; the frame being sequenced is pinned
    // and never a victim.
    while (cfg_.governor->pressure() >= Pressure::SOFT &&
           cache_.shedLru()) {
        ++govShedFrames_;
    }
}

void
RePlayEngine::enqueueCandidateLocked(FrameCandidate &cand, uint64_t now)
{
    // Do not rebuild a frame that is already cached for this start PC
    // with the same span (common when the same cold path repeats
    // before the frame gets hot enough to fetch) — or one that is
    // still in flight in the optimization pipeline.  A shorter
    // candidate never displaces a longer frame: the constructor's goal
    // is the largest atomic region, and short variants otherwise arise
    // from every observed early exit (a frame whose assertions keep
    // firing is instead removed by bias eviction, making room for the
    // shorter variant).
    if (cfg_.governor) {
        // Degradation ladder, worst rung first: under CRITICAL
        // pressure no frame is built at all — fetch continues on the
        // conventional path, which needs no new memory.
        if (cfg_.governor->pressure() == Pressure::CRITICAL) {
            ++govSuspended_;
            return;
        }
        // Chaos hook: an injected allocation failure at the candidate
        // build site is survived the same way a real one is below —
        // the candidate is dropped and the pipeline keeps running.
        if (cfg_.governor->allocWouldFail()) {
            ++allocFailures_;
            return;
        }
    }
    if (quarantine_.blocked(cand.startPc, now)) {
        ++stats_.counter("quarantine_candidate_drops");
        return;
    }
    if (const FramePtr existing = cache_.probe(cand.startPc)) {
        if (existing->pcs == cand.pcs ||
            existing->pcs.size() >= cand.pcs.size()) {
            ++duplicateCandidates_;
            return;
        }
    }
    for (const auto &pending : pending_) {
        if (pending.frame->startPc == cand.startPc &&
            pending.frame->pcs.size() >= cand.pcs.size()) {
            ++duplicateCandidates_;
            return;
        }
    }

    profile_.observeInstance(cand.records);

    uint64_t ready_at = now;
    if (cfg_.optimize) {
        const auto done = optPipe_.schedule(now, unsigned(cand.uops.size()));
        if (!done) {
            ++stats_.counter("optimizer_drops");
            return;
        }
        ready_at = *done;
    }

    // The frame build allocates (pool growth, vector copies, optimizer
    // scratch); a real std::bad_alloc anywhere in it is survived by
    // dropping this candidate — the sequencer keeps serving frames it
    // already has and fetch keeps running conventionally.
    try {
        // A recycled frame keeps its vector capacities; everything
        // else is reassigned below, and the optimizer overwrites body
        // wholesale.
        FramePtr frame = framePool_.acquire();
        frame->id = nextFrameId_++;
        frame->startPc = cand.startPc;
        frame->pcs = cand.pcs;  // copy: the candidate's buffer recycles
        frame->nextPc = cand.nextPc;
        frame->dynamicExit = cand.dynamicExit;
        frame->numBlocks = cand.numBlocks;
        frame->fetches = 0;
        frame->assertFires = 0;
        frame->conflicts = 0;
        frame->tier = FrameTier::FULL;
        frame->generation = 0;
        if (!cfg_.optimize) {
            opt::Optimizer::passthrough(cand.uops, cand.blocks, true,
                                        frame->body);
        } else if (cfg_.governor &&
                   cfg_.governor->pressure() >= Pressure::HARD) {
            // HARD pressure: the cheap pass subset keeps deposits
            // flowing without the full pipeline's scratch footprint;
            // the static verifier discharges the same obligations.
            cheapOptimizer_.optimize(cand.uops, cand.blocks, &profile_,
                                     optStats_, frame->body);
            ++govCheapOpts_;
            if (tier_)
                frame->tier = FrameTier::CHEAP;
        } else if (tier_) {
            // Tiered admission: the cheap subset gets the frame into
            // the cache immediately; the background workers re-run
            // the full budget once it proves hot.
            cheapOptimizer_.optimize(cand.uops, cand.blocks, &profile_,
                                     optStats_, frame->body);
            frame->tier = FrameTier::CHEAP;
        } else {
            optimizer_.optimize(cand.uops, cand.blocks, &profile_,
                                optStats_, frame->body);
        }

        bool sabotaged = false;
        uint64_t pristine = 0;
        if (cfg_.injector) {
            pristine = fault::FaultInjector::hashBody(frame->body);
            if (cfg_.injector->maybeSabotagePass(frame->body)) {
                sabotaged =
                    fault::FaultInjector::hashBody(frame->body) !=
                    pristine;
                ++stats_.counter("fault_pass_sabotage");
            }
        }
        frame->bodyHash = pristine;
        frame->faultInjected = sabotaged;
        frame->unsafeStores.clear();
        const opt::OptimizedFrame &body = frame->body;
        for (size_t i = 0; i < body.size(); ++i) {
            if (body.unsafe[i] &&
                (body.code.attr[i] & uop::UA_KIND_STORE)) {
                frame->unsafeStores.push_back(
                    {body.code.instIdx[i], body.code.memSeq[i]});
            }
        }
        std::sort(frame->unsafeStores.begin(),
                  frame->unsafeStores.end());

        pending_.push_back({ready_at, std::move(frame)});
        ++candidates_;
    } catch (const std::bad_alloc &) {
        ++allocFailures_;
        return;
    }
    syncGovernorLocked();
}

void
RePlayEngine::drainReady(uint64_t now)
{
    sync::RoleGuard hold(seqRole_);
    drainReadyLocked(now);
}

void
RePlayEngine::drainReadyLocked(uint64_t now)
{
    drainTierLocked();
    while (!pending_.empty() && pending_.front().readyAt <= now) {
        // SOFT pressure and worse: stop admitting new frames — the
        // cache is the largest shrinkable consumer, so growing it
        // under pressure would immediately be shed again.
        if (cfg_.governor &&
            cfg_.governor->pressure() >= Pressure::SOFT) {
            ++govAdmitRejects_;
            pending_.pop_front();
            continue;
        }
        cache_.insert(std::move(pending_.front().frame));
        pending_.pop_front();
    }
    syncGovernorLocked();
    relievePressureLocked();
}

void
RePlayEngine::observeRetired(const trace::TraceRecord &rec, uint64_t now)
{
    sync::RoleGuard hold(seqRole_);
    drainReadyLocked(now);
    auto candidate = constructor_.observe(rec);
    if (candidate) {
        enqueueCandidateLocked(*candidate, now);
        constructor_.recycle(std::move(*candidate));
    }
}

FramePtr
RePlayEngine::frameFor(uint32_t pc, uint64_t now)
{
    sync::RoleGuard hold(seqRole_);
    drainReadyLocked(now);
    if (quarantine_.blocked(pc, now)) {
        ++stats_.counter("quarantine_blocks");
        return nullptr;
    }
    FramePtr frame = cache_.lookup(pc);
    if (!frame)
        return nullptr;
    // Pin the in-flight entry: pressure shedding between now and the
    // frame's commit/abort must not victimize the frame being
    // sequenced (the matching unpin is in frameCommitted /
    // frameAborted / frameQuarantined).
    cache_.pin(pc);
    if (cfg_.injector && cfg_.injector->maybeFlipOnFetch(frame->body)) {
        frame->faultInjected =
            fault::FaultInjector::hashBody(frame->body) !=
            frame->bodyHash;
        ++stats_.counter("fault_fetch_flips");
    }
    return frame;
}

void
RePlayEngine::frameCommitted(const FramePtr &frame)
{
    sync::RoleGuard hold(seqRole_);
    cache_.unpin();
    ++frame->fetches;
    ++frameCommits_;
    maybeScheduleReoptLocked(frame);
}

void
RePlayEngine::maybeScheduleReoptLocked(const FramePtr &frame)
{
    if (!tier_ || !tier_->wantsReopt(*frame))
        return;
    if (cfg_.governor) {
        // Under pressure the tier engine only sheds work, it never
        // creates more; and the snapshot is an allocation site like
        // any other for the chaos campaign.
        if (cfg_.governor->pressure() >= Pressure::SOFT)
            return;
        if (cfg_.governor->allocWouldFail()) {
            ++allocFailures_;
            return;
        }
    }
    try {
        tier_->enqueue(*frame, profile_);
        ++tierEnqueues_;
    } catch (const std::bad_alloc &) {
        ++allocFailures_;
    }
    syncGovernorLocked();
}

void
RePlayEngine::drainTierLocked()
{
    if (!tier_)
        return;
    // Explicit inbox loop (see TierEngine's drain protocol): stop at
    // the first DEFER so publication order stays stable; a consumed
    // result retires its start PC from the in-flight set.
    tier_->refreshInbox();
    while (tier_->hasInboxResult()) {
        if (publishReoptLocked(tier_->inboxFront()) ==
            TierEngine::Verdict::DEFER) {
            return;
        }
        tier_->popInboxFront();
    }
}

TierEngine::Verdict
RePlayEngine::publishReoptLocked(ReoptResult &res)
{
    if (res.failed) {
        ++allocFailures_;
        return TierEngine::Verdict::CONSUMED;
    }
    // Versioned-slot check: publish only onto the exact frame the job
    // snapshotted.  A frame that was evicted, bias-replaced, or
    // rebuilt mid-flight makes the result stale.
    const FramePtr cur = cache_.probe(res.startPc);
    if (!cur || cur->id != res.frameId) {
        ++tierStaleDrops_;
        return TierEngine::Verdict::CONSUMED;
    }
    // Pinned-frame invariant: the entry the sequencer currently holds
    // is never swapped under it; the result waits for the next drain.
    if (cache_.isPinned(res.startPc)) {
        ++tierDeferrals_;
        return TierEngine::Verdict::DEFER;
    }
    if (cfg_.governor && cfg_.governor->allocWouldFail()) {
        // Injected allocation failure at the publication site: drop
        // the result; the cheap body keeps running.
        ++allocFailures_;
        return TierEngine::Verdict::CONSUMED;
    }
    try {
        FramePtr frame = framePool_.acquire();
        frame->id = nextFrameId_++;
        frame->startPc = cur->startPc;
        frame->pcs = cur->pcs;
        frame->nextPc = cur->nextPc;
        frame->dynamicExit = cur->dynamicExit;
        frame->numBlocks = cur->numBlocks;
        // Usage statistics carry across the swap so hotness and
        // bias-eviction thresholds keep their history.
        frame->fetches = cur->fetches;
        frame->assertFires = cur->assertFires;
        frame->conflicts = cur->conflicts;
        frame->tier = FrameTier::FULL;
        frame->generation = cur->generation + 1;
        frame->body = std::move(res.body);

        bool sabotaged = false;
        uint64_t pristine = 0;
        if (cfg_.injector) {
            pristine = fault::FaultInjector::hashBody(frame->body);
            if (cfg_.injector->maybeSabotagePass(frame->body)) {
                sabotaged =
                    fault::FaultInjector::hashBody(frame->body) !=
                    pristine;
                ++stats_.counter("fault_pass_sabotage");
            }
        }
        frame->bodyHash = pristine;
        frame->faultInjected = sabotaged;
        frame->unsafeStores.clear();
        const opt::OptimizedFrame &new_body = frame->body;
        for (size_t i = 0; i < new_body.size(); ++i) {
            if (new_body.unsafe[i] &&
                (new_body.code.attr[i] & uop::UA_KIND_STORE)) {
                frame->unsafeStores.push_back(
                    {new_body.code.instIdx[i], new_body.code.memSeq[i]});
            }
        }
        std::sort(frame->unsafeStores.begin(),
                  frame->unsafeStores.end());

        // Static verification gate before publication: a body the
        // linter rejects (including sabotaged ones) never replaces
        // the known-good cheap body.
        if (cfg_.tierVerify && !cfg_.tierVerify(*frame)) {
            ++tierVerifyRejects_;
            return TierEngine::Verdict::CONSUMED;
        }
        const unsigned old_uops = cur->numUops();
        const unsigned new_uops = frame->numUops();
        if (cache_.publish(res.startPc, std::move(frame))) {
            ++tierPublishes_;
            if (new_uops < old_uops)
                tierUopsRemoved_ += old_uops - new_uops;
        } else {
            ++tierStaleDrops_;
        }
        syncGovernorLocked();
    } catch (const std::bad_alloc &) {
        ++allocFailures_;
    }
    return TierEngine::Verdict::CONSUMED;
}

void
RePlayEngine::quiesceTier()
{
    sync::RoleGuard hold(seqRole_);
    if (!tier_)
        return;
    // Pending jobs are abandoned (counted), in-flight jobs drain, and
    // whatever completed gets one final publication pass — nothing is
    // pinned between trace records, so no result can be deferred
    // forever.
    tierDroppedAtExit_ += tier_->shedPending();
    tier_->waitIdle();
    drainTierLocked();
    tierDroppedAtExit_ += tier_->undrained();
}

void
RePlayEngine::frameAborted(const FramePtr &frame,
                           const FrameOutcome &outcome)
{
    sync::RoleGuard hold(seqRole_);
    cache_.unpin();
    ++frame->fetches;
    if (outcome.kind == FrameOutcome::Kind::UNSAFE_CONFLICT) {
        ++frame->conflicts;
        ++stats_.counter("unsafe_conflicts");
        // Never speculate on that store site again, and rebuild the
        // frame without it.
        for (const auto &ref : frame->unsafeStores) {
            if (ref.instIdx == outcome.faultIndex) {
                profile_.markDirty(frame->pcs[ref.instIdx],
                                   ref.memSeq);
            }
        }
        cache_.invalidate(frame->startPc);
        return;
    }

    ++frame->assertFires;
    ++assertFires_;
    // A frame whose assertions keep firing has a stale bias; evict it
    // so the constructor can rebuild along the new hot path.
    if (frame->assertFires >= cfg_.evictFireThreshold &&
        frame->assertFires * cfg_.evictFirePenalty >= frame->fetches) {
        cache_.invalidate(frame->startPc);
        ++stats_.counter("bias_evictions");
    }
}

void
RePlayEngine::frameQuarantined(const FramePtr &frame, uint64_t now)
{
    sync::RoleGuard hold(seqRole_);
    cache_.unpin();
    cache_.invalidate(frame->startPc);
    quarantine_.add(frame->startPc, now);
    ++stats_.counter("quarantines");
    syncGovernorLocked();
}

} // namespace replay::core
