#include "core/sequencer.hh"

#include <algorithm>

#include "fault/faultinjector.hh"
#include "util/logging.hh"

namespace replay::core {

RePlayEngine::RePlayEngine(EngineConfig cfg)
    : cfg_(cfg), constructor_(cfg.constructor),
      optimizer_(cfg.optConfig),
      optPipe_(cfg.optPipelineDepth, cfg.optCyclesPerUop),
      cache_(cfg.fcacheCapacityUops), quarantine_(cfg.quarantine)
{
}

void
RePlayEngine::enqueueCandidate(FrameCandidate &cand, uint64_t now)
{
    // Do not rebuild a frame that is already cached for this start PC
    // with the same span (common when the same cold path repeats
    // before the frame gets hot enough to fetch) — or one that is
    // still in flight in the optimization pipeline.  A shorter
    // candidate never displaces a longer frame: the constructor's goal
    // is the largest atomic region, and short variants otherwise arise
    // from every observed early exit (a frame whose assertions keep
    // firing is instead removed by bias eviction, making room for the
    // shorter variant).
    if (quarantine_.blocked(cand.startPc, now)) {
        ++stats_.counter("quarantine_candidate_drops");
        return;
    }
    if (const FramePtr existing = cache_.probe(cand.startPc)) {
        if (existing->pcs == cand.pcs ||
            existing->pcs.size() >= cand.pcs.size()) {
            ++duplicateCandidates_;
            return;
        }
    }
    for (const auto &pending : pending_) {
        if (pending.frame->startPc == cand.startPc &&
            pending.frame->pcs.size() >= cand.pcs.size()) {
            ++duplicateCandidates_;
            return;
        }
    }

    profile_.observeInstance(cand.records);

    uint64_t ready_at = now;
    if (cfg_.optimize) {
        const auto done = optPipe_.schedule(now, unsigned(cand.uops.size()));
        if (!done) {
            ++stats_.counter("optimizer_drops");
            return;
        }
        ready_at = *done;
    }

    // A recycled frame keeps its vector capacities; everything else is
    // reassigned below, and the optimizer overwrites body wholesale.
    FramePtr frame = framePool_.acquire();
    frame->id = nextFrameId_++;
    frame->startPc = cand.startPc;
    frame->pcs = cand.pcs;      // copy: the candidate's buffer recycles
    frame->nextPc = cand.nextPc;
    frame->dynamicExit = cand.dynamicExit;
    frame->numBlocks = cand.numBlocks;
    frame->fetches = 0;
    frame->assertFires = 0;
    frame->conflicts = 0;
    if (cfg_.optimize)
        optimizer_.optimize(cand.uops, cand.blocks, &profile_, optStats_,
                            frame->body);
    else
        opt::Optimizer::passthrough(cand.uops, cand.blocks, true,
                                    frame->body);

    bool sabotaged = false;
    uint64_t pristine = 0;
    if (cfg_.injector) {
        pristine = fault::FaultInjector::hashBody(frame->body);
        if (cfg_.injector->maybeSabotagePass(frame->body)) {
            sabotaged =
                fault::FaultInjector::hashBody(frame->body) != pristine;
            ++stats_.counter("fault_pass_sabotage");
        }
    }
    frame->bodyHash = pristine;
    frame->faultInjected = sabotaged;
    frame->unsafeStores.clear();
    for (size_t i = 0; i < frame->body.uops.size(); ++i) {
        const opt::FrameUop &fu = frame->body.uops[i];
        if (fu.unsafe && fu.uop.isStore()) {
            frame->unsafeStores.push_back(
                {fu.uop.instIdx, fu.uop.memSeq});
        }
    }
    std::sort(frame->unsafeStores.begin(), frame->unsafeStores.end());

    pending_.push_back({ready_at, std::move(frame)});
    ++candidates_;
}

void
RePlayEngine::drainReady(uint64_t now)
{
    while (!pending_.empty() && pending_.front().readyAt <= now) {
        cache_.insert(std::move(pending_.front().frame));
        pending_.pop_front();
    }
}

void
RePlayEngine::observeRetired(const trace::TraceRecord &rec, uint64_t now)
{
    drainReady(now);
    auto candidate = constructor_.observe(rec);
    if (candidate) {
        enqueueCandidate(*candidate, now);
        constructor_.recycle(std::move(*candidate));
    }
}

FramePtr
RePlayEngine::frameFor(uint32_t pc, uint64_t now)
{
    drainReady(now);
    if (quarantine_.blocked(pc, now)) {
        ++stats_.counter("quarantine_blocks");
        return nullptr;
    }
    FramePtr frame = cache_.lookup(pc);
    if (frame && cfg_.injector &&
        cfg_.injector->maybeFlipOnFetch(frame->body)) {
        frame->faultInjected =
            fault::FaultInjector::hashBody(frame->body) !=
            frame->bodyHash;
        ++stats_.counter("fault_fetch_flips");
    }
    return frame;
}

void
RePlayEngine::frameCommitted(const FramePtr &frame)
{
    ++frame->fetches;
    ++frameCommits_;
}

void
RePlayEngine::frameAborted(const FramePtr &frame,
                           const FrameOutcome &outcome)
{
    ++frame->fetches;
    if (outcome.kind == FrameOutcome::Kind::UNSAFE_CONFLICT) {
        ++frame->conflicts;
        ++stats_.counter("unsafe_conflicts");
        // Never speculate on that store site again, and rebuild the
        // frame without it.
        for (const auto &ref : frame->unsafeStores) {
            if (ref.instIdx == outcome.faultIndex) {
                profile_.markDirty(frame->pcs[ref.instIdx],
                                   ref.memSeq);
            }
        }
        cache_.invalidate(frame->startPc);
        return;
    }

    ++frame->assertFires;
    ++assertFires_;
    // A frame whose assertions keep firing has a stale bias; evict it
    // so the constructor can rebuild along the new hot path.
    if (frame->assertFires >= cfg_.evictFireThreshold &&
        frame->assertFires * cfg_.evictFirePenalty >= frame->fetches) {
        cache_.invalidate(frame->startPc);
        ++stats_.counter("bias_evictions");
    }
}

void
RePlayEngine::frameQuarantined(const FramePtr &frame, uint64_t now)
{
    cache_.invalidate(frame->startPc);
    quarantine_.add(frame->startPc, now);
    ++stats_.counter("quarantines");
}

} // namespace replay::core
