#include "core/sequencer.hh"

#include <algorithm>

#include "fault/faultinjector.hh"
#include "util/logging.hh"

namespace replay::core {

RePlayEngine::RePlayEngine(EngineConfig cfg)
    : cfg_(cfg), constructor_(cfg.constructor),
      optimizer_(cfg.optConfig),
      optPipe_(cfg.optPipelineDepth, cfg.optCyclesPerUop),
      cache_(cfg.fcacheCapacityUops), quarantine_(cfg.quarantine)
{
}

void
RePlayEngine::enqueueCandidate(FrameCandidate &&cand, uint64_t now)
{
    // Do not rebuild a frame that is already cached for this start PC
    // with the same span (common when the same cold path repeats
    // before the frame gets hot enough to fetch) — or one that is
    // still in flight in the optimization pipeline.  A shorter
    // candidate never displaces a longer frame: the constructor's goal
    // is the largest atomic region, and short variants otherwise arise
    // from every observed early exit (a frame whose assertions keep
    // firing is instead removed by bias eviction, making room for the
    // shorter variant).
    if (quarantine_.blocked(cand.startPc, now)) {
        ++stats_.counter("quarantine_candidate_drops");
        return;
    }
    if (const FramePtr existing = cache_.probe(cand.startPc)) {
        if (existing->pcs == cand.pcs ||
            existing->pcs.size() >= cand.pcs.size()) {
            ++stats_.counter("duplicate_candidates");
            return;
        }
    }
    for (const auto &pending : pending_) {
        if (pending.frame->startPc == cand.startPc &&
            pending.frame->pcs.size() >= cand.pcs.size()) {
            ++stats_.counter("duplicate_candidates");
            return;
        }
    }

    profile_.observeInstance(cand.records);

    opt::OptimizedFrame body;
    uint64_t ready_at = now;
    if (cfg_.optimize) {
        const auto done = optPipe_.schedule(now, unsigned(cand.uops.size()));
        if (!done) {
            ++stats_.counter("optimizer_drops");
            return;
        }
        ready_at = *done;
        body = optimizer_.optimize(cand.uops, cand.blocks, &profile_,
                                   optStats_);
    } else {
        body = opt::Optimizer::passthrough(cand.uops, cand.blocks);
    }

    bool sabotaged = false;
    uint64_t pristine = 0;
    if (cfg_.injector) {
        pristine = fault::FaultInjector::hashBody(body);
        if (cfg_.injector->maybeSabotagePass(body)) {
            sabotaged =
                fault::FaultInjector::hashBody(body) != pristine;
            ++stats_.counter("fault_pass_sabotage");
        }
    }

    auto frame = std::make_shared<Frame>();
    frame->id = nextFrameId_++;
    frame->startPc = cand.startPc;
    frame->pcs = std::move(cand.pcs);
    frame->nextPc = cand.nextPc;
    frame->dynamicExit = cand.dynamicExit;
    frame->numBlocks = cand.numBlocks;
    frame->body = std::move(body);
    frame->bodyHash = pristine;
    frame->faultInjected = sabotaged;
    for (size_t i = 0; i < frame->body.uops.size(); ++i) {
        const opt::FrameUop &fu = frame->body.uops[i];
        if (fu.unsafe && fu.uop.isStore()) {
            frame->unsafeStores.push_back(
                {fu.uop.instIdx, fu.uop.memSeq});
        }
    }
    std::sort(frame->unsafeStores.begin(), frame->unsafeStores.end());

    pending_.push_back({ready_at, std::move(frame)});
    ++stats_.counter("candidates");
}

void
RePlayEngine::drainReady(uint64_t now)
{
    while (!pending_.empty() && pending_.front().readyAt <= now) {
        cache_.insert(std::move(pending_.front().frame));
        pending_.pop_front();
    }
}

void
RePlayEngine::observeRetired(const trace::TraceRecord &rec, uint64_t now)
{
    drainReady(now);
    auto candidate = constructor_.observe(rec);
    if (candidate)
        enqueueCandidate(std::move(*candidate), now);
}

FramePtr
RePlayEngine::frameFor(uint32_t pc, uint64_t now)
{
    drainReady(now);
    if (quarantine_.blocked(pc, now)) {
        ++stats_.counter("quarantine_blocks");
        return nullptr;
    }
    FramePtr frame = cache_.lookup(pc);
    if (frame && cfg_.injector &&
        cfg_.injector->maybeFlipOnFetch(frame->body)) {
        frame->faultInjected =
            fault::FaultInjector::hashBody(frame->body) !=
            frame->bodyHash;
        ++stats_.counter("fault_fetch_flips");
    }
    return frame;
}

void
RePlayEngine::frameCommitted(const FramePtr &frame)
{
    ++frame->fetches;
    ++stats_.counter("frame_commits");
}

void
RePlayEngine::frameAborted(const FramePtr &frame,
                           const FrameOutcome &outcome)
{
    ++frame->fetches;
    if (outcome.kind == FrameOutcome::Kind::UNSAFE_CONFLICT) {
        ++frame->conflicts;
        ++stats_.counter("unsafe_conflicts");
        // Never speculate on that store site again, and rebuild the
        // frame without it.
        for (const auto &ref : frame->unsafeStores) {
            if (ref.instIdx == outcome.faultIndex) {
                profile_.markDirty(frame->pcs[ref.instIdx],
                                   ref.memSeq);
            }
        }
        cache_.invalidate(frame->startPc);
        return;
    }

    ++frame->assertFires;
    ++stats_.counter("assert_fires");
    // A frame whose assertions keep firing has a stale bias; evict it
    // so the constructor can rebuild along the new hot path.
    if (frame->assertFires >= cfg_.evictFireThreshold &&
        frame->assertFires * cfg_.evictFirePenalty >= frame->fetches) {
        cache_.invalidate(frame->startPc);
        ++stats_.counter("bias_evictions");
    }
}

void
RePlayEngine::frameQuarantined(const FramePtr &frame, uint64_t now)
{
    cache_.invalidate(frame->startPc);
    quarantine_.add(frame->startPc, now);
    ++stats_.counter("quarantines");
}

} // namespace replay::core
