#include "core/biastable.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace replay::core {

BiasTable::BiasTable(unsigned entries, unsigned min_samples,
                     unsigned promote_num, unsigned promote_den)
    : entries_(entries), indexMask_(entries - 1),
      minSamples_(min_samples), promoteNum_(promote_num),
      promoteDen_(promote_den)
{
    panic_if(!isPow2(entries), "bias table size must be a power of two");
}

BiasTable::Entry &
BiasTable::slot(uint32_t pc)
{
    return entries_[(pc >> 1) & indexMask_];
}

const BiasTable::Entry *
BiasTable::find(uint32_t pc) const
{
    const Entry &e = entries_[(pc >> 1) & indexMask_];
    return e.tag == pc ? &e : nullptr;
}

void
BiasTable::record(uint32_t pc, bool taken)
{
    Entry &e = slot(pc);
    if (e.tag != pc) {
        // Conflict: steal the entry and restart history.
        e.tag = pc;
        e.taken = 0;
        e.total = 0;
    }
    if (e.total == 0xffff) {
        // Saturate by halving so bias keeps adapting.
        e.taken /= 2;
        e.total /= 2;
    }
    e.taken += taken;
    e.total += 1;
}

BranchBias
BiasTable::classify(uint32_t pc) const
{
    const Entry *e = find(pc);
    if (!e || e->total < minSamples_)
        return BranchBias::UNKNOWN;
    const uint32_t taken_scaled = uint32_t(e->taken) * promoteDen_;
    const uint32_t threshold = uint32_t(e->total) * promoteNum_;
    if (taken_scaled >= threshold)
        return BranchBias::BIASED_TAKEN;
    const uint32_t not_taken_scaled =
        uint32_t(e->total - e->taken) * promoteDen_;
    if (not_taken_scaled >= threshold)
        return BranchBias::BIASED_NOT_TAKEN;
    return BranchBias::NOT_BIASED;
}

TargetTable::TargetTable(unsigned entries, unsigned stable_threshold)
    : entries_(entries), indexMask_(entries - 1),
      stableThreshold_(stable_threshold)
{
    panic_if(!isPow2(entries),
             "target table size must be a power of two");
}

void
TargetTable::record(uint32_t pc, uint32_t target)
{
    Entry &e = entries_[(pc >> 1) & indexMask_];
    if (e.tag != pc) {
        e.tag = pc;
        e.lastTarget = target;
        e.streak = 1;
        return;
    }
    if (e.lastTarget == target) {
        if (e.streak < 0xffff)
            ++e.streak;
    } else {
        e.lastTarget = target;
        e.streak = 1;
    }
}

uint32_t
TargetTable::stableTarget(uint32_t pc) const
{
    const Entry &e = entries_[(pc >> 1) & indexMask_];
    if (e.tag != pc || e.streak < stableThreshold_)
        return 0;
    return e.lastTarget;
}

} // namespace replay::core
