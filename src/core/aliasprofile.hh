/**
 * @file
 * Aliasing-event profile (§3.4).
 *
 * "We record aliasing events during execution and pass this
 * information to the optimizer."  A store site (identified by its x86
 * PC and its access index within the instruction) becomes *dirty* when
 * it is observed overlapping another memory transaction inside a frame
 * instance, or when an unsafe store built from it aborts a frame.  The
 * optimizer only speculates around clean stores.
 */

#ifndef REPLAY_CORE_ALIASPROFILE_HH
#define REPLAY_CORE_ALIASPROFILE_HH

#include <vector>

#include "opt/passes.hh"
#include "trace/record.hh"
#include "util/flathash.hh"

namespace replay::core {

/** Persistent alias observations across all constructed frames. */
class AliasProfile : public opt::AliasHints
{
  public:
    /**
     * Record aliasing events from one observed frame instance: every
     * store that overlaps any other transaction of the instance is
     * marked dirty.
     */
    void observeInstance(const std::vector<trace::TraceRecord> &records);

    /** An unsafe store aborted a frame: never speculate on it again. */
    void markDirty(uint32_t x86_pc, uint8_t mem_seq);

    bool cleanForSpeculation(uint32_t x86_pc,
                             uint8_t mem_seq) const override;

    size_t dirtyCount() const { return dirty_.size(); }

  private:
    static uint64_t
    key(uint32_t pc, uint8_t seq)
    {
        return (uint64_t(pc) << 8) | seq;
    }

    /** One flattened transaction of an observed frame instance. */
    struct Txn
    {
        x86::MemOp op;
        uint32_t pc;
        uint8_t seq;
    };

    FlatSet<uint64_t> dirty_;
    std::vector<Txn> txns_;     ///< observeInstance scratch
};

} // namespace replay::core

#endif // REPLAY_CORE_ALIASPROFILE_HH
