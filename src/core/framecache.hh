/**
 * @file
 * The frame cache (§2, §5.3): stores optimized frames on chip, indexed
 * by starting PC.  Capacity is counted in micro-operation slots (16k in
 * the paper's configuration, approximately a 64kB ICache) — so the
 * optimizer's micro-op reduction directly increases effective capacity
 * (§6.1).  Replacement is LRU over whole frames.
 *
 * The index is a flat open-addressing table (no node allocations on
 * the per-instruction lookup path).  LRU is tracked with a monotonic
 * touch tick per entry: ticks are unique, so the minimum tick IS the
 * least-recently-used frame — bit-identical victim selection to the
 * old intrusive list, without per-hit list surgery.  Eviction scans
 * the table, which is fine because evictions are orders of magnitude
 * rarer than lookups and the table is small (<= capacity/minUops
 * frames).
 *
 * Resource governance: when a ResourceGovernor is attached the cache
 * reports its live footprint (frame bodies + index) on every
 * occupancy change, and exposes shedLru()/shedToUops() so the engine
 * can evict down to budget under memory pressure.  One frame may be
 * *pinned* — the frame the fetch engine is currently sequencing —
 * and neither shedding nor ordinary capacity eviction will victimize
 * it (the shared_ptr keeps the object alive regardless; pinning keeps
 * the cache *entry*, so an in-flight frame cannot be re-requested as
 * a candidate and rebuilt while it executes).
 *
 * Locking discipline: the cache is single-owner (the sequencer
 * thread), not mutex-protected — a lock on the per-instruction lookup
 * path would be pure overhead.  The ownership claim is stated as a
 * sync::Role capability: every public method takes the role, all
 * internal state is GUARDED_BY it, and the real work happens in
 * private *Locked methods marked REQUIRES — so public methods can
 * compose them without re-entering the role (re-entry panics in
 * checked builds, as does any cross-thread overlap).  The eviction
 * listener fires with the cache role held; it may acquire
 * higher-ranked capabilities only (the tier queue at rank BGQUEUE
 * qualifies — see util/sync.hh for the registered hierarchy).
 */

#ifndef REPLAY_CORE_FRAMECACHE_HH
#define REPLAY_CORE_FRAMECACHE_HH

#include <cstdint>
#include <functional>

#include "core/frame.hh"
#include "util/flathash.hh"
#include "util/governor.hh"
#include "util/stats.hh"
#include "util/sync.hh"

namespace replay::core {

/** LRU frame store with micro-op-slot capacity accounting. */
class FrameCache
{
  public:
    explicit FrameCache(unsigned capacity_uops = 16384);

    /**
     * Insert (or replace) a frame.  Evicts least-recently-used frames
     * until the new frame fits.  Frames larger than the whole cache —
     * or that cannot fit without evicting the pinned frame — are
     * rejected.
     */
    void insert(FramePtr frame);

    /** Look up a frame starting at @p pc; touches LRU state. */
    FramePtr lookup(uint32_t pc);

    /** Probe without touching LRU state. */
    FramePtr probe(uint32_t pc) const;

    /** Remove the frame at @p pc (e.g. after repeated assert fires). */
    void invalidate(uint32_t pc);

    /**
     * Versioned-slot swap for the tier engine: replace the body of the
     * *resident* entry at @p pc with @p next without touching its LRU
     * tick (publication is not a use).  The entry must exist and must
     * not be pinned — the caller defers publication while the
     * sequencer holds the frame.  Returns false (entry unchanged) if
     * the replacement would overflow capacity; re-optimized bodies
     * only shrink, so this is a chaos-only edge.
     */
    bool publish(uint32_t pc, FramePtr next);

    /** Is the entry at @p pc the pinned (in-flight) one? */
    bool
    isPinned(uint32_t pc) const
    {
        sync::RoleGuard hold(role_);
        return isPinnedLocked(pc);
    }

    /**
     * Called with the start PC of every frame that leaves the cache
     * (capacity eviction, pressure shed, or invalidation) — the tier
     * engine cancels pending re-optimization work for departed frames
     * so shed frames cannot leak stale background work.  The listener
     * runs with the cache role held.
     */
    void
    setEvictionListener(std::function<void(uint32_t)> listener)
    {
        sync::RoleGuard hold(role_);
        onEvict_ = std::move(listener);
    }

    /**
     * Pin the entry at @p pc (the frame being sequenced): it cannot be
     * shed or evicted until unpin().  At most one entry is pinned.
     */
    void pin(uint32_t pc);
    void unpin();

    /** Evict the unpinned LRU frame; false if none is evictable. */
    bool shedLru();

    /**
     * Evict unpinned LRU frames until occupancy <= @p target_uops.
     * Returns the number of frames shed.  The pinned frame is never a
     * victim, so the post-condition is occupancy <= max(target, pinned
     * frame size).
     */
    unsigned shedToUops(unsigned target_uops);

    /** Attach a governor; the cache reports footprint changes to it. */
    void setGovernor(ResourceGovernor *governor);

    /** Live footprint: frame bodies, path metadata, and the index. */
    size_t memoryBytes() const;

    /** Occupancy recounted by walking the table (audit path). */
    unsigned recountUops() const;

    /**
     * memoryBytes() recomputed from a direct recount rather than the
     * incremental occupied_ model; tests assert the two agree after
     * insert/publish/evict churn.
     */
    size_t auditBytes() const;

    unsigned
    occupiedUops() const
    {
        sync::RoleGuard hold(role_);
        return occupied_;
    }

    unsigned capacityUops() const { return capacity_; }

    size_t
    numFrames() const
    {
        sync::RoleGuard hold(role_);
        return frames_.size();
    }

    StatGroup &stats() { return stats_; }

  private:
    /**
     * Fixed per-frame charge in the byte model: the frame header plus
     * path metadata, conservatively folded into one constant so the
     * model stays O(1) and deterministic.
     */
    static constexpr size_t PER_FRAME_OVERHEAD = sizeof(Frame) + 256;

    bool
    isPinnedLocked(uint32_t pc) const REQUIRES(role_)
    {
        return pinnedValid_ && pinnedPc_ == pc;
    }

    void invalidateLocked(uint32_t pc) REQUIRES(role_);
    bool publishLocked(uint32_t pc, FramePtr next) REQUIRES(role_);
    size_t memoryBytesLocked() const REQUIRES(role_);
    unsigned recountUopsLocked() const REQUIRES(role_);

    /** Evict the unpinned LRU entry; false if nothing is evictable. */
    bool evictLruLocked(const char *counter) REQUIRES(role_);
    void syncGovernorLocked() REQUIRES(role_);

    struct Entry
    {
        FramePtr frame;
        uint64_t lastUsed = 0;  ///< unique touch tick (monotonic)
    };

    /**
     * Single-owner capability: the sequencer thread.  Guards all
     * mutable state below; zero-cost in Release (see util/sync.hh).
     */
    mutable sync::Role role_{"framecache", sync::rank::FRAMECACHE};

    unsigned capacity_;
    unsigned occupied_ GUARDED_BY(role_) = 0;
    uint64_t tick_ GUARDED_BY(role_) = 0;
    FlatMap<uint32_t, Entry> frames_ GUARDED_BY(role_);
    bool pinnedValid_ GUARDED_BY(role_) = false;
    uint32_t pinnedPc_ GUARDED_BY(role_) = 0;
    ResourceGovernor *governor_ GUARDED_BY(role_) = nullptr;
    unsigned governorId_ GUARDED_BY(role_) = 0;
    std::function<void(uint32_t)> onEvict_ GUARDED_BY(role_);
    StatGroup stats_{"fcache"};
    Counter &hits_{stats_.counter("hits")};
    Counter &misses_{stats_.counter("misses")};
};

} // namespace replay::core

#endif // REPLAY_CORE_FRAMECACHE_HH
