/**
 * @file
 * The frame cache (§2, §5.3): stores optimized frames on chip, indexed
 * by starting PC.  Capacity is counted in micro-operation slots (16k in
 * the paper's configuration, approximately a 64kB ICache) — so the
 * optimizer's micro-op reduction directly increases effective capacity
 * (§6.1).  Replacement is LRU over whole frames.
 *
 * The index is a flat open-addressing table (no node allocations on
 * the per-instruction lookup path).  LRU is tracked with a monotonic
 * touch tick per entry: ticks are unique, so the minimum tick IS the
 * least-recently-used frame — bit-identical victim selection to the
 * old intrusive list, without per-hit list surgery.  Eviction scans
 * the table, which is fine because evictions are orders of magnitude
 * rarer than lookups and the table is small (<= capacity/minUops
 * frames).
 */

#ifndef REPLAY_CORE_FRAMECACHE_HH
#define REPLAY_CORE_FRAMECACHE_HH

#include <cstdint>

#include "core/frame.hh"
#include "util/flathash.hh"
#include "util/stats.hh"

namespace replay::core {

/** LRU frame store with micro-op-slot capacity accounting. */
class FrameCache
{
  public:
    explicit FrameCache(unsigned capacity_uops = 16384);

    /**
     * Insert (or replace) a frame.  Evicts least-recently-used frames
     * until the new frame fits.  Frames larger than the whole cache
     * are rejected.
     */
    void insert(FramePtr frame);

    /** Look up a frame starting at @p pc; touches LRU state. */
    FramePtr lookup(uint32_t pc);

    /** Probe without touching LRU state. */
    FramePtr probe(uint32_t pc) const;

    /** Remove the frame at @p pc (e.g. after repeated assert fires). */
    void invalidate(uint32_t pc);

    unsigned occupiedUops() const { return occupied_; }
    unsigned capacityUops() const { return capacity_; }
    size_t numFrames() const { return frames_.size(); }

    StatGroup &stats() { return stats_; }

  private:
    void evictLru();

    struct Entry
    {
        FramePtr frame;
        uint64_t lastUsed = 0;  ///< unique touch tick (monotonic)
    };

    unsigned capacity_;
    unsigned occupied_ = 0;
    uint64_t tick_ = 0;
    FlatMap<uint32_t, Entry> frames_;
    StatGroup stats_{"fcache"};
    Counter &hits_{stats_.counter("hits")};
    Counter &misses_{stats_.counter("misses")};
};

} // namespace replay::core

#endif // REPLAY_CORE_FRAMECACHE_HH
