/**
 * @file
 * The frame: rePLay's atomic optimization region (§2).
 *
 * A frame covers a dynamic sequence of x86 instructions whose internal
 * control flow has been converted to assertions.  It carries both the
 * optimized micro-op body (for fetch/execute) and the metadata the
 * trace-driven simulator needs: the expected x86 path (to resolve
 * assertions against the trace) and the unsafe-store identities (to
 * resolve aliasing conflicts).
 */

#ifndef REPLAY_CORE_FRAME_HH
#define REPLAY_CORE_FRAME_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "opt/optimizer.hh"
#include "trace/record.hh"

namespace replay::core {

/**
 * Optimization tier of a cached frame body.  CHEAP bodies were
 * admitted with the fast pass subset and are candidates for background
 * re-optimization; FULL bodies have had the whole pipeline (either at
 * admission, or republished by the tier engine).
 */
enum class FrameTier : uint8_t
{
    FULL = 0,
    CHEAP = 1,
};

/** Identity of a memory access: which frame instruction, which access. */
struct MemRef
{
    uint16_t instIdx = 0;   ///< x86 instruction index within the frame
    uint8_t memSeq = 0;     ///< index among that instruction's accesses

    bool operator==(const MemRef &) const = default;
    bool
    operator<(const MemRef &other) const
    {
        return instIdx != other.instIdx ? instIdx < other.instIdx
                                        : memSeq < other.memSeq;
    }
};

/** One atomic frame. */
struct Frame
{
    uint64_t id = 0;
    uint32_t startPc = 0;

    /**
     * The x86 path the frame encodes: pcs[i] is instruction i, and
     * after the last instruction control continues at nextPc.  A
     * divergence of the dynamic stream from this path is exactly an
     * assertion firing.
     */
    std::vector<uint32_t> pcs;
    uint32_t nextPc = 0;

    /**
     * The frame ends with an unconverted indirect jump, so control
     * past the frame is dynamic; nextPc is only the target observed at
     * construction and a different runtime target is not an assertion.
     */
    bool dynamicExit = false;

    unsigned numBlocks = 1;

    /** Optimized body (or the remapped original for plain rePLay). */
    opt::OptimizedFrame body;

    /** Stores marked unsafe by speculative memory optimization. */
    std::vector<MemRef> unsafeStores;

    /** Which optimization tier produced the current body. */
    FrameTier tier = FrameTier::FULL;

    /**
     * Publication generation: 0 for the admitted body, bumped each
     * time the tier engine republishes a re-optimized body for this
     * start PC.  Together with `id` this versions the cache slot: a
     * background result is only published while the cached frame still
     * carries the id the job snapshotted.
     */
    uint32_t generation = 0;

    // -- usage statistics (updated by the sequencer) -----------------
    uint64_t fetches = 0;
    uint64_t assertFires = 0;
    uint64_t conflicts = 0;

    /**
     * Fault-injection harness metadata: true while the body differs
     * from the pristine (verified-clean) body deposited by the
     * optimizer — a later flip can land on the same bit and revert an
     * earlier one, so the flag is recomputed against bodyHash on every
     * injection.  Bookkeeping only: the online verifier never reads
     * it; it exists so runs can prove no corrupted frame reached
     * architectural commit.
     */
    bool faultInjected = false;
    uint64_t bodyHash = 0;      ///< hash of the pristine body

    unsigned numX86Insts() const { return unsigned(pcs.size()); }
    unsigned numUops() const { return body.numUops(); }

    /** The expected next PC after instruction index @p idx. */
    uint32_t
    expectedNext(size_t idx) const
    {
        return idx + 1 < pcs.size() ? pcs[idx + 1] : nextPc;
    }
};

using FramePtr = std::shared_ptr<Frame>;

/**
 * Outcome of matching a frame against the upcoming trace records
 * (performed by the sequencer before committing to frame fetch).
 */
struct FrameOutcome
{
    enum class Kind
    {
        COMMITS,            ///< the whole frame retires
        ASSERTS,            ///< path diverges at instruction `faultIndex`
        UNSAFE_CONFLICT,    ///< an unsafe store aliases at `faultIndex`
    };

    Kind kind = Kind::COMMITS;
    unsigned faultIndex = 0;    ///< x86 index within the frame
};

/**
 * Resolve a frame against the trace: walk the next records and decide
 * whether every assertion holds and no unsafe store conflicts.
 */
FrameOutcome resolveFrame(const Frame &frame, trace::TraceSource &src);

} // namespace replay::core

#endif // REPLAY_CORE_FRAME_HH
