#include "core/constructor.hh"

#include "util/logging.hh"

namespace replay::core {

using trace::TraceRecord;
using uop::Op;
using uop::Uop;
using x86::Mnem;

FrameConstructor::FrameConstructor(ConstructorConfig cfg)
    : cfg_(cfg),
      bias_(cfg.biasEntries, cfg.biasMinSamples, cfg.biasPromoteNum,
            cfg.biasPromoteDen),
      targets_(cfg.targetEntries, cfg.targetStableThreshold)
{
}

namespace {

/** Reset a candidate to pristine state, keeping vector capacity. */
void
clearCandidate(FrameCandidate &cand)
{
    cand.startPc = 0;
    cand.nextPc = 0;
    cand.dynamicExit = false;
    cand.closedByIncludedInst = false;
    cand.numBlocks = 1;
    cand.uops.clear();
    cand.blocks.clear();
    cand.pcs.clear();
    cand.records.clear();
}

} // anonymous namespace

void
FrameConstructor::abandon()
{
    clearCandidate(acc_);
    curBlock_ = 0;
}

void
FrameConstructor::recycle(FrameCandidate &&cand)
{
    clearCandidate(cand);
    spare_ = std::move(cand);
}

std::optional<FrameCandidate>
FrameConstructor::finish(uint32_t next_pc, bool dynamic_exit,
                         bool closed_by_included)
{
    if (acc_.uops.empty()) {
        abandon();
        return std::nullopt;
    }
    if (acc_.uops.size() < cfg_.minUops) {
        ++tooSmall_;
        abandon();
        return std::nullopt;
    }
    FrameCandidate out = std::move(acc_);
    out.nextPc = next_pc;
    out.dynamicExit = dynamic_exit;
    out.closedByIncludedInst = closed_by_included;
    out.numBlocks = curBlock_ + 1;
    // Refill the accumulator from the recycle slot so the moved-out
    // buffers are replaced by warmed-up ones instead of empty ones.
    acc_ = std::move(spare_);
    spare_ = FrameCandidate{};
    abandon();
    ++emitted_;
    return out;
}

void
FrameConstructor::append(const TraceRecord &rec,
                         const std::vector<Uop> &flow)
{
    if (acc_.uops.empty())
        acc_.startPc = rec.pc;
    const uint16_t inst_idx = uint16_t(acc_.pcs.size());
    for (const auto &u : flow) {
        acc_.blocks.push_back(curBlock_);
        acc_.uops.push_back(u);
        acc_.uops.back().instIdx = inst_idx;
    }
    acc_.pcs.push_back(rec.pc);
    acc_.records.push_back(rec);
}

std::optional<FrameCandidate>
FrameConstructor::observe(const TraceRecord &rec)
{
    const x86::Inst &in = rec.inst;

    // ---- learning ------------------------------------------------------
    if (in.isCondBranch())
        bias_.record(rec.pc, rec.taken);
    const bool is_indirect =
        (in.mnem == Mnem::JMP && in.form != x86::Form::REL) ||
        (in.mnem == Mnem::CALL && in.form != x86::Form::REL) ||
        in.mnem == Mnem::RET;
    if (is_indirect)
        targets_.record(rec.pc, rec.nextPc);

    // ---- hard frame terminators ------------------------------------------
    if (in.mnem == Mnem::LONGFLOW)
        return finish(rec.pc, false);

    flowScratch_.clear();
    translator_.translate(in, rec.pc, rec.pc + rec.length, flowScratch_);
    std::vector<Uop> &flow = flowScratch_;

    // ---- size limit ------------------------------------------------------
    std::optional<FrameCandidate> completed;
    if (acc_.uops.size() + flow.size() > cfg_.maxUops)
        completed = finish(rec.pc, false);

    // ---- conditional branches -------------------------------------------
    if (in.isCondBranch()) {
        const BranchBias bb = bias_.classify(rec.pc);
        const bool promotable =
            (bb == BranchBias::BIASED_TAKEN && rec.taken) ||
            (bb == BranchBias::BIASED_NOT_TAKEN && !rec.taken);
        if (!promotable) {
            // End the frame before the unbiased branch; the branch is
            // not part of any frame.
            auto before = finish(rec.pc, false);
            return completed ? completed : before;
        }
        // Promote: the BR micro-op becomes an assertion that the
        // branch keeps going the biased way.
        Uop &br = flow.back();
        panic_if(br.op != Op::BR, "branch flow must end in BR");
        const uint32_t taken_target = br.target;
        br.op = Op::ASSERT;
        br.cc = rec.taken ? br.cc : x86::invert(br.cc);
        br.target = 0;
        const bool backward = rec.taken && taken_target <= rec.pc;
        append(rec, flow);
        ++curBlock_;
        if (backward) {
            // Loop back-edge: close the frame here so loop frames
            // align to whole iterations.  The frame's successor is its
            // own start (the loop head), so committed loop frames
            // refetch back-to-back from the frame cache, and the
            // assertion fires only on the exit iteration.
            auto done = finish(rec.nextPc, false, true);
            return completed ? completed : done;
        }
        return completed;
    }

    // ---- indirect jumps ---------------------------------------------------
    if (is_indirect) {
        Uop &jmpi = flow.back();
        panic_if(jmpi.op != Op::JMPI, "indirect flow must end in JMPI");
        const uint32_t stable = targets_.stableTarget(rec.pc);
        if (stable != 0 && stable == rec.nextPc) {
            // Convert to a value assertion on the jump target and keep
            // building through the return (§3.3).
            jmpi.op = Op::ASSERT;
            jmpi.cc = x86::Cond::E;
            jmpi.valueAssert = true;
            jmpi.assertOp = Op::CMP;
            jmpi.imm = int32_t(stable);
            append(rec, flow);
            ++curBlock_;
            return completed;
        }
        // Unstable target: the frame ends *with* the indirect jump
        // (the Figure 2 frame ends with "jump (ET2)").
        append(rec, flow);
        auto done = finish(rec.nextPc, true, true);
        return completed ? completed : done;
    }

    // ---- direct jumps and calls continue the frame -------------------------
    append(rec, flow);
    if (in.isControl())
        ++curBlock_;
    return completed;
}

} // namespace replay::core
