#include "core/aliasprofile.hh"

namespace replay::core {

void
AliasProfile::observeInstance(
    const std::vector<trace::TraceRecord> &records)
{
    // Flatten the instance's transactions into the reused scratch.
    txns_.clear();
    for (const auto &rec : records) {
        for (unsigned m = 0; m < rec.numMemOps; ++m)
            txns_.push_back({rec.memOps[m], rec.pc, uint8_t(m)});
    }
    const std::vector<Txn> &txns = txns_;

    // A store is dirty when it overlaps a *prior* transaction of the
    // instance — the same condition the runtime unsafe-store check
    // applies, so a clean site is one that would not have aborted.
    for (size_t i = 0; i < txns.size(); ++i) {
        if (!txns[i].op.isStore)
            continue;
        for (size_t j = 0; j < i; ++j) {
            if (txns[i].op.overlaps(txns[j].op)) {
                dirty_.insert(key(txns[i].pc, txns[i].seq));
                break;
            }
        }
    }
}

void
AliasProfile::markDirty(uint32_t x86_pc, uint8_t mem_seq)
{
    dirty_.insert(key(x86_pc, mem_seq));
}

bool
AliasProfile::cleanForSpeculation(uint32_t x86_pc,
                                  uint8_t mem_seq) const
{
    return !dirty_.contains(key(x86_pc, mem_seq));
}

} // namespace replay::core
