/**
 * @file
 * Frame quarantine: a blacklist with decaying re-admission, sitting
 * alongside the bias-eviction watchdog in the sequencer.
 *
 * When the online verifier rejects a dispatched frame, the frame is
 * evicted and its start PC quarantined: the sequencer neither fetches
 * nor rebuilds frames there while the entry is active, so fetch falls
 * back to the conventional ICache path (graceful degradation).  Each
 * offence doubles the block duration (exponential backoff, capped);
 * quiet time forgives strikes one-by-one, so a PC that stops
 * misbehaving — e.g. the corrupt cache line was replaced — eventually
 * earns frames again.
 */

#ifndef REPLAY_CORE_QUARANTINE_HH
#define REPLAY_CORE_QUARANTINE_HH

#include <cstdint>

#include "util/flathash.hh"
#include "util/stats.hh"

namespace replay::core {

/** Backoff/decay policy (times are simulator cycles). */
struct QuarantineConfig
{
    uint64_t basePenaltyCycles = 50000;     ///< first-offence block
    uint64_t maxPenaltyCycles = 5000000;    ///< backoff cap
    uint64_t decayCycles = 1000000;         ///< quiet time per strike
    size_t maxEntries = 256;                ///< table bound
};

/** PC blacklist with exponential backoff and strike decay. */
class Quarantine
{
  public:
    explicit Quarantine(QuarantineConfig cfg = {});

    /** Record an offence at @p pc observed at cycle @p now. */
    void add(uint32_t pc, uint64_t now);

    /** Is @p pc currently blocked? (Applies decay/readmission.) */
    bool blocked(uint32_t pc, uint64_t now);

    /** Active strike count for @p pc (0 = not quarantined). */
    unsigned strikes(uint32_t pc, uint64_t now);

    size_t size() const { return entries_.size(); }

    /** Live table footprint (governor accounting). */
    size_t memoryBytes() const { return entries_.memoryBytes(); }

    StatGroup &stats() { return stats_; }

  private:
    struct Entry
    {
        unsigned strikes = 0;
        uint64_t blockedUntil = 0;
        uint64_t lastOffense = 0;
        bool readmitted = false;    ///< readmission already counted
    };

    /** Forgive strikes earned back by quiet time; true if expired. */
    bool decay(Entry &entry, uint64_t now) const;
    void prune(uint64_t now);

    QuarantineConfig cfg_;
    FlatMap<uint32_t, Entry> entries_;
    StatGroup stats_{"quarantine"};
};

} // namespace replay::core

#endif // REPLAY_CORE_QUARANTINE_HH
