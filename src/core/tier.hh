/**
 * @file
 * Tiered background re-optimization (ROADMAP item 5).
 *
 * The paper's engine pays the full pass pipeline on every constructed
 * frame before it can be deposited.  Kistler & Franz's continuous
 * optimization model does better: admit code cheaply, then let an
 * asynchronous service re-optimize whatever turns out to be hot.  The
 * tier engine implements that split for frames:
 *
 *   - admission runs OptConfig::cheap() (NOP removal + DCE) so frames
 *     reach the cache almost immediately,
 *   - every committed cheap-tier frame that crosses the hotness
 *     threshold is snapshotted and queued for the background workers,
 *     ranked by execution count minus an assertion-rate penalty,
 *   - workers re-run the *full* pass pipeline over the snapshot
 *     (Optimizer::optimize is re-entrant: all scratch is
 *     thread_local), and push results into a completion inbox,
 *   - the sequencer drains the inbox on its own thread and publishes
 *     each surviving body with a generation bump — never while the
 *     target entry is pinned, and only after the frame id check proves
 *     the cached frame is still the one the job was built from.
 *
 * The snapshot trick: the cheap passes only *delete* micro-ops (they
 * never rewrite operand links into producer indices that the
 * architectural form lacks), so the cheap body's surviving
 * FrameUop::uop sequence — with its per-uop block tags — is itself a
 * valid architectural micro-op stream, and re-feeding it to the full
 * optimizer needs no extra stored state.  Alias hints are frozen into
 * the job at enqueue time (the live AliasProfile is mutated by the
 * sequencer thread and must not be read concurrently).
 */

#ifndef REPLAY_CORE_TIER_HH
#define REPLAY_CORE_TIER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "core/frame.hh"
#include "opt/optimizer.hh"
#include "util/bgqueue.hh"
#include "util/cancellation.hh"
#include "util/flathash.hh"

namespace replay::core {

/** Knobs for the tiered re-optimization engine. */
struct TierConfig
{
    /**
     * Background optimizer workers (the tier budget).  0 disables
     * tiering entirely: admission uses the full pipeline and the
     * engine is bit-identical to the untiered build.
     */
    unsigned workers = 0;

    /**
     * Deterministic mode: re-optimization jobs run inline on the
     * sequencer thread at their trigger point (publication still goes
     * through the same inbox/pin protocol).  Replayable and
     * fingerprint-stable; used by the golden tests.
     */
    bool deterministic = false;

    /** Commits before a cheap-tier frame is queued for re-opt. */
    unsigned hotThreshold = 2;

    /** Priority penalty per assertion fire (hot but flaky sinks). */
    unsigned assertPenalty = 4;

    /** Cooperative stop: pending re-opt work is dropped once tripped. */
    CancelToken cancel;
};

/**
 * Immutable alias-hint snapshot taken on the sequencer thread: records
 * the dirty store sites among one frame's memory micro-ops so workers
 * never touch the live (mutable) AliasProfile.
 */
class FrozenAliasHints : public opt::AliasHints
{
  public:
    /** Record the dirtiness of every memory site in @p frame. */
    void snapshot(const Frame &frame, const opt::AliasHints &live);

    bool cleanForSpeculation(uint32_t x86_pc,
                             uint8_t mem_seq) const override;

    size_t memoryBytes() const
    {
        return dirty_.capacity() * sizeof(uint64_t);
    }

  private:
    std::vector<uint64_t> dirty_;   ///< sorted (pc << 8 | seq) keys
};

/** Snapshot of one frame queued for background re-optimization. */
struct ReoptJob
{
    uint64_t frameId = 0;       ///< identity check at publication
    uint32_t startPc = 0;
    unsigned origInputUops = 0; ///< raw decode-flow count (accounting)
    unsigned origInputLoads = 0;
    std::vector<uop::Uop> uops;     ///< cheap body survivors
    std::vector<uint16_t> blocks;   ///< their basic-block tags
    FrozenAliasHints alias;

    size_t
    memoryBytes() const
    {
        return uops.capacity() * sizeof(uop::Uop) +
               blocks.capacity() * sizeof(uint16_t) +
               alias.memoryBytes();
    }
};

/** A finished re-optimization, awaiting publication. */
struct ReoptResult
{
    uint64_t frameId = 0;
    uint32_t startPc = 0;
    bool failed = false;        ///< bad_alloc in the worker
    opt::OptimizedFrame body;
    opt::OptStats stats;

    size_t
    memoryBytes() const
    {
        return body.memoryBytes();
    }
};

/**
 * The background re-optimization service: owns the keyed priority
 * queue, the worker-side full optimizer, and the set of start PCs with
 * work in flight.  All methods except the internal job runner are
 * called from the sequencer thread only.
 */
class TierEngine
{
  public:
    /** What the publication callback did with a drained result. */
    enum class Verdict : uint8_t
    {
        CONSUMED,   ///< published, rejected, stale — done either way
        DEFER,      ///< target entry pinned: retry at the next drain
    };

    TierEngine(const TierConfig &cfg, const opt::OptConfig &full_cfg);

    /** True when @p frame is due for re-optimization. */
    bool wantsReopt(const Frame &frame) const;

    /**
     * Snapshot @p frame and queue it (runs inline in deterministic
     * mode).  May throw std::bad_alloc while snapshotting — the
     * caller drops the enqueue, exactly like a candidate build.
     */
    void enqueue(const Frame &frame, const opt::AliasHints &live);

    /** Frame at @p pc left the cache: drop its pending job, if any. */
    unsigned cancelPending(uint32_t pc);

    /** Memory pressure: drop every pending job.  Returns the count. */
    unsigned shedPending();

    /**
     * Inbox drain protocol (sequencer thread).  The engine drives the
     * loop itself — an explicit iteration surface instead of the old
     * publish-callback template, so the whole publication path stays
     * statically annotatable (thread-safety analysis cannot attach
     * REQUIRES to a closure):
     *
     *   tier->refreshInbox();
     *   while (tier->hasInboxResult()) {
     *       if (publish(tier->inboxFront()) == Verdict::DEFER)
     *           break;                  // pinned: retry at next drain
     *       tier->popInboxFront();      // CONSUMED: done either way
     *   }
     *
     * Stopping at the first DEFER keeps that result queued (order is
     * stable); popInboxFront() also retires the start PC from the
     * in-flight set, re-enabling wantsReopt for that frame.
     */
    void
    refreshInbox()
    {
        if (queue_.hasCompleted())
            pullCompleted();
    }

    bool hasInboxResult() const { return !inbox_.empty(); }

    ReoptResult &
    inboxFront()
    {
        panic_if(inbox_.empty(), "inboxFront on an empty tier inbox");
        return inbox_.front();
    }

    void
    popInboxFront()
    {
        panic_if(inbox_.empty(), "popInboxFront on an empty tier inbox");
        inflight_.erase(inbox_.front().startPc);
        inbox_.pop_front();
    }

    /** True when nothing is pending, running, or awaiting drain. */
    bool
    idle() const
    {
        return inflight_.size() == 0 && inbox_.empty();
    }

    /** Results executed but never drained (end-of-run accounting). */
    size_t undrained() const { return inbox_.size(); }

    /**
     * Wait for in-flight jobs; swallows (and warns about) worker
     * errors so end-of-run teardown never throws.
     */
    void waitIdle();

    /** Pending + undrained footprint for the governor. */
    size_t memoryBytes() const;

    uint64_t executedJobs() const { return queue_.executedCount(); }

  private:
    void pullCompleted();
    ReoptResult runJob(ReoptJob &job);

    TierConfig cfg_;
    opt::Optimizer fullOptimizer_;
    BackgroundQueue<ReoptJob, ReoptResult> queue_;

    /**
     * Start PCs with a job somewhere between enqueue and drain —
     * consulted by wantsReopt so a frame is never queued twice.
     * Sequencer-thread only.
     */
    FlatSet<uint32_t> inflight_;

    /** Drained-but-unpublished results (deferred while pinned). */
    std::deque<ReoptResult> inbox_;
    std::vector<ReoptResult> inbox_scratch_;
};

} // namespace replay::core

#endif // REPLAY_CORE_TIER_HH
