#include "core/tier.hh"

#include <algorithm>

#include "util/logging.hh"

namespace replay::core {

namespace {

uint64_t
aliasKey(uint32_t pc, uint8_t seq)
{
    return (uint64_t(pc) << 8) | seq;
}

} // anonymous namespace

void
FrozenAliasHints::snapshot(const Frame &frame,
                           const opt::AliasHints &live)
{
    dirty_.clear();
    const uop::UopSlab &code = frame.body.code;
    for (size_t i = 0, n = code.size(); i < n; ++i) {
        if (!(code.attr[i] & uop::UA_KIND_MEM) ||
            code.instIdx[i] >= frame.pcs.size()) {
            continue;
        }
        const uint32_t pc = frame.pcs[code.instIdx[i]];
        if (!live.cleanForSpeculation(pc, code.memSeq[i]))
            dirty_.push_back(aliasKey(pc, code.memSeq[i]));
    }
    std::sort(dirty_.begin(), dirty_.end());
    dirty_.erase(std::unique(dirty_.begin(), dirty_.end()),
                 dirty_.end());
}

bool
FrozenAliasHints::cleanForSpeculation(uint32_t x86_pc,
                                      uint8_t mem_seq) const
{
    return !std::binary_search(dirty_.begin(), dirty_.end(),
                               aliasKey(x86_pc, mem_seq));
}

TierEngine::TierEngine(const TierConfig &cfg,
                       const opt::OptConfig &full_cfg)
    : cfg_(cfg), fullOptimizer_(full_cfg),
      // Deterministic mode runs jobs inline on the sequencer thread
      // (0 pool workers); otherwise the configured worker count.
      queue_(cfg.deterministic ? 0 : cfg.workers,
             [this](ReoptJob &job) { return runJob(job); })
{
    panic_if(cfg_.workers == 0,
             "TierEngine built with a zero tier budget");
    queue_.setCancelToken(cfg_.cancel);
}

bool
TierEngine::wantsReopt(const Frame &frame) const
{
    return frame.tier == FrameTier::CHEAP &&
           frame.fetches >= cfg_.hotThreshold &&
           !inflight_.contains(frame.startPc);
}

void
TierEngine::enqueue(const Frame &frame, const opt::AliasHints &live)
{
    ReoptJob job;
    job.frameId = frame.id;
    job.startPc = frame.startPc;
    job.origInputUops = frame.body.inputUops;
    job.origInputLoads = frame.body.inputLoads;
    // The cheap passes only delete micro-ops, so the survivors' uop
    // fields are still in architectural form and re-feed the remapper
    // directly; block tags ride along for block-scoped configs.
    const size_t n_body = frame.body.size();
    job.uops.reserve(n_body);
    job.blocks.reserve(n_body);
    for (size_t i = 0; i < n_body; ++i) {
        job.uops.push_back(frame.body.code.get(i));
        job.blocks.push_back(frame.body.block[i]);
    }
    job.alias.snapshot(frame, live);

    // Hot frames first; frames whose assertions keep firing are about
    // to be bias-evicted and sink to the back of the queue.
    const int64_t penalty =
        int64_t(cfg_.assertPenalty) * int64_t(frame.assertFires);
    const int64_t priority = int64_t(frame.fetches) - penalty;

    inflight_.insert(frame.startPc);
    queue_.submit(frame.startPc, priority, std::move(job));
}

unsigned
TierEngine::cancelPending(uint32_t pc)
{
    const unsigned dropped = queue_.cancel(pc);
    if (dropped)
        inflight_.erase(pc);
    return dropped;
}

unsigned
TierEngine::shedPending()
{
    const std::vector<uint64_t> keys = queue_.shedAll();
    for (const uint64_t key : keys)
        inflight_.erase(uint32_t(key));
    return unsigned(keys.size());
}

void
TierEngine::pullCompleted()
{
    inbox_scratch_.clear();
    queue_.takeCompleted(inbox_scratch_);
    for (auto &res : inbox_scratch_)
        inbox_.push_back(std::move(res));
    inbox_scratch_.clear();
}

void
TierEngine::waitIdle()
{
    try {
        queue_.waitIdle();
    } catch (const std::exception &e) {
        warn("tier worker failed during quiesce: %s", e.what());
    }
    pullCompleted();
}

size_t
TierEngine::memoryBytes() const
{
    size_t bytes = queue_.memoryBytes() + inflight_.memoryBytes();
    for (const auto &res : inbox_)
        bytes += sizeof(res) + res.memoryBytes();
    return bytes;
}

ReoptResult
TierEngine::runJob(ReoptJob &job)
{
    ReoptResult res;
    res.frameId = job.frameId;
    res.startPc = job.startPc;
    try {
        fullOptimizer_.optimize(job.uops, job.blocks, &job.alias,
                                res.stats, res.body);
        // The optimizer counted the snapshot (cheap survivors) as its
        // input; restore the raw decode-flow accounting so dynamic
        // uop-reduction metrics keep comparing against the original.
        res.body.inputUops = job.origInputUops;
        res.body.inputLoads = job.origInputLoads;
    } catch (const std::bad_alloc &) {
        // Survived like any other allocation failure: the result is
        // marked failed and the cheap-tier frame simply stays.
        res.failed = true;
    }
    return res;
}

} // namespace replay::core
