#include "core/quarantine.hh"

#include <algorithm>

namespace replay::core {

Quarantine::Quarantine(QuarantineConfig cfg) : cfg_(cfg)
{
}

bool
Quarantine::decay(Entry &entry, uint64_t now) const
{
    // Quiet time since the last offence forgives one strike per
    // decayCycles; an entry with no strikes left is expired.
    if (now > entry.lastOffense && cfg_.decayCycles > 0) {
        const uint64_t forgiven =
            (now - entry.lastOffense) / cfg_.decayCycles;
        if (forgiven >= entry.strikes)
            return true;
        entry.strikes -= unsigned(forgiven);
        entry.lastOffense += forgiven * cfg_.decayCycles;
    }
    return entry.strikes == 0;
}

void
Quarantine::prune(uint64_t now)
{
    if (entries_.size() <= cfg_.maxEntries)
        return;
    entries_.eraseIf(
        [&](uint32_t, Entry &entry) { return decay(entry, now); });
    // Still over budget (a burst of fresh offenders): drop the entries
    // closest to expiry so the most recent offenders stay blocked.
    while (entries_.size() > cfg_.maxEntries) {
        bool have_victim = false;
        uint32_t victim_pc = 0;
        uint64_t victim_until = 0;
        entries_.forEach([&](uint32_t pc, const Entry &entry) {
            if (!have_victim || entry.blockedUntil < victim_until) {
                have_victim = true;
                victim_pc = pc;
                victim_until = entry.blockedUntil;
            }
        });
        entries_.erase(victim_pc);
        ++stats_.counter("table_evictions");
    }
}

void
Quarantine::add(uint32_t pc, uint64_t now)
{
    Entry &entry = entries_[pc];
    decay(entry, now);
    entry.strikes = std::min<unsigned>(entry.strikes + 1, 63);
    // base << shift saturates at the cap: base > (max >> shift) exactly
    // when the shifted penalty would exceed (or overflow past) the cap.
    const unsigned shift = entry.strikes - 1;
    const uint64_t penalty =
        (shift >= 64 ||
         cfg_.basePenaltyCycles > (cfg_.maxPenaltyCycles >> shift))
            ? cfg_.maxPenaltyCycles
            : cfg_.basePenaltyCycles << shift;
    entry.blockedUntil = now + penalty;
    entry.lastOffense = now;
    entry.readmitted = false;
    ++stats_.counter("quarantined");
    prune(now);
}

bool
Quarantine::blocked(uint32_t pc, uint64_t now)
{
    // The table is empty in every non-fault run; keep that path free.
    if (entries_.empty())
        return false;
    Entry *entry_p = entries_.find(pc);
    if (!entry_p)
        return false;
    Entry &entry = *entry_p;
    if (decay(entry, now)) {
        entries_.erase(pc);
        return false;
    }
    if (now < entry.blockedUntil) {
        ++stats_.counter("blocks");
        return true;
    }
    if (!entry.readmitted) {
        entry.readmitted = true;
        ++stats_.counter("readmissions");
    }
    return false;
}

unsigned
Quarantine::strikes(uint32_t pc, uint64_t now)
{
    Entry *entry = entries_.find(pc);
    if (!entry)
        return 0;
    if (decay(*entry, now)) {
        entries_.erase(pc);
        return 0;
    }
    return entry->strikes;
}

} // namespace replay::core
