#include "core/frame.hh"

#include "util/logging.hh"

namespace replay::core {

FrameOutcome
resolveFrame(const Frame &frame, trace::TraceSource &src)
{
    FrameOutcome outcome;

    // Collect the memory transactions of the frame span as we walk it,
    // for unsafe-store conflict checking ("compared against all other
    // memory transactions prior to it in the frame", §3.4).  Scratch is
    // per-thread: resolveFrame runs once per frame fetch, and the
    // vector's capacity survives across calls.
    thread_local std::vector<x86::MemOp> prior;
    prior.clear();
    size_t next_unsafe = 0;

    for (size_t i = 0; i < frame.pcs.size(); ++i) {
        const trace::TraceRecord *rec = src.peek(unsigned(i));
        if (!rec || rec->pc != frame.pcs[i]) {
            // The trace ended or diverged before this frame even
            // matched; treat as an assertion at this point.
            outcome.kind = FrameOutcome::Kind::ASSERTS;
            outcome.faultIndex = unsigned(i);
            return outcome;
        }

        // Unsafe stores of this instruction, checked in memSeq order
        // against everything prior.
        for (unsigned m = 0; m < rec->numMemOps; ++m) {
            const x86::MemOp &op = rec->memOps[m];
            const MemRef ref{uint16_t(i), uint8_t(m)};
            bool is_unsafe = false;
            while (next_unsafe < frame.unsafeStores.size() &&
                   frame.unsafeStores[next_unsafe] == ref) {
                is_unsafe = true;
                ++next_unsafe;
            }
            if (is_unsafe && op.isStore) {
                for (const auto &p : prior) {
                    if (p.overlaps(op)) {
                        outcome.kind =
                            FrameOutcome::Kind::UNSAFE_CONFLICT;
                        outcome.faultIndex = unsigned(i);
                        return outcome;
                    }
                }
            }
            prior.push_back(op);
        }

        const bool last = i + 1 == frame.pcs.size();
        if (last && frame.dynamicExit)
            continue;
        if (rec->nextPc != frame.expectedNext(i)) {
            // Control diverged: the assertion guarding this point
            // fires (or, at the frame's final instruction, an indirect
            // target prediction embedded as a value assert fails).
            outcome.kind = FrameOutcome::Kind::ASSERTS;
            outcome.faultIndex = unsigned(i);
            return outcome;
        }
    }
    return outcome;
}

} // namespace replay::core
