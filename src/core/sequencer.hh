/**
 * @file
 * The rePLay engine (Figure 5, right side): glues the frame
 * constructor, the (pipelined) optimization engine, the alias profile,
 * and the frame cache together, and answers the fetch engine's
 * sequencing queries.
 *
 * Locking discipline: the engine is single-owner (one session, one
 * driving thread), stated as the `engine` sync::Role — the *root* of
 * the lock hierarchy (rank ENGINE, the minimum), because everything
 * else is acquired from under it: the frame-cache role on every
 * cache call, the tier queue mutex on enqueue/cancel/drain, the
 * governor role on every pressure query.  Public methods take the
 * role and delegate to private *Locked methods marked REQUIRES, so
 * external callers (simulator, headless driver, tests) need no
 * annotations of their own.
 *
 * Deliberately unguarded: `tier_` and the `tierCancelled_` counter,
 * which the cache eviction listener touches from inside a closure
 * (closures cannot carry REQUIRES; the listener only ever runs on the
 * owner thread, under the cache role, which the hierarchy orders
 * below every capability the callee acquires).  See DESIGN.md
 * "Locking discipline".
 */

#ifndef REPLAY_CORE_SEQUENCER_HH
#define REPLAY_CORE_SEQUENCER_HH

#include <deque>
#include <memory>

#include <functional>

#include "core/aliasprofile.hh"
#include "core/constructor.hh"
#include "core/framecache.hh"
#include "core/quarantine.hh"
#include "core/tier.hh"
#include "opt/datapath.hh"
#include "opt/optimizer.hh"
#include "util/arena.hh"
#include "util/governor.hh"
#include "util/sync.hh"

namespace replay::fault {
class FaultInjector;
} // namespace replay::fault

namespace replay::core {

/** Configuration of the whole rePLay engine. */
struct EngineConfig
{
    bool optimize = true;               ///< RPO when true, RP when false
    opt::OptConfig optConfig;
    unsigned fcacheCapacityUops = 16384;
    ConstructorConfig constructor;
    unsigned optPipelineDepth = 3;
    unsigned optCyclesPerUop = 10;

    /** Evict a frame once fires*firePenalty >= fetches and fires >= 4. */
    unsigned evictFireThreshold = 4;
    unsigned evictFirePenalty = 8;

    /** Blacklist policy for verifier-rejected frames. */
    QuarantineConfig quarantine;

    /**
     * Optional fault injector (owned by the simulator).  When set, the
     * engine exposes the two frame-side injection points: bit flips on
     * frame-cache fetch and sabotage of optimized bodies.
     */
    fault::FaultInjector *injector = nullptr;

    /**
     * Optional resource governor (owned by the simulator/session).
     * When set, the engine reports the footprint of its cache, frame
     * pool, and quarantine table, and degrades under pressure: SOFT
     * sheds cached frames and rejects deposits, HARD optimizes new
     * frames with cheapOptConfig only, CRITICAL suspends frame
     * construction entirely.  Null = ungoverned (seed behaviour).
     */
    ResourceGovernor *governor = nullptr;

    /** The degraded pass subset used under HARD pressure. */
    opt::OptConfig cheapOptConfig = opt::OptConfig::cheap();

    /**
     * Tiered background re-optimization (ROADMAP item 5).  With
     * tier.workers == 0 (default) the engine is untiered and
     * bit-identical to the seed: frames get the full pipeline at
     * admission.  With a nonzero tier budget, frames are admitted with
     * cheapOptConfig and hot ones are re-optimized with the full
     * budget in the background, then republished.
     */
    TierConfig tier;

    /**
     * Validation gate for re-optimized bodies: called with the rebuilt
     * frame before publication; returning false keeps the cheap body.
     * The engine layer cannot link the static verifier directly, so
     * the simulator injects a lintFrame-based gate here (null skips
     * the gate).
     */
    std::function<bool(const Frame &)> tierVerify;
};

/** Frame construction / optimization / caching engine. */
class RePlayEngine
{
  public:
    explicit RePlayEngine(EngineConfig cfg = {});

    /**
     * Observe an instruction retiring from the conventional (ICache)
     * path at cycle @p now.  May synthesize a frame candidate, push it
     * through the optimization pipeline, and later deposit it in the
     * frame cache.
     */
    void observeRetired(const trace::TraceRecord &rec, uint64_t now);

    /** Deposit any frames whose optimization completed by @p now. */
    void drainReady(uint64_t now);

    /** Frame starting at @p pc available for fetch at @p now. */
    FramePtr frameFor(uint32_t pc, uint64_t now);

    /** A fetched frame committed. */
    void frameCommitted(const FramePtr &frame);

    /** A fetched frame aborted (assert fire / unsafe conflict). */
    void frameAborted(const FramePtr &frame, const FrameOutcome &outcome);

    /**
     * The online verifier rejected @p frame before commit: evict it and
     * blacklist its start PC (decaying re-admission), so fetch degrades
     * to the conventional path instead of replaying a bad frame.
     */
    void frameQuarantined(const FramePtr &frame, uint64_t now);

    /** Pipeline flush (long-flow instruction): drop the accumulation. */
    void
    flush()
    {
        sync::RoleGuard hold(seqRole_);
        constructor_.abandon();
    }

    /**
     * End-of-run tier teardown: drop pending re-opt work, wait for
     * in-flight jobs, then drain (and publish) whatever completed.
     * Idempotent; a no-op for untiered engines.
     */
    void quiesceTier();

    /** The tier engine, or null when tiering is off (tests). */
    const TierEngine *tier() const { return tier_.get(); }

    FrameCache &cache() { return cache_; }
    Quarantine &quarantine() { return quarantine_; }
    AliasProfile &aliasProfile() { return profile_; }
    FrameConstructor &constructor() { return constructor_; }
    const opt::OptStats &optStats() const { return optStats_; }
    StatGroup &stats() { return stats_; }

  private:
    void drainReadyLocked(uint64_t now) REQUIRES(seqRole_);
    void enqueueCandidateLocked(FrameCandidate &cand, uint64_t now)
        REQUIRES(seqRole_);

    /** Queue a committed cheap-tier frame for re-opt once it is hot. */
    void maybeScheduleReoptLocked(const FramePtr &frame)
        REQUIRES(seqRole_);

    /** Drain finished re-optimizations and publish the valid ones. */
    void drainTierLocked() REQUIRES(seqRole_);

    /** Publish (or drop) one background result; see TierEngine. */
    TierEngine::Verdict publishReoptLocked(ReoptResult &res)
        REQUIRES(seqRole_);

    /**
     * Governor plumbing: report the engine-owned footprints (frame
     * pool arena, quarantine table) and, while pressure is SOFT or
     * worse, shed LRU frames until it relieves (the pinned in-flight
     * frame is never shed).
     */
    void syncGovernorLocked() REQUIRES(seqRole_);
    void relievePressureLocked() REQUIRES(seqRole_);

    /**
     * The session-owner capability, rank ENGINE (hierarchy root): the
     * sequencing state below is GUARDED_BY it, and every public entry
     * point takes it, so checked builds panic the instant two threads
     * drive one engine.  Zero-cost in Release.
     */
    mutable sync::Role seqRole_{"engine", sync::rank::ENGINE};

    EngineConfig cfg_;
    FrameConstructor constructor_ GUARDED_BY(seqRole_);
    opt::Optimizer optimizer_ GUARDED_BY(seqRole_);
    opt::Optimizer cheapOptimizer_ GUARDED_BY(seqRole_);
    opt::OptimizerPipeline optPipe_ GUARDED_BY(seqRole_);
    FrameCache cache_;              ///< has its own role capability
    Quarantine quarantine_ GUARDED_BY(seqRole_);
    AliasProfile profile_ GUARDED_BY(seqRole_);
    opt::OptStats optStats_ GUARDED_BY(seqRole_);
    StatGroup stats_{"replay"};
    // Bound once (StatGroup's map gives stable references): these fire
    // on every candidate / frame event and are too hot for a string
    // lookup per increment.
    Counter &candidates_{stats_.counter("candidates")};
    Counter &duplicateCandidates_{stats_.counter("duplicate_candidates")};
    Counter &frameCommits_{stats_.counter("frame_commits")};
    Counter &assertFires_{stats_.counter("assert_fires")};
    // Degradation-ladder counters (all zero while ungoverned).
    Counter &govShedFrames_{stats_.counter("gov_shed_frames")};
    Counter &govAdmitRejects_{stats_.counter("gov_admit_rejects")};
    Counter &govCheapOpts_{stats_.counter("gov_cheap_opts")};
    Counter &govSuspended_{stats_.counter("gov_suspended")};
    Counter &allocFailures_{stats_.counter("alloc_failures")};
    // Tiered re-optimization counters (all zero with tier.workers == 0).
    Counter &tierEnqueues_{stats_.counter("tier_enqueues")};
    Counter &tierPublishes_{stats_.counter("tier_publishes")};
    Counter &tierUopsRemoved_{stats_.counter("tier_uops_removed")};
    Counter &tierVerifyRejects_{stats_.counter("tier_verify_rejects")};
    Counter &tierStaleDrops_{stats_.counter("tier_stale_drops")};
    Counter &tierDeferrals_{stats_.counter("tier_deferrals")};
    Counter &tierCancelled_{stats_.counter("tier_cancelled")};
    Counter &tierShed_{stats_.counter("tier_shed")};
    Counter &tierDroppedAtExit_{stats_.counter("tier_dropped_at_exit")};

    /** Governor consumer ids (valid only when cfg_.governor). */
    unsigned govPoolId_ = 0;
    unsigned govQuarantineId_ = 0;
    unsigned govTierId_ = 0;

    std::unique_ptr<TierEngine> tier_;

    /**
     * Recycles Frame objects: a frame freed by eviction returns its
     * storage (pcs / body / unsafeStores vectors, capacity intact) for
     * the next candidate instead of hitting the heap.  Declared after
     * pending_ users conceptually, but destruction order is safe either
     * way: the pool's core outlives its handles via shared ownership.
     */
    ObjectPool<Frame> framePool_ GUARDED_BY(seqRole_);

    struct Pending
    {
        uint64_t readyAt;
        FramePtr frame;
    };
    std::deque<Pending> pending_ GUARDED_BY(seqRole_);
    uint64_t nextFrameId_ GUARDED_BY(seqRole_) = 1;
};

} // namespace replay::core

#endif // REPLAY_CORE_SEQUENCER_HH
