/**
 * @file
 * The frame constructor (§2, [13]).
 *
 * Consumes the retired instruction stream and synthesizes atomic
 * frames: dynamically biased conditional branches are converted into
 * assertions, internal unconditional jumps are retained (and later
 * removed as NOPs by the optimizer), and indirect jumps with stable
 * observed targets become value assertions so construction can
 * continue through returns.  Frames span 8 to 256 micro-operations.
 */

#ifndef REPLAY_CORE_CONSTRUCTOR_HH
#define REPLAY_CORE_CONSTRUCTOR_HH

#include <optional>
#include <vector>

#include "core/biastable.hh"
#include "core/frame.hh"
#include "trace/record.hh"
#include "uop/translator.hh"

namespace replay::core {

/** Construction parameters. */
struct ConstructorConfig
{
    unsigned minUops = 8;
    unsigned maxUops = 256;
    unsigned biasEntries = 4096;
    unsigned biasMinSamples = 32;
    unsigned biasPromoteNum = 60;   ///< promote at >= 15/16 bias
    unsigned biasPromoteDen = 64;
    unsigned targetEntries = 1024;
    unsigned targetStableThreshold = 8;
};

/** A completed frame candidate, ready for the optimizer. */
struct FrameCandidate
{
    uint32_t startPc = 0;
    uint32_t nextPc = 0;
    bool dynamicExit = false;   ///< ends with an unconverted JMPI
    /// The instruction whose observation closed this candidate is part
    /// of it (indirect-exit and loop-back-assert closures) rather than
    /// outside it (unbiased branch, size limit, long-flow closures).
    bool closedByIncludedInst = false;
    std::vector<uop::Uop> uops;
    std::vector<uint16_t> blocks;
    std::vector<uint32_t> pcs;
    unsigned numBlocks = 1;

    /** The observed instance (alias profiling, verification). */
    std::vector<trace::TraceRecord> records;
};

/** Retired-stream frame synthesis. */
class FrameConstructor
{
  public:
    explicit FrameConstructor(ConstructorConfig cfg = {});

    /**
     * Observe one retired instruction.  Returns a completed candidate
     * when this instruction closed one off (the instruction itself may
     * have started a fresh accumulation).
     */
    std::optional<FrameCandidate> observe(const trace::TraceRecord &rec);

    /** Discard the current accumulation (pipeline flush, redirect). */
    void abandon();

    /**
     * Return a consumed candidate's storage for reuse.  The sequencer
     * hands candidates back after depositing the frame so the
     * accumulate -> emit -> recycle cycle stops allocating once the
     * vectors reach their steady-state capacity.
     */
    void recycle(FrameCandidate &&cand);

    BiasTable &biasTable() { return bias_; }
    TargetTable &targetTable() { return targets_; }

    uint64_t candidatesEmitted() const { return emitted_; }
    uint64_t tooSmallDiscarded() const { return tooSmall_; }

  private:
    /** Close the accumulation; null if below the minimum size. */
    std::optional<FrameCandidate> finish(uint32_t next_pc,
                                         bool dynamic_exit,
                                         bool closed_by_included = false);

    /** Append one instruction's decode flow to the accumulation. */
    void append(const trace::TraceRecord &rec,
                const std::vector<uop::Uop> &flow);

    ConstructorConfig cfg_;
    BiasTable bias_;
    TargetTable targets_;
    uop::Translator translator_;

    FrameCandidate acc_;
    FrameCandidate spare_;              ///< recycled candidate storage
    std::vector<uop::Uop> flowScratch_; ///< per-observe decode flow
    uint16_t curBlock_ = 0;
    uint64_t emitted_ = 0;
    uint64_t tooSmall_ = 0;
};

} // namespace replay::core

#endif // REPLAY_CORE_CONSTRUCTOR_HH
