/**
 * @file
 * Online frame verification: incremental architectural-state tracking
 * for the fault-injection harness.
 *
 * The offline verifier (verifier.hh) needs the live-in architectural
 * state of a frame.  During a batch run the simulator never has that —
 * it is timing-only — so the OnlineVerifier reconstructs it by applying
 * every retired trace record's register writes in order, exactly as the
 * verifier's own reference walk does.  At each frame dispatch that
 * resolves to COMMITS, the tracked state is the frame's live-in and the
 * existing verifyFrame() can check the cached (possibly corrupted) body
 * against the upcoming trace span before anything commits.
 *
 * Two subtleties:
 *  - The tracker starts from all-zero registers, matching the
 *    functional executor except for ESP/EBP (initialized to the stack
 *    top).  Verification is therefore skipped until both have been
 *    observed written at least once.
 *  - Runs overshoot maxInsts by up to one frame, and different machines
 *    overshoot differently.  The digest used for cross-run comparison
 *    is snapshotted at exactly the requested record count, so IC / RPO /
 *    faulty / fault-free runs stay bit-comparable.
 */

#ifndef REPLAY_VERIFY_ONLINE_HH
#define REPLAY_VERIFY_ONLINE_HH

#include <cstdint>

#include "core/frame.hh"
#include "opt/frameexec.hh"
#include "trace/record.hh"
#include "verify/verifier.hh"

namespace replay::verify {

/**
 * Apply one retired record's architectural effects to @p state: the
 * reference walk shared by the OnlineVerifier and the differential
 * fuzzing oracle (src/fuzz), which both reconstruct executor state
 * from the trace stream.
 */
void applyRecord(opt::ArchState &state, const trace::TraceRecord &rec);

/** Retirement-order architectural state tracker + dispatch checker. */
class OnlineVerifier
{
  public:
    /** @p digest_cap: observed-record count the digest snapshots at. */
    explicit OnlineVerifier(uint64_t digest_cap);

    /** Apply one retired record's architectural effects. */
    void observe(const trace::TraceRecord &rec);

    /**
     * Verify @p frame (about to be dispatched with a COMMITS outcome)
     * against the upcoming span of @p src.  Returns ok when the live-in
     * state is not yet trusted (ready() false) or the trace ends inside
     * the span; such skips are counted separately.
     */
    VerifyResult verifyDispatch(const core::Frame &frame,
                                trace::TraceSource &src);

    /** Live-in state trusted (ESP and EBP both observed written). */
    bool ready() const { return espSeen_ && ebpSeen_; }

    /** FNV-1a64 of regs+flags at the digest cap (or current if unhit). */
    uint64_t digest() const;

    uint64_t observed() const { return observed_; }
    uint64_t skips() const { return skips_; }
    const opt::ArchState &state() const { return state_; }

  private:
    uint64_t hashState() const;

    opt::ArchState state_;
    uint64_t digestCap_;
    uint64_t observed_ = 0;
    uint64_t skips_ = 0;
    uint64_t cappedDigest_ = 0;
    bool capped_ = false;
    bool espSeen_ = false;
    bool ebpSeen_ = false;
};

} // namespace replay::verify

#endif // REPLAY_VERIFY_ONLINE_HH
