/**
 * @file
 * The state verifier's memory maps (§5.1.3).
 *
 * From the trace records of a frame span, two byte-granular maps are
 * derived: the *initial map* holds the pre-frame value of every
 * location whose first transaction is a load (load data in the trace
 * is the value memory held), and the *final map* holds the value every
 * stored location must have at the frame boundary.
 */

#ifndef REPLAY_VERIFY_MEMMAP_HH
#define REPLAY_VERIFY_MEMMAP_HH

#include <optional>
#include <unordered_map>
#include <vector>

#include "trace/record.hh"

namespace replay::verify {

/** Byte-granular sparse value map. */
class MemoryMap
{
  public:
    void
    setByte(uint32_t addr, uint8_t value)
    {
        bytes_[addr] = value;
    }

    std::optional<uint8_t>
    byte(uint32_t addr) const
    {
        const auto it = bytes_.find(addr);
        if (it == bytes_.end())
            return std::nullopt;
        return it->second;
    }

    bool has(uint32_t addr) const { return bytes_.count(addr) != 0; }
    size_t size() const { return bytes_.size(); }

    const std::unordered_map<uint32_t, uint8_t> &bytes() const
    {
        return bytes_;
    }

  private:
    std::unordered_map<uint32_t, uint8_t> bytes_;
};

/** The two maps of §5.1.3. */
struct FrameMaps
{
    MemoryMap initial;
    MemoryMap final;

    /** Derive both maps from a frame span's records. */
    static FrameMaps fromRecords(
        const std::vector<trace::TraceRecord> &records);
};

} // namespace replay::verify

#endif // REPLAY_VERIFY_MEMMAP_HH
