#include "verify/verifier.hh"

#include <cstring>
#include <sstream>

#include "trace/record.hh"

namespace replay::verify {

using core::Frame;
using core::FrameOutcome;
using opt::ArchState;
using trace::TraceRecord;
using uop::UReg;

namespace {

std::string
hex(uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08x", v);
    return buf;
}

} // anonymous namespace

VerifyResult
verifyFrame(const Frame &frame,
            const std::vector<TraceRecord> &records,
            const ArchState &live_in)
{
    // What should happen, according to the trace?
    trace::VectorTraceSource src(records);
    const FrameOutcome expected = core::resolveFrame(frame, src);

    // Execute the frame against a memory image seeded from the
    // initial map.
    const FrameMaps maps = FrameMaps::fromRecords(records);
    x86::SparseMemory mem;
    for (const auto &[addr, value] : maps.initial.bytes())
        mem.write(addr, 1, value);

    ArchState state = live_in;
    const opt::FrameExecResult result =
        executeFrame(frame.body, state, mem);

    // Outcome agreement.
    const bool trace_commits =
        expected.kind == FrameOutcome::Kind::COMMITS;
    if (trace_commits != result.committed()) {
        std::ostringstream msg;
        msg << "outcome mismatch: trace says "
            << (trace_commits ? "commit" : "abort")
            << ", frame execution says "
            << (result.committed() ? "commit" : "abort");
        return VerifyResult::fail(msg.str());
    }
    if (!result.committed())
        return {};      // both abort: rollback makes state trivially ok

    // (1) every load satisfiable from the initial map or an earlier
    //     in-frame store.
    {
        MemoryMap written;
        for (const auto &op : result.memOps) {
            if (op.isStore) {
                for (unsigned b = 0; b < op.size; ++b)
                    written.setByte(op.addr + b, 1);
                continue;
            }
            for (unsigned b = 0; b < op.size; ++b) {
                const uint32_t addr = op.addr + b;
                if (!maps.initial.has(addr) && !written.has(addr)) {
                    return VerifyResult::fail(
                        "load at " + hex(op.addr) +
                        " not covered by the initial memory map");
                }
            }
        }
    }

    // (2) memory equivalence at the frame boundary.
    for (const auto &[addr, value] : maps.final.bytes()) {
        const uint32_t got = mem.read(addr, 1);
        if (got != value) {
            return VerifyResult::fail(
                "memory mismatch at " + hex(addr) + ": frame wrote " +
                std::to_string(got) + ", trace wrote " +
                std::to_string(value));
        }
    }

    // (3) architectural register state at the frame boundary.
    ArchState expected_state = live_in;
    for (const auto &rec : records) {
        for (unsigned w = 0; w < rec.numRegWrites; ++w) {
            expected_state.regs[unsigned(rec.regWrites[w].reg)] =
                rec.regWrites[w].value;
        }
        if (rec.numFregWrites) {
            uint32_t raw;
            std::memcpy(&raw, &rec.fregWrite.value, 4);
            expected_state
                .regs[unsigned(uop::fpr(rec.fregWrite.reg))] = raw;
        }
        expected_state.flags = x86::Flags::unpack(rec.flagsAfter);
    }
    for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
        const auto reg = static_cast<UReg>(r);
        if (!opt::OptBuffer::archLiveOut(reg) || reg == UReg::FLAGS)
            continue;
        if (state.regs[r] != expected_state.regs[r]) {
            return VerifyResult::fail(
                std::string("register ") + uop::uregName(reg) +
                " mismatch: frame " + hex(state.regs[r]) + ", trace " +
                hex(expected_state.regs[r]));
        }
    }
    if (state.flags.pack() != expected_state.flags.pack())
        return VerifyResult::fail("flags mismatch at frame boundary");

    return {};
}

} // namespace replay::verify
