#include "verify/online.hh"

#include <cstring>
#include <vector>

namespace replay::verify {

OnlineVerifier::OnlineVerifier(uint64_t digest_cap)
    : digestCap_(digest_cap)
{
}

void
applyRecord(opt::ArchState &state, const trace::TraceRecord &rec)
{
    for (unsigned w = 0; w < rec.numRegWrites; ++w)
        state.regs[unsigned(rec.regWrites[w].reg)] =
            rec.regWrites[w].value;
    if (rec.numFregWrites) {
        uint32_t raw;
        std::memcpy(&raw, &rec.fregWrite.value, 4);
        state.regs[unsigned(uop::fpr(rec.fregWrite.reg))] = raw;
    }
    state.flags = x86::Flags::unpack(rec.flagsAfter);
}

void
OnlineVerifier::observe(const trace::TraceRecord &rec)
{
    for (unsigned w = 0; w < rec.numRegWrites; ++w) {
        const x86::Reg reg = rec.regWrites[w].reg;
        if (reg == x86::Reg::ESP)
            espSeen_ = true;
        else if (reg == x86::Reg::EBP)
            ebpSeen_ = true;
    }
    applyRecord(state_, rec);

    ++observed_;
    if (!capped_ && observed_ == digestCap_) {
        cappedDigest_ = hashState();
        capped_ = true;
    }
}

VerifyResult
OnlineVerifier::verifyDispatch(const core::Frame &frame,
                               trace::TraceSource &src)
{
    if (!ready()) {
        ++skips_;
        return {};
    }
    std::vector<trace::TraceRecord> records;
    records.reserve(frame.pcs.size());
    for (unsigned i = 0; i < frame.pcs.size(); ++i) {
        const trace::TraceRecord *rec = src.peek(i);
        if (!rec) {
            // Trace ends inside the span; the frame cannot commit
            // whole, so there is nothing to check.
            ++skips_;
            return {};
        }
        records.push_back(*rec);
    }
    return verifyFrame(frame, records, state_);
}

uint64_t
OnlineVerifier::hashState() const
{
    // FNV-1a64 over the register file bytes plus the packed flags.
    uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](uint8_t byte) {
        h ^= byte;
        h *= 0x00000100000001b3ULL;
    };
    for (const uint32_t reg : state_.regs) {
        mix(uint8_t(reg));
        mix(uint8_t(reg >> 8));
        mix(uint8_t(reg >> 16));
        mix(uint8_t(reg >> 24));
    }
    mix(state_.flags.pack());
    return h;
}

uint64_t
OnlineVerifier::digest() const
{
    return capped_ ? cappedDigest_ : hashState();
}

} // namespace replay::verify
