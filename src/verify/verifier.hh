/**
 * @file
 * The state verifier (§5.1.3): validates that an optimized frame's
 * state transformations (architectural registers and memory) are
 * equivalent to those of the original, unmodified instruction stream.
 *
 * A frame is valid only if (1) every load it performs can be satisfied
 * from the initial memory map or an earlier in-frame store, (2) all
 * memory state the trace span affects is equivalently affected by the
 * frame at the frame boundary, and (3) all architectural register
 * state is equivalent at the frame boundary.
 */

#ifndef REPLAY_VERIFY_VERIFIER_HH
#define REPLAY_VERIFY_VERIFIER_HH

#include <string>

#include "core/frame.hh"
#include "opt/frameexec.hh"
#include "verify/memmap.hh"

namespace replay::verify {

/** Verification verdict. */
struct VerifyResult
{
    bool ok = true;
    std::string message;

    static VerifyResult
    fail(std::string msg)
    {
        return {false, std::move(msg)};
    }
};

/**
 * Verify one frame against the trace span it was constructed from.
 *
 * @param frame    the (optimized) frame
 * @param records  the observed instance (same span)
 * @param live_in  architectural state when the frame is fetched
 */
VerifyResult verifyFrame(const core::Frame &frame,
                         const std::vector<trace::TraceRecord> &records,
                         const opt::ArchState &live_in);

} // namespace replay::verify

#endif // REPLAY_VERIFY_VERIFIER_HH
