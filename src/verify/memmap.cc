#include "verify/memmap.hh"

namespace replay::verify {

FrameMaps
FrameMaps::fromRecords(const std::vector<trace::TraceRecord> &records)
{
    FrameMaps maps;
    std::unordered_map<uint32_t, bool> touched;     // true once written

    for (const auto &rec : records) {
        for (unsigned m = 0; m < rec.numMemOps; ++m) {
            const x86::MemOp &op = rec.memOps[m];
            for (unsigned b = 0; b < op.size; ++b) {
                const uint32_t addr = op.addr + b;
                const uint8_t data = uint8_t(op.data >> (8 * b));
                if (op.isStore) {
                    touched[addr] = true;
                    maps.final.setByte(addr, data);
                } else {
                    // First transaction being a load exposes the
                    // pre-frame value.
                    const auto it = touched.find(addr);
                    if (it == touched.end()) {
                        maps.initial.setByte(addr, data);
                        touched[addr] = false;
                    }
                }
            }
        }
    }
    return maps;
}

} // namespace replay::verify
