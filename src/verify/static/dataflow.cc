#include "verify/static/dataflow.hh"

#include <unordered_map>

#include "uop/evaluator.hh"

namespace replay::vstatic {

using uop::Op;
using uop::UReg;

// --- reaching definitions -----------------------------------------------

bool
operandReaches(const OptBuffer &buf, size_t at, const Operand &op)
{
    if (!op.isProd())
        return true;            // NONE has no def; live-ins always reach
    return op.idx < at && op.idx < buf.size() && buf.valid(op.idx);
}

// --- liveness -----------------------------------------------------------

namespace {

/** Ops whose execution is observable regardless of dataflow. */
bool
isSideEffectRoot(Op op)
{
    switch (op) {
      case Op::STORE:
      case Op::FSTORE:
      case Op::ASSERT:
      case Op::BR:
      case Op::JMPI:
      case Op::LONGFLOW:
        return true;
      default:
        return false;
    }
}

} // anonymous namespace

std::vector<bool>
liveSlots(const OptBuffer &buf)
{
    std::vector<bool> live(buf.size(), false);

    auto mark = [&](const Operand &op) {
        if (op.isProd() && op.idx < buf.size())
            live[op.idx] = true;
    };

    // Roots: the declared live-out set — every exit's arch-live-out
    // register bindings and flags binding.
    for (const auto &exit : buf.exits()) {
        for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
            if (OptBuffer::archLiveOut(static_cast<UReg>(r)))
                mark(exit.regs[r]);
        }
        mark(exit.flags);
    }

    // One backward sweep: producers precede consumers, so by the time
    // slot i is visited every consumer has already propagated need.
    for (size_t i = buf.size(); i-- > 0;) {
        if (!buf.valid(i)) {
            live[i] = false;
            continue;
        }
        if (isSideEffectRoot(buf.at(i).uop.op))
            live[i] = true;
        if (!live[i])
            continue;
        const FrameUop &fu = buf.at(i);
        mark(fu.srcA);
        mark(fu.srcB);
        mark(fu.srcC);
        mark(fu.flagsSrc);
    }
    return live;
}

// --- available expressions ----------------------------------------------

bool
isPureValueOp(Op op)
{
    switch (op) {
      case Op::LIMM:
      case Op::ADD:
      case Op::SUB:
      case Op::AND:
      case Op::OR:
      case Op::XOR:
      case Op::SHL:
      case Op::SHR:
      case Op::SAR:
      case Op::MUL:
      case Op::DIVQ:
      case Op::DIVR:
      case Op::NOT:
      case Op::NEG:
      case Op::SETCC:
      case Op::CMP:
      case Op::TEST:
      case Op::FADD:
      case Op::FSUB:
      case Op::FMUL:
      case Op::FDIV:
        return true;
      default:
        return false;
    }
}

bool
sameExpression(const FrameUop &a, const FrameUop &b)
{
    return a.uop.op == b.uop.op && a.uop.cc == b.uop.cc &&
           a.srcA == b.srcA && a.srcB == b.srcB && a.srcC == b.srcC &&
           a.flagsSrc == b.flagsSrc && a.uop.imm == b.uop.imm &&
           a.uop.scale == b.uop.scale &&
           a.uop.memSize == b.uop.memSize &&
           a.uop.signExtend == b.uop.signExtend &&
           a.uop.flagsCarryOnly == b.uop.flagsCarryOnly;
}

namespace {

struct ExprKey
{
    Op op;
    x86::Cond cc;
    Operand srcA, srcB, srcC, flagsSrc;
    int32_t imm;
    uint8_t scale;
    uint8_t memSize;
    bool signExtend;
    bool flagsCarryOnly;

    bool operator==(const ExprKey &) const = default;
};

struct ExprKeyHash
{
    size_t
    operator()(const ExprKey &k) const
    {
        const opt::OperandHash oh;
        size_t h = size_t(k.op) * 0x9e3779b9;
        h ^= size_t(k.cc) + 0x517cc1b7;
        h ^= oh(k.srcA) * 3 + oh(k.srcB) * 5 + oh(k.srcC) * 7 +
             oh(k.flagsSrc) * 11;
        h ^= size_t(uint32_t(k.imm)) * 13;
        h ^= (size_t(k.scale) << 8) ^ (size_t(k.memSize) << 16) ^
             (size_t(k.signExtend) << 24) ^
             (size_t(k.flagsCarryOnly) << 25);
        return h;
    }
};

ExprKey
exprKeyOf(const FrameUop &fu)
{
    return ExprKey{fu.uop.op,       fu.uop.cc,
                   fu.srcA,         fu.srcB,
                   fu.srcC,         fu.flagsSrc,
                   fu.uop.imm,      fu.uop.scale,
                   fu.uop.memSize,  fu.uop.signExtend,
                   fu.uop.flagsCarryOnly};
}

} // anonymous namespace

std::vector<uint16_t>
valueNumbers(const OptBuffer &buf)
{
    std::vector<uint16_t> vn(buf.size());
    std::unordered_map<ExprKey, uint16_t, ExprKeyHash> table;
    for (size_t i = 0; i < buf.size(); ++i) {
        vn[i] = uint16_t(i);
        if (!buf.valid(i) || !isPureValueOp(buf.at(i).uop.op))
            continue;
        const auto [it, fresh] =
            table.emplace(exprKeyOf(buf.at(i)), uint16_t(i));
        if (!fresh)
            vn[i] = it->second;
    }
    return vn;
}

/** Walk stores strictly between two mem slots and classify them
 *  against @p addr.  Shared by both availability queries. */
LoadAvail
interveningStores(const OptBuffer &buf, size_t from, size_t to,
                  const opt::AddrKey &addr,
                  std::vector<uint16_t> *must_be_unsafe)
{
    LoadAvail result = LoadAvail::AVAILABLE;
    for (size_t s = from + 1; s < to; ++s) {
        if (!buf.valid(s) || !buf.at(s).uop.isStore())
            continue;
        const opt::AddrKey skey = opt::AddrKey::of(buf.at(s));
        if (skey.sameAddress(addr))
            return LoadAvail::KILLED;
        if (skey.provablyDisjoint(addr))
            continue;
        result = LoadAvail::NEEDS_SPECULATION;
        if (must_be_unsafe)
            must_be_unsafe->push_back(uint16_t(s));
    }
    return result;
}

LoadAvail
loadAvailability(const OptBuffer &buf, size_t earlier, size_t later,
                 std::vector<uint16_t> *must_be_unsafe)
{
    if (earlier >= later || later >= buf.size())
        return LoadAvail::MISMATCH;
    const FrameUop &e = buf.at(earlier);
    const FrameUop &l = buf.at(later);
    if (!e.uop.isLoad() || !l.uop.isLoad())
        return LoadAvail::MISMATCH;
    if (e.uop.signExtend != l.uop.signExtend)
        return LoadAvail::MISMATCH;
    const opt::AddrKey addr = opt::AddrKey::of(l);
    if (!addr.sameAddress(opt::AddrKey::of(e)))
        return LoadAvail::MISMATCH;
    return interveningStores(buf, earlier, later, addr,
                             must_be_unsafe);
}

LoadAvail
storeForwardAvailability(const OptBuffer &buf, size_t store,
                         size_t later,
                         std::vector<uint16_t> *must_be_unsafe)
{
    if (store >= later || later >= buf.size())
        return LoadAvail::MISMATCH;
    const FrameUop &s = buf.at(store);
    const FrameUop &l = buf.at(later);
    if (!s.uop.isStore() || !l.uop.isLoad())
        return LoadAvail::MISMATCH;
    if (s.uop.memSize != 4 || l.uop.memSize != 4)
        return LoadAvail::MISMATCH;
    const opt::AddrKey addr = opt::AddrKey::of(l);
    if (!addr.sameAddress(opt::AddrKey::of(s)))
        return LoadAvail::MISMATCH;
    return interveningStores(buf, store, later, addr,
                             must_be_unsafe);
}

// --- constant / value-range lattice -------------------------------------

namespace {

bool
isConstFoldableAlu(Op op)
{
    switch (op) {
      case Op::ADD:
      case Op::SUB:
      case Op::AND:
      case Op::OR:
      case Op::XOR:
      case Op::SHL:
      case Op::SHR:
      case Op::SAR:
      case Op::MUL:
      case Op::NOT:
      case Op::NEG:
        return true;
      default:
        return false;
    }
}

bool
isUnaryAlu(Op op)
{
    return op == Op::NOT || op == Op::NEG;
}

AbsVal
transferAlu(const uop::Uop &u, const AbsVal &a,
            const std::optional<AbsVal> &b)
{
    // Exact constants go through evalAlu: the one arithmetic truth.
    const bool unary = isUnaryAlu(u.op);
    if (a.isConst() && (unary || (b && b->isConst()))) {
        const auto alu = uop::evalAlu(
            u, uint32_t(a.constant()),
            unary ? 0u : uint32_t(b->constant()), 0, x86::Flags{});
        return AbsVal::constant(int32_t(alu.value));
    }

    // Interval transfer for the shapes worth tracking.
    switch (u.op) {
      case Op::ADD:
        if (b)
            return AbsVal::range(a.lo + b->lo, a.hi + b->hi);
        break;
      case Op::SUB:
        if (b)
            return AbsVal::range(a.lo - b->hi, a.hi - b->lo);
        break;
      case Op::AND:
        // x & m with a non-negative constant mask lands in [0, m].
        if (b && b->isConst() && b->constant() >= 0)
            return AbsVal::range(0, b->constant());
        if (a.isConst() && a.constant() >= 0)
            return AbsVal::range(0, a.constant());
        break;
      case Op::SHR:
        if (b && b->isConst()) {
            const unsigned s = unsigned(b->constant()) & 31;
            if (s > 0)
                return AbsVal::range(0, (int64_t(1) << (32 - s)) - 1);
        }
        break;
      default:
        break;
    }
    return AbsVal::top();
}

} // anonymous namespace

std::optional<AbsVal>
rangeOf(const std::vector<AbsVal> &ranges, const Operand &op)
{
    if (op.isNone())
        return std::nullopt;
    if (op.flagsView || op.isLiveIn())
        return AbsVal::top();
    if (op.idx >= ranges.size())
        return AbsVal::top();
    return ranges[op.idx];
}

std::vector<AbsVal>
analyzeRanges(const OptBuffer &buf)
{
    std::vector<AbsVal> ranges(buf.size(), AbsVal::top());
    for (size_t i = 0; i < buf.size(); ++i) {
        if (!buf.valid(i))
            continue;
        const FrameUop &fu = buf.at(i);
        const uop::Uop &u = fu.uop;

        if (u.op == Op::LIMM) {
            ranges[i] = AbsVal::constant(u.imm);
            continue;
        }
        if (u.op == Op::MOV) {
            if (const auto a = rangeOf(ranges, fu.srcA))
                ranges[i] = *a;
            continue;
        }
        if (u.op == Op::SETCC) {
            // dst <- (srcA & ~0xff) | cc: two adjacent values.
            const auto a = rangeOf(ranges, fu.srcA);
            if (a && a->isConst()) {
                const int32_t base = a->constant() & ~0xff;
                ranges[i] = AbsVal::range(base, int64_t(base) + 1);
            }
            continue;
        }
        // Only SETCC's value depends on the incoming flags (there is
        // no ADC in this ISA); INC/DEC-style carry-only ALU ops merely
        // preserve CF through their flags result, so their values
        // transfer like any other ALU op.
        if (u.readsFlags && !u.flagsCarryOnly)
            continue;
        if (!isConstFoldableAlu(u.op))
            continue;

        const auto a = rangeOf(ranges, fu.srcA);
        if (!a)
            continue;
        std::optional<AbsVal> b;
        if (!isUnaryAlu(u.op)) {
            if (fu.srcB.isNone())
                b = AbsVal::constant(u.imm);
            else
                b = rangeOf(ranges, fu.srcB);
            if (!b)
                continue;
        }
        ranges[i] = transferAlu(u, *a, b);
    }
    return ranges;
}

// --- linear value forms -------------------------------------------------

bool
linEqual(const LinForm &a, const LinForm &b)
{
    if (!a.known || !b.known || a.isConst != b.isConst)
        return false;
    if (uint32_t(a.k) != uint32_t(b.k))
        return false;
    return a.isConst || a.root == b.root;
}

LinForm
linOf(const std::vector<LinForm> &forms, const Operand &op)
{
    if (op.isNone() || op.flagsView)
        return LinForm::unknown();
    if (op.isLiveIn())
        return LinForm::of(op);
    if (op.idx >= forms.size())
        return LinForm::unknown();
    return forms[op.idx];
}

std::vector<LinForm>
linearForms(const OptBuffer &buf)
{
    std::vector<LinForm> forms(buf.size());
    for (size_t i = 0; i < buf.size(); ++i) {
        const FrameUop &fu = buf.at(i);
        const uop::Uop &u = fu.uop;
        const Operand self = Operand::prod(uint16_t(i));
        forms[i] = LinForm::of(self);
        // Carry-only flag readers (INC/DEC) still compute plain
        // ADD/SUB values; any other flags consumer is opaque.
        if (!buf.valid(i) || (u.readsFlags && !u.flagsCarryOnly))
            continue;
        switch (u.op) {
          case Op::LIMM:
            forms[i] = LinForm::constant(u.imm);
            break;
          case Op::MOV:
            if (!fu.srcA.isNone()) {
                const LinForm a = linOf(forms, fu.srcA);
                if (a.known)
                    forms[i] = a;
            }
            break;
          case Op::ADD:
          case Op::SUB:
            if (fu.srcB.isNone() && !fu.srcA.isNone()) {
                const LinForm a = linOf(forms, fu.srcA);
                if (a.known) {
                    const int64_t d =
                        u.op == Op::ADD ? int64_t(u.imm)
                                        : -int64_t(u.imm);
                    forms[i] = a;
                    forms[i].k += d;
                }
            }
            break;
          default:
            break;
        }
    }
    return forms;
}

// --- canonical addresses ------------------------------------------------

CanonAddr
canonAddr(const OptBuffer &buf, size_t idx,
          const std::vector<LinForm> &forms)
{
    return canonAddrOf(buf.at(idx), forms);
}

CanonAddr
canonAddrOf(const FrameUop &fu, const std::vector<LinForm> &forms)
{
    CanonAddr c;
    if (!fu.uop.isMem())
        return c;
    const Operand &index_op = fu.uop.isStore() ? fu.srcC : fu.srcB;

    LinForm base = fu.srcA.isNone() ? LinForm::constant(0)
                                    : linOf(forms, fu.srcA);
    LinForm index = index_op.isNone() ? LinForm::constant(0)
                                      : linOf(forms, index_op);
    if (!base.known || !index.known)
        return c;

    c.known = true;
    c.size = fu.uop.memSize;
    c.scale = fu.uop.scale;
    c.disp = fu.uop.imm;

    // Move every constant contribution into disp.
    if (index.isConst) {
        c.disp += index.k * c.scale;
        index = LinForm::constant(0);
        c.scale = 1;
    } else {
        c.disp += index.k * c.scale;
        index.k = 0;
    }
    if (base.isConst) {
        c.disp += base.k;
        base = LinForm::constant(0);
    } else {
        c.disp += base.k;
        base.k = 0;
    }

    // base + root*1 with no base is just root as the base.
    if (base.isConst && !index.isConst && c.scale == 1) {
        base = index;
        index = LinForm::constant(0);
    }
    c.base = base;
    c.index = index;
    return c;
}

bool
addrEqual(const CanonAddr &a, const CanonAddr &b)
{
    return a.known && b.known && linEqual(a.base, b.base) &&
           linEqual(a.index, b.index) && a.scale == b.scale &&
           uint32_t(a.disp) == uint32_t(b.disp) && a.size == b.size;
}

} // namespace replay::vstatic
