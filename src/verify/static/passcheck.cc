#include "verify/static/passcheck.hh"

#include <optional>

#include "uop/evaluator.hh"

namespace replay::vstatic {

using opt::ExitBinding;
using opt::PassId;
using uop::Op;
using uop::UReg;

namespace {

/** Everything one checkPass invocation needs, analyses precomputed on
 *  the before-snapshot (ranges lazily: only const-prop consults them). */
struct PassCtx
{
    PassId pass;
    const OptBuffer &before;
    const OptBuffer &after;
    const opt::OptConfig &cfg;
    const opt::AliasHints *alias;
    Report &rep;
    std::vector<LinForm> forms;
    std::vector<uint16_t> vn;
    std::optional<std::vector<AbsVal>> ranges;

    const std::vector<AbsVal> &
    getRanges()
    {
        if (!ranges)
            ranges = analyzeRanges(before);
        return *ranges;
    }
};

/** The Check a failed value obligation maps to under this pass. */
Check
valueCheckFor(PassId pass)
{
    switch (pass) {
      case PassId::CSE: return Check::PASS_CSE_AVAIL;
      case PassId::SF:  return Check::PASS_SF_ALIAS;
      default:          return Check::PASS_VALUE;
    }
}

// ---- after-buffer observations (plain scans; the checker must not
// perturb the primitive counters the datapath benchmark reads) -------

bool
flagsObservedAfter(const OptBuffer &after, size_t idx)
{
    const Operand target = Operand::prodFlags(uint16_t(idx));
    for (size_t i = 0; i < after.size(); ++i) {
        if (after.valid(i) && after.at(i).flagsSrc == target)
            return true;
    }
    for (const auto &exit : after.exits()) {
        if (exit.flags == target)
            return true;
    }
    return false;
}

bool
referencedAfter(const OptBuffer &after, size_t idx)
{
    const Operand v = Operand::prod(uint16_t(idx));
    const Operand f = Operand::prodFlags(uint16_t(idx));
    auto hits = [&](const Operand &op) { return op == v || op == f; };
    for (size_t i = 0; i < after.size(); ++i) {
        if (!after.valid(i))
            continue;
        const FrameUop &fu = after.at(i);
        if (hits(fu.srcA) || hits(fu.srcB) || hits(fu.srcC) ||
            hits(fu.flagsSrc)) {
            return true;
        }
    }
    for (const auto &exit : after.exits()) {
        for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
            if (OptBuffer::archLiveOut(static_cast<UReg>(r)) &&
                hits(exit.regs[r])) {
                return true;
            }
        }
        if (hits(exit.flags))
            return true;
    }
    return false;
}

bool
marksUnsafeInAfter(const PassCtx &c, const std::vector<uint16_t> &marks)
{
    for (const uint16_t m : marks) {
        if (!c.after.valid(m) || !c.after.at(m).unsafe)
            return false;
    }
    return true;
}

/** An AVAILABLE / properly-speculated availability verdict. */
bool
availabilityOk(const PassCtx &c, LoadAvail av,
               const std::vector<uint16_t> &marks)
{
    if (av == LoadAvail::AVAILABLE)
        return true;
    return av == LoadAvail::NEEDS_SPECULATION && c.cfg.speculativeMem &&
           marksUnsafeInAfter(c, marks);
}

/** Linear form of a (possibly rewritten) micro-op whose operands are
 *  resolved in the before-snapshot's index space. */
LinForm
linFormOfUop(const FrameUop &fu, const std::vector<LinForm> &forms)
{
    const uop::Uop &u = fu.uop;
    if (u.readsFlags && !u.flagsCarryOnly)
        return LinForm::unknown();
    switch (u.op) {
      case Op::LIMM:
        return LinForm::constant(u.imm);
      case Op::MOV:
        return fu.srcA.isNone() ? LinForm::unknown()
                                : linOf(forms, fu.srcA);
      case Op::ADD:
      case Op::SUB: {
        if (!fu.srcB.isNone() || fu.srcA.isNone())
            return LinForm::unknown();
        LinForm a = linOf(forms, fu.srcA);
        if (!a.known)
            return a;
        a.k += u.op == Op::ADD ? int64_t(u.imm) : -int64_t(u.imm);
        return a;
      }
      default:
        return LinForm::unknown();
    }
}

// ---- operand value equivalence -----------------------------------------
//
// Passes compose within one snapshot window: CSE may redirect a use to
// a leader whose own operands were rewritten moments earlier in the
// same pass run, SF may forward a store value that was itself forwarded
// into the store.  One-step allowances cannot discharge such chains, so
// equivalence is a congruence: two operands are equal when their linear
// forms agree, when their producers are structurally congruent pure
// expressions (operands compared recursively), or when load/forwarding
// resolution proves a load yields another slot's value.  Producers
// always precede consumers, so the recursion strictly descends;
// MAX_EQ_DEPTH only bounds the constant factor.

constexpr unsigned MAX_EQ_DEPTH = 16;

bool valueEq(PassCtx &c, const Operand &x, const Operand &y,
             unsigned depth = 0);
bool flagsEq(PassCtx &c, const Operand &x, const Operand &y,
             unsigned depth = 0);

/** Congruent expressions: same semantic fields, equivalent operands. */
bool
congruent(PassCtx &c, const FrameUop &fx, const FrameUop &fy,
          unsigned depth)
{
    const uop::Uop &ux = fx.uop;
    const uop::Uop &uy = fy.uop;
    if (ux.op != uy.op || ux.cc != uy.cc || ux.imm != uy.imm ||
        ux.scale != uy.scale || ux.memSize != uy.memSize ||
        ux.signExtend != uy.signExtend ||
        ux.flagsCarryOnly != uy.flagsCarryOnly) {
        return false;
    }
    return valueEq(c, fx.srcA, fy.srcA, depth + 1) &&
           valueEq(c, fx.srcB, fy.srcB, depth + 1) &&
           valueEq(c, fx.srcC, fy.srcC, depth + 1) &&
           (fx.flagsSrc == fy.flagsSrc ||
            flagsEq(c, fx.flagsSrc, fy.flagsSrc, depth + 1));
}

/** Does the load at @p load_idx provably yield the value @p y names?
 *  True when y is (equivalent to) the data operand of the nearest
 *  same-address store, with the speculation obligations met. */
bool
forwardedValueMatches(PassCtx &c, size_t load_idx, const Operand &y,
                      unsigned depth)
{
    const opt::AddrKey addr = opt::AddrKey::of(c.before.at(load_idx));
    for (size_t s = load_idx; s-- > 0;) {
        if (!c.before.valid(s) || !c.before.at(s).uop.isStore())
            continue;
        if (!opt::AddrKey::of(c.before.at(s)).sameAddress(addr))
            continue;       // availability re-walks for aliasing
        if (!valueEq(c, c.before.at(s).srcB, y, depth + 1))
            return false;
        std::vector<uint16_t> marks;
        const LoadAvail av =
            storeForwardAvailability(c.before, s, load_idx, &marks);
        return availabilityOk(c, av, marks);
    }
    return false;
}

/** Clobber walk between two congruent loads, with the address
 *  comparison upgraded from textual AddrKey equality to operand-level
 *  congruence: a store whose base/index are valueEq to the load's lets
 *  the literal displacements decide, mirroring the pass itself (which
 *  compares addresses after same-sweep redirects already unified the
 *  operands).  Never returns MISMATCH. */
LoadAvail
congruentClobberWalk(PassCtx &c, size_t from, size_t to,
                     const opt::AddrKey &addr,
                     std::vector<uint16_t> &marks, unsigned depth)
{
    LoadAvail result = LoadAvail::AVAILABLE;
    for (size_t j = from + 1; j < to; ++j) {
        if (!c.before.valid(j) || !c.before.at(j).uop.isStore())
            continue;
        const opt::AddrKey skey = opt::AddrKey::of(c.before.at(j));
        if (skey.sameAddress(addr))
            return LoadAvail::KILLED;
        if (skey.provablyDisjoint(addr))
            continue;
        if (valueEq(c, skey.base, addr.base, depth + 1) &&
            valueEq(c, skey.index, addr.index, depth + 1) &&
            (skey.index.isNone() || skey.scale == addr.scale)) {
            if (skey.disp == addr.disp && skey.size == addr.size)
                return LoadAvail::KILLED;
            const int64_t s0 = skey.disp, s1 = s0 + skey.size;
            const int64_t l0 = addr.disp, l1 = l0 + addr.size;
            if (s1 <= l0 || l1 <= s0)
                continue;
        }
        result = LoadAvail::NEEDS_SPECULATION;
        marks.push_back(uint16_t(j));
    }
    return result;
}

/** Congruence-aware load-load availability: loadAvailability(), except
 *  the address comparison also accepts addresses whose operands are
 *  valueEq rather than textually identical — a pass routinely rewrites
 *  one load's address operands before matching it against another in
 *  the same run. */
LoadAvail
loadLoadAvail(PassCtx &c, size_t earlier, size_t later,
              std::vector<uint16_t> &marks, unsigned depth)
{
    const LoadAvail direct =
        loadAvailability(c.before, earlier, later, &marks);
    if (direct == LoadAvail::AVAILABLE || direct == LoadAvail::KILLED)
        return direct;
    if (earlier >= later || later >= c.before.size() ||
        !c.before.valid(earlier) || !c.before.valid(later)) {
        return direct;
    }
    const FrameUop &e = c.before.at(earlier);
    const FrameUop &l = c.before.at(later);
    if (direct == LoadAvail::MISMATCH) {
        if (!e.uop.isLoad() || !l.uop.isLoad() || e.uop.op != l.uop.op ||
            e.uop.imm != l.uop.imm || e.uop.scale != l.uop.scale ||
            e.uop.memSize != l.uop.memSize ||
            e.uop.signExtend != l.uop.signExtend) {
            return LoadAvail::MISMATCH;
        }
        if (!valueEq(c, e.srcA, l.srcA, depth + 1) ||
            !valueEq(c, e.srcB, l.srcB, depth + 1)) {
            return LoadAvail::MISMATCH;
        }
    }
    // Re-walk the clobbers with operand congruence: the textual walk
    // over-approximates stores whose operands a same-sweep redirect
    // already unified in the after image.
    marks.clear();
    return congruentClobberWalk(c, earlier, later, opt::AddrKey::of(l),
                                marks, depth);
}

/** Both operands (in the before index space) provably carry the same
 *  runtime value. */
bool
valueEq(PassCtx &c, const Operand &x, const Operand &y, unsigned depth)
{
    if (x == y)
        return true;
    if (x.isNone() || y.isNone() || x.flagsView || y.flagsView)
        return false;
    if (linEqual(linOf(c.forms, x), linOf(c.forms, y)))
        return true;
    if (depth > MAX_EQ_DEPTH)
        return false;
    const bool x_slot = x.isProd() && x.idx < c.before.size() &&
                        c.before.valid(x.idx);
    const bool y_slot = y.isProd() && y.idx < c.before.size() &&
                        c.before.valid(y.idx);
    if (x_slot && y_slot) {
        const FrameUop &fx = c.before.at(x.idx);
        const FrameUop &fy = c.before.at(y.idx);
        // Structurally identical (exact vn) or congruent pure
        // expressions.
        if (isPureValueOp(fx.uop.op) &&
            (c.vn[x.idx] == c.vn[y.idx] || congruent(c, fx, fy, depth))) {
            return true;
        }
        if (fx.uop.isLoad() && fy.uop.isLoad()) {
            // Same-address loads with no intervening clobber (CSE).
            const size_t earlier = x.idx < y.idx ? x.idx : y.idx;
            const size_t later = x.idx < y.idx ? y.idx : x.idx;
            std::vector<uint16_t> marks;
            const LoadAvail av =
                loadLoadAvail(c, earlier, later, marks, depth);
            if (availabilityOk(c, av, marks))
                return true;
        }
    }
    // A load equals the value the nearest same-address store put there
    // (SF) — in either direction; the value side may be any operand,
    // live-ins included.
    if (x_slot && c.before.at(x.idx).uop.isLoad() &&
        forwardedValueMatches(c, x.idx, y, depth)) {
        return true;
    }
    if (y_slot && c.before.at(y.idx).uop.isLoad() &&
        forwardedValueMatches(c, y.idx, x, depth)) {
        return true;
    }
    return false;
}

/** Same-flags equivalence for flags-view operands. */
bool
flagsEq(PassCtx &c, const Operand &x, const Operand &y, unsigned depth)
{
    if (x == y)
        return true;
    if (!x.isProd() || !y.isProd() || !x.flagsView || !y.flagsView)
        return false;
    if (x.idx >= c.before.size() || y.idx >= c.before.size())
        return false;
    if (!c.before.valid(x.idx) || !c.before.valid(y.idx))
        return false;
    if (depth > MAX_EQ_DEPTH)
        return false;
    // Congruent expressions co-produce identical flags.
    return sameExpression(c.before.at(x.idx), c.before.at(y.idx)) ||
           congruent(c, c.before.at(x.idx), c.before.at(y.idx), depth);
}

// ---- structural slot equivalence ---------------------------------------

bool
takesImmOperand(Op op)
{
    switch (op) {
      case Op::ADD:
      case Op::SUB:
      case Op::AND:
      case Op::OR:
      case Op::XOR:
      case Op::SHL:
      case Op::SHR:
      case Op::SAR:
      case Op::MUL:
      case Op::CMP:
      case Op::TEST:
        return true;
      default:
        return false;
    }
}

bool
isCommutative(Op op)
{
    return op == Op::ADD || op == Op::AND || op == Op::OR ||
           op == Op::XOR || op == Op::MUL || op == Op::TEST;
}

/** A second-operand descriptor: a register value or the immediate. */
struct Second
{
    bool isImm = false;
    int64_t imm = 0;
    Operand op;
};

Second
secondOf(const FrameUop &fu)
{
    Second s;
    if (fu.srcB.isNone()) {
        s.isImm = true;
        s.imm = fu.uop.imm;
    } else {
        s.op = fu.srcB;
    }
    return s;
}

/**
 * The operand provably evaluates to @p imm: by linear form when the
 * producing chain is linear, else by the constant lattice (const-prop
 * folds through OR/AND/shift chains the linear forms cannot express).
 */
bool
provablyConst(PassCtx &c, const Operand &op, int32_t imm)
{
    const LinForm f = linOf(c.forms, op);
    if (f.known && f.isConst)
        return uint32_t(f.k) == uint32_t(imm);
    const std::optional<AbsVal> r = rangeOf(c.getRanges(), op);
    return r && r->isConst() && uint32_t(r->constant()) == uint32_t(imm);
}

bool
secondEq(PassCtx &c, const Second &x, const Second &y)
{
    if (x.isImm && y.isImm)
        return uint32_t(x.imm) == uint32_t(y.imm);
    if (x.isImm != y.isImm)
        return provablyConst(c, x.isImm ? y.op : x.op,
                             x.isImm ? x.imm : y.imm);
    return valueEq(c, x.op, y.op);
}

bool
firstVsSecond(PassCtx &c, const Operand &first, const Second &second)
{
    if (second.isImm)
        return provablyConst(c, first, second.imm);
    return valueEq(c, first, second.op);
}

/**
 * The rewritten slot computes the same value (and, per-operand, the
 * same flags) as its before-image: same opcode and semantic fields,
 * operand-wise value equivalence, with immediate-operand unification
 * and commutative swap for the ALU shapes const-prop normalizes.
 */
bool
structuralMatch(PassCtx &c, const FrameUop &b, const FrameUop &a)
{
    const uop::Uop &bu = b.uop;
    const uop::Uop &au = a.uop;
    if (au.op != bu.op || au.cc != bu.cc || au.scale != bu.scale ||
        au.memSize != bu.memSize || au.signExtend != bu.signExtend ||
        au.valueAssert != bu.valueAssert ||
        au.assertOp != bu.assertOp) {
        return false;
    }
    if (!valueEq(c, b.srcC, a.srcC))
        return false;
    if (!(b.flagsSrc == a.flagsSrc) && !flagsEq(c, b.flagsSrc, a.flagsSrc))
        return false;

    if (takesImmOperand(bu.op)) {
        const Second sb = secondOf(b);
        const Second sa = secondOf(a);
        if (valueEq(c, b.srcA, a.srcA) && secondEq(c, sb, sa))
            return true;
        if (isCommutative(bu.op) && firstVsSecond(c, b.srcA, sa) &&
            firstVsSecond(c, a.srcA, sb)) {
            return true;
        }
        return false;
    }
    // Everything else: the immediate is part of the semantics (LIMM
    // value, addressing displacement, assert comparand) and operands
    // match positionally.
    return au.imm == bu.imm && valueEq(c, b.srcA, a.srcA) &&
           valueEq(c, b.srcB, a.srcB);
}

/**
 * An ALU op collapsed to a plain register copy of one operand because
 * the other operand is provably that op's identity element: OR/XOR/ADD
 * with 0, AND with ~0, MUL with 1, and SUB/shift with a zero second
 * operand.  Const-prop emits this shape when the lattice pins one
 * input (e.g. OR of a known-zero with a live-in).
 */
bool
identityCollapse(PassCtx &c, const FrameUop &b, const FrameUop &a)
{
    if (a.uop.op != Op::MOV || a.srcA.isNone() || !b.flagsSrc.isNone())
        return false;
    int32_t id = 0;
    bool second_only = false;
    switch (b.uop.op) {
      case Op::ADD:
      case Op::OR:
      case Op::XOR:
        break;
      case Op::AND:
        id = -1;
        break;
      case Op::MUL:
        id = 1;
        break;
      case Op::SUB:
      case Op::SHL:
      case Op::SHR:
      case Op::SAR:
        second_only = true;
        break;
      default:
        return false;
    }
    const Second s = secondOf(b);
    const bool second_is_id = s.isImm
                                  ? uint32_t(s.imm) == uint32_t(id)
                                  : provablyConst(c, s.op, id);
    if (second_is_id && valueEq(c, b.srcA, a.srcA))
        return true;
    if (second_only)
        return false;
    // Identity in the first operand of a commutative shape.
    return !s.isImm && provablyConst(c, b.srcA, id) &&
           valueEq(c, s.op, a.srcA);
}

/**
 * The address a memory op touches, when the lattice pins every operand
 * to a constant: base + index*scale + disp mod 2^32.  Const-prop
 * legitimately rewrites [reg+reg] into an absolute [imm] form once the
 * lattice proves the registers, which the linear-form canonical address
 * cannot see (AND/shift chains have no linear form).
 */
std::optional<uint32_t>
constAddrOf(PassCtx &c, const FrameUop &fu)
{
    if (!fu.uop.isMem())
        return std::nullopt;
    int64_t addr = int64_t(fu.uop.imm);
    if (!fu.srcA.isNone()) {
        const std::optional<AbsVal> r = rangeOf(c.getRanges(), fu.srcA);
        if (!r || !r->isConst())
            return std::nullopt;
        addr += int64_t(uint32_t(r->constant()));
    }
    const Operand &index_op = fu.uop.isStore() ? fu.srcC : fu.srcB;
    if (!index_op.isNone()) {
        const std::optional<AbsVal> r = rangeOf(c.getRanges(), index_op);
        if (!r || !r->isConst())
            return std::nullopt;
        addr += int64_t(uint32_t(r->constant())) * fu.uop.scale;
    }
    return uint32_t(uint64_t(addr));
}

// ---- per-slot checks ---------------------------------------------------

void
checkMutation(PassCtx &c, size_t i)
{
    const FrameUop &b = c.before.at(i);
    const FrameUop &a = c.after.at(i);
    const uop::Uop &bu = b.uop;
    const uop::Uop &au = a.uop;

    // Identity, ordering, and provenance never change.
    if (au.x86Pc != bu.x86Pc || au.instIdx != bu.instIdx ||
        au.microIdx != bu.microIdx || au.memSeq != bu.memSeq ||
        au.lastOfInst != bu.lastOfInst || a.position != b.position ||
        a.block != b.block) {
        c.rep.add(Check::PASS_STRUCTURE, i,
                  "provenance or ordering metadata mutated");
    }
    if (au.dst != bu.dst) {
        c.rep.add(Check::PASS_STRUCTURE, i,
                  "destination register mutated");
    }
    if (au.target != bu.target)
        c.rep.add(Check::PASS_STRUCTURE, i, "branch target mutated");

    // Unsafe-store marking transitions.
    if (b.unsafe && !a.unsafe)
        c.rep.add(Check::PASS_UNSAFE_RULE, i, "unsafe mark dropped");
    if (!b.unsafe && a.unsafe) {
        const bool ok =
            bu.isStore() &&
            (c.pass == PassId::CSE || c.pass == PassId::SF) &&
            c.cfg.speculativeMem && c.alias &&
            c.alias->cleanForSpeculation(bu.x86Pc, bu.memSeq);
        if (!ok) {
            c.rep.add(Check::PASS_UNSAFE_RULE, i,
                      "illegal unsafe-store marking");
        }
    }

    // Flags production/consumption transitions.
    const Check flags_check =
        c.pass == PassId::RA ? Check::PASS_RA_FLAGS : Check::PASS_FLAGS;
    if (bu.writesFlags && !au.writesFlags &&
        flagsObservedAfter(c.after, i)) {
        c.rep.add(flags_check, i,
                  "flags production dropped while still observed");
    }
    if (!bu.writesFlags && au.writesFlags) {
        // CSE revives a leader's flags for a duplicate that computed a
        // congruent expression with flags enabled — the flags the
        // leader now produces are exactly the ones the duplicate would
        // have.
        bool ok = false;
        for (size_t j = 0; j < c.before.size() && !ok; ++j) {
            ok = j != i && c.before.valid(j) &&
                 c.before.at(j).uop.writesFlags &&
                 isPureValueOp(bu.op) &&
                 (c.vn[j] == c.vn[i] ||
                  congruent(c, c.before.at(j), b, 0));
        }
        if (!ok) {
            c.rep.add(flags_check, i,
                      "flags production appeared without a duplicate");
        }
    }
    if (!bu.readsFlags && au.readsFlags)
        c.rep.add(flags_check, i, "flags consumption appeared");

    // Assert combining has its own fusion obligation.
    if (c.pass == PassId::ASST && bu.op == Op::ASSERT &&
        !bu.valueAssert && au.op == Op::ASSERT && au.valueAssert) {
        bool ok = false;
        if (b.flagsSrc.isProd() && b.flagsSrc.flagsView &&
            b.flagsSrc.idx < c.before.size() &&
            c.before.valid(b.flagsSrc.idx)) {
            const FrameUop &p = c.before.at(b.flagsSrc.idx);
            ok = (p.uop.op == Op::CMP || p.uop.op == Op::TEST) &&
                 au.assertOp == p.uop.op && a.srcA == p.srcA &&
                 a.srcB == p.srcB && au.imm == p.uop.imm &&
                 au.cc == bu.cc && !au.readsFlags &&
                 a.flagsSrc.isNone();
        }
        if (!ok) {
            c.rep.add(Check::PASS_ASST_FUSE, i,
                      "assert fused with a non-matching comparison");
        }
        return;
    }
    if (bu.readsFlags && !au.readsFlags && !bu.flagsCarryOnly) {
        // Outside assert fusion, only carry-only consumers (whose
        // values ignore the incoming flags) may stop reading them.
        c.rep.add(flags_check, i, "flags consumption dropped");
    }

    // An observable flags result pins the producing computation: the
    // operands may only be rewritten value-preservingly in place.
    const bool flags_locked =
        bu.writesFlags && au.writesFlags && flagsObservedAfter(c.after, i);

    if (structuralMatch(c, b, a))
        return;
    if (flags_locked) {
        c.rep.add(flags_check, i,
                  "observable flags producer structurally rewritten");
        return;
    }

    // Value-preserving rewrite of the computation itself.
    if (linEqual(linFormOfUop(a, c.forms), c.forms[i]))
        return;
    if (identityCollapse(c, b, a))
        return;

    // Memory ops: the canonical address (and stored value) decide.
    if (bu.isMem() && au.op == bu.op) {
        const CanonAddr ba = canonAddrOf(b, c.forms);
        const CanonAddr aa = canonAddrOf(a, c.forms);
        bool addr_ok = addrEqual(ba, aa);
        if (!addr_ok && au.memSize == bu.memSize) {
            const std::optional<uint32_t> bc = constAddrOf(c, b);
            const std::optional<uint32_t> ac = constAddrOf(c, a);
            addr_ok = bc && ac && *bc == *ac;
        }
        if (addr_ok && au.signExtend == bu.signExtend &&
            (!bu.isStore() || valueEq(c, b.srcB, a.srcB))) {
            return;
        }
        c.rep.add(valueCheckFor(c.pass), i,
                  "memory access rewritten to a different location");
        return;
    }

    // Const-prop collapse to LIMM: the lattice must agree exactly.
    if (c.pass == PassId::CP && au.op == Op::LIMM) {
        const AbsVal &r = c.getRanges()[i];
        if (r.isConst() && uint32_t(r.constant()) == uint32_t(au.imm))
            return;
        c.rep.add(Check::PASS_CP_LATTICE, i,
                  "constant fold disagrees with the abstract lattice");
        return;
    }

    c.rep.add(valueCheckFor(c.pass), i, "slot value not preserved");
}

void
checkInvalidation(PassCtx &c, size_t i)
{
    const FrameUop &b = c.before.at(i);
    const uop::Uop &bu = b.uop;

    if (bu.isStore()) {
        c.rep.add(Check::PASS_STRUCTURE, i, "store removed");
        return;
    }

    switch (c.pass) {
      case PassId::NOP:
        if (bu.op != Op::NOP && bu.op != Op::JMP)
            c.rep.add(Check::PASS_NOP_ONLY, i,
                      "NOP removal deleted a non-NOP micro-op");
        return;

      case PassId::ASST:
      case PassId::RA:
        c.rep.add(Check::PASS_STRUCTURE, i,
                  "pass may not remove micro-ops");
        return;

      case PassId::CP: {
        if (bu.op != Op::ASSERT || !bu.valueAssert) {
            c.rep.add(Check::PASS_STRUCTURE, i,
                      "const-prop removed a non-assertion");
            return;
        }
        const auto &ranges = c.getRanges();
        const auto ca = rangeOf(ranges, b.srcA);
        const std::optional<AbsVal> cb =
            b.srcB.isNone() ? std::optional<AbsVal>(
                                  AbsVal::constant(bu.imm))
                            : rangeOf(ranges, b.srcB);
        bool proven = false;
        if (ca && cb && ca->isConst() && cb->isConst()) {
            uop::Uop cmp;
            cmp.op = bu.assertOp;
            const auto alu = uop::evalAlu(cmp, uint32_t(ca->constant()),
                                          uint32_t(cb->constant()), 0,
                                          x86::Flags{});
            proven = x86::condTaken(bu.cc, alu.flags);
        }
        if (!proven) {
            c.rep.add(Check::PASS_CP_ASSERT, i,
                      "assert removed though not provably true");
        }
        return;
      }

      case PassId::CSE: {
        if (!bu.isLoad()) {
            c.rep.add(Check::PASS_STRUCTURE, i,
                      "CSE removed a non-load");
            return;
        }
        bool available = false;
        for (size_t k = 0; k < i && !available; ++k) {
            if (!c.before.valid(k) || !c.before.at(k).uop.isLoad())
                continue;
            std::vector<uint16_t> marks;
            const LoadAvail av = loadLoadAvail(c, k, i, marks, 0);
            available = availabilityOk(c, av, marks);
        }
        if (!available || referencedAfter(c.after, i)) {
            c.rep.add(Check::PASS_CSE_AVAIL, i,
                      "load removed without an available earlier load");
        }
        return;
      }

      case PassId::SF: {
        if (!bu.isLoad()) {
            c.rep.add(Check::PASS_STRUCTURE, i,
                      "store forwarding removed a non-load");
            return;
        }
        bool available = false;
        for (size_t s = i; s-- > 0 && !available;) {
            if (!c.before.valid(s) || !c.before.at(s).uop.isStore())
                continue;
            std::vector<uint16_t> marks;
            const LoadAvail av =
                storeForwardAvailability(c.before, s, i, &marks);
            if (av == LoadAvail::MISMATCH)
                continue;
            available = availabilityOk(c, av, marks);
            break;      // nearest same-address store decides
        }
        if (!available || referencedAfter(c.after, i)) {
            c.rep.add(Check::PASS_SF_ALIAS, i,
                      "load removed without a forwardable store");
        }
        return;
      }

      case PassId::DCE: {
        switch (bu.op) {
          case Op::ASSERT:
          case Op::BR:
          case Op::JMPI:
          case Op::LONGFLOW:
            c.rep.add(Check::PASS_DCE_LIVE, i,
                      "side-effecting micro-op removed as dead");
            return;
          case Op::NOP:
          case Op::JMP:
            return;     // trivially dead
          default:
            break;
        }
        if (referencedAfter(c.after, i)) {
            c.rep.add(Check::PASS_DCE_LIVE, i,
                      "live definition removed");
        }
        return;
      }
    }
}

void
checkExits(PassCtx &c)
{
    const auto &bx = c.before.exits();
    const auto &ax = c.after.exits();
    if (ax.size() != bx.size()) {
        c.rep.add(Check::PASS_STRUCTURE, SIZE_MAX,
                  "exit count changed");
        return;
    }
    for (size_t e = 0; e < bx.size(); ++e) {
        if (ax[e].block != bx[e].block) {
            c.rep.add(Check::PASS_STRUCTURE, SIZE_MAX,
                      "exit block attribution changed");
        }
        for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
            const auto reg = static_cast<UReg>(r);
            // ET bindings are dead past the frame; passes may leave
            // them dangling, the lint ignores them, finalize drops
            // them.
            if (!OptBuffer::archLiveOut(reg) || reg == UReg::FLAGS)
                continue;
            if (ax[e].regs[r] == bx[e].regs[r])
                continue;
            if (!valueEq(c, bx[e].regs[r], ax[e].regs[r])) {
                c.rep.add(valueCheckFor(c.pass), SIZE_MAX,
                          std::string("exit binding for ") +
                              uop::uregName(reg) + " not preserved");
            }
        }
        if (!(ax[e].flags == bx[e].flags) &&
            !flagsEq(c, bx[e].flags, ax[e].flags)) {
            c.rep.add(c.pass == PassId::RA ? Check::PASS_RA_FLAGS
                                           : Check::PASS_FLAGS,
                      SIZE_MAX, "exit flags binding not preserved");
        }
    }
}

} // anonymous namespace

Report
checkPass(PassId pass, const OptBuffer &before, const OptBuffer &after,
          const opt::OptConfig &cfg, const opt::AliasHints *alias)
{
    Report rep;
    if (after.size() != before.size()) {
        rep.add(Check::PASS_STRUCTURE, SIZE_MAX,
                "pass changed the slot count");
        return rep;
    }
    PassCtx c{pass, before, after,         cfg,
              alias, rep,   linearForms(before),
              valueNumbers(before), std::nullopt};

    for (size_t i = 0; i < before.size(); ++i) {
        const bool bv = before.valid(i);
        const bool av = after.valid(i);
        if (!bv && av) {
            rep.add(Check::PASS_STRUCTURE, i, "invalid slot resurrected");
            continue;
        }
        if (bv && !av) {
            checkInvalidation(c, i);
            continue;
        }
        if (bv && av && !(before.uopAt(i) == after.uopAt(i)))
            checkMutation(c, i);
    }
    checkExits(c);
    return rep;
}

Report
checkFinalize(const OptBuffer &before, const opt::OptimizedFrame &out)
{
    Report rep;
    std::vector<uint16_t> new_index(before.size(), 0xffff);
    std::vector<uint16_t> keep;
    for (size_t i = 0; i < before.size(); ++i) {
        if (before.valid(i)) {
            new_index[i] = uint16_t(keep.size());
            keep.push_back(uint16_t(i));
        }
    }
    if (out.size() != keep.size()) {
        rep.add(Check::PASS_STRUCTURE, SIZE_MAX,
                "cleanup output count disagrees with surviving slots");
        return rep;
    }

    auto remapped = [&](Operand op) -> std::optional<Operand> {
        if (op.isProd()) {
            if (op.idx >= new_index.size() ||
                new_index[op.idx] == 0xffff) {
                return std::nullopt;
            }
            op.idx = new_index[op.idx];
        }
        return op;
    };
    auto sameRef = [&](const Operand &src, const Operand &dst) {
        const auto want = remapped(src);
        return want && *want == dst;
    };

    for (size_t k = 0; k < keep.size(); ++k) {
        const FrameUop src = before.uopAt(keep[k]);
        const FrameUop dst = out.at(k);
        if (!(dst.uop == src.uop) || dst.unsafe != src.unsafe ||
            dst.block != src.block || dst.position != src.position) {
            rep.add(Check::PASS_STRUCTURE, k,
                    "cleanup altered a surviving micro-op");
            continue;
        }
        if (!sameRef(src.srcA, dst.srcA) || !sameRef(src.srcB, dst.srcB) ||
            !sameRef(src.srcC, dst.srcC) ||
            !sameRef(src.flagsSrc, dst.flagsSrc)) {
            rep.add(Check::PASS_STRUCTURE, k,
                    "cleanup misdirected an operand");
        }
    }

    const ExitBinding &fin = before.finalExit();
    if (out.exit.block != fin.block) {
        rep.add(Check::PASS_STRUCTURE, SIZE_MAX,
                "cleanup changed the final exit's block");
    }
    for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
        const auto reg = static_cast<UReg>(r);
        if (!OptBuffer::archLiveOut(reg)) {
            if (!out.exit.regs[r].isNone()) {
                rep.add(Check::PASS_STRUCTURE, SIZE_MAX,
                        std::string(uop::uregName(reg)) +
                            " binding survived cleanup");
            }
            continue;
        }
        if (!sameRef(fin.regs[r], out.exit.regs[r])) {
            rep.add(Check::PASS_STRUCTURE, SIZE_MAX,
                    std::string("cleanup broke the exit binding for ") +
                        uop::uregName(reg));
        }
    }
    if (!sameRef(fin.flags, out.exit.flags)) {
        rep.add(Check::PASS_STRUCTURE, SIZE_MAX,
                "cleanup broke the exit flags binding");
    }
    return rep;
}

} // namespace replay::vstatic
