/**
 * @file
 * Per-pass translation validation.
 *
 * The optimizer's slot index space is stable across passes (only
 * finalize() compacts), so a pass run is validated by diffing the
 * buffer snapshots around it and statically discharging the pass's
 * obligation for every difference:
 *
 *   NOP   only NOP/JMP micro-ops disappear;
 *   ASST  an assertion fuses exactly its flags producer's comparison;
 *   CP    folds agree with the abstract constant lattice, removed
 *         value assertions are provably true;
 *   RA    rewrites preserve every value (linear-form equivalence) and
 *         never break an observable flags result;
 *   CSE   redirects target available expressions — value-numbering
 *         equality for pure ops, availability across intervening
 *         stores for loads;
 *   SF    forwarded values come from the nearest same-address store
 *         with every may-alias intervening store marked unsafe;
 *   DCE   only side-effect-free micro-ops that are dead in the
 *         resulting buffer disappear.
 *
 * Checks are semantic, not implementation-mirroring: any rewrite that
 * provably preserves values, flags, memory behavior, and exit state
 * passes, whichever pass performed it.  Violations use the shared
 * Check vocabulary of lint.hh.
 */

#ifndef REPLAY_VERIFY_STATIC_PASSCHECK_HH
#define REPLAY_VERIFY_STATIC_PASSCHECK_HH

#include "opt/optimizer.hh"
#include "verify/static/lint.hh"

namespace replay::vstatic {

/**
 * Validate one pass invocation: @p before is the buffer snapshot when
 * the pass started, @p after the buffer it produced.  @p cfg and
 * @p alias are the optimizer's configuration and alias profile (alias
 * may be null), consulted for the speculative-memory obligations.
 */
Report checkPass(opt::PassId pass, const OptBuffer &before,
                 const OptBuffer &after, const opt::OptConfig &cfg,
                 const opt::AliasHints *alias);

/**
 * Validate the Cleanup step: @p out must contain exactly @p before's
 * valid slots in position order, operand indices compacted, ET exit
 * bindings dropped and all surviving references remapped.
 */
Report checkFinalize(const OptBuffer &before,
                     const opt::OptimizedFrame &out);

} // namespace replay::vstatic

#endif // REPLAY_VERIFY_STATIC_PASSCHECK_HH
