/**
 * @file
 * Optimizer attachment of the static verifier.
 *
 * The StaticChecker implements opt::PassObserver: it snapshots the
 * buffer before every pass, discharges the pass's translation
 * obligation (passcheck.hh) and re-lints the result (lint.hh), and
 * validates the Cleanup compaction.  It installs itself through the
 * optimizer's observer-factory inversion point, so the optimizer
 * stays free of any dependency on the verification layer.
 *
 * Enabling policy: on by default in debug and sanitizer builds;
 * REPLAY_STATIC_CHECK=1 / =0 overrides either way.  The checker
 * panics on the first violation when installed with Action::PANIC
 * (the in-simulator default — a violation is an optimizer bug) and
 * only counts when installed with Action::COUNT (the tools' mode,
 * which reports totals).
 */

#ifndef REPLAY_VERIFY_STATIC_HOOK_HH
#define REPLAY_VERIFY_STATIC_HOOK_HH

#include <array>
#include <atomic>
#include <cstdint>

#include "opt/optimizer.hh"
#include "verify/static/lint.hh"

namespace replay::vstatic {

/** What to do when a check fails. */
enum class Action : uint8_t
{
    PANIC,      ///< abort on the first violation (debug hook)
    COUNT,      ///< accumulate counters only (tools)
};

/** Global, thread-safe counters of the installed checker. */
struct StaticCheckStats
{
    std::atomic<uint64_t> framesChecked{0};
    std::atomic<uint64_t> passesChecked{0};
    std::atomic<uint64_t> lintViolations{0};
    std::atomic<uint64_t> passViolations{0};
    std::array<std::atomic<uint64_t>, opt::NUM_PASS_IDS> byPass{};
    std::array<std::atomic<uint64_t>, NUM_CHECKS> byCheck{};

    void reset();

    uint64_t
    violations() const
    {
        return lintViolations.load(std::memory_order_relaxed) +
               passViolations.load(std::memory_order_relaxed);
    }
};

StaticCheckStats &staticCheckStats();

/** Install the checker as the optimizer's pass-observer factory. */
void installStaticChecker(Action action);

/** Detach the checker (leaves the counters untouched). */
void uninstallStaticChecker();

bool staticCheckerInstalled();

/**
 * One-shot enabling policy, called from the simulator entry points:
 * installs the PANIC-mode checker when the build is Debug or
 * sanitized, or when REPLAY_STATIC_CHECK=1; REPLAY_STATIC_CHECK=0
 * forces it off everywhere.
 */
void maybeEnableStaticCheckFromEnv();

} // namespace replay::vstatic

#endif // REPLAY_VERIFY_STATIC_HOOK_HH
