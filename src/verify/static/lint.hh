/**
 * @file
 * IR lint: well-formedness invariants of the frame micro-op IR.
 *
 * The lint runs over three shapes of the IR — the full optimization
 * buffer (mid-pipeline, invalid slots present, ET exit bindings live),
 * the compacted OptimizedFrame body, and the deposited core::Frame —
 * and checks the invariants every consumer of the IR silently relies
 * on: operand arity and register classes per opcode, def-before-use,
 * flags def/use wiring, assertion form, side-exit state completeness,
 * memory-operand shape, unsafe-store marking, and (at the frame
 * level) the pristine-body integrity hash and the unsafe-store list.
 *
 * The Check enum also carries the per-pass translation obligations of
 * passcheck.hh so one Report/stats vocabulary covers both clients.
 */

#ifndef REPLAY_VERIFY_STATIC_LINT_HH
#define REPLAY_VERIFY_STATIC_LINT_HH

#include <string>
#include <vector>

#include "core/frame.hh"
#include "verify/static/dataflow.hh"

namespace replay::vstatic {

/** Everything the static verifier can complain about. */
enum class Check : uint8_t
{
    // -- IR lint invariants ---------------------------------------------
    LINT_ARITY,         ///< operand arity per opcode
    LINT_REG_CLASS,     ///< register classes per opcode
    LINT_DEF_USE,       ///< def-before-use / dangling reference
    LINT_FLAGS,         ///< flags def/use wiring consistency
    LINT_ASSERT,        ///< assertion form and side-exit shape
    LINT_EXIT,          ///< exit-state completeness and references
    LINT_UNSAFE,        ///< unsafe mark on a non-store
    LINT_CONTROL,       ///< control placement (BR forbidden, JMPI last)
    LINT_MEM,           ///< memory form (scale / memSize / signExtend)
    LINT_PROVENANCE,    ///< uop provenance vs the frame's x86 path
    LINT_BODY_HASH,     ///< pristine-body integrity hash mismatch
    LINT_UNSAFE_LIST,   ///< Frame::unsafeStores vs body's unsafe marks
    // -- per-pass translation obligations (passcheck.hh) -----------------
    PASS_STRUCTURE,     ///< slot/exit geometry or metadata mutated
    PASS_VALUE,         ///< surviving slot's value not preserved
    PASS_FLAGS,         ///< observable flags semantics not preserved
    PASS_NOP_ONLY,      ///< NOP removal deleted a non-NOP/JMP
    PASS_ASST_FUSE,     ///< assert combining fused a non-matching pair
    PASS_CP_LATTICE,    ///< const-prop fold disagrees with the lattice
    PASS_CP_ASSERT,     ///< assert removed though not provably true
    PASS_RA_FLAGS,      ///< reassociation broke observable flags
    PASS_CSE_AVAIL,     ///< CSE reused a non-available expression
    PASS_SF_ALIAS,      ///< store-forward crossed a may-alias store
    PASS_DCE_LIVE,      ///< DCE removed a live definition
    PASS_UNSAFE_RULE,   ///< illegal unsafe-store marking transition
    NUM_CHECKS,
};

inline constexpr unsigned NUM_CHECKS =
    static_cast<unsigned>(Check::NUM_CHECKS);

/** Short stable name ("arity", "dce-live", ...), for stats and JSON. */
const char *checkName(Check check);

/** Is this Check one of the per-pass obligations? */
bool isPassCheck(Check check);

/** One finding. */
struct Violation
{
    Check check = Check::LINT_ARITY;
    size_t slot = SIZE_MAX;     ///< buffer slot, or SIZE_MAX
    std::string detail;
};

/** All findings of one lint or pass-check invocation. */
struct Report
{
    std::vector<Violation> violations;

    bool ok() const { return violations.empty(); }

    void
    add(Check check, size_t slot, std::string detail)
    {
        violations.push_back({check, slot, std::move(detail)});
    }

    void
    merge(Report other)
    {
        for (auto &v : other.violations)
            violations.push_back(std::move(v));
    }

    /** "arity@3: ...; flags@7: ..." (at most @p max_items items). */
    std::string summary(size_t max_items = 6) const;
};

/** Lint knobs for the different IR shapes. */
struct LintOptions
{
    /**
     * The buffer is a compacted body view (bufferView()): every slot
     * valid, ET exit bindings dropped.  Off for mid-pipeline buffers,
     * where ET bindings are present and — being dead past the frame
     * boundary — may legally dangle.
     */
    bool compacted = false;
};

/** Lint one buffer against the well-formedness invariants. */
Report lintBuffer(const OptBuffer &buf, const LintOptions &opt = {});

/** Rebuild a buffer view of a compacted body (exact same slots). */
OptBuffer bufferView(const opt::OptimizedFrame &body);

/** Lint a compacted body. */
Report lintBody(const opt::OptimizedFrame &body);

/**
 * Lint a deposited frame: the body plus frame-level invariants — the
 * pristine-body hash anchor (catches bit-level corruption that is
 * still structurally well-formed IR), the unsafe-store list, uop
 * provenance against the encoded x86 path, and dynamic-exit shape.
 */
Report lintFrame(const core::Frame &frame);

} // namespace replay::vstatic

#endif // REPLAY_VERIFY_STATIC_LINT_HH
