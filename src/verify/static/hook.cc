#include "verify/static/hook.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "util/logging.hh"
#include "verify/static/passcheck.hh"

namespace replay::vstatic {

namespace {

std::atomic<Action> g_action{Action::PANIC};

/** One instance per optimize() call (see PassObserver), so per-frame
 *  state needs no locking; only the global stats are shared. */
class StaticChecker final : public opt::PassObserver
{
  public:
    StaticChecker(const opt::OptConfig &cfg, const opt::AliasHints *alias)
        : cfg_(cfg), alias_(alias)
    {
    }

    void
    onRemapped(const OptBuffer &buf) override
    {
        account("remap", nullptr, lintBuffer(buf));
        prev_ = buf;
        have_prev_ = true;
    }

    void
    onPass(opt::PassId pass, unsigned changed,
           const OptBuffer &buf) override
    {
        (void)changed;
        if (!have_prev_) {      // defensive: remap callback missed
            prev_ = buf;
            have_prev_ = true;
            return;
        }
        staticCheckStats().passesChecked.fetch_add(
            1, std::memory_order_relaxed);
        Report rep = checkPass(pass, prev_, buf, cfg_, alias_);
        rep.merge(lintBuffer(buf));
        account(opt::passIdName(pass), &pass, rep, &buf);
        prev_ = buf;
    }

    void
    onFinalized(const opt::OptimizedFrame &out) override
    {
        Report rep;
        if (have_prev_)
            rep = checkFinalize(prev_, out);
        rep.merge(lintBody(out));
        account("cleanup", nullptr, rep);
        staticCheckStats().framesChecked.fetch_add(
            1, std::memory_order_relaxed);
    }

  private:
    void
    account(const char *stage, const opt::PassId *pass, const Report &rep,
            const OptBuffer *after = nullptr)
    {
        if (rep.ok())
            return;
        auto &stats = staticCheckStats();
        for (const Violation &v : rep.violations) {
            auto &bucket = isPassCheck(v.check) ? stats.passViolations
                                                : stats.lintViolations;
            bucket.fetch_add(1, std::memory_order_relaxed);
            stats.byCheck[unsigned(v.check)].fetch_add(
                1, std::memory_order_relaxed);
            if (pass) {
                stats.byPass[unsigned(*pass)].fetch_add(
                    1, std::memory_order_relaxed);
            }
        }
        if (g_action.load(std::memory_order_relaxed) == Action::PANIC) {
            if (have_prev_) {
                std::fprintf(stderr, "--- buffer before %s ---\n%s\n",
                             stage, prev_.dump().c_str());
            }
            if (after) {
                std::fprintf(stderr, "--- buffer after %s ---\n%s\n",
                             stage, after->dump().c_str());
            }
            panic("static check failed after %s: %s", stage,
                  rep.summary().c_str());
        }
    }

    const opt::OptConfig cfg_;
    const opt::AliasHints *alias_;
    OptBuffer prev_;
    bool have_prev_ = false;
};

std::unique_ptr<opt::PassObserver>
makeChecker(const opt::OptConfig &cfg, const opt::AliasHints *alias)
{
    return std::make_unique<StaticChecker>(cfg, alias);
}

} // anonymous namespace

void
StaticCheckStats::reset()
{
    framesChecked.store(0, std::memory_order_relaxed);
    passesChecked.store(0, std::memory_order_relaxed);
    lintViolations.store(0, std::memory_order_relaxed);
    passViolations.store(0, std::memory_order_relaxed);
    for (auto &c : byPass)
        c.store(0, std::memory_order_relaxed);
    for (auto &c : byCheck)
        c.store(0, std::memory_order_relaxed);
}

StaticCheckStats &
staticCheckStats()
{
    static StaticCheckStats stats;
    return stats;
}

void
installStaticChecker(Action action)
{
    g_action.store(action, std::memory_order_relaxed);
    opt::setPassObserverFactory(&makeChecker);
}

void
uninstallStaticChecker()
{
    opt::setPassObserverFactory(nullptr);
}

bool
staticCheckerInstalled()
{
    return opt::passObserverFactory() == &makeChecker;
}

void
maybeEnableStaticCheckFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
#if !defined(NDEBUG) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__)
        bool on = true;
#else
        bool on = false;
#endif
        // NOLINTNEXTLINE(concurrency-mt-unsafe): under call_once, and
        // the environment is never mutated after process start.
        if (const char *env = std::getenv("REPLAY_STATIC_CHECK"))
            on = !(env[0] == '0' && env[1] == '\0');
        if (on)
            installStaticChecker(Action::PANIC);
    });
}

} // namespace replay::vstatic
