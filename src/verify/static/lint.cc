#include "verify/static/lint.hh"

#include <algorithm>
#include <sstream>

#include "fault/faultinjector.hh"

namespace replay::vstatic {

using uop::Op;
using uop::UReg;

const char *
checkName(Check check)
{
    switch (check) {
      case Check::LINT_ARITY:       return "arity";
      case Check::LINT_REG_CLASS:   return "reg-class";
      case Check::LINT_DEF_USE:     return "def-use";
      case Check::LINT_FLAGS:       return "flags";
      case Check::LINT_ASSERT:      return "assert";
      case Check::LINT_EXIT:        return "exit";
      case Check::LINT_UNSAFE:      return "unsafe";
      case Check::LINT_CONTROL:     return "control";
      case Check::LINT_MEM:         return "mem";
      case Check::LINT_PROVENANCE:  return "provenance";
      case Check::LINT_BODY_HASH:   return "body-hash";
      case Check::LINT_UNSAFE_LIST: return "unsafe-list";
      case Check::PASS_STRUCTURE:   return "pass-structure";
      case Check::PASS_VALUE:       return "pass-value";
      case Check::PASS_FLAGS:       return "pass-flags";
      case Check::PASS_NOP_ONLY:    return "nop-only";
      case Check::PASS_ASST_FUSE:   return "asst-fuse";
      case Check::PASS_CP_LATTICE:  return "cp-lattice";
      case Check::PASS_CP_ASSERT:   return "cp-assert";
      case Check::PASS_RA_FLAGS:    return "ra-flags";
      case Check::PASS_CSE_AVAIL:   return "cse-avail";
      case Check::PASS_SF_ALIAS:    return "sf-alias";
      case Check::PASS_DCE_LIVE:    return "dce-live";
      case Check::PASS_UNSAFE_RULE: return "unsafe-rule";
      case Check::NUM_CHECKS:       break;
    }
    return "?";
}

bool
isPassCheck(Check check)
{
    return check >= Check::PASS_STRUCTURE && check < Check::NUM_CHECKS;
}

std::string
Report::summary(size_t max_items) const
{
    std::ostringstream out;
    for (size_t i = 0; i < violations.size() && i < max_items; ++i) {
        const Violation &v = violations[i];
        if (i)
            out << "; ";
        out << checkName(v.check);
        if (v.slot != SIZE_MAX)
            out << '@' << v.slot;
        out << ": " << v.detail;
    }
    if (violations.size() > max_items)
        out << "; ... (" << violations.size() - max_items << " more)";
    return out.str();
}

namespace {

/** What a value operand may be: an integer or an FP register value. */
enum class RegClass : uint8_t
{
    INT,
    FP,
    UNKNOWN,    ///< unresolvable (dangling ref); def-use reports it
};

RegClass
classOf(const OptBuffer &buf, const Operand &op)
{
    if (op.flagsView)
        return RegClass::UNKNOWN;
    if (op.isLiveIn())
        return uop::isFpReg(op.reg) ? RegClass::FP : RegClass::INT;
    if (op.isProd()) {
        if (op.idx >= buf.size())
            return RegClass::UNKNOWN;
        const UReg dst = buf.at(op.idx).uop.dst;
        if (dst == UReg::NONE)
            return RegClass::UNKNOWN;
        return uop::isFpReg(dst) ? RegClass::FP : RegClass::INT;
    }
    return RegClass::UNKNOWN;
}

/** Ops the translator (or CSE's leader revival) may mark writesFlags. */
bool
mayWriteFlags(Op op)
{
    switch (op) {
      case Op::ADD:
      case Op::SUB:
      case Op::AND:
      case Op::OR:
      case Op::XOR:
      case Op::SHL:
      case Op::SHR:
      case Op::SAR:
      case Op::MUL:
      case Op::NEG:
      case Op::CMP:
      case Op::TEST:
        return true;
      default:
        return false;
    }
}

/** Ops with a register result in the integer namespace. */
bool
producesIntValue(Op op)
{
    switch (op) {
      case Op::LIMM:
      case Op::MOV:
      case Op::ADD:
      case Op::SUB:
      case Op::AND:
      case Op::OR:
      case Op::XOR:
      case Op::SHL:
      case Op::SHR:
      case Op::SAR:
      case Op::MUL:
      case Op::DIVQ:
      case Op::DIVR:
      case Op::NOT:
      case Op::NEG:
      case Op::SETCC:
      case Op::LOAD:
        return true;
      default:
        return false;
    }
}

bool
producesFpValue(Op op)
{
    switch (op) {
      case Op::FLOAD:
      case Op::FADD:
      case Op::FSUB:
      case Op::FMUL:
      case Op::FDIV:
        return true;
      default:
        return false;
    }
}

/** One slot's lint pass.  @p last_valid is the last valid slot index. */
void
lintSlot(const OptBuffer &buf, size_t i, size_t last_valid, Report &rep)
{
    const FrameUop &fu = buf.at(i);
    const uop::Uop &u = fu.uop;
    const Op op = u.op;

    // ---- control placement ---------------------------------------------
    if (op == Op::BR) {
        rep.add(Check::LINT_CONTROL, i,
                "conditional branch in frame body");
        return;     // the shape rules below don't apply to BR
    }
    if (op == Op::JMPI && i != last_valid) {
        rep.add(Check::LINT_CONTROL, i,
                "indirect jump is not the frame's last micro-op");
    }

    // ---- operand arity per opcode ---------------------------------------
    auto req = [&](const Operand &src, UReg arch, const char *name) {
        if (src.isNone() || arch == UReg::NONE) {
            rep.add(Check::LINT_ARITY, i,
                    std::string(uop::opName(op)) + " requires " + name);
        }
    };
    auto forbid = [&](const Operand &src, UReg arch, const char *name) {
        if (!src.isNone() || arch != UReg::NONE) {
            rep.add(Check::LINT_ARITY, i,
                    std::string(uop::opName(op)) + " forbids " + name);
        }
    };
    auto reqDst = [&] {
        if (u.dst == UReg::NONE || u.dst == UReg::FLAGS ||
            u.dst >= UReg::NUM) {
            rep.add(Check::LINT_ARITY, i,
                    std::string(uop::opName(op)) +
                        " requires a register destination");
        }
    };
    auto forbidDst = [&] {
        if (u.dst != UReg::NONE) {
            rep.add(Check::LINT_ARITY, i,
                    std::string(uop::opName(op)) +
                        " forbids a destination");
        }
    };
    // Renamed and architectural operand fields must agree on presence:
    // every pass edit keeps them in sync (redirects never change
    // NONE-ness; folds clear both sides together).
    auto presence = [&](const Operand &src, UReg arch, const char *name) {
        if (src.isNone() != (arch == UReg::NONE)) {
            rep.add(Check::LINT_ARITY, i,
                    std::string("renamed/architectural ") + name +
                        " presence mismatch");
        }
    };
    presence(fu.srcA, u.srcA, "srcA");
    presence(fu.srcB, u.srcB, "srcB");
    presence(fu.srcC, u.srcC, "srcC");

    switch (op) {
      case Op::NOP:
      case Op::JMP:
      case Op::LONGFLOW:
        forbidDst();
        forbid(fu.srcA, u.srcA, "srcA");
        forbid(fu.srcB, u.srcB, "srcB");
        forbid(fu.srcC, u.srcC, "srcC");
        break;
      case Op::LIMM:
        reqDst();
        forbid(fu.srcA, u.srcA, "srcA");
        forbid(fu.srcB, u.srcB, "srcB");
        forbid(fu.srcC, u.srcC, "srcC");
        break;
      case Op::MOV:
      case Op::NOT:
      case Op::NEG:
        reqDst();
        req(fu.srcA, u.srcA, "srcA");
        forbid(fu.srcB, u.srcB, "srcB");
        forbid(fu.srcC, u.srcC, "srcC");
        break;
      case Op::ADD:
      case Op::SUB:
      case Op::AND:
      case Op::OR:
      case Op::XOR:
      case Op::SHL:
      case Op::SHR:
      case Op::SAR:
      case Op::MUL:
        reqDst();
        req(fu.srcA, u.srcA, "srcA");
        forbid(fu.srcC, u.srcC, "srcC");
        break;      // srcB optional: immediate second operand
      case Op::DIVQ:
      case Op::DIVR:
        reqDst();
        req(fu.srcA, u.srcA, "srcA");
        req(fu.srcB, u.srcB, "srcB");
        req(fu.srcC, u.srcC, "srcC");
        break;
      case Op::CMP:
      case Op::TEST:
        forbidDst();
        req(fu.srcA, u.srcA, "srcA");
        forbid(fu.srcC, u.srcC, "srcC");
        break;
      case Op::SETCC:
        reqDst();
        req(fu.srcA, u.srcA, "srcA");
        forbid(fu.srcB, u.srcB, "srcB");
        forbid(fu.srcC, u.srcC, "srcC");
        if (u.cc == x86::Cond::NONE)
            rep.add(Check::LINT_ARITY, i, "SETCC without condition");
        break;
      case Op::LOAD:
      case Op::FLOAD:
        reqDst();
        forbid(fu.srcC, u.srcC, "srcC");
        break;      // base/index both optional (absolute addressing)
      case Op::STORE:
      case Op::FSTORE:
        forbidDst();
        req(fu.srcB, u.srcB, "store value");
        break;      // base (srcA) / index (srcC) optional
      case Op::JMPI:
        forbidDst();
        req(fu.srcA, u.srcA, "srcA");
        forbid(fu.srcB, u.srcB, "srcB");
        forbid(fu.srcC, u.srcC, "srcC");
        break;
      case Op::ASSERT:
        forbidDst();
        forbid(fu.srcC, u.srcC, "srcC");
        break;      // srcA/srcB shape checked with the assert rules
      case Op::FADD:
      case Op::FSUB:
      case Op::FMUL:
      case Op::FDIV:
        reqDst();
        req(fu.srcA, u.srcA, "srcA");
        req(fu.srcB, u.srcB, "srcB");
        forbid(fu.srcC, u.srcC, "srcC");
        break;
      default:
        break;
    }

    // ---- def-before-use --------------------------------------------------
    auto checkUse = [&](const Operand &src, const char *name) {
        if (src.isNone())
            return;
        if (!operandReaches(buf, i, src)) {
            rep.add(Check::LINT_DEF_USE, i,
                    std::string(name) + " references " +
                        (src.isProd() ? "an invalid or later slot"
                                      : "nothing"));
            return;
        }
        if (src.isProd() && !src.flagsView &&
            buf.at(src.idx).uop.dst == UReg::NONE) {
            rep.add(Check::LINT_DEF_USE, i,
                    std::string(name) +
                        " reads a producer with no register result");
        }
        if (src.isLiveIn() && src.reg >= UReg::NUM) {
            rep.add(Check::LINT_DEF_USE, i,
                    std::string(name) + " live-in register out of range");
        }
    };
    checkUse(fu.srcA, "srcA");
    checkUse(fu.srcB, "srcB");
    checkUse(fu.srcC, "srcC");
    checkUse(fu.flagsSrc, "flagsSrc");

    // ---- flags def/use wiring --------------------------------------------
    if (u.readsFlags != !fu.flagsSrc.isNone()) {
        rep.add(Check::LINT_FLAGS, i,
                u.readsFlags ? "readsFlags without a flags source"
                             : "flags source without readsFlags");
    }
    if (!fu.flagsSrc.isNone()) {
        if (!fu.flagsSrc.flagsView) {
            rep.add(Check::LINT_FLAGS, i,
                    "flags source is not a flags view");
        } else if (fu.flagsSrc.isLiveIn() &&
                   fu.flagsSrc.reg != UReg::FLAGS) {
            rep.add(Check::LINT_FLAGS, i,
                    "live-in flags source names a non-FLAGS register");
        } else if (fu.flagsSrc.isProd() &&
                   fu.flagsSrc.idx < buf.size() &&
                   !buf.at(fu.flagsSrc.idx).uop.writesFlags) {
            rep.add(Check::LINT_FLAGS, i,
                    "flags source producer does not write flags");
        }
    }
    auto valueOperand = [&](const Operand &src, const char *name) {
        if (src.isNone())
            return;
        if (src.flagsView) {
            rep.add(Check::LINT_FLAGS, i,
                    std::string(name) + " is a flags view");
        } else if (src.isLiveIn() && src.reg == UReg::FLAGS) {
            rep.add(Check::LINT_FLAGS, i,
                    std::string(name) + " reads FLAGS as a value");
        }
    };
    valueOperand(fu.srcA, "srcA");
    valueOperand(fu.srcB, "srcB");
    valueOperand(fu.srcC, "srcC");
    if (u.writesFlags && !mayWriteFlags(op)) {
        rep.add(Check::LINT_FLAGS, i,
                std::string(uop::opName(op)) + " cannot write flags");
    }
    if (u.readsFlags && op != Op::SETCC && op != Op::ASSERT &&
        !((op == Op::ADD || op == Op::SUB) && u.flagsCarryOnly)) {
        rep.add(Check::LINT_FLAGS, i,
                std::string(uop::opName(op)) + " cannot read flags");
    }
    if (u.flagsCarryOnly &&
        !((op == Op::ADD || op == Op::SUB) && u.writesFlags &&
          u.readsFlags)) {
        rep.add(Check::LINT_FLAGS, i,
                "flagsCarryOnly outside a flag-carrying ADD/SUB");
    }

    // ---- assertion form --------------------------------------------------
    if (op == Op::ASSERT) {
        if (u.cc == x86::Cond::NONE)
            rep.add(Check::LINT_ASSERT, i, "assert without condition");
        if (u.writesFlags)
            rep.add(Check::LINT_ASSERT, i, "assert writes flags");
        if (u.valueAssert) {
            if (u.assertOp != Op::CMP && u.assertOp != Op::TEST) {
                rep.add(Check::LINT_ASSERT, i,
                        "value assert with non-comparison semantics");
            }
            if (u.readsFlags)
                rep.add(Check::LINT_ASSERT, i,
                        "value assert still reads flags");
            if (fu.srcA.isNone())
                rep.add(Check::LINT_ASSERT, i,
                        "value assert without a compared value");
        } else {
            if (!u.readsFlags)
                rep.add(Check::LINT_ASSERT, i,
                        "flags assert does not read flags");
            if (!fu.srcA.isNone() || !fu.srcB.isNone())
                rep.add(Check::LINT_ASSERT, i,
                        "flags assert with value operands");
        }
    }

    // ---- memory form -----------------------------------------------------
    if (u.isMem()) {
        if (u.scale != 1 && u.scale != 2 && u.scale != 4 && u.scale != 8)
            rep.add(Check::LINT_MEM, i, "invalid index scale");
        if (u.memSize != 1 && u.memSize != 2 && u.memSize != 4)
            rep.add(Check::LINT_MEM, i, "invalid access size");
        if ((op == Op::FLOAD || op == Op::FSTORE) && u.memSize != 4)
            rep.add(Check::LINT_MEM, i, "FP access is not 32-bit");
    }
    if (u.signExtend && !(op == Op::LOAD && u.memSize < 4))
        rep.add(Check::LINT_MEM, i, "signExtend outside a sub-word load");

    // ---- unsafe marking --------------------------------------------------
    if (fu.unsafe && !u.isStore())
        rep.add(Check::LINT_UNSAFE, i, "unsafe mark on a non-store");

    // ---- register classes ------------------------------------------------
    auto wantClass = [&](const Operand &src, RegClass want,
                         const char *name) {
        if (src.isNone() || src.flagsView)
            return;
        const RegClass got = classOf(buf, src);
        if (got != RegClass::UNKNOWN && got != want) {
            rep.add(Check::LINT_REG_CLASS, i,
                    std::string(name) + " expects " +
                        (want == RegClass::FP ? "an FP" : "an integer") +
                        " value");
        }
    };
    if (producesIntValue(op) && uop::isFpReg(u.dst)) {
        rep.add(Check::LINT_REG_CLASS, i,
                "integer result written to an FP register");
    }
    if (producesFpValue(op) && !uop::isFpReg(u.dst)) {
        rep.add(Check::LINT_REG_CLASS, i,
                "FP result written to an integer register");
    }
    switch (op) {
      case Op::FADD:
      case Op::FSUB:
      case Op::FMUL:
      case Op::FDIV:
        wantClass(fu.srcA, RegClass::FP, "srcA");
        wantClass(fu.srcB, RegClass::FP, "srcB");
        break;
      case Op::FSTORE:
        wantClass(fu.srcA, RegClass::INT, "base");
        wantClass(fu.srcC, RegClass::INT, "index");
        wantClass(fu.srcB, RegClass::FP, "stored value");
        break;
      case Op::FLOAD:
        wantClass(fu.srcA, RegClass::INT, "base");
        wantClass(fu.srcB, RegClass::INT, "index");
        break;
      case Op::STORE:
        wantClass(fu.srcA, RegClass::INT, "base");
        wantClass(fu.srcC, RegClass::INT, "index");
        wantClass(fu.srcB, RegClass::INT, "stored value");
        break;
      case Op::LOAD:
        wantClass(fu.srcA, RegClass::INT, "base");
        wantClass(fu.srcB, RegClass::INT, "index");
        break;
      default:
        // Integer ALU, comparisons, moves, JMPI, value asserts.
        wantClass(fu.srcA, RegClass::INT, "srcA");
        wantClass(fu.srcB, RegClass::INT, "srcB");
        wantClass(fu.srcC, RegClass::INT, "srcC");
        break;
    }
}

void
lintExits(const OptBuffer &buf, const LintOptions &opt, Report &rep)
{
    if (buf.exits().empty()) {
        rep.add(Check::LINT_EXIT, SIZE_MAX, "frame has no exit binding");
        return;
    }
    for (const auto &exit : buf.exits()) {
        for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
            const auto reg = static_cast<UReg>(r);
            const Operand &binding = exit.regs[r];
            const std::string name = uop::uregName(reg);
            if (reg == UReg::FLAGS) {
                // The flags *register* slot is bookkeeping only; the
                // flags value is bound through ExitBinding::flags.
                if (!(binding == Operand::liveIn(UReg::FLAGS))) {
                    rep.add(Check::LINT_EXIT, SIZE_MAX,
                            "FLAGS register binding is not the live-in");
                }
                continue;
            }
            if (!OptBuffer::archLiveOut(reg)) {
                // ET temporaries die at the frame boundary; they may
                // dangle mid-pipeline and must be dropped once
                // compacted.
                if (opt.compacted && !binding.isNone()) {
                    rep.add(Check::LINT_EXIT, SIZE_MAX,
                            name + " binding survived compaction");
                }
                continue;
            }
            if (binding.isNone()) {
                rep.add(Check::LINT_EXIT, SIZE_MAX,
                        name + " has no exit binding");
                continue;
            }
            if (binding.flagsView) {
                rep.add(Check::LINT_EXIT, SIZE_MAX,
                        name + " binding is a flags view");
                continue;
            }
            if (!operandReaches(buf, buf.size(), binding)) {
                rep.add(Check::LINT_EXIT, SIZE_MAX,
                        name + " binding references an invalid slot");
                continue;
            }
            if (binding.isProd() &&
                buf.at(binding.idx).uop.dst == UReg::NONE) {
                rep.add(Check::LINT_EXIT, SIZE_MAX,
                        name + " bound to a producer with no result");
                continue;
            }
            const RegClass want =
                uop::isFpReg(reg) ? RegClass::FP : RegClass::INT;
            const RegClass got = classOf(buf, binding);
            if (got != RegClass::UNKNOWN && got != want) {
                rep.add(Check::LINT_EXIT, SIZE_MAX,
                        name + " bound to the wrong register class");
            }
        }
        const Operand &flags = exit.flags;
        if (flags.isNone()) {
            rep.add(Check::LINT_EXIT, SIZE_MAX, "no flags binding");
        } else if (!flags.flagsView) {
            rep.add(Check::LINT_EXIT, SIZE_MAX,
                    "flags binding is not a flags view");
        } else if (!operandReaches(buf, buf.size(), flags)) {
            rep.add(Check::LINT_EXIT, SIZE_MAX,
                    "flags binding references an invalid slot");
        } else if (flags.isLiveIn() && flags.reg != UReg::FLAGS) {
            rep.add(Check::LINT_EXIT, SIZE_MAX,
                    "live-in flags binding names a non-FLAGS register");
        } else if (flags.isProd() &&
                   !buf.at(flags.idx).uop.writesFlags) {
            rep.add(Check::LINT_EXIT, SIZE_MAX,
                    "flags bound to a producer that writes none");
        }
    }
}

} // anonymous namespace

Report
lintBuffer(const OptBuffer &buf, const LintOptions &opt)
{
    Report rep;
    size_t last_valid = SIZE_MAX;
    for (size_t i = buf.size(); i-- > 0;) {
        if (buf.valid(i)) {
            last_valid = i;
            break;
        }
    }
    for (size_t i = 0; i < buf.size(); ++i) {
        if (buf.valid(i))
            lintSlot(buf, i, last_valid, rep);
    }
    lintExits(buf, opt, rep);
    return rep;
}

OptBuffer
bufferView(const opt::OptimizedFrame &body)
{
    OptBuffer buf;
    for (size_t i = 0, n = body.size(); i < n; ++i)
        buf.push(body.at(i));
    buf.addExit(body.exit);
    return buf;
}

Report
lintBody(const opt::OptimizedFrame &body)
{
    LintOptions opt;
    opt.compacted = true;
    return lintBuffer(bufferView(body), opt);
}

Report
lintFrame(const core::Frame &frame)
{
    Report rep = lintBody(frame.body);

    // ---- pristine-body integrity anchor --------------------------------
    // Bit-level corruption (an immediate flip, an opcode flip onto a
    // structurally identical shape) can evade every structural rule;
    // the deposit-time body hash cannot be evaded.  A zero hash means
    // no injector was configured at deposit, so there is nothing to
    // anchor against.
    if (frame.bodyHash != 0 &&
        fault::FaultInjector::hashBody(frame.body) != frame.bodyHash) {
        rep.add(Check::LINT_BODY_HASH, SIZE_MAX,
                "body differs from the pristine deposited body");
    }

    // ---- unsafe-store list ----------------------------------------------
    std::vector<core::MemRef> expect;
    const uop::UopSlab &code = frame.body.code;
    for (size_t i = 0, n = code.size(); i < n; ++i) {
        if (frame.body.unsafe[i] && (code.attr[i] & uop::UA_KIND_STORE))
            expect.push_back({code.instIdx[i], code.memSeq[i]});
    }
    std::sort(expect.begin(), expect.end());
    std::vector<core::MemRef> got = frame.unsafeStores;
    std::sort(got.begin(), got.end());
    if (expect != got) {
        rep.add(Check::LINT_UNSAFE_LIST, SIZE_MAX,
                "unsafe-store list disagrees with the body's marks");
    }

    // ---- provenance against the encoded x86 path ------------------------
    uint16_t prev_inst = 0;
    for (size_t i = 0, n = code.size(); i < n; ++i) {
        const uint16_t inst_idx = code.instIdx[i];
        if (inst_idx >= frame.pcs.size()) {
            rep.add(Check::LINT_PROVENANCE, i,
                    "micro-op attributed past the frame's x86 path");
            continue;
        }
        if (code.x86Pc[i] != frame.pcs[inst_idx]) {
            rep.add(Check::LINT_PROVENANCE, i,
                    "micro-op PC disagrees with the frame path");
        }
        if (inst_idx < prev_inst) {
            rep.add(Check::LINT_PROVENANCE, i,
                    "instruction attribution not monotone");
        }
        prev_inst = inst_idx;
    }

    // ---- dynamic-exit shape ---------------------------------------------
    bool has_jmpi = false;
    for (size_t i = 0, n = code.size(); i < n; ++i)
        has_jmpi |= code.op[i] == Op::JMPI;
    if (has_jmpi != frame.dynamicExit) {
        rep.add(Check::LINT_PROVENANCE, SIZE_MAX,
                has_jmpi ? "indirect exit in a non-dynamic-exit frame"
                         : "dynamic-exit frame without an indirect jump");
    }
    return rep;
}

} // namespace replay::vstatic
