/**
 * @file
 * Dataflow analyses over the frame micro-op IR.
 *
 * Frames are single-entry, single-exit straight-line code with
 * assertion side exits, and the renamed buffer form (slot m writes
 * physical register m) makes every def/use edge explicit.  The
 * analyses here therefore need no iterative worklist: one linear
 * forward or backward sweep per buffer reaches the fixed point.
 *
 * Provided analyses, consumed by the lint and the per-pass translation
 * validator (lint.hh / passcheck.hh):
 *
 *   - reaching definitions   operandReaches(): a PROD reference is
 *                            reached iff its producer is an earlier,
 *                            still-valid slot;
 *   - liveness               liveSlots(): transitive need against the
 *                            frame's declared live-out set (the exit
 *                            bindings) and the side-effecting roots;
 *   - available expressions  valueNumbers() for pure micro-ops and
 *                            loadAvailability() for the memory-aware
 *                            variant CSE/SF rely on;
 *   - constant / value-range analyzeRanges(): abstract interpretation
 *     lattice                on an interval domain, exact constants
 *                            evaluated through uop::evalAlu so the
 *                            abstract semantics can never drift from
 *                            the executable semantics;
 *   - linear value forms     linearForms(): every slot's value as
 *                            (root operand + constant) mod 2^32, the
 *                            equivalence engine behind translation
 *                            validation of copy/const propagation and
 *                            reassociation.
 */

#ifndef REPLAY_VERIFY_STATIC_DATAFLOW_HH
#define REPLAY_VERIFY_STATIC_DATAFLOW_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "opt/passes.hh"

namespace replay::vstatic {

using opt::FrameUop;
using opt::Operand;
using opt::OptBuffer;

// --- reaching definitions -----------------------------------------------

/**
 * Does operand @p op of the consumer at slot @p at name a definition
 * that reaches it?  Live-ins always reach; a PROD reference reaches
 * iff the producer slot is earlier than the consumer and still valid.
 * Exit bindings conceptually sit after the last slot: pass
 * @p at = buf.size().
 */
bool operandReaches(const OptBuffer &buf, size_t at, const Operand &op);

// --- liveness -----------------------------------------------------------

/**
 * Transitive liveness against the frame's declared live-out set.
 *
 * A valid slot is live when it has an architectural side effect
 * (store, assertion, control transfer, LONGFLOW), when an exit binds
 * its value (for an arch-live-out register) or its flags, or when a
 * live slot consumes either result.  One backward sweep suffices:
 * producers always precede consumers.  Invalid slots are never live.
 */
std::vector<bool> liveSlots(const OptBuffer &buf);

// --- available expressions ----------------------------------------------

/** Structural identity of two slots' expressions: same opcode and
 *  semantic fields, same renamed operands.  Two pure slots that
 *  compare equal compute identical values (and identical flags). */
bool sameExpression(const FrameUop &a, const FrameUop &b);

/** A pure value op in the CSE sense (no memory, no side effects). */
bool isPureValueOp(uop::Op op);

/**
 * Value numbering: vn[i] is the earliest valid slot whose expression
 * is structurally identical to slot i's (vn[i] == i for leaders and
 * for slots that are invalid or not pure).  The expression of a pure
 * slot is available at every later point of the frame — straight-line
 * code never kills it.
 */
std::vector<uint16_t> valueNumbers(const OptBuffer &buf);

/** Why an earlier load's value is (or is not) available at a later
 *  same-address load or use point. */
enum class LoadAvail : uint8_t
{
    AVAILABLE,          ///< every intervening store provably disjoint
    NEEDS_SPECULATION,  ///< available only if `mustBeUnsafe` stores
                        ///< are runtime-checked (marked unsafe)
    KILLED,             ///< an intervening store may overwrite it
    MISMATCH,           ///< not the symbolically-same access
};

/**
 * Availability of load @p earlier's value at load @p later (both slot
 * indices; @p earlier < @p later).  Addresses compare symbolically
 * (opt::AddrKey).  When speculation is required, the may-alias
 * intervening store slots are appended to @p must_be_unsafe.
 */
LoadAvail loadAvailability(const OptBuffer &buf, size_t earlier,
                           size_t later,
                           std::vector<uint16_t> *must_be_unsafe);

/**
 * Availability of the value stored by @p store at load @p later
 * (store forwarding).  MISMATCH unless the store is the nearest
 * symbolically-same-address store before the load, both 4 bytes wide.
 */
LoadAvail storeForwardAvailability(const OptBuffer &buf, size_t store,
                                   size_t later,
                                   std::vector<uint16_t> *must_be_unsafe);

/**
 * The intervening-store classification underlying both availability
 * queries, for callers that have already established the address match
 * some other way (e.g. by congruence rather than symbolic equality):
 * walk the stores strictly between @p from and @p to and classify them
 * against @p addr.  Never returns MISMATCH.
 */
LoadAvail interveningStores(const OptBuffer &buf, size_t from, size_t to,
                            const opt::AddrKey &addr,
                            std::vector<uint16_t> *must_be_unsafe);

// --- constant / value-range lattice -------------------------------------

/**
 * One element of the interval lattice: the set of 32-bit values a slot
 * may produce, as a signed interval [lo, hi].  TOP is the full range;
 * a constant is a singleton.  BOTTOM (unreachable) never arises in
 * straight-line code and is not represented.
 */
struct AbsVal
{
    int64_t lo = INT32_MIN;
    int64_t hi = INT32_MAX;

    static AbsVal top() { return {}; }

    static AbsVal
    constant(int32_t v)
    {
        return {v, v};
    }

    /** Unsigned 32-bit quantities (addresses, masks) live above
     *  INT32_MAX; the lattice carries them as their signed image. */
    static AbsVal
    range(int64_t lo, int64_t hi)
    {
        AbsVal v;
        v.lo = lo < INT32_MIN ? INT32_MIN : lo;
        v.hi = hi > INT32_MAX ? INT32_MAX : hi;
        return v;
    }

    bool isTop() const { return lo == INT32_MIN && hi == INT32_MAX; }
    bool isConst() const { return lo == hi; }
    int32_t constant() const { return int32_t(lo); }

    bool
    contains(int32_t v) const
    {
        return lo <= v && v <= hi;
    }

    bool operator==(const AbsVal &) const = default;
};

/**
 * Forward abstract interpretation of the whole buffer.  Returns one
 * AbsVal per slot (TOP for invalid slots and non-value ops).
 * Constant transfer functions evaluate through uop::evalAlu; interval
 * transfer covers ADD/SUB/AND-mask/SHR/SETCC and widens to TOP
 * elsewhere.  Flag-consuming ops other than SETCC are never treated
 * as constant (their value depends on the incoming flags).
 */
std::vector<AbsVal> analyzeRanges(const OptBuffer &buf);

/** The lattice value an operand carries (live-ins and flag views are
 *  TOP; a NONE operand has no value — returns nullopt). */
std::optional<AbsVal> rangeOf(const std::vector<AbsVal> &ranges,
                              const Operand &op);

// --- linear value forms -------------------------------------------------

/**
 * A slot value expressed as (root + k) mod 2^32, where root is either
 * nothing (pure constant) or a non-decomposable operand: a live-in
 * register or a slot that is not a LIMM/MOV/ADD-imm/SUB-imm.  Two
 * known forms with equal roots and equal constants (mod 2^32) denote
 * equal runtime values — the soundness base of translation
 * validation.
 */
struct LinForm
{
    bool known = false;
    bool isConst = false;
    Operand root;               ///< meaningful when !isConst
    int64_t k = 0;              ///< compared mod 2^32

    static LinForm
    unknown()
    {
        return {};
    }

    static LinForm
    constant(int64_t v)
    {
        LinForm f;
        f.known = true;
        f.isConst = true;
        f.k = v;
        return f;
    }

    static LinForm
    of(const Operand &root, int64_t k = 0)
    {
        LinForm f;
        f.known = true;
        f.root = root;
        f.k = k;
        return f;
    }
};

/** Both known and denoting the same value (constants mod 2^32). */
bool linEqual(const LinForm &a, const LinForm &b);

/**
 * Linear decomposition of every slot, chasing LIMM / MOV / ADD-imm /
 * SUB-imm chains (flag-consuming ops other than carry-only INC/DEC
 * shapes are excluded; their values may depend on the incoming
 * flags).  Forms describe the *values* the
 * buffer produces; they stay valid descriptions of the pre-pass
 * values when a pass later mutates the buffer.
 */
std::vector<LinForm> linearForms(const OptBuffer &buf);

/** The linear form an operand denotes under @p forms.  NONE operands
 *  and flag views are unknown. */
LinForm linOf(const std::vector<LinForm> &forms, const Operand &op);

// --- canonical addresses ------------------------------------------------

/**
 * A memory micro-op's address, canonicalized over linear forms:
 * value = base + index * scale + disp with constant contributions
 * folded into disp, so the const-address folds of const-prop and the
 * base-chain collapses of reassociation compare equal to their
 * original form.
 */
struct CanonAddr
{
    bool known = false;
    LinForm base;               ///< non-const root (or !known root)
    LinForm index;              ///< non-const root (or !known root)
    int64_t scale = 1;
    int64_t disp = 0;           ///< compared mod 2^32
    uint8_t size = 4;
};

/** Canonical address of mem slot @p idx, operands resolved through
 *  @p forms (use the same buffer's forms the slot belongs to). */
CanonAddr canonAddr(const OptBuffer &buf, size_t idx,
                    const std::vector<LinForm> &forms);

/** Same, over a free-standing micro-op whose operands live in the
 *  index space @p forms describes — this is how a mutated slot is
 *  compared against its own pre-pass address. */
CanonAddr canonAddrOf(const FrameUop &fu,
                      const std::vector<LinForm> &forms);

/** Both known and provably the same location and width. */
bool addrEqual(const CanonAddr &a, const CanonAddr &b);

} // namespace replay::vstatic

#endif // REPLAY_VERIFY_STATIC_DATAFLOW_HH
