/**
 * @file
 * Renamed operands inside the optimization buffer.
 *
 * After Remapping (§4), a micro-op in buffer slot m writes physical
 * register m, so a source is identified either by the producing slot
 * index (its "parent"), or as a live-in architectural value that enters
 * the frame from outside.  Flag values are co-produced by flag-writing
 * micro-ops; a flags consumer references the producer with the
 * flagsView bit set.
 */

#ifndef REPLAY_OPT_OPERAND_HH
#define REPLAY_OPT_OPERAND_HH

#include <cstdint>
#include <functional>
#include <string>

#include "uop/uop.hh"

namespace replay::opt {

/** A renamed source reference. */
struct Operand
{
    enum class Kind : uint8_t
    {
        NONE,       ///< operand not used (immediate form, no index, ...)
        LIVE_IN,    ///< architectural value at frame entry
        PROD,       ///< value produced by buffer slot idx
    };

    Kind kind = Kind::NONE;
    uop::UReg reg = uop::UReg::NONE;    ///< LIVE_IN: which register
    uint16_t idx = 0;                   ///< PROD: producer slot
    bool flagsView = false;             ///< reference the flags result

    static Operand
    none()
    {
        return {};
    }

    static Operand
    liveIn(uop::UReg reg)
    {
        Operand o;
        o.kind = Kind::LIVE_IN;
        o.reg = reg;
        return o;
    }

    static Operand
    prod(uint16_t idx)
    {
        Operand o;
        o.kind = Kind::PROD;
        o.idx = idx;
        return o;
    }

    static Operand
    prodFlags(uint16_t idx)
    {
        Operand o;
        o.kind = Kind::PROD;
        o.idx = idx;
        o.flagsView = true;
        return o;
    }

    static Operand
    liveInFlags()
    {
        Operand o;
        o.kind = Kind::LIVE_IN;
        o.reg = uop::UReg::FLAGS;
        o.flagsView = true;
        return o;
    }

    bool isNone() const { return kind == Kind::NONE; }
    bool isLiveIn() const { return kind == Kind::LIVE_IN; }
    bool isProd() const { return kind == Kind::PROD; }

    bool operator==(const Operand &) const = default;

    /** Render for debugging: "<L:ESP>", "<P:12>", "<Pf:3>". */
    std::string str() const;
};

/** Hash for value-numbering maps. */
struct OperandHash
{
    size_t
    operator()(const Operand &o) const
    {
        return (size_t(o.kind) << 24) ^ (size_t(o.reg) << 16) ^
               (size_t(o.idx) << 1) ^ size_t(o.flagsView);
    }
};

} // namespace replay::opt

#endif // REPLAY_OPT_OPERAND_HH
