/**
 * @file
 * The Remapper of Figure 3.
 *
 * Renames a frame's micro-op sequence into the buffer form where slot m
 * writes physical register m: sources become either live-in operands or
 * producer indices, eliminating every write-after-write and
 * write-after-read register conflict inside the frame (§4).
 */

#ifndef REPLAY_OPT_REMAPPER_HH
#define REPLAY_OPT_REMAPPER_HH

#include <vector>

#include "opt/optbuffer.hh"
#include "uop/uop.hh"

namespace replay::opt {

/** Rename an architectural-form micro-op sequence into an OptBuffer. */
class Remapper
{
  public:
    /**
     * @param uops            the frame's micro-ops, in program order
     * @param blocks          optional basic-block index per micro-op
     *                        (same length as @p uops); empty = one
     *                        block
     * @param per_block_exits record an exit binding at every block
     *                        boundary (block-scope optimization,
     *                        Figure 9) instead of only at the frame
     *                        boundary
     */
    OptBuffer
    remap(const std::vector<uop::Uop> &uops,
          const std::vector<uint16_t> &blocks = {},
          bool per_block_exits = false) const
    {
        OptBuffer buf;
        remap(uops, blocks, per_block_exits, buf);
        return buf;
    }

    /** Remap into @p out (cleared first; storage is reused). */
    void remap(const std::vector<uop::Uop> &uops,
               const std::vector<uint16_t> &blocks,
               bool per_block_exits, OptBuffer &out) const;
};

} // namespace replay::opt

#endif // REPLAY_OPT_REMAPPER_HH
