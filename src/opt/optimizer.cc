#include "opt/optimizer.hh"

#include "util/logging.hh"

namespace replay::opt {

namespace {

/** Cleanup: compact valid slots in position order, re-index operands. */
OptimizedFrame
finalize(OptBuffer &buf, const std::vector<uop::Uop> &uops)
{
    OptimizedFrame out;
    out.inputUops = unsigned(uops.size());
    for (const auto &u : uops)
        out.inputLoads += u.isLoad();

    std::vector<uint16_t> new_index(buf.size(), 0xffff);
    for (size_t i = 0; i < buf.size(); ++i) {
        if (!buf.valid(i))
            continue;
        new_index[i] = uint16_t(out.uops.size());
        out.uops.push_back(buf.at(i));
    }

    auto fix = [&](Operand &op) {
        if (op.isProd()) {
            panic_if(new_index[op.idx] == 0xffff,
                     "operand references an invalidated slot");
            op.idx = new_index[op.idx];
        }
    };
    for (auto &fu : out.uops) {
        fix(fu.srcA);
        fix(fu.srcB);
        fix(fu.srcC);
        fix(fu.flagsSrc);
    }
    out.exit = buf.finalExit();
    for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
        // Bindings of registers that are dead past the frame boundary
        // (the ET temporaries) may reference removed slots; drop them.
        if (!OptBuffer::archLiveOut(static_cast<uop::UReg>(r)))
            out.exit.regs[r] = Operand::none();
        else
            fix(out.exit.regs[r]);
    }
    fix(out.exit.flags);

    for (const auto &fu : out.uops)
        out.outputLoads += fu.uop.isLoad();

    out.prims = buf.prims();
    return out;
}

} // anonymous namespace

OptimizedFrame
Optimizer::optimize(const std::vector<uop::Uop> &uops,
                    const std::vector<uint16_t> &blocks,
                    const AliasHints *alias, OptStats &stats) const
{
    const Remapper remapper;
    OptBuffer buf = remapper.remap(uops, blocks,
                                   cfg_.scope != Scope::FRAME);

    OptContext ctx{buf, cfg_, alias, stats};

    for (unsigned iter = 0; iter < cfg_.maxIterations; ++iter) {
        unsigned changed = 0;
        changed += passNopRemoval(ctx);
        changed += passAssertCombine(ctx);
        changed += passConstProp(ctx);
        changed += passReassociate(ctx);
        changed += passCse(ctx);
        changed += passStoreForward(ctx);
        changed += passDce(ctx);
        if (!changed)
            break;
    }

    OptimizedFrame out = finalize(buf, uops);
    out.latencyCycles = latencyFor(out.inputUops);

    ++stats.framesOptimized;
    stats.inputUops += out.inputUops;
    stats.outputUops += out.uops.size();
    stats.inputLoads += out.inputLoads;
    stats.outputLoads += out.outputLoads;
    return out;
}

OptimizedFrame
Optimizer::passthrough(const std::vector<uop::Uop> &uops,
                       const std::vector<uint16_t> &blocks)
{
    const Remapper remapper;
    OptBuffer buf = remapper.remap(uops, blocks, false);
    OptimizedFrame out = finalize(buf, uops);
    out.latencyCycles = 0;      // deposited directly (§6.3)
    return out;
}

} // namespace replay::opt
