#include "opt/optimizer.hh"

#include <atomic>

#include "util/logging.hh"

namespace replay::opt {

namespace {

std::atomic<PassObserverFactory> observer_factory{nullptr};

} // anonymous namespace

const char *
passIdName(PassId id)
{
    switch (id) {
      case PassId::NOP:  return "NOP";
      case PassId::ASST: return "ASST";
      case PassId::CP:   return "CP";
      case PassId::RA:   return "RA";
      case PassId::CSE:  return "CSE";
      case PassId::SF:   return "SF";
      case PassId::DCE:  return "DCE";
    }
    return "?";
}

void
setPassObserverFactory(PassObserverFactory factory)
{
    observer_factory.store(factory, std::memory_order_release);
}

PassObserverFactory
passObserverFactory()
{
    return observer_factory.load(std::memory_order_acquire);
}

namespace {

/** Per-thread scratch for the remap -> passes -> cleanup cycle. */
OptBuffer &
scratchBuffer()
{
    thread_local OptBuffer buf;
    return buf;
}

/**
 * Cleanup: compact valid slots in position order, re-index operands.
 *
 * @p pristine means no pass changed anything since the remap (always
 * true on the passthrough path): every slot is still valid, operand
 * indices are identity, and the attr plane the remap deposit computed
 * is still authoritative, so the whole buffer transfers as bulk plane
 * copies instead of per-slot gathers.
 */
void
finalize(OptBuffer &buf, const std::vector<uop::Uop> &uops,
         OptimizedFrame &out, bool pristine)
{
    out.clear();
    out.exit = ExitBinding{};
    out.inputUops = unsigned(uops.size());
    out.inputLoads = 0;
    out.outputLoads = 0;
    out.prims = PrimitiveCounts{};
    out.latencyCycles = 0;
    for (const auto &u : uops)
        out.inputLoads += u.isLoad();

    const uop::UopSlab &slab = buf.code();
    const size_t n_buf = buf.size();
    if (pristine) {
        // Bulk plane transfer: slot order, operand indices, and the
        // deposit-time attr plane all carry over unchanged.
        out.code = slab;
        const auto n = std::ptrdiff_t(n_buf);
        out.srcA.assign(buf.srcAPlane().begin(),
                        buf.srcAPlane().begin() + n);
        out.srcB.assign(buf.srcBPlane().begin(),
                        buf.srcBPlane().begin() + n);
        out.srcC.assign(buf.srcCPlane().begin(),
                        buf.srcCPlane().begin() + n);
        out.flagsSrc.assign(buf.flagsSrcPlane().begin(),
                            buf.flagsSrcPlane().begin() + n);
        out.unsafe.assign(buf.unsafePlane().begin(),
                          buf.unsafePlane().begin() + n);
        out.position.assign(buf.positionPlane().begin(),
                            buf.positionPlane().begin() + n);
        out.block.assign(buf.blockPlane().begin(),
                         buf.blockPlane().begin() + n);
        out.exit = buf.finalExit();
        for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
            if (!OptBuffer::archLiveOut(static_cast<uop::UReg>(r)))
                out.exit.regs[r] = Operand::none();
        }
    } else {
        thread_local std::vector<uint16_t> new_index;
        new_index.assign(n_buf, 0xffff);
        const size_t n_valid = buf.validCount();
        out.code.reserve(n_valid);
        out.srcA.reserve(n_valid);
        out.srcB.reserve(n_valid);
        out.srcC.reserve(n_valid);
        out.flagsSrc.reserve(n_valid);
        out.unsafe.reserve(n_valid);
        out.position.reserve(n_valid);
        out.block.reserve(n_valid);
        for (size_t i = 0; i < n_buf; ++i) {
            if (!buf.valid(i))
                continue;
            const auto k = uint16_t(out.size());
            new_index[i] = k;
            out.code.pushFrom(slab, i);
            // Passes mutate fields through plane references, bypassing
            // the scratch buffer's derived attr plane; recompute it
            // here so the published body's bitset is authoritative.
            out.code.refreshAttr(k);
            out.srcA.push_back(buf.srcAPlane()[i]);
            out.srcB.push_back(buf.srcBPlane()[i]);
            out.srcC.push_back(buf.srcCPlane()[i]);
            out.flagsSrc.push_back(buf.flagsSrcPlane()[i]);
            out.unsafe.push_back(buf.unsafePlane()[i]);
            out.position.push_back(buf.positionPlane()[i]);
            out.block.push_back(buf.blockPlane()[i]);
        }

        auto fix = [&](Operand &op) {
            if (op.isProd()) {
                panic_if(new_index[op.idx] == 0xffff,
                         "operand references an invalidated slot");
                op.idx = new_index[op.idx];
            }
        };
        for (size_t k = 0; k < out.size(); ++k) {
            fix(out.srcA[k]);
            fix(out.srcB[k]);
            fix(out.srcC[k]);
            fix(out.flagsSrc[k]);
        }
        out.exit = buf.finalExit();
        for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
            // Bindings of registers that are dead past the frame
            // boundary (the ET temporaries) may reference removed
            // slots; drop them.
            if (!OptBuffer::archLiveOut(static_cast<uop::UReg>(r)))
                out.exit.regs[r] = Operand::none();
            else
                fix(out.exit.regs[r]);
        }
        fix(out.exit.flags);
    }

    for (size_t k = 0; k < out.size(); ++k) {
        out.outputLoads +=
            (out.code.attr[k] & uop::UA_KIND_LOAD) != 0;
    }

    out.prims = buf.prims();
}

} // anonymous namespace

void
Optimizer::optimize(const std::vector<uop::Uop> &uops,
                    const std::vector<uint16_t> &blocks,
                    const AliasHints *alias, OptStats &stats,
                    OptimizedFrame &out) const
{
    const Remapper remapper;
    OptBuffer &buf = scratchBuffer();
    remapper.remap(uops, blocks, cfg_.scope != Scope::FRAME, buf);

    std::unique_ptr<PassObserver> obs;
    if (const PassObserverFactory make = passObserverFactory())
        obs = make(cfg_, alias);
    if (obs)
        obs->onRemapped(buf);

    OptContext ctx{buf, cfg_, alias, stats};

    unsigned total_changed = 0;
    for (unsigned iter = 0; iter < cfg_.maxIterations; ++iter) {
        unsigned changed = 0;
        auto run = [&](PassId id, unsigned n) {
            if (obs)
                obs->onPass(id, n, buf);
            changed += n;
        };
        run(PassId::NOP, passNopRemoval(ctx));
        run(PassId::ASST, passAssertCombine(ctx));
        run(PassId::CP, passConstProp(ctx));
        run(PassId::RA, passReassociate(ctx));
        run(PassId::CSE, passCse(ctx));
        run(PassId::SF, passStoreForward(ctx));
        run(PassId::DCE, passDce(ctx));
        total_changed += changed;
        if (!changed)
            break;
    }

    finalize(buf, uops, out, total_changed == 0);
    out.latencyCycles = latencyFor(out.inputUops);
    if (obs)
        obs->onFinalized(out);

    ++stats.framesOptimized;
    stats.inputUops += out.inputUops;
    stats.outputUops += out.size();
    stats.inputLoads += out.inputLoads;
    stats.outputLoads += out.outputLoads;
}

void
Optimizer::passthrough(const std::vector<uop::Uop> &uops,
                       const std::vector<uint16_t> &blocks,
                       bool frame_semantics, OptimizedFrame &out)
{
    const Remapper remapper;
    OptBuffer &buf = scratchBuffer();
    remapper.remap(uops, blocks, false, buf);

    std::unique_ptr<PassObserver> obs;
    if (frame_semantics)
        if (const PassObserverFactory make = passObserverFactory())
            obs = make(OptConfig::allOff(), nullptr);
    if (obs)
        obs->onRemapped(buf);

    finalize(buf, uops, out, /*pristine=*/true);
    out.latencyCycles = 0;      // deposited directly (§6.3)
    if (obs)
        obs->onFinalized(out);
}

} // namespace replay::opt
