#include "opt/optimizer.hh"

#include <atomic>

#include "util/logging.hh"

namespace replay::opt {

namespace {

std::atomic<PassObserverFactory> observer_factory{nullptr};

} // anonymous namespace

const char *
passIdName(PassId id)
{
    switch (id) {
      case PassId::NOP:  return "NOP";
      case PassId::ASST: return "ASST";
      case PassId::CP:   return "CP";
      case PassId::RA:   return "RA";
      case PassId::CSE:  return "CSE";
      case PassId::SF:   return "SF";
      case PassId::DCE:  return "DCE";
    }
    return "?";
}

void
setPassObserverFactory(PassObserverFactory factory)
{
    observer_factory.store(factory, std::memory_order_release);
}

PassObserverFactory
passObserverFactory()
{
    return observer_factory.load(std::memory_order_acquire);
}

namespace {

/** Per-thread scratch for the remap -> passes -> cleanup cycle. */
OptBuffer &
scratchBuffer()
{
    thread_local OptBuffer buf;
    return buf;
}

/** Cleanup: compact valid slots in position order, re-index operands. */
void
finalize(OptBuffer &buf, const std::vector<uop::Uop> &uops,
         OptimizedFrame &out)
{
    out.uops.clear();
    out.exit = ExitBinding{};
    out.inputUops = unsigned(uops.size());
    out.inputLoads = 0;
    out.outputLoads = 0;
    out.prims = PrimitiveCounts{};
    out.latencyCycles = 0;
    for (const auto &u : uops)
        out.inputLoads += u.isLoad();

    thread_local std::vector<uint16_t> new_index;
    new_index.assign(buf.size(), 0xffff);
    for (size_t i = 0; i < buf.size(); ++i) {
        if (!buf.valid(i))
            continue;
        new_index[i] = uint16_t(out.uops.size());
        out.uops.push_back(buf.at(i));
    }

    auto fix = [&](Operand &op) {
        if (op.isProd()) {
            panic_if(new_index[op.idx] == 0xffff,
                     "operand references an invalidated slot");
            op.idx = new_index[op.idx];
        }
    };
    for (auto &fu : out.uops) {
        fix(fu.srcA);
        fix(fu.srcB);
        fix(fu.srcC);
        fix(fu.flagsSrc);
    }
    out.exit = buf.finalExit();
    for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
        // Bindings of registers that are dead past the frame boundary
        // (the ET temporaries) may reference removed slots; drop them.
        if (!OptBuffer::archLiveOut(static_cast<uop::UReg>(r)))
            out.exit.regs[r] = Operand::none();
        else
            fix(out.exit.regs[r]);
    }
    fix(out.exit.flags);

    for (const auto &fu : out.uops)
        out.outputLoads += fu.uop.isLoad();

    out.prims = buf.prims();
}

} // anonymous namespace

void
Optimizer::optimize(const std::vector<uop::Uop> &uops,
                    const std::vector<uint16_t> &blocks,
                    const AliasHints *alias, OptStats &stats,
                    OptimizedFrame &out) const
{
    const Remapper remapper;
    OptBuffer &buf = scratchBuffer();
    remapper.remap(uops, blocks, cfg_.scope != Scope::FRAME, buf);

    std::unique_ptr<PassObserver> obs;
    if (const PassObserverFactory make = passObserverFactory())
        obs = make(cfg_, alias);
    if (obs)
        obs->onRemapped(buf);

    OptContext ctx{buf, cfg_, alias, stats};

    for (unsigned iter = 0; iter < cfg_.maxIterations; ++iter) {
        unsigned changed = 0;
        auto run = [&](PassId id, unsigned n) {
            if (obs)
                obs->onPass(id, n, buf);
            changed += n;
        };
        run(PassId::NOP, passNopRemoval(ctx));
        run(PassId::ASST, passAssertCombine(ctx));
        run(PassId::CP, passConstProp(ctx));
        run(PassId::RA, passReassociate(ctx));
        run(PassId::CSE, passCse(ctx));
        run(PassId::SF, passStoreForward(ctx));
        run(PassId::DCE, passDce(ctx));
        if (!changed)
            break;
    }

    finalize(buf, uops, out);
    out.latencyCycles = latencyFor(out.inputUops);
    if (obs)
        obs->onFinalized(out);

    ++stats.framesOptimized;
    stats.inputUops += out.inputUops;
    stats.outputUops += out.uops.size();
    stats.inputLoads += out.inputLoads;
    stats.outputLoads += out.outputLoads;
}

void
Optimizer::passthrough(const std::vector<uop::Uop> &uops,
                       const std::vector<uint16_t> &blocks,
                       bool frame_semantics, OptimizedFrame &out)
{
    const Remapper remapper;
    OptBuffer &buf = scratchBuffer();
    remapper.remap(uops, blocks, false, buf);

    std::unique_ptr<PassObserver> obs;
    if (frame_semantics)
        if (const PassObserverFactory make = passObserverFactory())
            obs = make(OptConfig::allOff(), nullptr);
    if (obs)
        obs->onRemapped(buf);

    finalize(buf, uops, out);
    out.latencyCycles = 0;      // deposited directly (§6.3)
    if (obs)
        obs->onFinalized(out);
}

} // namespace replay::opt
