#include "opt/frameexec.hh"

#include "uop/evaluator.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace replay::opt {

using uop::Op;
using uop::UReg;

namespace {

/** Per-slot computed results. */
struct SlotValues
{
    std::vector<uint32_t> value;
    std::vector<x86::Flags> flags;
};

uint32_t
resolveValue(const Operand &op, const ArchState &in,
             const SlotValues &vals)
{
    switch (op.kind) {
      case Operand::Kind::NONE:
        return 0;
      case Operand::Kind::LIVE_IN:
        return in.regs[unsigned(op.reg)];
      case Operand::Kind::PROD:
        return vals.value[op.idx];
    }
    return 0;
}

x86::Flags
resolveFlags(const Operand &op, const ArchState &in,
             const SlotValues &vals)
{
    if (op.kind == Operand::Kind::LIVE_IN)
        return in.flags;
    if (op.kind == Operand::Kind::PROD)
        return vals.flags[op.idx];
    return {};
}

/** Byte-accurate read that sees buffered (uncommitted) stores. */
uint32_t
readWithForwarding(const x86::SparseMemory &mem,
                   const std::vector<x86::MemOp> &store_buffer,
                   uint32_t addr, unsigned size)
{
    uint32_t value = mem.read(addr, size);
    for (const auto &st : store_buffer) {
        if (!st.isStore)
            continue;
        for (unsigned b = 0; b < size; ++b) {
            const uint32_t byte_addr = addr + b;
            if (byte_addr >= st.addr && byte_addr < st.addr + st.size) {
                const uint32_t st_byte =
                    (st.data >> (8 * (byte_addr - st.addr))) & 0xff;
                value = uint32_t(insertBits(value, 8 * b + 7, 8 * b,
                                            st_byte));
            }
        }
    }
    return value;
}

} // anonymous namespace

FrameExecResult
executeFrame(const OptimizedFrame &frame, ArchState &state,
             x86::SparseMemory &mem)
{
    FrameExecResult result;
    const uop::UopSlab &code = frame.code;
    const size_t n = code.size();
    SlotValues vals;
    vals.value.assign(n, 0);
    vals.flags.assign(n, {});

    std::vector<x86::MemOp> buffer;    // all transactions, in order

    // Plane scan: each case touches only the planes it needs.
    for (size_t i = 0; i < n; ++i) {
        const Op op = code.op[i];
        const uint16_t attr = code.attr[i];

        const uint32_t a = resolveValue(frame.srcA[i], state, vals);
        const uint32_t b = frame.srcB[i].isNone()
            ? uint32_t(code.imm[i])
            : resolveValue(frame.srcB[i], state, vals);
        const uint32_t c = resolveValue(frame.srcC[i], state, vals);
        const x86::Flags in_flags =
            resolveFlags(frame.flagsSrc[i], state, vals);

        switch (op) {
          case Op::NOP:
          case Op::JMP:
          case Op::LONGFLOW:
            break;

          case Op::LOAD:
          case Op::FLOAD: {
            const unsigned size = code.memSize[i];
            const uint32_t addr = uop::memAddr(
                code.imm[i], code.scale[i], code.srcA[i], code.srcB[i],
                a,
                frame.srcB[i].isNone()
                    ? 0
                    : resolveValue(frame.srcB[i], state, vals));
            const uint32_t raw =
                readWithForwarding(mem, buffer, addr, size);
            uint32_t value = raw;
            if ((attr & uop::UA_SIGN_EXTEND) && size < 4)
                value = uint32_t(sext(value, size * 8));
            buffer.push_back({false, addr, uint8_t(size), raw});
            vals.value[i] = value;
            break;
          }

          case Op::STORE:
          case Op::FSTORE: {
            const unsigned size = code.memSize[i];
            const uint32_t addr = uop::memAddr(
                code.imm[i], code.scale[i], code.srcA[i], code.srcC[i],
                a, c);
            uint32_t value = resolveValue(frame.srcB[i], state, vals);
            // Match the executor's canonical sub-word store data.
            if (size < 4)
                value &= (1u << (8 * size)) - 1;
            if (frame.unsafe[i]) {
                // §3.4: compare against every prior transaction.
                const x86::MemOp probe{true, addr, uint8_t(size), value};
                for (size_t p = 0; p < buffer.size(); ++p) {
                    if (buffer[p].overlaps(probe)) {
                        result.status =
                            FrameExecResult::Status::UNSAFE_CONFLICT;
                        result.faultSlot = i;
                        return result;
                    }
                }
            }
            buffer.push_back({true, addr, uint8_t(size), value});
            break;
          }

          case Op::BR:
            panic("conditional branch survived frame optimization");

          case Op::JMPI:
            result.indirectTarget = a;
            break;

          case Op::ASSERT: {
            x86::Flags observed = in_flags;
            if (attr & uop::UA_VALUE_ASSERT) {
                observed = uop::evalAlu(code.assertOp[i], x86::Cond::O,
                                        0, false, a, b, 0, x86::Flags{})
                               .flags;
            }
            if (uop::assertFires(code.cc[i], observed)) {
                result.status = FrameExecResult::Status::ASSERTED;
                result.faultSlot = i;
                return result;
            }
            break;
          }

          default: {
            const auto alu =
                uop::evalAlu(op, code.cc[i], code.imm[i],
                             (attr & uop::UA_CARRY_ONLY) != 0, a, b, c,
                             in_flags);
            vals.value[i] = alu.value;
            if (attr & uop::UA_WRITES_FLAGS)
                vals.flags[i] = alu.flags;
            break;
          }
        }
    }

    // Commit: apply live-out bindings and buffered stores.
    ArchState out = state;
    for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
        const auto reg = static_cast<UReg>(r);
        if (!OptBuffer::archLiveOut(reg))
            continue;
        const Operand &binding = frame.exit.regs[r];
        if (!binding.isNone())
            out.regs[r] = resolveValue(binding, state, vals);
    }
    out.flags = resolveFlags(frame.exit.flags, state, vals);
    state = out;

    for (const auto &op : buffer) {
        if (op.isStore)
            mem.write(op.addr, op.size, op.data);
    }
    result.memOps = std::move(buffer);
    return result;
}

} // namespace replay::opt
