/**
 * @file
 * Functional execution of an optimized frame.
 *
 * Executes the renamed micro-ops of an OptimizedFrame against live-in
 * architectural state and memory, honouring frame atomicity: stores are
 * buffered and committed only if no assertion fires and no unsafe store
 * conflicts, exactly as the rePLay recovery model requires.  Used by
 * the state verifier (§5.1.3), the property tests, and the examples.
 */

#ifndef REPLAY_OPT_FRAMEEXEC_HH
#define REPLAY_OPT_FRAMEEXEC_HH

#include <array>
#include <vector>

#include "opt/optimizer.hh"
#include "x86/executor.hh"

namespace replay::opt {

/** Outcome of executing a frame. */
struct FrameExecResult
{
    enum class Status
    {
        COMMITTED,          ///< all assertions held; state updated
        ASSERTED,           ///< an assertion fired; state untouched
        UNSAFE_CONFLICT,    ///< an unsafe store aliased; state untouched
    };

    Status status = Status::COMMITTED;
    size_t faultSlot = 0;       ///< slot that asserted / conflicted

    /** Committed memory transactions, in program order. */
    std::vector<x86::MemOp> memOps;

    /** Computed target of a trailing indirect jump (0 if none). */
    uint32_t indirectTarget = 0;

    bool committed() const { return status == Status::COMMITTED; }
};

/** Live-in / live-out architectural state for frame execution. */
struct ArchState
{
    std::array<uint32_t, uop::NUM_UREGS> regs{};
    x86::Flags flags;
};

/**
 * Execute @p frame against @p state and @p mem.
 *
 * On COMMITTED, @p state receives the frame's live-out bindings and
 * @p mem the buffered stores.  On ASSERTED / UNSAFE_CONFLICT nothing is
 * modified (rollback).
 */
FrameExecResult executeFrame(const OptimizedFrame &frame,
                             ArchState &state, x86::SparseMemory &mem);

} // namespace replay::opt

#endif // REPLAY_OPT_FRAMEEXEC_HH
