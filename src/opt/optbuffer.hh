/**
 * @file
 * The optimization buffer of Figure 3.
 *
 * A frame's micro-ops occupy buffer slots; Remapping guarantees slot m
 * writes physical register m, so parent lookup is a direct index and
 * the Dependency List (children lists) supports child iteration.
 *
 * Live-outs are modeled as *exit bindings*: maps from architectural
 * register (and flags) to the operand holding its value at an exit
 * point.  Frame-scope optimization has a single exit at the frame
 * boundary (§3.3: precise state is only required there); block-scope
 * optimization (Figure 9) has one exit per constituent basic block,
 * modeling the optimizer's ignorance of later blocks.
 *
 * All optimization passes mutate the buffer exclusively through the
 * primitive operations §4 postulates for the hardware (parent / child
 * traversal, field read/modify, instruction invalidation); a primitive
 * usage counter feeds the optimizer-datapath benchmark.
 */

#ifndef REPLAY_OPT_OPTBUFFER_HH
#define REPLAY_OPT_OPTBUFFER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "opt/operand.hh"
#include "uop/uop.hh"

namespace replay::opt {

/** Which source field of a micro-op an edit refers to. */
enum class SrcRole : uint8_t
{
    A,
    B,
    C,          ///< store value index register / DIV high word
    FLAGS,
};

/** One renamed micro-op in the buffer (the Figure 4 format). */
struct FrameUop
{
    uop::Uop uop;           ///< opcode, cc, imm, sizes, provenance
    Operand srcA;
    Operand srcB;
    Operand srcC;
    Operand flagsSrc;       ///< when uop.readsFlags

    bool valid = true;
    bool unsafe = false;    ///< unsafe store (speculative mem opt)
    uint16_t position = 0;  ///< cleanup ordering (defaults to slot)
    uint16_t block = 0;     ///< basic block index within the frame

    const Operand &
    src(SrcRole role) const
    {
        switch (role) {
          case SrcRole::A: return srcA;
          case SrcRole::B: return srcB;
          case SrcRole::C: return srcC;
          default: return flagsSrc;
        }
    }

    bool operator==(const FrameUop &) const = default;
};

/** Architectural bindings that must be reconstructible at an exit. */
struct ExitBinding
{
    uint16_t block = 0;     ///< the block this exit terminates
    std::array<Operand, uop::NUM_UREGS> regs{};
    Operand flags;

    bool operator==(const ExitBinding &) const = default;
};

/** Counts of datapath primitive invocations (see datapath.hh). */
struct PrimitiveCounts
{
    uint64_t parentLookups = 0;
    uint64_t childSteps = 0;
    uint64_t fieldOps = 0;
    uint64_t invalidates = 0;
    uint64_t rewrites = 0;

    uint64_t
    total() const
    {
        return parentLookups + childSteps + fieldOps + invalidates +
               rewrites;
    }
};

/** The optimization buffer plus dependency lists and exit bindings. */
class OptBuffer
{
  public:
    OptBuffer() = default;

    /** Number of slots (including invalidated ones). */
    size_t size() const { return slots_.size(); }

    FrameUop &at(size_t idx) { return slots_[idx]; }
    const FrameUop &at(size_t idx) const { return slots_[idx]; }
    bool valid(size_t idx) const { return slots_[idx].valid; }

    /** Append a remapped micro-op (Remapper / tests only). */
    uint16_t push(FrameUop fu);

    /**
     * Reset to an empty buffer, keeping the slot/exit storage so a
     * reused scratch buffer stops allocating once warm.  Primitive
     * counts restart at zero (they are per-optimization).
     */
    void
    clear()
    {
        slots_.clear();
        exits_.clear();
        prims_ = PrimitiveCounts{};
    }

    /** Append an exit binding (Remapper). */
    void addExit(ExitBinding exit) { exits_.push_back(std::move(exit)); }

    const std::vector<ExitBinding> &exits() const { return exits_; }
    std::vector<ExitBinding> &exits() { return exits_; }

    /** The frame-boundary exit (always the last one). */
    const ExitBinding &finalExit() const { return exits_.back(); }
    ExitBinding &finalExit() { return exits_.back(); }

    // -- dataflow traversal (the shaded logic of Figure 3) -------------

    /** The operand producing a slot's source; counts a parent lookup. */
    Operand parent(size_t idx, SrcRole role);

    /** Slots consuming slot @p idx's register value (not flags). */
    std::vector<uint16_t> valueChildren(size_t idx);

    /** Slots consuming slot @p idx's flags value. */
    std::vector<uint16_t> flagsChildren(size_t idx);

    // -- mutation primitives ----------------------------------------------

    /** Point one source of a slot at a new operand. */
    void setSource(size_t idx, SrcRole role, Operand op);

    /**
     * Redirect every use (sources and all exit bindings) of @p from to
     * @p to.  Frame-scope semantics; block-scope passes use their own
     * scoped rewriting.
     */
    void replaceAllUses(const Operand &from, const Operand &to);

    /** Invalidate a slot (removal; never used on stores). */
    void invalidate(size_t idx);

    /** Count a field extraction / modification primitive. */
    void countFieldOp() const { ++prims_.fieldOps; }

    // -- liveness queries -------------------------------------------------

    /** Any valid slot consumes this slot's register value? */
    bool valueUsed(size_t idx) const;

    /** Any valid slot consumes this slot's flags value? */
    bool flagsUsed(size_t idx) const;

    /** Slot's register value is bound by any exit? */
    bool isLiveOutReg(size_t idx) const;

    /** Slot's flags value is bound by any exit? */
    bool isLiveOutFlags(size_t idx) const;

    /**
     * Registers whose values matter past an exit.  The translator
     * temporaries ET0..ET7 are dead at every x86 boundary and are never
     * live-out — the freedom the paper exploits.
     */
    static bool archLiveOut(uop::UReg reg);

    /** Valid memory micro-ops (loads and stores), in program order. */
    std::vector<uint16_t> memSlots() const;

    /** Count of valid slots. */
    unsigned validCount() const;

    /** Count of valid loads. */
    unsigned validLoads() const;

    PrimitiveCounts &prims() { return prims_; }
    const PrimitiveCounts &prims() const { return prims_; }

    /** Multi-line dump for debugging and the examples. */
    std::string dump() const;

  private:
    std::vector<FrameUop> slots_;
    std::vector<ExitBinding> exits_;
    mutable PrimitiveCounts prims_;
};

} // namespace replay::opt

#endif // REPLAY_OPT_OPTBUFFER_HH
