/**
 * @file
 * The optimization buffer of Figure 3.
 *
 * A frame's micro-ops occupy buffer slots; Remapping guarantees slot m
 * writes physical register m, so parent lookup is a direct index and
 * the Dependency List (children lists) supports child iteration.
 *
 * Live-outs are modeled as *exit bindings*: maps from architectural
 * register (and flags) to the operand holding its value at an exit
 * point.  Frame-scope optimization has a single exit at the frame
 * boundary (§3.3: precise state is only required there); block-scope
 * optimization (Figure 9) has one exit per constituent basic block,
 * modeling the optimizer's ignorance of later blocks.
 *
 * Storage is structure-of-arrays: the micro-op fields live in a
 * uop::UopSlab plus parallel operand/slot planes, so pass sweeps and
 * the static verifier's dataflow analyses are linear plane scans.
 * at() hands out a thin UopRef cursor whose members are references
 * into the planes — existing field-mutation code compiles unchanged —
 * and which converts implicitly to a materialized FrameUop for
 * read-only consumers.
 *
 * All optimization passes mutate the buffer exclusively through the
 * primitive operations §4 postulates for the hardware (parent / child
 * traversal, field read/modify, instruction invalidation); a primitive
 * usage counter feeds the optimizer-datapath benchmark.
 */

#ifndef REPLAY_OPT_OPTBUFFER_HH
#define REPLAY_OPT_OPTBUFFER_HH

#include <array>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "opt/operand.hh"
#include "uop/soa.hh"
#include "util/logging.hh"
#include "uop/uop.hh"

namespace replay::opt {

/** Which source field of a micro-op an edit refers to. */
enum class SrcRole : uint8_t
{
    A,
    B,
    C,          ///< store value index register / DIV high word
    FLAGS,
};

/** One renamed micro-op in materialized (AoS) form. */
struct FrameUop
{
    uop::Uop uop;           ///< opcode, cc, imm, sizes, provenance
    Operand srcA;
    Operand srcB;
    Operand srcC;
    Operand flagsSrc;       ///< when uop.readsFlags

    bool valid = true;
    bool unsafe = false;    ///< unsafe store (speculative mem opt)
    uint16_t position = 0;  ///< cleanup ordering (defaults to slot)
    uint16_t block = 0;     ///< basic block index within the frame

    const Operand &
    src(SrcRole role) const
    {
        switch (role) {
          case SrcRole::A: return srcA;
          case SrcRole::B: return srcB;
          case SrcRole::C: return srcC;
          default: return flagsSrc;
        }
    }

    bool operator==(const FrameUop &) const = default;
};

/**
 * Reference to a byte-backed boolean plane cell.  Reads convert to
 * bool; writes store 0/1.  Exists because the planes store flags as
 * bytes (vector<bool> proxies would defeat plane scanning).
 */
template <bool Const>
class BoolCell
{
    using Byte = std::conditional_t<Const, const uint8_t, uint8_t>;

  public:
    explicit BoolCell(Byte *p) : p_(p) {}

    operator bool() const { return *p_ != 0; }

    template <bool C = Const, typename = std::enable_if_t<!C>>
    BoolCell &
    operator=(bool v)
    {
        *p_ = v;
        return *this;
    }

  private:
    Byte *p_;
};

/** Reference view of a micro-op's fields inside the slab planes. */
template <bool Const>
struct BasicUopFieldsRef
{
    template <typename T>
    using Ref = std::conditional_t<Const, const T &, T &>;

    Ref<uop::Op> op;
    Ref<x86::Cond> cc;
    Ref<uop::UReg> dst;
    Ref<uop::UReg> srcA;        ///< architectural names
    Ref<uop::UReg> srcB;
    Ref<uop::UReg> srcC;
    Ref<int32_t> imm;
    Ref<uint8_t> scale;
    Ref<uint8_t> memSize;
    BoolCell<Const> signExtend;
    BoolCell<Const> readsFlags;
    BoolCell<Const> writesFlags;
    BoolCell<Const> flagsCarryOnly;
    BoolCell<Const> valueAssert;
    Ref<uop::Op> assertOp;
    Ref<uint32_t> target;
    Ref<uint32_t> x86Pc;
    Ref<uint16_t> instIdx;
    Ref<uint8_t> microIdx;
    Ref<uint8_t> memSeq;
    BoolCell<Const> lastOfInst;

    /** Scatter-assign every field from an AoS micro-op. */
    template <bool C = Const, typename = std::enable_if_t<!C>>
    BasicUopFieldsRef &
    operator=(const uop::Uop &u)
    {
        op = u.op;
        cc = u.cc;
        dst = u.dst;
        srcA = u.srcA;
        srcB = u.srcB;
        srcC = u.srcC;
        imm = u.imm;
        scale = u.scale;
        memSize = u.memSize;
        signExtend = u.signExtend;
        readsFlags = u.readsFlags;
        writesFlags = u.writesFlags;
        flagsCarryOnly = u.flagsCarryOnly;
        valueAssert = u.valueAssert;
        assertOp = u.assertOp;
        target = u.target;
        x86Pc = u.x86Pc;
        instIdx = u.instIdx;
        microIdx = u.microIdx;
        memSeq = u.memSeq;
        lastOfInst = u.lastOfInst;
        return *this;
    }

    bool isLoad() const { return uop::kindBitsOf(op) & uop::UA_KIND_LOAD; }
    bool isStore() const { return uop::kindBitsOf(op) & uop::UA_KIND_STORE; }
    bool isMem() const { return uop::kindBitsOf(op) & uop::UA_KIND_MEM; }
    bool
    isControl() const
    {
        return uop::kindBitsOf(op) & uop::UA_KIND_CONTROL;
    }
    bool isAssert() const { return uop::kindBitsOf(op) & uop::UA_KIND_ASSERT; }
    bool isFp() const { return uop::kindBitsOf(op) & uop::UA_KIND_FP; }

    bool
    usesImmOperand() const
    {
        switch (op) {
          case uop::Op::ADD:
          case uop::Op::SUB:
          case uop::Op::AND:
          case uop::Op::OR:
          case uop::Op::XOR:
          case uop::Op::SHL:
          case uop::Op::SHR:
          case uop::Op::SAR:
          case uop::Op::MUL:
          case uop::Op::CMP:
          case uop::Op::TEST:
            return srcB == uop::UReg::NONE;
          case uop::Op::LIMM:
            return true;
          default:
            return false;
        }
    }

    /** Gather back into architectural form. */
    operator uop::Uop() const
    {
        uop::Uop u;
        u.op = op;
        u.cc = cc;
        u.dst = dst;
        u.srcA = srcA;
        u.srcB = srcB;
        u.srcC = srcC;
        u.imm = imm;
        u.scale = scale;
        u.memSize = memSize;
        u.signExtend = signExtend;
        u.readsFlags = readsFlags;
        u.writesFlags = writesFlags;
        u.flagsCarryOnly = flagsCarryOnly;
        u.valueAssert = valueAssert;
        u.lastOfInst = lastOfInst;
        u.assertOp = assertOp;
        u.target = target;
        u.x86Pc = x86Pc;
        u.instIdx = instIdx;
        u.microIdx = microIdx;
        u.memSeq = memSeq;
        return u;
    }
};

/** Cursor over one buffer slot: references into every plane. */
template <bool Const>
struct BasicUopRef
{
    template <typename T>
    using Ref = std::conditional_t<Const, const T &, T &>;

    BasicUopFieldsRef<Const> uop;
    Ref<Operand> srcA;
    Ref<Operand> srcB;
    Ref<Operand> srcC;
    Ref<Operand> flagsSrc;
    BoolCell<Const> valid;
    BoolCell<Const> unsafe;
    Ref<uint16_t> position;
    Ref<uint16_t> block;

    const Operand &
    src(SrcRole role) const
    {
        switch (role) {
          case SrcRole::A: return srcA;
          case SrcRole::B: return srcB;
          case SrcRole::C: return srcC;
          default: return flagsSrc;
        }
    }

    /** Scatter-assign every plane field from an AoS snapshot. */
    template <bool C = Const, typename = std::enable_if_t<!C>>
    BasicUopRef &
    operator=(const FrameUop &fu)
    {
        uop = fu.uop;
        srcA = fu.srcA;
        srcB = fu.srcB;
        srcC = fu.srcC;
        flagsSrc = fu.flagsSrc;
        valid = fu.valid;
        unsafe = fu.unsafe;
        position = fu.position;
        block = fu.block;
        return *this;
    }

    /** Materialize (for consumers holding a value or const ref). */
    operator FrameUop() const
    {
        FrameUop fu;
        fu.uop = uop;
        fu.srcA = srcA;
        fu.srcB = srcB;
        fu.srcC = srcC;
        fu.flagsSrc = flagsSrc;
        fu.valid = valid;
        fu.unsafe = unsafe;
        fu.position = position;
        fu.block = block;
        return fu;
    }
};

/** Architectural bindings that must be reconstructible at an exit. */
struct ExitBinding
{
    uint16_t block = 0;     ///< the block this exit terminates
    std::array<Operand, uop::NUM_UREGS> regs{};
    Operand flags;

    bool operator==(const ExitBinding &) const = default;
};

/** Counts of datapath primitive invocations (see datapath.hh). */
struct PrimitiveCounts
{
    uint64_t parentLookups = 0;
    uint64_t childSteps = 0;
    uint64_t fieldOps = 0;
    uint64_t invalidates = 0;
    uint64_t rewrites = 0;

    uint64_t
    total() const
    {
        return parentLookups + childSteps + fieldOps + invalidates +
               rewrites;
    }
};

/** The optimization buffer plus dependency lists and exit bindings. */
class OptBuffer
{
  public:
    using UopRef = BasicUopRef<false>;
    using UopCRef = BasicUopRef<true>;

    OptBuffer() = default;

    /** Number of slots (including invalidated ones). */
    size_t size() const { return code_.size(); }

    UopRef
    at(size_t i)
    {
        return UopRef{
            {code_.op[i], code_.cc[i], code_.dst[i], code_.srcA[i],
             code_.srcB[i], code_.srcC[i], code_.imm[i], code_.scale[i],
             code_.memSize[i], BoolCell<false>(&code_.signExtend[i]),
             BoolCell<false>(&code_.readsFlags[i]),
             BoolCell<false>(&code_.writesFlags[i]),
             BoolCell<false>(&code_.flagsCarryOnly[i]),
             BoolCell<false>(&code_.valueAssert[i]), code_.assertOp[i],
             code_.target[i], code_.x86Pc[i], code_.instIdx[i],
             code_.microIdx[i], code_.memSeq[i],
             BoolCell<false>(&code_.lastOfInst[i])},
            srcA_[i], srcB_[i], srcC_[i], flagsSrc_[i],
            BoolCell<false>(&valid_[i]), BoolCell<false>(&unsafe_[i]),
            position_[i], block_[i]};
    }

    UopCRef
    at(size_t i) const
    {
        return UopCRef{
            {code_.op[i], code_.cc[i], code_.dst[i], code_.srcA[i],
             code_.srcB[i], code_.srcC[i], code_.imm[i], code_.scale[i],
             code_.memSize[i], BoolCell<true>(&code_.signExtend[i]),
             BoolCell<true>(&code_.readsFlags[i]),
             BoolCell<true>(&code_.writesFlags[i]),
             BoolCell<true>(&code_.flagsCarryOnly[i]),
             BoolCell<true>(&code_.valueAssert[i]), code_.assertOp[i],
             code_.target[i], code_.x86Pc[i], code_.instIdx[i],
             code_.microIdx[i], code_.memSeq[i],
             BoolCell<true>(&code_.lastOfInst[i])},
            srcA_[i], srcB_[i], srcC_[i], flagsSrc_[i],
            BoolCell<true>(&valid_[i]), BoolCell<true>(&unsafe_[i]),
            position_[i], block_[i]};
    }

    /** Materialize slot @p i (AoS snapshot, no write-back). */
    FrameUop uopAt(size_t i) const { return at(i); }

    bool valid(size_t idx) const { return valid_[idx] != 0; }

    // -- direct plane access (finalize / verifier sweeps) ---------------

    const uop::UopSlab &code() const { return code_; }
    const std::vector<Operand> &srcAPlane() const { return srcA_; }
    const std::vector<Operand> &srcBPlane() const { return srcB_; }
    const std::vector<Operand> &srcCPlane() const { return srcC_; }
    const std::vector<Operand> &flagsSrcPlane() const { return flagsSrc_; }
    const std::vector<uint8_t> &unsafePlane() const { return unsafe_; }
    const std::vector<uint16_t> &positionPlane() const { return position_; }
    const std::vector<uint16_t> &blockPlane() const { return block_; }

    /** Append a remapped micro-op (Remapper / tests only). */
    /**
     * Append a micro-op.  The operand/meta planes track the slab's
     * capacity (length == capacity, live prefix == code_.size()), so
     * the steady-state cost is one grow check plus indexed stores.
     */
    uint16_t
    push(const FrameUop &fu)
    {
        panic_if(code_.size() >= 0xffff,
                 "optimization buffer overflow");
        const auto slot = uint16_t(code_.size());
        code_.push(fu.uop);
        if (srcA_.size() < code_.capacity())
            growPlanes(code_.capacity());
        srcA_[slot] = fu.srcA;
        srcB_[slot] = fu.srcB;
        srcC_[slot] = fu.srcC;
        flagsSrc_[slot] = fu.flagsSrc;
        valid_[slot] = fu.valid;
        unsafe_[slot] = fu.unsafe;
        position_[slot] = slot;
        block_[slot] = fu.block;
        return slot;
    }

    /**
     * Reset to an empty buffer, keeping the plane/exit storage so a
     * reused scratch buffer stops allocating once warm.  Primitive
     * counts restart at zero (they are per-optimization).
     */
    void
    clear()
    {
        code_.clear();      // planes keep their storage (scratch reuse)
        exits_.clear();
        prims_ = PrimitiveCounts{};
    }

    /** Append an exit binding (Remapper). */
    void addExit(ExitBinding exit) { exits_.push_back(std::move(exit)); }

    const std::vector<ExitBinding> &exits() const { return exits_; }
    std::vector<ExitBinding> &exits() { return exits_; }

    /** The frame-boundary exit (always the last one). */
    const ExitBinding &finalExit() const { return exits_.back(); }
    ExitBinding &finalExit() { return exits_.back(); }

    // -- dataflow traversal (the shaded logic of Figure 3) -------------

    /** The operand producing a slot's source; counts a parent lookup. */
    Operand parent(size_t idx, SrcRole role);

    /** Slots consuming slot @p idx's register value (not flags). */
    std::vector<uint16_t> valueChildren(size_t idx);

    /** Slots consuming slot @p idx's flags value. */
    std::vector<uint16_t> flagsChildren(size_t idx);

    // -- mutation primitives ----------------------------------------------

    /** Point one source of a slot at a new operand. */
    void setSource(size_t idx, SrcRole role, Operand op);

    /**
     * Redirect every use (sources and all exit bindings) of @p from to
     * @p to.  Frame-scope semantics; block-scope passes use their own
     * scoped rewriting.
     */
    void replaceAllUses(const Operand &from, const Operand &to);

    /** Invalidate a slot (removal; never used on stores). */
    void invalidate(size_t idx);

    /** Count a field extraction / modification primitive. */
    void countFieldOp() const { ++prims_.fieldOps; }

    // -- liveness queries -------------------------------------------------

    /** Any valid slot consumes this slot's register value? */
    bool valueUsed(size_t idx) const;

    /** Any valid slot consumes this slot's flags value? */
    bool flagsUsed(size_t idx) const;

    /** Slot's register value is bound by any exit? */
    bool isLiveOutReg(size_t idx) const;

    /** Slot's flags value is bound by any exit? */
    bool isLiveOutFlags(size_t idx) const;

    /**
     * Registers whose values matter past an exit.  The translator
     * temporaries ET0..ET7 are dead at every x86 boundary and are never
     * live-out — the freedom the paper exploits.
     */
    static bool archLiveOut(uop::UReg reg);

    /** Valid memory micro-ops (loads and stores), in program order. */
    std::vector<uint16_t> memSlots() const;

    /** Count of valid slots. */
    unsigned validCount() const;

    /** Count of valid loads. */
    unsigned validLoads() const;

    PrimitiveCounts &prims() { return prims_; }
    const PrimitiveCounts &prims() const { return prims_; }

    /** Multi-line dump for debugging and the examples. */
    std::string dump() const;

  private:
    bool usesOperandAt(size_t i, const Operand &op) const;
    void growPlanes(size_t n);

    uop::UopSlab code_;
    std::vector<Operand> srcA_, srcB_, srcC_, flagsSrc_;
    std::vector<uint8_t> valid_, unsafe_;
    std::vector<uint16_t> position_, block_;
    std::vector<ExitBinding> exits_;
    mutable PrimitiveCounts prims_;
};

} // namespace replay::opt

#endif // REPLAY_OPT_OPTBUFFER_HH
