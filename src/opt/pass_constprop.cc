/**
 * @file
 * Constant and copy propagation (§6.4 item 2).
 *
 * Copies (MOV) are propagated into their consumers — this is also what
 * fuses the paper's example micro-ops 08/09 ("MOV EDX,ECX; OR EDX,EBX")
 * into a single three-operand OR.  Constants from LIMM micro-ops fold
 * into ALU immediates and addressing displacements; fully-constant ALU
 * micro-ops collapse to LIMM; value assertions proven true vanish
 * (this is how the return jump of §3.3 is removed once store
 * forwarding delivers the constant return address).
 */

#include "opt/passes.hh"

#include "uop/evaluator.hh"
#include "util/logging.hh"

namespace replay::opt {

using uop::Op;

namespace {

/** The constant a slot produces, if the pass may know it. */
std::optional<int32_t>
knownConst(OptContext &ctx, size_t at, const Operand &op)
{
    if (!ctx.inspectable(at, op) || op.flagsView)
        return std::nullopt;
    const auto producer = ctx.buf.at(op.idx);
    ctx.buf.countFieldOp();
    if (producer.uop.op == Op::LIMM)
        return producer.uop.imm;
    return std::nullopt;
}

bool
isFoldableAlu(Op op)
{
    switch (op) {
      case Op::ADD:
      case Op::SUB:
      case Op::AND:
      case Op::OR:
      case Op::XOR:
      case Op::SHL:
      case Op::SHR:
      case Op::SAR:
      case Op::MUL:
      case Op::NOT:
      case Op::NEG:
      case Op::MOV:
        return true;
      default:
        return false;
    }
}

bool
isCommutative(Op op)
{
    return op == Op::ADD || op == Op::AND || op == Op::OR ||
           op == Op::XOR || op == Op::MUL || op == Op::TEST;
}

bool
takesImmOperand(Op op)
{
    switch (op) {
      case Op::ADD:
      case Op::SUB:
      case Op::AND:
      case Op::OR:
      case Op::XOR:
      case Op::SHL:
      case Op::SHR:
      case Op::SAR:
      case Op::MUL:
      case Op::CMP:
      case Op::TEST:
        return true;
      default:
        return false;
    }
}

} // anonymous namespace

unsigned
passConstProp(OptContext &ctx)
{
    if (!ctx.cfg.constProp)
        return 0;

    OptBuffer &buf = ctx.buf;
    unsigned changed = 0;

    for (size_t i = 0; i < buf.size(); ++i) {
        if (!buf.valid(i))
            continue;
        auto fu = buf.at(i);
        const Op op = fu.uop.op;

        // ---- copy propagation --------------------------------------
        if (op == Op::MOV && !fu.srcA.isNone()) {
            // Self-reference guard: a MOV can never be its own source
            // after remapping, so this always terminates.
            const unsigned n =
                replaceUsesScoped(ctx, i, false, fu.srcA);
            if (n) {
                changed += n;
                ++ctx.stats.copiesPropagated;
            }
            continue;
        }

        // ---- immediate-operand formation ---------------------------------
        if (takesImmOperand(op) && !fu.srcB.isNone()) {
            auto cb = knownConst(ctx, i, fu.srcB);
            if (!cb && isCommutative(op)) {
                // Try the other side.
                if (auto ca = knownConst(ctx, i, fu.srcA)) {
                    std::swap(fu.srcA, fu.srcB);
                    cb = ca;
                }
            }
            if (cb) {
                fu.uop.imm = *cb;
                fu.uop.srcB = uop::UReg::NONE;
                buf.setSource(i, SrcRole::B, Operand::none());
                buf.countFieldOp();
                ++changed;
                ++ctx.stats.constantsFolded;
            }
        }

        // ---- identity simplification ---------------------------------
        // x + 0, x - 0, x | 0, x ^ 0, x << 0 are pure copies once their
        // flag results are unobservable; rewriting them as MOVs lets
        // copy propagation and DCE finish the job (the merged stack
        // updates of Figure 2 reduce to exactly this shape when the
        // net displacement is zero).
        if ((op == Op::ADD || op == Op::SUB || op == Op::OR ||
             op == Op::XOR || op == Op::SHL || op == Op::SHR ||
             op == Op::SAR) &&
            fu.srcB.isNone() && fu.uop.imm == 0 && !fu.srcA.isNone() &&
            !flagsObservable(buf, i)) {
            fu.uop.op = Op::MOV;
            fu.uop.writesFlags = false;
            fu.uop.readsFlags = false;
            fu.uop.flagsCarryOnly = false;
            buf.setSource(i, SrcRole::FLAGS, Operand::none());
            buf.countFieldOp();
            ++changed;
            ++ctx.stats.constantsFolded;
        }

        // ---- full constant folding ----------------------------------------
        if (isFoldableAlu(op) && op != Op::MOV) {
            const auto ca = knownConst(ctx, i, fu.srcA);
            const bool unary = op == Op::NOT || op == Op::NEG;
            const bool b_const = fu.srcB.isNone();    // imm form
            if (ca && (unary || b_const) &&
                !flagsObservable(buf, i)) {
                const auto alu = uop::evalAlu(
                    fu.uop, uint32_t(*ca), uint32_t(fu.uop.imm), 0,
                    x86::Flags{});
                fu.uop.op = Op::LIMM;
                fu.uop.imm = int32_t(alu.value);
                fu.uop.srcA = uop::UReg::NONE;
                fu.uop.srcB = uop::UReg::NONE;
                fu.uop.writesFlags = false;
                fu.uop.readsFlags = false;
                fu.uop.flagsCarryOnly = false;
                buf.setSource(i, SrcRole::A, Operand::none());
                buf.setSource(i, SrcRole::FLAGS, Operand::none());
                buf.countFieldOp();
                ++changed;
                ++ctx.stats.constantsFolded;
                continue;
            }
        }

        // ---- constant addresses --------------------------------------------
        if (fu.uop.isMem()) {
            if (auto cb = knownConst(ctx, i, fu.srcA)) {
                // Displacement arithmetic wraps modulo 2^32 (satellite
                // fix: signed += overflowed on large displacements).
                fu.uop.imm =
                    int32_t(uint32_t(fu.uop.imm) + uint32_t(*cb));
                fu.uop.srcA = uop::UReg::NONE;
                buf.setSource(i, SrcRole::A, Operand::none());
                ++changed;
                ++ctx.stats.constantsFolded;
            }
            const SrcRole idx_role =
                fu.uop.isStore() ? SrcRole::C : SrcRole::B;
            const Operand &idx_op =
                fu.uop.isStore() ? fu.srcC : fu.srcB;
            if (!idx_op.isNone()) {
                if (auto ci = knownConst(ctx, i, idx_op)) {
                    fu.uop.imm = int32_t(uint32_t(fu.uop.imm) +
                                         uint32_t(*ci) * fu.uop.scale);
                    fu.uop.scale = 1;
                    if (fu.uop.isStore())
                        fu.uop.srcC = uop::UReg::NONE;
                    else
                        fu.uop.srcB = uop::UReg::NONE;
                    buf.setSource(i, idx_role, Operand::none());
                    ++changed;
                    ++ctx.stats.constantsFolded;
                }
            }
        }

        // ---- value assertions proven true -----------------------------------
        if (op == Op::ASSERT && fu.uop.valueAssert) {
            const auto ca = knownConst(ctx, i, fu.srcA);
            std::optional<int32_t> cb;
            if (fu.srcB.isNone())
                cb = fu.uop.imm;
            else
                cb = knownConst(ctx, i, fu.srcB);
            if (ca && cb) {
                uop::Uop cmp;
                cmp.op = fu.uop.assertOp;
                const auto flags = uop::evalAlu(
                    cmp, uint32_t(*ca), uint32_t(*cb), 0, x86::Flags{});
                if (x86::condTaken(fu.uop.cc, flags.flags)) {
                    buf.invalidate(i);
                    ++changed;
                    ++ctx.stats.constantsFolded;
                }
                // Provably-firing assertions are left in place; the
                // frame will abort at runtime and be evicted.
            }
        }
    }
    return changed;
}

} // namespace replay::opt
