/**
 * @file
 * The optimization passes of §3 and their shared context.
 *
 * Seven optimizations run over the optimization buffer: NOP removal
 * (including internal unconditional branches), value-assertion
 * combining, constant/copy propagation, reassociation, common
 * subexpression elimination (including speculative redundant-load
 * elimination), store forwarding (including the speculative variant
 * that marks intervening stores unsafe), and dead code elimination.
 * DCE is always enabled — every other pass relies on it (§6.4).
 *
 * Each pass returns the number of changes it made; the Optimizer driver
 * iterates the pipeline until a fixed point.
 */

#ifndef REPLAY_OPT_PASSES_HH
#define REPLAY_OPT_PASSES_HH

#include <cstdint>
#include <optional>

#include "opt/optbuffer.hh"

namespace replay::opt {

/** Optimization scope (Figures 2 and 9). */
enum class Scope : uint8_t
{
    FRAME,      ///< whole frame as one atomic unit (§3.3)
    INTER_BLOCK,///< single entry, multiple exits (§3.2, a trace cache):
                ///< cross-block dataflow may be inspected, but every
                ///< block's architectural live-outs must be preserved
    BLOCK,      ///< each constituent basic block individually (§6.3)
};

/** Which optimizations run (Figure 10 disables them one at a time). */
struct OptConfig
{
    bool nopRemoval = true;         ///< "NOP" in Figure 10
    bool assertCombine = true;      ///< "ASST"
    bool constProp = true;          ///< "CP" (also copy propagation)
    bool reassoc = true;            ///< "RA"
    bool cse = true;                ///< "CSE"
    bool storeForward = true;       ///< "SF"
    bool speculativeMem = true;     ///< unsafe-store speculation (§3.4)
    Scope scope = Scope::FRAME;
    unsigned maxIterations = 4;

    /** The Figure 10 points. */
    static OptConfig allOn() { return {}; }

    /**
     * The degraded pass subset the engine drops to under HARD memory
     * pressure (see util/governor.hh): NOP removal plus the always-on
     * DCE — the two cheapest passes, both linear, no speculation, no
     * alias-profile dependence.  Frames stay correct (the static
     * verifier discharges the same obligations), they are just less
     * optimized until pressure relieves.
     */
    static OptConfig
    cheap()
    {
        OptConfig c = allOff();
        c.nopRemoval = true;
        return c;
    }
    static OptConfig
    allOff()
    {
        OptConfig c;
        c.nopRemoval = c.assertCombine = c.constProp = c.reassoc =
            c.cse = c.storeForward = c.speculativeMem = false;
        return c;
    }
    /**
     * Pass-subset encoding used by the differential fuzzer's reducer:
     * one bit per optional pass, in pipeline order (DCE is always
     * enabled — every other pass relies on it, §6.4).
     */
    enum PassBit : uint8_t
    {
        PASS_NOP = 0,
        PASS_ASST,
        PASS_CP,
        PASS_RA,
        PASS_CSE,
        PASS_SF,
        PASS_SPECMEM,
        NUM_PASS_BITS,
    };

    /** Short name of a pass bit ("NOP", "ASST", ...). */
    static const char *passBitName(unsigned bit);

    /** Pack the enabled-pass booleans into a bit mask. */
    uint8_t passMask() const;

    /** A config with exactly the passes of @p mask enabled. */
    static OptConfig fromPassMask(uint8_t mask);

    static OptConfig
    without(const std::string &name)
    {
        OptConfig c;
        if (name == "ASST")
            c.assertCombine = false;
        else if (name == "CP")
            c.constProp = false;
        else if (name == "CSE")
            c.cse = false;
        else if (name == "NOP")
            c.nopRemoval = false;
        else if (name == "RA")
            c.reassoc = false;
        else if (name == "SF")
            c.storeForward = false;
        return c;
    }
};

/** Aggregate counters across all optimized frames. */
struct OptStats
{
    uint64_t framesOptimized = 0;
    uint64_t inputUops = 0;
    uint64_t outputUops = 0;
    uint64_t inputLoads = 0;
    uint64_t outputLoads = 0;

    uint64_t nopsRemoved = 0;
    uint64_t assertsCombined = 0;
    uint64_t constantsFolded = 0;
    uint64_t copiesPropagated = 0;
    uint64_t reassociations = 0;
    uint64_t cseRemoved = 0;
    uint64_t loadsCseRemoved = 0;
    uint64_t loadsForwarded = 0;
    uint64_t speculativeLoadsRemoved = 0;
    uint64_t unsafeStoresMarked = 0;
    uint64_t deadRemoved = 0;

    void merge(const OptStats &other);

    double
    uopReduction() const
    {
        return inputUops ? 1.0 - double(outputUops) / double(inputUops)
                         : 0.0;
    }

    double
    loadReduction() const
    {
        return inputLoads
                   ? 1.0 - double(outputLoads) / double(inputLoads)
                   : 0.0;
    }
};

/**
 * Aliasing observations fed to the speculative memory optimizations
 * (§3.4): "We record aliasing events during execution and pass this
 * information to the optimizer."
 */
class AliasHints
{
  public:
    virtual ~AliasHints() = default;

    /**
     * May the optimizer speculate that the store identified by its
     * provenance never aliases?  False once an aliasing event has been
     * observed for it.
     */
    virtual bool cleanForSpeculation(uint32_t x86_pc,
                                     uint8_t mem_seq) const = 0;
};

/** Everything a pass needs. */
struct OptContext
{
    OptBuffer &buf;
    const OptConfig &cfg;
    const AliasHints *alias = nullptr;  ///< null = never speculate
    OptStats &stats;

    /** Both slots in the same optimization scope? */
    bool
    sameScope(size_t a, size_t b) const
    {
        return cfg.scope != Scope::BLOCK ||
               buf.at(a).block == buf.at(b).block;
    }

    /**
     * May a pass working at slot @p at inspect the producer behind
     * @p op (follow the parent edge and use its fields)?
     */
    bool
    inspectable(size_t at, const Operand &op) const
    {
        return op.isProd() && buf.at(op.idx).valid &&
               sameScope(at, op.idx);
    }
};

/** A slot's flags result is observable (consumed or exit-bound)? */
bool flagsObservable(const OptBuffer &buf, size_t idx);

/**
 * Redirect uses of slot @p producer's register value (or flags value
 * when @p flags_view) to @p to, honouring the optimization scope:
 * only consumers in the producer's scope are rewritten, and exit
 * bindings are rewritten only when the exit belongs to the producer's
 * scope.  Returns the number of rewrites.
 */
unsigned replaceUsesScoped(OptContext &ctx, size_t producer,
                           bool flags_view, const Operand &to);

// --- the passes ---------------------------------------------------------

unsigned passNopRemoval(OptContext &ctx);
unsigned passAssertCombine(OptContext &ctx);
unsigned passConstProp(OptContext &ctx);
unsigned passReassociate(OptContext &ctx);
unsigned passCse(OptContext &ctx);
unsigned passStoreForward(OptContext &ctx);
unsigned passDce(OptContext &ctx);

// --- shared memory-address reasoning ------------------------------------

/** Symbolic address of a memory micro-op. */
struct AddrKey
{
    Operand base;
    Operand index;
    uint8_t scale = 1;
    int32_t disp = 0;
    uint8_t size = 4;

    /** Works on both materialized FrameUops and OptBuffer cursors. */
    template <typename UopView>
    static AddrKey
    of(const UopView &fu)
    {
        AddrKey key;
        key.base = fu.srcA;
        key.index = fu.uop.isStore() ? fu.srcC : fu.srcB;
        key.scale = fu.uop.scale;
        key.disp = fu.uop.imm;
        key.size = fu.uop.memSize;
        return key;
    }

    /** Same location, same width (§6.4: symbolic base, literal disp). */
    bool sameAddress(const AddrKey &other) const;

    /** Provably non-overlapping (same symbolic base, disjoint range). */
    bool provablyDisjoint(const AddrKey &other) const;
};

} // namespace replay::opt

#endif // REPLAY_OPT_PASSES_HH
