/**
 * @file
 * Store forwarding (§3.2, §3.4).
 *
 * A load whose address symbolically equals an earlier store's address
 * is satisfied by the stored value: consumers of the load are
 * redirected at the store's data operand and the load dies.  Legality
 * requires every store between the pair to be provably disjoint; when
 * one merely *may* alias, the optimizer speculates — if the alias
 * profile records no aliasing event for it — and marks that store
 * unsafe, to be checked against all earlier frame memory transactions
 * at runtime (a conflict aborts the frame).
 */

#include "opt/passes.hh"

namespace replay::opt {

unsigned
passStoreForward(OptContext &ctx)
{
    if (!ctx.cfg.storeForward)
        return 0;

    OptBuffer &buf = ctx.buf;
    const std::vector<uint16_t> mem = buf.memSlots();
    unsigned changed = 0;

    for (size_t l_pos = 0; l_pos < mem.size(); ++l_pos) {
        const uint16_t li = mem[l_pos];
        const auto lu = buf.at(li);
        if (!lu.valid || !lu.uop.isLoad())
            continue;
        // Sub-word forwarding would need value munging; skip it.
        if (lu.uop.memSize != 4)
            continue;
        const AddrKey addr = AddrKey::of(lu);

        std::vector<uint16_t> unsafe_marks;
        for (size_t s_pos = l_pos; s_pos-- > 0;) {
            const uint16_t si = mem[s_pos];
            const auto su = buf.at(si);
            if (!su.uop.isStore())
                continue;
            if (!ctx.sameScope(si, li))
                break;              // stores beyond scope are opaque
            const AddrKey skey = AddrKey::of(su);

            if (skey.sameAddress(addr)) {
                // Found the forwarding source.
                const Operand value = su.srcB;
                const unsigned n =
                    replaceUsesScoped(ctx, li, false, value);
                if (n == 0)
                    break;
                changed += n;
                for (const uint16_t m : unsafe_marks) {
                    if (!buf.at(m).unsafe) {
                        buf.at(m).unsafe = true;
                        ++ctx.stats.unsafeStoresMarked;
                    }
                }
                if (!buf.valueUsed(li) && !buf.isLiveOutReg(li)) {
                    buf.invalidate(li);
                    ++ctx.stats.loadsForwarded;
                    if (!unsafe_marks.empty())
                        ++ctx.stats.speculativeLoadsRemoved;
                }
                break;
            }
            if (skey.provablyDisjoint(addr))
                continue;
            // May alias: need speculation to look further back.
            if (!ctx.cfg.speculativeMem || !ctx.alias ||
                !ctx.alias->cleanForSpeculation(su.uop.x86Pc,
                                                su.uop.memSeq)) {
                break;
            }
            unsafe_marks.push_back(si);
        }
    }
    return changed;
}

} // namespace replay::opt
