#include "opt/passes.hh"

namespace replay::opt {

const char *
OptConfig::passBitName(unsigned bit)
{
    switch (bit) {
      case PASS_NOP:     return "NOP";
      case PASS_ASST:    return "ASST";
      case PASS_CP:      return "CP";
      case PASS_RA:      return "RA";
      case PASS_CSE:     return "CSE";
      case PASS_SF:      return "SF";
      case PASS_SPECMEM: return "SPEC";
    }
    return "?";
}

uint8_t
OptConfig::passMask() const
{
    uint8_t mask = 0;
    mask |= uint8_t(nopRemoval) << PASS_NOP;
    mask |= uint8_t(assertCombine) << PASS_ASST;
    mask |= uint8_t(constProp) << PASS_CP;
    mask |= uint8_t(reassoc) << PASS_RA;
    mask |= uint8_t(cse) << PASS_CSE;
    mask |= uint8_t(storeForward) << PASS_SF;
    mask |= uint8_t(speculativeMem) << PASS_SPECMEM;
    return mask;
}

OptConfig
OptConfig::fromPassMask(uint8_t mask)
{
    OptConfig c;
    c.nopRemoval = mask & (1u << PASS_NOP);
    c.assertCombine = mask & (1u << PASS_ASST);
    c.constProp = mask & (1u << PASS_CP);
    c.reassoc = mask & (1u << PASS_RA);
    c.cse = mask & (1u << PASS_CSE);
    c.storeForward = mask & (1u << PASS_SF);
    c.speculativeMem = mask & (1u << PASS_SPECMEM);
    return c;
}

void
OptStats::merge(const OptStats &other)
{
    framesOptimized += other.framesOptimized;
    inputUops += other.inputUops;
    outputUops += other.outputUops;
    inputLoads += other.inputLoads;
    outputLoads += other.outputLoads;
    nopsRemoved += other.nopsRemoved;
    assertsCombined += other.assertsCombined;
    constantsFolded += other.constantsFolded;
    copiesPropagated += other.copiesPropagated;
    reassociations += other.reassociations;
    cseRemoved += other.cseRemoved;
    loadsCseRemoved += other.loadsCseRemoved;
    loadsForwarded += other.loadsForwarded;
    speculativeLoadsRemoved += other.speculativeLoadsRemoved;
    unsafeStoresMarked += other.unsafeStoresMarked;
    deadRemoved += other.deadRemoved;
}

bool
flagsObservable(const OptBuffer &buf, size_t idx)
{
    if (!buf.at(idx).uop.writesFlags)
        return false;
    return buf.flagsUsed(idx) || buf.isLiveOutFlags(idx);
}

unsigned
replaceUsesScoped(OptContext &ctx, size_t producer, bool flags_view,
                  const Operand &to)
{
    OptBuffer &buf = ctx.buf;
    const Operand from = flags_view
        ? Operand::prodFlags(uint16_t(producer))
        : Operand::prod(uint16_t(producer));
    unsigned changed = 0;

    for (size_t i = 0; i < buf.size(); ++i) {
        if (!buf.valid(i) || !ctx.sameScope(producer, i))
            continue;
        const auto fu = buf.at(i);
        if (fu.srcA == from) {
            buf.setSource(i, SrcRole::A, to);
            ++changed;
        }
        if (fu.srcB == from) {
            buf.setSource(i, SrcRole::B, to);
            ++changed;
        }
        if (fu.srcC == from) {
            buf.setSource(i, SrcRole::C, to);
            ++changed;
        }
        if (fu.flagsSrc == from) {
            buf.setSource(i, SrcRole::FLAGS, to);
            ++changed;
        }
    }

    const uint16_t producer_block = buf.at(producer).block;

    if (ctx.cfg.scope == Scope::INTER_BLOCK) {
        // Multiple exits share one "is live out" marking per value
        // (Figure 4), so a register's binding may be redirected only
        // when the result is uniform across every exit — this is
        // exactly why Figure 2's inter-block column keeps the EBX
        // restore (the intermediate exit needs a different value) but
        // forwards the EBP restore (every exit then sees the live-in).
        for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
            bool appears = false, uniform = true;
            for (const auto &exit : buf.exits()) {
                if (exit.regs[r] == from)
                    appears = true;
                else if (!(exit.regs[r] == to))
                    uniform = false;
            }
            if (!appears || !uniform)
                continue;
            for (auto &exit : buf.exits()) {
                if (exit.regs[r] == from) {
                    exit.regs[r] = to;
                    ++changed;
                }
            }
        }
        bool appears = false, uniform = true;
        for (const auto &exit : buf.exits()) {
            if (exit.flags == from)
                appears = true;
            else if (!(exit.flags == to))
                uniform = false;
        }
        if (appears && uniform) {
            for (auto &exit : buf.exits()) {
                if (exit.flags == from) {
                    exit.flags = to;
                    ++changed;
                }
            }
        }
        return changed;
    }

    for (auto &exit : buf.exits()) {
        // In block scope an exit binding may only be redirected by
        // optimizations of its own block.
        if (ctx.cfg.scope == Scope::BLOCK && exit.block != producer_block)
            continue;
        for (auto &binding : exit.regs) {
            if (binding == from) {
                binding = to;
                ++changed;
            }
        }
        if (exit.flags == from) {
            exit.flags = to;
            ++changed;
        }
    }
    return changed;
}

bool
AddrKey::sameAddress(const AddrKey &other) const
{
    return base == other.base && index == other.index &&
           (index.isNone() || scale == other.scale) &&
           disp == other.disp && size == other.size;
}

bool
AddrKey::provablyDisjoint(const AddrKey &other) const
{
    // Two accesses are comparable only when they share the symbolic
    // base and index expression; then literal displacements decide.
    if (base != other.base || index != other.index)
        return false;
    if (!index.isNone() && scale != other.scale)
        return false;
    const int64_t a0 = disp, a1 = disp + size;
    const int64_t b0 = other.disp, b1 = other.disp + other.size;
    return a1 <= b0 || b1 <= a0;
}

} // namespace replay::opt
