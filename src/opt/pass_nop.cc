/**
 * @file
 * NOP removal (§6.4 item 4): deletes NOP micro-ops and unconditional
 * branches internal to the frame.  Frame construction guarantees that
 * every JMP inside a frame continues to the next included micro-op
 * (biased conditional branches became assertions and indirect jumps
 * with stable targets became value assertions), so direct jumps carry
 * no information within the atomic region.
 */

#include "opt/passes.hh"

namespace replay::opt {

unsigned
passNopRemoval(OptContext &ctx)
{
    if (!ctx.cfg.nopRemoval)
        return 0;

    OptBuffer &buf = ctx.buf;
    unsigned changed = 0;
    for (size_t i = 0; i < buf.size(); ++i) {
        if (!buf.valid(i))
            continue;
        const uop::Op op = buf.at(i).uop.op;
        buf.countFieldOp();
        if (op == uop::Op::NOP || op == uop::Op::JMP) {
            buf.invalidate(i);
            ++changed;
            ++ctx.stats.nopsRemoved;
        }
    }
    return changed;
}

} // namespace replay::opt
