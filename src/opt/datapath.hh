/**
 * @file
 * The optimizer datapath occupancy model (§4, §5.1.4).
 *
 * The engine is modeled abstractly: optimizing a frame takes 10 cycles
 * per micro-operation, and the optimizer is pipelined so several frames
 * can be in flight ("Simulation results show that a pipeline depth of 3
 * is sufficient to sustain the throughput of our rePLay model").  A
 * frame arriving when every pipeline stage is occupied is dropped — the
 * constructor will rebuild it when the code gets hot again.
 */

#ifndef REPLAY_OPT_DATAPATH_HH
#define REPLAY_OPT_DATAPATH_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "opt/optbuffer.hh"

namespace replay::opt {

/** Occupancy/latency model of the pipelined optimization engine. */
class OptimizerPipeline
{
  public:
    /**
     * @param depth          concurrent frames in flight
     * @param cycles_per_uop per-micro-op optimization latency
     */
    explicit OptimizerPipeline(unsigned depth = 3,
                               unsigned cycles_per_uop = 10)
        : depth_(depth), cyclesPerUop_(cycles_per_uop)
    {
    }

    /**
     * Offer a frame of @p num_uops micro-ops at @p now.
     *
     * @return the cycle at which the optimized frame is ready for the
     *         frame cache, or nullopt if the engine is saturated and
     *         the frame is dropped.
     */
    std::optional<uint64_t> schedule(uint64_t now, unsigned num_uops);

    uint64_t accepted() const { return accepted_; }
    uint64_t dropped() const { return dropped_; }

    /** Frames currently in flight at @p now. */
    unsigned inFlight(uint64_t now) const;

  private:
    unsigned depth_;
    unsigned cyclesPerUop_;
    mutable std::vector<uint64_t> busyUntil_;
    uint64_t accepted_ = 0;
    uint64_t dropped_ = 0;
};

/**
 * Per-primitive-class cycle weights for estimating what a hardware
 * implementation of the pass pipeline would cost, measured against the
 * PrimitiveCounts the OptBuffer records (bench_optimizer_datapath).
 */
struct PrimitiveLatency
{
    unsigned parentLookup = 1;  ///< indexed read of the buffer
    unsigned childStep = 1;     ///< dependency-list iteration step
    unsigned fieldOp = 1;       ///< ALU field extract/modify
    unsigned invalidate = 1;
    unsigned rewrite = 1;

    uint64_t
    cyclesFor(const PrimitiveCounts &prims) const
    {
        return prims.parentLookups * parentLookup +
               prims.childSteps * childStep +
               prims.fieldOps * fieldOp +
               prims.invalidates * invalidate +
               prims.rewrites * rewrite;
    }
};

} // namespace replay::opt

#endif // REPLAY_OPT_DATAPATH_HH
