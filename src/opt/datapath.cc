#include "opt/datapath.hh"

#include <algorithm>

namespace replay::opt {

std::optional<uint64_t>
OptimizerPipeline::schedule(uint64_t now, unsigned num_uops)
{
    // Retire finished frames.
    busyUntil_.erase(
        std::remove_if(busyUntil_.begin(), busyUntil_.end(),
                       [now](uint64_t t) { return t <= now; }),
        busyUntil_.end());

    if (busyUntil_.size() >= depth_) {
        ++dropped_;
        return std::nullopt;
    }

    const uint64_t done = now + uint64_t(num_uops) * cyclesPerUop_;
    busyUntil_.push_back(done);
    ++accepted_;
    return done;
}

unsigned
OptimizerPipeline::inFlight(uint64_t now) const
{
    unsigned n = 0;
    for (const uint64_t t : busyUntil_)
        n += t > now;
    return n;
}

} // namespace replay::opt
