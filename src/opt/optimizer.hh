/**
 * @file
 * The rePLay optimization engine driver.
 *
 * Runs the §3 pass pipeline over a frame's micro-ops to a fixed point
 * (bounded by OptConfig::maxIterations), then performs the Cleanup
 * step: invalidated slots are deleted and the survivors are read out in
 * position order with operand indices compacted.
 */

#ifndef REPLAY_OPT_OPTIMIZER_HH
#define REPLAY_OPT_OPTIMIZER_HH

#include <vector>

#include "opt/passes.hh"
#include "opt/remapper.hh"

namespace replay::opt {

/** The optimizer's output: a compacted, renamed frame body. */
struct OptimizedFrame
{
    /** Surviving micro-ops; PROD operand indices refer to this list. */
    std::vector<FrameUop> uops;

    /** Architectural bindings at the frame boundary. */
    ExitBinding exit;

    unsigned inputUops = 0;
    unsigned inputLoads = 0;
    unsigned outputLoads = 0;

    /** Datapath primitive usage during this optimization. */
    PrimitiveCounts prims;

    /**
     * Modeled optimization latency (§5.1.4: "a variable latency of 10
     * cycles per instruction").
     */
    uint64_t latencyCycles = 0;

    unsigned numUops() const { return unsigned(uops.size()); }
};

/** Drives remapping, the pass pipeline, and cleanup. */
class Optimizer
{
  public:
    explicit Optimizer(OptConfig cfg = {}) : cfg_(cfg) {}

    const OptConfig &config() const { return cfg_; }

    /**
     * Optimize one frame.
     *
     * @param uops   frame micro-ops in architectural form
     * @param blocks basic-block index per micro-op (may be empty)
     * @param alias  aliasing observations, or nullptr to forbid
     *               speculative memory optimization
     * @param stats  accumulates optimization counters
     */
    OptimizedFrame optimize(const std::vector<uop::Uop> &uops,
                            const std::vector<uint16_t> &blocks,
                            const AliasHints *alias,
                            OptStats &stats) const;

    /**
     * Remap and compact without running any pass — the plain-rePLay
     * (RP) path, where frames go straight from the constructor into
     * the frame cache (§6.3).
     */
    static OptimizedFrame passthrough(const std::vector<uop::Uop> &uops,
                                      const std::vector<uint16_t> &blocks);

    /** Cycles the abstract engine spends on a frame of @p n micro-ops. */
    static uint64_t
    latencyFor(unsigned n)
    {
        return uint64_t(n) * CYCLES_PER_UOP;
    }

    static constexpr unsigned CYCLES_PER_UOP = 10;

  private:
    OptConfig cfg_;
};

} // namespace replay::opt

#endif // REPLAY_OPT_OPTIMIZER_HH
