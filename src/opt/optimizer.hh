/**
 * @file
 * The rePLay optimization engine driver.
 *
 * Runs the §3 pass pipeline over a frame's micro-ops to a fixed point
 * (bounded by OptConfig::maxIterations), then performs the Cleanup
 * step: invalidated slots are deleted and the survivors are read out in
 * position order with operand indices compacted.
 */

#ifndef REPLAY_OPT_OPTIMIZER_HH
#define REPLAY_OPT_OPTIMIZER_HH

#include <memory>
#include <vector>

#include "opt/passes.hh"
#include "opt/remapper.hh"

namespace replay::opt {

/**
 * The optimizer's output: a compacted, renamed frame body.
 *
 * Stored structure-of-arrays: the micro-op fields live in a
 * uop::UopSlab (`code`) plus parallel operand/slot planes, so the
 * simulator's dispatch loop, frameexec, and the verifier sweep only
 * the planes they need.  All slots are valid (cleanup dropped the
 * rest); PROD operand indices refer to compacted slot order.
 */
struct OptimizedFrame
{
    /** Surviving micro-op fields, one plane each (incl. attr bitset). */
    uop::UopSlab code;

    /** Renamed source operands, parallel to `code`. */
    std::vector<Operand> srcA, srcB, srcC, flagsSrc;

    /** Unsafe-store marks, original slot positions, block indices. */
    std::vector<uint8_t> unsafe;
    std::vector<uint16_t> position;
    std::vector<uint16_t> block;

    /** Architectural bindings at the frame boundary. */
    ExitBinding exit;

    unsigned inputUops = 0;
    unsigned inputLoads = 0;
    unsigned outputLoads = 0;

    /** Datapath primitive usage during this optimization. */
    PrimitiveCounts prims;

    /**
     * Modeled optimization latency (§5.1.4: "a variable latency of 10
     * cycles per instruction").
     */
    uint64_t latencyCycles = 0;

    size_t size() const { return code.size(); }
    unsigned numUops() const { return unsigned(code.size()); }

    /** Materialize slot @p i (AoS snapshot; output slots are valid). */
    FrameUop
    at(size_t i) const
    {
        FrameUop fu;
        fu.uop = code.get(i);
        fu.srcA = srcA[i];
        fu.srcB = srcB[i];
        fu.srcC = srcC[i];
        fu.flagsSrc = flagsSrc[i];
        fu.valid = true;
        fu.unsafe = unsafe[i] != 0;
        fu.position = position[i];
        fu.block = block[i];
        return fu;
    }

    /** Materializing forward iterator (yields AoS snapshots). */
    struct ConstIter
    {
        const OptimizedFrame *f;
        size_t i;
        FrameUop operator*() const { return f->at(i); }
        ConstIter &operator++() { ++i; return *this; }
        bool operator!=(const ConstIter &o) const { return i != o.i; }
    };
    ConstIter begin() const { return {this, 0}; }
    ConstIter end() const { return {this, size()}; }

    /** Append a materialized micro-op (tests / round-trip oracle). */
    void
    push(const FrameUop &fu)
    {
        code.push(fu.uop);
        srcA.push_back(fu.srcA);
        srcB.push_back(fu.srcB);
        srcC.push_back(fu.srcC);
        flagsSrc.push_back(fu.flagsSrc);
        unsafe.push_back(fu.unsafe);
        position.push_back(fu.position);
        block.push_back(fu.block);
    }

    /** Truncate/extend the body (tests); new slots default-constructed. */
    void
    resize(size_t n)
    {
        code.resize(n);
        srcA.resize(n);
        srcB.resize(n);
        srcC.resize(n);
        flagsSrc.resize(n);
        unsafe.resize(n);
        position.resize(n);
        block.resize(n);
    }

    /** Reset to empty; planes keep capacity (pooled frame bodies). */
    void
    clear()
    {
        code.clear();
        srcA.clear();
        srcB.clear();
        srcC.clear();
        flagsSrc.clear();
        unsafe.clear();
        position.clear();
        block.clear();
    }

    /** Allocated plane footprint (governor accounting). */
    size_t
    memoryBytes() const
    {
        return code.memoryBytes() +
               (srcA.capacity() + srcB.capacity() + srcC.capacity() +
                flagsSrc.capacity()) * sizeof(Operand) +
               unsafe.capacity() +
               (position.capacity() + block.capacity()) *
                   sizeof(uint16_t);
    }
};

/** The pipeline passes, in execution order (DCE included). */
enum class PassId : uint8_t
{
    NOP,
    ASST,
    CP,
    RA,
    CSE,
    SF,
    DCE,
};

inline constexpr unsigned NUM_PASS_IDS = 7;

/** Short name of a pass ("NOP", "ASST", ...). */
const char *passIdName(PassId id);

/**
 * Observes the optimizer's intermediate states — the seam the static
 * translation validator (src/verify/static) attaches to.  One observer
 * instance is created per optimize() invocation, so implementations
 * may keep per-frame state without synchronization even when many
 * frames optimize concurrently.
 */
class PassObserver
{
  public:
    virtual ~PassObserver() = default;

    /** The buffer right after remapping, before any pass runs. */
    virtual void onRemapped(const OptBuffer &buf) = 0;

    /** After each pass invocation, with its reported change count. */
    virtual void onPass(PassId pass, unsigned changed,
                        const OptBuffer &buf) = 0;

    /** The compacted output (also fires on the passthrough path). */
    virtual void onFinalized(const OptimizedFrame &out) = 0;
};

/**
 * Global observer factory.  The optimizer cannot depend on the
 * verification layer, so checkers inject themselves through this
 * inversion point; a null factory (the default) costs one atomic load
 * per optimized frame.  @p alias may be null.
 */
using PassObserverFactory =
    std::unique_ptr<PassObserver> (*)(const OptConfig &cfg,
                                      const AliasHints *alias);

void setPassObserverFactory(PassObserverFactory factory);
PassObserverFactory passObserverFactory();

/** Drives remapping, the pass pipeline, and cleanup. */
class Optimizer
{
  public:
    explicit Optimizer(OptConfig cfg = {}) : cfg_(cfg) {}

    const OptConfig &config() const { return cfg_; }

    /**
     * Optimize one frame.
     *
     * @param uops   frame micro-ops in architectural form
     * @param blocks basic-block index per micro-op (may be empty)
     * @param alias  aliasing observations, or nullptr to forbid
     *               speculative memory optimization
     * @param stats  accumulates optimization counters
     */
    OptimizedFrame
    optimize(const std::vector<uop::Uop> &uops,
             const std::vector<uint16_t> &blocks,
             const AliasHints *alias, OptStats &stats) const
    {
        OptimizedFrame out;
        optimize(uops, blocks, alias, stats, out);
        return out;
    }

    /**
     * Optimize one frame into @p out (overwritten; its vectors keep
     * their capacity, so a pooled frame body stops allocating once
     * warm).
     */
    void optimize(const std::vector<uop::Uop> &uops,
                  const std::vector<uint16_t> &blocks,
                  const AliasHints *alias, OptStats &stats,
                  OptimizedFrame &out) const;

    /**
     * Remap and compact without running any pass — the plain-rePLay
     * (RP) path, where frames go straight from the constructor into
     * the frame cache (§6.3).
     *
     * @param frame_semantics the body is an atomic frame and must obey
     *        the frame IR invariants; pass observers (the static
     *        checker) are only notified when true.  Trace-cache fills
     *        pass false: their traces carry embedded conditional
     *        branches and side exits by design.
     */
    static OptimizedFrame
    passthrough(const std::vector<uop::Uop> &uops,
                const std::vector<uint16_t> &blocks,
                bool frame_semantics = true)
    {
        OptimizedFrame out;
        passthrough(uops, blocks, frame_semantics, out);
        return out;
    }

    /** The RP path, into @p out (overwritten, capacity reused). */
    static void passthrough(const std::vector<uop::Uop> &uops,
                            const std::vector<uint16_t> &blocks,
                            bool frame_semantics, OptimizedFrame &out);

    /** Cycles the abstract engine spends on a frame of @p n micro-ops. */
    static uint64_t
    latencyFor(unsigned n)
    {
        return uint64_t(n) * CYCLES_PER_UOP;
    }

    static constexpr unsigned CYCLES_PER_UOP = 10;

  private:
    OptConfig cfg_;
};

} // namespace replay::opt

#endif // REPLAY_OPT_OPTIMIZER_HH
