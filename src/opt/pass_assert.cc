/**
 * @file
 * Value assertion combining (§3.4): an x86 flag-generating comparison
 * (CMP or TEST) followed by an assertion on those flags becomes a
 * single value-asserting micro-op.  The comparison then usually dies
 * (dead code elimination removes it when its flags have no other
 * observer).
 */

#include "opt/passes.hh"

namespace replay::opt {

unsigned
passAssertCombine(OptContext &ctx)
{
    if (!ctx.cfg.assertCombine)
        return 0;

    OptBuffer &buf = ctx.buf;
    unsigned changed = 0;
    for (size_t i = 0; i < buf.size(); ++i) {
        if (!buf.valid(i))
            continue;
        auto fu = buf.at(i);
        if (fu.uop.op != uop::Op::ASSERT || fu.uop.valueAssert)
            continue;
        const Operand flags_src = buf.parent(i, SrcRole::FLAGS);
        if (!ctx.inspectable(i, flags_src) || !flags_src.flagsView)
            continue;
        const FrameUop producer = buf.at(flags_src.idx);
        const uop::Op pop = producer.uop.op;
        buf.countFieldOp();
        if (pop != uop::Op::CMP && pop != uop::Op::TEST)
            continue;

        // Fuse: ASSERT.cc(flags of CMP a,b)  =>  ASSERT.cc a, b.
        fu.uop.valueAssert = true;
        fu.uop.assertOp = pop;
        fu.uop.imm = producer.uop.imm;
        fu.uop.srcA = producer.uop.srcA;    // architectural names, for
        fu.uop.srcB = producer.uop.srcB;    // rendering only
        fu.srcA = producer.srcA;
        fu.srcB = producer.srcB;
        fu.uop.readsFlags = false;
        fu.flagsSrc = Operand::none();
        buf.countFieldOp();
        ++changed;
        ++ctx.stats.assertsCombined;
    }
    return changed;
}

} // namespace replay::opt
