/**
 * @file
 * Dead code elimination — the pass every other optimization relies on
 * (§6.4: "As all other optimizations rely on dead code elimination, it
 * is enabled in all runs").
 *
 * A micro-op is dead when it has no side effect the frame still needs:
 * it is not a store, assertion, or frame-terminating control transfer;
 * its register value has no consumer and is not bound by any exit; and
 * its flags result likewise has no observer.  Removal is iterated
 * backwards to a fixed point so entire dead dataflow trees fall at
 * once.
 */

#include "opt/passes.hh"

namespace replay::opt {

using uop::Op;

namespace {

bool
removable(const FrameUop &fu)
{
    switch (fu.uop.op) {
      case Op::STORE:
      case Op::FSTORE:
      case Op::ASSERT:
      case Op::BR:
      case Op::JMPI:
      case Op::LONGFLOW:
        return false;
      // JMP/NOP belong to the NOP-removal pass (a separately
      // disableable optimization in Figure 10).
      case Op::JMP:
      case Op::NOP:
        return false;
      default:
        return true;
    }
}

} // anonymous namespace

unsigned
passDce(OptContext &ctx)
{
    OptBuffer &buf = ctx.buf;
    unsigned removed = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (size_t i = buf.size(); i-- > 0;) {
            if (!buf.valid(i))
                continue;
            const FrameUop &fu = buf.at(i);
            if (!removable(fu))
                continue;
            const bool value_needed =
                fu.uop.dst != uop::UReg::NONE &&
                (buf.valueUsed(i) || buf.isLiveOutReg(i));
            if (value_needed)
                continue;
            if (flagsObservable(buf, i))
                continue;
            buf.invalidate(i);
            ++removed;
            ++ctx.stats.deadRemoved;
            progress = true;
        }
    }
    return removed;
}

} // namespace replay::opt
