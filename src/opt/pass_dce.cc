/**
 * @file
 * Dead code elimination — the pass every other optimization relies on
 * (§6.4: "As all other optimizations rely on dead code elimination, it
 * is enabled in all runs").
 *
 * A micro-op is dead when it has no side effect the frame still needs:
 * it is not a store, assertion, or frame-terminating control transfer;
 * its register value has no consumer and is not bound by any exit; and
 * its flags result likewise has no observer.  Removal is iterated
 * backwards to a fixed point so entire dead dataflow trees fall at
 * once.
 */

#include "opt/passes.hh"

namespace replay::opt {

using uop::Op;

namespace {

bool
removableOp(Op op)
{
    switch (op) {
      case Op::STORE:
      case Op::FSTORE:
      case Op::ASSERT:
      case Op::BR:
      case Op::JMPI:
      case Op::LONGFLOW:
        return false;
      // JMP/NOP belong to the NOP-removal pass (a separately
      // disableable optimization in Figure 10).
      case Op::JMP:
      case Op::NOP:
        return false;
      default:
        return true;
    }
}

} // anonymous namespace

unsigned
passDce(OptContext &ctx)
{
    OptBuffer &buf = ctx.buf;
    const uop::UopSlab &code = buf.code();
    const size_t n = buf.size();

    // Bulk use counts over the operand planes: one linear gather
    // replaces the per-candidate valueUsed()/flagsUsed() scans that
    // made removal quadratic.  Exit bindings are folded in as sticky
    // uses (exits are never removed, so they never decrement).
    thread_local std::vector<uint16_t> val_uses, flag_uses;
    val_uses.assign(n, 0);
    flag_uses.assign(n, 0);
    auto count = [&](const Operand &op, int delta) {
        if (op.isProd()) {
            auto &uses = op.flagsView ? flag_uses : val_uses;
            uses[op.idx] = uint16_t(int(uses[op.idx]) + delta);
        }
    };
    for (size_t i = 0; i < n; ++i) {
        if (!buf.valid(i))
            continue;
        count(buf.srcAPlane()[i], +1);
        count(buf.srcBPlane()[i], +1);
        count(buf.srcCPlane()[i], +1);
        count(buf.flagsSrcPlane()[i], +1);
    }
    for (const auto &exit : buf.exits()) {
        for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
            if (OptBuffer::archLiveOut(static_cast<uop::UReg>(r)))
                count(exit.regs[r], +1);
        }
        count(exit.flags, +1);
    }

    // PROD references point backwards in a straight-line frame, so one
    // reverse sweep with live counts fells whole dead dataflow trees;
    // the outer loop only re-runs if a forward reference ever appears.
    unsigned removed = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (size_t i = n; i-- > 0;) {
            if (!buf.valid(i))
                continue;
            const Op op = code.op[i];
            if (!removableOp(op))
                continue;
            if (code.dst[i] != uop::UReg::NONE && val_uses[i])
                continue;
            if (code.writesFlags[i] && flag_uses[i])
                continue;
            buf.invalidate(i);
            count(buf.srcAPlane()[i], -1);
            count(buf.srcBPlane()[i], -1);
            count(buf.srcCPlane()[i], -1);
            count(buf.flagsSrcPlane()[i], -1);
            ++removed;
            ++ctx.stats.deadRemoved;
            progress = true;
        }
    }
    return removed;
}

} // namespace replay::opt
