#include "opt/remapper.hh"

#include "util/logging.hh"

namespace replay::opt {

using uop::Uop;
using uop::UReg;

void
Remapper::remap(const std::vector<Uop> &uops,
                const std::vector<uint16_t> &blocks,
                bool per_block_exits, OptBuffer &buf) const
{
    panic_if(!blocks.empty() && blocks.size() != uops.size(),
             "block annotation length mismatch");

    buf.clear();

    // Current binding of every architectural register and the flags.
    std::array<Operand, uop::NUM_UREGS> binding;
    for (unsigned r = 0; r < uop::NUM_UREGS; ++r)
        binding[r] = Operand::liveIn(static_cast<UReg>(r));
    Operand flags_binding = Operand::liveInFlags();

    auto resolve = [&](UReg reg) {
        return reg == UReg::NONE ? Operand::none()
                                 : binding[unsigned(reg)];
    };

    auto snapshot = [&](uint16_t block) {
        ExitBinding exit;
        exit.block = block;
        exit.regs = binding;
        exit.flags = flags_binding;
        buf.addExit(std::move(exit));
    };

    uint16_t cur_block = 0;
    for (size_t i = 0; i < uops.size(); ++i) {
        const Uop &u = uops[i];
        const uint16_t block = blocks.empty() ? 0 : blocks[i];
        if (per_block_exits && block != cur_block)
            snapshot(cur_block);
        cur_block = block;

        FrameUop fu;
        fu.uop = u;
        fu.srcA = resolve(u.srcA);
        fu.srcB = resolve(u.srcB);
        fu.srcC = resolve(u.srcC);
        if (u.readsFlags)
            fu.flagsSrc = flags_binding;
        fu.block = block;

        const uint16_t slot = buf.push(fu);
        if (u.dst != UReg::NONE)
            binding[unsigned(u.dst)] = Operand::prod(slot);
        if (u.writesFlags)
            flags_binding = Operand::prodFlags(slot);
    }

    // The frame-boundary exit is always present and always last.
    snapshot(cur_block);
}

} // namespace replay::opt
