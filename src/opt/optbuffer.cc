#include "opt/optbuffer.hh"

#include <sstream>

#include "util/logging.hh"

namespace replay::opt {

std::string
Operand::str() const
{
    switch (kind) {
      case Kind::NONE:
        return "<->";
      case Kind::LIVE_IN:
        return std::string("<L:") + uop::uregName(reg) +
               (flagsView ? "f>" : ">");
      case Kind::PROD:
        return "<P" + std::string(flagsView ? "f" : "") + ":" +
               std::to_string(idx) + ">";
    }
    return "<?>";
}

uint16_t
OptBuffer::push(FrameUop fu)
{
    panic_if(slots_.size() >= 0xffff, "optimization buffer overflow");
    fu.position = uint16_t(slots_.size());
    slots_.push_back(fu);
    return uint16_t(slots_.size() - 1);
}

Operand
OptBuffer::parent(size_t idx, SrcRole role)
{
    ++prims_.parentLookups;
    return slots_[idx].src(role);
}

namespace {

bool
usesOperand(const FrameUop &fu, const Operand &op)
{
    return fu.srcA == op || fu.srcB == op || fu.srcC == op ||
           fu.flagsSrc == op;
}

} // anonymous namespace

std::vector<uint16_t>
OptBuffer::valueChildren(size_t idx)
{
    const Operand target = Operand::prod(uint16_t(idx));
    std::vector<uint16_t> kids;
    for (size_t i = 0; i < slots_.size(); ++i) {
        ++prims_.childSteps;
        if (slots_[i].valid && usesOperand(slots_[i], target))
            kids.push_back(uint16_t(i));
    }
    return kids;
}

std::vector<uint16_t>
OptBuffer::flagsChildren(size_t idx)
{
    const Operand target = Operand::prodFlags(uint16_t(idx));
    std::vector<uint16_t> kids;
    for (size_t i = 0; i < slots_.size(); ++i) {
        ++prims_.childSteps;
        if (slots_[i].valid && usesOperand(slots_[i], target))
            kids.push_back(uint16_t(i));
    }
    return kids;
}

void
OptBuffer::setSource(size_t idx, SrcRole role, Operand op)
{
    ++prims_.rewrites;
    FrameUop &fu = slots_[idx];
    switch (role) {
      case SrcRole::A:     fu.srcA = op; break;
      case SrcRole::B:     fu.srcB = op; break;
      case SrcRole::C:     fu.srcC = op; break;
      case SrcRole::FLAGS: fu.flagsSrc = op; break;
    }
}

void
OptBuffer::replaceAllUses(const Operand &from, const Operand &to)
{
    for (size_t i = 0; i < slots_.size(); ++i) {
        FrameUop &fu = slots_[i];
        ++prims_.childSteps;
        if (!fu.valid)
            continue;
        if (fu.srcA == from)
            setSource(i, SrcRole::A, to);
        if (fu.srcB == from)
            setSource(i, SrcRole::B, to);
        if (fu.srcC == from)
            setSource(i, SrcRole::C, to);
        if (fu.flagsSrc == from)
            setSource(i, SrcRole::FLAGS, to);
    }
    for (auto &exit : exits_) {
        for (auto &binding : exit.regs) {
            if (binding == from) {
                binding = to;
                ++prims_.rewrites;
            }
        }
        if (exit.flags == from) {
            exit.flags = to;
            ++prims_.rewrites;
        }
    }
}

void
OptBuffer::invalidate(size_t idx)
{
    panic_if(slots_[idx].uop.isStore(),
             "the optimizer never removes stores");
    ++prims_.invalidates;
    slots_[idx].valid = false;
}

bool
OptBuffer::valueUsed(size_t idx) const
{
    const Operand target = Operand::prod(uint16_t(idx));
    for (const auto &fu : slots_) {
        if (fu.valid && usesOperand(fu, target))
            return true;
    }
    return false;
}

bool
OptBuffer::flagsUsed(size_t idx) const
{
    const Operand target = Operand::prodFlags(uint16_t(idx));
    for (const auto &fu : slots_) {
        if (fu.valid && usesOperand(fu, target))
            return true;
    }
    return false;
}

bool
OptBuffer::isLiveOutReg(size_t idx) const
{
    const Operand target = Operand::prod(uint16_t(idx));
    for (const auto &exit : exits_) {
        for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
            if (archLiveOut(static_cast<uop::UReg>(r)) &&
                exit.regs[r] == target) {
                return true;
            }
        }
    }
    return false;
}

bool
OptBuffer::isLiveOutFlags(size_t idx) const
{
    const Operand target = Operand::prodFlags(uint16_t(idx));
    for (const auto &exit : exits_) {
        if (exit.flags == target)
            return true;
    }
    return false;
}

bool
OptBuffer::archLiveOut(uop::UReg reg)
{
    using uop::UReg;
    if (reg >= UReg::ET0 && reg <= UReg::ET7)
        return false;
    return reg != UReg::NONE;
}

std::vector<uint16_t>
OptBuffer::memSlots() const
{
    std::vector<uint16_t> out;
    for (size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].valid && slots_[i].uop.isMem())
            out.push_back(uint16_t(i));
    }
    return out;
}

unsigned
OptBuffer::validCount() const
{
    unsigned n = 0;
    for (const auto &fu : slots_)
        n += fu.valid;
    return n;
}

unsigned
OptBuffer::validLoads() const
{
    unsigned n = 0;
    for (const auto &fu : slots_)
        n += fu.valid && fu.uop.isLoad();
    return n;
}

std::string
OptBuffer::dump() const
{
    std::ostringstream out;
    for (size_t i = 0; i < slots_.size(); ++i) {
        const FrameUop &fu = slots_[i];
        out << (fu.valid ? "  " : "x ") << i << ": "
            << uop::format(fu.uop);
        out << "   [A" << fu.srcA.str() << " B" << fu.srcB.str() << " C"
            << fu.srcC.str() << " F" << fu.flagsSrc.str() << "]";
        if (fu.unsafe)
            out << " UNSAFE";
        out << '\n';
    }
    for (const auto &exit : exits_) {
        out << "  exit(block " << exit.block << "):";
        for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
            const auto reg = static_cast<uop::UReg>(r);
            if (archLiveOut(reg) && !exit.regs[r].isNone() &&
                exit.regs[r] != Operand::liveIn(reg)) {
                out << ' ' << uop::uregName(reg) << '='
                    << exit.regs[r].str();
            }
        }
        out << '\n';
    }
    return out.str();
}

} // namespace replay::opt
