#include "opt/optbuffer.hh"

#include <sstream>

#include "util/logging.hh"

namespace replay::opt {

std::string
Operand::str() const
{
    switch (kind) {
      case Kind::NONE:
        return "<->";
      case Kind::LIVE_IN:
        return std::string("<L:") + uop::uregName(reg) +
               (flagsView ? "f>" : ">");
      case Kind::PROD:
        return "<P" + std::string(flagsView ? "f" : "") + ":" +
               std::to_string(idx) + ">";
    }
    return "<?>";
}

void
OptBuffer::growPlanes(size_t n)
{
    srcA_.resize(n);
    srcB_.resize(n);
    srcC_.resize(n);
    flagsSrc_.resize(n);
    valid_.resize(n);
    unsafe_.resize(n);
    position_.resize(n);
    block_.resize(n);
}

Operand
OptBuffer::parent(size_t idx, SrcRole role)
{
    ++prims_.parentLookups;
    switch (role) {
      case SrcRole::A: return srcA_[idx];
      case SrcRole::B: return srcB_[idx];
      case SrcRole::C: return srcC_[idx];
      default: return flagsSrc_[idx];
    }
}

bool
OptBuffer::usesOperandAt(size_t i, const Operand &op) const
{
    return srcA_[i] == op || srcB_[i] == op || srcC_[i] == op ||
           flagsSrc_[i] == op;
}

std::vector<uint16_t>
OptBuffer::valueChildren(size_t idx)
{
    const Operand target = Operand::prod(uint16_t(idx));
    std::vector<uint16_t> kids;
    const size_t n = code_.size();
    for (size_t i = 0; i < n; ++i) {
        ++prims_.childSteps;
        if (valid_[i] && usesOperandAt(i, target))
            kids.push_back(uint16_t(i));
    }
    return kids;
}

std::vector<uint16_t>
OptBuffer::flagsChildren(size_t idx)
{
    const Operand target = Operand::prodFlags(uint16_t(idx));
    std::vector<uint16_t> kids;
    const size_t n = code_.size();
    for (size_t i = 0; i < n; ++i) {
        ++prims_.childSteps;
        if (valid_[i] && usesOperandAt(i, target))
            kids.push_back(uint16_t(i));
    }
    return kids;
}

void
OptBuffer::setSource(size_t idx, SrcRole role, Operand op)
{
    ++prims_.rewrites;
    switch (role) {
      case SrcRole::A:     srcA_[idx] = op; break;
      case SrcRole::B:     srcB_[idx] = op; break;
      case SrcRole::C:     srcC_[idx] = op; break;
      case SrcRole::FLAGS: flagsSrc_[idx] = op; break;
    }
}

void
OptBuffer::replaceAllUses(const Operand &from, const Operand &to)
{
    const size_t n = code_.size();
    for (size_t i = 0; i < n; ++i) {
        ++prims_.childSteps;
        if (!valid_[i])
            continue;
        if (srcA_[i] == from)
            setSource(i, SrcRole::A, to);
        if (srcB_[i] == from)
            setSource(i, SrcRole::B, to);
        if (srcC_[i] == from)
            setSource(i, SrcRole::C, to);
        if (flagsSrc_[i] == from)
            setSource(i, SrcRole::FLAGS, to);
    }
    for (auto &exit : exits_) {
        for (auto &binding : exit.regs) {
            if (binding == from) {
                binding = to;
                ++prims_.rewrites;
            }
        }
        if (exit.flags == from) {
            exit.flags = to;
            ++prims_.rewrites;
        }
    }
}

void
OptBuffer::invalidate(size_t idx)
{
    panic_if(uop::kindBitsOf(code_.op[idx]) & uop::UA_KIND_STORE,
             "the optimizer never removes stores");
    ++prims_.invalidates;
    valid_[idx] = 0;
}

bool
OptBuffer::valueUsed(size_t idx) const
{
    const Operand target = Operand::prod(uint16_t(idx));
    const size_t n = code_.size();
    for (size_t i = 0; i < n; ++i) {
        if (valid_[i] && usesOperandAt(i, target))
            return true;
    }
    return false;
}

bool
OptBuffer::flagsUsed(size_t idx) const
{
    const Operand target = Operand::prodFlags(uint16_t(idx));
    const size_t n = code_.size();
    for (size_t i = 0; i < n; ++i) {
        if (valid_[i] && usesOperandAt(i, target))
            return true;
    }
    return false;
}

bool
OptBuffer::isLiveOutReg(size_t idx) const
{
    const Operand target = Operand::prod(uint16_t(idx));
    for (const auto &exit : exits_) {
        for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
            if (archLiveOut(static_cast<uop::UReg>(r)) &&
                exit.regs[r] == target) {
                return true;
            }
        }
    }
    return false;
}

bool
OptBuffer::isLiveOutFlags(size_t idx) const
{
    const Operand target = Operand::prodFlags(uint16_t(idx));
    for (const auto &exit : exits_) {
        if (exit.flags == target)
            return true;
    }
    return false;
}

bool
OptBuffer::archLiveOut(uop::UReg reg)
{
    using uop::UReg;
    if (reg >= UReg::ET0 && reg <= UReg::ET7)
        return false;
    return reg != UReg::NONE;
}

std::vector<uint16_t>
OptBuffer::memSlots() const
{
    std::vector<uint16_t> out;
    const size_t n = code_.size();
    for (size_t i = 0; i < n; ++i) {
        if (valid_[i] && (uop::kindBitsOf(code_.op[i]) & uop::UA_KIND_MEM))
            out.push_back(uint16_t(i));
    }
    return out;
}

unsigned
OptBuffer::validCount() const
{
    // The planes stay sized to code_.capacity() across clear(), so
    // slots past code_.size() hold stale flags from recycled frames;
    // only the live prefix may be counted.
    unsigned n = 0;
    const size_t count = code_.size();
    for (size_t i = 0; i < count; ++i)
        n += valid_[i];
    return n;
}

unsigned
OptBuffer::validLoads() const
{
    unsigned n = 0;
    const size_t count = code_.size();
    for (size_t i = 0; i < count; ++i) {
        n += valid_[i] &&
             (uop::kindBitsOf(code_.op[i]) & uop::UA_KIND_LOAD);
    }
    return n;
}

std::string
OptBuffer::dump() const
{
    std::ostringstream out;
    for (size_t i = 0; i < code_.size(); ++i) {
        out << (valid_[i] ? "  " : "x ") << i << ": "
            << uop::format(code_.get(i));
        out << "   [A" << srcA_[i].str() << " B" << srcB_[i].str()
            << " C" << srcC_[i].str() << " F" << flagsSrc_[i].str()
            << "]";
        if (unsafe_[i])
            out << " UNSAFE";
        out << '\n';
    }
    for (const auto &exit : exits_) {
        out << "  exit(block " << exit.block << "):";
        for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
            const auto reg = static_cast<uop::UReg>(r);
            if (archLiveOut(reg) && !exit.regs[r].isNone() &&
                exit.regs[r] != Operand::liveIn(reg)) {
                out << ' ' << uop::uregName(reg) << '='
                    << exit.regs[r].str();
            }
        }
        out << '\n';
    }
    return out.str();
}

} // namespace replay::opt
