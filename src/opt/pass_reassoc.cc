/**
 * @file
 * Reassociation (§6.4 item 5) — the paper's "gateway optimization".
 *
 * Chains of immediate additions and subtractions collapse: an ADD whose
 * source is itself an immediate ADD re-points at the grandparent with a
 * combined immediate (the parent then often dies).  The same collapse
 * applies to the base registers of loads and stores, which flattens
 * stack-pointer manipulations; only then do CSE and store forwarding
 * see symbolically-equal addresses ("two memory instructions are deemed
 * equivalent only if their base registers are symbolically the same and
 * their immediates and scales are literally the same").
 *
 * Flag safety: ADD a,(c1+c2) produces different carry/overflow flags
 * than the original chain, so a micro-op is only rewritten when its
 * flags result has no observer; flag-dead SUBs are first normalized to
 * ADDs of the negated immediate.
 */

#include "opt/passes.hh"

namespace replay::opt {

using uop::Op;

namespace {

/** Is this slot an ADD with an immediate second operand? */
bool
isAddImm(const FrameUop &fu)
{
    return fu.uop.op == Op::ADD && fu.srcB.isNone() && !fu.srcA.isNone();
}

} // anonymous namespace

unsigned
passReassociate(OptContext &ctx)
{
    if (!ctx.cfg.reassoc)
        return 0;

    OptBuffer &buf = ctx.buf;
    unsigned changed = 0;

    // Normalize flag-dead immediate SUBs into ADDs so chains mix.
    for (size_t i = 0; i < buf.size(); ++i) {
        if (!buf.valid(i))
            continue;
        auto fu = buf.at(i);
        if (fu.uop.op == Op::SUB && fu.srcB.isNone() &&
            !flagsObservable(buf, i)) {
            fu.uop.op = Op::ADD;
            // Negate modulo 2^32 (satellite fix: `-imm` is UB on
            // INT32_MIN and the stack-adjust chains do hit it).
            fu.uop.imm = int32_t(0u - uint32_t(fu.uop.imm));
            fu.uop.writesFlags = false;
            fu.uop.flagsCarryOnly = false;
            fu.uop.readsFlags = false;
            buf.setSource(i, SrcRole::FLAGS, Operand::none());
            buf.countFieldOp();
            ++changed;
        }
        // An ADD whose flags are dead no longer needs to produce them;
        // clearing the bit unlocks chain collapsing below.
        if (fu.uop.op == Op::ADD && fu.uop.writesFlags &&
            !flagsObservable(buf, i)) {
            fu.uop.writesFlags = false;
            fu.uop.flagsCarryOnly = false;
            fu.uop.readsFlags = false;
            buf.setSource(i, SrcRole::FLAGS, Operand::none());
            buf.countFieldOp();
            ++changed;
        }
    }

    // Collapse ADD-immediate chains.
    for (size_t i = 0; i < buf.size(); ++i) {
        if (!buf.valid(i))
            continue;
        auto fu = buf.at(i);
        if (!isAddImm(fu) || fu.uop.writesFlags)
            continue;
        while (true) {
            const Operand src = buf.parent(i, SrcRole::A);
            if (!ctx.inspectable(i, src) || src.flagsView)
                break;
            const auto parent = buf.at(src.idx);
            if (!isAddImm(parent))
                break;
            buf.setSource(i, SrcRole::A, parent.srcA);
            fu.uop.imm = int32_t(uint32_t(fu.uop.imm) +
                                 uint32_t(parent.uop.imm));
            ++changed;
            ++ctx.stats.reassociations;
        }
    }

    // Collapse addressing bases of loads and stores through the chain.
    for (size_t i = 0; i < buf.size(); ++i) {
        if (!buf.valid(i))
            continue;
        auto fu = buf.at(i);
        if (!fu.uop.isMem())
            continue;
        while (true) {
            const Operand base = buf.parent(i, SrcRole::A);
            if (!ctx.inspectable(i, base) || base.flagsView)
                break;
            const auto parent = buf.at(base.idx);
            int32_t delta;
            if (isAddImm(parent)) {
                delta = parent.uop.imm;
            } else if (parent.uop.op == Op::SUB &&
                       parent.srcB.isNone() && !parent.srcA.isNone()) {
                // Address arithmetic only uses the value, so even a
                // flag-live SUB can be looked through.  Negate and
                // accumulate modulo 2^32 (satellite fix: both this
                // negation and the += below were signed-overflow UB).
                delta = int32_t(0u - uint32_t(parent.uop.imm));
            } else {
                break;
            }
            buf.setSource(i, SrcRole::A, parent.srcA);
            fu.uop.imm = int32_t(uint32_t(fu.uop.imm) + uint32_t(delta));
            ++changed;
            ++ctx.stats.reassociations;
        }
    }
    return changed;
}

} // namespace replay::opt
