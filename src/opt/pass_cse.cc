/**
 * @file
 * Common subexpression elimination (§3.4, §6.4 item 3).
 *
 * Classic value numbering over the renamed buffer removes recomputed
 * ALU values (and duplicate comparisons — their flag results are
 * redirected too).  Its primary job in the paper is *redundant load
 * elimination*: a load matching an earlier load of the symbolically
 * identical address is removed when every intervening store is provably
 * disjoint — or speculatively, with the non-disjoint intervening stores
 * marked unsafe, when the alias profile shows they never aliased during
 * observed execution.
 */

#include "opt/passes.hh"

#include <unordered_map>

namespace replay::opt {

using uop::Op;

namespace {

/** Value-numbering key: full semantic identity of a pure micro-op. */
struct VnKey
{
    Op op;
    x86::Cond cc;
    Operand srcA, srcB, srcC, flagsSrc;
    int32_t imm;
    uint8_t scale;
    uint8_t memSize;
    bool signExtend;
    bool flagsCarryOnly;
    uint16_t block;     ///< scope partition (0 in frame scope)

    bool operator==(const VnKey &) const = default;
};

struct VnKeyHash
{
    size_t
    operator()(const VnKey &k) const
    {
        OperandHash oh;
        size_t h = size_t(k.op) * 0x9e3779b9;
        h ^= size_t(k.cc) + 0x517cc1b7;
        h ^= oh(k.srcA) * 3 + oh(k.srcB) * 5 + oh(k.srcC) * 7 +
             oh(k.flagsSrc) * 11;
        h ^= size_t(uint32_t(k.imm)) * 13;
        h ^= (size_t(k.scale) << 8) ^ (size_t(k.memSize) << 16) ^
             (size_t(k.signExtend) << 24) ^
             (size_t(k.flagsCarryOnly) << 25) ^ (size_t(k.block) << 26);
        return h;
    }
};

bool
isPureValueOp(Op op)
{
    switch (op) {
      case Op::LIMM:
      case Op::ADD:
      case Op::SUB:
      case Op::AND:
      case Op::OR:
      case Op::XOR:
      case Op::SHL:
      case Op::SHR:
      case Op::SAR:
      case Op::MUL:
      case Op::DIVQ:
      case Op::DIVR:
      case Op::NOT:
      case Op::NEG:
      case Op::SETCC:
      case Op::CMP:
      case Op::TEST:
      case Op::FADD:
      case Op::FSUB:
      case Op::FMUL:
      case Op::FDIV:
        return true;
      default:
        return false;
    }
}

template <typename UopView>
VnKey
keyOf(const UopView &fu, Scope scope)
{
    VnKey k;
    k.op = fu.uop.op;
    k.cc = fu.uop.cc;
    k.srcA = fu.srcA;
    k.srcB = fu.srcB;
    k.srcC = fu.srcC;
    k.flagsSrc = fu.flagsSrc;
    k.imm = fu.uop.imm;
    k.scale = fu.uop.scale;
    k.memSize = fu.uop.memSize;
    k.signExtend = fu.uop.signExtend;
    k.flagsCarryOnly = fu.uop.flagsCarryOnly;
    k.block = scope == Scope::BLOCK ? fu.block : 0;
    return k;
}

} // anonymous namespace

/**
 * Try to eliminate load @p li as redundant with earlier load @p ki.
 * @return true when eliminated.
 */
static bool
tryRemoveRedundantLoad(OptContext &ctx, const std::vector<uint16_t> &mem,
                       size_t k_pos, size_t l_pos)
{
    OptBuffer &buf = ctx.buf;
    const uint16_t ki = mem[k_pos], li = mem[l_pos];
    const AddrKey addr = AddrKey::of(buf.at(li));
    if (!addr.sameAddress(AddrKey::of(buf.at(ki))))
        return false;
    if (buf.at(li).uop.signExtend != buf.at(ki).uop.signExtend)
        return false;

    // Classify intervening stores.
    std::vector<uint16_t> unsafe_marks;
    for (size_t p = k_pos + 1; p < l_pos; ++p) {
        const auto s = buf.at(mem[p]);
        if (!s.uop.isStore())
            continue;
        const AddrKey skey = AddrKey::of(s);
        if (skey.sameAddress(addr))
            return false;       // value genuinely changed
        if (skey.provablyDisjoint(addr))
            continue;
        // May alias: speculation required.
        if (!ctx.cfg.speculativeMem || !ctx.alias ||
            !ctx.alias->cleanForSpeculation(s.uop.x86Pc, s.uop.memSeq)) {
            return false;
        }
        unsafe_marks.push_back(mem[p]);
    }

    const unsigned rewrites =
        replaceUsesScoped(ctx, li, false, Operand::prod(ki));
    if (rewrites == 0)
        return false;
    // Any consumer now reads the earlier value past the may-alias
    // stores, so those must be checked at runtime even if the load
    // itself survives (out-of-scope bindings can keep it alive in
    // block scope).
    for (const uint16_t s : unsafe_marks) {
        if (!buf.at(s).unsafe) {
            buf.at(s).unsafe = true;
            ++ctx.stats.unsafeStoresMarked;
        }
    }
    if (buf.valueUsed(li) || buf.isLiveOutReg(li))
        return false;
    buf.invalidate(li);
    ++ctx.stats.cseRemoved;
    ++ctx.stats.loadsCseRemoved;
    if (!unsafe_marks.empty())
        ++ctx.stats.speculativeLoadsRemoved;
    return true;
}

unsigned
passCse(OptContext &ctx)
{
    if (!ctx.cfg.cse)
        return 0;

    OptBuffer &buf = ctx.buf;
    unsigned changed = 0;

    // ---- value numbering of pure micro-ops -----------------------------
    std::unordered_map<VnKey, uint16_t, VnKeyHash> table;
    for (size_t i = 0; i < buf.size(); ++i) {
        if (!buf.valid(i))
            continue;
        const auto fu = buf.at(i);
        if (!isPureValueOp(fu.uop.op))
            continue;
        const VnKey key = keyOf(fu, ctx.cfg.scope);
        const auto [it, fresh] = table.emplace(key, uint16_t(i));
        if (fresh)
            continue;
        const uint16_t leader = it->second;

        unsigned n = 0;
        n += replaceUsesScoped(ctx, i, false, Operand::prod(leader));
        if (fu.uop.writesFlags) {
            // The leader computes the identical result, so its flags
            // are identical — but reassociation may have cleared its
            // flag production as dead; re-enable it before pointing
            // flag consumers at it.
            buf.at(leader).uop.writesFlags = true;
            n += replaceUsesScoped(ctx, i, true,
                                   Operand::prodFlags(leader));
        }
        if (n) {
            changed += n;
            ++ctx.stats.cseRemoved;
        }
    }

    // ---- redundant load elimination ------------------------------------
    const std::vector<uint16_t> mem = buf.memSlots();
    for (size_t l_pos = 0; l_pos < mem.size(); ++l_pos) {
        const auto lu = buf.at(mem[l_pos]);
        if (!lu.valid || !lu.uop.isLoad())
            continue;
        // Nearest earlier matching load first.
        for (size_t k_pos = l_pos; k_pos-- > 0;) {
            const auto ku = buf.at(mem[k_pos]);
            if (!ku.valid || !ku.uop.isLoad())
                continue;
            if (!ctx.sameScope(mem[k_pos], mem[l_pos]))
                continue;
            if (tryRemoveRedundantLoad(ctx, mem, k_pos, l_pos)) {
                ++changed;
                break;
            }
            // A same-address hit that failed means no older load can
            // succeed either.
            if (AddrKey::of(lu).sameAddress(AddrKey::of(ku)))
                break;
        }
    }
    return changed;
}

} // namespace replay::opt
