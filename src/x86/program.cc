#include "x86/program.hh"

#include "util/logging.hh"

namespace replay::x86 {

Program::Program(std::vector<Placed> code, std::vector<DataSegment> data,
                 uint32_t entry, uint32_t stack_top)
    : code_(std::move(code)), data_(std::move(data)), entry_(entry),
      stackTop_(stack_top)
{
    byAddr_.reserve(code_.size());
    for (size_t i = 0; i < code_.size(); ++i) {
        const auto [it, fresh] = byAddr_.emplace(code_[i].addr, i);
        panic_if(!fresh, "two instructions placed at 0x%08x",
                 code_[i].addr);
        codeBytes_ += code_[i].length;
    }
    fatal_if(!contains(entry_), "program entry 0x%08x has no instruction",
             entry_);
}

const Program::Placed &
Program::at(uint32_t addr) const
{
    const auto it = byAddr_.find(addr);
    fatal_if(it == byAddr_.end(),
             "execution reached 0x%08x where no instruction is placed",
             addr);
    return code_[it->second];
}

bool
Program::contains(uint32_t addr) const
{
    return byAddr_.find(addr) != byAddr_.end();
}

} // namespace replay::x86
