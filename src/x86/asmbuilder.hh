/**
 * @file
 * A small assembler for the x86 subset.
 *
 * The builder lays instructions out sequentially from a base address
 * using their modeled x86 lengths, supports forward label references,
 * and produces an immutable Program.  It is the public entry point for
 * writing test kernels and for the workload synthesizer.
 *
 * Example:
 * @code
 *   AsmBuilder b(0x401000);
 *   b.movRI(Reg::ECX, 100);
 *   b.label("loop");
 *   b.addRI(Reg::EAX, 3);
 *   b.decR(Reg::ECX);
 *   b.jcc(Cond::NE, "loop");
 *   b.ret();
 *   Program prog = b.build();
 * @endcode
 */

#ifndef REPLAY_X86_ASMBUILDER_HH
#define REPLAY_X86_ASMBUILDER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "x86/inst.hh"
#include "x86/program.hh"

namespace replay::x86 {

/** Incremental program builder with label resolution. */
class AsmBuilder
{
  public:
    explicit AsmBuilder(uint32_t base = 0x00401000,
                        uint32_t stack_top = 0x7ffff000);

    /** Bind a label to the current address. */
    void label(const std::string &name);

    /** Address a label resolved to (fatal if unresolved at build()). */
    uint32_t addrOf(const std::string &name) const;

    /** Current layout address (next instruction goes here). */
    uint32_t here() const { return cursor_; }

    /** Append a raw instruction (escape hatch for unusual shapes). */
    void emit(const Inst &inst);

    // -- Moves ----------------------------------------------------------
    void movRR(Reg dst, Reg src);
    void movRI(Reg dst, int32_t imm);
    void movRM(Reg dst, const MemRef &src);
    /** Store @p size low bytes of a register (1, 2, or 4). */
    void movMR(const MemRef &dst, Reg src, uint8_t size = 4);
    /** Store a @p size byte immediate (1, 2, or 4). */
    void movMI(const MemRef &dst, int32_t imm, uint8_t size = 4);
    void movzxRM(Reg dst, const MemRef &src, uint8_t size);
    void movsxRM(Reg dst, const MemRef &src, uint8_t size);
    void lea(Reg dst, const MemRef &src);

    // -- Stack ----------------------------------------------------------
    void pushR(Reg src);
    void pushI(int32_t imm);
    void popR(Reg dst);

    // -- Two-address ALU -------------------------------------------------
    void aluRR(Mnem op, Reg dst, Reg src);
    void aluRI(Mnem op, Reg dst, int32_t imm);
    void aluRM(Mnem op, Reg dst, const MemRef &src);
    void addRR(Reg dst, Reg src) { aluRR(Mnem::ADD, dst, src); }
    void addRI(Reg dst, int32_t imm) { aluRI(Mnem::ADD, dst, imm); }
    void addRM(Reg dst, const MemRef &m) { aluRM(Mnem::ADD, dst, m); }
    void subRR(Reg dst, Reg src) { aluRR(Mnem::SUB, dst, src); }
    void subRI(Reg dst, int32_t imm) { aluRI(Mnem::SUB, dst, imm); }
    void andRR(Reg dst, Reg src) { aluRR(Mnem::AND, dst, src); }
    void andRI(Reg dst, int32_t imm) { aluRI(Mnem::AND, dst, imm); }
    void orRR(Reg dst, Reg src) { aluRR(Mnem::OR, dst, src); }
    void orRI(Reg dst, int32_t imm) { aluRI(Mnem::OR, dst, imm); }
    void xorRR(Reg dst, Reg src) { aluRR(Mnem::XOR, dst, src); }
    void xorRI(Reg dst, int32_t imm) { aluRI(Mnem::XOR, dst, imm); }
    void cmpRR(Reg a, Reg b) { aluRR(Mnem::CMP, a, b); }
    void cmpRI(Reg a, int32_t imm) { aluRI(Mnem::CMP, a, imm); }
    void cmpRM(Reg a, const MemRef &m) { aluRM(Mnem::CMP, a, m); }
    void testRR(Reg a, Reg b) { aluRR(Mnem::TEST, a, b); }
    void testRI(Reg a, int32_t imm) { aluRI(Mnem::TEST, a, imm); }

    // -- One-address ALU -------------------------------------------------
    void incR(Reg reg);
    void decR(Reg reg);
    void negR(Reg reg);
    void notR(Reg reg);

    // -- Multiply / divide / shift ----------------------------------------
    void imulRR(Reg dst, Reg src);
    void imulRRI(Reg dst, Reg src, int32_t imm);
    void divR(Reg src);
    void shlRI(Reg reg, uint8_t count);
    void shrRI(Reg reg, uint8_t count);
    void sarRI(Reg reg, uint8_t count);
    void cdq();

    // -- Control ----------------------------------------------------------
    void jmp(const std::string &target);
    void jmpR(Reg target);
    void jcc(Cond cc, const std::string &target);
    void call(const std::string &target);
    void callR(Reg target);
    void ret();
    void nop();
    void setcc(Cond cc, Reg dst);
    void longflow();

    // -- Floating point (flat scalar model) --------------------------------
    void fld(FReg dst, const MemRef &src);
    void fst(const MemRef &dst, FReg src);
    void fopFRR(Mnem op, FReg dst, FReg src);

    // -- Data ---------------------------------------------------------------
    /** Reserve and zero-fill a named data region; returns its address. */
    uint32_t dataRegion(const std::string &name, uint32_t size_bytes);
    /** Initialize 32-bit words in a previously reserved region. */
    void dataWords(const std::string &name,
                   const std::vector<uint32_t> &words);

    /**
     * Initialize word @p word_idx of a region with the address a label
     * resolves to (jump/call tables); applied at build().
     */
    void dataWordLabel(const std::string &name, uint32_t word_idx,
                       const std::string &label);
    /** Address of a named data region. */
    uint32_t dataAddr(const std::string &name) const;

    /** Resolve labels and produce the program. */
    Program build(uint32_t entry = 0);

  private:
    struct Fixup
    {
        size_t instIndex;
        std::string label;
    };

    struct DataFixup
    {
        std::string region;
        uint32_t wordIndex;
        std::string label;
    };

    uint32_t base_;
    uint32_t cursor_;
    uint32_t stackTop_;
    uint32_t dataCursor_;
    std::vector<Program::Placed> code_;
    std::unordered_map<std::string, uint32_t> labels_;
    std::vector<Fixup> fixups_;
    std::vector<DataFixup> dataFixups_;
    std::unordered_map<std::string, DataSegment> dataByName_;
    std::unordered_map<std::string, uint32_t> dataAddrs_;
};

} // namespace replay::x86

#endif // REPLAY_X86_ASMBUILDER_HH
