#include "x86/inst.hh"

#include "util/logging.hh"

namespace replay::x86 {

bool
condTaken(Cond cc, const Flags &f)
{
    switch (cc) {
      case Cond::O:  return f.of;
      case Cond::NO: return !f.of;
      case Cond::B:  return f.cf;
      case Cond::AE: return !f.cf;
      case Cond::E:  return f.zf;
      case Cond::NE: return !f.zf;
      case Cond::BE: return f.cf || f.zf;
      case Cond::A:  return !f.cf && !f.zf;
      case Cond::S:  return f.sf;
      case Cond::NS: return !f.sf;
      case Cond::P:  return f.pf;
      case Cond::NP: return !f.pf;
      case Cond::L:  return f.sf != f.of;
      case Cond::GE: return f.sf == f.of;
      case Cond::LE: return f.zf || f.sf != f.of;
      case Cond::G:  return !f.zf && f.sf == f.of;
      default:
        panic("condTaken on invalid condition code %d", int(cc));
    }
}

MemRef
memAt(Reg base, int32_t disp)
{
    MemRef m;
    m.base = base;
    m.disp = disp;
    return m;
}

MemRef
memAt(Reg base, Reg index, uint8_t scale, int32_t disp)
{
    panic_if(scale != 1 && scale != 2 && scale != 4 && scale != 8,
             "illegal scale %u", scale);
    MemRef m;
    m.base = base;
    m.index = index;
    m.scale = scale;
    m.disp = disp;
    return m;
}

MemRef
memAbs(int32_t addr)
{
    MemRef m;
    m.disp = addr;
    return m;
}

bool
Inst::isLoad() const
{
    switch (mnem) {
      case Mnem::MOV:
      case Mnem::MOVZX:
      case Mnem::MOVSX:
      case Mnem::ADD:
      case Mnem::SUB:
      case Mnem::AND:
      case Mnem::OR:
      case Mnem::XOR:
      case Mnem::CMP:
      case Mnem::TEST:
      case Mnem::IMUL:
        return form == Form::RM;
      case Mnem::DIV:
        return form == Form::M;
      case Mnem::POP:
      case Mnem::RET:
        return true;
      case Mnem::PUSH:
      case Mnem::JMP:
      case Mnem::CALL:
        return form == Form::M;
      case Mnem::FLD:
        return true;
      default:
        return false;
    }
}

bool
Inst::isStore() const
{
    switch (mnem) {
      case Mnem::MOV:
        return form == Form::MR || form == Form::MI;
      case Mnem::PUSH:
      case Mnem::CALL:          // pushes the return address
        return true;
      case Mnem::FST:
        return true;
      default:
        return false;
    }
}

bool
Inst::isControl() const
{
    return mnem == Mnem::JMP || mnem == Mnem::JCC || mnem == Mnem::CALL ||
           mnem == Mnem::RET;
}

namespace {

/** Bytes contributed by a ModRM + SIB + displacement for a MemRef. */
unsigned
memBytes(const MemRef &m)
{
    unsigned len = 1;                       // ModRM
    const bool needSib = m.index != Reg::NONE || m.base == Reg::ESP;
    if (needSib)
        len += 1;
    if (m.base == Reg::NONE) {
        len += 4;                           // absolute disp32
    } else if (m.disp == 0 && m.base != Reg::EBP) {
        len += 0;
    } else if (m.disp >= -128 && m.disp <= 127) {
        len += 1;
    } else {
        len += 4;
    }
    return len;
}

unsigned
immBytes(int64_t imm)
{
    return (imm >= -128 && imm <= 127) ? 1 : 4;
}

} // anonymous namespace

unsigned
Inst::modeledLength() const
{
    switch (mnem) {
      case Mnem::NOP:
        return 1;
      case Mnem::PUSH:
        if (form == Form::R)
            return 1;
        if (form == Form::I)
            return 1 + immBytes(imm);
        return 1 + memBytes(mem);
      case Mnem::POP:
        return 1;
      case Mnem::RET:
        return 1;
      case Mnem::CDQ:
        return 1;
      case Mnem::INC:
      case Mnem::DEC:
        return 1;
      case Mnem::MOV:
        switch (form) {
          case Form::RR: return 2;
          case Form::RI: return 5;          // B8+r imm32
          case Form::RM: return 1 + memBytes(mem);
          case Form::MR: return 1 + memBytes(mem);
          case Form::MI: return 1 + memBytes(mem) + 4;
          default: return 2;
        }
      case Mnem::MOVZX:
      case Mnem::MOVSX:
        return 2 + memBytes(mem);           // 0F escape
      case Mnem::LEA:
        return 1 + memBytes(mem);
      case Mnem::ADD:
      case Mnem::SUB:
      case Mnem::AND:
      case Mnem::OR:
      case Mnem::XOR:
      case Mnem::CMP:
      case Mnem::TEST:
        switch (form) {
          case Form::RR: return 2;
          case Form::RI: return 2 + immBytes(imm);
          case Form::RM: return 1 + memBytes(mem);
          case Form::MR: return 1 + memBytes(mem);
          case Form::MI: return 1 + memBytes(mem) + immBytes(imm);
          default: return 2;
        }
      case Mnem::NEG:
      case Mnem::NOT:
      case Mnem::DIV:
        return form == Form::M ? 1 + memBytes(mem) : 2;
      case Mnem::IMUL:
        if (form == Form::RRI)
            return 2 + immBytes(imm);
        return form == Form::RM ? 2 + memBytes(mem) : 3; // 0F AF /r
      case Mnem::SHL:
      case Mnem::SHR:
      case Mnem::SAR:
        return imm == 1 ? 2 : 3;
      case Mnem::JMP:
        if (form == Form::REL)
            return 5;                       // assume rel32 (hot code)
        return form == Form::R ? 2 : 1 + memBytes(mem);
      case Mnem::JCC:
        return 6;                           // 0F 8x rel32
      case Mnem::CALL:
        return form == Form::REL ? 5 : 2;
      case Mnem::SETCC:
        return 3;
      case Mnem::FLD:
      case Mnem::FST:
        return 1 + memBytes(mem);
      case Mnem::FADD:
      case Mnem::FSUB:
      case Mnem::FMUL:
      case Mnem::FDIV:
        return 2;
      case Mnem::LONGFLOW:
        return 2;
      default:
        return 2;
    }
}

const char *
regName(Reg reg)
{
    static const char *names[] = {"EAX", "ECX", "EDX", "EBX",
                                  "ESP", "EBP", "ESI", "EDI"};
    if (reg == Reg::NONE)
        return "-";
    return names[static_cast<unsigned>(reg)];
}

const char *
fregName(FReg freg)
{
    static const char *names[] = {"F0", "F1", "F2", "F3",
                                  "F4", "F5", "F6", "F7"};
    if (freg == FReg::NONE)
        return "-";
    return names[static_cast<unsigned>(freg)];
}

const char *
mnemName(Mnem mnem)
{
    static const char *names[] = {
        "MOV", "MOVZX", "MOVSX", "LEA", "PUSH", "POP", "ADD", "SUB",
        "AND", "OR", "XOR", "CMP", "TEST", "INC", "DEC", "NEG", "NOT",
        "IMUL", "DIV", "SHL", "SHR", "SAR", "JMP", "JCC", "CALL", "RET",
        "NOP", "CDQ", "SETCC", "FLD", "FST", "FADD", "FSUB", "FMUL",
        "FDIV", "LONGFLOW",
    };
    static_assert(sizeof(names) / sizeof(names[0]) ==
                  static_cast<size_t>(Mnem::NUM_MNEMS));
    return names[static_cast<unsigned>(mnem)];
}

const char *
condName(Cond cc)
{
    static const char *names[] = {"O", "NO", "B", "AE", "E", "NE",
                                  "BE", "A", "S", "NS", "P", "NP",
                                  "L", "GE", "LE", "G"};
    if (cc == Cond::NONE)
        return "-";
    return names[static_cast<unsigned>(cc)];
}

} // namespace replay::x86
