/**
 * @file
 * Textual disassembly of x86-subset instructions, Intel-flavoured
 * (destination first), used in debug output and the examples.
 */

#ifndef REPLAY_X86_DISASM_HH
#define REPLAY_X86_DISASM_HH

#include <string>

#include "x86/inst.hh"

namespace replay::x86 {

/** Render a memory operand, e.g. "[ESP+0x0c]". */
std::string formatMem(const MemRef &mem);

/** Render one instruction, e.g. "MOV ECX, [ESP+0x0c]". */
std::string disassemble(const Inst &inst);

} // namespace replay::x86

#endif // REPLAY_X86_DISASM_HH
