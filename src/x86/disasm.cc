#include "x86/disasm.hh"

#include <cstdio>
#include <sstream>

namespace replay::x86 {

std::string
formatMem(const MemRef &mem)
{
    std::ostringstream out;
    out << '[';
    bool need_plus = false;
    if (mem.base != Reg::NONE) {
        out << regName(mem.base);
        need_plus = true;
    }
    if (mem.index != Reg::NONE) {
        if (need_plus)
            out << '+';
        out << regName(mem.index);
        if (mem.scale != 1)
            out << '*' << unsigned(mem.scale);
        need_plus = true;
    }
    if (mem.disp != 0 || !need_plus) {
        char buf[32];
        if (need_plus) {
            std::snprintf(buf, sizeof(buf), "%s0x%02x",
                          mem.disp < 0 ? "-" : "+",
                          mem.disp < 0 ? -mem.disp : mem.disp);
        } else {
            std::snprintf(buf, sizeof(buf), "0x%08x", mem.disp);
        }
        out << buf;
    }
    out << ']';
    return out.str();
}

std::string
disassemble(const Inst &in)
{
    std::ostringstream out;
    char buf[32];

    if (in.mnem == Mnem::JCC) {
        out << 'J' << condName(in.cc);
    } else if (in.mnem == Mnem::SETCC) {
        out << "SET" << condName(in.cc);
    } else {
        out << mnemName(in.mnem);
    }

    auto immStr = [&]() {
        std::snprintf(buf, sizeof(buf), "0x%x", unsigned(in.imm));
        return std::string(buf);
    };
    auto targetStr = [&]() {
        std::snprintf(buf, sizeof(buf), "0x%08x", in.target);
        return std::string(buf);
    };

    switch (in.form) {
      case Form::NONE:
        break;
      case Form::R:
        out << ' '
            << regName(in.reg1 != Reg::NONE ? in.reg1 : in.reg2);
        break;
      case Form::I:
        out << ' ' << immStr();
        break;
      case Form::RR:
        out << ' ' << regName(in.reg1) << ", " << regName(in.reg2);
        break;
      case Form::RI:
        out << ' ' << regName(in.reg1) << ", " << immStr();
        break;
      case Form::RM:
        out << ' ' << regName(in.reg1) << ", " << formatMem(in.mem);
        break;
      case Form::MR:
        out << ' ' << formatMem(in.mem) << ", " << regName(in.reg2);
        break;
      case Form::MI:
        out << ' ' << formatMem(in.mem) << ", " << immStr();
        break;
      case Form::M:
        out << ' ' << formatMem(in.mem);
        break;
      case Form::RRI:
        out << ' ' << regName(in.reg1) << ", " << regName(in.reg2)
            << ", " << immStr();
        break;
      case Form::REL:
        out << ' ' << targetStr();
        break;
      case Form::FR:
        out << ' ' << fregName(in.freg1);
        break;
      case Form::FRR:
        out << ' ' << fregName(in.freg1) << ", " << fregName(in.freg2);
        break;
      case Form::FM:
        if (in.mnem == Mnem::FST)
            out << ' ' << formatMem(in.mem) << ", " << fregName(in.freg1);
        else
            out << ' ' << fregName(in.freg1) << ", " << formatMem(in.mem);
        break;
    }
    return out.str();
}

} // namespace replay::x86
