#include "x86/executor.hh"

#include <cstring>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace replay::x86 {

// ---------------------------------------------------------------------
// SparseMemory
// ---------------------------------------------------------------------

const SparseMemory::Page *
SparseMemory::findPage(uint32_t page_idx) const
{
    if (page_idx == cachedIdx_)
        return cachedPage_;
    const auto *slot = pages_.find(page_idx);
    Page *page = slot ? slot->get() : nullptr;
    if (page) {
        cachedIdx_ = page_idx;
        cachedPage_ = page;
    }
    return page;
}

SparseMemory::Page *
SparseMemory::touchPage(uint32_t page_idx)
{
    if (page_idx == cachedIdx_)
        return cachedPage_;
    auto &slot = pages_[page_idx];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
        // The insert may have rehashed the table; every cached Page
        // pointer stays valid (pages are stable heap objects), but the
        // cache itself must be refreshed from the new slot.
    }
    cachedIdx_ = page_idx;
    cachedPage_ = slot.get();
    return cachedPage_;
}

uint8_t
SparseMemory::peek(uint32_t addr) const
{
    const Page *page = findPage(addr >> PAGE_BITS);
    return page ? (*page)[addr & (PAGE_SIZE - 1)] : 0;
}

void
SparseMemory::poke(uint32_t addr, uint8_t value)
{
    (*touchPage(addr >> PAGE_BITS))[addr & (PAGE_SIZE - 1)] = value;
}

uint32_t
SparseMemory::read(uint32_t addr, unsigned size) const
{
    panic_if(size != 1 && size != 2 && size != 4,
             "illegal memory access size %u", size);
    const uint32_t off = addr & (PAGE_SIZE - 1);
    if (off + size <= PAGE_SIZE) {
        const Page *page = findPage(addr >> PAGE_BITS);
        if (!page)
            return 0;
        uint32_t value = 0;
        for (unsigned i = 0; i < size; ++i)
            value |= uint32_t((*page)[off + i]) << (8 * i);
        return value;
    }
    uint32_t value = 0;
    for (unsigned i = 0; i < size; ++i)
        value |= uint32_t(peek(addr + i)) << (8 * i);
    return value;
}

void
SparseMemory::write(uint32_t addr, unsigned size, uint32_t value)
{
    panic_if(size != 1 && size != 2 && size != 4,
             "illegal memory access size %u", size);
    const uint32_t off = addr & (PAGE_SIZE - 1);
    if (off + size <= PAGE_SIZE) {
        Page *page = touchPage(addr >> PAGE_BITS);
        for (unsigned i = 0; i < size; ++i)
            (*page)[off + i] = uint8_t(value >> (8 * i));
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        poke(addr + i, uint8_t(value >> (8 * i)));
}

void
SparseMemory::loadSegment(const DataSegment &seg)
{
    for (size_t i = 0; i < seg.bytes.size(); ++i)
        poke(seg.base + uint32_t(i), seg.bytes[i]);
}

// ---------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------

Executor::Executor(const Program &program)
    : program_(program), pc_(program.entry())
{
    for (const auto &seg : program.data())
        mem_.loadSegment(seg);
    regs_[unsigned(Reg::ESP)] = program.stackTop();
    regs_[unsigned(Reg::EBP)] = program.stackTop();
}

uint32_t
Executor::effAddr(const MemRef &m) const
{
    uint32_t addr = uint32_t(m.disp);
    if (m.base != Reg::NONE)
        addr += regs_[unsigned(m.base)];
    if (m.index != Reg::NONE)
        addr += regs_[unsigned(m.index)] * m.scale;
    return addr;
}

uint32_t
Executor::load(StepInfo &info, uint32_t addr, unsigned size)
{
    const uint32_t value = mem_.read(addr, size);
    info.memOps.push_back({false, addr, uint8_t(size), value});
    return value;
}

void
Executor::store(StepInfo &info, uint32_t addr, unsigned size,
                uint32_t value)
{
    // Canonicalize sub-word store data so trace records (and the
    // verifier maps derived from them) never carry stale high bytes.
    if (size < 4)
        value &= (1u << (8 * size)) - 1;
    mem_.write(addr, size, value);
    info.memOps.push_back({true, addr, uint8_t(size), value});
}

void
Executor::writeReg(StepInfo &info, Reg reg, uint32_t value)
{
    regs_[unsigned(reg)] = value;
    info.regWrites.push_back({reg, value});
}

void
Executor::writeFreg(StepInfo &info, FReg reg, float value)
{
    fregs_[unsigned(reg)] = value;
    info.fregWrites.push_back({reg, value});
}

void
Executor::setArithFlags(StepInfo &info, uint32_t result, bool cf, bool of)
{
    flags_.cf = cf;
    flags_.of = of;
    flags_.zf = result == 0;
    flags_.sf = (result >> 31) & 1;
    flags_.pf = parity(result & 0xff) == 0;
    info.wroteFlags = true;
}

void
Executor::setLogicFlags(StepInfo &info, uint32_t result)
{
    setArithFlags(info, result, false, false);
}

namespace {

bool
addOverflows(uint32_t a, uint32_t b, uint32_t r)
{
    return (~(a ^ b) & (a ^ r)) >> 31;
}

bool
subOverflows(uint32_t a, uint32_t b, uint32_t r)
{
    return ((a ^ b) & (a ^ r)) >> 31;
}

} // anonymous namespace

StepInfo
Executor::step()
{
    const Program::Placed &placed = program_.at(pc_);
    const Inst &in = placed.inst;

    StepInfo info;
    info.pc = pc_;
    info.placed = &placed;
    uint32_t next = pc_ + placed.length;

    auto srcValue = [&]() -> uint32_t {
        // Generic second operand for two-address ALU shapes.
        switch (in.form) {
          case Form::RR:
          case Form::RRI:
            return regs_[unsigned(in.reg2)];
          case Form::RI:
            return uint32_t(in.imm);
          case Form::RM:
            return load(info, effAddr(in.mem), in.opSize);
          default:
            panic("srcValue on form %d of %s", int(in.form),
                  mnemName(in.mnem));
        }
    };

    switch (in.mnem) {
      case Mnem::NOP:
        break;

      case Mnem::MOV:
        switch (in.form) {
          case Form::RR:
            writeReg(info, in.reg1, regs_[unsigned(in.reg2)]);
            break;
          case Form::RI:
            writeReg(info, in.reg1, uint32_t(in.imm));
            break;
          case Form::RM:
            writeReg(info, in.reg1, load(info, effAddr(in.mem), 4));
            break;
          case Form::MR:
            store(info, effAddr(in.mem), in.opSize,
                  regs_[unsigned(in.reg2)]);
            break;
          case Form::MI:
            store(info, effAddr(in.mem), in.opSize, uint32_t(in.imm));
            break;
          default:
            panic("MOV with form %d", int(in.form));
        }
        break;

      case Mnem::MOVZX: {
        const uint32_t v = load(info, effAddr(in.mem), in.opSize);
        writeReg(info, in.reg1, v);
        break;
      }

      case Mnem::MOVSX: {
        const uint32_t v = load(info, effAddr(in.mem), in.opSize);
        writeReg(info, in.reg1,
                 uint32_t(sext(v, in.opSize * 8)));
        break;
      }

      case Mnem::LEA:
        writeReg(info, in.reg1, effAddr(in.mem));
        break;

      case Mnem::PUSH: {
        uint32_t value;
        if (in.form == Form::R)
            value = regs_[unsigned(in.reg2)];
        else if (in.form == Form::I)
            value = uint32_t(in.imm);
        else
            value = load(info, effAddr(in.mem), 4);
        const uint32_t sp = regs_[unsigned(Reg::ESP)] - 4;
        store(info, sp, 4, value);
        writeReg(info, Reg::ESP, sp);
        break;
      }

      case Mnem::POP: {
        const uint32_t sp = regs_[unsigned(Reg::ESP)];
        const uint32_t value = load(info, sp, 4);
        writeReg(info, Reg::ESP, sp + 4);
        writeReg(info, in.reg1, value);
        break;
      }

      case Mnem::ADD: {
        const uint32_t a = regs_[unsigned(in.reg1)];
        const uint32_t b = srcValue();
        const uint32_t r = a + b;
        writeReg(info, in.reg1, r);
        setArithFlags(info, r, r < a, addOverflows(a, b, r));
        break;
      }

      case Mnem::SUB: {
        const uint32_t a = regs_[unsigned(in.reg1)];
        const uint32_t b = srcValue();
        const uint32_t r = a - b;
        writeReg(info, in.reg1, r);
        setArithFlags(info, r, a < b, subOverflows(a, b, r));
        break;
      }

      case Mnem::CMP: {
        const uint32_t a = regs_[unsigned(in.reg1)];
        const uint32_t b = srcValue();
        const uint32_t r = a - b;
        setArithFlags(info, r, a < b, subOverflows(a, b, r));
        break;
      }

      case Mnem::AND:
      case Mnem::OR:
      case Mnem::XOR: {
        const uint32_t a = regs_[unsigned(in.reg1)];
        const uint32_t b = srcValue();
        uint32_t r = 0;
        if (in.mnem == Mnem::AND)
            r = a & b;
        else if (in.mnem == Mnem::OR)
            r = a | b;
        else
            r = a ^ b;
        writeReg(info, in.reg1, r);
        setLogicFlags(info, r);
        break;
      }

      case Mnem::TEST: {
        const uint32_t a = regs_[unsigned(in.reg1)];
        const uint32_t b = srcValue();
        setLogicFlags(info, a & b);
        break;
      }

      case Mnem::INC: {
        const uint32_t a = regs_[unsigned(in.reg1)];
        const uint32_t r = a + 1;
        writeReg(info, in.reg1, r);
        // INC preserves CF.
        const bool cf = flags_.cf;
        setArithFlags(info, r, cf, addOverflows(a, 1, r));
        break;
      }

      case Mnem::DEC: {
        const uint32_t a = regs_[unsigned(in.reg1)];
        const uint32_t r = a - 1;
        writeReg(info, in.reg1, r);
        const bool cf = flags_.cf;
        setArithFlags(info, r, cf, subOverflows(a, 1, r));
        break;
      }

      case Mnem::NEG: {
        const uint32_t a = regs_[unsigned(in.reg1)];
        const uint32_t r = 0 - a;
        writeReg(info, in.reg1, r);
        setArithFlags(info, r, a != 0, subOverflows(0, a, r));
        break;
      }

      case Mnem::NOT:
        // NOT does not affect flags.
        writeReg(info, in.reg1, ~regs_[unsigned(in.reg1)]);
        break;

      case Mnem::IMUL: {
        const int64_t a = int32_t(regs_[unsigned(in.reg1)]);
        int64_t b;
        if (in.form == Form::RRI)
            b = in.imm;
        else
            b = int32_t(srcValue());
        const int64_t wide = (in.form == Form::RRI)
            ? int64_t(int32_t(regs_[unsigned(in.reg2)])) * b
            : a * b;
        const uint32_t r = uint32_t(wide);
        writeReg(info, in.reg1, r);
        const bool ovf = wide != int64_t(int32_t(r));
        setArithFlags(info, r, ovf, ovf);
        break;
      }

      case Mnem::DIV: {
        const uint64_t dividend =
            (uint64_t(regs_[unsigned(Reg::EDX)]) << 32) |
            regs_[unsigned(Reg::EAX)];
        const uint32_t divisor = in.form == Form::R
            ? regs_[unsigned(in.reg2)]
            : load(info, effAddr(in.mem), 4);
        fatal_if(divisor == 0, "DIV by zero at 0x%08x", pc_);
        const uint64_t q = dividend / divisor;
        fatal_if(q > 0xffffffffULL, "DIV quotient overflow at 0x%08x",
                 pc_);
        writeReg(info, Reg::EAX, uint32_t(q));
        writeReg(info, Reg::EDX, uint32_t(dividend % divisor));
        // Real DIV leaves flags undefined; we model them unchanged.
        break;
      }

      case Mnem::SHL: {
        const uint32_t a = regs_[unsigned(in.reg1)];
        const unsigned count = unsigned(in.imm) & 31;
        if (count) {
            const uint32_t r = a << count;
            writeReg(info, in.reg1, r);
            const bool cf = (a >> (32 - count)) & 1;
            setArithFlags(info, r, cf, ((r >> 31) & 1) != cf);
        }
        break;
      }

      case Mnem::SHR: {
        const uint32_t a = regs_[unsigned(in.reg1)];
        const unsigned count = unsigned(in.imm) & 31;
        if (count) {
            const uint32_t r = a >> count;
            writeReg(info, in.reg1, r);
            const bool cf = (a >> (count - 1)) & 1;
            setArithFlags(info, r, cf, (a >> 31) & 1);
        }
        break;
      }

      case Mnem::SAR: {
        const uint32_t a = regs_[unsigned(in.reg1)];
        const unsigned count = unsigned(in.imm) & 31;
        if (count) {
            const uint32_t r = uint32_t(int32_t(a) >> count);
            writeReg(info, in.reg1, r);
            const bool cf = (a >> (count - 1)) & 1;
            setArithFlags(info, r, cf, false);
        }
        break;
      }

      case Mnem::CDQ:
        writeReg(info, Reg::EDX,
                 (regs_[unsigned(Reg::EAX)] >> 31) ? 0xffffffffU : 0);
        break;

      case Mnem::SETCC: {
        const uint32_t old = regs_[unsigned(in.reg1)];
        const uint32_t bit = condTaken(in.cc, flags_) ? 1 : 0;
        writeReg(info, in.reg1, (old & ~0xffU) | bit);
        break;
      }

      case Mnem::JMP:
        info.branchTaken = true;
        if (in.form == Form::REL)
            next = in.target;
        else if (in.form == Form::R)
            next = regs_[unsigned(in.reg2)];
        else
            next = load(info, effAddr(in.mem), 4);
        break;

      case Mnem::JCC:
        info.branchTaken = condTaken(in.cc, flags_);
        if (info.branchTaken)
            next = in.target;
        break;

      case Mnem::CALL: {
        info.branchTaken = true;
        const uint32_t retAddr = next;
        const uint32_t sp = regs_[unsigned(Reg::ESP)] - 4;
        store(info, sp, 4, retAddr);
        writeReg(info, Reg::ESP, sp);
        next = in.form == Form::REL ? in.target
                                    : regs_[unsigned(in.reg2)];
        break;
      }

      case Mnem::RET: {
        info.branchTaken = true;
        const uint32_t sp = regs_[unsigned(Reg::ESP)];
        next = load(info, sp, 4);
        writeReg(info, Reg::ESP, sp + 4);
        break;
      }

      case Mnem::FLD: {
        const uint32_t raw = load(info, effAddr(in.mem), 4);
        float v;
        std::memcpy(&v, &raw, 4);
        writeFreg(info, in.freg1, v);
        break;
      }

      case Mnem::FST: {
        const float v = fregs_[unsigned(in.freg1)];
        uint32_t raw;
        std::memcpy(&raw, &v, 4);
        store(info, effAddr(in.mem), 4, raw);
        break;
      }

      case Mnem::FADD:
      case Mnem::FSUB:
      case Mnem::FMUL:
      case Mnem::FDIV: {
        const float a = fregs_[unsigned(in.freg1)];
        const float b = fregs_[unsigned(in.freg2)];
        float r = 0;
        switch (in.mnem) {
          case Mnem::FADD: r = a + b; break;
          case Mnem::FSUB: r = a - b; break;
          case Mnem::FMUL: r = a * b; break;
          default:         r = b != 0.0f ? a / b : 0.0f; break;
        }
        writeFreg(info, in.freg1, r);
        break;
      }

      case Mnem::LONGFLOW:
        // Architecturally a no-op; the timing model flushes on it.
        break;

      default:
        panic("unimplemented mnemonic %s", mnemName(in.mnem));
    }

    info.nextPc = next;
    info.flagsAfter = flags_;
    pc_ = next;
    ++instCount_;
    return info;
}

void
Executor::run(uint64_t count)
{
    for (uint64_t i = 0; i < count; ++i)
        step();
}

} // namespace replay::x86
