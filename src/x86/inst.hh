/**
 * @file
 * The x86 subset instruction model.
 *
 * We model a 32-bit x86 subset rich enough to exhibit every inefficiency
 * the paper attributes to the ISA: two-address arithmetic, implicit
 * stack-pointer updates (PUSH/POP/CALL/RET), instructions with fixed
 * register bindings (DIV), flag-producing compares consumed by
 * conditional branches, and memory operands with base+index*scale+disp
 * addressing.  Instructions carry a *modeled* byte length that matches
 * real x86 encodings so the instruction cache behaves realistically, and
 * can also be serialized to a compact byte encoding used by the trace
 * format (the trace reader re-decodes them, mirroring §5.1.1).
 */

#ifndef REPLAY_X86_INST_HH
#define REPLAY_X86_INST_HH

#include <cstdint>
#include <string>

namespace replay::x86 {

/** The eight 32-bit general purpose registers, in x86 encoding order. */
enum class Reg : uint8_t
{
    EAX = 0, ECX, EDX, EBX, ESP, EBP, ESI, EDI,
    NONE = 0xff,
};

constexpr unsigned NUM_GPRS = 8;

/** Floating point registers (flat scalar model, not the x87 stack). */
enum class FReg : uint8_t
{
    F0 = 0, F1, F2, F3, F4, F5, F6, F7,
    NONE = 0xff,
};

constexpr unsigned NUM_FREGS = 8;

/** x86 condition codes (the low nibble of Jcc/SETcc opcodes). */
enum class Cond : uint8_t
{
    O = 0, NO, B, AE, E, NE, BE, A, S, NS, P, NP, L, GE, LE, G,
    NONE = 0xff,
};

/** Invert a condition code (E <-> NE, L <-> GE, ...). */
constexpr Cond
invert(Cond cc)
{
    return static_cast<Cond>(static_cast<uint8_t>(cc) ^ 1);
}

/** Arithmetic flags (EFLAGS subset relevant to the modeled ops). */
struct Flags
{
    bool cf = false;
    bool zf = false;
    bool sf = false;
    bool of = false;
    bool pf = false;

    /** Pack into a small integer for tracing / comparison. */
    uint8_t
    pack() const
    {
        return uint8_t(cf) | uint8_t(zf) << 1 | uint8_t(sf) << 2 |
               uint8_t(of) << 3 | uint8_t(pf) << 4;
    }

    static Flags
    unpack(uint8_t raw)
    {
        Flags f;
        f.cf = raw & 1;
        f.zf = raw & 2;
        f.sf = raw & 4;
        f.of = raw & 8;
        f.pf = raw & 16;
        return f;
    }

    bool operator==(const Flags &) const = default;
};

/** Evaluate a condition code against a flags value. */
bool condTaken(Cond cc, const Flags &flags);

/** Mnemonics of the modeled subset. */
enum class Mnem : uint8_t
{
    MOV,        ///< register/memory/immediate moves
    MOVZX,      ///< zero-extending byte/word load
    MOVSX,      ///< sign-extending byte/word load
    LEA,        ///< address computation
    PUSH,
    POP,
    ADD,
    SUB,
    AND,
    OR,
    XOR,
    CMP,
    TEST,
    INC,
    DEC,
    NEG,
    NOT,
    IMUL,       ///< two/three operand form
    DIV,        ///< EDX:EAX / operand -> EAX remainder in EDX (fixed regs)
    SHL,
    SHR,
    SAR,
    JMP,        ///< direct, or indirect through register/memory
    JCC,
    CALL,       ///< direct, or indirect through register
    RET,
    NOP,
    CDQ,        ///< sign-extend EAX into EDX
    SETCC,
    // Scalar floating point (flat register model).
    FLD,        ///< freg <- mem32
    FST,        ///< mem32 <- freg
    FADD,
    FSUB,
    FMUL,
    FDIV,
    // Rare long-flow instruction: the simulator flushes the pipeline on
    // these, mirroring the paper's handling of segment-descriptor
    // modifiers and call gates (< 0.05% of the dynamic stream there).
    LONGFLOW,
    NUM_MNEMS,
};

/** Operand shape of an instruction. */
enum class Form : uint8_t
{
    NONE,   ///< no operands (NOP, RET, CDQ, LONGFLOW)
    R,      ///< single register (INC, PUSH, POP, NEG, NOT, DIV, CALL/JMP r)
    I,      ///< single immediate (PUSH imm, RET imm ignored)
    RR,     ///< reg, reg
    RI,     ///< reg, imm
    RM,     ///< reg, [mem]  (loads; LEA)
    MR,     ///< [mem], reg  (stores)
    MI,     ///< [mem], imm  (store immediate)
    M,      ///< single memory operand (PUSH [mem], JMP [mem])
    RRI,    ///< reg, reg, imm (IMUL three-operand)
    REL,    ///< pc-relative target (JMP/JCC/CALL direct)
    FR,     ///< single fp register pair ops use FRR
    FRR,    ///< freg, freg
    FM,     ///< freg, [mem] (FLD) or [mem], freg (FST)
};

/** A memory operand: [base + index*scale + disp]. */
struct MemRef
{
    Reg base = Reg::NONE;
    Reg index = Reg::NONE;
    uint8_t scale = 1;      ///< 1, 2, 4, or 8
    int32_t disp = 0;

    bool operator==(const MemRef &) const = default;
};

/** Convenience constructors for memory operands. */
MemRef memAt(Reg base, int32_t disp = 0);
MemRef memAt(Reg base, Reg index, uint8_t scale, int32_t disp = 0);
MemRef memAbs(int32_t addr);

/** One decoded x86 instruction. */
struct Inst
{
    Mnem mnem = Mnem::NOP;
    Form form = Form::NONE;
    Cond cc = Cond::NONE;       ///< for JCC / SETCC
    Reg reg1 = Reg::NONE;       ///< destination-ish register operand
    Reg reg2 = Reg::NONE;       ///< source register operand
    FReg freg1 = FReg::NONE;
    FReg freg2 = FReg::NONE;
    MemRef mem;
    int64_t imm = 0;
    uint32_t target = 0;        ///< absolute target for Form::REL
    uint8_t opSize = 4;         ///< operand size in bytes (1, 2, or 4)

    bool operator==(const Inst &) const = default;

    /** True for instructions that read memory (architecturally). */
    bool isLoad() const;
    /** True for instructions that write memory. */
    bool isStore() const;
    /** True for any control transfer. */
    bool isControl() const;
    /** True for conditional control transfer. */
    bool isCondBranch() const { return mnem == Mnem::JCC; }

    /**
     * The byte length a real x86 encoder would produce for this
     * instruction (used by the instruction cache model).
     */
    unsigned modeledLength() const;
};

/** Printable register / mnemonic names. */
const char *regName(Reg reg);
const char *fregName(FReg freg);
const char *mnemName(Mnem mnem);
const char *condName(Cond cc);

} // namespace replay::x86

#endif // REPLAY_X86_INST_HH
