/**
 * @file
 * A complete x86-subset program: code laid out at fixed addresses plus
 * initialized data segments.  Programs are produced by the AsmBuilder
 * (directly in tests/examples) or by the workload synthesizer, and are
 * consumed by the functional Executor.
 */

#ifndef REPLAY_X86_PROGRAM_HH
#define REPLAY_X86_PROGRAM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "x86/inst.hh"

namespace replay::x86 {

/** An initialized data region. */
struct DataSegment
{
    uint32_t base = 0;
    std::vector<uint8_t> bytes;
};

/** Immutable program image. */
class Program
{
  public:
    /** A placed instruction. */
    struct Placed
    {
        uint32_t addr = 0;
        uint32_t length = 0;    ///< modeled x86 byte length
        Inst inst;
    };

    Program(std::vector<Placed> code, std::vector<DataSegment> data,
            uint32_t entry, uint32_t stack_top);

    /** Fetch the instruction at @p addr; fatal if none is placed there. */
    const Placed &at(uint32_t addr) const;

    /** True if an instruction starts at @p addr. */
    bool contains(uint32_t addr) const;

    const std::vector<Placed> &code() const { return code_; }
    const std::vector<DataSegment> &data() const { return data_; }
    uint32_t entry() const { return entry_; }
    uint32_t stackTop() const { return stackTop_; }

    /** Total modeled code bytes (footprint seen by the ICache). */
    uint32_t codeBytes() const { return codeBytes_; }

  private:
    std::vector<Placed> code_;
    std::unordered_map<uint32_t, size_t> byAddr_;
    std::vector<DataSegment> data_;
    uint32_t entry_;
    uint32_t stackTop_;
    uint32_t codeBytes_ = 0;
};

} // namespace replay::x86

#endif // REPLAY_X86_PROGRAM_HH
