/**
 * @file
 * Functional execution of the x86 subset.
 *
 * The Executor owns the architectural machine state (GPRs, flags, flat
 * FP registers, sparse byte-addressed memory) and steps one instruction
 * at a time, reporting everything the paper's hardware trace records
 * carry: register state changes, memory transactions, and the resolved
 * next PC.  The workload tracer (src/trace) runs programs through an
 * Executor to synthesize trace files; the simulator and the state
 * verifier reuse SparseMemory for their memory images.
 */

#ifndef REPLAY_X86_EXECUTOR_HH
#define REPLAY_X86_EXECUTOR_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/flathash.hh"
#include "util/smallvec.hh"
#include "x86/inst.hh"
#include "x86/program.hh"

namespace replay::x86 {

/** Sparse paged little-endian memory. Unwritten bytes read as zero. */
class SparseMemory
{
  public:
    uint32_t read(uint32_t addr, unsigned size) const;
    void write(uint32_t addr, unsigned size, uint32_t value);

    /** Load an initialized data segment. */
    void loadSegment(const DataSegment &seg);

    /** Number of resident pages (for tests / stats). */
    size_t pageCount() const { return pages_.size(); }

  private:
    static constexpr uint32_t PAGE_BITS = 12;
    static constexpr uint32_t PAGE_SIZE = 1u << PAGE_BITS;
    static constexpr uint32_t NO_PAGE = 0xffffffffu;

    using Page = std::array<uint8_t, PAGE_SIZE>;

    uint8_t peek(uint32_t addr) const;
    void poke(uint32_t addr, uint8_t value);

    /** Resident page for @p page_idx, or null (read path). */
    const Page *findPage(uint32_t page_idx) const;

    /** Resident page for @p page_idx, allocating it (write path). */
    Page *touchPage(uint32_t page_idx);

    FlatMap<uint32_t, std::unique_ptr<Page>> pages_;

    // One-entry page translation cache: accesses are strongly
    // page-local, so the map probe is skipped almost always.
    mutable uint32_t cachedIdx_ = NO_PAGE;
    mutable Page *cachedPage_ = nullptr;
};

/** One architectural memory transaction performed by an instruction. */
struct MemOp
{
    bool isStore = false;
    uint32_t addr = 0;
    uint8_t size = 4;
    uint32_t data = 0;      ///< value loaded or stored

    bool
    overlaps(const MemOp &other) const
    {
        return addr < other.addr + other.size &&
               other.addr < addr + size;
    }
};

/** One architectural register write performed by an instruction. */
struct RegWrite
{
    Reg reg = Reg::NONE;
    uint32_t value = 0;
};

struct FRegWrite
{
    FReg reg = FReg::NONE;
    float value = 0.0f;
};

/** Everything observable about one executed instruction. */
struct StepInfo
{
    uint32_t pc = 0;
    uint32_t nextPc = 0;
    const Program::Placed *placed = nullptr;
    bool branchTaken = false;       ///< for any control transfer
    bool wroteFlags = false;
    Flags flagsAfter;
    // Inline side-effect lists: the subset's widest flows write two
    // registers and touch two memory locations, so these never spill.
    SmallVec<RegWrite, 4> regWrites;
    SmallVec<FRegWrite, 2> fregWrites;
    SmallVec<MemOp, 4> memOps;
};

/** Architectural state + single-step interpreter. */
class Executor
{
  public:
    explicit Executor(const Program &program);

    /** Execute the instruction at the current PC. */
    StepInfo step();

    /** Execute until @p count instructions have retired. */
    void run(uint64_t count);

    uint32_t pc() const { return pc_; }
    void setPc(uint32_t pc) { pc_ = pc; }

    uint32_t reg(Reg r) const { return regs_[unsigned(r)]; }
    void setReg(Reg r, uint32_t v) { regs_[unsigned(r)] = v; }

    float freg(FReg r) const { return fregs_[unsigned(r)]; }
    void setFreg(FReg r, float v) { fregs_[unsigned(r)] = v; }

    const Flags &flags() const { return flags_; }
    void setFlags(const Flags &f) { flags_ = f; }

    SparseMemory &memory() { return mem_; }
    const SparseMemory &memory() const { return mem_; }

    uint64_t instCount() const { return instCount_; }

  private:
    /** Compute the effective address of a memory operand. */
    uint32_t effAddr(const MemRef &m) const;

    uint32_t load(StepInfo &info, uint32_t addr, unsigned size);
    void store(StepInfo &info, uint32_t addr, unsigned size,
               uint32_t value);
    void writeReg(StepInfo &info, Reg reg, uint32_t value);
    void writeFreg(StepInfo &info, FReg reg, float value);
    void setArithFlags(StepInfo &info, uint32_t result, bool cf, bool of);
    void setLogicFlags(StepInfo &info, uint32_t result);

    const Program &program_;
    uint32_t pc_;
    std::array<uint32_t, NUM_GPRS> regs_{};
    std::array<float, NUM_FREGS> fregs_{};
    Flags flags_;
    SparseMemory mem_;
    uint64_t instCount_ = 0;
};

} // namespace replay::x86

#endif // REPLAY_X86_EXECUTOR_HH
