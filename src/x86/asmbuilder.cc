#include "x86/asmbuilder.hh"

#include "util/logging.hh"

namespace replay::x86 {

AsmBuilder::AsmBuilder(uint32_t base, uint32_t stack_top)
    : base_(base), cursor_(base), stackTop_(stack_top),
      dataCursor_(0x10000000)
{
}

void
AsmBuilder::label(const std::string &name)
{
    const auto [it, fresh] = labels_.emplace(name, cursor_);
    fatal_if(!fresh, "label '%s' bound twice", name.c_str());
}

uint32_t
AsmBuilder::addrOf(const std::string &name) const
{
    const auto it = labels_.find(name);
    fatal_if(it == labels_.end(), "unknown label '%s'", name.c_str());
    return it->second;
}

void
AsmBuilder::emit(const Inst &inst)
{
    Program::Placed placed;
    placed.addr = cursor_;
    placed.inst = inst;
    placed.length = inst.modeledLength();
    cursor_ += placed.length;
    code_.push_back(placed);
}

void
AsmBuilder::movRR(Reg dst, Reg src)
{
    Inst i;
    i.mnem = Mnem::MOV;
    i.form = Form::RR;
    i.reg1 = dst;
    i.reg2 = src;
    emit(i);
}

void
AsmBuilder::movRI(Reg dst, int32_t imm)
{
    Inst i;
    i.mnem = Mnem::MOV;
    i.form = Form::RI;
    i.reg1 = dst;
    i.imm = imm;
    emit(i);
}

void
AsmBuilder::movRM(Reg dst, const MemRef &src)
{
    Inst i;
    i.mnem = Mnem::MOV;
    i.form = Form::RM;
    i.reg1 = dst;
    i.mem = src;
    emit(i);
}

void
AsmBuilder::movMR(const MemRef &dst, Reg src, uint8_t size)
{
    Inst i;
    i.mnem = Mnem::MOV;
    i.form = Form::MR;
    i.mem = dst;
    i.reg2 = src;
    i.opSize = size;
    emit(i);
}

void
AsmBuilder::movMI(const MemRef &dst, int32_t imm, uint8_t size)
{
    Inst i;
    i.mnem = Mnem::MOV;
    i.form = Form::MI;
    i.mem = dst;
    i.imm = imm;
    i.opSize = size;
    emit(i);
}

void
AsmBuilder::movzxRM(Reg dst, const MemRef &src, uint8_t size)
{
    panic_if(size != 1 && size != 2, "movzx size must be 1 or 2");
    Inst i;
    i.mnem = Mnem::MOVZX;
    i.form = Form::RM;
    i.reg1 = dst;
    i.mem = src;
    i.opSize = size;
    emit(i);
}

void
AsmBuilder::movsxRM(Reg dst, const MemRef &src, uint8_t size)
{
    panic_if(size != 1 && size != 2, "movsx size must be 1 or 2");
    Inst i;
    i.mnem = Mnem::MOVSX;
    i.form = Form::RM;
    i.reg1 = dst;
    i.mem = src;
    i.opSize = size;
    emit(i);
}

void
AsmBuilder::lea(Reg dst, const MemRef &src)
{
    Inst i;
    i.mnem = Mnem::LEA;
    i.form = Form::RM;
    i.reg1 = dst;
    i.mem = src;
    emit(i);
}

void
AsmBuilder::pushR(Reg src)
{
    Inst i;
    i.mnem = Mnem::PUSH;
    i.form = Form::R;
    i.reg2 = src;
    emit(i);
}

void
AsmBuilder::pushI(int32_t imm)
{
    Inst i;
    i.mnem = Mnem::PUSH;
    i.form = Form::I;
    i.imm = imm;
    emit(i);
}

void
AsmBuilder::popR(Reg dst)
{
    Inst i;
    i.mnem = Mnem::POP;
    i.form = Form::R;
    i.reg1 = dst;
    emit(i);
}

void
AsmBuilder::aluRR(Mnem op, Reg dst, Reg src)
{
    Inst i;
    i.mnem = op;
    i.form = Form::RR;
    i.reg1 = dst;
    i.reg2 = src;
    emit(i);
}

void
AsmBuilder::aluRI(Mnem op, Reg dst, int32_t imm)
{
    Inst i;
    i.mnem = op;
    i.form = Form::RI;
    i.reg1 = dst;
    i.imm = imm;
    emit(i);
}

void
AsmBuilder::aluRM(Mnem op, Reg dst, const MemRef &src)
{
    Inst i;
    i.mnem = op;
    i.form = Form::RM;
    i.reg1 = dst;
    i.mem = src;
    emit(i);
}

void
AsmBuilder::incR(Reg reg)
{
    Inst i;
    i.mnem = Mnem::INC;
    i.form = Form::R;
    i.reg1 = reg;
    emit(i);
}

void
AsmBuilder::decR(Reg reg)
{
    Inst i;
    i.mnem = Mnem::DEC;
    i.form = Form::R;
    i.reg1 = reg;
    emit(i);
}

void
AsmBuilder::negR(Reg reg)
{
    Inst i;
    i.mnem = Mnem::NEG;
    i.form = Form::R;
    i.reg1 = reg;
    emit(i);
}

void
AsmBuilder::notR(Reg reg)
{
    Inst i;
    i.mnem = Mnem::NOT;
    i.form = Form::R;
    i.reg1 = reg;
    emit(i);
}

void
AsmBuilder::imulRR(Reg dst, Reg src)
{
    Inst i;
    i.mnem = Mnem::IMUL;
    i.form = Form::RR;
    i.reg1 = dst;
    i.reg2 = src;
    emit(i);
}

void
AsmBuilder::imulRRI(Reg dst, Reg src, int32_t imm)
{
    Inst i;
    i.mnem = Mnem::IMUL;
    i.form = Form::RRI;
    i.reg1 = dst;
    i.reg2 = src;
    i.imm = imm;
    emit(i);
}

void
AsmBuilder::divR(Reg src)
{
    Inst i;
    i.mnem = Mnem::DIV;
    i.form = Form::R;
    i.reg2 = src;
    emit(i);
}

void
AsmBuilder::shlRI(Reg reg, uint8_t count)
{
    Inst i;
    i.mnem = Mnem::SHL;
    i.form = Form::RI;
    i.reg1 = reg;
    i.imm = count;
    emit(i);
}

void
AsmBuilder::shrRI(Reg reg, uint8_t count)
{
    Inst i;
    i.mnem = Mnem::SHR;
    i.form = Form::RI;
    i.reg1 = reg;
    i.imm = count;
    emit(i);
}

void
AsmBuilder::sarRI(Reg reg, uint8_t count)
{
    Inst i;
    i.mnem = Mnem::SAR;
    i.form = Form::RI;
    i.reg1 = reg;
    i.imm = count;
    emit(i);
}

void
AsmBuilder::cdq()
{
    Inst i;
    i.mnem = Mnem::CDQ;
    emit(i);
}

void
AsmBuilder::jmp(const std::string &target)
{
    Inst i;
    i.mnem = Mnem::JMP;
    i.form = Form::REL;
    fixups_.push_back({code_.size(), target});
    emit(i);
}

void
AsmBuilder::jmpR(Reg target)
{
    Inst i;
    i.mnem = Mnem::JMP;
    i.form = Form::R;
    i.reg2 = target;
    emit(i);
}

void
AsmBuilder::jcc(Cond cc, const std::string &target)
{
    Inst i;
    i.mnem = Mnem::JCC;
    i.form = Form::REL;
    i.cc = cc;
    fixups_.push_back({code_.size(), target});
    emit(i);
}

void
AsmBuilder::call(const std::string &target)
{
    Inst i;
    i.mnem = Mnem::CALL;
    i.form = Form::REL;
    fixups_.push_back({code_.size(), target});
    emit(i);
}

void
AsmBuilder::callR(Reg target)
{
    Inst i;
    i.mnem = Mnem::CALL;
    i.form = Form::R;
    i.reg2 = target;
    emit(i);
}

void
AsmBuilder::ret()
{
    Inst i;
    i.mnem = Mnem::RET;
    emit(i);
}

void
AsmBuilder::nop()
{
    Inst i;
    i.mnem = Mnem::NOP;
    emit(i);
}

void
AsmBuilder::setcc(Cond cc, Reg dst)
{
    Inst i;
    i.mnem = Mnem::SETCC;
    i.form = Form::R;
    i.cc = cc;
    i.reg1 = dst;
    emit(i);
}

void
AsmBuilder::longflow()
{
    Inst i;
    i.mnem = Mnem::LONGFLOW;
    emit(i);
}

void
AsmBuilder::fld(FReg dst, const MemRef &src)
{
    Inst i;
    i.mnem = Mnem::FLD;
    i.form = Form::FM;
    i.freg1 = dst;
    i.mem = src;
    emit(i);
}

void
AsmBuilder::fst(const MemRef &dst, FReg src)
{
    Inst i;
    i.mnem = Mnem::FST;
    i.form = Form::FM;
    i.freg1 = src;
    i.mem = dst;
    emit(i);
}

void
AsmBuilder::fopFRR(Mnem op, FReg dst, FReg src)
{
    panic_if(op != Mnem::FADD && op != Mnem::FSUB && op != Mnem::FMUL &&
             op != Mnem::FDIV, "fopFRR requires an FP mnemonic");
    Inst i;
    i.mnem = op;
    i.form = Form::FRR;
    i.freg1 = dst;
    i.freg2 = src;
    emit(i);
}

uint32_t
AsmBuilder::dataRegion(const std::string &name, uint32_t size_bytes)
{
    fatal_if(dataByName_.count(name), "data region '%s' already exists",
             name.c_str());
    DataSegment seg;
    seg.base = dataCursor_;
    seg.bytes.assign(size_bytes, 0);
    dataAddrs_[name] = dataCursor_;
    // Pad regions apart so generated pointer arithmetic stays inside.
    dataCursor_ += (size_bytes + 0xfff) & ~0xfffU;
    dataByName_.emplace(name, std::move(seg));
    return dataAddrs_[name];
}

void
AsmBuilder::dataWords(const std::string &name,
                      const std::vector<uint32_t> &words)
{
    const auto it = dataByName_.find(name);
    fatal_if(it == dataByName_.end(), "no data region '%s'", name.c_str());
    auto &bytes = it->second.bytes;
    fatal_if(words.size() * 4 > bytes.size(),
             "region '%s' overflow", name.c_str());
    for (size_t w = 0; w < words.size(); ++w) {
        for (unsigned b = 0; b < 4; ++b)
            bytes[w * 4 + b] = uint8_t(words[w] >> (8 * b));
    }
}

void
AsmBuilder::dataWordLabel(const std::string &name, uint32_t word_idx,
                          const std::string &label)
{
    fatal_if(!dataByName_.count(name), "no data region '%s'",
             name.c_str());
    dataFixups_.push_back({name, word_idx, label});
}

uint32_t
AsmBuilder::dataAddr(const std::string &name) const
{
    const auto it = dataAddrs_.find(name);
    fatal_if(it == dataAddrs_.end(), "no data region '%s'", name.c_str());
    return it->second;
}

Program
AsmBuilder::build(uint32_t entry)
{
    for (const auto &fix : fixups_)
        code_[fix.instIndex].inst.target = addrOf(fix.label);
    for (const auto &fix : dataFixups_) {
        auto &bytes = dataByName_.at(fix.region).bytes;
        fatal_if((fix.wordIndex + 1) * 4 > bytes.size(),
                 "data fixup past end of region '%s'",
                 fix.region.c_str());
        const uint32_t addr = addrOf(fix.label);
        for (unsigned b = 0; b < 4; ++b)
            bytes[fix.wordIndex * 4 + b] = uint8_t(addr >> (8 * b));
    }
    std::vector<DataSegment> data;
    data.reserve(dataByName_.size());
    for (auto &[name, seg] : dataByName_)
        data.push_back(seg);
    const uint32_t e = entry ? entry : base_;
    return Program(code_, data, e, stackTop_);
}

} // namespace replay::x86
