/**
 * @file
 * Trace container format v3: chunked, block-compressed, seekable.
 *
 * The v2 container is a flat record stream read front to back with
 * batched fread — fine for one-shot replays, a bottleneck for the
 * sharded multi-session server the ROADMAP names: no random access, no
 * resume, one checksum multiply per payload byte.  v3 restructures the
 * container around *chunks*:
 *
 *   HEADER   magic/version/record-size guard, record count, codec,
 *            chunk size, index offset, header checksum
 *   CHUNK*   [chunk header: magic, payload bytes, raw bytes, records,
 *             first record, checksum][payload]
 *   INDEX    one entry per chunk {offset, first record, payload bytes,
 *             records, checksum}, FNV-guarded
 *   FOOTER   index offset, chunk count, index checksum, magic
 *
 * Each chunk's payload is the canonical wire encoding of its records
 * (see trace/chunk.hh), either stored raw or zlib-compressed; its
 * checksum is a word-at-a-time FNV over the *stored* bytes, so
 * integrity is verified before any decompression touches the data.
 * The index footer makes the container seekable: seekToRecord() binary
 * searches the index and resumes mid-stream, which is what lets a
 * server session fast-forward to its checkpoint instead of re-reading
 * the prefix.
 *
 * Reads go through an mmap zero-copy path by default (the chunk
 * payload is checksummed and decoded directly out of the mapping, no
 * fread, no staging copy), falling back to buffered FILE* reads when
 * mmap is unavailable or refused.  Error semantics mirror v2 exactly:
 * a damaged file yields its valid prefix and a typed TraceError
 * (TRUNCATED / BAD_CHECKSUM / READ_ERROR / ...) carrying the byte
 * offset, chunk index, and path of the failure; transient read faults
 * retry with backoff and persistently bad paths are quarantined
 * process-wide, and the same fault-injector hook exercises both
 * paths.
 */

#ifndef REPLAY_TRACE_TRACEV3_HH
#define REPLAY_TRACE_TRACEV3_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "trace/tracefile.hh"

namespace replay::trace {

/** v3 on-disk layout constants (tests corrupt fields by offset). */
namespace v3 {

constexpr uint32_t MAGIC = 0x52504c54;        // "RPLT" (shared sniff)
constexpr uint32_t VERSION = 3;
constexpr uint32_t CHUNK_MAGIC = 0x334b4843;  // "CHK3"
constexpr uint32_t FOOTER_MAGIC = 0x33465052; // "RPF3"

/** Header: magic, version, recordBytes, recordCount, codec,
 *  chunkRecords, indexOffset, headerChecksum. */
constexpr size_t HEADER_BYTES = 4 + 4 + 4 + 8 + 4 + 4 + 8 + 4;

/** Chunk header: magic, payloadBytes, rawBytes, records, firstRecord,
 *  checksum. */
constexpr size_t CHUNK_HEADER_BYTES = 4 + 4 + 4 + 4 + 8 + 4;

/** Index entry: offset, firstRecord, payloadBytes, records, checksum. */
constexpr size_t INDEX_ENTRY_BYTES = 8 + 8 + 4 + 4 + 4;

/** Footer: indexOffset, chunkCount, indexChecksum, reserved, magic. */
constexpr size_t FOOTER_BYTES = 8 + 4 + 4 + 4 + 4;

// Field offsets within the header (for targeted corruption tests).
constexpr size_t HDR_OFF_MAGIC = 0;
constexpr size_t HDR_OFF_VERSION = 4;
constexpr size_t HDR_OFF_RECORD_BYTES = 8;
constexpr size_t HDR_OFF_RECORD_COUNT = 12;
constexpr size_t HDR_OFF_CODEC = 20;
constexpr size_t HDR_OFF_CHUNK_RECORDS = 24;
constexpr size_t HDR_OFF_INDEX_OFFSET = 28;
constexpr size_t HDR_OFF_CHECKSUM = 36;

// Field offsets within a chunk header.
constexpr size_t CHK_OFF_MAGIC = 0;
constexpr size_t CHK_OFF_PAYLOAD_BYTES = 4;
constexpr size_t CHK_OFF_RAW_BYTES = 8;
constexpr size_t CHK_OFF_RECORDS = 12;
constexpr size_t CHK_OFF_FIRST_RECORD = 16;
constexpr size_t CHK_OFF_CHECKSUM = 24;

} // namespace v3

/** Chunk payload codecs. */
enum class V3Codec : uint32_t
{
    RAW = 0,        ///< stored verbatim (fastest ingest, zero-copy)
    ZLIB = 1,       ///< zlib-deflated (compact corpus artifacts)
};

const char *v3CodecName(V3Codec codec);

/** True when this build can inflate ZLIB chunks. */
bool v3ZlibAvailable();

/** Writer/recorder options. */
struct V3Options
{
    /** Records per chunk; also the seek granularity.  The default
     *  (~100kB raw per chunk) amortizes the per-chunk header while
     *  keeping resume cheap. */
    uint32_t chunkRecords = 1024;

    V3Codec codec = defaultCodec();

    /** ZLIB when compiled in, RAW otherwise. */
    static V3Codec defaultCodec();
};

/** Streaming writer for the v3 container. */
class TraceV3Writer
{
  public:
    explicit TraceV3Writer(const std::string &path, V3Options opts = {});
    ~TraceV3Writer();

    TraceV3Writer(const TraceV3Writer &) = delete;
    TraceV3Writer &operator=(const TraceV3Writer &) = delete;

    /** Append one record (no-op once in the error state). */
    void write(const TraceRecord &rec);

    /** Flush the pending chunk, write index + footer, patch the
     *  header, and close.  Returns the first error of the writer's
     *  whole life. */
    TraceError close();

    bool ok() const { return error_.ok(); }
    const TraceError &error() const { return error_; }
    uint64_t written() const { return count_; }

    /** Convenience: dump the first @p insts of a program to @p path. */
    static uint64_t dumpProgram(const x86::Program &program,
                                uint64_t insts, const std::string &path,
                                V3Options opts = {});

  private:
    struct PendingEntry
    {
        uint64_t offset;
        uint64_t firstRecord;
        uint32_t payloadBytes;
        uint32_t records;
        uint32_t checksum;
    };

    void fail(TraceError::Kind kind, std::string msg);
    bool flushChunk();

    std::FILE *file_ = nullptr;
    std::string path_;
    V3Options opts_;
    uint64_t count_ = 0;            ///< records written so far
    uint64_t fileOffset_ = 0;       ///< running write position
    std::vector<uint8_t> raw_;      ///< pending encoded records
    uint32_t pendingRecords_ = 0;
    std::vector<uint8_t> zbuf_;     ///< compression scratch
    std::vector<PendingEntry> index_;
    TraceError error_;
};

/** Read-side options for TraceV3Source. */
struct V3SourceOptions
{
    /** Map the file and decode straight out of the mapping; the
     *  REPLAY_TRACEV3_NO_MMAP environment variable (or mmap failure)
     *  forces the buffered FILE* fallback. */
    bool preferMmap = true;

    /** Present only the first N records (0 = all).  Replay budget cap
     *  for corpus traces recorded longer than a sweep needs. */
    uint64_t limitRecords = 0;
};

/** TraceSource over a v3 container. */
class TraceV3Source : public TraceSource
{
  public:
    using Options = V3SourceOptions;

    explicit TraceV3Source(const std::string &path, Options opts = {});
    ~TraceV3Source() override;

    TraceV3Source(const TraceV3Source &) = delete;
    TraceV3Source &operator=(const TraceV3Source &) = delete;

    const TraceRecord *peek(unsigned ahead = 0) override;
    void advance() override;
    bool done() override;
    uint64_t consumed() const override { return consumed_ - base_; }

    bool ok() const { return error_.ok(); }
    const TraceError &error() const { return error_; }

    /** Records the container holds (after the limit cap). */
    uint64_t totalRecords() const { return effTotal_; }

    /** Number of chunks the index describes. */
    size_t chunkCount() const { return index_.size(); }

    /** True when the mmap zero-copy path is active. */
    bool usedMmap() const { return map_ != nullptr; }

    /**
     * Reposition the cursor to absolute record @p n (0-based), using
     * the index to land on the owning chunk without touching the
     * prefix.  @p n at or past the end positions the source at EOF
     * (done() == true).  Returns false iff the source is in an error
     * state.  consumed() counts from the seek target onward.
     */
    bool seekToRecord(uint64_t n);

    /**
     * Chaos hook: when set, each chunk load first asks the hook
     * whether to behave as a failed read (transient I/O fault).  The
     * injected fault exercises exactly the retry/backoff path real
     * transient EIO does — in both the buffered and mmap modes.
     */
    void
    setIoFaultInjector(std::function<bool()> hook)
    {
        ioInject_ = std::move(hook);
    }

    /** Transient chunk-load faults absorbed by retrying. */
    uint64_t ioRetries() const { return ioRetries_; }

    /** Consecutive same-chunk retries before declaring READ_ERROR. */
    static constexpr unsigned MAX_READ_RETRIES = 3;

  private:
    struct IndexEntry
    {
        uint64_t offset;
        uint64_t firstRecord;
        uint32_t payloadBytes;
        uint32_t records;
        uint32_t checksum;
    };

    struct DecodedChunk
    {
        uint64_t firstRecord = 0;
        std::vector<TraceRecord> recs;
    };

    void fail(TraceError::Kind kind, std::string msg, uint64_t offset,
              int64_t chunk = -1);
    bool openAndValidate(const std::string &path);
    const uint8_t *loadBytes(uint64_t offset, size_t len, size_t chunk);
    bool loadNextChunk();
    const TraceRecord *locate(uint64_t rec);
    void recycleFront();

    std::FILE *file_ = nullptr;
    const uint8_t *map_ = nullptr;
    size_t mapLen_ = 0;
    std::string path_;
    Options opts_;

    uint64_t total_ = 0;        ///< records the container holds
    uint64_t effTotal_ = 0;     ///< min(total, limit)
    uint64_t consumed_ = 0;     ///< absolute cursor (record index)
    uint64_t base_ = 0;         ///< consumed() origin (seek target)
    uint32_t recordBytes_ = 0;
    V3Codec codec_ = V3Codec::RAW;
    std::vector<IndexEntry> index_;
    size_t nextChunk_ = 0;      ///< next index entry to load

    std::vector<DecodedChunk> window_;  ///< decoded, front = oldest
    std::vector<std::vector<TraceRecord>> pool_;

    std::vector<uint8_t> ioBuf_;    ///< buffered-mode chunk staging
    std::vector<uint8_t> rawBuf_;   ///< decompression scratch

    TraceError error_;
    std::function<bool()> ioInject_;
    uint64_t ioRetries_ = 0;
};

/** Parsed container metadata (tracec inspect/index, layout tests). */
struct V3Info
{
    TraceError error;           ///< why inspection stopped, if it did

    uint64_t fileBytes = 0;
    uint32_t recordBytes = 0;
    uint64_t recordCount = 0;
    V3Codec codec = V3Codec::RAW;
    uint32_t chunkRecords = 0;
    uint64_t indexOffset = 0;

    struct Chunk
    {
        uint64_t offset;
        uint64_t firstRecord;
        uint32_t payloadBytes;
        uint32_t records;
        uint32_t checksum;
    };
    std::vector<Chunk> chunks;

    bool ok() const { return error.ok(); }

    /** Compressed payload bytes across all chunks. */
    uint64_t payloadBytes() const;
};

/** Read header/footer/index without touching chunk payloads. */
V3Info inspectV3(const std::string &path);

/**
 * Sniff the container version of @p path (4-byte magic + version
 * field) and open the matching TraceSource.  Sets @p err and returns
 * nullptr when the file is neither a v2 nor a v3 trace.  @p limit
 * caps the presented records for v3 (v2 has no cheap cap and reports
 * its full stream).
 */
std::unique_ptr<TraceSource> openTraceFile(const std::string &path,
                                           TraceError *err = nullptr,
                                           uint64_t limit = 0);

} // namespace replay::trace

#endif // REPLAY_TRACE_TRACEV3_HH
