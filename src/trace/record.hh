/**
 * @file
 * The trace record format of §5.1.1.
 *
 * Each record describes one retired x86 instruction: its decoded form
 * and modeled length (the "raw instruction data"), the register state
 * changes it made, its memory transactions (address + data for loads
 * and stores), and the resolved next PC.  Records are produced by the
 * Tracer from the functional executor and consumed by the simulator and
 * the state verifier — the paper obtained the same information from
 * AMD's hardware-captured trace files (see DESIGN.md substitutions).
 */

#ifndef REPLAY_TRACE_RECORD_HH
#define REPLAY_TRACE_RECORD_HH

#include <cstdint>
#include <vector>

#include "x86/executor.hh"
#include "x86/inst.hh"

namespace replay::trace {

/** One retired x86 instruction with its architectural side effects. */
struct TraceRecord
{
    static constexpr unsigned MAX_REG_WRITES = 2;
    static constexpr unsigned MAX_MEM_OPS = 2;

    uint32_t pc = 0;
    uint32_t nextPc = 0;
    x86::Inst inst;
    uint8_t length = 0;         ///< modeled x86 byte length
    bool taken = false;         ///< control transfer resolved taken
    bool wroteFlags = false;
    uint8_t flagsAfter = 0;     ///< packed x86::Flags after retirement

    uint8_t numRegWrites = 0;
    uint8_t numMemOps = 0;
    uint8_t numFregWrites = 0;
    x86::RegWrite regWrites[MAX_REG_WRITES];
    x86::MemOp memOps[MAX_MEM_OPS];
    x86::FRegWrite fregWrite;

    /** Populate from an executor step. */
    static TraceRecord fromStep(const x86::StepInfo &step);

    bool isControl() const { return inst.isControl(); }
    bool isCondBranch() const { return inst.isCondBranch(); }
};

/**
 * A stream of trace records with bounded lookahead.
 *
 * The simulator needs to peek ahead one frame's worth of instructions
 * to resolve assertions and unsafe-store aliasing, so every source
 * exposes indexed peeking in addition to in-order consumption.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Max records peek() can reach beyond the cursor. */
    static constexpr unsigned LOOKAHEAD = 512;

    /**
     * Record @p ahead positions past the cursor (0 = next record), or
     * nullptr if the trace ends first. ahead must be < LOOKAHEAD.
     */
    virtual const TraceRecord *peek(unsigned ahead = 0) = 0;

    /** Consume the record at the cursor. */
    virtual void advance() = 0;

    /** True once every record has been consumed. */
    virtual bool done() = 0;

    /** Records consumed so far. */
    virtual uint64_t consumed() const = 0;
};

/** A TraceSource over an in-memory vector (tests, verifier replays). */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<TraceRecord> records)
        : records_(std::move(records))
    {
    }

    const TraceRecord *
    peek(unsigned ahead = 0) override
    {
        const size_t idx = cursor_ + ahead;
        return idx < records_.size() ? &records_[idx] : nullptr;
    }

    void advance() override { ++cursor_; }
    bool done() override { return cursor_ >= records_.size(); }
    uint64_t consumed() const override { return cursor_; }

  private:
    std::vector<TraceRecord> records_;
    size_t cursor_ = 0;
};

} // namespace replay::trace

#endif // REPLAY_TRACE_RECORD_HH
