/**
 * @file
 * Trace generation: running a program through the functional executor
 * and exposing the retired-instruction stream as a TraceSource.
 */

#ifndef REPLAY_TRACE_TRACER_HH
#define REPLAY_TRACE_TRACER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "trace/record.hh"
#include "x86/executor.hh"
#include "x86/program.hh"

namespace replay::trace {

/**
 * A TraceSource that generates records on demand from an Executor.
 *
 * The source maintains a ring of up to LOOKAHEAD pre-executed records
 * so the simulator can resolve frame assertions and unsafe-store
 * aliasing before committing to a fetch path, without materializing
 * the whole trace (50M+ instructions in the paper's workloads).
 */
class ExecutorTraceSource : public TraceSource
{
  public:
    /**
     * @param program   the program to run
     * @param max_insts trace length in retired x86 instructions
     */
    ExecutorTraceSource(const x86::Program &program, uint64_t max_insts);

    const TraceRecord *peek(unsigned ahead = 0) override;
    void advance() override;
    bool done() override;
    uint64_t consumed() const override { return consumed_; }

    /**
     * The backing executor (read-only).  Note it runs LOOKAHEAD-deep
     * ahead of the cursor; use it for initial-state snapshots before
     * the first peek, not for mid-trace state.
     */
    const x86::Executor &executor() const { return exec_; }

  private:
    /** Ensure the ring holds at least @p n unconsumed records. */
    void fill(unsigned n);

    x86::Executor exec_;
    uint64_t budget_;           ///< records still allowed to be produced
    uint64_t consumed_ = 0;

    std::array<TraceRecord, LOOKAHEAD * 2> ring_;
    size_t head_ = 0;           ///< ring index of the cursor record
    size_t count_ = 0;          ///< valid records in the ring
};

/** Materialize the first @p max_insts records of a program (tests). */
std::vector<TraceRecord> collectTrace(const x86::Program &program,
                                      uint64_t max_insts);

} // namespace replay::trace

#endif // REPLAY_TRACE_TRACER_HH
