/**
 * @file
 * Shared on-disk wire codec for trace containers (v2 and v3).
 *
 * Every persisted trace format encodes TraceRecords the same way: each
 * field written explicitly and little-endian via fixed-width integers,
 * so files are portable across compilers (no struct memcpy).  This
 * header is the single home of that codec plus the two checksum
 * primitives the containers build on:
 *
 *   - fnv1a32()      — byte-wise FNV-1a.  The v2 per-record guard and
 *                      every header/index checksum; byte-wise because
 *                      the checksummed spans are small and the value
 *                      is part of the frozen v2 format.
 *   - chunkChecksum()— word-at-a-time FNV-1a64 folded to 32 bits.  The
 *                      v3 per-chunk guard: processing 8 bytes per
 *                      multiply makes integrity checking ~8x cheaper
 *                      per byte, which is what lets the v3 ingest path
 *                      beat v2's per-record checksumming.
 *
 * The load/store helpers compile to single unaligned moves on
 * little-endian hosts and fall back to byte composition elsewhere, so
 * the decode hot loop is not serialized on byte-at-a-time shifts.
 */

#ifndef REPLAY_TRACE_CHUNK_HH
#define REPLAY_TRACE_CHUNK_HH

#include <bit>
#include <cstdint>
#include <cstring>

#include "trace/record.hh"

namespace replay::trace::wire {

inline constexpr bool kLittleEndian =
    std::endian::native == std::endian::little;

inline uint16_t
load16(const uint8_t *p)
{
    if constexpr (kLittleEndian) {
        uint16_t v;
        std::memcpy(&v, p, 2);
        return v;
    } else {
        return uint16_t(p[0] | (uint16_t(p[1]) << 8));
    }
}

inline uint32_t
load32(const uint8_t *p)
{
    if constexpr (kLittleEndian) {
        uint32_t v;
        std::memcpy(&v, p, 4);
        return v;
    } else {
        return uint32_t(load16(p)) | (uint32_t(load16(p + 2)) << 16);
    }
}

inline uint64_t
load64(const uint8_t *p)
{
    if constexpr (kLittleEndian) {
        uint64_t v;
        std::memcpy(&v, p, 8);
        return v;
    } else {
        return uint64_t(load32(p)) | (uint64_t(load32(p + 4)) << 32);
    }
}

inline void
store16(uint8_t *p, uint16_t v)
{
    if constexpr (kLittleEndian) {
        std::memcpy(p, &v, 2);
    } else {
        p[0] = uint8_t(v);
        p[1] = uint8_t(v >> 8);
    }
}

inline void
store32(uint8_t *p, uint32_t v)
{
    if constexpr (kLittleEndian) {
        std::memcpy(p, &v, 4);
    } else {
        store16(p, uint16_t(v));
        store16(p + 2, uint16_t(v >> 16));
    }
}

inline void
store64(uint8_t *p, uint64_t v)
{
    if constexpr (kLittleEndian) {
        std::memcpy(p, &v, 8);
    } else {
        store32(p, uint32_t(v));
        store32(p + 4, uint32_t(v >> 32));
    }
}

/** Little-endian field writer over a caller-provided buffer. */
struct Encoder
{
    uint8_t *buf;
    size_t len = 0;

    void
    u8(uint8_t v)
    {
        buf[len++] = v;
    }
    void
    u16(uint16_t v)
    {
        store16(buf + len, v);
        len += 2;
    }
    void
    u32(uint32_t v)
    {
        store32(buf + len, v);
        len += 4;
    }
    void
    u64(uint64_t v)
    {
        store64(buf + len, v);
        len += 8;
    }
};

/** Little-endian field reader. */
struct Decoder
{
    const uint8_t *buf;
    size_t pos = 0;

    uint8_t
    u8()
    {
        return buf[pos++];
    }
    uint16_t
    u16()
    {
        const uint16_t v = load16(buf + pos);
        pos += 2;
        return v;
    }
    uint32_t
    u32()
    {
        const uint32_t v = load32(buf + pos);
        pos += 4;
        return v;
    }
    uint64_t
    u64()
    {
        const uint64_t v = load64(buf + pos);
        pos += 8;
        return v;
    }
};

/** Byte-wise FNV-1a32 — the frozen v2 per-record/header checksum. */
inline uint32_t
fnv1a32(const uint8_t *buf, size_t len)
{
    uint32_t h = 0x811c9dc5u;
    for (size_t i = 0; i < len; ++i) {
        h ^= buf[i];
        h *= 0x01000193u;
    }
    return h;
}

/**
 * Word-at-a-time FNV-1a64 folded to 32 bits — the v3 per-chunk guard.
 * Mixes 8 input bytes per multiply (alignment-safe via load64), with a
 * byte-wise tail; a final avalanche step spreads the length in.
 */
inline uint32_t
chunkChecksum(const uint8_t *buf, size_t len)
{
    uint64_t h = 14695981039346656037ULL;
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        h ^= load64(buf + i);
        h *= 1099511628211ULL;
    }
    uint64_t tail = 0;
    for (unsigned shift = 0; i < len; ++i, shift += 8)
        tail |= uint64_t(buf[i]) << shift;
    h ^= tail;
    h *= 1099511628211ULL;
    h ^= uint64_t(len);
    h *= 1099511628211ULL;
    return uint32_t(h) ^ uint32_t(h >> 32);
}

/** Upper bound on one encoded record (compile-time buffer sizing). */
constexpr size_t MAX_RECORD_BYTES = 128;

/**
 * Encode @p rec into @p out (>= MAX_RECORD_BYTES); returns the encoded
 * length.  Every record encodes to the same length — see
 * recordWireBytes().
 */
size_t encodeRecord(const TraceRecord &rec, uint8_t *out);

/** Decode one record from @p buf (recordWireBytes() bytes). */
TraceRecord decodeRecord(const uint8_t *buf);

/** Fixed encoded payload size of one record. */
size_t recordWireBytes();

/**
 * FNV-1a64 over the canonical record encoding — the container-
 * independent identity of a record stream.  A v2 file, its v3
 * conversion, and the live executor all digest identically, which is
 * what lets the corpus manifest pin artifacts across formats.
 */
uint64_t streamDigest(TraceSource &src, uint64_t max_records = 0);

} // namespace replay::trace::wire

#endif // REPLAY_TRACE_CHUNK_HH
