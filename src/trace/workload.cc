#include "trace/workload.hh"

#include <cstring>

#include "util/logging.hh"
#include "util/rng.hh"
#include "x86/asmbuilder.hh"

namespace replay::trace {

using x86::AsmBuilder;
using x86::Cond;
using x86::memAbs;
using x86::memAt;
using x86::Mnem;
using x86::Reg;

const char *
appTypeName(AppType type)
{
    switch (type) {
      case AppType::SPECint:  return "SPECint";
      case AppType::Business: return "Business";
      case AppType::Content:  return "Content";
    }
    return "?";
}

namespace {

/**
 * Generates one program from a personality.
 *
 * Register conventions in the generated code:
 *   ESI — base of the integer data array (set once, read-only in procs)
 *   ECX — global iteration counter (owned by the main loop)
 *   EBP — frame pointer inside procedures (args at [EBP+8], [EBP+12])
 *   EAX, EBX, EDX, EDI — scratch (EBX/EDI are callee-saved)
 *
 * Every conditional branch in hot code tests bits of words from a
 * pre-filled random table, so branch bias is a statistical property of
 * the personality, observable identically by the branch predictor and
 * the frame constructor's bias table.
 */
class Synthesizer
{
  public:
    explicit Synthesizer(const Personality &p)
        : p_(p), rng_(p.seed), b_(0x00401000)
    {
    }

    x86::Program
    build()
    {
        emitData();

        // Entry block: jump over the procedures to the main loop.
        b_.jmp("main_entry");

        for (unsigned i = 0; i < p_.numHotProcs; ++i)
            emitProcedure(i);

        emitMain();
        return b_.build();
    }

  private:
    static constexpr unsigned RND_WORDS = 1024;

    std::string
    nextLabel()
    {
        // Built via insert rather than "L" + to_string(...): the
        // concatenation form trips GCC 12's -Wrestrict false positive
        // inside libstdc++ (GCC PR105651).
        std::string label = std::to_string(labelCounter_++);
        label.insert(label.begin(), 'L');
        return label;
    }

    void
    emitData()
    {
        const uint32_t data_bytes = p_.dataKB * 1024;
        arr_ = b_.dataRegion("arr", data_bytes);
        std::vector<uint32_t> init(data_bytes / 4);
        for (auto &w : init)
            w = uint32_t(rng_.next());
        b_.dataWords("arr", init);

        rnd_ = b_.dataRegion("rnd", RND_WORDS * 4);
        std::vector<uint32_t> rnd_init(RND_WORDS);
        for (auto &w : rnd_init)
            w = uint32_t(rng_.next());
        b_.dataWords("rnd", rnd_init);

        alias_ = b_.dataRegion("alias", 256);

        fp_ = b_.dataRegion("fp", 1024);
        std::vector<uint32_t> fp_init(256);
        for (auto &w : fp_init) {
            const float v = 1.0f + float(rng_.real());
            std::memcpy(&w, &v, 4);
        }
        b_.dataWords("fp", fp_init);
    }

    /**
     * Load a fresh random word into EDX, indexed by the counter argument
     * at [EBP+8] (inside procedures) or ECX (in the main loop), salted
     * so different sites see independent streams.
     */
    void
    emitFreshRandom(bool in_proc)
    {
        // ECX holds the iteration counter and is callee-preserved, so
        // hot code keeps it in the register (as compiled code would)
        // instead of reloading the stack argument.
        (void)in_proc;
        b_.movRR(Reg::EDX, Reg::ECX);
        b_.addRI(Reg::EDX, int32_t(rng_.below(RND_WORDS)));
        b_.andRI(Reg::EDX, RND_WORDS - 1);
        b_.movRM(Reg::EDX,
                 memAt(Reg::NONE, Reg::EDX, 4, int32_t(rnd_)));
    }

    Reg
    scratch()
    {
        static const Reg regs[] = {Reg::EAX, Reg::EBX, Reg::EDI};
        return regs[rng_.below(3)];
    }

    /** A short burst of register ALU work. */
    void
    segAlu(bool in_proc)
    {
        // Seed the scratch registers with defined values.
        (void)in_proc;
        b_.movRR(Reg::EAX, Reg::ECX);
        const unsigned n = 2 + unsigned(rng_.below(4));
        for (unsigned i = 0; i < n; ++i) {
            const Reg dst = scratch();
            switch (rng_.below(6)) {
              case 0: b_.addRR(dst, scratch()); break;
              case 1: b_.subRI(dst, int32_t(rng_.below(64))); break;
              case 2: b_.xorRR(dst, scratch()); break;
              case 3: b_.andRI(dst, int32_t(0xffff)); break;
              case 4: b_.imulRRI(dst, scratch(),
                                 int32_t(3 + rng_.below(5))); break;
              default: b_.shlRI(dst, uint8_t(1 + rng_.below(3))); break;
            }
        }
        // Consume the result so the work is live.
        b_.movMR(memAt(Reg::ESI, wordOff()), Reg::EAX);
    }

    /** Word-aligned offset within the first half of the data region
     *  (so scaled-index accesses on top of it stay in bounds). */
    int32_t
    halfOff()
    {
        const uint32_t words = p_.dataKB * 1024 / 4;
        return int32_t(rng_.below(words / 2) * 4);
    }

    int32_t
    wordOff()
    {
        // Leave a 64-word margin: segment emitters touch up to +56
        // bytes past the returned offset (unrolled loop bodies).
        const uint32_t words = p_.dataKB * 1024 / 4;
        panic_if(words <= 128, "dataKB too small");
        return int32_t(rng_.below(words - 64) * 4);
    }

    /**
     * Load/compute/store on a counter-indexed slot, with optional
     * redundant re-loads (safe CSE / store-forwarding opportunities).
     */
    void
    segMemCompute(bool in_proc)
    {
        (void)in_proc;
        b_.movRR(Reg::EAX, Reg::ECX);
        // Per-instance salt: distinct index chains, so cross-segment
        // value numbering finds nothing unless redundancy is asked for.
        b_.addRI(Reg::EAX, int32_t(rng_.below(4096)));
        // Mask to a quarter of the working set and give every segment
        // instance its own region, so cross-segment address collisions
        // (and the accidental load redundancy they would hand CSE) are
        // controlled by redundantLoadRate alone.
        const uint32_t ws_mask = p_.dataKB * 1024 / 16 - 1;
        b_.andRI(Reg::EAX, int32_t(ws_mask & ~3U));
        const int32_t inst_off = halfOff() & ~15;
        const auto slot = memAt(Reg::ESI, Reg::EAX, 4, inst_off);
        const auto slot4 = memAt(Reg::ESI, Reg::EAX, 4, inst_off + 4);
        const auto slot8 = memAt(Reg::ESI, Reg::EAX, 4, inst_off + 8);

        b_.movRM(Reg::EBX, slot);
        b_.addRM(Reg::EBX, slot4);
        if (rng_.chance(p_.redundantLoadRate)) {
            b_.movRM(Reg::EDI, slot);           // redundant load
            b_.addRR(Reg::EBX, Reg::EDI);
        }
        b_.movMR(slot8, Reg::EBX);
        if (rng_.chance(p_.redundantLoadRate)) {
            b_.movRM(Reg::EDI, slot8);          // store-forwardable load
            b_.xorRR(Reg::EBX, Reg::EDI);
            b_.movMR(slot4, Reg::EBX);
        }
    }

    /** Statically-addressed redundant-load cluster (bzip2 style). */
    void
    segRedundantStatic()
    {
        const int32_t o = wordOff() & ~15;
        b_.movRM(Reg::EAX, memAt(Reg::ESI, o));
        b_.addRM(Reg::EAX, memAt(Reg::ESI, o + 4));
        b_.movRM(Reg::EBX, memAt(Reg::ESI, o));        // redundant
        b_.addRR(Reg::EBX, Reg::EAX);
        b_.movMR(memAt(Reg::ESI, o + 8), Reg::EBX);
        b_.movRM(Reg::EDI, memAt(Reg::ESI, o + 4));    // redundant
        b_.addRR(Reg::EDI, Reg::EBX);
        b_.movMR(memAt(Reg::ESI, o + 12), Reg::EDI);
    }

    /** A highly-biased branch around a cold block. */
    void
    segBiasedBranch(bool in_proc)
    {
        emitFreshRandom(in_proc);
        const std::string skip = nextLabel();
        const uint32_t m = uint32_t(x86::Reg::NONE);
        (void)m;
        const uint32_t bias_mask = (1u << p_.biasBits) - 1;
        b_.testRI(Reg::EDX, int32_t(bias_mask));
        b_.jcc(Cond::NE, skip);                 // taken with p = 1-2^-k
        // Cold block, rarely executed.
        b_.movRM(Reg::EAX, memAt(Reg::ESI, wordOff()));
        b_.addRI(Reg::EAX, 7);
        b_.movMR(memAt(Reg::ESI, wordOff()), Reg::EAX);
        b_.label(skip);
    }

    /** A poorly-predictable diamond; breaks frame construction. */
    void
    segUnbiasedBranch(bool in_proc)
    {
        emitFreshRandom(in_proc);
        const std::string els = nextLabel();
        const std::string join = nextLabel();
        b_.testRI(Reg::EDX, 1 << int(rng_.below(8)));
        b_.jcc(Cond::E, els);
        b_.addRI(Reg::EAX, 13);
        b_.xorRR(Reg::EBX, Reg::EAX);
        b_.jmp(join);
        b_.label(els);
        b_.subRI(Reg::EAX, 9);
        b_.orRR(Reg::EBX, Reg::EAX);
        b_.label(join);
        b_.movMR(memAt(Reg::ESI, wordOff()), Reg::EBX);
    }

    /** A counted inner loop; body redundancy follows the personality. */
    void
    segLoop()
    {
        const std::string head = nextLabel();
        const int32_t o = wordOff() & ~63;
        b_.movRI(Reg::EDI, int32_t(p_.loopTrip));
        b_.label(head);
        for (unsigned c = 0; c < p_.loopUnroll; ++c) {
            const int32_t co = o + int32_t(c) * 16;
            b_.movRM(Reg::EAX, memAt(Reg::ESI, co));
            if (rng_.chance(p_.redundantLoadRate))
                b_.addRM(Reg::EAX, memAt(Reg::ESI, co)); // redundant
            else
                b_.addRI(Reg::EAX, int32_t(1 + rng_.below(9)));
            b_.movRM(Reg::EBX, memAt(Reg::ESI, co + 4));
            b_.addRR(Reg::EAX, Reg::EBX);
            b_.movMR(memAt(Reg::ESI, co + 8), Reg::EAX);
        }
        b_.decR(Reg::EDI);
        b_.jcc(Cond::NE, head);
    }

    /** Stores through a runtime-random pointer (Excel's unsafe-store
     *  aliasing pattern): store A, may-alias store B, load from A. */
    void
    segAlias(bool in_proc)
    {
        emitFreshRandom(in_proc);
        const int32_t a_addr = int32_t(alias_);
        const uint32_t off_mask = ((1u << p_.aliasMaskBits) - 1) << 2;
        b_.movRR(Reg::EBX, Reg::EDX);
        b_.andRI(Reg::EBX, int32_t(off_mask));
        b_.addRI(Reg::EBX, a_addr);             // EBX aliases A when 0
        b_.movMR(memAbs(a_addr), Reg::EDX);     // store A
        b_.movMR(memAt(Reg::EBX, 0), Reg::EAX); // store B (may alias A)
        b_.movRM(Reg::EDI, memAbs(a_addr));     // load A (speculative SF)
        b_.addRI(Reg::EDI, 1);
        b_.movMR(memAbs(a_addr + 64), Reg::EDI);
    }

    /** Scalar FP kernel. */
    void
    segFp()
    {
        const int32_t in0 = int32_t(fp_ + rng_.below(64) * 4);
        const int32_t in1 = int32_t(fp_ + 256 + rng_.below(64) * 4);
        const int32_t out = int32_t(fp_ + 512 + rng_.below(64) * 4);
        b_.fld(x86::FReg::F0, memAbs(in0));
        b_.fld(x86::FReg::F1, memAbs(in1));
        b_.fopFRR(Mnem::FADD, x86::FReg::F0, x86::FReg::F1);
        b_.fopFRR(Mnem::FMUL, x86::FReg::F0, x86::FReg::F1);
        if (rng_.chance(0.3))
            b_.fopFRR(Mnem::FDIV, x86::FReg::F0, x86::FReg::F1);
        b_.fst(memAbs(out), x86::FReg::F0);
    }

    /** x86 DIV with its fixed EDX:EAX register binding. */
    void
    segDiv(bool in_proc)
    {
        emitFreshRandom(in_proc);
        b_.movRR(Reg::EBX, Reg::EDX);
        b_.andRI(Reg::EBX, 0xff);
        b_.orRI(Reg::EBX, 1);                   // divisor != 0
        (void)in_proc;
        b_.movRR(Reg::EAX, Reg::ECX);
        b_.xorRR(Reg::EDX, Reg::EDX);
        b_.divR(Reg::EBX);
        b_.movMR(memAt(Reg::ESI, wordOff()), Reg::EAX);
    }

    /** Address arithmetic through LEA and a dependent access. */
    void
    segLea(bool in_proc)
    {
        (void)in_proc;
        b_.movRR(Reg::EAX, Reg::ECX);
        b_.addRI(Reg::EAX, int32_t(rng_.below(4096)));
        const uint32_t ws_mask = p_.dataKB * 1024 / 16 - 1;
        b_.andRI(Reg::EAX, int32_t(ws_mask & ~7U));
        b_.lea(Reg::EBX,
               memAt(Reg::ESI, Reg::EAX, 4, halfOff() & ~7));
        b_.movRM(Reg::EDI, memAt(Reg::EBX, 0));
        b_.addRI(Reg::EDI, 3);
        b_.movMR(memAt(Reg::EBX, 4), Reg::EDI);
    }

    /** Jump-table dispatch (indirect branch, frame terminator). */
    void
    segJumpTable(bool in_proc)
    {
        const unsigned n = p_.jumpTableSize;
        panic_if(!n || (n & (n - 1)), "jumpTableSize must be power of 2");
        const std::string tbl = "tbl" + std::to_string(labelCounter_);
        const uint32_t tbl_addr = b_.dataRegion(tbl, n * 4);
        std::vector<std::string> cases(n);
        for (unsigned i = 0; i < n; ++i) {
            cases[i] = nextLabel();
            b_.dataWordLabel(tbl, i, cases[i]);
        }
        const std::string join = nextLabel();

        emitFreshRandom(in_proc);
        b_.movRR(Reg::EAX, Reg::EDX);
        b_.andRI(Reg::EAX, int32_t(n - 1));
        b_.movRM(Reg::EAX,
                 memAt(Reg::NONE, Reg::EAX, 4, int32_t(tbl_addr)));
        b_.jmpR(Reg::EAX);
        for (unsigned i = 0; i < n; ++i) {
            b_.label(cases[i]);
            b_.movRM(Reg::EBX, memAt(Reg::ESI, wordOff()));
            b_.addRI(Reg::EBX, int32_t(i * 3 + 1));
            b_.movMR(memAt(Reg::ESI, wordOff()), Reg::EBX);
            b_.jmp(join);
        }
        b_.label(join);
    }

    /** Emit one body segment chosen by the personality's mix. */
    void
    emitSegment(bool in_proc)
    {
        struct Choice
        {
            double weight;
            int kind;
        };
        const Choice choices[] = {
            {p_.memSegRate, 0},       {p_.biasedBranchRate, 1},
            {p_.unbiasedBranchRate, 2}, {p_.loopRate, 3},
            {p_.aliasSegRate, 4},     {p_.fpSegRate, 5},
            {p_.divSegRate, 6},       {p_.leaSegRate, 7},
            {p_.indirectRate, 8},
        };
        double total = 0;
        for (const auto &c : choices)
            total += c.weight;
        // Whatever weight is left (up to 1.0) goes to plain ALU work.
        const double alu_weight = total < 1.0 ? 1.0 - total : 0.1;
        double pick = rng_.real() * (total + alu_weight);
        for (const auto &c : choices) {
            if (pick < c.weight) {
                switch (c.kind) {
                  case 0:
                    if (rng_.chance(p_.redundantLoadRate * 0.6))
                        segRedundantStatic();
                    else
                        segMemCompute(in_proc);
                    return;
                  case 1: segBiasedBranch(in_proc); return;
                  case 2: segUnbiasedBranch(in_proc); return;
                  case 3: segLoop(); return;
                  case 4: segAlias(in_proc); return;
                  case 5: segFp(); return;
                  case 6: segDiv(in_proc); return;
                  case 7: segLea(in_proc); return;
                  default: segJumpTable(in_proc); return;
                }
            }
            pick -= c.weight;
        }
        segAlu(in_proc);
    }

    void
    emitProcedure(unsigned idx)
    {
        b_.label("proc" + std::to_string(idx));
        // Prologue (the crafty pattern from Figure 2).
        b_.pushR(Reg::EBP);
        b_.movRR(Reg::EBP, Reg::ESP);
        b_.pushR(Reg::EBX);
        b_.pushR(Reg::EDI);
        const bool save_esi = p_.calleeSaves >= 3;
        if (save_esi)
            b_.pushR(Reg::ESI);

        // Parameter loads (forwardable from the caller's pushes when
        // the call is inside a frame).
        b_.movRM(Reg::EAX, memAt(Reg::EBP, 8));
        b_.movRM(Reg::EBX, memAt(Reg::EBP, 12));
        b_.orRR(Reg::EBX, Reg::EAX);            // touch both params

        for (unsigned s = 0; s < p_.segmentsPerProc; ++s) {
            // Per-segment deterministic stream: changing one
            // personality knob must not reshuffle every other
            // segment's content.
            rng_.reseed(p_.seed * 7919 + idx * 131 + s * 17 + 5);
            emitSegment(true);
        }

        // Epilogue.
        if (save_esi)
            b_.popR(Reg::ESI);
        b_.popR(Reg::EDI);
        b_.popR(Reg::EBX);
        b_.popR(Reg::EBP);
        b_.ret();
    }

    void
    emitMain()
    {
        b_.label("main_entry");
        b_.movRI(Reg::ESI, int32_t(arr_));
        b_.xorRR(Reg::ECX, Reg::ECX);
        b_.label("main_loop");
        b_.addRI(Reg::ECX, 1);

        for (unsigned i = 0; i < p_.numHotProcs; ++i) {
            // Occasional inline segment between calls.
            rng_.reseed(p_.seed * 104729 + i * 31 + 7);
            if (rng_.chance(0.35))
                emitSegment(false);
            b_.pushR(Reg::ESI);
            b_.pushR(Reg::ECX);
            b_.call("proc" + std::to_string(i));
            b_.addRI(Reg::ESP, 8);
        }
        b_.jmp("main_loop");
    }

    Personality p_;
    Rng rng_;
    AsmBuilder b_;
    unsigned labelCounter_ = 0;
    uint32_t arr_ = 0;
    uint32_t rnd_ = 0;
    uint32_t alias_ = 0;
    uint32_t fp_ = 0;
};

} // anonymous namespace

x86::Program
synthesizeProgram(const Personality &personality)
{
    fatal_if(personality.dataKB == 0 ||
             (personality.dataKB & (personality.dataKB - 1)),
             "dataKB must be a power of two");
    Synthesizer synth(personality);
    return synth.build();
}

x86::Program
Workload::buildProgram(unsigned trace_idx) const
{
    fatal_if(trace_idx >= numTraces, "workload %s has %u traces",
             name.c_str(), numTraces);
    Personality p = personality;
    p.seed = personality.seed * 1000 + trace_idx * 77 + 13;
    return synthesizeProgram(p);
}

std::unique_ptr<TraceSource>
Workload::openTrace(unsigned trace_idx, uint64_t max_insts) const
{
    // The program must outlive the source; bundle them.
    struct OwningSource : public TraceSource
    {
        OwningSource(x86::Program prog, uint64_t insts)
            : program(std::move(prog)), source(program, insts)
        {
        }
        const TraceRecord *
        peek(unsigned ahead = 0) override
        {
            return source.peek(ahead);
        }
        void advance() override { source.advance(); }
        bool done() override { return source.done(); }
        uint64_t consumed() const override { return source.consumed(); }

        x86::Program program;
        ExecutorTraceSource source;
    };
    return std::make_unique<OwningSource>(buildProgram(trace_idx),
                                          max_insts);
}

} // namespace replay::trace
