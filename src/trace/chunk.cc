#include "trace/chunk.hh"

namespace replay::trace::wire {

size_t
encodeRecord(const TraceRecord &rec, uint8_t *out)
{
    Encoder e{out};
    e.u32(rec.pc);
    e.u32(rec.nextPc);
    e.u8(rec.length);
    e.u8(rec.taken);
    e.u8(rec.wroteFlags);
    e.u8(rec.flagsAfter);

    // Instruction encoding ("raw instruction data").
    const x86::Inst &in = rec.inst;
    e.u8(uint8_t(in.mnem));
    e.u8(uint8_t(in.form));
    e.u8(uint8_t(in.cc));
    e.u8(uint8_t(in.reg1));
    e.u8(uint8_t(in.reg2));
    e.u8(uint8_t(in.freg1));
    e.u8(uint8_t(in.freg2));
    e.u8(uint8_t(in.mem.base));
    e.u8(uint8_t(in.mem.index));
    e.u8(in.mem.scale);
    e.u32(uint32_t(in.mem.disp));
    e.u64(uint64_t(in.imm));
    e.u32(in.target);
    e.u8(in.opSize);

    // Side effects.
    e.u8(rec.numRegWrites);
    for (unsigned i = 0; i < TraceRecord::MAX_REG_WRITES; ++i) {
        e.u8(uint8_t(rec.regWrites[i].reg));
        e.u32(rec.regWrites[i].value);
    }
    e.u8(rec.numMemOps);
    for (unsigned i = 0; i < TraceRecord::MAX_MEM_OPS; ++i) {
        e.u8(rec.memOps[i].isStore);
        e.u32(rec.memOps[i].addr);
        e.u8(rec.memOps[i].size);
        e.u32(rec.memOps[i].data);
    }
    e.u8(rec.numFregWrites);
    e.u8(uint8_t(rec.fregWrite.reg));
    uint32_t raw = 0;
    std::memcpy(&raw, &rec.fregWrite.value, 4);
    e.u32(raw);
    return e.len;
}

TraceRecord
decodeRecord(const uint8_t *buf)
{
    Decoder d{buf};
    TraceRecord rec;
    rec.pc = d.u32();
    rec.nextPc = d.u32();
    rec.length = d.u8();
    rec.taken = d.u8();
    rec.wroteFlags = d.u8();
    rec.flagsAfter = d.u8();

    x86::Inst &in = rec.inst;
    in.mnem = static_cast<x86::Mnem>(d.u8());
    in.form = static_cast<x86::Form>(d.u8());
    in.cc = static_cast<x86::Cond>(d.u8());
    in.reg1 = static_cast<x86::Reg>(d.u8());
    in.reg2 = static_cast<x86::Reg>(d.u8());
    in.freg1 = static_cast<x86::FReg>(d.u8());
    in.freg2 = static_cast<x86::FReg>(d.u8());
    in.mem.base = static_cast<x86::Reg>(d.u8());
    in.mem.index = static_cast<x86::Reg>(d.u8());
    in.mem.scale = d.u8();
    in.mem.disp = int32_t(d.u32());
    in.imm = int64_t(d.u64());
    in.target = d.u32();
    in.opSize = d.u8();

    rec.numRegWrites = d.u8();
    for (unsigned i = 0; i < TraceRecord::MAX_REG_WRITES; ++i) {
        rec.regWrites[i].reg = static_cast<x86::Reg>(d.u8());
        rec.regWrites[i].value = d.u32();
    }
    rec.numMemOps = d.u8();
    for (unsigned i = 0; i < TraceRecord::MAX_MEM_OPS; ++i) {
        rec.memOps[i].isStore = d.u8();
        rec.memOps[i].addr = d.u32();
        rec.memOps[i].size = d.u8();
        rec.memOps[i].data = d.u32();
    }
    rec.numFregWrites = d.u8();
    rec.fregWrite.reg = static_cast<x86::FReg>(d.u8());
    const uint32_t raw = d.u32();
    std::memcpy(&rec.fregWrite.value, &raw, 4);
    return rec;
}

size_t
recordWireBytes()
{
    static const size_t size = [] {
        uint8_t buf[MAX_RECORD_BYTES];
        return encodeRecord(TraceRecord{}, buf);
    }();
    return size;
}

uint64_t
streamDigest(TraceSource &src, uint64_t max_records)
{
    uint8_t buf[MAX_RECORD_BYTES];
    uint64_t h = 14695981039346656037ULL;
    uint64_t n = 0;
    while (!src.done() && (max_records == 0 || n < max_records)) {
        const size_t len = encodeRecord(*src.peek(), buf);
        for (size_t i = 0; i < len; ++i) {
            h ^= buf[i];
            h *= 1099511628211ULL;
        }
        src.advance();
        ++n;
    }
    return h;
}

} // namespace replay::trace::wire
