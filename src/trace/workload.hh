/**
 * @file
 * Workload definitions and the program synthesizer.
 *
 * The paper's workloads are proprietary AMD hardware traces of SPECint
 * 2000 and Winstone desktop applications (Table 1).  We substitute a
 * *personality-driven program synthesizer*: each application is
 * described by a Personality — a set of statistical knobs (branch bias
 * mix, call density, load redundancy, store aliasing, FP content, code
 * and data footprint) — from which a concrete x86-subset program is
 * generated deterministically.  Running the program through the
 * functional executor yields the dynamic trace.  See DESIGN.md for why
 * this substitution preserves the behaviours the evaluation measures.
 */

#ifndef REPLAY_TRACE_WORKLOAD_HH
#define REPLAY_TRACE_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/tracer.hh"
#include "x86/program.hh"

namespace replay::trace {

/** Application categories from Table 1. */
enum class AppType
{
    SPECint,
    Business,
    Content,
};

const char *appTypeName(AppType type);

/** Statistical description of an application's hot code. */
struct Personality
{
    uint64_t seed = 1;

    // --- code shape -----------------------------------------------------
    unsigned numHotProcs = 6;       ///< distinct hot procedures
    unsigned segmentsPerProc = 5;   ///< pattern segments per procedure
    unsigned calleeSaves = 2;       ///< pushed/popped registers per proc

    // --- branch behaviour -------------------------------------------------
    double biasedBranchRate = 0.25; ///< biased branch segments per segment
    unsigned biasBits = 5;          ///< bias = 1 - 2^-biasBits
    double unbiasedBranchRate = 0.06; ///< frame-breaking branches
    double indirectRate = 0.02;     ///< jump-table dispatch segments
    unsigned jumpTableSize = 4;

    // --- loops -----------------------------------------------------------
    double loopRate = 0.008;        ///< inner counted-loop segments
    unsigned loopTrip = 96;         ///< iterations per inner loop
    unsigned loopUnroll = 4;        ///< body copies inside the loop

    // --- memory behaviour ---------------------------------------------------
    double memSegRate = 0.35;       ///< load/compute/store segments
    double redundantLoadRate = 0.4; ///< re-load of a just-accessed slot
    double aliasSegRate = 0.0;      ///< runtime-aliasing store segments
    unsigned aliasMaskBits = 3;     ///< alias probability = 2^-bits
    unsigned dataKB = 16;           ///< data working set

    // --- other content ---------------------------------------------------------
    double fpSegRate = 0.0;         ///< scalar FP kernel segments
    double divSegRate = 0.0;        ///< DIV (fixed-register) segments
    double leaSegRate = 0.08;       ///< address-arithmetic segments
};

/** One application from Table 1. */
struct Workload
{
    std::string name;
    AppType type;
    uint64_t paperInsts = 0;        ///< x86 inst count reported in Table 1
    unsigned numTraces = 1;         ///< hot spots / trace files
    Personality personality;

    /** Synthesize the program for hot spot @p trace_idx (0-based). */
    x86::Program buildProgram(unsigned trace_idx) const;

    /** Open a trace source over hot spot @p trace_idx. */
    std::unique_ptr<TraceSource>
    openTrace(unsigned trace_idx, uint64_t max_insts) const;
};

/** The 14 applications of Table 1. */
const std::vector<Workload> &standardWorkloads();

/** Find a standard workload by name; fatal if unknown. */
const Workload &findWorkload(const std::string &name);

/**
 * Generate a program directly from a personality (public entry point
 * for custom workloads; see examples/custom_workload.cc).
 */
x86::Program synthesizeProgram(const Personality &personality);

} // namespace replay::trace

#endif // REPLAY_TRACE_WORKLOAD_HH
