/**
 * @file
 * Trace corpus manifest: named, digest-pinned trace artifacts.
 *
 * The paper's infrastructure treated its hardware trace captures as a
 * *corpus* — a fixed artifact set every experiment replays.  This
 * module is our equivalent: a `corpus.json` manifest mapping each
 * (workload, hot-spot) pair to an on-disk trace container, pinned by
 * record count and a container-independent stream digest
 * (wire::streamDigest — a v2 file, its v3 conversion, and the live
 * synthesizer all digest identically).
 *
 * Consumers (sweep, replaybench, difforacle) resolve traces through
 * TraceCorpus::find(): a hit replays the recorded container, a miss
 * falls back to live synthesis — and because the digest pins the
 * stream, either path feeds the simulator bit-identical input.  The
 * manifest is built and verified by `tools/tracec` (corpus-build /
 * corpus-verify).
 */

#ifndef REPLAY_TRACE_CORPUS_HH
#define REPLAY_TRACE_CORPUS_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/tracefile.hh"

namespace replay::trace {

/** One manifest row: a pinned trace artifact. */
struct CorpusEntry
{
    std::string id;         ///< unique name, e.g. "gzip.0"
    std::string workload;   ///< Table-1 workload name
    unsigned traceIdx = 0;  ///< hot-spot index within the workload
    uint64_t records = 0;   ///< records the container holds
    uint64_t digest = 0;    ///< wire::streamDigest of the full stream
    std::string file;       ///< container path, relative to manifest
};

/** Loaded corpus.json manifest. */
class TraceCorpus
{
  public:
    /**
     * Parse @p manifest_path.  A missing or malformed manifest yields
     * a corpus with ok() == false; find() on it always misses, so a
     * consumer degrades to synthesis rather than aborting.
     */
    static TraceCorpus load(const std::string &manifest_path);

    bool ok() const { return error_.ok(); }
    const TraceError &error() const { return error_; }

    const std::string &manifestPath() const { return path_; }
    const std::vector<CorpusEntry> &entries() const { return entries_; }
    size_t size() const { return entries_.size(); }

    /**
     * Entry for @p workload hot spot @p trace_idx whose recording is
     * long enough to cover @p min_records (0 = any length).  A trace
     * recorded shorter than the replay budget is a *miss* — the caller
     * synthesizes instead — because a short replay would change the
     * record stream, not just slow it down.
     */
    const CorpusEntry *find(const std::string &workload,
                            unsigned trace_idx,
                            uint64_t min_records = 0) const;

    /** Entry by manifest id. */
    const CorpusEntry *findById(const std::string &id) const;

    /**
     * Open @p entry's container (path resolved against the manifest
     * directory), presenting at most @p limit records (0 = all).
     * Returns nullptr with @p err set when the container is missing,
     * damaged, or holds fewer records than the manifest claims.
     */
    std::unique_ptr<TraceSource> open(const CorpusEntry &entry,
                                      uint64_t limit,
                                      TraceError *err = nullptr) const;

    /** @p entry's container path resolved against the manifest dir. */
    std::string resolvePath(const CorpusEntry &entry) const;

  private:
    std::string path_;
    std::string dir_;       ///< manifest directory ("" = cwd)
    std::vector<CorpusEntry> entries_;
    TraceError error_;
};

/** Serialize @p entries as corpus.json at @p path. */
TraceError writeCorpusManifest(const std::string &path,
                               const std::vector<CorpusEntry> &entries);

/** 16-digit lowercase hex of a stream digest (manifest encoding). */
std::string corpusDigestHex(uint64_t digest);

} // namespace replay::trace

#endif // REPLAY_TRACE_CORPUS_HH
