#include "trace/record.hh"

#include "util/logging.hh"

namespace replay::trace {

TraceRecord
TraceRecord::fromStep(const x86::StepInfo &step)
{
    TraceRecord rec;
    rec.pc = step.pc;
    rec.nextPc = step.nextPc;
    rec.inst = step.placed->inst;
    rec.length = uint8_t(step.placed->length);
    rec.taken = step.branchTaken;
    rec.wroteFlags = step.wroteFlags;
    rec.flagsAfter = step.flagsAfter.pack();

    panic_if(step.regWrites.size() > MAX_REG_WRITES,
             "instruction at 0x%08x wrote %zu registers", step.pc,
             step.regWrites.size());
    panic_if(step.memOps.size() > MAX_MEM_OPS,
             "instruction at 0x%08x made %zu memory accesses", step.pc,
             step.memOps.size());
    panic_if(step.fregWrites.size() > 1,
             "instruction at 0x%08x wrote %zu FP registers", step.pc,
             step.fregWrites.size());

    rec.numRegWrites = uint8_t(step.regWrites.size());
    for (size_t i = 0; i < step.regWrites.size(); ++i)
        rec.regWrites[i] = step.regWrites[i];
    rec.numMemOps = uint8_t(step.memOps.size());
    for (size_t i = 0; i < step.memOps.size(); ++i)
        rec.memOps[i] = step.memOps[i];
    rec.numFregWrites = uint8_t(step.fregWrites.size());
    if (rec.numFregWrites)
        rec.fregWrite = step.fregWrites[0];
    return rec;
}

} // namespace replay::trace
