#include "trace/corpus.hh"

#include <cctype>
#include <cstdio>

#include "trace/tracev3.hh"

namespace replay::trace {

namespace {

using Kind = TraceError::Kind;

/**
 * Minimal JSON scanner for the corpus manifest schema: one object with
 * a "traces" array of flat objects whose values are strings or
 * unsigned integers.  Anything outside that shape is a parse error —
 * the manifest is machine-written, not hand-authored config.
 */
struct Scanner
{
    const std::string &text;
    size_t pos = 0;
    std::string err;

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c) {
            err = "expected '" + std::string(1, c) + "' at byte " +
                  std::to_string(pos);
            return false;
        }
        ++pos;
        return true;
    }

    bool
    peekIs(char c)
    {
        skipWs();
        return pos < text.size() && text[pos] == c;
    }

    bool
    string(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\') {
                err = "escapes unsupported at byte " +
                      std::to_string(pos);
                return false;
            }
            out.push_back(text[pos++]);
        }
        return expect('"');
    }

    bool
    number(uint64_t &out)
    {
        skipWs();
        const size_t start = pos;
        out = 0;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            out = out * 10 + uint64_t(text[pos++] - '0');
        if (pos == start) {
            err = "expected number at byte " + std::to_string(pos);
            return false;
        }
        return true;
    }
};

bool
parseHex64(const std::string &hex, uint64_t &out)
{
    if (hex.empty() || hex.size() > 16)
        return false;
    out = 0;
    for (const char c : hex) {
        out <<= 4;
        if (c >= '0' && c <= '9')
            out |= uint64_t(c - '0');
        else if (c >= 'a' && c <= 'f')
            out |= uint64_t(c - 'a' + 10);
        else
            return false;
    }
    return true;
}

std::string
dirOf(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash + 1);
}

} // anonymous namespace

std::string
corpusDigestHex(uint64_t digest)
{
    static const char hex[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[size_t(i)] = hex[digest & 0xf];
        digest >>= 4;
    }
    return out;
}

TraceCorpus
TraceCorpus::load(const std::string &manifest_path)
{
    TraceCorpus corpus;
    corpus.path_ = manifest_path;
    corpus.dir_ = dirOf(manifest_path);

    std::string text;
    {
        std::FILE *file = std::fopen(manifest_path.c_str(), "rb");
        if (!file) {
            corpus.error_ = TraceError::at(
                Kind::OPEN_FAILED,
                "cannot open corpus manifest '" + manifest_path + "'",
                manifest_path, 0);
            return corpus;
        }
        char buf[4096];
        size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
            text.append(buf, got);
        std::fclose(file);
    }

    auto parseFail = [&](const std::string &why) {
        corpus.error_ = TraceError::at(
            Kind::BAD_INDEX,
            "corpus manifest '" + manifest_path + "': " + why,
            manifest_path, 0);
        corpus.entries_.clear();
        return corpus;
    };

    Scanner s{text, 0, {}};
    if (!s.expect('{'))
        return parseFail(s.err);
    bool first_key = true;
    while (!s.peekIs('}')) {
        if (!first_key && !s.expect(','))
            return parseFail(s.err);
        first_key = false;
        std::string key;
        if (!s.string(key) || !s.expect(':'))
            return parseFail(s.err);
        if (key == "version") {
            uint64_t version = 0;
            if (!s.number(version))
                return parseFail(s.err);
            if (version != 1)
                return parseFail("unsupported manifest version " +
                                 std::to_string(version));
        } else if (key == "traces") {
            if (!s.expect('['))
                return parseFail(s.err);
            bool first_entry = true;
            while (!s.peekIs(']')) {
                if (!first_entry && !s.expect(','))
                    return parseFail(s.err);
                first_entry = false;
                if (!s.expect('{'))
                    return parseFail(s.err);
                CorpusEntry entry;
                std::string digest_hex;
                bool first_field = true;
                while (!s.peekIs('}')) {
                    if (!first_field && !s.expect(','))
                        return parseFail(s.err);
                    first_field = false;
                    std::string field;
                    if (!s.string(field) || !s.expect(':'))
                        return parseFail(s.err);
                    uint64_t num = 0;
                    if (field == "id") {
                        if (!s.string(entry.id))
                            return parseFail(s.err);
                    } else if (field == "workload") {
                        if (!s.string(entry.workload))
                            return parseFail(s.err);
                    } else if (field == "file") {
                        if (!s.string(entry.file))
                            return parseFail(s.err);
                    } else if (field == "digest") {
                        if (!s.string(digest_hex))
                            return parseFail(s.err);
                    } else if (field == "trace") {
                        if (!s.number(num))
                            return parseFail(s.err);
                        entry.traceIdx = unsigned(num);
                    } else if (field == "records") {
                        if (!s.number(num))
                            return parseFail(s.err);
                        entry.records = num;
                    } else {
                        return parseFail("unknown field '" + field +
                                         "'");
                    }
                }
                if (!s.expect('}'))
                    return parseFail(s.err);
                if (entry.id.empty() || entry.workload.empty() ||
                    entry.file.empty() || entry.records == 0)
                    return parseFail("entry '" + entry.id +
                                     "' is missing required fields");
                if (!parseHex64(digest_hex, entry.digest))
                    return parseFail("entry '" + entry.id +
                                     "' has a malformed digest");
                corpus.entries_.push_back(std::move(entry));
            }
            if (!s.expect(']'))
                return parseFail(s.err);
        } else {
            return parseFail("unknown key '" + key + "'");
        }
    }
    if (!s.expect('}'))
        return parseFail(s.err);

    for (size_t i = 0; i < corpus.entries_.size(); ++i)
        for (size_t j = i + 1; j < corpus.entries_.size(); ++j)
            if (corpus.entries_[i].id == corpus.entries_[j].id)
                return parseFail("duplicate entry id '" +
                                 corpus.entries_[i].id + "'");
    return corpus;
}

const CorpusEntry *
TraceCorpus::find(const std::string &workload, unsigned trace_idx,
                  uint64_t min_records) const
{
    for (const CorpusEntry &entry : entries_) {
        if (entry.workload == workload && entry.traceIdx == trace_idx &&
            (min_records == 0 || entry.records >= min_records))
            return &entry;
    }
    return nullptr;
}

const CorpusEntry *
TraceCorpus::findById(const std::string &id) const
{
    for (const CorpusEntry &entry : entries_)
        if (entry.id == id)
            return &entry;
    return nullptr;
}

std::string
TraceCorpus::resolvePath(const CorpusEntry &entry) const
{
    if (!entry.file.empty() && entry.file.front() == '/')
        return entry.file;
    return dir_ + entry.file;
}

std::unique_ptr<TraceSource>
TraceCorpus::open(const CorpusEntry &entry, uint64_t limit,
                  TraceError *err) const
{
    const std::string path = resolvePath(entry);
    TraceError open_err;
    auto src = openTraceFile(path, &open_err, limit);
    if (!src || !open_err.ok()) {
        if (err)
            *err = open_err;
        return nullptr;
    }
    // The manifest pins the recording length; a shorter container is a
    // stale or damaged artifact, and replaying it would silently
    // shorten the workload.
    if (auto *v3 = dynamic_cast<TraceV3Source *>(src.get())) {
        const uint64_t have =
            limit && limit < entry.records ? limit : entry.records;
        if (v3->totalRecords() < have) {
            if (err)
                *err = TraceError::at(
                    Kind::TRUNCATED,
                    "corpus trace '" + entry.id + "' holds " +
                        std::to_string(v3->totalRecords()) +
                        " records, manifest pins " +
                        std::to_string(entry.records),
                    path, 0);
            return nullptr;
        }
    }
    if (err)
        *err = TraceError{};
    return src;
}

TraceError
writeCorpusManifest(const std::string &path,
                    const std::vector<CorpusEntry> &entries)
{
    std::string out = "{\n  \"version\": 1,\n  \"traces\": [";
    for (size_t i = 0; i < entries.size(); ++i) {
        const CorpusEntry &e = entries[i];
        out += i ? ",\n    {" : "\n    {";
        out += "\"id\": \"" + e.id + "\", ";
        out += "\"workload\": \"" + e.workload + "\", ";
        out += "\"trace\": " + std::to_string(e.traceIdx) + ", ";
        out += "\"records\": " + std::to_string(e.records) + ", ";
        out += "\"digest\": \"" + corpusDigestHex(e.digest) + "\", ";
        out += "\"file\": \"" + e.file + "\"}";
    }
    out += "\n  ]\n}\n";

    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        return TraceError::at(Kind::OPEN_FAILED,
                              "cannot open corpus manifest '" + path +
                                  "' for writing",
                              path, 0);
    const bool wrote =
        std::fwrite(out.data(), out.size(), 1, file) == 1;
    const bool closed = std::fclose(file) == 0;
    if (!wrote || !closed)
        return TraceError::at(Kind::WRITE_FAILED,
                              "cannot write corpus manifest '" + path +
                                  "'",
                              path, 0);
    return TraceError{};
}

} // namespace replay::trace
