/**
 * @file
 * The fourteen applications of Table 1, described as synthesizer
 * personalities.  Knobs are tuned so each application exhibits the
 * behaviour the paper attributes to it (bzip2's redundant loads in a
 * critical loop, Excel's aliasing unsafe stores, eon/PhotoShop's FP
 * content, the desktop applications' larger code footprints and lower
 * frame coverage, ...).  Absolute performance is not calibrated — only
 * the cross-configuration shape (see DESIGN.md).
 */

#include "trace/workload.hh"

#include "util/logging.hh"

namespace replay::trace {

namespace {

constexpr uint64_t MILLION = 1000000;

std::vector<Workload>
makeWorkloads()
{
    std::vector<Workload> w;

    // ---- SPECint 2000 (compact hot code, biased branches) -------------
    {
        // bzip2: redundant loads in a critical compression loop; CSE
        // dominates (Figure 10).
        Personality p;
        p.seed = 101;
        p.numHotProcs = 5;
        p.segmentsPerProc = 10;
        p.memSegRate = 0.45;
        p.redundantLoadRate = 0.15;
        p.loopRate = 0.02;
        p.loopTrip = 96;
        p.loopUnroll = 6;
        p.biasedBranchRate = 0.20;
        p.biasBits = 8;
        p.unbiasedBranchRate = 0.02;
        p.dataKB = 64;
        w.push_back({"bzip2", AppType::SPECint, 50 * MILLION, 1, p});
    }
    {
        // crafty: stack-heavy procedure calls (the Figure 2 fragment).
        Personality p;
        p.seed = 102;
        p.numHotProcs = 10;
        p.segmentsPerProc = 14;
        p.calleeSaves = 2;
        p.memSegRate = 0.35;
        p.redundantLoadRate = 0.05;
        p.biasedBranchRate = 0.20;
        p.biasBits = 8;
        p.unbiasedBranchRate = 0.08;
        p.indirectRate = 0.02;
        p.dataKB = 32;
        w.push_back({"crafty", AppType::SPECint, 50 * MILLION, 1, p});
    }
    {
        // eon: FP-flavoured ray tracing kernels, high optimizer gain.
        Personality p;
        p.seed = 103;
        p.numHotProcs = 7;
        p.segmentsPerProc = 8;
        p.fpSegRate = 0.35;
        p.memSegRate = 0.25;
        p.redundantLoadRate = 0.05;
        p.biasedBranchRate = 0.35;
        p.biasBits = 8;
        p.unbiasedBranchRate = 0.02;
        p.dataKB = 16;
        w.push_back({"eon", AppType::SPECint, 50 * MILLION, 1, p});
    }
    {
        // gzip: tight predictable loops, little redundancy, small gain.
        Personality p;
        p.seed = 104;
        p.numHotProcs = 2;
        p.segmentsPerProc = 10;
        p.loopRate = 0.06;
        p.loopTrip = 96;
        p.loopUnroll = 2;
        p.memSegRate = 0.40;
        p.redundantLoadRate = 0.60;
        p.biasedBranchRate = 0.20;
        p.biasBits = 8;
        p.unbiasedBranchRate = 0.03;
        p.dataKB = 128;
        w.push_back({"gzip", AppType::SPECint, 50 * MILLION, 1, p});
    }
    {
        // parser: irregular dictionary walks, indirect dispatch.
        Personality p;
        p.seed = 105;
        p.numHotProcs = 8;
        p.segmentsPerProc = 8;
        p.indirectRate = 0.10;
        p.jumpTableSize = 8;
        p.unbiasedBranchRate = 0.14;
        p.biasedBranchRate = 0.20;
        p.biasBits = 6;
        p.memSegRate = 0.30;
        p.redundantLoadRate = 0.35;
        p.dataKB = 32;
        w.push_back({"parser", AppType::SPECint, 50 * MILLION, 1, p});
    }
    {
        // twolf: placement/routing, larger data working set.
        Personality p;
        p.seed = 106;
        p.numHotProcs = 7;
        p.segmentsPerProc = 12;
        p.dataKB = 256;
        p.memSegRate = 0.45;
        p.redundantLoadRate = 0.08;
        p.unbiasedBranchRate = 0.09;
        p.biasedBranchRate = 0.20;
        p.biasBits = 7;
        p.calleeSaves = 2;
        w.push_back({"twolf", AppType::SPECint, 50 * MILLION, 1, p});
    }
    {
        // vortex: OO database, deep call chains, many forwardable loads.
        Personality p;
        p.seed = 107;
        p.numHotProcs = 12;
        p.segmentsPerProc = 6;
        p.calleeSaves = 3;
        p.memSegRate = 0.35;
        p.redundantLoadRate = 0.35;
        p.biasedBranchRate = 0.30;
        p.biasBits = 8;
        p.unbiasedBranchRate = 0.03;
        p.dataKB = 64;
        w.push_back({"vortex", AppType::SPECint, 50 * MILLION, 1, p});
    }

    // ---- Desktop applications (larger code, lower frame coverage) ----
    {
        Personality p;
        p.seed = 201;
        p.numHotProcs = 22;
        p.segmentsPerProc = 7;
        p.indirectRate = 0.07;
        p.unbiasedBranchRate = 0.12;
        p.biasedBranchRate = 0.25;
        p.biasBits = 8;
        p.memSegRate = 0.35;
        p.redundantLoadRate = 0.60;
        p.dataKB = 64;
        w.push_back({"access", AppType::Business, 200 * MILLION, 2, p});
    }
    {
        // DreamWeaver: highest micro-op removal in Table 3.
        Personality p;
        p.seed = 202;
        p.numHotProcs = 20;
        p.segmentsPerProc = 5;
        p.memSegRate = 0.40;
        p.redundantLoadRate = 0.85;
        p.biasedBranchRate = 0.35;
        p.biasBits = 7;
        p.unbiasedBranchRate = 0.10;
        p.indirectRate = 0.05;
        p.dataKB = 32;
        w.push_back({"dream", AppType::Content, 200 * MILLION, 2, p});
    }
    {
        // Excel: unsafe-store aliasing; store forwarding can backfire
        // (Figure 10).
        Personality p;
        p.seed = 203;
        p.numHotProcs = 20;
        p.segmentsPerProc = 9;
        p.aliasSegRate = 0.12;
        p.aliasMaskBits = 3;
        p.memSegRate = 0.35;
        p.redundantLoadRate = 0.55;
        p.unbiasedBranchRate = 0.12;
        p.biasedBranchRate = 0.25;
        p.biasBits = 7;
        p.indirectRate = 0.06;
        p.dataKB = 64;
        w.push_back({"excel", AppType::Business, 300 * MILLION, 3, p});
    }
    {
        Personality p;
        p.seed = 204;
        p.numHotProcs = 24;
        p.segmentsPerProc = 9;
        p.memSegRate = 0.35;
        p.redundantLoadRate = 0.70;
        p.unbiasedBranchRate = 0.13;
        p.biasedBranchRate = 0.25;
        p.biasBits = 7;
        p.indirectRate = 0.05;
        p.dataKB = 64;
        w.push_back({"lotus", AppType::Business, 200 * MILLION, 2, p});
    }
    {
        // PhotoShop: FP filters over a large working set.
        Personality p;
        p.seed = 205;
        p.numHotProcs = 18;
        p.segmentsPerProc = 9;
        p.fpSegRate = 0.30;
        p.dataKB = 512;
        p.memSegRate = 0.35;
        p.redundantLoadRate = 0.25;
        p.unbiasedBranchRate = 0.10;
        p.biasedBranchRate = 0.25;
        p.biasBits = 7;
        w.push_back({"photo", AppType::Content, 200 * MILLION, 2, p});
    }
    {
        // PowerPoint: huge removal but low coverage caps the gain.
        Personality p;
        p.seed = 206;
        p.numHotProcs = 24;
        p.segmentsPerProc = 4;
        p.memSegRate = 0.45;
        p.redundantLoadRate = 0.90;
        p.biasedBranchRate = 0.30;
        p.biasBits = 6;
        p.unbiasedBranchRate = 0.20;
        p.indirectRate = 0.08;
        p.dataKB = 64;
        w.push_back({"power", AppType::Business, 300 * MILLION, 3, p});
    }
    {
        // SoundForge: DSP loops with FP, modest IPC gain.
        Personality p;
        p.seed = 207;
        p.numHotProcs = 14;
        p.segmentsPerProc = 9;
        p.loopRate = 0.008;
        p.loopTrip = 96;
        p.loopUnroll = 4;
        p.fpSegRate = 0.25;
        p.memSegRate = 0.30;
        p.redundantLoadRate = 0.65;
        p.unbiasedBranchRate = 0.22;
        p.biasedBranchRate = 0.25;
        p.biasBits = 7;
        p.dataKB = 128;
        w.push_back({"sound", AppType::Content, 300 * MILLION, 3, p});
    }

    return w;
}

} // anonymous namespace

const std::vector<Workload> &
standardWorkloads()
{
    static const std::vector<Workload> workloads = makeWorkloads();
    return workloads;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const auto &w : standardWorkloads())
        if (w.name == name)
            return w;
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace replay::trace
