#include "trace/tracefile.hh"

#include <cstring>

#include "util/logging.hh"
#include "x86/executor.hh"

namespace replay::trace {

namespace {

constexpr uint32_t MAGIC = 0x52504c54;  // "RPLT"
constexpr uint32_t VERSION = 1;

struct FileHeader
{
    uint32_t magic = MAGIC;
    uint32_t version = VERSION;
    uint64_t records = 0;
};

/**
 * On-disk record layout: every field written explicitly and
 * little-endian via fixed-width integers, so files are portable across
 * compilers (no struct memcpy).
 */
struct Encoder
{
    uint8_t buf[128];
    size_t len = 0;

    void
    u8(uint8_t v)
    {
        buf[len++] = v;
    }
    void
    u16(uint16_t v)
    {
        u8(uint8_t(v));
        u8(uint8_t(v >> 8));
    }
    void
    u32(uint32_t v)
    {
        u16(uint16_t(v));
        u16(uint16_t(v >> 16));
    }
    void
    u64(uint64_t v)
    {
        u32(uint32_t(v));
        u32(uint32_t(v >> 32));
    }
};

struct Decoder
{
    const uint8_t *buf;
    size_t pos = 0;

    uint8_t
    u8()
    {
        return buf[pos++];
    }
    uint16_t
    u16()
    {
        const uint16_t lo = u8();
        return uint16_t(lo | (uint16_t(u8()) << 8));
    }
    uint32_t
    u32()
    {
        const uint32_t lo = u16();
        return lo | (uint32_t(u16()) << 16);
    }
    uint64_t
    u64()
    {
        const uint64_t lo = u32();
        return lo | (uint64_t(u32()) << 32);
    }
};

size_t
encodeRecord(const TraceRecord &rec, uint8_t *out)
{
    Encoder e;
    e.u32(rec.pc);
    e.u32(rec.nextPc);
    e.u8(rec.length);
    e.u8(rec.taken);
    e.u8(rec.wroteFlags);
    e.u8(rec.flagsAfter);

    // Instruction encoding ("raw instruction data").
    const x86::Inst &in = rec.inst;
    e.u8(uint8_t(in.mnem));
    e.u8(uint8_t(in.form));
    e.u8(uint8_t(in.cc));
    e.u8(uint8_t(in.reg1));
    e.u8(uint8_t(in.reg2));
    e.u8(uint8_t(in.freg1));
    e.u8(uint8_t(in.freg2));
    e.u8(uint8_t(in.mem.base));
    e.u8(uint8_t(in.mem.index));
    e.u8(in.mem.scale);
    e.u32(uint32_t(in.mem.disp));
    e.u64(uint64_t(in.imm));
    e.u32(in.target);
    e.u8(in.opSize);

    // Side effects.
    e.u8(rec.numRegWrites);
    for (unsigned i = 0; i < TraceRecord::MAX_REG_WRITES; ++i) {
        e.u8(uint8_t(rec.regWrites[i].reg));
        e.u32(rec.regWrites[i].value);
    }
    e.u8(rec.numMemOps);
    for (unsigned i = 0; i < TraceRecord::MAX_MEM_OPS; ++i) {
        e.u8(rec.memOps[i].isStore);
        e.u32(rec.memOps[i].addr);
        e.u8(rec.memOps[i].size);
        e.u32(rec.memOps[i].data);
    }
    e.u8(rec.numFregWrites);
    e.u8(uint8_t(rec.fregWrite.reg));
    uint32_t raw = 0;
    std::memcpy(&raw, &rec.fregWrite.value, 4);
    e.u32(raw);

    std::memcpy(out, e.buf, e.len);
    return e.len;
}

/** Fixed encoded size (every record encodes identically). */
size_t
recordBytes()
{
    static const size_t size = [] {
        uint8_t buf[128];
        return encodeRecord(TraceRecord{}, buf);
    }();
    return size;
}

TraceRecord
decodeRecord(const uint8_t *buf)
{
    Decoder d{buf};
    TraceRecord rec;
    rec.pc = d.u32();
    rec.nextPc = d.u32();
    rec.length = d.u8();
    rec.taken = d.u8();
    rec.wroteFlags = d.u8();
    rec.flagsAfter = d.u8();

    x86::Inst &in = rec.inst;
    in.mnem = static_cast<x86::Mnem>(d.u8());
    in.form = static_cast<x86::Form>(d.u8());
    in.cc = static_cast<x86::Cond>(d.u8());
    in.reg1 = static_cast<x86::Reg>(d.u8());
    in.reg2 = static_cast<x86::Reg>(d.u8());
    in.freg1 = static_cast<x86::FReg>(d.u8());
    in.freg2 = static_cast<x86::FReg>(d.u8());
    in.mem.base = static_cast<x86::Reg>(d.u8());
    in.mem.index = static_cast<x86::Reg>(d.u8());
    in.mem.scale = d.u8();
    in.mem.disp = int32_t(d.u32());
    in.imm = int64_t(d.u64());
    in.target = d.u32();
    in.opSize = d.u8();

    rec.numRegWrites = d.u8();
    for (unsigned i = 0; i < TraceRecord::MAX_REG_WRITES; ++i) {
        rec.regWrites[i].reg = static_cast<x86::Reg>(d.u8());
        rec.regWrites[i].value = d.u32();
    }
    rec.numMemOps = d.u8();
    for (unsigned i = 0; i < TraceRecord::MAX_MEM_OPS; ++i) {
        rec.memOps[i].isStore = d.u8();
        rec.memOps[i].addr = d.u32();
        rec.memOps[i].size = d.u8();
        rec.memOps[i].data = d.u32();
    }
    rec.numFregWrites = d.u8();
    rec.fregWrite.reg = static_cast<x86::FReg>(d.u8());
    const uint32_t raw = d.u32();
    std::memcpy(&rec.fregWrite.value, &raw, 4);
    return rec;
}

} // anonymous namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    fatal_if(!file_, "cannot open trace file '%s' for writing",
             path.c_str());
    FileHeader header;
    fatal_if(std::fwrite(&header, sizeof(header), 1, file_) != 1,
             "cannot write trace header to '%s'", path.c_str());
}

TraceFileWriter::~TraceFileWriter()
{
    if (file_)
        close();
}

void
TraceFileWriter::write(const TraceRecord &rec)
{
    panic_if(!file_, "write after close");
    uint8_t buf[128];
    const size_t len = encodeRecord(rec, buf);
    fatal_if(std::fwrite(buf, len, 1, file_) != 1,
             "short write to trace file");
    ++count_;
}

void
TraceFileWriter::close()
{
    if (!file_)
        return;
    FileHeader header;
    header.records = count_;
    std::fseek(file_, 0, SEEK_SET);
    fatal_if(std::fwrite(&header, sizeof(header), 1, file_) != 1,
             "cannot finalize trace header");
    std::fclose(file_);
    file_ = nullptr;
}

uint64_t
TraceFileWriter::dumpProgram(const x86::Program &program, uint64_t insts,
                             const std::string &path)
{
    TraceFileWriter writer(path);
    x86::Executor exec(program);
    for (uint64_t i = 0; i < insts; ++i)
        writer.write(TraceRecord::fromStep(exec.step()));
    writer.close();
    return insts;
}

FileTraceSource::FileTraceSource(const std::string &path)
    : ring_(LOOKAHEAD * 2)
{
    file_ = std::fopen(path.c_str(), "rb");
    fatal_if(!file_, "cannot open trace file '%s'", path.c_str());
    FileHeader header;
    fatal_if(std::fread(&header, sizeof(header), 1, file_) != 1,
             "trace file '%s' has no header", path.c_str());
    fatal_if(header.magic != MAGIC, "'%s' is not a trace file",
             path.c_str());
    fatal_if(header.version != VERSION,
             "trace file '%s' has unsupported version %u", path.c_str(),
             header.version);
    total_ = header.records;
}

FileTraceSource::~FileTraceSource()
{
    if (file_)
        std::fclose(file_);
}

void
FileTraceSource::fill(unsigned n)
{
    uint8_t buf[128];
    while (count_ < n && produced_ < total_) {
        fatal_if(std::fread(buf, recordBytes(), 1, file_) != 1,
                 "trace file truncated at record %llu",
                 (unsigned long long)produced_);
        ring_[(head_ + count_) % ring_.size()] = decodeRecord(buf);
        ++count_;
        ++produced_;
    }
}

const TraceRecord *
FileTraceSource::peek(unsigned ahead)
{
    panic_if(ahead >= LOOKAHEAD, "peek(%u) beyond lookahead", ahead);
    fill(ahead + 1);
    if (ahead >= count_)
        return nullptr;
    return &ring_[(head_ + ahead) % ring_.size()];
}

void
FileTraceSource::advance()
{
    fill(1);
    panic_if(count_ == 0, "advance past end of trace file");
    head_ = (head_ + 1) % ring_.size();
    --count_;
    ++consumed_;
}

bool
FileTraceSource::done()
{
    fill(1);
    return count_ == 0;
}

} // namespace replay::trace
