#include "trace/tracefile.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>

#include "trace/chunk.hh"
#include "util/logging.hh"
#include "util/sync.hh"
#include "x86/executor.hh"

namespace replay::trace {

namespace {

constexpr uint32_t MAGIC = 0x52504c54;  // "RPLT"
constexpr uint32_t VERSION = 2;

/** Header: magic, version, encoded record size, record count. */
constexpr size_t HEADER_BYTES = 4 + 4 + 4 + 8;

using wire::decodeRecord;
using wire::encodeRecord;

/** FNV-1a over a record payload — the per-record integrity guard. */
uint32_t
checksum(const uint8_t *buf, size_t len)
{
    return wire::fnv1a32(buf, len);
}

/** Fixed encoded payload size (every record encodes identically). */
size_t
recordBytes()
{
    return wire::recordWireBytes();
}

/** Write the header with the record-size length guard filled in. */
bool
writeHeader(std::FILE *file, uint64_t records)
{
    uint8_t buf[HEADER_BYTES];
    wire::Encoder e{buf};
    e.u32(MAGIC);
    e.u32(VERSION);
    e.u32(uint32_t(recordBytes()));
    e.u64(records);
    return std::fwrite(buf, sizeof(buf), 1, file) == 1;
}

} // anonymous namespace

std::string
TraceError::describe() const
{
    std::string out = traceErrorKindName(kind);
    out += ": ";
    out += message;
    if (!path.empty()) {
        out += " [";
        out += path;
        out += " @byte " + std::to_string(byteOffset);
        if (chunkIndex >= 0)
            out += " chunk " + std::to_string(chunkIndex);
        out += "]";
    }
    return out;
}

const char *
traceErrorKindName(TraceError::Kind kind)
{
    switch (kind) {
      case TraceError::Kind::NONE:            return "none";
      case TraceError::Kind::OPEN_FAILED:     return "open_failed";
      case TraceError::Kind::SHORT_HEADER:    return "short_header";
      case TraceError::Kind::BAD_MAGIC:       return "bad_magic";
      case TraceError::Kind::BAD_VERSION:     return "bad_version";
      case TraceError::Kind::BAD_RECORD_SIZE: return "bad_record_size";
      case TraceError::Kind::TRUNCATED:       return "truncated";
      case TraceError::Kind::BAD_CHECKSUM:    return "bad_checksum";
      case TraceError::Kind::WRITE_FAILED:    return "write_failed";
      case TraceError::Kind::FLUSH_FAILED:    return "flush_failed";
      case TraceError::Kind::READ_ERROR:      return "read_error";
      case TraceError::Kind::QUARANTINED:     return "quarantined";
      case TraceError::Kind::BAD_CHUNK:       return "bad_chunk";
      case TraceError::Kind::BAD_INDEX:       return "bad_index";
      case TraceError::Kind::BAD_CODEC:       return "bad_codec";
    }
    return "?";
}

namespace {

// Process-wide registry shared by every sweep worker; the mutex ranks
// above the pool/queue locks because workers consult it from inside
// running tasks (with no other lock held, but the rank keeps it
// honest if that ever changes).
sync::Mutex traceQuarantineMutex{"trace_registry",
                                 sync::rank::TRACE_REGISTRY};
std::set<std::string>
    traceQuarantineSet GUARDED_BY(traceQuarantineMutex);

} // anonymous namespace

bool
traceQuarantined(const std::string &path)
{
    sync::LockGuard lock(traceQuarantineMutex);
    return traceQuarantineSet.count(path) != 0;
}

void
quarantineTrace(const std::string &path)
{
    sync::LockGuard lock(traceQuarantineMutex);
    traceQuarantineSet.insert(path);
}

void
clearTraceQuarantine()
{
    sync::LockGuard lock(traceQuarantineMutex);
    traceQuarantineSet.clear();
}

size_t
traceQuarantineSize()
{
    sync::LockGuard lock(traceQuarantineMutex);
    return traceQuarantineSet.size();
}

void
TraceFileWriter::fail(TraceError::Kind kind, std::string msg)
{
    if (error_.ok())
        error_ = TraceError::make(kind, std::move(msg));
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

TraceFileWriter::TraceFileWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_) {
        fail(TraceError::Kind::OPEN_FAILED,
             "cannot open trace file '" + path + "' for writing");
        return;
    }
    if (!writeHeader(file_, 0)) {
        fail(TraceError::Kind::WRITE_FAILED,
             "cannot write trace header to '" + path + "'");
    }
}

TraceFileWriter::~TraceFileWriter()
{
    if (file_)
        close();
}

void
TraceFileWriter::write(const TraceRecord &rec)
{
    if (!file_)
        return;
    uint8_t buf[4 + wire::MAX_RECORD_BYTES];
    const size_t len = encodeRecord(rec, buf + 4);
    wire::store32(buf, checksum(buf + 4, len));
    if (std::fwrite(buf, 4 + len, 1, file_) != 1) {
        fail(TraceError::Kind::WRITE_FAILED, "short write to trace file");
        return;
    }
    ++count_;
}

TraceError
TraceFileWriter::close()
{
    if (!file_)
        return error_;
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        !writeHeader(file_, count_)) {
        fail(TraceError::Kind::WRITE_FAILED,
             "cannot finalize trace header");
        return error_;
    }
    if (std::fflush(file_) != 0) {
        fail(TraceError::Kind::FLUSH_FAILED, "cannot flush trace file");
        return error_;
    }
    if (std::fclose(file_) != 0)
        error_ = TraceError::make(TraceError::Kind::FLUSH_FAILED,
                                  "cannot close trace file");
    file_ = nullptr;
    return error_;
}

uint64_t
TraceFileWriter::dumpProgram(const x86::Program &program, uint64_t insts,
                             const std::string &path)
{
    TraceFileWriter writer(path);
    x86::Executor exec(program);
    for (uint64_t i = 0; i < insts; ++i)
        writer.write(TraceRecord::fromStep(exec.step()));
    const TraceError err = writer.close();
    fatal_if(!err.ok(), "dumping trace to '%s': %s (%s)", path.c_str(),
             err.message.c_str(), traceErrorKindName(err.kind));
    return insts;
}

void
FileTraceSource::fail(TraceError::Kind kind, std::string msg)
{
    if (error_.ok()) {
        // Anchor the diagnostic to the first unread byte: the header
        // for open-time failures, the failed record's offset afterward.
        const uint64_t offset =
            total_ ? HEADER_BYTES + produced_ * (4 + recordBytes()) : 0;
        error_ = TraceError::at(kind, std::move(msg), path_, offset);
    }
    // End the stream at the last valid record: no more fills.
    total_ = produced_;
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

FileTraceSource::FileTraceSource(const std::string &path)
    : path_(path), ring_(LOOKAHEAD * 2)
{
    if (traceQuarantined(path)) {
        fail(TraceError::Kind::QUARANTINED,
             "trace file '" + path +
                 "' is quarantined after persistent read errors");
        return;
    }
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_) {
        fail(TraceError::Kind::OPEN_FAILED,
             "cannot open trace file '" + path + "'");
        return;
    }
    uint8_t buf[HEADER_BYTES];
    if (std::fread(buf, sizeof(buf), 1, file_) != 1) {
        fail(TraceError::Kind::SHORT_HEADER,
             "trace file '" + path + "' has no header");
        return;
    }
    wire::Decoder d{buf};
    const uint32_t magic = d.u32();
    const uint32_t version = d.u32();
    const uint32_t rec_bytes = d.u32();
    const uint64_t records = d.u64();
    if (magic != MAGIC) {
        fail(TraceError::Kind::BAD_MAGIC,
             "'" + path + "' is not a trace file");
        return;
    }
    if (version != VERSION) {
        fail(TraceError::Kind::BAD_VERSION,
             "trace file '" + path + "' has unsupported version " +
                 std::to_string(version));
        return;
    }
    if (rec_bytes != recordBytes()) {
        fail(TraceError::Kind::BAD_RECORD_SIZE,
             "trace file '" + path + "' declares " +
                 std::to_string(rec_bytes) + "-byte records, expected " +
                 std::to_string(recordBytes()));
        return;
    }
    total_ = records;
}

FileTraceSource::~FileTraceSource()
{
    if (file_)
        std::fclose(file_);
}

void
FileTraceSource::fill(unsigned n)
{
    // Records are block-read in batches and decoded out of a reusable
    // buffer: one fread per ~64 records instead of one per record.
    // Error semantics are unchanged — every complete record before a
    // damaged one is still delivered, and the error is reported at the
    // same record index as the per-record reader did.
    constexpr size_t BATCH = 64;
    const size_t rec_size = 4 + recordBytes();
    unsigned attempts = 0;
    while (count_ < n && produced_ < total_) {
        const uint64_t want =
            std::min<uint64_t>({BATCH, total_ - produced_,
                                uint64_t(ring_.size() - count_)});
        batch_.resize(size_t(want) * rec_size);
        // An injected fault behaves exactly like an fread that
        // returned nothing with ferror set — it exercises the same
        // retry path real transient EIO does.
        const bool injected = ioInject_ && ioInject_();
        const size_t got =
            injected ? 0
                     : std::fread(batch_.data(), 1, batch_.size(), file_);
        const size_t full = got / rec_size;
        for (size_t i = 0; i < full; ++i) {
            const uint8_t *buf = batch_.data() + i * rec_size;
            wire::Decoder d{buf};
            if (d.u32() != checksum(buf + 4, recordBytes())) {
                fail(TraceError::Kind::BAD_CHECKSUM,
                     "trace file '" + path_ +
                         "' record " + std::to_string(produced_) +
                         " failed its checksum");
                return;
            }
            ring_[(head_ + count_) % ring_.size()] =
                decodeRecord(buf + 4);
            ++count_;
            ++produced_;
        }
        if (full < want) {
            // Short read: distinguish a *transient* stream error
            // (ferror — e.g. EIO on flaky storage, or the injected
            // kind above) from honest end-of-file inside a record
            // (feof — the file really is truncated).  Only the former
            // is worth retrying; misfiling it as TRUNCATED would
            // silently shorten the workload.
            if (injected || std::ferror(file_)) {
                if (attempts < MAX_READ_RETRIES) {
                    ++attempts;
                    ++ioRetries_;
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(50u << attempts));
                    std::clearerr(file_);
                    // Re-seek to the first unread record: the failed
                    // fread may have consumed a partial tail.
                    if (std::fseek(file_,
                                   long(HEADER_BYTES +
                                        produced_ * rec_size),
                                   SEEK_SET) == 0) {
                        continue;
                    }
                }
                // Persistently bad: quarantine the path so later
                // opens this session fail fast instead of re-paying
                // the retry storm.
                quarantineTrace(path_);
                fail(TraceError::Kind::READ_ERROR,
                     "trace file '" + path_ +
                         "' read error at record " +
                         std::to_string(produced_) + " (after " +
                         std::to_string(attempts) + " retries)");
                return;
            }
            fail(TraceError::Kind::TRUNCATED,
                 "trace file '" + path_ + "' truncated at record " +
                     std::to_string(produced_));
            return;
        }
        attempts = 0;
    }
}

const TraceRecord *
FileTraceSource::peek(unsigned ahead)
{
    panic_if(ahead >= LOOKAHEAD, "peek(%u) beyond lookahead", ahead);
    fill(ahead + 1);
    if (ahead >= count_)
        return nullptr;
    return &ring_[(head_ + ahead) % ring_.size()];
}

void
FileTraceSource::advance()
{
    fill(1);
    panic_if(count_ == 0, "advance past end of trace file");
    head_ = (head_ + 1) % ring_.size();
    --count_;
    ++consumed_;
}

bool
FileTraceSource::done()
{
    fill(1);
    return count_ == 0;
}

} // namespace replay::trace
