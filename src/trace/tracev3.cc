#include "trace/tracev3.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "trace/chunk.hh"
#include "util/logging.hh"
#include "x86/executor.hh"

#if defined(REPLAY_HAVE_ZLIB)
#include <zlib.h>
#endif

#if __has_include(<sys/mman.h>)
#define REPLAY_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace replay::trace {

const char *
v3CodecName(V3Codec codec)
{
    switch (codec) {
      case V3Codec::RAW:  return "raw";
      case V3Codec::ZLIB: return "zlib";
    }
    return "?";
}

bool
v3ZlibAvailable()
{
#if defined(REPLAY_HAVE_ZLIB)
    return true;
#else
    return false;
#endif
}

V3Codec
V3Options::defaultCodec()
{
    return v3ZlibAvailable() ? V3Codec::ZLIB : V3Codec::RAW;
}

namespace {

using Kind = TraceError::Kind;

/** Serialize the 40-byte v3 header; checksum covers the first 36. */
void
encodeHeader(uint8_t *buf, uint64_t records, V3Codec codec,
             uint32_t chunk_records, uint64_t index_offset)
{
    wire::Encoder e{buf};
    e.u32(v3::MAGIC);
    e.u32(v3::VERSION);
    e.u32(uint32_t(wire::recordWireBytes()));
    e.u64(records);
    e.u32(uint32_t(codec));
    e.u32(chunk_records);
    e.u64(index_offset);
    e.u32(wire::fnv1a32(buf, v3::HDR_OFF_CHECKSUM));
}

/** Everything the header/footer/index describe about a container. */
struct Meta
{
    TraceError error;
    uint64_t fileBytes = 0;
    uint32_t recordBytes = 0;
    uint64_t recordCount = 0;
    V3Codec codec = V3Codec::RAW;
    uint32_t chunkRecords = 0;
    uint64_t indexOffset = 0;
    std::vector<V3Info::Chunk> chunks;

    bool ok() const { return error.ok(); }
};

/**
 * Parse and cross-check header, footer, and index through @p readAt
 * (absolute offset → buffer; false on I/O failure).  This is the one
 * structural validator: the mmap reader, the buffered reader, and the
 * inspector all agree on what a well-formed container is because they
 * all run this.
 */
Meta
parseContainer(const std::string &path, uint64_t file_bytes,
               const std::function<bool(uint64_t, size_t, uint8_t *)>
                   &readAt)
{
    Meta m;
    m.fileBytes = file_bytes;
    auto fail = [&](Kind kind, std::string msg, uint64_t offset) {
        m.error = TraceError::at(kind, std::move(msg), path, offset);
        return m;
    };

    if (file_bytes < v3::HEADER_BYTES)
        return fail(Kind::SHORT_HEADER,
                    "trace file '" + path + "' has no v3 header", 0);

    uint8_t hdr[v3::HEADER_BYTES];
    if (!readAt(0, sizeof(hdr), hdr))
        return fail(Kind::READ_ERROR,
                    "cannot read v3 header of '" + path + "'", 0);
    wire::Decoder d{hdr};
    const uint32_t magic = d.u32();
    const uint32_t version = d.u32();
    const uint32_t rec_bytes = d.u32();
    const uint64_t records = d.u64();
    const uint32_t codec = d.u32();
    const uint32_t chunk_records = d.u32();
    const uint64_t index_offset = d.u64();
    const uint32_t hdr_sum = d.u32();

    if (magic != v3::MAGIC)
        return fail(Kind::BAD_MAGIC, "'" + path + "' is not a trace file",
                    v3::HDR_OFF_MAGIC);
    if (version != v3::VERSION)
        return fail(Kind::BAD_VERSION,
                    "trace file '" + path + "' has version " +
                        std::to_string(version) + ", expected 3",
                    v3::HDR_OFF_VERSION);
    if (hdr_sum != wire::fnv1a32(hdr, v3::HDR_OFF_CHECKSUM))
        return fail(Kind::BAD_CHECKSUM,
                    "trace file '" + path +
                        "' header failed its checksum",
                    v3::HDR_OFF_CHECKSUM);
    if (rec_bytes != wire::recordWireBytes())
        return fail(Kind::BAD_RECORD_SIZE,
                    "trace file '" + path + "' declares " +
                        std::to_string(rec_bytes) +
                        "-byte records, expected " +
                        std::to_string(wire::recordWireBytes()),
                    v3::HDR_OFF_RECORD_BYTES);
    if (codec > uint32_t(V3Codec::ZLIB))
        return fail(Kind::BAD_CODEC,
                    "trace file '" + path + "' uses unknown codec " +
                        std::to_string(codec),
                    v3::HDR_OFF_CODEC);
    if (codec == uint32_t(V3Codec::ZLIB) && !v3ZlibAvailable())
        return fail(Kind::BAD_CODEC,
                    "trace file '" + path +
                        "' is zlib-compressed but this build has no zlib",
                    v3::HDR_OFF_CODEC);

    m.recordBytes = rec_bytes;
    m.recordCount = records;
    m.codec = V3Codec(codec);
    m.chunkRecords = chunk_records;
    m.indexOffset = index_offset;

    // Footer: a file that ends before (or inside) it was cut off
    // mid-write — the chunks may be fine, but without a trustworthy
    // index the container is TRUNCATED, same as a v2 file that ends
    // inside a record.
    if (file_bytes < v3::HEADER_BYTES + v3::FOOTER_BYTES)
        return fail(Kind::TRUNCATED,
                    "trace file '" + path + "' ends before its footer",
                    file_bytes);
    const uint64_t footer_off = file_bytes - v3::FOOTER_BYTES;
    uint8_t ftr[v3::FOOTER_BYTES];
    if (!readAt(footer_off, sizeof(ftr), ftr))
        return fail(Kind::READ_ERROR,
                    "cannot read v3 footer of '" + path + "'",
                    footer_off);
    wire::Decoder fd{ftr};
    const uint64_t ftr_index_offset = fd.u64();
    const uint32_t chunk_count = fd.u32();
    const uint32_t index_sum = fd.u32();
    fd.u32(); // reserved
    const uint32_t ftr_magic = fd.u32();

    if (ftr_magic != v3::FOOTER_MAGIC)
        return fail(Kind::TRUNCATED,
                    "trace file '" + path +
                        "' has no footer magic (cut off mid-write?)",
                    file_bytes - 4);
    if (ftr_index_offset != index_offset)
        return fail(Kind::BAD_INDEX,
                    "trace file '" + path +
                        "' header and footer disagree on the index "
                        "offset (stale index?)",
                    footer_off);
    const uint64_t index_bytes =
        uint64_t(chunk_count) * v3::INDEX_ENTRY_BYTES;
    if (index_offset < v3::HEADER_BYTES ||
        index_offset + index_bytes + v3::FOOTER_BYTES != file_bytes)
        return fail(Kind::BAD_INDEX,
                    "trace file '" + path +
                        "' index does not tile the file (offset " +
                        std::to_string(index_offset) + ", " +
                        std::to_string(chunk_count) + " chunks, " +
                        std::to_string(file_bytes) + " bytes)",
                    footer_off);

    std::vector<uint8_t> index;
    index.resize(size_t(index_bytes));
    if (index_bytes &&
        !readAt(index_offset, index.size(), index.data()))
        return fail(Kind::READ_ERROR,
                    "cannot read v3 index of '" + path + "'",
                    index_offset);
    if (wire::fnv1a32(index.data(), index.size()) != index_sum)
        return fail(Kind::BAD_INDEX,
                    "trace file '" + path +
                        "' index failed its checksum",
                    index_offset);

    // Structural walk: chunks must tile [header, index) in order and
    // the record ranges must tile [0, recordCount) exactly.  A stale
    // index (record count no longer matching) or a duplicated/spliced
    // chunk shows up here before any payload is touched.
    m.chunks.reserve(chunk_count);
    uint64_t next_offset = v3::HEADER_BYTES;
    uint64_t next_record = 0;
    for (uint32_t i = 0; i < chunk_count; ++i) {
        wire::Decoder ed{index.data() +
                         size_t(i) * v3::INDEX_ENTRY_BYTES};
        V3Info::Chunk c;
        c.offset = ed.u64();
        c.firstRecord = ed.u64();
        c.payloadBytes = ed.u32();
        c.records = ed.u32();
        c.checksum = ed.u32();
        if (c.offset != next_offset || c.firstRecord != next_record ||
            c.records == 0) {
            m.error = TraceError::at(
                Kind::BAD_INDEX,
                "trace file '" + path + "' index entry " +
                    std::to_string(i) +
                    " does not tile the container (offset " +
                    std::to_string(c.offset) + ", first record " +
                    std::to_string(c.firstRecord) + ")",
                path,
                index_offset + uint64_t(i) * v3::INDEX_ENTRY_BYTES,
                int64_t(i));
            return m;
        }
        next_offset = c.offset + v3::CHUNK_HEADER_BYTES + c.payloadBytes;
        next_record = c.firstRecord + c.records;
        m.chunks.push_back(c);
    }
    if (next_offset != index_offset || next_record != records) {
        m.error = TraceError::at(
            Kind::BAD_INDEX,
            "trace file '" + path + "' index covers " +
                std::to_string(next_record) + " records, header claims " +
                std::to_string(records) + " (stale index?)",
            path, index_offset);
        return m;
    }
    return m;
}

} // anonymous namespace

// --------------------------------------------------------------------
// Writer
// --------------------------------------------------------------------

void
TraceV3Writer::fail(TraceError::Kind kind, std::string msg)
{
    if (error_.ok())
        error_ = TraceError::at(kind, std::move(msg), path_, fileOffset_);
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

TraceV3Writer::TraceV3Writer(const std::string &path, V3Options opts)
    : path_(path), opts_(opts)
{
    if (opts_.chunkRecords == 0)
        opts_.chunkRecords = 1;
    if (opts_.codec == V3Codec::ZLIB && !v3ZlibAvailable())
        opts_.codec = V3Codec::RAW;
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_) {
        fail(TraceError::Kind::OPEN_FAILED,
             "cannot open trace file '" + path + "' for writing");
        return;
    }
    uint8_t hdr[v3::HEADER_BYTES];
    encodeHeader(hdr, 0, opts_.codec, opts_.chunkRecords, 0);
    if (std::fwrite(hdr, sizeof(hdr), 1, file_) != 1) {
        fail(TraceError::Kind::WRITE_FAILED,
             "cannot write v3 header to '" + path + "'");
        return;
    }
    fileOffset_ = v3::HEADER_BYTES;
    raw_.reserve(size_t(opts_.chunkRecords) * wire::recordWireBytes());
}

TraceV3Writer::~TraceV3Writer()
{
    if (file_)
        close();
}

void
TraceV3Writer::write(const TraceRecord &rec)
{
    if (!file_)
        return;
    const size_t rec_bytes = wire::recordWireBytes();
    raw_.resize(raw_.size() + rec_bytes);
    wire::encodeRecord(rec, raw_.data() + raw_.size() - rec_bytes);
    ++pendingRecords_;
    ++count_;
    if (pendingRecords_ >= opts_.chunkRecords)
        flushChunk();
}

bool
TraceV3Writer::flushChunk()
{
    if (!file_ || pendingRecords_ == 0)
        return file_ != nullptr;

    const uint8_t *payload = raw_.data();
    uint32_t payload_bytes = uint32_t(raw_.size());
#if defined(REPLAY_HAVE_ZLIB)
    if (opts_.codec == V3Codec::ZLIB) {
        uLongf dst_len = compressBound(uLong(raw_.size()));
        zbuf_.resize(dst_len);
        if (compress2(zbuf_.data(), &dst_len, raw_.data(),
                      uLong(raw_.size()), Z_DEFAULT_COMPRESSION) != Z_OK) {
            fail(TraceError::Kind::WRITE_FAILED,
                 "zlib compression failed for chunk " +
                     std::to_string(index_.size()));
            return false;
        }
        payload = zbuf_.data();
        payload_bytes = uint32_t(dst_len);
    }
#endif

    PendingEntry entry;
    entry.offset = fileOffset_;
    entry.firstRecord = count_ - pendingRecords_;
    entry.payloadBytes = payload_bytes;
    entry.records = pendingRecords_;
    entry.checksum = wire::chunkChecksum(payload, payload_bytes);

    uint8_t hdr[v3::CHUNK_HEADER_BYTES];
    wire::Encoder e{hdr};
    e.u32(v3::CHUNK_MAGIC);
    e.u32(payload_bytes);
    e.u32(uint32_t(raw_.size()));
    e.u32(entry.records);
    e.u64(entry.firstRecord);
    e.u32(entry.checksum);

    if (std::fwrite(hdr, sizeof(hdr), 1, file_) != 1 ||
        std::fwrite(payload, payload_bytes, 1, file_) != 1) {
        fail(TraceError::Kind::WRITE_FAILED,
             "short write of chunk " + std::to_string(index_.size()));
        return false;
    }
    fileOffset_ += v3::CHUNK_HEADER_BYTES + payload_bytes;
    index_.push_back(entry);
    raw_.clear();
    pendingRecords_ = 0;
    return true;
}

TraceError
TraceV3Writer::close()
{
    if (!file_)
        return error_;
    if (!flushChunk())
        return error_;

    const uint64_t index_offset = fileOffset_;
    std::vector<uint8_t> index(index_.size() * v3::INDEX_ENTRY_BYTES);
    for (size_t i = 0; i < index_.size(); ++i) {
        wire::Encoder e{index.data() + i * v3::INDEX_ENTRY_BYTES};
        e.u64(index_[i].offset);
        e.u64(index_[i].firstRecord);
        e.u32(index_[i].payloadBytes);
        e.u32(index_[i].records);
        e.u32(index_[i].checksum);
    }
    uint8_t ftr[v3::FOOTER_BYTES];
    wire::Encoder fe{ftr};
    fe.u64(index_offset);
    fe.u32(uint32_t(index_.size()));
    fe.u32(wire::fnv1a32(index.data(), index.size()));
    fe.u32(0);
    fe.u32(v3::FOOTER_MAGIC);

    if ((!index.empty() &&
         std::fwrite(index.data(), index.size(), 1, file_) != 1) ||
        std::fwrite(ftr, sizeof(ftr), 1, file_) != 1) {
        fail(TraceError::Kind::WRITE_FAILED,
             "cannot write v3 index/footer");
        return error_;
    }

    uint8_t hdr[v3::HEADER_BYTES];
    encodeHeader(hdr, count_, opts_.codec, opts_.chunkRecords,
                 index_offset);
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(hdr, sizeof(hdr), 1, file_) != 1) {
        fail(TraceError::Kind::WRITE_FAILED,
             "cannot finalize v3 header");
        return error_;
    }
    if (std::fflush(file_) != 0) {
        fail(TraceError::Kind::FLUSH_FAILED, "cannot flush trace file");
        return error_;
    }
    if (std::fclose(file_) != 0)
        error_ = TraceError::at(TraceError::Kind::FLUSH_FAILED,
                                "cannot close trace file", path_,
                                fileOffset_);
    file_ = nullptr;
    return error_;
}

uint64_t
TraceV3Writer::dumpProgram(const x86::Program &program, uint64_t insts,
                           const std::string &path, V3Options opts)
{
    TraceV3Writer writer(path, opts);
    x86::Executor exec(program);
    for (uint64_t i = 0; i < insts; ++i)
        writer.write(TraceRecord::fromStep(exec.step()));
    const TraceError err = writer.close();
    fatal_if(!err.ok(), "dumping v3 trace to '%s': %s", path.c_str(),
             err.describe().c_str());
    return insts;
}

// --------------------------------------------------------------------
// Source
// --------------------------------------------------------------------

void
TraceV3Source::fail(TraceError::Kind kind, std::string msg,
                    uint64_t offset, int64_t chunk)
{
    if (error_.ok())
        error_ = TraceError::at(kind, std::move(msg), path_, offset,
                                chunk);
    // End the stream at the last fully-validated record: whatever is
    // already decoded in the window stays deliverable, nothing past it
    // will be loaded.
    uint64_t loaded = consumed_;
    for (const DecodedChunk &c : window_)
        loaded = std::max(loaded, c.firstRecord + c.recs.size());
    effTotal_ = std::min(effTotal_, loaded);
    nextChunk_ = index_.size();
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
#if defined(REPLAY_HAVE_MMAP)
    if (map_) {
        // Keep the mapping alive: decoded records copied out already,
        // but locate() may still return pointers into window_, never
        // into the map, so unmapping now is safe.
        munmap(const_cast<uint8_t *>(map_), mapLen_);
        map_ = nullptr;
        mapLen_ = 0;
    }
#endif
}

TraceV3Source::TraceV3Source(const std::string &path, Options opts)
    : path_(path), opts_(opts)
{
    if (traceQuarantined(path)) {
        fail(TraceError::Kind::QUARANTINED,
             "trace file '" + path +
                 "' is quarantined after persistent read errors",
             0);
        return;
    }
    if (!openAndValidate(path))
        return;
    effTotal_ = total_;
    if (opts_.limitRecords && opts_.limitRecords < effTotal_)
        effTotal_ = opts_.limitRecords;
}

TraceV3Source::~TraceV3Source()
{
    if (file_)
        std::fclose(file_);
#if defined(REPLAY_HAVE_MMAP)
    if (map_)
        munmap(const_cast<uint8_t *>(map_), mapLen_);
#endif
}

bool
TraceV3Source::openAndValidate(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_) {
        fail(TraceError::Kind::OPEN_FAILED,
             "cannot open trace file '" + path + "'", 0);
        return false;
    }
    if (std::fseek(file_, 0, SEEK_END) != 0) {
        fail(TraceError::Kind::READ_ERROR,
             "cannot size trace file '" + path + "'", 0);
        return false;
    }
    const long end = std::ftell(file_);
    if (end < 0) {
        fail(TraceError::Kind::READ_ERROR,
             "cannot size trace file '" + path + "'", 0);
        return false;
    }
    const uint64_t file_bytes = uint64_t(end);

#if defined(REPLAY_HAVE_MMAP)
    const bool no_mmap_env =
        std::getenv("REPLAY_TRACEV3_NO_MMAP") != nullptr;
    if (opts_.preferMmap && !no_mmap_env &&
        file_bytes >= v3::HEADER_BYTES) {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd >= 0) {
            void *addr = mmap(nullptr, size_t(file_bytes), PROT_READ,
                              MAP_PRIVATE, fd, 0);
            ::close(fd);
            if (addr != MAP_FAILED) {
                map_ = static_cast<const uint8_t *>(addr);
                mapLen_ = size_t(file_bytes);
                // The mapping replaces the stream entirely.
                std::fclose(file_);
                file_ = nullptr;
            }
        }
    }
#endif

    auto readAt = [this](uint64_t offset, size_t len,
                         uint8_t *dst) -> bool {
        if (map_) {
            if (offset + len > mapLen_)
                return false;
            std::memcpy(dst, map_ + offset, len);
            return true;
        }
        return std::fseek(file_, long(offset), SEEK_SET) == 0 &&
               std::fread(dst, 1, len, file_) == len;
    };

    Meta m = parseContainer(path, file_bytes, readAt);
    if (!m.ok()) {
        const TraceError err = m.error;
        fail(err.kind, err.message, err.byteOffset, err.chunkIndex);
        return false;
    }
    total_ = m.recordCount;
    recordBytes_ = m.recordBytes;
    codec_ = m.codec;
    index_.reserve(m.chunks.size());
    for (const V3Info::Chunk &c : m.chunks)
        index_.push_back(IndexEntry{c.offset, c.firstRecord,
                                    c.payloadBytes, c.records,
                                    c.checksum});
    return true;
}

const uint8_t *
TraceV3Source::loadBytes(uint64_t offset, size_t len, size_t chunk)
{
    unsigned attempts = 0;
    for (;;) {
        // The injected fault behaves exactly like a read that came
        // back short with the stream in error: retry with backoff,
        // then quarantine.  It drives the identical path on both the
        // mmap and buffered modes.
        const bool injected = ioInject_ && ioInject_();
        if (!injected) {
            if (map_) {
                if (offset + len > mapLen_) {
                    fail(TraceError::Kind::TRUNCATED,
                         "trace file '" + path_ +
                             "' ends inside chunk " +
                             std::to_string(chunk),
                         offset, int64_t(chunk));
                    return nullptr;
                }
                return map_ + offset;
            }
            if (!file_)
                return nullptr;
            ioBuf_.resize(len);
            if (std::fseek(file_, long(offset), SEEK_SET) == 0 &&
                std::fread(ioBuf_.data(), 1, len, file_) == len)
                return ioBuf_.data();
            if (file_ && std::feof(file_) && !std::ferror(file_)) {
                fail(TraceError::Kind::TRUNCATED,
                     "trace file '" + path_ + "' ends inside chunk " +
                         std::to_string(chunk),
                     offset, int64_t(chunk));
                return nullptr;
            }
        }
        if (attempts < MAX_READ_RETRIES) {
            ++attempts;
            ++ioRetries_;
            std::this_thread::sleep_for(
                std::chrono::microseconds(50u << attempts));
            if (file_)
                std::clearerr(file_);
            continue;
        }
        quarantineTrace(path_);
        fail(TraceError::Kind::READ_ERROR,
             "trace file '" + path_ + "' read error in chunk " +
                 std::to_string(chunk) + " (after " +
                 std::to_string(attempts) + " retries)",
             offset, int64_t(chunk));
        return nullptr;
    }
}

bool
TraceV3Source::loadNextChunk()
{
    if (nextChunk_ >= index_.size())
        return false;
    const size_t ci = nextChunk_;
    const IndexEntry entry = index_[ci];

    const uint8_t *hdr =
        loadBytes(entry.offset, v3::CHUNK_HEADER_BYTES, ci);
    if (!hdr)
        return false;
    wire::Decoder d{hdr};
    const uint32_t magic = d.u32();
    const uint32_t payload_bytes = d.u32();
    const uint32_t raw_bytes = d.u32();
    const uint32_t records = d.u32();
    const uint64_t first_record = d.u64();
    const uint32_t sum = d.u32();

    if (magic != v3::CHUNK_MAGIC) {
        fail(TraceError::Kind::BAD_CHUNK,
             "trace file '" + path_ + "' chunk " + std::to_string(ci) +
                 " has no chunk magic",
             entry.offset, int64_t(ci));
        return false;
    }
    // The chunk header must agree with the (already FNV-verified)
    // index entry.  A duplicated or spliced chunk carries the wrong
    // firstRecord; a stale one the wrong record count or checksum.
    if (payload_bytes != entry.payloadBytes ||
        records != entry.records ||
        first_record != entry.firstRecord || sum != entry.checksum ||
        uint64_t(raw_bytes) != uint64_t(records) * recordBytes_) {
        fail(TraceError::Kind::BAD_CHUNK,
             "trace file '" + path_ + "' chunk " + std::to_string(ci) +
                 " disagrees with the index (duplicated or stale "
                 "chunk?)",
             entry.offset, int64_t(ci));
        return false;
    }

    const uint8_t *payload =
        loadBytes(entry.offset + v3::CHUNK_HEADER_BYTES, payload_bytes,
                  ci);
    if (!payload)
        return false;
    if (wire::chunkChecksum(payload, payload_bytes) != sum) {
        fail(TraceError::Kind::BAD_CHECKSUM,
             "trace file '" + path_ + "' chunk " + std::to_string(ci) +
                 " payload failed its checksum",
             entry.offset + v3::CHUNK_HEADER_BYTES, int64_t(ci));
        return false;
    }

    const uint8_t *raw = payload;
    if (codec_ == V3Codec::ZLIB) {
#if defined(REPLAY_HAVE_ZLIB)
        rawBuf_.resize(raw_bytes);
        uLongf dst_len = raw_bytes;
        if (uncompress(rawBuf_.data(), &dst_len, payload,
                       payload_bytes) != Z_OK ||
            dst_len != raw_bytes) {
            fail(TraceError::Kind::BAD_CHUNK,
                 "trace file '" + path_ + "' chunk " +
                     std::to_string(ci) + " does not inflate to " +
                     std::to_string(raw_bytes) + " bytes",
                 entry.offset, int64_t(ci));
            return false;
        }
        raw = rawBuf_.data();
#else
        fail(TraceError::Kind::BAD_CODEC,
             "trace file '" + path_ +
                 "' is zlib-compressed but this build has no zlib",
             entry.offset, int64_t(ci));
        return false;
#endif
    }

    DecodedChunk dc;
    dc.firstRecord = first_record;
    if (!pool_.empty()) {
        dc.recs = std::move(pool_.back());
        pool_.pop_back();
    }
    dc.recs.resize(records);
    for (uint32_t i = 0; i < records; ++i)
        dc.recs[i] = wire::decodeRecord(raw + size_t(i) * recordBytes_);
    window_.push_back(std::move(dc));
    nextChunk_ = ci + 1;
    return true;
}

void
TraceV3Source::recycleFront()
{
    while (!window_.empty() &&
           window_.front().firstRecord + window_.front().recs.size() <=
               consumed_) {
        pool_.push_back(std::move(window_.front().recs));
        window_.erase(window_.begin());
    }
}

const TraceRecord *
TraceV3Source::locate(uint64_t rec)
{
    for (;;) {
        if (rec >= effTotal_)
            return nullptr;
        for (DecodedChunk &c : window_) {
            if (rec >= c.firstRecord &&
                rec < c.firstRecord + c.recs.size())
                return &c.recs[rec - c.firstRecord];
        }
        if (!loadNextChunk())
            return nullptr; // error clamped effTotal_, or index done
    }
}

const TraceRecord *
TraceV3Source::peek(unsigned ahead)
{
    panic_if(ahead >= LOOKAHEAD, "peek(%u) beyond lookahead", ahead);
    return locate(consumed_ + ahead);
}

void
TraceV3Source::advance()
{
    panic_if(locate(consumed_) == nullptr,
             "advance past end of v3 trace");
    ++consumed_;
    recycleFront();
}

bool
TraceV3Source::done()
{
    return locate(consumed_) == nullptr;
}

bool
TraceV3Source::seekToRecord(uint64_t n)
{
    if (!error_.ok())
        return false;
    const uint64_t target = std::min(n, effTotal_);

    // Drop the decoded window and point the loader at the chunk owning
    // the target; chunks before it are never touched.
    for (DecodedChunk &c : window_)
        pool_.push_back(std::move(c.recs));
    window_.clear();
    size_t lo = 0, hi = index_.size();
    while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (index_[mid].firstRecord + index_[mid].records <= target)
            lo = mid + 1;
        else
            hi = mid;
    }
    nextChunk_ = lo;
    consumed_ = target;
    base_ = target;
    return true;
}

// --------------------------------------------------------------------
// Inspection + open-by-sniff
// --------------------------------------------------------------------

uint64_t
V3Info::payloadBytes() const
{
    uint64_t sum = 0;
    for (const Chunk &c : chunks)
        sum += c.payloadBytes;
    return sum;
}

V3Info
inspectV3(const std::string &path)
{
    V3Info info;
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file) {
        info.error = TraceError::at(TraceError::Kind::OPEN_FAILED,
                                    "cannot open trace file '" + path +
                                        "'",
                                    path, 0);
        return info;
    }
    uint64_t file_bytes = 0;
    if (std::fseek(file, 0, SEEK_END) == 0) {
        const long end = std::ftell(file);
        if (end > 0)
            file_bytes = uint64_t(end);
    }
    auto readAt = [file](uint64_t offset, size_t len,
                         uint8_t *dst) -> bool {
        return std::fseek(file, long(offset), SEEK_SET) == 0 &&
               std::fread(dst, 1, len, file) == len;
    };
    Meta m = parseContainer(path, file_bytes, readAt);
    std::fclose(file);

    info.error = m.error;
    info.fileBytes = m.fileBytes;
    info.recordBytes = m.recordBytes;
    info.recordCount = m.recordCount;
    info.codec = m.codec;
    info.chunkRecords = m.chunkRecords;
    info.indexOffset = m.indexOffset;
    info.chunks = std::move(m.chunks);
    return info;
}

std::unique_ptr<TraceSource>
openTraceFile(const std::string &path, TraceError *err, uint64_t limit)
{
    TraceError sniff_err;
    uint32_t version = 0;
    {
        std::FILE *file = std::fopen(path.c_str(), "rb");
        if (!file) {
            sniff_err = TraceError::at(TraceError::Kind::OPEN_FAILED,
                                       "cannot open trace file '" +
                                           path + "'",
                                       path, 0);
        } else {
            uint8_t buf[8];
            if (std::fread(buf, sizeof(buf), 1, file) != 1) {
                sniff_err = TraceError::at(
                    TraceError::Kind::SHORT_HEADER,
                    "trace file '" + path + "' has no header", path, 0);
            } else if (wire::load32(buf) != v3::MAGIC) {
                sniff_err =
                    TraceError::at(TraceError::Kind::BAD_MAGIC,
                                   "'" + path + "' is not a trace file",
                                   path, 0);
            } else {
                version = wire::load32(buf + 4);
            }
            std::fclose(file);
        }
    }
    if (!sniff_err.ok()) {
        if (err)
            *err = sniff_err;
        return nullptr;
    }

    std::unique_ptr<TraceSource> src;
    if (version == 2) {
        auto v2 = std::make_unique<FileTraceSource>(path);
        if (err)
            *err = v2->error();
        src = std::move(v2);
    } else if (version == v3::VERSION) {
        TraceV3Source::Options opts;
        opts.limitRecords = limit;
        auto v3src = std::make_unique<TraceV3Source>(path, opts);
        if (err)
            *err = v3src->error();
        src = std::move(v3src);
    } else {
        if (err)
            *err = TraceError::at(
                TraceError::Kind::BAD_VERSION,
                "trace file '" + path + "' has unsupported version " +
                    std::to_string(version),
                path, v3::HDR_OFF_VERSION);
    }
    return src;
}

} // namespace replay::trace
