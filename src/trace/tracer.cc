#include "trace/tracer.hh"

#include "util/logging.hh"

namespace replay::trace {

ExecutorTraceSource::ExecutorTraceSource(const x86::Program &program,
                                         uint64_t max_insts)
    : exec_(program), budget_(max_insts)
{
}

void
ExecutorTraceSource::fill(unsigned n)
{
    while (count_ < n && budget_ > 0) {
        const size_t slot = (head_ + count_) % ring_.size();
        ring_[slot] = TraceRecord::fromStep(exec_.step());
        ++count_;
        --budget_;
    }
}

const TraceRecord *
ExecutorTraceSource::peek(unsigned ahead)
{
    panic_if(ahead >= LOOKAHEAD, "peek(%u) beyond lookahead", ahead);
    fill(ahead + 1);
    if (ahead >= count_)
        return nullptr;
    return &ring_[(head_ + ahead) % ring_.size()];
}

void
ExecutorTraceSource::advance()
{
    fill(1);
    panic_if(count_ == 0, "advance past end of trace");
    head_ = (head_ + 1) % ring_.size();
    --count_;
    ++consumed_;
}

bool
ExecutorTraceSource::done()
{
    fill(1);
    return count_ == 0;
}

std::vector<TraceRecord>
collectTrace(const x86::Program &program, uint64_t max_insts)
{
    std::vector<TraceRecord> records;
    records.reserve(max_insts);
    x86::Executor exec(program);
    for (uint64_t i = 0; i < max_insts; ++i)
        records.push_back(TraceRecord::fromStep(exec.step()));
    return records;
}

} // namespace replay::trace
