/**
 * @file
 * Trace-file serialization.
 *
 * The paper's workloads are hardware-captured trace *files* (§5.1.1);
 * this module provides the equivalent persistent form for our records:
 * a compact binary format holding, per retired x86 instruction, the
 * instruction encoding, register state changes, and memory
 * transactions.  A written file can be replayed through the simulator
 * with FileTraceSource, decoupling trace generation from simulation
 * exactly as the paper's infrastructure did.
 */

#ifndef REPLAY_TRACE_TRACEFILE_HH
#define REPLAY_TRACE_TRACEFILE_HH

#include <cstdio>
#include <memory>
#include <string>

#include "trace/record.hh"

namespace replay::trace {

/** Streaming writer for the binary trace format. */
class TraceFileWriter
{
  public:
    /** Open (truncate) @p path; fatal on failure. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record. */
    void write(const TraceRecord &rec);

    /** Finalize the header (record count) and close. */
    void close();

    uint64_t written() const { return count_; }

    /** Convenience: dump the first @p insts of a program to @p path. */
    static uint64_t dumpProgram(const x86::Program &program,
                                uint64_t insts, const std::string &path);

  private:
    std::FILE *file_ = nullptr;
    uint64_t count_ = 0;
};

/** TraceSource reading a file produced by TraceFileWriter. */
class FileTraceSource : public TraceSource
{
  public:
    /** Open @p path; fatal on missing/corrupt header. */
    explicit FileTraceSource(const std::string &path);
    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    const TraceRecord *peek(unsigned ahead = 0) override;
    void advance() override;
    bool done() override;
    uint64_t consumed() const override { return consumed_; }

    /** Total records in the file. */
    uint64_t totalRecords() const { return total_; }

  private:
    void fill(unsigned n);

    std::FILE *file_ = nullptr;
    uint64_t total_ = 0;
    uint64_t produced_ = 0;
    uint64_t consumed_ = 0;

    std::vector<TraceRecord> ring_;
    size_t head_ = 0;
    size_t count_ = 0;
};

} // namespace replay::trace

#endif // REPLAY_TRACE_TRACEFILE_HH
