/**
 * @file
 * Trace-file serialization.
 *
 * The paper's workloads are hardware-captured trace *files* (§5.1.1);
 * this module provides the equivalent persistent form for our records:
 * a compact binary format holding, per retired x86 instruction, the
 * instruction encoding, register state changes, and memory
 * transactions.  A written file can be replayed through the simulator
 * with FileTraceSource, decoupling trace generation from simulation
 * exactly as the paper's infrastructure did.
 *
 * Format v2 hardens the container against corrupt or truncated input:
 * the header carries magic/version plus the encoded record size (a
 * length guard against version skew), and every record is prefixed by
 * a 32-bit FNV-1a checksum of its payload.  I/O failures surface as a
 * recoverable TraceError instead of terminating the process — a
 * damaged file simply yields its valid prefix and reports why it
 * stopped.
 */

#ifndef REPLAY_TRACE_TRACEFILE_HH
#define REPLAY_TRACE_TRACEFILE_HH

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "trace/record.hh"

namespace replay::trace {

/** Status/expected-style error descriptor for trace I/O. */
struct TraceError
{
    enum class Kind : uint8_t
    {
        NONE,               ///< no error
        OPEN_FAILED,        ///< file could not be opened
        SHORT_HEADER,       ///< file ends inside the header
        BAD_MAGIC,          ///< not a trace file
        BAD_VERSION,        ///< unsupported format version
        BAD_RECORD_SIZE,    ///< header record size != decoder's
        TRUNCATED,          ///< file ends inside a record (feof)
        BAD_CHECKSUM,       ///< record payload failed its checksum
        WRITE_FAILED,       ///< fwrite reported a short write
        FLUSH_FAILED,       ///< flush/close failed
        READ_ERROR,         ///< ferror persisted through retries
        QUARANTINED,        ///< trace previously failed persistently
        BAD_CHUNK,          ///< v3 chunk header corrupt or stale
        BAD_INDEX,          ///< v3 footer/index corrupt or inconsistent
        BAD_CODEC,          ///< v3 chunk codec unknown or unavailable
    };

    Kind kind = Kind::NONE;
    std::string message;

    // Diagnostic anchors: every error names the file it came from and
    // where in it the failure was detected, so an operator can go from
    // a log line straight to a hexdump offset.
    std::string path;       ///< offending trace file ("" = not file-bound)
    uint64_t byteOffset = 0; ///< file offset nearest the failure
    int64_t chunkIndex = -1; ///< v3 chunk ordinal, -1 = not chunk-scoped

    bool ok() const { return kind == Kind::NONE; }

    static TraceError
    make(Kind kind, std::string msg)
    {
        TraceError err;
        err.kind = kind;
        err.message = std::move(msg);
        return err;
    }

    /** Error anchored to a byte offset (and optionally a chunk). */
    static TraceError
    at(Kind kind, std::string msg, std::string file_path,
       uint64_t byte_offset, int64_t chunk_index = -1)
    {
        TraceError err;
        err.kind = kind;
        err.message = std::move(msg);
        err.path = std::move(file_path);
        err.byteOffset = byte_offset;
        err.chunkIndex = chunk_index;
        return err;
    }

    /** One-line report: kind, message, and the diagnostic anchors. */
    std::string describe() const;
};

const char *traceErrorKindName(TraceError::Kind kind);

/**
 * Session-level trace quarantine: a trace that failed *persistently*
 * (ferror survived every retry) is registered here, and subsequent
 * FileTraceSource opens of the same path fail fast with QUARANTINED
 * instead of re-paying the retry storm.  Transient faults that a retry
 * recovered never quarantine.  Thread-safe; the registry is process
 * wide and cleared explicitly (tests, campaign phase boundaries).
 */
bool traceQuarantined(const std::string &path);
void quarantineTrace(const std::string &path);
void clearTraceQuarantine();
size_t traceQuarantineSize();

/** Streaming writer for the binary trace format. */
class TraceFileWriter
{
  public:
    /**
     * Open (truncate) @p path.  Failure does not terminate: the writer
     * enters an error state (see ok()/error()) and later writes no-op.
     */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record (no-op once in the error state). */
    void write(const TraceRecord &rec);

    /**
     * Finalize the header (record count), flush, and close.  Returns
     * the first error encountered over the writer's whole life —
     * open, any write, or the final flush.
     */
    TraceError close();

    bool ok() const { return error_.ok(); }
    const TraceError &error() const { return error_; }

    uint64_t written() const { return count_; }

    /** Convenience: dump the first @p insts of a program to @p path. */
    static uint64_t dumpProgram(const x86::Program &program,
                                uint64_t insts, const std::string &path);

  private:
    void fail(TraceError::Kind kind, std::string msg);

    std::FILE *file_ = nullptr;
    uint64_t count_ = 0;
    TraceError error_;
};

/** TraceSource reading a file produced by TraceFileWriter. */
class FileTraceSource : public TraceSource
{
  public:
    /**
     * Open @p path.  A missing/corrupt header is a recoverable error:
     * the source reports it via ok()/error() and presents an empty
     * stream.  Mid-stream corruption (truncation, checksum mismatch)
     * ends the stream at the last valid record and records the error.
     */
    explicit FileTraceSource(const std::string &path);
    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    const TraceRecord *peek(unsigned ahead = 0) override;
    void advance() override;
    bool done() override;
    uint64_t consumed() const override { return consumed_; }

    bool ok() const { return error_.ok(); }
    const TraceError &error() const { return error_; }

    /** Total records the header claims. */
    uint64_t totalRecords() const { return total_; }

    /** Records actually decoded and delivered (or buffered) so far. */
    uint64_t produced() const { return produced_; }

    /**
     * Chaos hook: when set, each batched read first asks the hook
     * whether to behave as a failed fread (transient I/O fault).  An
     * injected fault exercises exactly the ferror retry path.
     */
    void
    setIoFaultInjector(std::function<bool()> hook)
    {
        ioInject_ = std::move(hook);
    }

    /** Transient read faults absorbed by retrying (real + injected). */
    uint64_t ioRetries() const { return ioRetries_; }

    /** Consecutive same-batch retries before declaring READ_ERROR. */
    static constexpr unsigned MAX_READ_RETRIES = 3;

  private:
    void fill(unsigned n);
    void fail(TraceError::Kind kind, std::string msg);

    std::FILE *file_ = nullptr;
    std::string path_;
    uint64_t total_ = 0;
    uint64_t produced_ = 0;
    uint64_t consumed_ = 0;
    TraceError error_;

    std::vector<TraceRecord> ring_;
    size_t head_ = 0;
    size_t count_ = 0;

    /** Reusable block-read buffer for batched record decode. */
    std::vector<uint8_t> batch_;

    std::function<bool()> ioInject_;
    uint64_t ioRetries_ = 0;
};

} // namespace replay::trace

#endif // REPLAY_TRACE_TRACEFILE_HH
