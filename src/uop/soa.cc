#include "uop/soa.hh"

#include <type_traits>

namespace replay::uop {

namespace {

/**
 * Visit every plane in slab-layout order: 4-byte planes, then 2-byte,
 * then the byte planes.  `f(ptr_member, elt_bytes)` is called once per
 * plane with a reference to the slab's plane pointer, so one walker
 * serves binding, copying, and moving without repeating the list.
 */
template <typename Slab, typename F>
void
forEachPlane(Slab &s, F &&f)
{
    f(s.imm, sizeof(int32_t));
    f(s.target, sizeof(uint32_t));
    f(s.x86Pc, sizeof(uint32_t));
    f(s.instIdx, sizeof(uint16_t));
    f(s.attr, sizeof(uint16_t));
    f(s.op, 1);
    f(s.cc, 1);
    f(s.dst, 1);
    f(s.srcA, 1);
    f(s.srcB, 1);
    f(s.srcC, 1);
    f(s.scale, 1);
    f(s.memSize, 1);
    f(s.signExtend, 1);
    f(s.readsFlags, 1);
    f(s.writesFlags, 1);
    f(s.flagsCarryOnly, 1);
    f(s.valueAssert, 1);
    f(s.lastOfInst, 1);
    f(s.assertOp, 1);
    f(s.microIdx, 1);
    f(s.memSeq, 1);
}

} // anonymous namespace

void
UopSlab::setCapacity(size_t n)
{
    std::unique_ptr<std::byte[]> nb(new std::byte[n * BYTES_PER_UOP]);
    std::byte *base = nb.get();
    size_t off = 0;
    const size_t live = size_;
    forEachPlane(*this, [&](auto *&plane, size_t elt) {
        using T = std::remove_reference_t<decltype(*plane)>;
        T *np = reinterpret_cast<T *>(base + off);
        off += elt * n;
        if (live)
            std::memcpy(np, plane, live * elt);
        plane = np;
    });
    buf_ = std::move(nb);
    cap_ = n;
}

void
UopSlab::assign(const UopSlab &o)
{
    if (cap_ < o.size_) {
        size_ = 0;          // nothing worth carrying into the new slab
        setCapacity(o.size_);
    }
    const size_t n = o.size_;
    if (n) {
        std::memcpy(imm, o.imm, n * sizeof(int32_t));
        std::memcpy(target, o.target, n * sizeof(uint32_t));
        std::memcpy(x86Pc, o.x86Pc, n * sizeof(uint32_t));
        std::memcpy(instIdx, o.instIdx, n * sizeof(uint16_t));
        std::memcpy(attr, o.attr, n * sizeof(uint16_t));
        std::memcpy(op, o.op, n);
        std::memcpy(cc, o.cc, n);
        std::memcpy(dst, o.dst, n);
        std::memcpy(srcA, o.srcA, n);
        std::memcpy(srcB, o.srcB, n);
        std::memcpy(srcC, o.srcC, n);
        std::memcpy(scale, o.scale, n);
        std::memcpy(memSize, o.memSize, n);
        std::memcpy(signExtend, o.signExtend, n);
        std::memcpy(readsFlags, o.readsFlags, n);
        std::memcpy(writesFlags, o.writesFlags, n);
        std::memcpy(flagsCarryOnly, o.flagsCarryOnly, n);
        std::memcpy(valueAssert, o.valueAssert, n);
        std::memcpy(lastOfInst, o.lastOfInst, n);
        std::memcpy(assertOp, o.assertOp, n);
        std::memcpy(microIdx, o.microIdx, n);
        std::memcpy(memSeq, o.memSeq, n);
    }
    size_ = n;
}

UopSlab &
UopSlab::operator=(UopSlab &&o) noexcept
{
    if (this == &o)
        return *this;
    buf_ = std::move(o.buf_);
    cap_ = o.cap_;
    size_ = o.size_;
    imm = o.imm;
    target = o.target;
    x86Pc = o.x86Pc;
    instIdx = o.instIdx;
    attr = o.attr;
    op = o.op;
    cc = o.cc;
    dst = o.dst;
    srcA = o.srcA;
    srcB = o.srcB;
    srcC = o.srcC;
    scale = o.scale;
    memSize = o.memSize;
    signExtend = o.signExtend;
    readsFlags = o.readsFlags;
    writesFlags = o.writesFlags;
    flagsCarryOnly = o.flagsCarryOnly;
    valueAssert = o.valueAssert;
    lastOfInst = o.lastOfInst;
    assertOp = o.assertOp;
    microIdx = o.microIdx;
    memSeq = o.memSeq;
    forEachPlane(o, [](auto *&plane, size_t) { plane = nullptr; });
    o.cap_ = 0;
    o.size_ = 0;
    return *this;
}

void
UopSlab::resize(size_t n)
{
    reserve(n);
    const Uop def;
    for (size_t i = size_; i < n; ++i)
        set(i, def);
    size_ = n;
}

bool
UopSlab::operator==(const UopSlab &o) const
{
    if (size_ != o.size_)
        return false;
    for (size_t i = 0; i < size_; ++i) {
        if (op[i] != o.op[i] || cc[i] != o.cc[i] || dst[i] != o.dst[i] ||
            srcA[i] != o.srcA[i] || srcB[i] != o.srcB[i] ||
            srcC[i] != o.srcC[i] || imm[i] != o.imm[i] ||
            scale[i] != o.scale[i] || memSize[i] != o.memSize[i] ||
            signExtend[i] != o.signExtend[i] ||
            readsFlags[i] != o.readsFlags[i] ||
            writesFlags[i] != o.writesFlags[i] ||
            flagsCarryOnly[i] != o.flagsCarryOnly[i] ||
            valueAssert[i] != o.valueAssert[i] ||
            lastOfInst[i] != o.lastOfInst[i] ||
            assertOp[i] != o.assertOp[i] || target[i] != o.target[i] ||
            x86Pc[i] != o.x86Pc[i] || instIdx[i] != o.instIdx[i] ||
            microIdx[i] != o.microIdx[i] || memSeq[i] != o.memSeq[i] ||
            attr[i] != o.attr[i]) {
            return false;
        }
    }
    return true;
}

} // namespace replay::uop
