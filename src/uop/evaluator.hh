/**
 * @file
 * Functional semantics of the rePLay ISA.
 *
 * evalAlu() is the single source of truth for micro-op arithmetic and
 * flag generation; it is shared by the linear Evaluator below (used to
 * cross-check the translator against the x86 executor), by frame
 * execution in the sequencer, and by the state verifier.
 */

#ifndef REPLAY_UOP_EVALUATOR_HH
#define REPLAY_UOP_EVALUATOR_HH

#include <array>
#include <vector>

#include "uop/uop.hh"
#include "x86/executor.hh"

namespace replay::uop {

/** Result of a pure (non-memory, non-control) micro-op. */
struct AluResult
{
    uint32_t value = 0;
    x86::Flags flags;       ///< meaningful only if the uop writes flags
};

/**
 * Evaluate the pure function of a micro-op.
 *
 * @param u         the micro-op (opcode, cc, imm, flag behaviour)
 * @param a         resolved srcA value
 * @param b         resolved second operand (srcB or immediate)
 * @param c         resolved srcC value (DIVQ/DIVR high word)
 * @param in_flags  incoming flags (for SETCC and carry-preserving ops)
 */
AluResult evalAlu(const Uop &u, uint32_t a, uint32_t b, uint32_t c,
                  const x86::Flags &in_flags);

/**
 * Field-based form of evalAlu for structure-of-arrays callers: the
 * planes hand over exactly the fields the ALU reads (opcode, condition,
 * immediate, carry-only behaviour) without gathering a full Uop.
 */
AluResult evalAlu(Op op, x86::Cond cc, int32_t imm, bool carry_only,
                  uint32_t a, uint32_t b, uint32_t c,
                  const x86::Flags &in_flags);

/** Does the assertion fire, given the flags it observes? */
bool assertFires(const Uop &u, const x86::Flags &observed);

/** Field-based form for structure-of-arrays callers. */
inline bool
assertFires(x86::Cond cc, const x86::Flags &observed)
{
    return !x86::condTaken(cc, observed);
}

/** Resolved effective address of a LOAD/FLOAD micro-op. */
uint32_t loadAddr(const Uop &u, uint32_t base, uint32_t index);

/** Resolved effective address of a STORE/FSTORE micro-op. */
uint32_t storeAddr(const Uop &u, uint32_t base, uint32_t index);

/**
 * Field-based effective address: @p base_reg / @p index_reg are the
 * architectural name fields whose presence gates each term (srcB for
 * loads, srcC for stores).
 */
inline uint32_t
memAddr(int32_t imm, uint8_t scale, UReg base_reg, UReg index_reg,
        uint32_t base, uint32_t index)
{
    uint32_t addr = uint32_t(imm);
    if (base_reg != UReg::NONE)
        addr += base;
    if (index_reg != UReg::NONE)
        addr += index * scale;
    return addr;
}

/**
 * Executes micro-ops in architectural (pre-rename) form against a
 * register file, flags, and memory — the reference interpreter.
 */
class Evaluator
{
  public:
    explicit Evaluator(x86::SparseMemory &mem) : mem_(mem)
    {
        regs_.fill(0);
    }

    /** Outcome of one micro-op. */
    struct StepResult
    {
        bool isControl = false;
        bool taken = false;
        uint32_t target = 0;        ///< valid when taken
        bool asserted = false;      ///< an ASSERT fired
        std::vector<x86::MemOp> memOps;
    };

    StepResult exec(const Uop &u);

    uint32_t reg(UReg r) const { return regs_[unsigned(r)]; }
    void setReg(UReg r, uint32_t v) { regs_[unsigned(r)] = v; }
    const x86::Flags &flags() const { return flags_; }
    void setFlags(const x86::Flags &f) { flags_ = f; }
    x86::SparseMemory &memory() { return mem_; }

  private:
    std::array<uint32_t, NUM_UREGS> regs_{};
    x86::Flags flags_;
    x86::SparseMemory &mem_;
};

} // namespace replay::uop

#endif // REPLAY_UOP_EVALUATOR_HH
