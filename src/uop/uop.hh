/**
 * @file
 * The rePLay ISA: the micro-operation format of §5.1.1 / Figure 4.
 *
 * Micro-operations are fixed-format, RISC-like, three-operand control
 * words.  Following the paper we keep the format close to a generic RISC
 * ISA (real x86 decode flows are proprietary); the translator in
 * translator.hh produces ~1.4 micro-ops per x86 instruction.
 *
 * Register namespace: the eight x86 GPRs, eight translator temporaries
 * ET0..ET7 (the paper's "ET2" in Figure 2), eight flat FP registers, and
 * a FLAGS pseudo-register used for live-in/live-out bookkeeping.  Flags
 * are co-produced by flag-writing micro-ops ("EDX,flags <- ECX | EBX");
 * a consumer references the producing micro-op's flags result.
 */

#ifndef REPLAY_UOP_UOP_HH
#define REPLAY_UOP_UOP_HH

#include <cstdint>
#include <string>

#include "x86/inst.hh"

namespace replay::uop {

/** Micro-op architectural register namespace. */
enum class UReg : uint8_t
{
    // x86 GPRs, same encoding as x86::Reg.
    EAX = 0, ECX, EDX, EBX, ESP, EBP, ESI, EDI,
    // Translator temporaries.
    ET0 = 8, ET1, ET2, ET3, ET4, ET5, ET6, ET7,
    // Flat scalar FP registers.
    F0 = 16, F1, F2, F3, F4, F5, F6, F7,
    // Pseudo-register naming the x86 flags state at frame boundaries.
    FLAGS = 24,
    NUM = 25,
    NONE = 0xff,
};

constexpr unsigned NUM_UREGS = static_cast<unsigned>(UReg::NUM);

/** Map an x86 GPR into the micro-op register namespace. */
constexpr UReg
gpr(x86::Reg reg)
{
    return static_cast<UReg>(reg);
}

/** Map an x86 FP register into the micro-op register namespace. */
constexpr UReg
fpr(x86::FReg freg)
{
    return static_cast<UReg>(static_cast<uint8_t>(UReg::F0) +
                             static_cast<uint8_t>(freg));
}

constexpr bool
isFpReg(UReg reg)
{
    return reg >= UReg::F0 && reg <= UReg::F7;
}

/** Micro-operation opcodes. */
enum class Op : uint8_t
{
    NOP,
    LIMM,       ///< dst <- imm
    MOV,        ///< dst <- srcA (register copy)
    ADD,        ///< dst <- srcA + (srcB | imm)
    SUB,
    AND,
    OR,
    XOR,
    SHL,
    SHR,
    SAR,
    MUL,
    DIVQ,       ///< dst <- (srcC:srcA) / srcB  (quotient)
    DIVR,       ///< dst <- (srcC:srcA) % srcB  (remainder)
    NOT,
    NEG,
    CMP,        ///< flags <- compare(srcA, srcB|imm); no register result
    TEST,       ///< flags <- srcA & (srcB|imm)
    SETCC,      ///< dst <- (srcA & ~0xff) | cc(flags)
    LOAD,       ///< dst <- mem[srcA + srcB*scale + imm]
    STORE,      ///< mem[srcA + srcC*scale + imm] <- srcB
    BR,         ///< conditional branch on cc(flags) to target
    JMP,        ///< unconditional direct branch
    JMPI,       ///< unconditional indirect branch to srcA
    ASSERT,     ///< fires (frame rollback) when cc evaluates false
    FLOAD,      ///< fp dst <- mem32
    FSTORE,     ///< mem32 <- fp srcB
    FADD,
    FSUB,
    FMUL,
    FDIV,
    LONGFLOW,   ///< rare complex instruction; pipeline flush marker
    NUM_OPS,
};

/** One micro-operation (architectural form). */
struct Uop
{
    Op op = Op::NOP;
    x86::Cond cc = x86::Cond::NONE;
    UReg dst = UReg::NONE;
    UReg srcA = UReg::NONE;
    UReg srcB = UReg::NONE;
    UReg srcC = UReg::NONE;
    int32_t imm = 0;            ///< ALU immediate / addressing disp
    uint8_t scale = 1;          ///< index scale for LOAD/STORE
    uint8_t memSize = 4;
    bool signExtend = false;    ///< sign-extend sub-word loads
    bool readsFlags = false;    ///< consumes the flags value
    bool writesFlags = false;   ///< co-produces a flags value
    bool flagsCarryOnly = false;///< INC/DEC style: CF preserved from input
    bool valueAssert = false;   ///< ASSERT comparing srcA/srcB directly
    Op assertOp = Op::CMP;      ///< comparison semantics of a value assert
    uint32_t target = 0;        ///< BR/JMP taken target (x86 address)

    // Provenance: which x86 instruction this micro-op implements.
    uint32_t x86Pc = 0;
    uint16_t instIdx = 0;       ///< instruction index within a frame
    uint8_t microIdx = 0;       ///< position within the decode flow
    uint8_t memSeq = 0;         ///< index among the instruction's mem ops
    bool lastOfInst = false;    ///< retiring this retires the x86 inst

    bool isLoad() const { return op == Op::LOAD || op == Op::FLOAD; }
    bool isStore() const { return op == Op::STORE || op == Op::FSTORE; }
    bool isMem() const { return isLoad() || isStore(); }
    bool
    isControl() const
    {
        return op == Op::BR || op == Op::JMP || op == Op::JMPI;
    }
    bool isAssert() const { return op == Op::ASSERT; }
    bool
    isFp() const
    {
        return op == Op::FLOAD || op == Op::FSTORE || op == Op::FADD ||
               op == Op::FSUB || op == Op::FMUL || op == Op::FDIV;
    }

    /** True if the ALU second operand is the immediate field. */
    bool
    usesImmOperand() const
    {
        switch (op) {
          case Op::ADD:
          case Op::SUB:
          case Op::AND:
          case Op::OR:
          case Op::XOR:
          case Op::SHL:
          case Op::SHR:
          case Op::SAR:
          case Op::MUL:
          case Op::CMP:
          case Op::TEST:
            return srcB == UReg::NONE;
          case Op::LIMM:
            return true;
          default:
            return false;
        }
    }

    bool operator==(const Uop &) const = default;
};

/** Printable names. */
const char *opName(Op op);
const char *uregName(UReg reg);

/** Render one micro-op, e.g. "EDX,flags <- OR ECX, EBX". */
std::string format(const Uop &u);

} // namespace replay::uop

#endif // REPLAY_UOP_UOP_HH
