#include "uop/uop.hh"

#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace replay::uop {

const char *
opName(Op op)
{
    static const char *names[] = {
        "NOP", "LIMM", "MOV", "ADD", "SUB", "AND", "OR", "XOR", "SHL",
        "SHR", "SAR", "MUL", "DIVQ", "DIVR", "NOT", "NEG", "CMP", "TEST",
        "SETCC", "LOAD", "STORE", "BR", "JMP", "JMPI", "ASSERT", "FLOAD",
        "FSTORE", "FADD", "FSUB", "FMUL", "FDIV", "LONGFLOW",
    };
    static_assert(sizeof(names) / sizeof(names[0]) ==
                  static_cast<size_t>(Op::NUM_OPS));
    return names[static_cast<unsigned>(op)];
}

const char *
uregName(UReg reg)
{
    static const char *names[] = {
        "EAX", "ECX", "EDX", "EBX", "ESP", "EBP", "ESI", "EDI",
        "ET0", "ET1", "ET2", "ET3", "ET4", "ET5", "ET6", "ET7",
        "F0", "F1", "F2", "F3", "F4", "F5", "F6", "F7",
        "FLAGS",
    };
    static_assert(sizeof(names) / sizeof(names[0]) == NUM_UREGS);
    if (reg == UReg::NONE)
        return "-";
    return names[static_cast<unsigned>(reg)];
}

std::string
format(const Uop &u)
{
    std::ostringstream out;
    char buf[48];

    auto immStr = [&](int32_t v) {
        if (v < 0)
            std::snprintf(buf, sizeof(buf), "-0x%x", unsigned(-v));
        else
            std::snprintf(buf, sizeof(buf), "0x%x", unsigned(v));
        return std::string(buf);
    };

    auto addrStr = [&](UReg base, UReg index, uint8_t scale,
                       int32_t disp) {
        std::ostringstream a;
        a << '[';
        bool plus = false;
        if (base != UReg::NONE) {
            a << uregName(base);
            plus = true;
        }
        if (index != UReg::NONE) {
            if (plus)
                a << '+';
            a << uregName(index);
            if (scale != 1)
                a << '*' << unsigned(scale);
            plus = true;
        }
        if (disp || !plus) {
            if (plus)
                a << (disp < 0 ? "-" : "+");
            std::snprintf(buf, sizeof(buf), "0x%x",
                          unsigned(disp < 0 ? -disp : disp));
            a << buf;
        }
        a << ']';
        return a.str();
    };

    auto dstStr = [&]() {
        std::string s;
        if (u.dst != UReg::NONE)
            s += uregName(u.dst);
        if (u.writesFlags)
            s += s.empty() ? "flags" : ",flags";
        return s;
    };

    switch (u.op) {
      case Op::NOP:
      case Op::LONGFLOW:
        out << opName(u.op);
        break;
      case Op::LIMM:
        out << dstStr() << " <- " << immStr(u.imm);
        break;
      case Op::MOV:
        out << dstStr() << " <- " << uregName(u.srcA);
        break;
      case Op::LOAD:
        out << dstStr() << " <- "
            << addrStr(u.srcA, u.srcB, u.scale, u.imm);
        if (u.memSize != 4)
            out << " (" << unsigned(u.memSize)
                << (u.signExtend ? "s)" : "z)");
        break;
      case Op::FLOAD:
        out << uregName(u.dst) << " <- "
            << addrStr(u.srcA, UReg::NONE, 1, u.imm);
        break;
      case Op::STORE:
      case Op::FSTORE:
        out << addrStr(u.srcA, u.srcC, u.scale, u.imm) << " <- "
            << uregName(u.srcB);
        if (u.op == Op::STORE && u.memSize != 4)
            out << " (" << unsigned(u.memSize) << ')';
        break;
      case Op::BR:
        out << "BR." << x86::condName(u.cc) << " -> ";
        std::snprintf(buf, sizeof(buf), "0x%08x", u.target);
        out << buf;
        break;
      case Op::JMP:
        std::snprintf(buf, sizeof(buf), "JMP 0x%08x", u.target);
        out << buf;
        break;
      case Op::JMPI:
        out << "JMP (" << uregName(u.srcA) << ')';
        break;
      case Op::ASSERT:
        out << "ASSERT." << x86::condName(u.cc);
        if (u.valueAssert) {
            out << ' ' << uregName(u.srcA) << ", ";
            if (u.srcB != UReg::NONE)
                out << uregName(u.srcB);
            else
                out << immStr(u.imm);
        }
        break;
      case Op::CMP:
      case Op::TEST:
        out << "flags <- " << opName(u.op) << ' ' << uregName(u.srcA)
            << ", ";
        if (u.srcB != UReg::NONE)
            out << uregName(u.srcB);
        else
            out << immStr(u.imm);
        break;
      case Op::SETCC:
        out << dstStr() << " <- SET." << x86::condName(u.cc) << '('
            << uregName(u.srcA) << ')';
        break;
      case Op::NOT:
      case Op::NEG:
        out << dstStr() << " <- " << opName(u.op) << ' '
            << uregName(u.srcA);
        break;
      case Op::DIVQ:
      case Op::DIVR:
        out << dstStr() << " <- " << opName(u.op) << ' '
            << uregName(u.srcC) << ':' << uregName(u.srcA) << ", "
            << uregName(u.srcB);
        break;
      default:
        // Generic three-operand ALU rendering.
        out << dstStr() << " <- " << opName(u.op) << ' '
            << uregName(u.srcA) << ", ";
        if (u.srcB != UReg::NONE)
            out << uregName(u.srcB);
        else
            out << immStr(u.imm);
        break;
    }
    return out.str();
}

} // namespace replay::uop
