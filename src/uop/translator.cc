#include "uop/translator.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace replay::uop {

using x86::Form;
using x86::Inst;
using x86::Mnem;
using x86::Reg;

namespace {

/** Incremental flow builder that stamps provenance onto each micro-op. */
class Flow
{
  public:
    Flow(uint32_t pc, std::vector<Uop> &out)
        : pc_(pc), out_(out), start_(out.size())
    {
    }

    ~Flow()
    {
        panic_if(out_.size() == start_, "empty decode flow at 0x%08x",
                 pc_);
        out_.back().lastOfInst = true;
    }

    Uop &
    add(Op op)
    {
        Uop u;
        u.op = op;
        u.x86Pc = pc_;
        u.microIdx = uint8_t(out_.size() - start_);
        if (op == Op::LOAD || op == Op::STORE || op == Op::FLOAD ||
            op == Op::FSTORE) {
            u.memSeq = memSeq_++;
        }
        out_.push_back(u);
        return out_.back();
    }

    /** dst <- imm */
    Uop &
    limm(UReg dst, int32_t imm)
    {
        Uop &u = add(Op::LIMM);
        u.dst = dst;
        u.imm = imm;
        return u;
    }

    /** Three-operand ALU, register second operand. */
    Uop &
    aluRR(Op op, UReg dst, UReg a, UReg b, bool flags = true)
    {
        Uop &u = add(op);
        u.dst = dst;
        u.srcA = a;
        u.srcB = b;
        u.writesFlags = flags;
        return u;
    }

    /** Three-operand ALU, immediate second operand. */
    Uop &
    aluRI(Op op, UReg dst, UReg a, int32_t imm, bool flags = true)
    {
        Uop &u = add(op);
        u.dst = dst;
        u.srcA = a;
        u.imm = imm;
        u.writesFlags = flags;
        return u;
    }

    /** dst <- mem[base + index*scale + disp] */
    Uop &
    loadMem(UReg dst, const x86::MemRef &m, uint8_t size = 4,
            bool sext_load = false)
    {
        Uop &u = add(Op::LOAD);
        u.dst = dst;
        u.srcA = m.base == Reg::NONE ? UReg::NONE : gpr(m.base);
        u.srcB = m.index == Reg::NONE ? UReg::NONE : gpr(m.index);
        u.scale = m.scale;
        u.imm = m.disp;
        u.memSize = size;
        u.signExtend = sext_load;
        return u;
    }

    /** mem[base + index*scale + disp] <- value */
    Uop &
    storeMem(const x86::MemRef &m, UReg value, uint8_t size = 4)
    {
        Uop &u = add(Op::STORE);
        u.srcA = m.base == Reg::NONE ? UReg::NONE : gpr(m.base);
        u.srcC = m.index == Reg::NONE ? UReg::NONE : gpr(m.index);
        u.scale = m.scale;
        u.imm = m.disp;
        u.srcB = value;
        u.memSize = size;
        return u;
    }

    /** mem[base + disp] <- value with explicit base/disp. */
    Uop &
    storeBD(UReg base, int32_t disp, UReg value)
    {
        Uop &u = add(Op::STORE);
        u.srcA = base;
        u.imm = disp;
        u.srcB = value;
        return u;
    }

  private:
    uint32_t pc_;
    std::vector<Uop> &out_;
    size_t start_;
    uint8_t memSeq_ = 0;
};

Op
aluOpFor(Mnem mnem)
{
    switch (mnem) {
      case Mnem::ADD:  return Op::ADD;
      case Mnem::SUB:  return Op::SUB;
      case Mnem::AND:  return Op::AND;
      case Mnem::OR:   return Op::OR;
      case Mnem::XOR:  return Op::XOR;
      case Mnem::CMP:  return Op::CMP;
      case Mnem::TEST: return Op::TEST;
      case Mnem::IMUL: return Op::MUL;
      case Mnem::SHL:  return Op::SHL;
      case Mnem::SHR:  return Op::SHR;
      case Mnem::SAR:  return Op::SAR;
      default:
        panic("no ALU micro-op for %s", x86::mnemName(mnem));
    }
}

Op
fpOpFor(Mnem mnem)
{
    switch (mnem) {
      case Mnem::FADD: return Op::FADD;
      case Mnem::FSUB: return Op::FSUB;
      case Mnem::FMUL: return Op::FMUL;
      case Mnem::FDIV: return Op::FDIV;
      default:
        panic("no FP micro-op for %s", x86::mnemName(mnem));
    }
}

} // anonymous namespace

unsigned
Translator::translate(const Inst &in, uint32_t pc, uint32_t next_pc,
                      std::vector<Uop> &out) const
{
    const size_t before = out.size();
    Flow f(pc, out);

    switch (in.mnem) {
      case Mnem::NOP:
        f.add(Op::NOP);
        break;

      case Mnem::MOV:
        switch (in.form) {
          case Form::RR: {
            Uop &u = f.add(Op::MOV);
            u.dst = gpr(in.reg1);
            u.srcA = gpr(in.reg2);
            break;
          }
          case Form::RI:
            f.limm(gpr(in.reg1), int32_t(in.imm));
            break;
          case Form::RM:
            f.loadMem(gpr(in.reg1), in.mem);
            break;
          case Form::MR:
            f.storeMem(in.mem, gpr(in.reg2), in.opSize);
            break;
          case Form::MI:
            f.limm(UReg::ET7, int32_t(in.imm));
            f.storeMem(in.mem, UReg::ET7, in.opSize);
            break;
          default:
            panic("MOV form %d", int(in.form));
        }
        break;

      case Mnem::MOVZX:
        f.loadMem(gpr(in.reg1), in.mem, in.opSize, false);
        break;

      case Mnem::MOVSX:
        f.loadMem(gpr(in.reg1), in.mem, in.opSize, true);
        break;

      case Mnem::LEA: {
        // Address arithmetic without memory access; decomposed into
        // plain ALU micro-ops (none of which set flags).
        const UReg dst = gpr(in.reg1);
        const bool has_base = in.mem.base != Reg::NONE;
        const bool has_index = in.mem.index != Reg::NONE;
        if (!has_index) {
            if (has_base)
                f.aluRI(Op::ADD, dst, gpr(in.mem.base), in.mem.disp,
                        false);
            else
                f.limm(dst, in.mem.disp);
            break;
        }
        UReg idx = gpr(in.mem.index);
        if (in.mem.scale != 1) {
            f.aluRI(Op::SHL, UReg::ET6, idx,
                    int32_t(floorLog2(in.mem.scale)), false);
            idx = UReg::ET6;
        }
        if (has_base) {
            if (in.mem.disp == 0) {
                f.aluRR(Op::ADD, dst, gpr(in.mem.base), idx, false);
            } else {
                f.aluRR(Op::ADD, UReg::ET6, gpr(in.mem.base), idx,
                        false);
                f.aluRI(Op::ADD, dst, UReg::ET6, in.mem.disp, false);
            }
        } else {
            f.aluRI(Op::ADD, dst, idx, in.mem.disp, false);
        }
        break;
      }

      case Mnem::PUSH: {
        UReg value;
        if (in.form == Form::R) {
            value = gpr(in.reg2);
        } else if (in.form == Form::I) {
            f.limm(UReg::ET7, int32_t(in.imm));
            value = UReg::ET7;
        } else {
            f.loadMem(UReg::ET7, in.mem);
            value = UReg::ET7;
        }
        f.storeBD(UReg::ESP, -4, value);
        f.aluRI(Op::SUB, UReg::ESP, UReg::ESP, 4, false);
        break;
      }

      case Mnem::POP: {
        panic_if(in.reg1 == Reg::ESP, "POP ESP is not modeled");
        f.aluRI(Op::ADD, UReg::ESP, UReg::ESP, 4, false);
        Uop &u = f.add(Op::LOAD);
        u.dst = gpr(in.reg1);
        u.srcA = UReg::ESP;
        u.imm = -4;
        break;
      }

      case Mnem::ADD:
      case Mnem::SUB:
      case Mnem::AND:
      case Mnem::OR:
      case Mnem::XOR: {
        const Op op = aluOpFor(in.mnem);
        const UReg dst = gpr(in.reg1);
        switch (in.form) {
          case Form::RR:
            f.aluRR(op, dst, dst, gpr(in.reg2));
            break;
          case Form::RI:
            f.aluRI(op, dst, dst, int32_t(in.imm));
            break;
          case Form::RM:
            f.loadMem(UReg::ET7, in.mem);
            f.aluRR(op, dst, dst, UReg::ET7);
            break;
          default:
            panic("%s form %d", x86::mnemName(in.mnem), int(in.form));
        }
        break;
      }

      case Mnem::CMP:
      case Mnem::TEST: {
        const Op op = aluOpFor(in.mnem);
        const UReg a = gpr(in.reg1);
        switch (in.form) {
          case Form::RR: {
            Uop &u = f.aluRR(op, UReg::NONE, a, gpr(in.reg2));
            u.dst = UReg::NONE;
            break;
          }
          case Form::RI:
            f.aluRI(op, UReg::NONE, a, int32_t(in.imm));
            break;
          case Form::RM:
            f.loadMem(UReg::ET7, in.mem);
            f.aluRR(op, UReg::NONE, a, UReg::ET7);
            break;
          default:
            panic("%s form %d", x86::mnemName(in.mnem), int(in.form));
        }
        break;
      }

      case Mnem::INC:
      case Mnem::DEC: {
        const Op op = in.mnem == Mnem::INC ? Op::ADD : Op::SUB;
        Uop &u = f.aluRI(op, gpr(in.reg1), gpr(in.reg1), 1);
        u.flagsCarryOnly = true;    // CF is preserved from prior flags
        u.readsFlags = true;
        break;
      }

      case Mnem::NEG: {
        Uop &u = f.add(Op::NEG);
        u.dst = gpr(in.reg1);
        u.srcA = gpr(in.reg1);
        u.writesFlags = true;
        break;
      }

      case Mnem::NOT: {
        Uop &u = f.add(Op::NOT);
        u.dst = gpr(in.reg1);
        u.srcA = gpr(in.reg1);
        break;
      }

      case Mnem::IMUL:
        switch (in.form) {
          case Form::RR:
            f.aluRR(Op::MUL, gpr(in.reg1), gpr(in.reg1), gpr(in.reg2));
            break;
          case Form::RRI:
            f.aluRI(Op::MUL, gpr(in.reg1), gpr(in.reg2),
                    int32_t(in.imm));
            break;
          case Form::RM:
            f.loadMem(UReg::ET7, in.mem);
            f.aluRR(Op::MUL, gpr(in.reg1), gpr(in.reg1), UReg::ET7);
            break;
          default:
            panic("IMUL form %d", int(in.form));
        }
        break;

      case Mnem::DIV: {
        // x86 DIV binds EDX:EAX as dividend -- the fixed-register
        // semantics the paper cites as a compiler constraint.
        UReg divisor;
        if (in.form == Form::R) {
            divisor = gpr(in.reg2);
        } else {
            f.loadMem(UReg::ET6, in.mem);
            divisor = UReg::ET6;
        }
        Uop &q = f.add(Op::DIVQ);
        q.dst = UReg::ET7;
        q.srcA = UReg::EAX;
        q.srcB = divisor;
        q.srcC = UReg::EDX;
        Uop &r = f.add(Op::DIVR);
        r.dst = UReg::EDX;
        r.srcA = UReg::EAX;
        r.srcB = divisor;
        r.srcC = UReg::EDX;
        Uop &m = f.add(Op::MOV);
        m.dst = UReg::EAX;
        m.srcA = UReg::ET7;
        break;
      }

      case Mnem::SHL:
      case Mnem::SHR:
      case Mnem::SAR: {
        const unsigned count = unsigned(in.imm) & 31;
        if (count == 0) {
            f.add(Op::NOP);     // shift by zero: no state change
            break;
        }
        f.aluRI(aluOpFor(in.mnem), gpr(in.reg1), gpr(in.reg1),
                int32_t(count));
        break;
      }

      case Mnem::CDQ:
        f.aluRI(Op::SAR, UReg::EDX, UReg::EAX, 31, false);
        break;

      case Mnem::SETCC: {
        Uop &u = f.add(Op::SETCC);
        u.dst = gpr(in.reg1);
        u.srcA = gpr(in.reg1);
        u.cc = in.cc;
        u.readsFlags = true;
        break;
      }

      case Mnem::JMP:
        switch (in.form) {
          case Form::REL: {
            Uop &u = f.add(Op::JMP);
            u.target = in.target;
            break;
          }
          case Form::R: {
            Uop &u = f.add(Op::JMPI);
            u.srcA = gpr(in.reg2);
            break;
          }
          case Form::M: {
            f.loadMem(UReg::ET7, in.mem);
            Uop &u = f.add(Op::JMPI);
            u.srcA = UReg::ET7;
            break;
          }
          default:
            panic("JMP form %d", int(in.form));
        }
        break;

      case Mnem::JCC: {
        Uop &u = f.add(Op::BR);
        u.cc = in.cc;
        u.readsFlags = true;
        u.target = in.target;
        break;
      }

      case Mnem::CALL: {
        f.limm(UReg::ET7, int32_t(next_pc));
        f.storeBD(UReg::ESP, -4, UReg::ET7);
        f.aluRI(Op::SUB, UReg::ESP, UReg::ESP, 4, false);
        if (in.form == Form::REL) {
            Uop &u = f.add(Op::JMP);
            u.target = in.target;
        } else {
            Uop &u = f.add(Op::JMPI);
            u.srcA = gpr(in.reg2);
        }
        break;
      }

      case Mnem::RET: {
        // Matches the paper's flow: ET <- SS:[ESP]; ESP += 4; jmp (ET).
        Uop &ld = f.add(Op::LOAD);
        ld.dst = UReg::ET7;
        ld.srcA = UReg::ESP;
        f.aluRI(Op::ADD, UReg::ESP, UReg::ESP, 4, false);
        Uop &u = f.add(Op::JMPI);
        u.srcA = UReg::ET7;
        break;
      }

      case Mnem::FLD: {
        Uop &u = f.add(Op::FLOAD);
        u.dst = fpr(in.freg1);
        u.srcA = in.mem.base == Reg::NONE ? UReg::NONE : gpr(in.mem.base);
        u.srcB = in.mem.index == Reg::NONE ? UReg::NONE
                                           : gpr(in.mem.index);
        u.scale = in.mem.scale;
        u.imm = in.mem.disp;
        break;
      }

      case Mnem::FST: {
        Uop &u = f.add(Op::FSTORE);
        u.srcA = in.mem.base == Reg::NONE ? UReg::NONE : gpr(in.mem.base);
        u.srcC = in.mem.index == Reg::NONE ? UReg::NONE
                                           : gpr(in.mem.index);
        u.scale = in.mem.scale;
        u.imm = in.mem.disp;
        u.srcB = fpr(in.freg1);
        break;
      }

      case Mnem::FADD:
      case Mnem::FSUB:
      case Mnem::FMUL:
      case Mnem::FDIV: {
        Uop &u = f.add(fpOpFor(in.mnem));
        u.dst = fpr(in.freg1);
        u.srcA = fpr(in.freg1);
        u.srcB = fpr(in.freg2);
        break;
      }

      case Mnem::LONGFLOW:
        f.add(Op::LONGFLOW);
        break;

      default:
        panic("unimplemented mnemonic %s", x86::mnemName(in.mnem));
    }

    return unsigned(out.size() - before);
}

} // namespace replay::uop
