#include "uop/evaluator.hh"

#include <cstring>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace replay::uop {

namespace {

x86::Flags
makeFlags(uint32_t result, bool cf, bool of)
{
    x86::Flags f;
    f.cf = cf;
    f.of = of;
    f.zf = result == 0;
    f.sf = (result >> 31) & 1;
    f.pf = parity(result & 0xff) == 0;
    return f;
}

bool
addOverflows(uint32_t a, uint32_t b, uint32_t r)
{
    return (~(a ^ b) & (a ^ r)) >> 31;
}

bool
subOverflows(uint32_t a, uint32_t b, uint32_t r)
{
    return ((a ^ b) & (a ^ r)) >> 31;
}

float
asFloat(uint32_t raw)
{
    float v;
    std::memcpy(&v, &raw, 4);
    return v;
}

uint32_t
asRaw(float v)
{
    uint32_t raw;
    std::memcpy(&raw, &v, 4);
    return raw;
}

} // anonymous namespace

AluResult
evalAlu(const Uop &u, uint32_t a, uint32_t b, uint32_t c,
        const x86::Flags &in_flags)
{
    return evalAlu(u.op, u.cc, u.imm, u.flagsCarryOnly, a, b, c,
                   in_flags);
}

AluResult
evalAlu(Op op, x86::Cond cc, int32_t imm, bool carry_only, uint32_t a,
        uint32_t b, uint32_t c, const x86::Flags &in_flags)
{
    AluResult out;
    switch (op) {
      case Op::LIMM:
        out.value = uint32_t(imm);
        break;
      case Op::MOV:
        out.value = a;
        break;
      case Op::ADD: {
        out.value = a + b;
        const bool cf = carry_only ? in_flags.cf : out.value < a;
        out.flags = makeFlags(out.value, cf, addOverflows(a, b, out.value));
        break;
      }
      case Op::SUB:
      case Op::CMP: {
        out.value = a - b;
        const bool cf = carry_only ? in_flags.cf : a < b;
        out.flags = makeFlags(out.value, cf, subOverflows(a, b, out.value));
        if (op == Op::CMP)
            out.value = 0;
        break;
      }
      case Op::AND:
      case Op::TEST:
        out.value = a & b;
        out.flags = makeFlags(out.value, false, false);
        if (op == Op::TEST)
            out.value = 0;
        break;
      case Op::OR:
        out.value = a | b;
        out.flags = makeFlags(out.value, false, false);
        break;
      case Op::XOR:
        out.value = a ^ b;
        out.flags = makeFlags(out.value, false, false);
        break;
      case Op::SHL: {
        const unsigned count = b & 31;
        if (count == 0) {
            out.value = a;
            out.flags = in_flags;
            break;
        }
        out.value = a << count;
        const bool cf = (a >> (32 - count)) & 1;
        out.flags = makeFlags(out.value, cf,
                              ((out.value >> 31) & 1) != cf);
        break;
      }
      case Op::SHR: {
        const unsigned count = b & 31;
        if (count == 0) {
            out.value = a;
            out.flags = in_flags;
            break;
        }
        out.value = a >> count;
        out.flags = makeFlags(out.value, (a >> (count - 1)) & 1,
                              (a >> 31) & 1);
        break;
      }
      case Op::SAR: {
        const unsigned count = b & 31;
        if (count == 0) {
            out.value = a;
            out.flags = in_flags;
            break;
        }
        out.value = uint32_t(int32_t(a) >> count);
        out.flags = makeFlags(out.value, (a >> (count - 1)) & 1, false);
        break;
      }
      case Op::MUL: {
        const int64_t wide = int64_t(int32_t(a)) * int64_t(int32_t(b));
        out.value = uint32_t(wide);
        const bool ovf = wide != int64_t(int32_t(out.value));
        out.flags = makeFlags(out.value, ovf, ovf);
        break;
      }
      case Op::DIVQ:
      case Op::DIVR: {
        const uint64_t dividend = (uint64_t(c) << 32) | a;
        panic_if(b == 0, "micro-op divide by zero");
        out.value = op == Op::DIVQ ? uint32_t(dividend / b)
                                     : uint32_t(dividend % b);
        out.flags = in_flags;
        break;
      }
      case Op::NOT:
        out.value = ~a;
        break;
      case Op::NEG:
        out.value = 0 - a;
        out.flags = makeFlags(out.value, a != 0,
                              subOverflows(0, a, out.value));
        break;
      case Op::SETCC:
        out.value = (a & ~0xffU) |
                    (x86::condTaken(cc, in_flags) ? 1 : 0);
        break;
      case Op::FADD:
        out.value = asRaw(asFloat(a) + asFloat(b));
        break;
      case Op::FSUB:
        out.value = asRaw(asFloat(a) - asFloat(b));
        break;
      case Op::FMUL:
        out.value = asRaw(asFloat(a) * asFloat(b));
        break;
      case Op::FDIV: {
        const float fb = asFloat(b);
        out.value = asRaw(fb != 0.0f ? asFloat(a) / fb : 0.0f);
        break;
      }
      default:
        panic("evalAlu on non-ALU micro-op %s", opName(op));
    }
    return out;
}

bool
assertFires(const Uop &u, const x86::Flags &observed)
{
    panic_if(u.op != Op::ASSERT, "assertFires on %s", opName(u.op));
    return !x86::condTaken(u.cc, observed);
}

uint32_t
loadAddr(const Uop &u, uint32_t base, uint32_t index)
{
    uint32_t addr = uint32_t(u.imm);
    if (u.srcA != UReg::NONE)
        addr += base;
    if (u.srcB != UReg::NONE)
        addr += index * u.scale;
    return addr;
}

uint32_t
storeAddr(const Uop &u, uint32_t base, uint32_t index)
{
    uint32_t addr = uint32_t(u.imm);
    if (u.srcA != UReg::NONE)
        addr += base;
    if (u.srcC != UReg::NONE)
        addr += index * u.scale;
    return addr;
}

Evaluator::StepResult
Evaluator::exec(const Uop &u)
{
    StepResult result;

    auto regOr = [&](UReg r, uint32_t fallback) {
        return r == UReg::NONE ? fallback : regs_[unsigned(r)];
    };

    switch (u.op) {
      case Op::NOP:
      case Op::LONGFLOW:
        break;

      case Op::LOAD:
      case Op::FLOAD: {
        const uint32_t addr =
            loadAddr(u, regOr(u.srcA, 0), regOr(u.srcB, 0));
        uint32_t value = mem_.read(addr, u.memSize);
        if (u.signExtend && u.memSize < 4)
            value = uint32_t(sext(value, u.memSize * 8));
        result.memOps.push_back(
            {false, addr, u.memSize, mem_.read(addr, u.memSize)});
        regs_[unsigned(u.dst)] = value;
        break;
      }

      case Op::STORE:
      case Op::FSTORE: {
        const uint32_t addr =
            storeAddr(u, regOr(u.srcA, 0), regOr(u.srcC, 0));
        const uint32_t value = regs_[unsigned(u.srcB)];
        mem_.write(addr, u.memSize, value);
        result.memOps.push_back({true, addr, u.memSize, value});
        break;
      }

      case Op::BR:
        result.isControl = true;
        result.taken = x86::condTaken(u.cc, flags_);
        result.target = u.target;
        break;

      case Op::JMP:
        result.isControl = true;
        result.taken = true;
        result.target = u.target;
        break;

      case Op::JMPI:
        result.isControl = true;
        result.taken = true;
        result.target = regs_[unsigned(u.srcA)];
        break;

      case Op::ASSERT: {
        x86::Flags observed = flags_;
        if (u.valueAssert) {
            Uop cmp;
            cmp.op = u.assertOp;
            observed = evalAlu(cmp, regOr(u.srcA, 0),
                               u.srcB != UReg::NONE
                                   ? regs_[unsigned(u.srcB)]
                                   : uint32_t(u.imm),
                               0, flags_).flags;
        }
        result.asserted = assertFires(u, observed);
        break;
      }

      default: {
        const uint32_t a = regOr(u.srcA, 0);
        const uint32_t b = u.srcB != UReg::NONE ? regs_[unsigned(u.srcB)]
                                                : uint32_t(u.imm);
        const uint32_t c = regOr(u.srcC, 0);
        const AluResult alu = evalAlu(u, a, b, c, flags_);
        if (u.dst != UReg::NONE)
            regs_[unsigned(u.dst)] = alu.value;
        if (u.writesFlags)
            flags_ = alu.flags;
        break;
      }
    }
    return result;
}

} // namespace replay::uop
