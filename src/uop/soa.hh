/**
 * @file
 * Structure-of-arrays storage for micro-op sequences.
 *
 * The AoS `Uop` struct is ~48 bytes of mostly-cold fields; the frame
 * optimizer's passes, the static verifier's dataflow sweeps, and the
 * simulator's per-fetch loop each touch only a few of them per
 * micro-op.  UopSlab stores each field in its own contiguous plane so
 * those walks become linear scans of exactly the bytes they need, plus
 * a packed per-uop attribute bitset (`attr`) combining the boolean
 * behaviour flags with kind bits derived from the opcode, so the hot
 * isLoad/isStore/isMem/isControl tests are single AND instructions
 * with no switch.
 *
 * The planes live in ONE backing allocation (the slab), partitioned
 * at capacity-scaled offsets: 4-byte planes first, then 2-byte, then
 * the byte planes, so every plane is naturally aligned for any
 * capacity.  One slab = one malloc = one locality domain; growing or
 * copying a body is a single allocation plus per-plane memcpys, and
 * appends are a bounds check plus plain indexed stores — not
 * twenty-two per-vector grow checks.
 *
 * Lifetime/recycling rules (see DESIGN.md "SoA slab lifetime"): slabs
 * live inside pooled Frame bodies and thread-local optimizer scratch;
 * clear() keeps the backing slab, so a recycled body stops allocating
 * once warm, exactly like the PR 5 arena-backed vectors it replaces.
 * The attribute plane is derived state: push()/set() recompute it, and
 * code that mutates field planes directly must call refreshAttr()
 * (the optimization buffer does this on compaction).
 */

#ifndef REPLAY_UOP_SOA_HH
#define REPLAY_UOP_SOA_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>

#include "uop/uop.hh"

namespace replay::uop {

/** Bits of the packed per-uop attribute plane. */
enum UopAttr : uint16_t
{
    // Behaviour flags (mirrors of the boolean fields).
    UA_SIGN_EXTEND  = 1u << 0,
    UA_READS_FLAGS  = 1u << 1,
    UA_WRITES_FLAGS = 1u << 2,
    UA_CARRY_ONLY   = 1u << 3,
    UA_VALUE_ASSERT = 1u << 4,
    UA_LAST_OF_INST = 1u << 5,
    // Kind bits, a pure function of the opcode.
    UA_KIND_LOAD    = 1u << 8,
    UA_KIND_STORE   = 1u << 9,
    UA_KIND_CONTROL = 1u << 10,
    UA_KIND_ASSERT  = 1u << 11,
    UA_KIND_FP      = 1u << 12,

    UA_KIND_MEM = UA_KIND_LOAD | UA_KIND_STORE,
};

/** Kind bits of an opcode (branchless test fodder: one table load). */
constexpr uint16_t
kindBitsOf(Op op)
{
    switch (op) {
      case Op::LOAD:
        return UA_KIND_LOAD;
      case Op::FLOAD:
        return UA_KIND_LOAD | UA_KIND_FP;
      case Op::STORE:
        return UA_KIND_STORE;
      case Op::FSTORE:
        return UA_KIND_STORE | UA_KIND_FP;
      case Op::BR:
      case Op::JMP:
      case Op::JMPI:
        return UA_KIND_CONTROL;
      case Op::ASSERT:
        return UA_KIND_ASSERT;
      case Op::FADD:
      case Op::FSUB:
      case Op::FMUL:
      case Op::FDIV:
        return UA_KIND_FP;
      default:
        return 0;
    }
}

/**
 * A sequence of micro-ops, one plane per field, all planes in one
 * backing allocation.
 *
 * The plane pointers are public for indexed access (`slab.op[i]`);
 * slots at index >= size() are dead storage.  Iterate with size().
 */
struct UopSlab
{
    // ---- 4-byte planes --------------------------------------------------
    int32_t *imm = nullptr;
    uint32_t *target = nullptr;
    uint32_t *x86Pc = nullptr;
    // ---- 2-byte planes --------------------------------------------------
    uint16_t *instIdx = nullptr;
    /** Packed attribute bitset (UopAttr), derived from the fields. */
    uint16_t *attr = nullptr;
    // ---- byte planes ----------------------------------------------------
    Op *op = nullptr;
    x86::Cond *cc = nullptr;
    UReg *dst = nullptr;
    UReg *srcA = nullptr;           ///< architectural names
    UReg *srcB = nullptr;
    UReg *srcC = nullptr;
    uint8_t *scale = nullptr;
    uint8_t *memSize = nullptr;
    // Boolean behaviour flags, one byte each so passes can take
    // references; `attr` packs them (plus kind bits) for readers.
    uint8_t *signExtend = nullptr;
    uint8_t *readsFlags = nullptr;
    uint8_t *writesFlags = nullptr;
    uint8_t *flagsCarryOnly = nullptr;
    uint8_t *valueAssert = nullptr;
    uint8_t *lastOfInst = nullptr;
    Op *assertOp = nullptr;
    uint8_t *microIdx = nullptr;
    uint8_t *memSeq = nullptr;

    /** Bytes of slab storage per micro-op of capacity. */
    static constexpr size_t BYTES_PER_UOP = 3 * 4 + 2 * 2 + 17;

    UopSlab() = default;
    UopSlab(const UopSlab &o) { assign(o); }
    UopSlab &
    operator=(const UopSlab &o)
    {
        if (this != &o)
            assign(o);
        return *this;
    }
    UopSlab(UopSlab &&o) noexcept { *this = std::move(o); }
    UopSlab &operator=(UopSlab &&o) noexcept;
    ~UopSlab() = default;

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_t capacity() const { return cap_; }

    /** Reset to empty; the backing slab is kept (pool reuse). */
    void clear() { size_ = 0; }

    /** Ensure room for @p n micro-ops (one allocation). */
    void
    reserve(size_t n)
    {
        if (n > cap_)
            setCapacity(n);
    }

    /** Resize; new slots hold default-constructed micro-ops. */
    void resize(size_t n);

    /** Append one micro-op, scattering it across the planes. */
    void
    push(const Uop &u)
    {
        const size_t i = size_;
        if (i == cap_)
            grow();
        op[i] = u.op;
        cc[i] = u.cc;
        dst[i] = u.dst;
        srcA[i] = u.srcA;
        srcB[i] = u.srcB;
        srcC[i] = u.srcC;
        imm[i] = u.imm;
        scale[i] = u.scale;
        memSize[i] = u.memSize;
        signExtend[i] = u.signExtend;
        readsFlags[i] = u.readsFlags;
        writesFlags[i] = u.writesFlags;
        flagsCarryOnly[i] = u.flagsCarryOnly;
        valueAssert[i] = u.valueAssert;
        lastOfInst[i] = u.lastOfInst;
        assertOp[i] = u.assertOp;
        target[i] = u.target;
        x86Pc[i] = u.x86Pc;
        instIdx[i] = u.instIdx;
        microIdx[i] = u.microIdx;
        memSeq[i] = u.memSeq;
        attr[i] = attrOf(u);
        size_ = i + 1;
    }

    /** Append slot @p i of @p other (plane-wise; attr copied). */
    void
    pushFrom(const UopSlab &other, size_t i)
    {
        const size_t k = size_;
        if (k == cap_)
            grow();
        op[k] = other.op[i];
        cc[k] = other.cc[i];
        dst[k] = other.dst[i];
        srcA[k] = other.srcA[i];
        srcB[k] = other.srcB[i];
        srcC[k] = other.srcC[i];
        imm[k] = other.imm[i];
        scale[k] = other.scale[i];
        memSize[k] = other.memSize[i];
        signExtend[k] = other.signExtend[i];
        readsFlags[k] = other.readsFlags[i];
        writesFlags[k] = other.writesFlags[i];
        flagsCarryOnly[k] = other.flagsCarryOnly[i];
        valueAssert[k] = other.valueAssert[i];
        lastOfInst[k] = other.lastOfInst[i];
        assertOp[k] = other.assertOp[i];
        target[k] = other.target[i];
        x86Pc[k] = other.x86Pc[i];
        instIdx[k] = other.instIdx[i];
        microIdx[k] = other.microIdx[i];
        memSeq[k] = other.memSeq[i];
        attr[k] = other.attr[i];
        size_ = k + 1;
    }

    /** Gather slot @p i back into architectural form. */
    Uop
    get(size_t i) const
    {
        Uop u;
        u.op = op[i];
        u.cc = cc[i];
        u.dst = dst[i];
        u.srcA = srcA[i];
        u.srcB = srcB[i];
        u.srcC = srcC[i];
        u.imm = imm[i];
        u.scale = scale[i];
        u.memSize = memSize[i];
        u.signExtend = signExtend[i];
        u.readsFlags = readsFlags[i];
        u.writesFlags = writesFlags[i];
        u.flagsCarryOnly = flagsCarryOnly[i];
        u.valueAssert = valueAssert[i];
        u.lastOfInst = lastOfInst[i];
        u.assertOp = assertOp[i];
        u.target = target[i];
        u.x86Pc = x86Pc[i];
        u.instIdx = instIdx[i];
        u.microIdx = microIdx[i];
        u.memSeq = memSeq[i];
        return u;
    }

    /** Overwrite slot @p i (attr recomputed). */
    void
    set(size_t i, const Uop &u)
    {
        op[i] = u.op;
        cc[i] = u.cc;
        dst[i] = u.dst;
        srcA[i] = u.srcA;
        srcB[i] = u.srcB;
        srcC[i] = u.srcC;
        imm[i] = u.imm;
        scale[i] = u.scale;
        memSize[i] = u.memSize;
        signExtend[i] = u.signExtend;
        readsFlags[i] = u.readsFlags;
        writesFlags[i] = u.writesFlags;
        flagsCarryOnly[i] = u.flagsCarryOnly;
        valueAssert[i] = u.valueAssert;
        lastOfInst[i] = u.lastOfInst;
        assertOp[i] = u.assertOp;
        target[i] = u.target;
        x86Pc[i] = u.x86Pc;
        instIdx[i] = u.instIdx;
        microIdx[i] = u.microIdx;
        memSeq[i] = u.memSeq;
        attr[i] = attrOf(u);
    }

    /** Recompute the packed attribute bitset of slot @p i. */
    void
    refreshAttr(size_t i)
    {
        uint16_t a = kindBitsOf(op[i]);
        a |= signExtend[i] ? UA_SIGN_EXTEND : 0;
        a |= readsFlags[i] ? UA_READS_FLAGS : 0;
        a |= writesFlags[i] ? UA_WRITES_FLAGS : 0;
        a |= flagsCarryOnly[i] ? UA_CARRY_ONLY : 0;
        a |= valueAssert[i] ? UA_VALUE_ASSERT : 0;
        a |= lastOfInst[i] ? UA_LAST_OF_INST : 0;
        attr[i] = a;
    }

    /** The attribute bitset a micro-op would get. */
    static uint16_t
    attrOf(const Uop &u)
    {
        uint16_t a = kindBitsOf(u.op);
        a |= u.signExtend ? UA_SIGN_EXTEND : 0;
        a |= u.readsFlags ? UA_READS_FLAGS : 0;
        a |= u.writesFlags ? UA_WRITES_FLAGS : 0;
        a |= u.flagsCarryOnly ? UA_CARRY_ONLY : 0;
        a |= u.valueAssert ? UA_VALUE_ASSERT : 0;
        a |= u.lastOfInst ? UA_LAST_OF_INST : 0;
        return a;
    }

    /** Allocated footprint of the backing slab (governor model). */
    size_t memoryBytes() const { return cap_ * BYTES_PER_UOP; }

    /** Live-prefix equality (dead storage past size() is ignored). */
    bool operator==(const UopSlab &o) const;

  private:
    /** Move to a new backing slab of @p n slots, keeping live data. */
    void setCapacity(size_t n);

    /** Deep-copy @p o's live prefix (capacity grows if needed). */
    void assign(const UopSlab &o);

    /** Geometric growth for push paths. */
    void grow() { setCapacity(cap_ < 16 ? 32 : cap_ * 2); }

    std::unique_ptr<std::byte[]> buf_;
    size_t cap_ = 0;
    size_t size_ = 0;
};

} // namespace replay::uop

#endif // REPLAY_UOP_SOA_HH
