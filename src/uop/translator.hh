/**
 * @file
 * x86-to-rePLay micro-operation translator (§5.1.1).
 *
 * Each x86 instruction is decoded independently into a short flow of
 * fixed-format micro-ops; the flows mirror the paper's examples (PUSH is
 * a store plus a stack-pointer update, RET is a load, an update and an
 * indirect jump, ...).  Across the workloads the flows average ~1.4
 * micro-ops per x86 instruction, matching the paper's figure.
 */

#ifndef REPLAY_UOP_TRANSLATOR_HH
#define REPLAY_UOP_TRANSLATOR_HH

#include <vector>

#include "uop/uop.hh"
#include "x86/inst.hh"

namespace replay::uop {

/** Stateless x86 decode-flow engine. */
class Translator
{
  public:
    /**
     * Decode one x86 instruction into micro-ops, appending to @p out.
     *
     * @param inst     the instruction
     * @param pc       its address (provenance tagging)
     * @param next_pc  the fall-through address (CALL return address)
     * @return the number of micro-ops emitted
     */
    unsigned translate(const x86::Inst &inst, uint32_t pc,
                       uint32_t next_pc, std::vector<Uop> &out) const;

    /** Decode a flow into a fresh vector. */
    std::vector<Uop>
    translate(const x86::Inst &inst, uint32_t pc, uint32_t next_pc) const
    {
        std::vector<Uop> out;
        translate(inst, pc, next_pc, out);
        return out;
    }
};

} // namespace replay::uop

#endif // REPLAY_UOP_TRANSLATOR_HH
