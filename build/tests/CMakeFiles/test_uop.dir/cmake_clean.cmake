file(REMOVE_RECURSE
  "CMakeFiles/test_uop.dir/test_uop.cc.o"
  "CMakeFiles/test_uop.dir/test_uop.cc.o.d"
  "test_uop"
  "test_uop.pdb"
  "test_uop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
