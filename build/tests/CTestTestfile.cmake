# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_x86[1]_include.cmake")
include("/root/repo/build/tests/test_uop[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_verify[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
