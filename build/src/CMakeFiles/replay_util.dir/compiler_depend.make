# Empty compiler generated dependencies file for replay_util.
# This may be replaced when dependencies are built.
