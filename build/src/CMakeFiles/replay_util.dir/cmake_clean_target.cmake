file(REMOVE_RECURSE
  "libreplay_util.a"
)
