file(REMOVE_RECURSE
  "CMakeFiles/replay_util.dir/util/logging.cc.o"
  "CMakeFiles/replay_util.dir/util/logging.cc.o.d"
  "CMakeFiles/replay_util.dir/util/stats.cc.o"
  "CMakeFiles/replay_util.dir/util/stats.cc.o.d"
  "CMakeFiles/replay_util.dir/util/table.cc.o"
  "CMakeFiles/replay_util.dir/util/table.cc.o.d"
  "libreplay_util.a"
  "libreplay_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
