file(REMOVE_RECURSE
  "CMakeFiles/replay_uop.dir/uop/evaluator.cc.o"
  "CMakeFiles/replay_uop.dir/uop/evaluator.cc.o.d"
  "CMakeFiles/replay_uop.dir/uop/translator.cc.o"
  "CMakeFiles/replay_uop.dir/uop/translator.cc.o.d"
  "CMakeFiles/replay_uop.dir/uop/uop.cc.o"
  "CMakeFiles/replay_uop.dir/uop/uop.cc.o.d"
  "libreplay_uop.a"
  "libreplay_uop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_uop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
