file(REMOVE_RECURSE
  "libreplay_uop.a"
)
