# Empty compiler generated dependencies file for replay_uop.
# This may be replaced when dependencies are built.
