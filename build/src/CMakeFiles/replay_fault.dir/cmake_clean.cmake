file(REMOVE_RECURSE
  "CMakeFiles/replay_fault.dir/fault/faultinjector.cc.o"
  "CMakeFiles/replay_fault.dir/fault/faultinjector.cc.o.d"
  "libreplay_fault.a"
  "libreplay_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
