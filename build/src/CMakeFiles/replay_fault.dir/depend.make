# Empty dependencies file for replay_fault.
# This may be replaced when dependencies are built.
