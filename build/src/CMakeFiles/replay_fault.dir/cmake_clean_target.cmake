file(REMOVE_RECURSE
  "libreplay_fault.a"
)
