# Empty compiler generated dependencies file for replay_x86.
# This may be replaced when dependencies are built.
