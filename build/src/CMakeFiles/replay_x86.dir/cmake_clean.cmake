file(REMOVE_RECURSE
  "CMakeFiles/replay_x86.dir/x86/asmbuilder.cc.o"
  "CMakeFiles/replay_x86.dir/x86/asmbuilder.cc.o.d"
  "CMakeFiles/replay_x86.dir/x86/disasm.cc.o"
  "CMakeFiles/replay_x86.dir/x86/disasm.cc.o.d"
  "CMakeFiles/replay_x86.dir/x86/executor.cc.o"
  "CMakeFiles/replay_x86.dir/x86/executor.cc.o.d"
  "CMakeFiles/replay_x86.dir/x86/inst.cc.o"
  "CMakeFiles/replay_x86.dir/x86/inst.cc.o.d"
  "CMakeFiles/replay_x86.dir/x86/program.cc.o"
  "CMakeFiles/replay_x86.dir/x86/program.cc.o.d"
  "libreplay_x86.a"
  "libreplay_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
