file(REMOVE_RECURSE
  "libreplay_x86.a"
)
