
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x86/asmbuilder.cc" "src/CMakeFiles/replay_x86.dir/x86/asmbuilder.cc.o" "gcc" "src/CMakeFiles/replay_x86.dir/x86/asmbuilder.cc.o.d"
  "/root/repo/src/x86/disasm.cc" "src/CMakeFiles/replay_x86.dir/x86/disasm.cc.o" "gcc" "src/CMakeFiles/replay_x86.dir/x86/disasm.cc.o.d"
  "/root/repo/src/x86/executor.cc" "src/CMakeFiles/replay_x86.dir/x86/executor.cc.o" "gcc" "src/CMakeFiles/replay_x86.dir/x86/executor.cc.o.d"
  "/root/repo/src/x86/inst.cc" "src/CMakeFiles/replay_x86.dir/x86/inst.cc.o" "gcc" "src/CMakeFiles/replay_x86.dir/x86/inst.cc.o.d"
  "/root/repo/src/x86/program.cc" "src/CMakeFiles/replay_x86.dir/x86/program.cc.o" "gcc" "src/CMakeFiles/replay_x86.dir/x86/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/replay_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
