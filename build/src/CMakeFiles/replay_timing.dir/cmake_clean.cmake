file(REMOVE_RECURSE
  "CMakeFiles/replay_timing.dir/timing/accounting.cc.o"
  "CMakeFiles/replay_timing.dir/timing/accounting.cc.o.d"
  "CMakeFiles/replay_timing.dir/timing/cache.cc.o"
  "CMakeFiles/replay_timing.dir/timing/cache.cc.o.d"
  "CMakeFiles/replay_timing.dir/timing/fetch.cc.o"
  "CMakeFiles/replay_timing.dir/timing/fetch.cc.o.d"
  "CMakeFiles/replay_timing.dir/timing/pipeline.cc.o"
  "CMakeFiles/replay_timing.dir/timing/pipeline.cc.o.d"
  "CMakeFiles/replay_timing.dir/timing/predictor.cc.o"
  "CMakeFiles/replay_timing.dir/timing/predictor.cc.o.d"
  "CMakeFiles/replay_timing.dir/timing/window.cc.o"
  "CMakeFiles/replay_timing.dir/timing/window.cc.o.d"
  "libreplay_timing.a"
  "libreplay_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
