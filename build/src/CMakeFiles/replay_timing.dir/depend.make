# Empty dependencies file for replay_timing.
# This may be replaced when dependencies are built.
