file(REMOVE_RECURSE
  "libreplay_timing.a"
)
