file(REMOVE_RECURSE
  "libreplay_sim.a"
)
