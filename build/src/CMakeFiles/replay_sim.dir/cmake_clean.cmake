file(REMOVE_RECURSE
  "CMakeFiles/replay_sim.dir/sim/config.cc.o"
  "CMakeFiles/replay_sim.dir/sim/config.cc.o.d"
  "CMakeFiles/replay_sim.dir/sim/results.cc.o"
  "CMakeFiles/replay_sim.dir/sim/results.cc.o.d"
  "CMakeFiles/replay_sim.dir/sim/runner.cc.o"
  "CMakeFiles/replay_sim.dir/sim/runner.cc.o.d"
  "CMakeFiles/replay_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/replay_sim.dir/sim/simulator.cc.o.d"
  "CMakeFiles/replay_sim.dir/sim/tracecachefill.cc.o"
  "CMakeFiles/replay_sim.dir/sim/tracecachefill.cc.o.d"
  "libreplay_sim.a"
  "libreplay_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
