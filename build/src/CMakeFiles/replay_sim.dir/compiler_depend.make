# Empty compiler generated dependencies file for replay_sim.
# This may be replaced when dependencies are built.
