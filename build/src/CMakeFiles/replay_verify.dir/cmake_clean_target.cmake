file(REMOVE_RECURSE
  "libreplay_verify.a"
)
