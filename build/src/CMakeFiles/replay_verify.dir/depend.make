# Empty dependencies file for replay_verify.
# This may be replaced when dependencies are built.
