file(REMOVE_RECURSE
  "CMakeFiles/replay_verify.dir/verify/memmap.cc.o"
  "CMakeFiles/replay_verify.dir/verify/memmap.cc.o.d"
  "CMakeFiles/replay_verify.dir/verify/online.cc.o"
  "CMakeFiles/replay_verify.dir/verify/online.cc.o.d"
  "CMakeFiles/replay_verify.dir/verify/verifier.cc.o"
  "CMakeFiles/replay_verify.dir/verify/verifier.cc.o.d"
  "libreplay_verify.a"
  "libreplay_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
