file(REMOVE_RECURSE
  "CMakeFiles/replay_trace.dir/trace/personalities.cc.o"
  "CMakeFiles/replay_trace.dir/trace/personalities.cc.o.d"
  "CMakeFiles/replay_trace.dir/trace/record.cc.o"
  "CMakeFiles/replay_trace.dir/trace/record.cc.o.d"
  "CMakeFiles/replay_trace.dir/trace/tracefile.cc.o"
  "CMakeFiles/replay_trace.dir/trace/tracefile.cc.o.d"
  "CMakeFiles/replay_trace.dir/trace/tracer.cc.o"
  "CMakeFiles/replay_trace.dir/trace/tracer.cc.o.d"
  "CMakeFiles/replay_trace.dir/trace/workload.cc.o"
  "CMakeFiles/replay_trace.dir/trace/workload.cc.o.d"
  "libreplay_trace.a"
  "libreplay_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
