file(REMOVE_RECURSE
  "libreplay_trace.a"
)
