file(REMOVE_RECURSE
  "CMakeFiles/replay_core.dir/core/aliasprofile.cc.o"
  "CMakeFiles/replay_core.dir/core/aliasprofile.cc.o.d"
  "CMakeFiles/replay_core.dir/core/biastable.cc.o"
  "CMakeFiles/replay_core.dir/core/biastable.cc.o.d"
  "CMakeFiles/replay_core.dir/core/constructor.cc.o"
  "CMakeFiles/replay_core.dir/core/constructor.cc.o.d"
  "CMakeFiles/replay_core.dir/core/frame.cc.o"
  "CMakeFiles/replay_core.dir/core/frame.cc.o.d"
  "CMakeFiles/replay_core.dir/core/framecache.cc.o"
  "CMakeFiles/replay_core.dir/core/framecache.cc.o.d"
  "CMakeFiles/replay_core.dir/core/quarantine.cc.o"
  "CMakeFiles/replay_core.dir/core/quarantine.cc.o.d"
  "CMakeFiles/replay_core.dir/core/sequencer.cc.o"
  "CMakeFiles/replay_core.dir/core/sequencer.cc.o.d"
  "libreplay_core.a"
  "libreplay_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
