
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aliasprofile.cc" "src/CMakeFiles/replay_core.dir/core/aliasprofile.cc.o" "gcc" "src/CMakeFiles/replay_core.dir/core/aliasprofile.cc.o.d"
  "/root/repo/src/core/biastable.cc" "src/CMakeFiles/replay_core.dir/core/biastable.cc.o" "gcc" "src/CMakeFiles/replay_core.dir/core/biastable.cc.o.d"
  "/root/repo/src/core/constructor.cc" "src/CMakeFiles/replay_core.dir/core/constructor.cc.o" "gcc" "src/CMakeFiles/replay_core.dir/core/constructor.cc.o.d"
  "/root/repo/src/core/frame.cc" "src/CMakeFiles/replay_core.dir/core/frame.cc.o" "gcc" "src/CMakeFiles/replay_core.dir/core/frame.cc.o.d"
  "/root/repo/src/core/framecache.cc" "src/CMakeFiles/replay_core.dir/core/framecache.cc.o" "gcc" "src/CMakeFiles/replay_core.dir/core/framecache.cc.o.d"
  "/root/repo/src/core/quarantine.cc" "src/CMakeFiles/replay_core.dir/core/quarantine.cc.o" "gcc" "src/CMakeFiles/replay_core.dir/core/quarantine.cc.o.d"
  "/root/repo/src/core/sequencer.cc" "src/CMakeFiles/replay_core.dir/core/sequencer.cc.o" "gcc" "src/CMakeFiles/replay_core.dir/core/sequencer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/replay_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/replay_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/replay_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/replay_uop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/replay_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/replay_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
