file(REMOVE_RECURSE
  "libreplay_core.a"
)
