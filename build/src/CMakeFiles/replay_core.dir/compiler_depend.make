# Empty compiler generated dependencies file for replay_core.
# This may be replaced when dependencies are built.
