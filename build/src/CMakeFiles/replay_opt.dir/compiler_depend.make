# Empty compiler generated dependencies file for replay_opt.
# This may be replaced when dependencies are built.
