
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/datapath.cc" "src/CMakeFiles/replay_opt.dir/opt/datapath.cc.o" "gcc" "src/CMakeFiles/replay_opt.dir/opt/datapath.cc.o.d"
  "/root/repo/src/opt/frameexec.cc" "src/CMakeFiles/replay_opt.dir/opt/frameexec.cc.o" "gcc" "src/CMakeFiles/replay_opt.dir/opt/frameexec.cc.o.d"
  "/root/repo/src/opt/optbuffer.cc" "src/CMakeFiles/replay_opt.dir/opt/optbuffer.cc.o" "gcc" "src/CMakeFiles/replay_opt.dir/opt/optbuffer.cc.o.d"
  "/root/repo/src/opt/optimizer.cc" "src/CMakeFiles/replay_opt.dir/opt/optimizer.cc.o" "gcc" "src/CMakeFiles/replay_opt.dir/opt/optimizer.cc.o.d"
  "/root/repo/src/opt/pass_assert.cc" "src/CMakeFiles/replay_opt.dir/opt/pass_assert.cc.o" "gcc" "src/CMakeFiles/replay_opt.dir/opt/pass_assert.cc.o.d"
  "/root/repo/src/opt/pass_constprop.cc" "src/CMakeFiles/replay_opt.dir/opt/pass_constprop.cc.o" "gcc" "src/CMakeFiles/replay_opt.dir/opt/pass_constprop.cc.o.d"
  "/root/repo/src/opt/pass_cse.cc" "src/CMakeFiles/replay_opt.dir/opt/pass_cse.cc.o" "gcc" "src/CMakeFiles/replay_opt.dir/opt/pass_cse.cc.o.d"
  "/root/repo/src/opt/pass_dce.cc" "src/CMakeFiles/replay_opt.dir/opt/pass_dce.cc.o" "gcc" "src/CMakeFiles/replay_opt.dir/opt/pass_dce.cc.o.d"
  "/root/repo/src/opt/pass_nop.cc" "src/CMakeFiles/replay_opt.dir/opt/pass_nop.cc.o" "gcc" "src/CMakeFiles/replay_opt.dir/opt/pass_nop.cc.o.d"
  "/root/repo/src/opt/pass_reassoc.cc" "src/CMakeFiles/replay_opt.dir/opt/pass_reassoc.cc.o" "gcc" "src/CMakeFiles/replay_opt.dir/opt/pass_reassoc.cc.o.d"
  "/root/repo/src/opt/pass_storefwd.cc" "src/CMakeFiles/replay_opt.dir/opt/pass_storefwd.cc.o" "gcc" "src/CMakeFiles/replay_opt.dir/opt/pass_storefwd.cc.o.d"
  "/root/repo/src/opt/passes.cc" "src/CMakeFiles/replay_opt.dir/opt/passes.cc.o" "gcc" "src/CMakeFiles/replay_opt.dir/opt/passes.cc.o.d"
  "/root/repo/src/opt/remapper.cc" "src/CMakeFiles/replay_opt.dir/opt/remapper.cc.o" "gcc" "src/CMakeFiles/replay_opt.dir/opt/remapper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/replay_uop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/replay_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/replay_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
