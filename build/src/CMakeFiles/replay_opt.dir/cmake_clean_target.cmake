file(REMOVE_RECURSE
  "libreplay_opt.a"
)
