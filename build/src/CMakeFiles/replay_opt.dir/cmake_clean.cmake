file(REMOVE_RECURSE
  "CMakeFiles/replay_opt.dir/opt/datapath.cc.o"
  "CMakeFiles/replay_opt.dir/opt/datapath.cc.o.d"
  "CMakeFiles/replay_opt.dir/opt/frameexec.cc.o"
  "CMakeFiles/replay_opt.dir/opt/frameexec.cc.o.d"
  "CMakeFiles/replay_opt.dir/opt/optbuffer.cc.o"
  "CMakeFiles/replay_opt.dir/opt/optbuffer.cc.o.d"
  "CMakeFiles/replay_opt.dir/opt/optimizer.cc.o"
  "CMakeFiles/replay_opt.dir/opt/optimizer.cc.o.d"
  "CMakeFiles/replay_opt.dir/opt/pass_assert.cc.o"
  "CMakeFiles/replay_opt.dir/opt/pass_assert.cc.o.d"
  "CMakeFiles/replay_opt.dir/opt/pass_constprop.cc.o"
  "CMakeFiles/replay_opt.dir/opt/pass_constprop.cc.o.d"
  "CMakeFiles/replay_opt.dir/opt/pass_cse.cc.o"
  "CMakeFiles/replay_opt.dir/opt/pass_cse.cc.o.d"
  "CMakeFiles/replay_opt.dir/opt/pass_dce.cc.o"
  "CMakeFiles/replay_opt.dir/opt/pass_dce.cc.o.d"
  "CMakeFiles/replay_opt.dir/opt/pass_nop.cc.o"
  "CMakeFiles/replay_opt.dir/opt/pass_nop.cc.o.d"
  "CMakeFiles/replay_opt.dir/opt/pass_reassoc.cc.o"
  "CMakeFiles/replay_opt.dir/opt/pass_reassoc.cc.o.d"
  "CMakeFiles/replay_opt.dir/opt/pass_storefwd.cc.o"
  "CMakeFiles/replay_opt.dir/opt/pass_storefwd.cc.o.d"
  "CMakeFiles/replay_opt.dir/opt/passes.cc.o"
  "CMakeFiles/replay_opt.dir/opt/passes.cc.o.d"
  "CMakeFiles/replay_opt.dir/opt/remapper.cc.o"
  "CMakeFiles/replay_opt.dir/opt/remapper.cc.o.d"
  "libreplay_opt.a"
  "libreplay_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
