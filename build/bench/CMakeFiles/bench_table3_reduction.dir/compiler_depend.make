# Empty compiler generated dependencies file for bench_table3_reduction.
# This may be replaced when dependencies are built.
