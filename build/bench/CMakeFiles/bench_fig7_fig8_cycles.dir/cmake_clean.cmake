file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fig8_cycles.dir/bench_fig7_fig8_cycles.cc.o"
  "CMakeFiles/bench_fig7_fig8_cycles.dir/bench_fig7_fig8_cycles.cc.o.d"
  "bench_fig7_fig8_cycles"
  "bench_fig7_fig8_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fig8_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
