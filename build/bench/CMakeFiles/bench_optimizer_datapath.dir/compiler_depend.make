# Empty compiler generated dependencies file for bench_optimizer_datapath.
# This may be replaced when dependencies are built.
