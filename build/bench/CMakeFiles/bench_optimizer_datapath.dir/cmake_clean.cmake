file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_datapath.dir/bench_optimizer_datapath.cc.o"
  "CMakeFiles/bench_optimizer_datapath.dir/bench_optimizer_datapath.cc.o.d"
  "bench_optimizer_datapath"
  "bench_optimizer_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
