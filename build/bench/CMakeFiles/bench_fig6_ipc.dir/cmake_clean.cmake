file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ipc.dir/bench_fig6_ipc.cc.o"
  "CMakeFiles/bench_fig6_ipc.dir/bench_fig6_ipc.cc.o.d"
  "bench_fig6_ipc"
  "bench_fig6_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
