file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_block_vs_frame.dir/bench_fig9_block_vs_frame.cc.o"
  "CMakeFiles/bench_fig9_block_vs_frame.dir/bench_fig9_block_vs_frame.cc.o.d"
  "bench_fig9_block_vs_frame"
  "bench_fig9_block_vs_frame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_block_vs_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
