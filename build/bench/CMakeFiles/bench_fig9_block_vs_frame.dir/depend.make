# Empty dependencies file for bench_fig9_block_vs_frame.
# This may be replaced when dependencies are built.
