file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_campaign.dir/bench_fault_campaign.cc.o"
  "CMakeFiles/bench_fault_campaign.dir/bench_fault_campaign.cc.o.d"
  "bench_fault_campaign"
  "bench_fault_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
