# Empty dependencies file for bench_fault_campaign.
# This may be replaced when dependencies are built.
