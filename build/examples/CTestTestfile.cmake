# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_crafty_procedure "/root/repo/build/examples/crafty_procedure")
set_tests_properties(example_crafty_procedure PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_machine_comparison "/root/repo/build/examples/machine_comparison" "crafty" "60000")
set_tests_properties(example_machine_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_workload "/root/repo/build/examples/custom_workload")
set_tests_properties(example_custom_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_inspector "/root/repo/build/examples/trace_inspector" "gzip" "30000")
set_tests_properties(example_trace_inspector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
