file(REMOVE_RECURSE
  "CMakeFiles/crafty_procedure.dir/crafty_procedure.cc.o"
  "CMakeFiles/crafty_procedure.dir/crafty_procedure.cc.o.d"
  "crafty_procedure"
  "crafty_procedure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crafty_procedure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
