# Empty dependencies file for crafty_procedure.
# This may be replaced when dependencies are built.
