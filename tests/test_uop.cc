/**
 * @file
 * Tests for the rePLay ISA: translator decode flows and the functional
 * equivalence of the micro-op stream with the x86 executor.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "trace/workload.hh"
#include "uop/evaluator.hh"
#include "uop/translator.hh"
#include "x86/asmbuilder.hh"
#include "x86/executor.hh"

using namespace replay;
using namespace replay::uop;
using x86::AsmBuilder;
using x86::Cond;
using x86::memAt;
using x86::Reg;

namespace {

std::vector<Uop>
flowFor(const x86::Inst &inst)
{
    Translator t;
    return t.translate(inst, 0x1000, 0x1000 + inst.modeledLength());
}

} // namespace

TEST(Translator, PushIsStorePlusStackUpdate)
{
    x86::Inst push;
    push.mnem = x86::Mnem::PUSH;
    push.form = x86::Form::R;
    push.reg2 = Reg::EBP;
    const auto flow = flowFor(push);
    ASSERT_EQ(flow.size(), 2u);
    EXPECT_EQ(flow[0].op, Op::STORE);
    EXPECT_EQ(flow[0].srcA, UReg::ESP);
    EXPECT_EQ(flow[0].imm, -4);
    EXPECT_EQ(flow[0].srcB, UReg::EBP);
    EXPECT_EQ(flow[1].op, Op::SUB);
    EXPECT_EQ(flow[1].dst, UReg::ESP);
    EXPECT_FALSE(flow[1].writesFlags);
    EXPECT_TRUE(flow[1].lastOfInst);
    EXPECT_FALSE(flow[0].lastOfInst);
}

TEST(Translator, RetMatchesPaperFlow)
{
    x86::Inst ret;
    ret.mnem = x86::Mnem::RET;
    const auto flow = flowFor(ret);
    ASSERT_EQ(flow.size(), 3u);
    EXPECT_EQ(flow[0].op, Op::LOAD);    // ET <- SS:[ESP]
    EXPECT_EQ(flow[0].srcA, UReg::ESP);
    EXPECT_EQ(flow[0].imm, 0);
    EXPECT_EQ(flow[1].op, Op::ADD);     // ESP <- ESP + 4
    EXPECT_EQ(flow[2].op, Op::JMPI);    // jump (ET)
    EXPECT_EQ(flow[2].srcA, flow[0].dst);
}

TEST(Translator, TwoAddressAluBecomesThreeOperand)
{
    x86::Inst orr;
    orr.mnem = x86::Mnem::OR;
    orr.form = x86::Form::RR;
    orr.reg1 = Reg::EDX;
    orr.reg2 = Reg::EBX;
    const auto flow = flowFor(orr);
    ASSERT_EQ(flow.size(), 1u);
    EXPECT_EQ(flow[0].op, Op::OR);
    EXPECT_EQ(flow[0].dst, UReg::EDX);
    EXPECT_EQ(flow[0].srcA, UReg::EDX);
    EXPECT_EQ(flow[0].srcB, UReg::EBX);
    EXPECT_TRUE(flow[0].writesFlags);
}

TEST(Translator, CmpWritesOnlyFlags)
{
    x86::Inst cmp;
    cmp.mnem = x86::Mnem::CMP;
    cmp.form = x86::Form::RI;
    cmp.reg1 = Reg::EAX;
    cmp.imm = 7;
    const auto flow = flowFor(cmp);
    ASSERT_EQ(flow.size(), 1u);
    EXPECT_EQ(flow[0].op, Op::CMP);
    EXPECT_EQ(flow[0].dst, UReg::NONE);
    EXPECT_TRUE(flow[0].writesFlags);
}

TEST(Translator, DivUsesFixedRegisters)
{
    x86::Inst div;
    div.mnem = x86::Mnem::DIV;
    div.form = x86::Form::R;
    div.reg2 = Reg::EBX;
    const auto flow = flowFor(div);
    ASSERT_EQ(flow.size(), 3u);
    EXPECT_EQ(flow[0].op, Op::DIVQ);
    EXPECT_EQ(flow[0].srcA, UReg::EAX);
    EXPECT_EQ(flow[0].srcC, UReg::EDX);
    EXPECT_EQ(flow[1].op, Op::DIVR);
    EXPECT_EQ(flow[1].dst, UReg::EDX);
    EXPECT_EQ(flow[2].op, Op::MOV);
    EXPECT_EQ(flow[2].dst, UReg::EAX);
}

TEST(Translator, CallPushesReturnAddress)
{
    x86::Inst call;
    call.mnem = x86::Mnem::CALL;
    call.form = x86::Form::REL;
    call.target = 0x5000;
    Translator t;
    const auto flow = t.translate(call, 0x1000, 0x1005);
    ASSERT_EQ(flow.size(), 4u);
    EXPECT_EQ(flow[0].op, Op::LIMM);
    EXPECT_EQ(flow[0].imm, 0x1005);
    EXPECT_EQ(flow[1].op, Op::STORE);
    EXPECT_EQ(flow[2].op, Op::SUB);
    EXPECT_EQ(flow[3].op, Op::JMP);
    EXPECT_EQ(flow[3].target, 0x5000u);
}

TEST(Translator, MemOperandKeepsScaledIndex)
{
    x86::Inst mov;
    mov.mnem = x86::Mnem::MOV;
    mov.form = x86::Form::RM;
    mov.reg1 = Reg::EAX;
    mov.mem = memAt(Reg::EBX, Reg::ECX, 4, 16);
    const auto flow = flowFor(mov);
    ASSERT_EQ(flow.size(), 1u);
    EXPECT_EQ(flow[0].op, Op::LOAD);
    EXPECT_EQ(flow[0].srcA, UReg::EBX);
    EXPECT_EQ(flow[0].srcB, UReg::ECX);
    EXPECT_EQ(flow[0].scale, 4u);
    EXPECT_EQ(flow[0].imm, 16);
}

TEST(Translator, ProvenanceTagging)
{
    x86::Inst push;
    push.mnem = x86::Mnem::PUSH;
    push.form = x86::Form::R;
    push.reg2 = Reg::EAX;
    Translator t;
    const auto flow = t.translate(push, 0xabcd, 0xabce);
    EXPECT_EQ(flow[0].x86Pc, 0xabcdu);
    EXPECT_EQ(flow[0].microIdx, 0u);
    EXPECT_EQ(flow[1].microIdx, 1u);
}

// ---------------------------------------------------------------------
// Functional equivalence: x86 executor vs translated micro-op stream.
// ---------------------------------------------------------------------

namespace {

/**
 * Run @p steps instructions both ways and compare the full
 * architectural state after every instruction.
 */
void
crossCheck(const x86::Program &prog, uint64_t steps)
{
    x86::Executor xexec(prog);

    x86::SparseMemory umem;
    for (const auto &seg : prog.data())
        umem.loadSegment(seg);
    Evaluator ueval(umem);
    ueval.setReg(UReg::ESP, prog.stackTop());
    ueval.setReg(UReg::EBP, prog.stackTop());

    Translator trans;
    uint32_t upc = prog.entry();

    for (uint64_t i = 0; i < steps; ++i) {
        const auto &placed = prog.at(upc);
        const x86::StepInfo info = xexec.step();
        ASSERT_EQ(info.pc, upc) << "diverged at step " << i;

        const auto flow =
            trans.translate(placed.inst, upc, upc + placed.length);
        uint32_t unext = upc + placed.length;
        for (const auto &u : flow) {
            const auto r = ueval.exec(u);
            if (r.isControl && r.taken)
                unext = r.target;
            ASSERT_FALSE(r.asserted);
        }
        upc = unext;

        ASSERT_EQ(upc, info.nextPc)
            << "control divergence at step " << i << " pc=0x" << std::hex
            << info.pc;
        for (unsigned r = 0; r < 8; ++r) {
            ASSERT_EQ(ueval.reg(static_cast<UReg>(r)),
                      xexec.reg(static_cast<Reg>(r)))
                << "reg " << x86::regName(static_cast<Reg>(r))
                << " mismatch after step " << i << " pc=0x" << std::hex
                << info.pc;
        }
        ASSERT_EQ(ueval.flags().pack(), xexec.flags().pack())
            << "flags mismatch after step " << i << " pc=0x" << std::hex
            << info.pc;
        for (unsigned f = 0; f < 8; ++f) {
            uint32_t raw;
            const float fv = xexec.freg(static_cast<x86::FReg>(f));
            std::memcpy(&raw, &fv, 4);
            ASSERT_EQ(ueval.reg(fpr(static_cast<x86::FReg>(f))), raw)
                << "freg mismatch after step " << i;
        }
    }
}

} // namespace

TEST(Equivalence, HandWrittenKernel)
{
    AsmBuilder b;
    const uint32_t d = b.dataRegion("d", 256);
    b.dataWords("d", {1, 2, 3, 4, 5, 6, 7, 8});
    b.movRI(Reg::ESI, int32_t(d));
    b.movRI(Reg::ECX, 4);
    b.label("loop");
    b.movRM(Reg::EAX, memAt(Reg::ESI, 0));
    b.addRM(Reg::EAX, memAt(Reg::ESI, 4));
    b.pushR(Reg::EAX);
    b.popR(Reg::EBX);
    b.movMR(memAt(Reg::ESI, 8), Reg::EBX);
    b.addRI(Reg::ESI, 4);
    b.decR(Reg::ECX);
    b.jcc(Cond::NE, "loop");
    b.label("done");
    b.jmp("done");

    const x86::Program prog = b.build();
    crossCheck(prog, 30);
}

TEST(Equivalence, EverySynthesizedWorkload)
{
    // The strongest translator test: every personality, thousands of
    // dynamic instructions, full state comparison each step.
    for (const auto &w : trace::standardWorkloads()) {
        SCOPED_TRACE(w.name);
        const x86::Program prog = w.buildProgram(0);
        crossCheck(prog, 5000);
    }
}

TEST(UopFormat, RendersPaperStyle)
{
    Uop u;
    u.op = Op::OR;
    u.dst = UReg::EDX;
    u.srcA = UReg::ECX;
    u.srcB = UReg::EBX;
    u.writesFlags = true;
    EXPECT_EQ(format(u), "EDX,flags <- OR ECX, EBX");

    Uop st;
    st.op = Op::STORE;
    st.srcA = UReg::ESP;
    st.imm = -4;
    st.srcB = UReg::EBP;
    EXPECT_EQ(format(st), "[ESP-0x4] <- EBP");
}

TEST(AluSemantics, ShiftFlagBehaviour)
{
    Uop shl;
    shl.op = Op::SHL;
    shl.writesFlags = true;
    const auto r = evalAlu(shl, 0x80000001, 1, 0, x86::Flags{});
    EXPECT_EQ(r.value, 2u);
    EXPECT_TRUE(r.flags.cf);        // bit shifted out
}

TEST(AluSemantics, CarryPreservingAdd)
{
    Uop inc;
    inc.op = Op::ADD;
    inc.flagsCarryOnly = true;
    x86::Flags in;
    in.cf = true;
    const auto r = evalAlu(inc, 7, 1, 0, in);
    EXPECT_EQ(r.value, 8u);
    EXPECT_TRUE(r.flags.cf);        // preserved, not recomputed
}

TEST(AluSemantics, DivQuotientRemainder)
{
    Uop q;
    q.op = Op::DIVQ;
    EXPECT_EQ(evalAlu(q, 100, 7, 0, x86::Flags{}).value, 14u);
    Uop rm;
    rm.op = Op::DIVR;
    EXPECT_EQ(evalAlu(rm, 100, 7, 0, x86::Flags{}).value, 2u);
    // 64-bit dividend through srcC.
    EXPECT_EQ(evalAlu(q, 0, 2, 1, x86::Flags{}).value, 0x80000000u);
}

TEST(Asserts, FireOnFalseCondition)
{
    Uop a;
    a.op = Op::ASSERT;
    a.cc = Cond::NE;
    x86::Flags zf_set;
    zf_set.zf = true;
    EXPECT_TRUE(assertFires(a, zf_set));
    EXPECT_FALSE(assertFires(a, x86::Flags{}));
}
