/**
 * @file
 * Tests for the utility substrate: bit manipulation, RNG determinism,
 * statistics, and table rendering.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "util/bitfield.hh"
#include "util/flathash.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace replay;

TEST(Bitfield, BasicExtractInsert)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(64), ~0ULL);
    EXPECT_EQ(bits(0xabcd, 15, 8), 0xabu);
    EXPECT_EQ(insertBits(0xff00, 7, 0, 0x12), 0xff12u);
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(0x7f, 8), 127);
}

TEST(Bitfield, PowersAndLogs)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(48));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(4097), 12u);
}

TEST(Bitfield, Parity)
{
    EXPECT_EQ(parity(0), 0u);
    EXPECT_EQ(parity(1), 1u);
    EXPECT_EQ(parity(0b1011), 1u);
    EXPECT_EQ(parity(0b1111), 0u);
}

TEST(Rng, DeterministicStreams)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 100 && !differs; ++i)
        differs = a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(r.below(17), 17u);
        const int64_t v = r.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        const double d = r.real();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng r(99);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Stats, CountersAndMerge)
{
    StatGroup g("cache");
    ++g.counter("hits");
    g.counter("hits") += 9;
    g.counter("misses") += 3;
    EXPECT_EQ(g.get("hits"), 10u);
    EXPECT_EQ(g.get("absent"), 0u);

    StatGroup h("cache");
    h.counter("hits") += 5;
    h.counter("evictions") += 2;
    g.merge(h);
    EXPECT_EQ(g.get("hits"), 15u);
    EXPECT_EQ(g.get("evictions"), 2u);
}

TEST(Stats, HistogramMoments)
{
    Histogram h(8);
    for (size_t v : {1, 1, 2, 3, 100})
        h.sample(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(8), 1u);     // overflow bucket
    EXPECT_DOUBLE_EQ(h.mean(), 107.0 / 5.0);
}

TEST(Table, AlignsColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"alpha", "1.00"});
    t.row({"b", "10.25"});
    const std::string out = t.render();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("10.25"), std::string::npos);
    // Numeric cells right-aligned: "1.00" ends at same column as
    // "10.25".
    const auto l1 = out.find("1.00");
    const auto l2 = out.find("10.25");
    EXPECT_EQ(out.find('\n', l1) - l1 - 4, out.find('\n', l2) - l2 - 5);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(TextTable::fixed(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::percent(0.216, 0), "22%");
    EXPECT_EQ(TextTable::percent(0.216, 1), "21.6%");
}

// ---------------------------------------------------------------------
// Death reporting (panic/fatal) via the test-only death hook
// ---------------------------------------------------------------------

#include <stdexcept>

#include "util/logging.hh"

namespace {

struct DeathInfo
{
    std::string kind;
    std::string file;
    int line = 0;
    std::string message;
};

DeathInfo lastDeath;

[[noreturn]] void
throwingHandler(const char *kind, const char *file, int line,
                const char *message)
{
    lastDeath = {kind, file, line, message};
    throw std::runtime_error(message);
}

} // anonymous namespace

TEST(Logging, PanicReportsFileLineAndMessage)
{
    DeathHandler prev = setDeathHandler(throwingHandler);
    EXPECT_THROW(panic("bad state %d", 42), std::runtime_error);
    setDeathHandler(prev);

    EXPECT_EQ(lastDeath.kind, "panic");
    EXPECT_NE(lastDeath.file.find("test_util.cc"), std::string::npos);
    EXPECT_GT(lastDeath.line, 0);
    EXPECT_EQ(lastDeath.message, "bad state 42");
}

TEST(Logging, FatalReportsFileLineAndMessage)
{
    DeathHandler prev = setDeathHandler(throwingHandler);
    EXPECT_THROW(fatal("cannot open '%s'", "trace.rplt"),
                 std::runtime_error);
    setDeathHandler(prev);

    EXPECT_EQ(lastDeath.kind, "fatal");
    EXPECT_EQ(lastDeath.message, "cannot open 'trace.rplt'");
}

TEST(Logging, GuardMacrosFireOnlyWhenConditionHolds)
{
    DeathHandler prev = setDeathHandler(throwingHandler);
    EXPECT_NO_THROW(panic_if(false, "unreachable"));
    EXPECT_NO_THROW(fatal_if(false, "unreachable"));
    EXPECT_THROW(panic_if(1 + 1 == 2, "invariant"), std::runtime_error);
    EXPECT_THROW(fatal_if(true, "user error"), std::runtime_error);
    setDeathHandler(prev);
}

TEST(Logging, InstallReturnsPreviousHandler)
{
    DeathHandler prev = setDeathHandler(throwingHandler);
    EXPECT_EQ(setDeathHandler(prev), &throwingHandler);
}

// ---------------------------------------------------------------------
// ThreadPool late-failure capture (the detached tier-worker pattern)
// ---------------------------------------------------------------------

#include <atomic>
#include <chrono>
#include <thread>

#include "util/threadpool.hh"

TEST(ThreadPool, ErrorAfterIdleWaitIsNotLost)
{
    // Background-queue workers submit jobs long after the producer's
    // last wait() returned.  A throw from such a "detached" job must
    // be captured — not lost, not std::terminate — and resurface from
    // whichever wait() comes next.
    ThreadPool pool(2);
    pool.submit([] {});
    pool.wait();                // pool is idle; error slot is clear

    pool.submit([] { throw std::runtime_error("late failure"); });
    // Give the worker time to run and park the exception while nobody
    // is waiting: the capture must survive until it is collected.
    for (unsigned spin = 0; spin < 1000; ++spin)
        std::this_thread::yield();
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // And the pool remains usable afterwards.
    std::atomic<bool> ran{false};
    pool.submit([&] { ran = true; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, FirstExceptionWinsAcrossDetachedBatches)
{
    // Two failures race; wait() reports exactly one (the first
    // captured), and a subsequent wait() starts clean instead of
    // replaying a stale error.
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("failure A"); });
    pool.submit([] { throw std::logic_error("failure B"); });
    bool threw = false;
    try {
        pool.wait();
    } catch (const std::exception &e) {
        threw = true;
        const std::string what = e.what();
        EXPECT_TRUE(what == "failure A" || what == "failure B") << what;
    }
    EXPECT_TRUE(threw);
    EXPECT_NO_THROW(pool.wait());
}

TEST(FlatHash, BasicInsertFindErase)
{
    FlatMap<uint64_t, uint32_t> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(7), nullptr);
    m[7] = 70;
    m[9] = 90;
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70u);
    EXPECT_EQ(m.size(), 2u);
    EXPECT_TRUE(m.erase(7));
    EXPECT_FALSE(m.erase(7));
    EXPECT_EQ(m.find(7), nullptr);
    ASSERT_NE(m.find(9), nullptr);
    EXPECT_EQ(*m.find(9), 90u);
}

TEST(FlatHash, EraseCompactsTombstonesInPlace)
{
    // Deletion-heavy phases must not leave probe chains crawling a
    // tombstone graveyard: growth-path rehashes only fire on insert,
    // so erase() itself compacts once tombstones pass a quarter of the
    // table.  The rehash stays at the same capacity — the table's
    // footprint feeds the governor byte model and must not wobble with
    // churn.
    FlatMap<uint64_t, uint32_t> m;
    for (uint64_t k = 0; k < 800; ++k)
        m[k] = uint32_t(k);
    const size_t cap = m.capacity();
    ASSERT_GE(cap, 1024u);

    for (uint64_t k = 0; k < 800; ++k) {
        m.erase(k);
        EXPECT_LE(m.tombstones(), m.capacity() / 4);
    }
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.capacity(), cap);

    // Misses terminate at the first EMPTY slot; with tombstones
    // bounded the worst chain stays short instead of O(capacity).
    size_t worst = 0;
    for (uint64_t k = 1000; k < 2000; ++k)
        worst = std::max(worst, m.probeLength(k));
    EXPECT_LE(worst, 8u);
}

TEST(FlatHash, EraseIfCompactsAndKeepsSurvivors)
{
    FlatMap<uint64_t, uint32_t> m;
    for (uint64_t k = 0; k < 600; ++k)
        m[k] = uint32_t(k * 3);
    const size_t cap = m.capacity();
    const size_t dropped =
        m.eraseIf([](uint64_t k, uint32_t &) { return k % 8 != 0; });
    EXPECT_EQ(dropped, 525u);
    EXPECT_EQ(m.size(), 75u);
    EXPECT_LE(m.tombstones(), m.capacity() / 4);
    EXPECT_EQ(m.capacity(), cap);
    for (uint64_t k = 0; k < 600; ++k) {
        if (k % 8 == 0) {
            ASSERT_NE(m.find(k), nullptr) << k;
            EXPECT_EQ(*m.find(k), uint32_t(k * 3));
        } else {
            EXPECT_EQ(m.find(k), nullptr) << k;
        }
    }
}

TEST(FlatHash, ChurnKeepsProbeLengthAndCapacityBounded)
{
    // Sustained insert/erase churn at a steady live size: the table
    // must neither grow without bound nor accumulate probe length.
    FlatSet<uint64_t> s;
    for (uint64_t k = 0; k < 200; ++k)
        s.insert(k);
    // One full round before capturing the bound: the first round's
    // doubled live peak (old + new generation) settles the capacity at
    // its steady-state power of two.
    for (uint64_t k = 0; k < 200; ++k)
        s.insert(1000 + k);
    for (uint64_t k = 0; k < 200; ++k)
        s.erase(k);
    const size_t cap_after_warmup = s.capacity();
    size_t worst = 0;
    for (uint64_t round = 2; round <= 300; ++round) {
        const uint64_t base = round * 1000;
        for (uint64_t k = 0; k < 200; ++k)
            s.insert(base + k);
        for (uint64_t k = 0; k < 200; ++k)
            EXPECT_TRUE(s.erase((round - 1) * 1000 + k));
        EXPECT_EQ(s.size(), 200u);
        EXPECT_LE(s.tombstones(), s.capacity() / 4);
        for (uint64_t k = 0; k < 200; ++k)
            worst = std::max(worst, s.probeLength(base + k));
    }
    // Live size never exceeds 400, so capacity must stay pinned at the
    // warmed-up power of two instead of ratcheting with churn.
    EXPECT_EQ(s.capacity(), cap_after_warmup);
    // Clustering at the round peak (78% load) legitimately costs a few
    // dozen probes; the regression this bounds is a probe chain that
    // scales with capacity once tombstones are never reclaimed.
    EXPECT_LT(worst, s.capacity() / 8);
}
