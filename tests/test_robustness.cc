/**
 * @file
 * Tests for the robustness layer: thread-pool failure semantics,
 * cooperative cancellation, the resource governor and its degradation
 * ladder, pressure-aware frame-cache shedding, and the governed
 * counters' order-independent merge.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/framecache.hh"
#include "core/sequencer.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "trace/workload.hh"
#include "util/cancellation.hh"
#include "util/governor.hh"
#include "util/rng.hh"
#include "util/threadpool.hh"

using namespace replay;
using core::Frame;
using core::FrameCache;
using core::FramePtr;
using sim::Machine;
using sim::SimConfig;

// ---------------------------------------------------------------------
// ThreadPool / parallelFor failure semantics
// ---------------------------------------------------------------------

TEST(ParallelFor, ThrowingIterationRethrowsInsteadOfTerminating)
{
    std::atomic<unsigned> executed{0};
    bool caught = false;
    try {
        parallelFor(4, 64, [&](size_t i) {
            if (i == 7)
                throw std::runtime_error("iteration 7 failed");
            ++executed;
        });
    } catch (const std::runtime_error &e) {
        caught = true;
        EXPECT_STREQ(e.what(), "iteration 7 failed");
    }
    EXPECT_TRUE(caught);
    // The failure cancels queued iterations: strictly fewer than all
    // the surviving 63 may run, never more.
    EXPECT_LE(executed.load(), 63u);
}

TEST(ParallelFor, SerialPathPropagatesTheSameWay)
{
    EXPECT_THROW(
        parallelFor(1, 8,
                    [](size_t i) {
                        if (i == 3)
                            throw std::runtime_error("serial fail");
                    }),
        std::runtime_error);
}

TEST(ThreadPool, WaitRethrowsFirstErrorAndPoolStaysUsable)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::logic_error("job error"); });
    EXPECT_THROW(pool.wait(), std::logic_error);
    EXPECT_FALSE(pool.cancelled());     // reset by the failed wait()

    // The pool survives a failed batch: later jobs run normally.
    std::atomic<bool> ran{false};
    pool.submit([&] { ran = true; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, CooperativeJobsObserveCancellation)
{
    ThreadPool pool(2);
    std::atomic<unsigned> skipped{0};
    pool.submit([&] { throw std::runtime_error("first"); });
    // Give the failure time to land, then submit cooperative jobs.
    pool.submit([&] {
        for (unsigned spin = 0; spin < 1000 && !pool.cancelled(); ++spin)
            std::this_thread::yield();
        if (pool.cancelled())
            ++skipped;
    });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_LE(skipped.load(), 1u);
}

// ---------------------------------------------------------------------
// Cancellation tokens and deadlines
// ---------------------------------------------------------------------

TEST(Cancellation, NullTokenNeverStops)
{
    const CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_FALSE(token.expired());
    EXPECT_FALSE(token.stopRequested());
    EXPECT_NO_THROW(token.throwIfStopped("noop"));
}

TEST(Cancellation, CancelTripsEveryToken)
{
    CancelSource source;
    const CancelToken a = source.token();
    const CancelToken b = source.token();
    EXPECT_FALSE(a.stopRequested());
    source.cancel();
    EXPECT_TRUE(a.cancelled());
    EXPECT_TRUE(b.cancelled());
    EXPECT_THROW(a.throwIfStopped("work"), CancelledError);
}

TEST(Cancellation, DeadlineExpiresThroughTheToken)
{
    CancelSource source;
    const CancelToken token = source.token();
    source.setDeadlineAfter(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(token.expired());
    EXPECT_FALSE(token.cancelled());    // deadline, not cancel
    try {
        token.throwIfStopped("task");
        FAIL() << "deadline did not throw";
    } catch (const CancelledError &e) {
        EXPECT_NE(std::string(e.what()).find("deadline"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Resource governor
// ---------------------------------------------------------------------

TEST(Governor, DisabledGovernorAlwaysReportsOk)
{
    ResourceGovernor gov;       // budgetBytes = 0
    const unsigned id = gov.registerConsumer("x");
    gov.update(id, 100u << 20);
    EXPECT_FALSE(gov.enabled());
    EXPECT_EQ(gov.pressure(), Pressure::OK);
    EXPECT_FALSE(gov.allocWouldFail());
}

TEST(Governor, PressureLadderFollowsThresholds)
{
    GovernorConfig cfg;
    cfg.budgetBytes = 1000;
    ResourceGovernor gov(cfg);
    const unsigned id = gov.registerConsumer("c");

    gov.update(id, 500);
    EXPECT_EQ(gov.pressure(), Pressure::OK);
    gov.update(id, 700);
    EXPECT_EQ(gov.pressure(), Pressure::SOFT);
    gov.update(id, 850);
    EXPECT_EQ(gov.pressure(), Pressure::HARD);
    gov.update(id, 950);
    EXPECT_EQ(gov.pressure(), Pressure::CRITICAL);
    gov.update(id, 100);
    EXPECT_EQ(gov.pressure(), Pressure::OK);

    EXPECT_EQ(gov.stats().get("soft_transitions"), 1u);
    EXPECT_EQ(gov.stats().get("hard_transitions"), 1u);
    EXPECT_EQ(gov.stats().get("critical_transitions"), 1u);
    EXPECT_EQ(gov.stats().get("ok_returns"), 1u);
    EXPECT_EQ(gov.peakBytes(), 950u);

    // A jump straight to CRITICAL counts once, at the level reached.
    gov.update(id, 990);
    EXPECT_EQ(gov.stats().get("critical_transitions"), 2u);
    EXPECT_EQ(gov.stats().get("soft_transitions"), 1u);
}

TEST(Governor, AbsoluteUpdatesCannotLeak)
{
    GovernorConfig cfg;
    cfg.budgetBytes = 1 << 20;
    ResourceGovernor gov(cfg);
    const unsigned a = gov.registerConsumer("a");
    const unsigned b = gov.registerConsumer("b");

    // Absolute footprint reports: re-reporting the same value is
    // idempotent, unlike charge/release pairs which drift on a missed
    // release.
    for (unsigned i = 0; i < 100; ++i) {
        gov.update(a, 4096);
        gov.update(b, 8192);
    }
    EXPECT_EQ(gov.liveBytes(), 4096u + 8192u);
    EXPECT_EQ(gov.consumerBytes(a), 4096u);
    gov.update(a, 0);
    EXPECT_EQ(gov.liveBytes(), 8192u);
}

TEST(Governor, AllocFailureHookCountsAndReports)
{
    GovernorConfig cfg;
    cfg.budgetBytes = 1 << 20;
    ResourceGovernor gov(cfg);
    unsigned calls = 0;
    gov.setAllocFailureInjector([&calls] { return ++calls % 2 == 0; });
    EXPECT_FALSE(gov.allocWouldFail());
    EXPECT_TRUE(gov.allocWouldFail());
    EXPECT_FALSE(gov.allocWouldFail());
    EXPECT_EQ(gov.stats().get("injected_alloc_fails"), 1u);
}

// ---------------------------------------------------------------------
// Frame-cache shedding under pressure
// ---------------------------------------------------------------------

namespace {

FramePtr
makeFrame(uint32_t pc, unsigned uops)
{
    auto f = std::make_shared<Frame>();
    f->startPc = pc;
    f->pcs = {pc};
    f->body.resize(uops);
    return f;
}

} // namespace

TEST(FrameCachePressure, ShedToBudgetNeverEvictsThePinnedFrame)
{
    FrameCache cache(200);
    cache.insert(makeFrame(0x1000, 50));
    cache.insert(makeFrame(0x2000, 50));
    cache.insert(makeFrame(0x3000, 50));
    ASSERT_EQ(cache.occupiedUops(), 150u);

    // Pin the LRU frame — the one shedding would pick first.
    cache.pin(0x1000);
    const unsigned shed = cache.shedToUops(0);
    EXPECT_EQ(shed, 2u);
    EXPECT_EQ(cache.occupiedUops(), 50u);
    EXPECT_NE(cache.probe(0x1000), nullptr);
    EXPECT_EQ(cache.probe(0x2000), nullptr);

    // Once unpinned, the survivor is sheddable again.
    cache.unpin();
    EXPECT_TRUE(cache.shedLru());
    EXPECT_EQ(cache.occupiedUops(), 0u);
    EXPECT_FALSE(cache.shedLru());      // empty: nothing to shed
}

TEST(FrameCachePressure, InsertNeverEvictsThePinnedFrame)
{
    FrameCache cache(100);
    cache.insert(makeFrame(0x1000, 90));
    cache.pin(0x1000);
    // The newcomer cannot fit without evicting the pinned frame: it is
    // rejected, and occupancy is untouched.
    cache.insert(makeFrame(0x2000, 20));
    EXPECT_EQ(cache.probe(0x2000), nullptr);
    EXPECT_NE(cache.probe(0x1000), nullptr);
    EXPECT_EQ(cache.occupiedUops(), 90u);
    cache.unpin();
    cache.insert(makeFrame(0x2000, 20));
    EXPECT_NE(cache.probe(0x2000), nullptr);
}

TEST(FrameCachePressure, ChurnWithRandomPressureNeverUnderflows)
{
    // 2000 steps of random insert / invalidate / lookup / shed /
    // shedToUops / pin / unpin.  Occupancy must equal the sum of
    // resident frame sizes at every step (an underflow would wrap the
    // unsigned counter and explode the comparison), and the pinned
    // entry must survive every shed.
    FrameCache cache(256);
    Rng rng(0xC0FFEE);
    std::vector<uint32_t> pcs;
    for (uint32_t pc = 0x1000; pc < 0x1000 + 64 * 16; pc += 16)
        pcs.push_back(pc);
    bool pinned = false;
    uint32_t pinned_pc = 0;

    auto checkConsistent = [&] {
        unsigned resident = 0;
        for (const uint32_t pc : pcs)
            if (auto f = cache.probe(pc))
                resident += f->numUops();
        ASSERT_EQ(cache.occupiedUops(), resident);
        ASSERT_LE(cache.occupiedUops(), cache.capacityUops());
        if (pinned) {
            ASSERT_NE(cache.probe(pinned_pc), nullptr);
        }
    };

    for (unsigned step = 0; step < 2000; ++step) {
        const uint32_t pc = pcs[rng.below(pcs.size())];
        switch (rng.below(8)) {
          case 0:
          case 1:
          case 2:
            if (!pinned || pc != pinned_pc)
                cache.insert(makeFrame(pc, 1 + unsigned(rng.below(48))));
            break;
          case 3:
            if (!pinned || pc != pinned_pc)
                cache.invalidate(pc);
            break;
          case 4:
            (void)cache.lookup(pc);
            break;
          case 5:
            (void)cache.shedLru();
            break;
          case 6:
            // Random pressure transition: shed to a random target.
            (void)cache.shedToUops(unsigned(rng.below(256)));
            break;
          case 7:
            if (pinned) {
                cache.unpin();
                pinned = false;
            } else if (cache.probe(pc)) {
                cache.pin(pc);
                pinned = true;
                pinned_pc = pc;
            }
            break;
        }
        checkConsistent();
    }
}

// ---------------------------------------------------------------------
// End-to-end degradation ladder
// ---------------------------------------------------------------------

namespace {

sim::RunStats
runRpo(const SimConfig &cfg, const char *app = "bzip2")
{
    auto src = trace::findWorkload(app).openTrace(0, cfg.maxInsts);
    sim::Simulator simulator(cfg);
    return simulator.run(*src);
}

} // namespace

TEST(Degradation, TinyBudgetEngagesTheLadderAndStillCompletes)
{
    // The frame pool allocates in 64 KiB arena chunks, so the resident
    // floor for any frame-building run is one chunk; 128 KiB leaves
    // room for roughly two.  That squeezes the run into SOFT
    // repeatedly as the cache grows, sheds, and regrows.
    SimConfig cfg = SimConfig::make(Machine::RPO);
    cfg.maxInsts = 30000;
    cfg.governor.budgetBytes = 128u << 10;

    const sim::RunStats stats = runRpo(cfg);
    EXPECT_GE(stats.x86Retired, cfg.maxInsts);
    EXPECT_GT(stats.govSoftTransitions, 0u)
        << "budget never squeezed the run";
    EXPECT_GT(stats.govShedFrames, 0u);
    EXPECT_GT(stats.govAdmitRejects, 0u);
    // Bounded memory: overshoot is at most one allocation step.
    EXPECT_LT(stats.govPeakBytes, 2 * cfg.governor.budgetBytes);
}

TEST(Degradation, HardPressureRoutesBuildsThroughTheCheapOptimizer)
{
    // 68 KiB puts the one-chunk floor (64 KiB) in the HARD band
    // [85%, 95%) of budget: candidates still build — through the
    // cheap pass subset — while admissions are rejected.
    SimConfig cfg = SimConfig::make(Machine::RPO);
    cfg.maxInsts = 30000;
    cfg.governor.budgetBytes = 68u << 10;

    const sim::RunStats stats = runRpo(cfg);
    EXPECT_GE(stats.x86Retired, cfg.maxInsts);
    EXPECT_GT(stats.govHardTransitions, 0u);
    EXPECT_GT(stats.govCheapOpts, 0u);
    EXPECT_LT(stats.govPeakBytes, 2 * cfg.governor.budgetBytes);
}

TEST(Degradation, CriticalPressureSuspendsFrameConstruction)
{
    // 60 KiB puts the one-chunk floor above 95% of budget: frame
    // construction is suspended outright, and the conventional path
    // carries the run to completion.
    SimConfig cfg = SimConfig::make(Machine::RPO);
    cfg.maxInsts = 30000;
    cfg.governor.budgetBytes = 60u << 10;

    const sim::RunStats stats = runRpo(cfg);
    EXPECT_GE(stats.x86Retired, cfg.maxInsts);
    EXPECT_GT(stats.govCriticalTransitions, 0u);
    EXPECT_GT(stats.govSuspendedCandidates, 0u);
    EXPECT_LT(stats.govPeakBytes, 2 * cfg.governor.budgetBytes);
}

TEST(Degradation, GenerousBudgetIsBitIdenticalToUngoverned)
{
    SimConfig governed = SimConfig::make(Machine::RPO);
    governed.maxInsts = 20000;
    governed.governor.budgetBytes = size_t(1) << 32;    // never SOFT

    SimConfig ungoverned = SimConfig::make(Machine::RPO);
    ungoverned.maxInsts = 20000;

    const sim::RunStats a = runRpo(governed);
    const sim::RunStats b = runRpo(ungoverned);
    // A governor that never leaves OK must not perturb the run: the
    // ladder is observation-only until a threshold crosses, and the
    // fingerprint guard ignores zero governance counters.
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_GT(a.govPeakBytes, 0u);      // it was watching, though
}

TEST(Degradation, GovernedRunIsDeterministic)
{
    SimConfig cfg = SimConfig::make(Machine::RPO);
    cfg.maxInsts = 30000;
    cfg.governor.budgetBytes = 128u << 10;
    const sim::RunStats a = runRpo(cfg);
    const sim::RunStats b = runRpo(cfg);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

// ---------------------------------------------------------------------
// Tiered re-optimization under churn: background work for departed
// frames must be cancelled (eviction) or shed (pressure), never leaked
// ---------------------------------------------------------------------

namespace {

/** Every queued re-opt ends in exactly one terminal counter. */
void
expectTierAccountingBalances(const sim::RunStats &stats)
{
    EXPECT_EQ(stats.tierEnqueues,
              stats.tierPublishes + stats.tierVerifyRejects +
                  stats.tierStaleDrops + stats.tierCancelled +
                  stats.tierShed + stats.tierDroppedAtExit);
}

} // namespace

TEST(TierChurn, SoftPressureShedsBackgroundWorkFirst)
{
    // The 128 KiB squeeze from TinyBudgetEngagesTheLadder, now with
    // the tier engine on: re-opt work is the cheapest thing to drop,
    // so SOFT pressure must shed pending jobs before frames are
    // sacrificed.  Whether any job is *pending* at the moment SOFT
    // trips is a worker-timing race, so one attempt can legitimately
    // observe zero sheds; the accounting invariant must hold on every
    // attempt, and a handful of attempts must show the shed path
    // firing.
    uint64_t total_shed = 0;
    for (unsigned attempt = 0; attempt < 5; ++attempt) {
        SimConfig cfg = SimConfig::make(Machine::RPO);
        cfg.maxInsts = 30000;
        cfg.governor.budgetBytes = 128u << 10;
        cfg.engine.tier.workers = 1;
        cfg.engine.tier.hotThreshold = 1;   // keep the queue loaded

        const sim::RunStats stats = runRpo(cfg);
        EXPECT_GE(stats.x86Retired, cfg.maxInsts);
        EXPECT_GT(stats.govSoftTransitions, 0u);
        expectTierAccountingBalances(stats);
        total_shed += stats.tierShed;
        if (total_shed)
            break;
    }
    EXPECT_GT(total_shed, 0u) << "SOFT pressure never shed re-opt";
}

TEST(TierChurn, EvictedFramesCancelTheirPendingReopt)
{
    // A 512-uop cache churns hot crafty frames in and out while one
    // background worker lags behind the enqueue rate.  Every eviction
    // of a frame with a job still pending must cancel that job (the
    // stale-work leak fix); a job already past the pop races the
    // eviction and lands as a stale drop instead.  Either way the
    // accounting must balance — a leak would leave enqueues
    // unaccounted for.
    uint64_t total_hit = 0;
    for (unsigned attempt = 0; attempt < 5; ++attempt) {
        SimConfig cfg = SimConfig::make(Machine::RPO);
        cfg.maxInsts = 60000;
        cfg.engine.fcacheCapacityUops = 512;
        cfg.engine.tier.workers = 1;

        const sim::RunStats stats = runRpo(cfg, "crafty");
        EXPECT_GE(stats.x86Retired, cfg.maxInsts);
        EXPECT_GT(stats.fcacheEvictions, 0u);
        EXPECT_GT(stats.tierEnqueues, 0u);
        expectTierAccountingBalances(stats);
        total_hit += stats.tierCancelled + stats.tierStaleDrops;
        if (total_hit)
            break;
    }
    EXPECT_GT(total_hit, 0u)
        << "churn never intersected in-flight re-opt work";
}

TEST(TierChurn, GovernedDeterministicTierIsReproducible)
{
    SimConfig cfg = SimConfig::make(Machine::RPO);
    cfg.maxInsts = 30000;
    cfg.governor.budgetBytes = 192u << 10;
    cfg.engine.tier.workers = 1;
    cfg.engine.tier.deterministic = true;
    const sim::RunStats a = runRpo(cfg);
    const sim::RunStats b = runRpo(cfg);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    expectTierAccountingBalances(a);
}

// ---------------------------------------------------------------------
// Governed counters merge order-independently (sweep determinism)
// ---------------------------------------------------------------------

TEST(RunStatsMerge, GovernorCountersAreOrderIndependent)
{
    auto make = [](uint64_t base) {
        sim::RunStats s;
        s.workload = "w";
        s.config = "c";
        s.govSoftTransitions = base;
        s.govHardTransitions = base * 2;
        s.govCriticalTransitions = base % 3;
        s.govShedFrames = base * 7;
        s.govAdmitRejects = base + 1;
        s.govCheapOpts = base + 2;
        s.govSuspendedCandidates = base + 3;
        s.allocFailures = base % 5;
        s.stallsInjected = base % 2;
        s.govPeakBytes = base * 1000;
        return s;
    };
    const sim::RunStats parts[3] = {make(3), make(11), make(7)};

    sim::RunStats fwd;
    fwd.workload = "w";
    fwd.config = "c";
    sim::RunStats rev = fwd;
    for (int i = 0; i < 3; ++i)
        fwd.merge(parts[i]);
    for (int i = 2; i >= 0; --i)
        rev.merge(parts[i]);

    EXPECT_EQ(fwd.fingerprint(), rev.fingerprint());
    EXPECT_EQ(fwd.govPeakBytes, 11000u);    // max, not sum
    EXPECT_EQ(fwd.govSoftTransitions, 21u); // sums commute
}

TEST(RunStatsMerge, UngovernedFingerprintUnchangedByGovernorFields)
{
    // The guard: all-zero governance counters must not contribute to
    // the fingerprint, so pre-governor golden fingerprints hold.
    sim::RunStats a;
    a.workload = "w";
    a.x86Retired = 12345;
    sim::RunStats b = a;
    b.govShedFrames = 1;    // a degradation action must change it
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    sim::RunStats c = a;
    c.govPeakBytes = 1;     // observation alone must NOT change it
    EXPECT_EQ(a.fingerprint(), c.fingerprint());
}

// ---------------------------------------------------------------------
// Cancellation and deadlines through the simulator and sweep
// ---------------------------------------------------------------------

TEST(SimCancellation, CancelledTokenAbortsAtTheNextCheckpoint)
{
    CancelSource source;
    source.cancel();
    SimConfig cfg = SimConfig::make(Machine::IC);
    cfg.maxInsts = 20000;       // conventional path: 1 record per loop
    cfg.cancel = source.token();

    auto src = trace::findWorkload("gzip").openTrace(0, cfg.maxInsts);
    sim::Simulator simulator(cfg);
    EXPECT_THROW((void)simulator.run(*src), CancelledError);
}

TEST(SweepWatchdog, StalledTaskHitsDeadlineWithCellDiagnostic)
{
    sim::SweepCell cell;
    cell.workload = &trace::findWorkload("gzip");
    cell.cfg = SimConfig::make(Machine::RPO);
    cell.cfg.fault.seed = 11;
    cell.cfg.fault.stallRate = 1.0;     // stall at every checkpoint
    cell.cfg.fault.stallMillis = 10;

    sim::SweepOptions opts;
    opts.jobs = 2;
    opts.instsPerTrace = 4096;
    opts.warmup = false;
    opts.taskDeadlineMillis = 1;

    try {
        (void)sim::runSweep({cell}, opts);
        FAIL() << "stalled sweep did not abort";
    } catch (const CancelledError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("sweep task [workload=gzip"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("deadline"), std::string::npos) << what;
    }
}

TEST(SweepWatchdog, GovernedSweepDigestStableAcrossJobs)
{
    SimConfig governed = SimConfig::make(Machine::RPO);
    governed.governor.budgetBytes = 128u << 10;
    const auto cells = sim::gridCells(
        {&trace::findWorkload("gzip"), &trace::findWorkload("bzip2")},
        {{"RPO-gov", governed}});

    sim::SweepOptions serial;
    serial.jobs = 1;
    serial.instsPerTrace = 8000;
    serial.warmup = false;
    sim::SweepOptions parallel = serial;
    parallel.jobs = 4;

    EXPECT_EQ(sim::runSweep(cells, serial).digest(),
              sim::runSweep(cells, parallel).digest());
}
